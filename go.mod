module apples

go 1.22
