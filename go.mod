module apples

go 1.23
