// Custom metacomputer: build your own heterogeneous testbed with the
// public API — hosts, shared segments, a gateway — attach ambient load,
// and let an AppLeS agent schedule onto it. Shows the library is not tied
// to the paper's Figure 2 configuration.
//
//	go run ./examples/custom-metacomputer
package main

import (
	"fmt"
	"log"

	"apples"
)

func main() {
	eng := apples.NewEngine()
	rng := apples.NewRand(99)
	tp := apples.NewTopology(eng)

	// A small lab: two fast shared servers, four slow desktops, and a
	// dedicated number-cruncher, on two segments behind a router.
	tp.AddHost(apples.HostSpec{
		Name: "server1", Arch: "server", Site: "lab", Speed: 80, MemoryMB: 512,
		Load: apples.NewAR1Load(rng.Fork(), 5, 0.8, 0.9, 0.3),
	})
	tp.AddHost(apples.HostSpec{
		Name: "server2", Arch: "server", Site: "lab", Speed: 80, MemoryMB: 512,
		Load: apples.NewOnOffLoad(rng.Fork(), 60, 120, 2),
	})
	for i := 1; i <= 4; i++ {
		tp.AddHost(apples.HostSpec{
			Name: fmt.Sprintf("desk%d", i), Arch: "desktop", Site: "lab",
			Speed: 15, MemoryMB: 128,
			Load: apples.NewSpikeLoad(rng.Fork(), 120, 30, 0.2, 2),
		})
	}
	tp.AddHost(apples.HostSpec{
		Name: "cruncher", Arch: "mini", Site: "machine-room",
		Speed: 120, MemoryMB: 96, Dedicated: true,
	})

	backbone := tp.AddLink(apples.LinkSpec{Name: "backbone", Latency: 0.0005, Bandwidth: 12})
	deskNet := tp.AddLink(apples.LinkSpec{
		Name: "desk-eth", Latency: 0.001, Bandwidth: 1.25,
		CrossTraffic: apples.NewAR1Load(rng.Fork(), 10, 0.4, 0.8, 0.2),
	})
	tp.AddRouter("gw")
	tp.Attach("server1", backbone)
	tp.Attach("server2", backbone)
	tp.Attach("cruncher", backbone)
	tp.Attach("gw", backbone)
	tp.Attach("gw", deskNet)
	for i := 1; i <= 4; i++ {
		tp.Attach(fmt.Sprintf("desk%d", i), deskNet)
	}
	tp.Finalize()

	// Sense, then schedule a 1000x1000 Jacobi with 80 sweeps.
	nws := apples.NewNWS(eng, 10)
	nws.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		log.Fatal(err)
	}

	// Seven hosts is comfortably inside the exhaustive selector's 2^n
	// range; ask for the greedy heuristic anyway to show the selector is
	// pluggable — on hundreds of hosts this is what keeps the round
	// interactive (beam and lpga trade more search for tighter gaps).
	const n, iters = 1000, 80
	agent, err := apples.NewAgent(tp, apples.JacobiTemplate(n, iters),
		&apples.UserSpec{Decomposition: "strip"}, apples.NWSInformation(nws, tp),
		apples.WithSelector(apples.SelectorSpec{Kind: apples.SelectorGreedy}))
	if err != nil {
		log.Fatal(err)
	}
	sched, measured, err := agent.Run(n, apples.JacobiActuator(tp, apples.JacobiConfig{Iterations: iters}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("AppLeS on a custom metacomputer:")
	for _, a := range sched.Placement.Assignments {
		if a.Points > 0 {
			fmt.Printf("  %-9s %6.2f%%\n", a.Host, 100*sched.Placement.Fraction(a.Host))
		}
	}
	fmt.Printf("predicted %.2f s, measured %.2f s\n", sched.PredictedTotal, measured)
	// Note the cruncher: fastest machine, but only 96 MB — the agent caps
	// its strip by memory instead of spilling.
	needMB := 0.0
	for _, a := range sched.Placement.Assignments {
		if a.Host == "cruncher" {
			needMB = float64(a.Points) * 16 / 1e6
		}
	}
	fmt.Printf("cruncher strip needs %.1f MB of its 96 MB\n", needMB)
}
