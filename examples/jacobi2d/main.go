// Jacobi2D partition shoot-out: execute the AppLeS schedule and the two
// static baselines (speed-weighted strip, HPF uniform/blocked) back to
// back under identical ambient load, the way the paper's Figure 5
// experiment ran.
//
//	go run ./examples/jacobi2d
package main

import (
	"fmt"
	"log"

	"apples"
)

const (
	n     = 1200
	iters = 60
	seed  = 7
)

// freshTestbed builds an identically loaded testbed; same seed means the
// ambient contention replays exactly, so the comparison is fair.
func freshTestbed() (*apples.Engine, *apples.Topology) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: seed})
	return eng, tp
}

func runPlacement(eng *apples.Engine, tp *apples.Topology, p *apples.Placement) float64 {
	res, err := apples.RunJacobi(tp, p, apples.JacobiConfig{Iterations: iters})
	if err != nil {
		log.Fatal(err)
	}
	return res.Time
}

func main() {
	// --- AppLeS, scheduled from NWS forecasts ---
	eng, tp := freshTestbed()
	nws := apples.NewNWS(eng, 10)
	nws.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		log.Fatal(err)
	}
	nws.Stop()
	agent, err := apples.NewAgent(tp, apples.JacobiTemplate(n, iters),
		&apples.UserSpec{Decomposition: "strip"}, apples.NWSInformation(nws, tp))
	if err != nil {
		log.Fatal(err)
	}
	sched, err := agent.Schedule(n)
	if err != nil {
		log.Fatal(err)
	}
	applesTime := runPlacement(eng, tp, sched.Placement)

	// --- Static non-uniform strip (Figure 4): dedicated speeds only ---
	eng2, tp2 := freshTestbed()
	if err := eng2.RunUntil(600); err != nil {
		log.Fatal(err)
	}
	hosts := tp2.HostNames()
	weights := make([]float64, len(hosts))
	for i, h := range hosts {
		weights[i] = tp2.Host(h).Speed
	}
	strip, err := apples.WeightedStrip(n, hosts, weights, 8)
	if err != nil {
		log.Fatal(err)
	}
	stripTime := runPlacement(eng2, tp2, strip)

	// --- HPF Uniform/Blocked ---
	eng3, tp3 := freshTestbed()
	if err := eng3.RunUntil(600); err != nil {
		log.Fatal(err)
	}
	blocked, err := apples.BlockedPartition(n, tp3.HostNames(), 8)
	if err != nil {
		log.Fatal(err)
	}
	blockedTime := runPlacement(eng3, tp3, blocked)

	fmt.Printf("Jacobi2D %dx%d, %d iterations, identical ambient load (seed %d)\n\n", n, n, iters, seed)
	fmt.Printf("  AppLeS (NWS)          %8.2f s\n", applesTime)
	fmt.Printf("  Non-uniform Strip     %8.2f s   (%.2fx slower)\n", stripTime, stripTime/applesTime)
	fmt.Printf("  HPF Uniform/Blocked   %8.2f s   (%.2fx slower)\n", blockedTime, blockedTime/applesTime)
	fmt.Println("\nAppLeS partition:")
	for _, a := range sched.Placement.Assignments {
		if a.Points > 0 {
			fmt.Printf("  %-10s %6.2f%%\n", a.Host, 100*sched.Placement.Fraction(a.Host))
		}
	}
}
