// CLEO/NILE site-manager decision: should a physicist's repeated event
// analysis stream records from the data site, skim a private local copy
// first, or move the computation to the data (Section 2.1)?
//
//	go run ./examples/nile-skim
package main

import (
	"fmt"
	"log"

	"apples"
)

func main() {
	const events = 30000
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 5})
	if err := eng.RunUntil(300); err != nil {
		log.Fatal(err)
	}

	// pass2 records live on alpha1; the physicist works on alpha2 (the
	// CORBA-capable farm nodes) and keeps half the events after the skim.
	ds := apples.NileDataset{Name: "roar", Site: "alpha1", Events: events, RecordBytes: 20480}
	job, err := apples.NileJobFromTemplate(apples.NileTemplate(events), "alpha2", 1)
	if err != nil {
		log.Fatal(err)
	}
	job.SkimSelectivity = 0.5

	sm := apples.NewSiteManager(tp, apples.OracleInformation(tp))

	fmt.Printf("CLEO/NILE analysis of %d events (20 KB pass2 records)\n\n", events)
	fmt.Println("passes  predicted remote  predicted skim  predicted at-data  site-manager pick")
	for passes := 1; passes <= 8; passes++ {
		job.Passes = passes
		var pred [3]float64
		for i, s := range []apples.NileStrategy{apples.NileRemote, apples.NileSkim, apples.NileAtData} {
			p, err := sm.Predict(ds, job, s)
			if err != nil {
				log.Fatal(err)
			}
			pred[i] = p
		}
		choice, _, err := sm.Choose(ds, job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %16.1f  %14.1f  %17.1f  %s\n", passes, pred[0], pred[1], pred[2], choice)
	}

	// Execute the chosen strategy for a 4-pass analysis and report.
	job.Passes = 4
	choice, predicted, err := sm.Choose(ds, job)
	if err != nil {
		log.Fatal(err)
	}
	res, err := apples.RunNile(tp, ds, job, choice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted %v for 4 passes: predicted %.1f s, measured %.1f s, moved %.1f MB\n",
		choice, predicted, res.Time, res.BytesMoved/1e6)
}
