// Coupled-instrument pipeline: the paper's introduction motivates
// metacomputing with "remote sensors and/or experimental instruments and
// general-purpose computers ... productively coupled". This example
// builds that scenario: a detector streams event batches over a slow
// field link to a preprocessing cluster, which feeds a supercomputer —
// and the batch size is tuned with the same pipeline model 3D-REACT used.
//
//	go run ./examples/sensor-pipeline
package main

import (
	"fmt"
	"log"

	"apples"
)

func main() {
	eng := apples.NewEngine()
	tp := apples.NewTopology(eng)
	tp.AddHost(apples.HostSpec{Name: "detector", Arch: "dsp", Site: "beamline", Speed: 10, MemoryMB: 64, Dedicated: true})
	tp.AddHost(apples.HostSpec{Name: "preproc", Arch: "ws", Site: "counting-house", Speed: 50, MemoryMB: 256, Dedicated: true})
	tp.AddHost(apples.HostSpec{Name: "super", Arch: "mpp", Site: "center", Speed: 200, MemoryMB: 2048, Dedicated: true})
	field := tp.AddLink(apples.LinkSpec{Name: "field-link", Latency: 0.02, Bandwidth: 2, Dedicated: true})
	campus := tp.AddLink(apples.LinkSpec{Name: "campus", Latency: 0.002, Bandwidth: 10, Dedicated: true})
	tp.Attach("detector", field)
	tp.Attach("preproc", field)
	tp.Attach("preproc", campus)
	tp.Attach("super", campus)
	tp.Finalize()

	stages := []apples.ChainStage{
		{Name: "acquire", Host: "detector", SecPerUnit: 0.5, OutBytesPerUnit: 2e5},
		{Name: "calibrate", Host: "preproc", SecPerUnit: 0.2, OutBytesPerUnit: 1e5},
		{Name: "analyze", Host: "super", SecPerUnit: 0.8},
	}
	const events = 200

	// Tune the batch size with the analytic model, then execute.
	bestU, bestT := 0, 0.0
	for u := 1; u <= 50; u++ {
		pred, err := apples.PredictChain(tp, stages, events, u, apples.ReactOptions{MsgOverheadSec: 2})
		if err != nil {
			log.Fatal(err)
		}
		if bestU == 0 || pred < bestT {
			bestU, bestT = u, pred
		}
	}
	fmt.Printf("model-tuned batch size: %d events/batch (predicted %.1f s)\n", bestU, bestT)

	res, err := apples.RunChain(tp, stages, events, bestU, apples.ReactOptions{MsgOverheadSec: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d batches in %.1f s\n", res.Batches, res.Time)
	for i, s := range stages {
		fmt.Printf("  stage %-10s stalled %6.1f s waiting for input\n", s.Name, res.StageStallSec[i])
	}

	// Compare against a naive unit batch.
	eng2 := apples.NewEngine()
	// (fresh topology: engines are single-use per scenario)
	tp2 := apples.NewTopology(eng2)
	tp2.AddHost(apples.HostSpec{Name: "detector", Speed: 10, MemoryMB: 64, Dedicated: true})
	tp2.AddHost(apples.HostSpec{Name: "preproc", Speed: 50, MemoryMB: 256, Dedicated: true})
	tp2.AddHost(apples.HostSpec{Name: "super", Speed: 200, MemoryMB: 2048, Dedicated: true})
	f2 := tp2.AddLink(apples.LinkSpec{Name: "field-link", Latency: 0.02, Bandwidth: 2, Dedicated: true})
	c2 := tp2.AddLink(apples.LinkSpec{Name: "campus", Latency: 0.002, Bandwidth: 10, Dedicated: true})
	tp2.Attach("detector", f2)
	tp2.Attach("preproc", f2)
	tp2.Attach("preproc", c2)
	tp2.Attach("super", c2)
	tp2.Finalize()
	naive, err := apples.RunChain(tp2, stages, events, 1, apples.ReactOptions{MsgOverheadSec: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive per-event streaming: %.1f s (%.2fx slower than tuned batches)\n",
		naive.Time, naive.Time/res.Time)
}
