// Adaptive rescheduling (Section 3.2): mid-run, a batch job floods the
// Alpha farm. A statically scheduled run rides out the storm; an adaptive
// run re-invokes its AppLeS agent every few iterations, notices the
// forecast shift, and migrates work off the Alphas — paying the migration
// traffic through the same contended network.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"apples"
)

const (
	n     = 1500
	iters = 200
	seed  = 11
)

// run executes one variant; adaptive selects whether the agent may
// redistribute mid-run.
func run(adaptive bool) (float64, *apples.JacobiAdaptiveResult) {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: seed})
	nws := apples.NewNWS(eng, 10)
	nws.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		log.Fatal(err)
	}

	// The load shift: ten seconds into the run, every Alpha picks up five
	// competing processes.
	eng.ScheduleAt(610, func() {
		for _, h := range []string{"alpha1", "alpha2", "alpha3", "alpha4"} {
			tp.Host(h).SetLoad(apples.ConstantLoad(5))
		}
	})

	agent, err := apples.NewAgent(tp, apples.JacobiTemplate(n, iters),
		&apples.UserSpec{Decomposition: "strip"}, apples.NWSInformation(nws, tp))
	if err != nil {
		log.Fatal(err)
	}
	sched, err := agent.Schedule(n)
	if err != nil {
		log.Fatal(err)
	}

	cfg := apples.JacobiAdaptiveConfig{
		Config:     apples.JacobiConfig{Iterations: iters},
		CheckEvery: 10,
	}
	if adaptive {
		cfg.Replan = agent.Rescheduler(n, 0.20)
	}
	res, err := apples.RunJacobiAdaptive(tp, sched.Placement, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.Time, res
}

func main() {
	staticTime, _ := run(false)
	adaptiveTime, res := run(true)

	fmt.Printf("Jacobi2D %dx%d, %d iterations; Alpha farm floods 10 s into the run\n\n", n, n, iters)
	fmt.Printf("  static schedule:    %8.2f s\n", staticTime)
	fmt.Printf("  adaptive schedule:  %8.2f s   (%.2fx faster)\n", adaptiveTime, staticTime/adaptiveTime)
	fmt.Printf("\n  the adaptive run replanned %d time(s), migrating %.1f MB of strip state (%.1f s of migration)\n",
		res.Replans, res.MigratedMB, res.MigrationSec)
}
