// Quickstart: schedule and run a distributed Jacobi2D application with an
// AppLeS agent on the paper's SDSC/PCL testbed.
//
//	go run ./examples/quickstart
//
// The walkthrough mirrors Section 4.2 of the paper: the user supplies the
// application template (HAT) and user specification (US); the Network
// Weather Service supplies dynamic forecasts; the agent's Coordinator
// selects resources, plans strip schedules, estimates their performance,
// and actuates the best one on the (simulated) metacomputer.
package main

import (
	"fmt"
	"log"

	"apples"
)

func main() {
	// A deterministic simulated metacomputer: Figure 2's workstations and
	// networks, under ambient load from other users (seed-controlled).
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 42})

	// Start the Network Weather Service and let it sense for ten virtual
	// minutes so its forecaster banks have history.
	nws := apples.NewNWS(eng, 10)
	nws.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		log.Fatal(err)
	}

	// The application: a 1500x1500 Jacobi iteration, 100 sweeps.
	const n, iters = 1500, 100
	tpl := apples.JacobiTemplate(n, iters)

	// The user: wants minimum execution time, prefers strip partitions.
	spec := &apples.UserSpec{
		Metric:        apples.MinExecutionTime,
		Decomposition: "strip",
	}

	// The default exhaustive selector is exact up to 12 hosts; on larger
	// pools pass e.g. WithSelector(SelectorSpec{Kind: SelectorGreedy}) to
	// keep scheduling interactive (see examples/custom-metacomputer).
	agent, err := apples.NewAgent(tp, tpl, spec, apples.NWSInformation(nws, tp))
	if err != nil {
		log.Fatal(err)
	}

	// Schedule and actuate in one step.
	sched, measured, err := agent.Run(n, apples.JacobiActuator(tp, apples.JacobiConfig{Iterations: iters}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("AppLeS schedule for Jacobi2D %dx%d on the SDSC/PCL metacomputer\n", n, n)
	fmt.Printf("considered %d candidate resource sets; selected:\n", sched.CandidatesConsidered)
	for _, a := range sched.Placement.Assignments {
		if a.Points == 0 {
			continue
		}
		fmt.Printf("  %-10s %6.2f%% of the grid (%4d rows)\n",
			a.Host, 100*sched.Placement.Fraction(a.Host), a.Rows)
	}
	fmt.Printf("predicted execution time: %8.2f s\n", sched.PredictedTotal)
	fmt.Printf("measured  execution time: %8.2f s\n", measured)
}
