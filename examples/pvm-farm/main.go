// PVM-style farming on the metacomputer: a master self-schedules
// independent chunks over the Figure 2 workstations through the rms
// substrate (the resource-management layer AppLeS actuates through).
// Deliverable performance — not nominal speed — decides how many chunks
// each machine ends up processing.
//
//	go run ./examples/pvm-farm
package main

import (
	"fmt"
	"log"
	"sort"

	"apples"
)

func main() {
	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: 21})
	if err := eng.RunUntil(300); err != nil {
		log.Fatal(err)
	}

	workers := []string{"sparc2", "sparc10", "rs6000a", "rs6000b", "alpha1", "alpha2", "alpha3", "alpha4"}
	const chunks = 400
	res, err := apples.RunMasterWorker(tp, "alpha1", workers, chunks, 50, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("self-scheduled farm: %d chunks of 50 Mflop over the loaded testbed\n", chunks)
	fmt.Printf("completed in %.2f s (virtual)\n\n", res.Time)

	names := make([]string, 0, len(res.ChunksDone))
	for h := range res.ChunksDone {
		names = append(names, h)
	}
	sort.Slice(names, func(i, j int) bool { return res.ChunksDone[names[i]] > res.ChunksDone[names[j]] })
	fmt.Println("chunks per host (nominal speed in parentheses):")
	for _, h := range names {
		fmt.Printf("  %-10s %4d  (%.0f Mflop/s nominal, %.0f deliverable now)\n",
			h, res.ChunksDone[h], tp.Host(h).Speed, tp.Host(h).EffectiveSpeed())
	}
}
