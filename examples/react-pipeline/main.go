// 3D-REACT pipeline tuning: reproduce the task-parallel CASA application
// of Sections 2.2-2.3 — pick the task-to-machine mapping with the analytic
// performance model, sweep the pipeline unit, and compare against the
// single-site runs.
//
//	go run ./examples/react-pipeline
package main

import (
	"fmt"
	"log"

	"apples"
)

func main() {
	const surfaceFunctions = 600
	tpl := apples.ReactTemplate(surfaceFunctions)

	// Single-site baselines: both machines exceed 16 hours.
	for _, machine := range []string{"c90", "paragon"} {
		tp := apples.CASA(apples.NewEngine())
		res, err := apples.RunReactSingleSite(tp, tpl, machine, apples.ReactOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("single-site %-8s %6.2f h\n", machine, res.Time/3600)
	}

	// The model picks the mapping (LHSF on the vector C90, Log-D on the
	// Paragon) and the pipeline unit within the 5-20 range.
	tp := apples.CASA(apples.NewEngine())
	prod, cons, unit, predicted, err := apples.ChooseReactMapping(tp, tpl, "c90", "paragon", apples.ReactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel-selected mapping: LHSF on %s, Log-D/ASY on %s, pipeline unit %d (predicted %.2f h)\n",
		prod, cons, unit, predicted/3600)

	// Execute the pipeline across the unit range to see the tradeoff:
	// small units pay per-subdomain conversion overhead, large units pay
	// fill/drain.
	fmt.Println("\npipeline unit sweep (simulated):")
	for u := tpl.PipelineUnitMin; u <= tpl.PipelineUnitMax; u += 3 {
		tp := apples.CASA(apples.NewEngine())
		res, err := apples.RunReactPipeline(tp, tpl, prod, cons, u, apples.ReactOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  u=%2d  %6.3f h   (consumer stalled %5.0f s, peak %d batches buffered)\n",
			u, res.Time/3600, res.ConsumerStallSec, res.PeakQueuedBatches)
	}

	// The second-phase variant: after the last surface function, both
	// machines compute an extra Log-D set with no communication.
	tp2 := apples.CASA(apples.NewEngine())
	res, err := apples.RunReactPipeline(tp2, tpl, prod, cons, unit, apples.ReactOptions{ExtraLogDSets: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith one extra Log-D set computed on both machines: %.2f h\n", res.Time/3600)

	// The same decision, made by the Section 4.2 pipeline-blueprint agent
	// in one call: filter machines through the user specification, derive
	// the mapping and unit, actuate, measure.
	tp3 := apples.CASA(apples.NewEngine())
	agent, err := apples.NewPipelineAgent(tp3, tpl, &apples.UserSpec{},
		apples.OracleInformation(tp3), apples.ReactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sched, measured, err := agent.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPipelineAgent: %v -> measured %.2f h\n", sched, measured/3600)
}
