// Command expt regenerates the paper's tables and figures on the
// simulated metacomputer and prints them as text tables.
//
// Usage:
//
//	expt -fig all            # everything (default)
//	expt -fig 5 -quick       # just Figure 5, reduced sweep
//	expt -fig react -seed 7
//
// Figures: 3, 4, 5, 6, react, nile, a1 (forecast ablation), a3
// (selection ablation), sched / pipeline-sched (scheduler decision
// latency for the two blueprints), nws-scale (sensing throughput),
// obs-overhead (decision-trace instrumentation cost), tenant-converge
// (competing agents on one scheduling service: oscillation vs
// damped convergence), replay (record a sensing run to a durable
// store, replay it twice, assert identical decision traces), audit
// (forecast & decision quality: predicted-vs-actual joins,
// per-series forecast skill, drift alarms under injected churn), all.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"apples"
	"apples/internal/expt"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate: 3,4,5,6,react,nile,a1,a2,a3,a4,adapt,fail,multi,wait,scale,sched,pipeline-sched,selector-gap,nws-scale,obs-overhead,tenant-converge,replay,audit,all")
	seed := flag.Int64("seed", 11, "base seed for ambient load")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast run")
	csvDir := flag.String("csv", "", "also write per-figure CSV files into this directory")
	chart := flag.Bool("chart", false, "also render figures as terminal bar charts")
	listen := flag.String("listen", "", "serve live observability while the figures run (/metrics, /healthz, /debug/pprof) — useful for profiling long sweeps")
	flag.Parse()

	// The driver's own live telemetry: how many figures completed, and
	// the pprof endpoints for profiling a long regeneration.
	var reg *apples.Metrics
	var figuresDone *apples.Counter
	if *listen != "" {
		reg = apples.NewMetrics()
		figuresDone = reg.Counter("expt_figures_total")
		server, err := apples.ServeObservability(*listen, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expt: %v\n", err)
			os.Exit(1)
		}
		defer server.Close()
		fmt.Printf("observability listening on %s\n", server.URL())
	}

	writeCSV := func(name string, header []string, cells [][]string) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return expt.WriteCSV(f, header, cells)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "expt %s: %v\n", name, err)
			// Typed failures carry a usable hint; match them instead of
			// the message text.
			switch {
			case errors.Is(err, apples.ErrNoFeasibleHosts):
				fmt.Fprintln(os.Stderr, "expt: the user specification excluded every host in the testbed")
			case errors.Is(err, apples.ErrNoFeasiblePlan):
				fmt.Fprintln(os.Stderr, "expt: no resource set could hold the problem; shrink -n or grow the pool")
			case errors.Is(err, apples.ErrBadTemplate):
				fmt.Fprintln(os.Stderr, "expt: the application template does not fit the agent blueprint")
			}
			os.Exit(1)
		}
		if figuresDone != nil {
			figuresDone.Inc()
		}
		fmt.Println()
	}

	run("3", func() error {
		res, err := expt.Fig3(2000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatPartition(
			fmt.Sprintf("Figure 3 — AppLeS partitioning of Jacobi2D (%dx%d, loaded SDSC/PCL net)", res.N, res.N),
			res.Hosts, res.Shares))
		fmt.Printf("  predicted iteration time: %.4f s\n", res.PredictedIterTime)
		return nil
	})

	run("4", func() error {
		res, err := expt.Fig4(2000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatPartition(
			fmt.Sprintf("Figure 4 — Non-uniform (speed-weighted) strip partitioning (%dx%d)", res.N, res.N),
			res.Hosts, res.Shares))
		return nil
	})

	run("5", func() error {
		cfg := expt.Fig5Config{Seed: *seed}
		if *quick {
			cfg = expt.Fig5Config{Sizes: []int{1000, 1500, 2000}, Trials: 1, Iterations: 50, Seed: *seed}
		}
		rows, err := expt.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatFig5(rows))
		if *chart {
			fmt.Println()
			fmt.Print(expt.Fig5Chart(rows))
		}
		h, c := expt.Fig5CSV(rows)
		return writeCSV("fig5", h, c)
	})

	run("6", func() error {
		cfg := expt.Fig6Config{Seed: *seed}
		if *quick {
			cfg = expt.Fig6Config{Sizes: []int{2000, 3200, 3600, 4000, 4400}, Trials: 1, Iterations: 20, Seed: *seed}
		}
		rows, err := expt.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatFig6(rows))
		if *chart {
			fmt.Println()
			fmt.Print(expt.Fig6Chart(rows))
		}
		h, c := expt.Fig6CSV(rows)
		return writeCSV("fig6", h, c)
	})

	run("react", func() error {
		res, err := expt.React(600)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatReact(res))
		if *chart {
			fmt.Println()
			fmt.Print(expt.ReactChart(res))
		}
		h, c := expt.ReactCSV(res)
		return writeCSV("react", h, c)
	})

	run("nile", func() error {
		events := 50000
		if *quick {
			events = 20000
		}
		res, err := expt.Nile(events, 8, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatNile(res))
		h, c := expt.NileCSV(res)
		return writeCSV("nile", h, c)
	})

	run("a1", func() error {
		sizes := []int{1000, 1500, 2000}
		trials := 3
		if *quick {
			sizes, trials = []int{1500}, 1
		}
		rows, err := expt.AblationForecast(sizes, trials, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatAblationForecast(rows))
		h, c := expt.ForecastAblationCSV(rows)
		return writeCSV("a1", h, c)
	})

	run("a3", func() error {
		rows, err := expt.AblationSelection(1500, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatAblationSelection(rows))
		return nil
	})

	run("adapt", func() error {
		iters := 200
		if *quick {
			iters = 120
		}
		res, err := expt.Adaptation(1500, iters, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatAdaptation(res))
		return nil
	})

	run("fail", func() error {
		res, err := expt.Failure(1000, 120, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatFailure(res))
		return nil
	})

	run("a2", func() error {
		rows, err := expt.AblationForecasters(2000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatAblationForecasters(rows))
		return nil
	})

	run("a4", func() error {
		seeds := []int64{101, 202, 303, 404, 505}
		if *quick {
			seeds = seeds[:2]
		}
		rows, err := expt.AblationRisk(1200, nil, seeds)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatAblationRisk(rows))
		h, c := expt.RiskAblationCSV(rows)
		return writeCSV("a4", h, c)
	})

	run("scale", func() error {
		sizes := [][2]int{{2, 4}, {4, 4}, {8, 4}, {8, 8}}
		if *quick {
			sizes = [][2]int{{2, 4}, {4, 4}}
		}
		rows, err := expt.Scalability(sizes, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatScalability(rows))
		return nil
	})

	run("sched", func() error {
		sizes := [][2]int{{2, 4}, {3, 4}, {8, 4}, {8, 8}}
		if *quick {
			sizes = [][2]int{{2, 4}, {3, 4}}
		}
		rows, err := expt.SchedLatency(sizes, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatSchedLatency(rows))
		return nil
	})

	run("pipeline-sched", func() error {
		sizes := [][2]int{{2, 4}, {4, 4}, {8, 4}, {8, 8}}
		if *quick {
			sizes = [][2]int{{2, 4}, {4, 4}}
		}
		rows, err := expt.PipelineSchedLatency(sizes, 600, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatPipelineSchedLatency(rows))
		return nil
	})

	run("selector-gap", func() error {
		var sizes [][2]int
		seeds := []int64{*seed, *seed + 12, *seed + 26}
		if *quick {
			sizes, seeds = [][2]int{{2, 3}, {2, 4}, {3, 4}}, seeds[:1]
		}
		rows, err := expt.SelectorGap(sizes, 2000, seeds)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatSelectorGap(rows))
		scaleSizes := [][2]int{{8, 16}, {32, 16}}
		if *quick {
			scaleSizes = scaleSizes[:1]
		}
		scale, err := expt.SelectorScale(scaleSizes, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(expt.FormatSelectorScale(scale))
		h, c := expt.SelectorGapCSV(rows)
		return writeCSV("selector-gap", h, c)
	})

	run("obs-overhead", func() error {
		sizes := [][2]int{{2, 4}, {3, 4}, {8, 4}, {8, 8}}
		if *quick {
			sizes = [][2]int{{2, 4}, {3, 4}}
		}
		rows, err := expt.ObsOverhead(sizes, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatObsOverhead(rows))
		h, c := expt.ObsOverheadCSV(rows)
		return writeCSV("obs-overhead", h, c)
	})

	run("nws-scale", func() error {
		series := []int{100, 1000, 10000}
		windows := []int{5, 21, 101}
		ticks := 200
		if *quick {
			series, windows, ticks = []int{100, 1000}, []int{5, 21}, 50
		}
		rows := expt.NWSScale(series, windows, ticks, *seed)
		fmt.Print(expt.FormatNWSScale(rows))
		h, c := expt.NWSScaleCSV(rows)
		return writeCSV("nws-scale", h, c)
	})

	run("wait", func() error {
		res, err := expt.WaitOrRun(2000, nil, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatWaitOrRun(res))
		return nil
	})

	run("multi", func() error {
		res, err := expt.MultiApp(1200, 80, *seed)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatMultiApp(res))
		return nil
	})

	run("replay", func() error {
		spec := expt.ReplaySpec{Seed: *seed}
		if *quick {
			spec = expt.ReplaySpec{N: 600, Iterations: 10, Seed: *seed, WarmupSec: 120}
		}
		res, err := expt.Replay(spec)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatReplay(res))
		if !res.Deterministic || !res.MatchesLive {
			return fmt.Errorf("replay diverged: deterministic=%v matches-live=%v", res.Deterministic, res.MatchesLive)
		}
		return nil
	})

	run("audit", func() error {
		spec := expt.AuditSpec{Seed: *seed}
		if *quick {
			spec = expt.AuditSpec{N: 600, Iterations: 10, Seed: *seed, WarmupSec: 120, Runs: 2}
		}
		res, err := expt.AuditFigure(spec)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatAudit(res))
		h, c := expt.AuditCSV(res)
		return writeCSV("audit", h, c)
	})

	run("tenant-converge", func() error {
		cfg := expt.TenantConvergeConfig{
			Tenants: 6, N: 1200, Rounds: 12, Hysteresis: 0.05,
			Clusters: 2, PerCluster: 4, Seed: *seed,
		}
		if *quick {
			cfg.Rounds = 6
		}
		undamped, stale, seq, err := expt.TenantConvergeRegimes(cfg)
		if err != nil {
			return err
		}
		fmt.Print(expt.FormatTenantConverge(undamped, stale, seq))
		h, c := expt.TenantConvergeCSV(undamped, stale, seq)
		return writeCSV("tenant-converge", h, c)
	})
}
