// Command apples schedules and executes one distributed Jacobi2D run on
// the simulated Figure 2 metacomputer, printing the chosen schedule, its
// prediction, and the measured execution time.
//
// Usage:
//
//	apples -n 2000 -iters 100 -seed 11 -info nws
//	apples -n 4000 -sp2 -info oracle
//	apples -n 2000 -listen :9090    # live /metrics, /trace/recent, pprof
//	apples -n 2000 -store ./history # durable NWS history + warm start
//
// With -serve the binary runs as a multi-tenant scheduling daemon
// instead of executing one run: -tenants agents register with a shared
// core.SchedService and HTTP clients drive rounds through
// /schedule?tenant=ID&n=SIZE (see cmd/loadgen -target):
//
//	apples -serve -tenants 8 -listen 127.0.0.1:9090
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"apples"
)

func main() {
	n := flag.Int("n", 2000, "problem size (n x n grid)")
	iters := flag.Int("iters", 100, "Jacobi iterations")
	seed := flag.Int64("seed", 11, "ambient-load seed")
	info := flag.String("info", "nws", "information source: nws, oracle, static")
	sp2 := flag.Bool("sp2", false, "add the two SP-2 nodes (Figure 6 testbed)")
	quiet := flag.Bool("quiet", false, "dedicated testbed (no ambient load)")
	warm := flag.Float64("warmup", 600, "seconds of virtual time to warm sensors")
	topo := flag.Bool("topology", false, "print the testbed (Figure 2) and exit")
	viaRMS := flag.Bool("rms", false, "actuate through the PVM-style rms substrate")
	explain := flag.Int("explain", 0, "also print the top-K candidate schedules the agent weighed")
	metric := flag.String("metric", "min-time", "user performance metric: min-time, speedup, cost")
	parallel := flag.Int("parallel", 0, "candidate-evaluation workers (0 = GOMAXPROCS, 1 = sequential)")
	selector := flag.String("selector", "exhaustive", "resource selector family: exhaustive, greedy, beam, lpga")
	beamWidth := flag.Int("beam-width", 8, "beam width for -selector beam")
	gaSeed := flag.Int64("ga-seed", 1, "PRNG seed for -selector lpga")
	prune := flag.Bool("prune", false, "skip candidate sets whose compute lower bound exceeds the best so far")
	spill := flag.Float64("spill", 25, "estimator out-of-memory penalty multiplier")
	saveSched := flag.String("save-schedule", "", "write the chosen placement as JSON to this file")
	loadSched := flag.String("load-schedule", "", "skip scheduling; execute the placement JSON from this file")
	traceFile := flag.String("trace", "", "write a JSONL decision trace of the scheduling round to this file")
	metrics := flag.Bool("metrics", false, "print the run's metrics registry (rounds, candidates, sensing, sim events) on exit")
	listen := flag.String("listen", "", "serve live observability on this address (/metrics, /healthz, /trace/recent, /debug/pprof); keeps serving after the run until interrupted")
	ringSize := flag.Int("trace-ring", 512, "events retained for /trace/recent when -listen is set")
	storeDir := flag.String("store", "", "durable measurement store directory: NWS samples are appended, and existing history warm-starts the forecasters (-info nws only)")
	doAudit := flag.Bool("audit", false, "audit decision quality: join each run's predicted completion time with the measured actual, score every forecaster against the last-value baseline, and watch for drift (adds /audit and /audit/series with -listen; prints the report on exit)")
	auditStoreDir := flag.String("audit-store", "", "offline audit: replay this measurement store directory through fresh forecaster banks, print per-series forecast skill, and exit")
	serve := flag.Bool("serve", false, "run as a multi-tenant scheduling daemon (/schedule, /tenants) instead of executing one run")
	tenants := flag.Int("tenants", 8, "agents registered as tenants t0..tN-1 in -serve mode")
	queueDepth := flag.Int("queue-depth", 1024, "admission-queue bound in -serve mode (full queue -> 429)")
	flag.Parse()

	if *auditStoreDir != "" {
		auditStoreAndExit(*auditStoreDir)
		return
	}

	if *serve && *listen == "" {
		*listen = "127.0.0.1:0"
	}
	var reg *apples.Metrics
	if *metrics || *listen != "" {
		reg = apples.NewMetrics()
	}
	var tracer *apples.JSONLTracer
	var traceBuf *bufio.Writer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		traceBuf = bufio.NewWriter(f)
		tracer = apples.NewJSONLTracer(traceBuf)
	}

	// The trace sink: the JSONL file, the live ring, or both. The ring
	// backs /trace/recent; the stage timer shares the same sink so span
	// events land next to the decision events they time.
	var ring *apples.RingTracer
	var sink apples.Tracer
	if tracer != nil {
		sink = tracer
	}
	var stages *apples.StageTimer
	if *listen != "" {
		ring = apples.NewRingTracer(*ringSize)
		if sink != nil {
			sink = apples.MultiTracer{tracer, ring}
		} else {
			sink = ring
		}
		stages = apples.NewStageTimer(reg, sink, nil)
	}

	// The audit engine joins every run's prediction with its measured
	// actual and scores the forecasters; it must exist before the
	// observability server binds so /audit and the drift health checks
	// mount.
	var aud *apples.AuditEngine
	if *doAudit {
		var audOpts []apples.AuditOption
		if reg != nil {
			audOpts = append(audOpts, apples.WithAuditMetrics(reg))
		}
		if sink != nil {
			audOpts = append(audOpts, apples.WithAuditTracer(sink))
		}
		aud = apples.NewAuditEngine(audOpts...)
	}

	var server *apples.ObsServer
	if *listen != "" && !*serve {
		// In -serve mode the scheduling-service mux (which embeds the
		// observability endpoints) binds this address instead.
		var srvOpts []apples.ObsServeOption
		if aud != nil {
			srvOpts = append(srvOpts, apples.WithObsAudit(aud))
		}
		var err error
		server, err = apples.ServeObservability(*listen, reg, ring, srvOpts...)
		if err != nil {
			fail(err)
		}
		defer server.Close()
		fmt.Printf("observability listening on %s\n", server.URL())
	}

	eng := apples.NewEngine()
	if reg != nil {
		eng.SetMetrics(reg)
	}
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: *seed, Quiet: *quiet, WithSP2: *sp2})

	var store *apples.MeasurementStore
	if *storeDir != "" {
		if *info != "nws" {
			fail(fmt.Errorf("-store records NWS sensing history; it needs -info nws, not %q", *info))
		}
		var stOpts []apples.StoreOption
		if reg != nil {
			stOpts = append(stOpts, apples.WithStoreMetrics(reg))
		}
		var err error
		store, err = apples.OpenMeasurementStore(*storeDir, stOpts...)
		if err != nil {
			fail(err)
		}
		defer store.Close()
		if rec := store.Recovery(); rec.DroppedBytes > 0 {
			fmt.Printf("store %s: recovered after unclean shutdown, dropped %d torn trailing bytes\n",
				*storeDir, rec.DroppedBytes)
		}
	}

	if *topo {
		fmt.Print(tp.Describe())
		return
	}

	if *loadSched != "" {
		f, err := os.Open(*loadSched)
		if err != nil {
			fail(err)
		}
		p, err := apples.ReadPlacement(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := eng.RunUntil(*warm); err != nil {
			fail(err)
		}
		res, err := apples.RunJacobi(tp, p, apples.JacobiConfig{Iterations: *iters})
		if err != nil {
			fail(err)
		}
		fmt.Printf("replayed %s placement from %s: %d iterations in %.2f s\n",
			p.Kind, *loadSched, *iters, res.Time)
		return
	}

	var source apples.Information
	switch *info {
	case "nws":
		var nwsOpts []apples.NWSOption
		if reg != nil {
			nwsOpts = append(nwsOpts, apples.WithNWSMetrics(reg))
		}
		if stages != nil {
			nwsOpts = append(nwsOpts, apples.WithNWSStageTiming(stages))
		}
		if store != nil {
			nwsOpts = append(nwsOpts, apples.WithNWSStore(store))
		}
		if aud != nil {
			nwsOpts = append(nwsOpts, apples.WithNWSResiduals(aud))
		}
		svc := apples.NewNWS(eng, 10, nwsOpts...)
		if store != nil {
			replayed, err := svc.RestoreFromStore(store)
			if err != nil {
				fail(err)
			}
			if replayed > 0 {
				fmt.Printf("store %s: warm-started forecasters from %d records\n", *storeDir, replayed)
			}
		}
		svc.WatchTopology(tp)
		if err := eng.RunUntil(*warm); err != nil {
			fail(err)
		}
		svc.Stop()
		if store != nil {
			if err := svc.StoreErr(); err != nil {
				fail(err)
			}
			if err := store.Sync(); err != nil {
				fail(err)
			}
		}
		source = apples.NWSInformation(svc, tp)
	case "oracle":
		if err := eng.RunUntil(*warm); err != nil {
			fail(err)
		}
		source = apples.OracleInformation(tp)
	case "static":
		if err := eng.RunUntil(*warm); err != nil {
			fail(err)
		}
		source = apples.StaticInformation(tp)
	default:
		fail(fmt.Errorf("unknown -info %q", *info))
	}

	spec := &apples.UserSpec{Decomposition: "strip"}
	switch *metric {
	case "min-time":
		spec.Metric = apples.MinExecutionTime
	case "speedup":
		spec.Metric = apples.MaxSpeedup
	case "cost":
		spec.Metric = apples.MinCost
	default:
		fail(fmt.Errorf("unknown -metric %q (want min-time, speedup, or cost)", *metric))
	}

	selSpec, err := apples.ParseSelector(*selector)
	if err != nil {
		fail(err)
	}
	selSpec.BeamWidth = *beamWidth
	selSpec.Seed = *gaSeed

	tpl := apples.JacobiTemplate(*n, *iters)
	agentOpts := []apples.AgentOption{
		apples.WithParallelism(*parallel),
		apples.WithPruning(*prune),
		apples.WithSpillFactor(*spill),
		apples.WithSelector(selSpec),
	}
	if sink != nil {
		agentOpts = append(agentOpts, apples.WithTracer(sink))
	}
	if reg != nil {
		agentOpts = append(agentOpts, apples.WithMetrics(reg))
	}
	if stages != nil {
		agentOpts = append(agentOpts, apples.WithStageTiming(stages))
	}
	if aud != nil {
		agentOpts = append(agentOpts, apples.WithAudit(aud), apples.WithAuditTenant("cli"))
	}

	if *serve {
		serveDaemon(tp, tpl, spec, source, agentOpts, sink, reg, ring, aud, *listen, *tenants, *queueDepth, *n)
		return
	}

	agent, err := apples.NewAgent(tp, tpl, spec, source, agentOpts...)
	if err != nil {
		fail(err)
	}
	if *explain > 0 {
		_, top, err := agent.ScheduleExplained(*n, *explain)
		if err != nil {
			fail(err)
		}
		fmt.Printf("top %d of the agent's candidate schedules (metric=%s):\n", len(top), *metric)
		for i, c := range top {
			fmt.Printf("  #%d  score %10.2f  predicted %8.2f s  hosts=%v\n", i+1, c.Score, c.PredictedTotal, c.Hosts)
		}
		fmt.Println()
	}

	actuator := apples.JacobiActuator(tp, apples.JacobiConfig{Iterations: *iters})
	if *viaRMS {
		actuator = apples.RMSActuator(tp, apples.JacobiConfig{Iterations: *iters})
	}
	sched, measured, err := agent.Run(*n, actuator)
	if err != nil {
		fail(err)
	}
	if *saveSched != "" {
		f, err := os.Create(*saveSched)
		if err != nil {
			fail(err)
		}
		if _, err := sched.Placement.WriteTo(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("placement written to %s\n", *saveSched)
	}

	fmt.Printf("AppLeS schedule for Jacobi2D %dx%d (%d iterations, info=%s)\n", *n, *n, *iters, *info)
	fmt.Printf("  candidate resource sets considered: %d (planned: %d)\n",
		sched.CandidatesConsidered, sched.CandidatesPlanned)
	fmt.Println("  partition:")
	for _, a := range sched.Placement.Assignments {
		if a.Points == 0 {
			continue
		}
		fmt.Printf("    %-10s %7.2f%%  (%d rows)\n", a.Host, 100*sched.Placement.Fraction(a.Host), a.Rows)
	}
	fmt.Printf("  predicted: %8.2f s  (%.4f s/iter)\n", sched.PredictedTotal, sched.PredictedIterTime)
	fmt.Printf("  measured:  %8.2f s  (%.4f s/iter)\n", measured, measured/float64(*iters))
	fmt.Printf("  model error: %+.1f%%\n", 100*(sched.PredictedTotal-measured)/measured)

	if tracer != nil {
		if err := traceBuf.Flush(); err != nil {
			fail(err)
		}
		if err := tracer.Err(); err != nil {
			fail(err)
		}
		fmt.Printf("decision trace written to %s\n", *traceFile)
	}
	if aud != nil {
		fmt.Println()
		printAuditReport(aud)
	}
	if reg != nil && *metrics {
		fmt.Println()
		if _, err := reg.WriteTo(os.Stdout); err != nil {
			fail(err)
		}
	}
	if server != nil {
		fmt.Printf("run complete; observability still serving on %s (Ctrl-C to exit)\n", server.URL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// serveDaemon registers nTenants identically-configured agents with a
// shared scheduling service and serves /schedule, /tenants, and the
// observability endpoints until interrupted.
func serveDaemon(tp *apples.Topology, tpl *apples.Template, spec *apples.UserSpec, source apples.Information,
	agentOpts []apples.AgentOption, sink apples.Tracer, reg *apples.Metrics, ring *apples.RingTracer,
	aud *apples.AuditEngine, listen string, nTenants, queueDepth, n int) {
	if nTenants <= 0 {
		fail(fmt.Errorf("-serve needs a positive -tenants, got %d", nTenants))
	}
	svcOpts := []apples.SchedServiceOption{apples.WithQueueDepth(queueDepth)}
	if reg != nil {
		svcOpts = append(svcOpts, apples.WithServiceMetrics(reg))
	}
	if sink != nil {
		svcOpts = append(svcOpts, apples.WithServiceTracer(sink))
	}
	svc := apples.NewSchedService(svcOpts...)
	defer svc.Close()
	for i := 0; i < nTenants; i++ {
		id := fmt.Sprintf("t%d", i)
		opts := agentOpts
		if aud != nil {
			// Each tenant's joins land in its own audit breakdown row.
			opts = append(opts[:len(opts):len(opts)], apples.WithAuditTenant(id))
		}
		agent, err := apples.NewAgent(tp, tpl, spec, source, opts...)
		if err != nil {
			fail(err)
		}
		if _, err := svc.Register(id, agent); err != nil {
			fail(err)
		}
	}
	var srvOpts []apples.ObsServeOption
	if aud != nil {
		srvOpts = append(srvOpts, apples.WithObsAudit(aud))
	}
	server, err := apples.ServeScheduler(listen, svc, reg, ring, srvOpts...)
	if err != nil {
		fail(err)
	}
	defer server.Close()
	fmt.Printf("scheduling service on %s (%d tenants t0..t%d)\n", server.URL(), nTenants, nTenants-1)
	fmt.Printf("  try: %s/schedule?tenant=t0&n=%d  then /tenants and /metrics  (Ctrl-C to exit)\n", server.URL(), n)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// auditStoreAndExit replays a measurement store through fresh
// forecaster banks and prints the per-series forecast-skill table —
// the offline audit path: no simulation, no sensors, just the durable
// history and the deterministic forecasters.
func auditStoreAndExit(dir string) {
	st, err := apples.OpenMeasurementStore(dir, apples.StoreReadOnly())
	if err != nil {
		fail(err)
	}
	aud := apples.NewAuditEngine()
	n, err := apples.AuditMeasurementStore(st, aud)
	st.Close()
	if err != nil {
		fail(err)
	}
	fmt.Printf("audited %d sensor records from %s\n", n, dir)
	printSeriesTable(aud.SeriesSnapshot())
}

func printSeriesTable(series []apples.AuditSeriesReport) {
	fmt.Println("  kind       series            samples  naiveMAE  forecaster        skill      mae  selected")
	for _, s := range series {
		for i, f := range s.Forecasters {
			lead := fmt.Sprintf("%-9s  %-16s  %7d  %8.4f", s.Kind, s.Series, s.Samples, s.NaiveMAE)
			if i > 0 {
				lead = fmt.Sprintf("%-9s  %-16s  %7s  %8s", "", "", "", "")
			}
			fmt.Printf("  %s  %-16s  %+6.3f  %7.4f  %8d\n", lead, f.Name, f.Skill, f.MAE, f.Selected)
		}
	}
}

// printAuditReport renders the run's decision-quality audit: the
// predicted-vs-actual joins by tenant/selector/host-class, the drift
// state, and the forecaster skill table.
func printAuditReport(aud *apples.AuditEngine) {
	snap := aud.Snapshot()
	fmt.Printf("audit: %d joined, %d orphaned, %d expired, %d pending, %d drift alarms\n",
		snap.Joined, snap.Orphaned, snap.Expired, snap.Pending, snap.Alarms)
	for _, g := range snap.Groups {
		fmt.Printf("  %s/%s/%s: %d joins, bias %+.2f s, mae %.2f s, mape %.3f\n",
			g.Tenant, g.Selector, g.HostClass, g.Joins, g.Bias, g.MAE, g.MAPE)
	}
	if len(snap.Degraded) > 0 {
		fmt.Printf("  degraded: %v\n", snap.Degraded)
	}
	if series := aud.SeriesSnapshot(); len(series) > 0 {
		printSeriesTable(series)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "apples:", err)
	// The agent returns typed errors; match them for actionable hints
	// instead of parsing message text.
	switch {
	case errors.Is(err, apples.ErrNoFeasibleHosts):
		fmt.Fprintln(os.Stderr, "apples: hint: the user specification excluded every host; relax its filters")
	case errors.Is(err, apples.ErrNoFeasiblePlan):
		fmt.Fprintln(os.Stderr, "apples: hint: no resource set can hold this problem; try a smaller -n or -sp2")
	case errors.Is(err, apples.ErrBadTemplate):
		fmt.Fprintln(os.Stderr, "apples: hint: the application template does not fit this agent blueprint")
	}
	os.Exit(1)
}
