// Command benchjson runs the scheduler's headline benchmark sweeps —
// candidate evaluation (BenchmarkEvaluate), grid-scale selector
// families (BenchmarkSelect), the delta rescheduling loop
// (BenchmarkResched), the multi-tenant service (BenchmarkService), and
// the NWS sensing hot path (BenchmarkBankUpdate) — and writes the
// parsed results as JSON so CI
// and PR descriptions can diff performance across revisions without
// scraping `go test -bench` text output.
//
// Usage:
//
//	benchjson [-o BENCH_sched.json] [-benchtime 3x] [-count 1]
//
// The output schema is one object per benchmark line:
//
//	{"name": "BenchmarkEvaluate/hosts=8/mode=parallel-8",
//	 "package": ".", "iterations": 3, "ns_per_op": 855901,
//	 "bytes_per_op": 331219, "allocs_per_op": 3608}
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// sweep names one `go test -bench` invocation.
type sweep struct {
	Package string // package path, relative to the module root
	Pattern string // -bench regexp
}

var sweeps = []sweep{
	{Package: ".", Pattern: "^BenchmarkEvaluate$"},
	{Package: ".", Pattern: "^BenchmarkSelect$"},
	{Package: ".", Pattern: "^BenchmarkResched$"},
	{Package: ".", Pattern: "^BenchmarkService$"},
	{Package: "./internal/nws", Pattern: "^BenchmarkBankUpdate$"},
}

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the file layout: enough environment to interpret the
// numbers, then the flat result list.
type report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_sched.json", "output file")
	benchtime := flag.String("benchtime", "3x", "value passed to -benchtime")
	count := flag.Int("count", 1, "value passed to -count")
	flag.Parse()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
	}
	for _, s := range sweeps {
		res, err := runSweep(s, *benchtime, *count)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s: %v\n", s.Package, s.Pattern, err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, res...)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), *out)
}

func runSweep(s sweep, benchtime string, count int) ([]result, error) {
	cmd := exec.Command("go", "test",
		"-run", "^$",
		"-bench", s.Pattern,
		"-benchmem",
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		s.Package)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%v\n%s", err, outBuf.Bytes())
	}
	res := parseBench(outBuf.String(), s.Package)
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", outBuf.Bytes())
	}
	return res, nil
}

// parseBench extracts `BenchmarkX  N  T ns/op  B B/op  A allocs/op`
// lines from go test output. Lines that do not carry all three -benchmem
// columns are skipped.
func parseBench(out, pkg string) []result {
	var res []result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 8 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || fields[3] != "ns/op" {
			continue
		}
		r := result{Name: fields[0], Package: pkg, Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		res = append(res, r)
	}
	return res
}
