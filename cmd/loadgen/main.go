// Command loadgen generates ambient-load trace files in the text format
// load.ParseTrace reads, by sampling one of the library's stochastic
// generators. Traces can then drive a testbed via Topology.SetHostTraces
// for fully reproducible, inspectable contention scenarios.
//
// Usage:
//
//	loadgen -kind ar1 -mean 1.2 -horizon 3600 -seed 7 -o sparc2.trace
//	loadgen -kind onoff -busy 3 -o bursts.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"apples"
)

func main() {
	kind := flag.String("kind", "ar1", "generator: ar1, onoff, periodic, spikes")
	seed := flag.Int64("seed", 1, "generator seed")
	horizon := flag.Float64("horizon", 3600, "trace length (virtual seconds)")
	dt := flag.Float64("dt", 5, "sampling step (seconds)")
	out := flag.String("o", "", "output file (default stdout)")

	mean := flag.Float64("mean", 1.0, "ar1: mean load")
	phi := flag.Float64("phi", 0.9, "ar1: persistence")
	sigma := flag.Float64("sigma", 0.3, "ar1: innovation stddev")

	idle := flag.Float64("idle", 120, "onoff: mean idle seconds")
	busyDur := flag.Float64("busydur", 90, "onoff: mean busy seconds")
	busy := flag.Float64("busy", 2, "onoff/spikes: busy load level / spike height")

	period := flag.Float64("period", 600, "periodic: period seconds")
	base := flag.Float64("base", 1, "periodic/spikes: base level")
	amp := flag.Float64("amp", 0.5, "periodic: amplitude")

	gap := flag.Float64("gap", 240, "spikes: mean gap seconds")
	width := flag.Float64("width", 30, "spikes: spike width seconds")
	flag.Parse()

	rng := apples.NewRand(*seed)
	var src apples.LoadSource
	switch *kind {
	case "ar1":
		src = apples.NewAR1Load(rng, *dt, *mean, *phi, *sigma)
	case "onoff":
		src = apples.NewOnOffLoad(rng, *idle, *busyDur, *busy)
	case "periodic":
		src = apples.NewPeriodicLoad(*dt, *period, *base, *amp, 0)
	case "spikes":
		src = apples.NewSpikeLoad(rng, *gap, *width, *base, *busy)
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	steps := apples.RecordLoadSource(src, *dt, *horizon)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := apples.WriteLoadTrace(w, steps); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d steps covering %.0f s to %s\n", len(steps), *horizon, *out)
	}
}
