// Command loadgen generates ambient-load trace files in the text format
// load.ParseTrace reads, by sampling one of the library's stochastic
// generators. Traces can then drive a testbed via Topology.SetHostTraces
// for fully reproducible, inspectable contention scenarios.
//
// Usage:
//
//	loadgen -kind ar1 -mean 1.2 -horizon 3600 -seed 7 -o sparc2.trace
//	loadgen -kind onoff -busy 3 -o bursts.trace
//	loadgen -kind ar1 -store ./history -series sparc2   # durable store format
//
// With -target the command instead drives a running scheduling daemon
// (apples -serve): workers fire /schedule rounds round-robin across
// tenants — closed-loop by default, paced when -rate is set — and
// report achieved rounds/sec plus the latency distribution:
//
//	loadgen -target http://127.0.0.1:9090 -requests 100 -concurrency 100
//	loadgen -target http://127.0.0.1:9090 -rate 200 -duration 10
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apples"
)

func main() {
	kind := flag.String("kind", "ar1", "generator: ar1, onoff, periodic, spikes")
	seed := flag.Int64("seed", 1, "generator seed")
	horizon := flag.Float64("horizon", 3600, "trace length (virtual seconds)")
	dt := flag.Float64("dt", 5, "sampling step (seconds)")
	out := flag.String("o", "", "output file (default stdout)")
	storeDir := flag.String("store", "", "append the trace to a durable measurement store directory instead of writing text")
	series := flag.String("series", "", "store series name (default: the generator kind)")

	mean := flag.Float64("mean", 1.0, "ar1: mean load")
	phi := flag.Float64("phi", 0.9, "ar1: persistence")
	sigma := flag.Float64("sigma", 0.3, "ar1: innovation stddev")

	idle := flag.Float64("idle", 120, "onoff: mean idle seconds")
	busyDur := flag.Float64("busydur", 90, "onoff: mean busy seconds")
	busy := flag.Float64("busy", 2, "onoff/spikes: busy load level / spike height")

	period := flag.Float64("period", 600, "periodic: period seconds")
	base := flag.Float64("base", 1, "periodic/spikes: base level")
	amp := flag.Float64("amp", 0.5, "periodic: amplitude")

	gap := flag.Float64("gap", 240, "spikes: mean gap seconds")
	width := flag.Float64("width", 30, "spikes: spike width seconds")

	target := flag.String("target", "", "drive a scheduling daemon at this base URL instead of generating a trace")
	requests := flag.Int("requests", 0, "target: stop after exactly this many submissions (0 = run for -duration)")
	duration := flag.Float64("duration", 10, "target: wall-clock seconds to run when -requests is 0")
	rate := flag.Float64("rate", 0, "target: paced request rate in rounds/sec (0 = closed loop, as fast as the service admits)")
	concurrency := flag.Int("concurrency", 16, "target: concurrent client workers")
	tenants := flag.Int("tenants", 8, "target: spread requests round-robin over tenants t0..tN-1")
	size := flag.Int("n", 600, "target: problem size submitted with each round")
	flag.Parse()

	if *target != "" {
		runTarget(*target, *tenants, *size, *requests, *concurrency, *rate, *duration)
		return
	}

	rng := apples.NewRand(*seed)
	var src apples.LoadSource
	switch *kind {
	case "ar1":
		src = apples.NewAR1Load(rng, *dt, *mean, *phi, *sigma)
	case "onoff":
		src = apples.NewOnOffLoad(rng, *idle, *busyDur, *busy)
	case "periodic":
		src = apples.NewPeriodicLoad(*dt, *period, *base, *amp, 0)
	case "spikes":
		src = apples.NewSpikeLoad(rng, *gap, *width, *base, *busy)
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	steps := apples.RecordLoadSource(src, *dt, *horizon)
	if *storeDir != "" {
		name := *series
		if name == "" {
			name = *kind
		}
		tf := apples.LoadTraceStore{Dir: *storeDir}
		if err := tf.Write(map[string][]apples.LoadStep{name: steps}); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("appended %d steps covering %.0f s to store %s (series %q)\n",
			len(steps), *horizon, *storeDir, name)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := apples.WriteLoadTrace(w, steps); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d steps covering %.0f s to %s\n", len(steps), *horizon, *out)
	}
}

// runTarget fires scheduling rounds at a running daemon and reports the
// achieved throughput and latency distribution. Admission rejections
// (HTTP 429, the service's ErrQueueFull surface) are counted separately
// from hard errors: under closed-loop overload they are the expected
// backpressure signal, not a failure.
func runTarget(target string, tenants, n, requests, concurrency int, rate, duration float64) {
	if tenants <= 0 || concurrency <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -tenants and -concurrency must be positive")
		os.Exit(1)
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// One pacing ticker shared by every worker: whichever worker is free
	// takes the next tick, so the aggregate submission rate tracks -rate.
	var pace <-chan time.Time
	if rate > 0 {
		tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer tick.Stop()
		pace = tick.C
	}

	var (
		seq       atomic.Int64
		completed atomic.Int64
		rejected  atomic.Int64
		failed    atomic.Int64
		wg        sync.WaitGroup
	)
	latencies := make([][]float64, concurrency)
	deadline := time.Now().Add(time.Duration(duration * float64(time.Second)))
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := seq.Add(1) - 1
				if requests > 0 {
					if i >= int64(requests) {
						return
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				if pace != nil {
					<-pace
				}
				url := fmt.Sprintf("%s/schedule?tenant=t%d&n=%d", target, i%int64(tenants), n)
				t0 := time.Now()
				res, err := client.Get(url)
				elapsed := time.Since(t0).Seconds()
				if err != nil {
					failed.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, res.Body)
				res.Body.Close()
				switch res.StatusCode {
				case http.StatusOK:
					completed.Add(1)
					latencies[w] = append(latencies[w], elapsed)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	mode := "closed-loop"
	if rate > 0 {
		mode = fmt.Sprintf("paced %.0f/s", rate)
	}
	fmt.Printf("target %s: %d rounds in %.2f s -> %.1f rounds/sec (%s, concurrency %d, tenants %d, n=%d)\n",
		target, completed.Load(), elapsed, float64(completed.Load())/elapsed, mode, concurrency, tenants, n)
	if len(all) > 0 {
		fmt.Printf("latency: p50 %.1f ms  p99 %.1f ms  max %.1f ms\n",
			1e3*quantile(all, 0.50), 1e3*quantile(all, 0.99), 1e3*all[len(all)-1])
	}
	fmt.Printf("rejected (429): %d  errors: %d\n", rejected.Load(), failed.Load())
	if completed.Load() == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no round completed")
		os.Exit(1)
	}
}

// quantile reads the q-th quantile from an ascending-sorted sample by
// nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
