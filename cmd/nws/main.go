// Command nws demonstrates the Network Weather Service on the simulated
// Figure 2 testbed: it runs the sensors for a stretch of virtual time,
// then prints the per-resource forecasts, the forecaster each series
// selected, and the per-forecaster error table for one host.
//
// Usage:
//
//	nws -seed 11 -horizon 3600 -period 10 -detail sparc2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"apples"
)

func main() {
	seed := flag.Int64("seed", 11, "ambient-load seed")
	horizon := flag.Float64("horizon", 3600, "virtual seconds to sense")
	period := flag.Float64("period", 10, "sensor period (virtual seconds)")
	detail := flag.String("detail", "sparc2", "host whose forecaster error table to print")
	save := flag.String("save", "", "write the sensor history snapshot to this file")
	restore := flag.String("restore", "", "seed the forecaster banks from a snapshot file")
	flag.Parse()

	eng := apples.NewEngine()
	tp := apples.SDSCPCL(eng, apples.TestbedOptions{Seed: *seed})
	svc := apples.NewNWS(eng, *period)
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fail(err)
		}
		snap, err := apples.ReadNWSSnapshot(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := svc.Restore(snap); err != nil {
			fail(err)
		}
		fmt.Printf("restored %d host and %d link series from %s\n\n", len(snap.CPU), len(snap.Links), *restore)
	}
	svc.WatchTopology(tp)
	if err := eng.RunUntil(*horizon); err != nil {
		fail(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		if _, err := svc.Snapshot().WriteTo(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("snapshot written to %s\n\n", *save)
	}

	fmt.Printf("Network Weather Service after %.0f s of virtual time (period %.0f s)\n\n", *horizon, *period)
	fmt.Print(svc.Report())

	bank := svc.CPUBank(*detail)
	if bank == nil {
		fail(fmt.Errorf("unknown host %q", *detail))
	}
	fmt.Printf("\nforecaster bank for CPU availability of %s (%d samples):\n", *detail, bank.Len())
	mse := bank.MSE()
	mae := bank.MAE()
	names := make([]string, 0, len(mse))
	for n := range mse {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return mse[names[i]] < mse[names[j]] })
	fmt.Println("  forecaster     MSE        MAE")
	for _, n := range names {
		fmt.Printf("  %-12s %9.6f  %9.6f\n", n, mse[n], mae[n])
	}
	v, by, _ := bank.Forecast()
	fmt.Printf("  selected: %s -> forecast %.3f (truth now: %.3f)\n",
		by, v, tp.Host(*detail).Availability())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nws:", err)
	os.Exit(1)
}
