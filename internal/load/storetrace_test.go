package load

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"apples/internal/mstore"
)

func TestTraceFileRoundTrip(t *testing.T) {
	tf := TraceFile{Dir: filepath.Join(t.TempDir(), "traces")}
	want := map[string][]Step{
		"sparc2": {{At: 0, Value: 1.25}, {At: 12.5, Value: 0}, {At: 60, Value: 2.75}},
		"alpha1": {{At: 0.1, Value: 0.5}, {At: math.Pi, Value: 1e-9}},
	}
	if err := tf.Write(want); err != nil {
		t.Fatal(err)
	}
	got, err := tf.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
	steps, err := tf.ReadSeries("sparc2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, want["sparc2"]) {
		t.Fatalf("ReadSeries diverged: %+v", steps)
	}
	if _, err := tf.ReadSeries("missing"); err == nil {
		t.Fatal("ReadSeries accepted a series the store does not hold")
	}

	// A second Write extends the same series durably.
	if err := tf.Write(map[string][]Step{"sparc2": {{At: 90, Value: 3}}}); err != nil {
		t.Fatal(err)
	}
	steps, err = tf.ReadSeries("sparc2")
	if err != nil {
		t.Fatal(err)
	}
	if got := steps[len(steps)-1]; got != (Step{At: 90, Value: 3}) {
		t.Fatalf("append did not extend the series: last step %+v", got)
	}
}

// TestTraceFileSharedStore pins the co-tenancy contract: load traces and
// other record kinds can share one store, and each reader sees only its
// own kind.
func TestTraceFileSharedStore(t *testing.T) {
	dir := t.TempDir()
	st, err := mstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mstore.Record{Kind: mstore.KindCPU, Series: "sparc2", Tick: 1, Value: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrace(st, "sparc2", []Step{{At: 0, Value: 1}, {At: 5, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mstore.Record{Kind: mstore.KindBandwidth, Series: "lnk", Tick: 1, Value: 7}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := TraceFile{Dir: dir}.Read()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]Step{"sparc2": {{At: 0, Value: 1}, {At: 5, Value: 2}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shared store read diverged: %+v", got)
	}
}

func TestTraceFileRejectsBadTraces(t *testing.T) {
	dir := t.TempDir()
	tf := TraceFile{Dir: dir}
	for name, traces := range map[string]map[string][]Step{
		"empty series":    {"x": nil},
		"negative time":   {"x": {{At: -1, Value: 0}}},
		"negative value":  {"x": {{At: 0, Value: -2}}},
		"non-increasing":  {"x": {{At: 5, Value: 1}, {At: 5, Value: 2}}},
		"time regression": {"x": {{At: 5, Value: 1}, {At: 4, Value: 2}}},
	} {
		if err := tf.Write(traces); err == nil {
			t.Errorf("%s: Write accepted an invalid trace", name)
		}
	}

	// A store whose on-disk records regress in time must be rejected on
	// read, too: write two Steps as raw records out of order.
	st, err := mstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []float64{9, 3} {
		r := mstore.Record{Kind: mstore.KindLoad, Series: "x", Tick: mstore.TimeTick(at), Value: 1}
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Read(); err == nil {
		t.Fatal("Read accepted a store with regressing step times")
	}
}

// TestTraceFileDrivesSource closes the loop with the generator side: a
// recorded source written through a TraceFile and read back replays the
// same load curve.
func TestTraceFileDrivesSource(t *testing.T) {
	src := NewPeriodic(5, 600, 1, 0.5, 0)
	steps := RecordSource(src, 5, 1200)
	tf := TraceFile{Dir: t.TempDir()}
	if err := tf.Write(map[string][]Step{"gen": steps}); err != nil {
		t.Fatal(err)
	}
	back, err := tf.ReadSeries("gen")
	if err != nil {
		t.Fatal(err)
	}
	orig, replay := NewTrace(steps), NewTrace(back)
	for ts := 0.0; ts < 1200; ts += 7 {
		a, _ := orig.Sample(ts)
		b, _ := replay.Sample(ts)
		if a != b {
			t.Fatalf("replayed trace diverged at t=%v: %v vs %v", ts, a, b)
		}
	}
}
