package load

import (
	"fmt"
	"math"
)

// Source is a piecewise-constant load process. Sample(t) returns the load
// value at time t and the time `until` at which the value may next change
// (exclusive end of the current segment; +Inf for a constant tail).
//
// Sample must be called with non-decreasing t; implementations may panic on
// out-of-order queries.
type Source interface {
	Sample(t float64) (value, until float64)
}

// Constant is a fixed load level forever.
type Constant float64

// Sample implements Source.
func (c Constant) Sample(t float64) (float64, float64) {
	return float64(c), math.Inf(1)
}

// segmented is shared machinery for lazy piecewise-constant generators: it
// caches the current segment and pulls new segments from next() as time
// advances.
type segmented struct {
	start, end float64
	value      float64
	last       float64
	next       func() (value, duration float64)
	primed     bool
}

func (s *segmented) Sample(t float64) (float64, float64) {
	if t < s.last {
		panic(fmt.Sprintf("load: Sample time went backwards: %v after %v", t, s.last))
	}
	s.last = t
	if !s.primed {
		v, d := s.next()
		s.start, s.end, s.value = 0, d, v
		s.primed = true
	}
	for t >= s.end {
		v, d := s.next()
		if d <= 0 {
			panic("load: generator produced non-positive segment duration")
		}
		s.start = s.end
		s.end += d
		s.value = v
	}
	return s.value, s.end
}

// clip returns v clamped to be non-negative (loads cannot be negative).
func clip(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
