package load

import (
	"math"
	"sort"

	"apples/internal/sim"
)

// NewOnOff returns a two-state Markov-modulated load: exponential idle
// periods at level 0 (mean idleMean seconds) alternating with exponential
// busy periods (mean busyMean) at level busyLoad. It starts idle.
//
// This models interactive users: long quiet stretches punctuated by bursts
// of competing work.
func NewOnOff(rng *sim.Rand, idleMean, busyMean, busyLoad float64) Source {
	busy := false
	s := &segmented{}
	s.next = func() (float64, float64) {
		busy = !busy
		if busy {
			return busyLoad, positive(rng.Exp(busyMean))
		}
		return 0, positive(rng.Exp(idleMean))
	}
	// First segment: idle.
	busy = true // toggled to false on first call
	return s
}

// NewAR1 returns a first-order autoregressive load sampled every dt seconds:
//
//	x(k+1) = mean + phi*(x(k)-mean) + Normal(0, sigma)
//
// clipped at zero. Unix run-queue lengths are well modeled by strongly
// autocorrelated AR processes, which is what makes NWS-style short-term
// prediction work; phi close to 1 gives slowly wandering load.
func NewAR1(rng *sim.Rand, dt, mean, phi, sigma float64) Source {
	if dt <= 0 {
		panic("load: AR1 dt must be positive")
	}
	x := mean
	s := &segmented{}
	s.next = func() (float64, float64) {
		v := clip(x)
		x = mean + phi*(x-mean) + rng.Normal(0, sigma)
		return v, dt
	}
	return s
}

// NewPeriodic returns a sinusoidal diurnal-style load sampled every dt
// seconds: base + amp*sin(2*pi*(t+phase)/period), clipped at zero.
func NewPeriodic(dt, period, base, amp, phase float64) Source {
	if dt <= 0 || period <= 0 {
		panic("load: Periodic dt and period must be positive")
	}
	t := 0.0
	s := &segmented{}
	s.next = func() (float64, float64) {
		v := clip(base + amp*math.Sin(2*math.Pi*(t+phase)/period))
		t += dt
		return v, dt
	}
	return s
}

// NewSpikes returns a load that is usually baseline but jumps to
// baseline+height for `width` seconds at exponential inter-arrival gaps of
// mean `gapMean`. Spikes model batch jobs landing on a shared machine.
func NewSpikes(rng *sim.Rand, gapMean, width, baseline, height float64) Source {
	if width <= 0 {
		panic("load: spike width must be positive")
	}
	inSpike := false
	s := &segmented{}
	s.next = func() (float64, float64) {
		inSpike = !inSpike
		if inSpike {
			return baseline + height, width
		}
		return baseline, positive(rng.Exp(gapMean))
	}
	inSpike = true // first segment is a quiet gap
	return s
}

// Step is one segment of a replayed trace.
type Step struct {
	At    float64 // segment start time
	Value float64 // load from At until the next step
}

// NewTrace replays an explicit piecewise-constant trace. Steps are sorted by
// time; the value before the first step is the first step's value, and the
// last value holds forever.
func NewTrace(steps []Step) Source {
	if len(steps) == 0 {
		return Constant(0)
	}
	s := append([]Step(nil), steps...)
	sort.Slice(s, func(i, j int) bool { return s[i].At < s[j].At })
	return &trace{steps: s}
}

type trace struct {
	steps []Step
	idx   int
	last  float64
}

func (tr *trace) Sample(t float64) (float64, float64) {
	if t < tr.last {
		panic("load: trace sampled backwards")
	}
	tr.last = t
	for tr.idx+1 < len(tr.steps) && tr.steps[tr.idx+1].At <= t {
		tr.idx++
	}
	until := math.Inf(1)
	if tr.idx+1 < len(tr.steps) {
		until = tr.steps[tr.idx+1].At
	}
	return clip(tr.steps[tr.idx].Value), until
}

// NewComposite sums several sources; the combined process changes whenever
// any component changes.
func NewComposite(srcs ...Source) Source {
	if len(srcs) == 1 {
		return srcs[0]
	}
	return composite(srcs)
}

type composite []Source

func (c composite) Sample(t float64) (float64, float64) {
	sum, until := 0.0, math.Inf(1)
	for _, s := range c {
		v, u := s.Sample(t)
		sum += v
		if u < until {
			until = u
		}
	}
	return sum, until
}

// Scale multiplies a source's values by factor (>= 0).
func Scale(src Source, factor float64) Source {
	return scaled{src: src, f: factor}
}

type scaled struct {
	src Source
	f   float64
}

func (s scaled) Sample(t float64) (float64, float64) {
	v, u := s.src.Sample(t)
	return clip(v * s.f), u
}

// Delay holds the source at zero until `start`, then plays it with its
// origin shifted to start. Used to introduce contention mid-run for
// failure-injection experiments.
func Delay(src Source, start float64) Source {
	return &delayed{src: src, start: start}
}

type delayed struct {
	src   Source
	start float64
}

func (d *delayed) Sample(t float64) (float64, float64) {
	if t < d.start {
		return 0, d.start
	}
	v, u := d.src.Sample(t - d.start)
	return v, u + d.start
}

// positive makes exponential draws usable as segment durations (the
// segmented iterator requires strictly positive lengths).
func positive(v float64) float64 {
	if v <= 0 {
		return 1e-9
	}
	return v
}
