package load

import (
	"math"
	"testing"
	"testing/quick"

	"apples/internal/sim"
)

func TestConstant(t *testing.T) {
	c := Constant(2.5)
	v, until := c.Sample(0)
	if v != 2.5 || !math.IsInf(until, 1) {
		t.Fatalf("Constant.Sample = %v,%v", v, until)
	}
	v, _ = c.Sample(1e9)
	if v != 2.5 {
		t.Fatalf("Constant drifted: %v", v)
	}
}

func TestOnOffAlternates(t *testing.T) {
	src := NewOnOff(sim.NewRand(1), 10, 5, 3)
	sawIdle, sawBusy := false, false
	t0 := 0.0
	for i := 0; i < 200; i++ {
		v, until := src.Sample(t0)
		switch v {
		case 0:
			sawIdle = true
		case 3:
			sawBusy = true
		default:
			t.Fatalf("OnOff produced level %v, want 0 or 3", v)
		}
		if until <= t0 {
			t.Fatalf("segment does not advance: until=%v t=%v", until, t0)
		}
		t0 = until
	}
	if !sawIdle || !sawBusy {
		t.Fatalf("OnOff never alternated: idle=%v busy=%v", sawIdle, sawBusy)
	}
}

func TestOnOffStartsIdle(t *testing.T) {
	src := NewOnOff(sim.NewRand(2), 10, 5, 3)
	v, _ := src.Sample(0)
	if v != 0 {
		t.Fatalf("OnOff starts at %v, want idle 0", v)
	}
}

func TestAR1MeanAndNonNegative(t *testing.T) {
	src := NewAR1(sim.NewRand(3), 1, 2, 0.9, 0.3)
	vals := SampleEvery(src, 1, 20000)
	sum := 0.0
	for _, v := range vals {
		if v < 0 {
			t.Fatalf("AR1 produced negative load %v", v)
		}
		sum += v
	}
	mean := sum / float64(len(vals))
	if math.Abs(mean-2) > 0.2 {
		t.Fatalf("AR1 mean %v, want ~2", mean)
	}
}

func TestAR1Autocorrelated(t *testing.T) {
	src := NewAR1(sim.NewRand(4), 1, 2, 0.95, 0.2)
	vals := SampleEvery(src, 1, 5000)
	// lag-1 autocorrelation should be clearly positive for phi=0.95
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	num, den := 0.0, 0.0
	for i := 0; i < len(vals)-1; i++ {
		num += (vals[i] - mean) * (vals[i+1] - mean)
		den += (vals[i] - mean) * (vals[i] - mean)
	}
	if r := num / den; r < 0.7 {
		t.Fatalf("AR1(phi=0.95) lag-1 autocorr = %v, want > 0.7", r)
	}
}

func TestPeriodicShape(t *testing.T) {
	src := NewPeriodic(1, 100, 2, 1, 0)
	vals := SampleEvery(src, 1, 100)
	minv, maxv := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		minv = math.Min(minv, v)
		maxv = math.Max(maxv, v)
	}
	if maxv < 2.9 || minv > 1.1 {
		t.Fatalf("Periodic range [%v,%v], want ~[1,3]", minv, maxv)
	}
}

func TestPeriodicClipsNegative(t *testing.T) {
	src := NewPeriodic(1, 50, 0, 2, 0) // dips to -2 without clipping
	for _, v := range SampleEvery(src, 1, 100) {
		if v < 0 {
			t.Fatalf("Periodic produced negative %v", v)
		}
	}
}

func TestSpikes(t *testing.T) {
	src := NewSpikes(sim.NewRand(5), 20, 2, 0.5, 4)
	levels := map[float64]bool{}
	t0 := 0.0
	for i := 0; i < 100; i++ {
		v, until := src.Sample(t0)
		levels[v] = true
		t0 = until
	}
	if !levels[0.5] || !levels[4.5] {
		t.Fatalf("Spikes levels seen: %v, want baseline 0.5 and spike 4.5", levels)
	}
}

func TestTraceReplay(t *testing.T) {
	src := NewTrace([]Step{{At: 0, Value: 1}, {At: 10, Value: 3}, {At: 20, Value: 0}})
	cases := []struct {
		t, want, until float64
	}{
		{0, 1, 10}, {5, 1, 10}, {10, 3, 20}, {19.9, 3, 20}, {20, 0, math.Inf(1)}, {100, 0, math.Inf(1)},
	}
	for _, c := range cases {
		v, u := src.Sample(c.t)
		if v != c.want || u != c.until {
			t.Fatalf("Trace.Sample(%v) = %v,%v, want %v,%v", c.t, v, u, c.want, c.until)
		}
	}
}

func TestTraceUnsortedInput(t *testing.T) {
	src := NewTrace([]Step{{At: 20, Value: 5}, {At: 0, Value: 1}})
	if v, _ := src.Sample(0); v != 1 {
		t.Fatalf("unsorted trace start = %v, want 1", v)
	}
	if v, _ := src.Sample(25); v != 5 {
		t.Fatalf("unsorted trace tail = %v, want 5", v)
	}
}

func TestEmptyTraceIsZero(t *testing.T) {
	src := NewTrace(nil)
	if v, _ := src.Sample(5); v != 0 {
		t.Fatalf("empty trace = %v, want 0", v)
	}
}

func TestCompositeSums(t *testing.T) {
	src := NewComposite(Constant(1), NewTrace([]Step{{At: 0, Value: 0}, {At: 5, Value: 2}}))
	if v, u := src.Sample(0); v != 1 || u != 5 {
		t.Fatalf("composite at 0 = %v,%v, want 1,5", v, u)
	}
	if v, _ := src.Sample(5); v != 3 {
		t.Fatalf("composite at 5 = %v, want 3", v)
	}
}

func TestScale(t *testing.T) {
	src := Scale(Constant(2), 1.5)
	if v, _ := src.Sample(0); v != 3 {
		t.Fatalf("Scale = %v, want 3", v)
	}
}

func TestDelay(t *testing.T) {
	src := Delay(Constant(4), 10)
	if v, u := src.Sample(0); v != 0 || u != 10 {
		t.Fatalf("Delay before start = %v,%v", v, u)
	}
	if v, _ := src.Sample(10); v != 4 {
		t.Fatalf("Delay after start = %v, want 4", v)
	}
}

func TestBackwardsSamplePanics(t *testing.T) {
	src := NewAR1(sim.NewRand(6), 1, 1, 0.5, 0.1)
	src.Sample(10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Sample did not panic")
		}
	}()
	src.Sample(5)
}

func TestMeanOverConstant(t *testing.T) {
	if m := MeanOver(Constant(2), 100); m != 2 {
		t.Fatalf("MeanOver(Constant(2)) = %v", m)
	}
}

func TestMeanOverTrace(t *testing.T) {
	src := NewTrace([]Step{{At: 0, Value: 0}, {At: 50, Value: 2}})
	if m := MeanOver(src, 100); math.Abs(m-1) > 1e-12 {
		t.Fatalf("MeanOver = %v, want 1", m)
	}
}

func TestMaxOver(t *testing.T) {
	src := NewTrace([]Step{{At: 0, Value: 1}, {At: 5, Value: 7}, {At: 6, Value: 2}})
	if m := MaxOver(src, 100); m != 7 {
		t.Fatalf("MaxOver = %v, want 7", m)
	}
}

// Property: all generators produce non-negative values and strictly
// advancing segments for any seed.
func TestGeneratorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRand(seed)
		srcs := []Source{
			NewOnOff(rng.Fork(), 5, 5, 2),
			NewAR1(rng.Fork(), 0.5, 1, 0.8, 0.5),
			NewPeriodic(1, 60, 1, 2, 0),
			NewSpikes(rng.Fork(), 10, 1, 0, 3),
		}
		for _, s := range srcs {
			t0 := 0.0
			for i := 0; i < 500; i++ {
				v, until := s.Sample(t0)
				if v < 0 || math.IsNaN(v) || until <= t0 {
					return false
				}
				t0 = until
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() Source { return NewOnOff(sim.NewRand(99), 3, 3, 1) }
	a, b := mk(), mk()
	t0 := 0.0
	for i := 0; i < 300; i++ {
		va, ua := a.Sample(t0)
		vb, ub := b.Sample(t0)
		if va != vb || ua != ub {
			t.Fatalf("same-seed generators diverged at segment %d", i)
		}
		t0 = ua
	}
}

func BenchmarkAR1Sample(b *testing.B) {
	src := NewAR1(sim.NewRand(1), 1, 2, 0.9, 0.3)
	b.ReportAllocs()
	t0 := 0.0
	for i := 0; i < b.N; i++ {
		_, until := src.Sample(t0)
		t0 = until
	}
}
