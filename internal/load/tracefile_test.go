package load

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"apples/internal/sim"
)

func TestParseTraceBasic(t *testing.T) {
	in := `# a comment
0 1.5
10 0    # inline comment

25.5 3
`
	steps, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{{0, 1.5}, {10, 0}, {25.5, 3}}
	if len(steps) != len(want) {
		t.Fatalf("steps %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps[%d] = %v, want %v", i, steps[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"three fields":  "0 1 2\n",
		"bad time":      "x 1\n",
		"bad value":     "0 y\n",
		"negative time": "-1 0\n",
		"negative load": "0 -2\n",
		"non-monotonic": "5 1\n5 2\n",
		"empty":         "# nothing\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	steps := []Step{{0, 0.5}, {3.25, 2}, {100, 0}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, steps); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(steps) {
		t.Fatalf("round trip %v", back)
	}
	for i := range steps {
		if back[i] != steps[i] {
			t.Fatalf("round trip[%d] = %v, want %v", i, back[i], steps[i])
		}
	}
}

// Property: any generated trace survives a write/parse round trip and
// replays to the same values.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := NewOnOff(sim.NewRand(seed), 5, 5, 2)
		steps := RecordSource(src, 1, 60)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, steps); err != nil {
			return false
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			return false
		}
		a, b := NewTrace(steps), NewTrace(back)
		for ti := 0.0; ti < 60; ti += 0.5 {
			va, _ := a.Sample(ti)
			vb, _ := b.Sample(ti)
			if va != vb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordSourceCapturesChanges(t *testing.T) {
	src := NewTrace([]Step{{0, 1}, {10, 3}, {20, 1}})
	steps := RecordSource(src, 1, 30)
	if len(steps) != 3 {
		t.Fatalf("recorded %v", steps)
	}
	replay := NewTrace(steps)
	if v, _ := replay.Sample(15); v != 3 {
		t.Fatalf("replay at 15 = %v", v)
	}
}
