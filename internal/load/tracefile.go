package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseTrace reads a piecewise-constant load trace from a text stream.
// Each non-empty line is "time value" (whitespace-separated); '#' starts
// a comment. Times must be non-negative and strictly increasing; values
// must be non-negative. This is the import path for measured machine-load
// traces (e.g. converted vmstat/uptime logs) so real contention can drive
// the simulated testbeds.
func ParseTrace(r io.Reader) ([]Step, error) {
	var steps []Step
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("load: trace line %d: want \"time value\", got %q", lineNo, line)
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("load: trace line %d: bad time %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("load: trace line %d: bad value %q: %v", lineNo, fields[1], err)
		}
		if at < 0 {
			return nil, fmt.Errorf("load: trace line %d: negative time %v", lineNo, at)
		}
		if v < 0 {
			return nil, fmt.Errorf("load: trace line %d: negative load %v", lineNo, v)
		}
		if len(steps) > 0 && at <= steps[len(steps)-1].At {
			return nil, fmt.Errorf("load: trace line %d: time %v not increasing", lineNo, at)
		}
		steps = append(steps, Step{At: at, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: reading trace: %w", err)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("load: empty trace")
	}
	return steps, nil
}

// WriteTrace writes steps in the format ParseTrace reads.
func WriteTrace(w io.Writer, steps []Step) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# time value"); err != nil {
		return err
	}
	for _, s := range steps {
		if _, err := fmt.Fprintf(bw, "%g %g\n", s.At, s.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RecordSource samples a source every dt over [0, horizon) and returns the
// equivalent explicit trace — useful for exporting a generated contention
// scenario so a run can be repeated or inspected.
func RecordSource(src Source, dt, horizon float64) []Step {
	var steps []Step
	prev := -1.0
	for t := 0.0; t < horizon; t += dt {
		v, _ := src.Sample(t)
		if v != prev {
			steps = append(steps, Step{At: t, Value: v})
			prev = v
		}
	}
	if len(steps) == 0 {
		steps = append(steps, Step{At: 0, Value: 0})
	}
	return steps
}
