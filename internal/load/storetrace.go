package load

import (
	"fmt"
	"sort"

	"apples/internal/mstore"
)

// TraceFile is a durable load-trace collection backed by an mstore
// directory — the same segment/WAL format the NWS sensing history uses,
// so one store can hold both measurements and the contention scenario
// that produced them. Each step of a series becomes one KindLoad
// record: the record tick carries the step time (mstore.TimeTick, a
// lossless float64 embedding) and the record value the load level.
type TraceFile struct {
	// Dir is the store directory. Write creates it on first use.
	Dir string
}

// Write appends every series' steps to the store, fsyncing before it
// returns. Steps must satisfy the ParseTrace invariants (non-negative,
// strictly increasing times); series are written in sorted name order
// so identical inputs produce identical stores.
func (tf TraceFile) Write(traces map[string][]Step) error {
	st, err := mstore.Open(tf.Dir)
	if err != nil {
		return err
	}
	defer st.Close()
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := AppendTrace(st, name, traces[name]); err != nil {
			return err
		}
	}
	return st.Close()
}

// Read loads every load-trace series in the store. Records of other
// kinds (e.g. NWS sensor history sharing the directory) are skipped.
func (tf TraceFile) Read() (map[string][]Step, error) {
	st, err := mstore.Open(tf.Dir, mstore.ReadOnly())
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return DecodeTraces(st)
}

// ReadSeries loads one series and errors if the store doesn't hold it.
func (tf TraceFile) ReadSeries(name string) ([]Step, error) {
	traces, err := tf.Read()
	if err != nil {
		return nil, err
	}
	steps, ok := traces[name]
	if !ok {
		return nil, fmt.Errorf("load: store %s holds no trace series %q", tf.Dir, name)
	}
	return steps, nil
}

// AppendTrace writes one series' steps to an already-open store —
// the building block for mixing traces into a store another subsystem
// owns. The steps are validated like ParseTrace input.
func AppendTrace(st *mstore.Store, series string, steps []Step) error {
	if len(steps) == 0 {
		return fmt.Errorf("load: empty trace for series %q", series)
	}
	prev := -1.0
	for _, s := range steps {
		if s.At < 0 || s.Value < 0 {
			return fmt.Errorf("load: series %q: negative step {%v %v}", series, s.At, s.Value)
		}
		if s.At <= prev && prev >= 0 {
			return fmt.Errorf("load: series %q: time %v not increasing", series, s.At)
		}
		prev = s.At
		r := mstore.Record{Kind: mstore.KindLoad, Series: series, Tick: mstore.TimeTick(s.At), Value: s.Value}
		if err := st.Append(r); err != nil {
			return fmt.Errorf("load: appending series %q: %w", series, err)
		}
	}
	return st.Sync()
}

// DecodeTraces streams an open store and reassembles its KindLoad
// records into per-series step lists, re-checking the trace invariants
// so a corrupted or hand-edited store cannot smuggle in a trace
// ParseTrace would have rejected.
func DecodeTraces(st *mstore.Store) (map[string][]Step, error) {
	traces := make(map[string][]Step)
	for r, err := range st.Records() {
		if err != nil {
			return nil, fmt.Errorf("load: reading trace store: %w", err)
		}
		if r.Kind != mstore.KindLoad {
			continue
		}
		s := Step{At: mstore.TickTime(r.Tick), Value: r.Value}
		prev := traces[r.Series]
		if s.At < 0 || s.Value < 0 {
			return nil, fmt.Errorf("load: store series %q: negative step {%v %v}", r.Series, s.At, s.Value)
		}
		if len(prev) > 0 && s.At <= prev[len(prev)-1].At {
			return nil, fmt.Errorf("load: store series %q: time %v not increasing", r.Series, s.At)
		}
		traces[r.Series] = append(prev, s)
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("load: store holds no trace series")
	}
	return traces, nil
}
