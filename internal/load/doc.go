// Package load generates the ambient contention processes that make the
// simulated metacomputer non-dedicated.
//
// Every generator implements Source: a lazily evaluated, piecewise-constant
// function of virtual time whose value is "number of competing processes"
// on a CPU (or fractional cross-traffic load on a link). Hosts divide their
// delivered speed by (1 + load), so a load of 0 means a dedicated machine
// and a load of 1 means the application gets half the CPU — the same
// availability signal the Network Weather Service senses and forecasts in
// the paper.
//
// Generators are deterministic per seed and must be queried with
// non-decreasing times, which the simulation guarantees.
package load
