package load

// MeanOver integrates a source over [0, horizon] and returns the
// time-weighted mean load. It consumes the source (sources are single-pass),
// so callers use a fresh generator with the same seed when they need both a
// mean and a simulation run.
func MeanOver(src Source, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	t, acc := 0.0, 0.0
	for t < horizon {
		v, until := src.Sample(t)
		end := until
		if end > horizon {
			end = horizon
		}
		acc += v * (end - t)
		if until <= t { // constant tail guard
			break
		}
		t = end
	}
	return acc / horizon
}

// MaxOver returns the maximum load value attained in [0, horizon].
func MaxOver(src Source, horizon float64) float64 {
	t, maxv := 0.0, 0.0
	for t < horizon {
		v, until := src.Sample(t)
		if v > maxv {
			maxv = v
		}
		if until <= t {
			break
		}
		t = until
	}
	return maxv
}

// SampleEvery reads the source at fixed dt intervals over [0,horizon),
// returning the observed values. NWS sensor tests use it as ground truth.
func SampleEvery(src Source, dt, horizon float64) []float64 {
	var out []float64
	for t := 0.0; t < horizon; t += dt {
		v, _ := src.Sample(t)
		out = append(out, v)
	}
	return out
}
