package expt

import (
	"fmt"
	"strings"
	"time"

	"apples/internal/nws"
	"apples/internal/sim"
)

// NWSScaleRow is one (series count, window size) cell of the NWS sensing
// throughput sweep.
type NWSScaleRow struct {
	Series              int
	Window              int
	Ticks               int
	UpdatesPerSec       float64 // incremental forecaster bank
	LegacyUpdatesPerSec float64 // copy+sort re-fit bank
}

// Speedup returns the incremental/legacy throughput ratio.
func (r NWSScaleRow) Speedup() float64 {
	if r.LegacyUpdatesPerSec == 0 {
		return 0
	}
	return r.UpdatesPerSec / r.LegacyUpdatesPerSec
}

// nwsScaleBank composes the windowed forecasters the sweep exercises, all
// at window k.
func nwsScaleBank(k int, legacy bool) *nws.Bank {
	ark := k
	if ark < 3 {
		ark = 3
	}
	if legacy {
		return nws.NewBank(
			nws.NewLastValue(),
			nws.NewLegacySlidingMean(k, "mean"),
			nws.NewLegacySlidingMedian(k, "median"),
			nws.NewLegacyTrimmedMean(k, k/8, "trim"),
			nws.NewLegacyWindowedAR1(ark, "ar"),
		)
	}
	return nws.NewBank(
		nws.NewLastValue(),
		nws.NewSlidingMean(k, "mean"),
		nws.NewSlidingMedian(k, "median"),
		nws.NewTrimmedMean(k, k/8, "trim"),
		nws.NewWindowedAR1(ark, "ar"),
	)
}

// NWSScale measures raw sensing throughput — forecaster-bank updates per
// wall-clock second — as the number of watched series and the forecaster
// window size grow, for the incremental bank against the legacy copy+sort
// bank. This is the information-pool cost a metacomputer pays every
// sensing period, so it bounds how many resources one NWS instance can
// watch at a given cadence.
func NWSScale(seriesCounts, windows []int, ticks int, seed int64) []NWSScaleRow {
	if len(seriesCounts) == 0 {
		seriesCounts = []int{100, 1000, 10000}
	}
	if len(windows) == 0 {
		windows = []int{5, 21, 101}
	}
	if ticks <= 0 {
		ticks = 200
	}
	var rows []NWSScaleRow
	for _, k := range windows {
		for _, s := range seriesCounts {
			// One smooth autocorrelated value stream, shared by every
			// series: the cost under test is bank arithmetic, not RNG.
			rng := sim.NewRand(seed + int64(k))
			vals := make([]float64, ticks)
			x := 0.5
			for i := range vals {
				x = 0.5 + 0.8*(x-0.5) + rng.Normal(0, 0.1)
				vals[i] = x
			}
			measure := func(legacy bool) float64 {
				banks := make([]*nws.Bank, s)
				for i := range banks {
					banks[i] = nwsScaleBank(k, legacy)
				}
				// Warm every window before timing so steady-state cost is
				// what gets measured.
				for _, v := range vals {
					for _, b := range banks {
						b.Update(v)
					}
				}
				start := time.Now()
				for _, v := range vals {
					for _, b := range banks {
						b.Update(v)
					}
				}
				elapsed := time.Since(start).Seconds()
				if elapsed <= 0 {
					return 0
				}
				return float64(s*ticks) / elapsed
			}
			rows = append(rows, NWSScaleRow{
				Series:              s,
				Window:              k,
				Ticks:               ticks,
				UpdatesPerSec:       measure(false),
				LegacyUpdatesPerSec: measure(true),
			})
		}
	}
	return rows
}

// FormatNWSScale renders the sensing-throughput sweep.
func FormatNWSScale(rows []NWSScaleRow) string {
	var sb strings.Builder
	sb.WriteString("NWS sensing throughput — bank updates/sec vs series count and window size\n")
	sb.WriteString("  window  series   ticks  incremental(up/s)  legacy(up/s)   speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %6d  %6d  %6d  %17.3g  %12.3g  %7.1fx\n",
			r.Window, r.Series, r.Ticks, r.UpdatesPerSec, r.LegacyUpdatesPerSec, r.Speedup())
	}
	return sb.String()
}

// NWSScaleCSV flattens the sweep for -csv output.
func NWSScaleCSV(rows []NWSScaleRow) ([]string, [][]string) {
	header := []string{"window", "series", "ticks", "updates_per_sec", "legacy_updates_per_sec", "speedup"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Window), fmt.Sprint(r.Series), fmt.Sprint(r.Ticks),
			fmt.Sprintf("%.1f", r.UpdatesPerSec),
			fmt.Sprintf("%.1f", r.LegacyUpdatesPerSec),
			fmt.Sprintf("%.2f", r.Speedup()),
		})
	}
	return header, cells
}
