package expt

import (
	"strings"
	"testing"
)

func TestAdaptationBeatsStaticUnderLoadShift(t *testing.T) {
	res, err := Adaptation(1200, 150, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d, want 2", len(res.Rows))
	}
	static, adaptive := res.Rows[0], res.Rows[1]
	if static.Replans != 0 {
		t.Fatalf("static run replanned %d times", static.Replans)
	}
	if adaptive.Replans == 0 {
		t.Fatal("adaptive run never replanned despite the load shift")
	}
	if adaptive.MigratedMB <= 0 {
		t.Fatal("adaptive run migrated no state")
	}
	if adaptive.Time >= static.Time {
		t.Fatalf("adaptive %v not faster than static %v", adaptive.Time, static.Time)
	}
	out := FormatAdaptation(res)
	if !strings.Contains(out, "Redistribution") || !strings.Contains(out, "speedup") {
		t.Fatalf("format: %q", out)
	}
}
