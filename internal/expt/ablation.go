package expt

import (
	"fmt"
	"strings"
)

// ForecastAblationRow compares the executed time of AppLeS schedules built
// from different information sources on the same conditions (ablation A1:
// "a schedule is only as good as the accuracy of its underlying
// predictions", Section 3.6).
type ForecastAblationRow struct {
	N      int
	Oracle float64 // perfect instantaneous information
	NWS    float64 // forecasts from the Network Weather Service
	Static float64 // compile-time information only
}

// AblationForecast runs the three information sources back-to-back.
func AblationForecast(sizes []int, trials int, seed int64) ([]ForecastAblationRow, error) {
	if len(sizes) == 0 {
		sizes = []int{1000, 1500, 2000}
	}
	if trials == 0 {
		trials = 3
	}
	var rows []ForecastAblationRow
	for _, n := range sizes {
		row := ForecastAblationRow{N: n}
		for _, sched := range []Scheduler{SchedAppLeSOracle, SchedAppLeS, SchedAppLeSStatic} {
			avg, err := Average(RunSpec{Scheduler: sched, N: n, Iterations: 60, Seed: seed}, trials)
			if err != nil {
				return nil, fmt.Errorf("ablation n=%d %s: %w", n, sched, err)
			}
			switch sched {
			case SchedAppLeSOracle:
				row.Oracle = avg
			case SchedAppLeS:
				row.NWS = avg
			case SchedAppLeSStatic:
				row.Static = avg
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblationForecast renders ablation A1.
func FormatAblationForecast(rows []ForecastAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A1 — information source vs executed time (seconds)\n")
	sb.WriteString("      N     oracle        NWS     static   static/NWS\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %9.2f  %9.2f  %9.2f  %9.2fx\n",
			r.N, r.Oracle, r.NWS, r.Static, r.Static/r.NWS)
	}
	return sb.String()
}

// RiskAblationRow compares risk postures (ablation A4): the agent plans
// against forecast minus k times the forecaster's own RMSE.
type RiskAblationRow struct {
	K         float64
	MeanTime  float64
	WorstTime float64
	MeanHosts float64 // hosts used per schedule — risk aversion shrinks it
}

// AblationRisk sweeps the conservatism factor k over several seeds and
// reports mean and worst-case executed times. Risk-averse schedules trade
// a little mean performance for a shorter tail: high-variance machines
// are avoided even when their mean forecast looks good.
func AblationRisk(n int, ks []float64, seeds []int64) ([]RiskAblationRow, error) {
	if len(ks) == 0 {
		ks = []float64{0, 0.5, 1, 2}
	}
	if len(seeds) == 0 {
		seeds = []int64{101, 202, 303, 404, 505}
	}
	var rows []RiskAblationRow
	for _, k := range ks {
		row := RiskAblationRow{K: k}
		for _, seed := range seeds {
			out, err := runConservative(n, 60, seed, k)
			if err != nil {
				return nil, fmt.Errorf("ablation risk k=%v seed=%d: %w", k, seed, err)
			}
			row.MeanTime += out.Measured / float64(len(seeds))
			if out.Measured > row.WorstTime {
				row.WorstTime = out.Measured
			}
			row.MeanHosts += float64(len(out.Placement.Hosts())) / float64(len(seeds))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblationRisk renders ablation A4.
func FormatAblationRisk(rows []RiskAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A4 — risk posture (plan against forecast - k*RMSE)\n")
	sb.WriteString("      k   mean time(s)  worst time(s)  mean hosts\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5.1f  %13.2f  %13.2f  %10.1f\n", r.K, r.MeanTime, r.WorstTime, r.MeanHosts)
	}
	return sb.String()
}

// runConservative executes one AppLeS run with the given risk posture.
func runConservative(n, iterations int, seed int64, k float64) (*RunOutcome, error) {
	return Run(RunSpec{
		Scheduler:  SchedAppLeS,
		N:          n,
		Iterations: iterations,
		Seed:       seed,
		RiskFactor: k,
	})
}

// SelectionAblationRow compares exhaustive subset search against a pruned
// search (ablation A3).
type SelectionAblationRow struct {
	MaxSets    int // 0 = exhaustive
	Considered int
	Measured   float64
}

// AblationSelection measures how schedule quality degrades as the
// Resource Selector's candidate budget shrinks.
func AblationSelection(n int, budgets []int, seed int64) ([]SelectionAblationRow, error) {
	if len(budgets) == 0 {
		budgets = []int{0, 64, 16, 8, 3, 1}
	}
	var rows []SelectionAblationRow
	for _, b := range budgets {
		out, err := Run(RunSpec{
			Scheduler: SchedAppLeS, N: n, Iterations: 60,
			Seed: seed, MaxResourceSets: b,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation selection budget=%d: %w", b, err)
		}
		rows = append(rows, SelectionAblationRow{
			MaxSets:    b,
			Considered: out.Schedule.CandidatesConsidered,
			Measured:   out.Measured,
		})
	}
	return rows, nil
}

// FormatAblationSelection renders ablation A3.
func FormatAblationSelection(rows []SelectionAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A3 — resource-selection budget vs executed time\n")
	sb.WriteString("  budget  considered   measured(s)\n")
	for _, r := range rows {
		budget := "all"
		if r.MaxSets > 0 {
			budget = fmt.Sprintf("%d", r.MaxSets)
		}
		fmt.Fprintf(&sb, "  %6s  %10d  %12.2f\n", budget, r.Considered, r.Measured)
	}
	return sb.String()
}
