package expt

import (
	"strings"
	"testing"

	"apples/internal/obs"
)

func quickConvergeConfig() TenantConvergeConfig {
	return TenantConvergeConfig{
		Tenants: 6, N: 1200, Rounds: 8, Hysteresis: 0.05,
		Clusters: 2, PerCluster: 4, Seed: 11,
	}
}

// The figure's headline contrast: greedy feedback on stale placements
// herds forever, the damped policy settles, and fresh information
// settles at least as fast as stale.
func TestTenantConvergeRegimes(t *testing.T) {
	undamped, stale, seq, err := TenantConvergeRegimes(quickConvergeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !undamped.Oscillating || undamped.ConvergedAt != 0 {
		t.Fatalf("undamped regime should oscillate, got converged at %d (changed=%v)",
			undamped.ConvergedAt, undamped.Changed)
	}
	for _, c := range undamped.Changed {
		if c == 0 {
			t.Fatalf("undamped regime went quiet mid-run: %v", undamped.Changed)
		}
	}
	for name, r := range map[string]*TenantConvergeResult{"damped-stale": stale, "damped-fresh": seq} {
		if r.Oscillating || r.ConvergedAt == 0 {
			t.Fatalf("%s should converge, got changed=%v", name, r.Changed)
		}
		if last := r.Changed[len(r.Changed)-1]; last != 0 {
			t.Fatalf("%s: final round still migrated %d tenants", name, last)
		}
	}
	if seq.ConvergedAt > stale.ConvergedAt {
		t.Fatalf("fresh info converged at %d, later than stale info at %d",
			seq.ConvergedAt, stale.ConvergedAt)
	}
	for name, r := range map[string]*TenantConvergeResult{
		"undamped": undamped, "damped-stale": stale, "damped-fresh": seq,
	} {
		if r.VerdictsChecked < 1 {
			t.Fatalf("%s: no verdict re-derived from the trace", name)
		}
		if r.Fairness != 1 {
			t.Fatalf("%s: fairness = %v, want 1 (every tenant ran every round)", name, r.Fairness)
		}
	}
}

// Every verdict in the trace must be re-derivable from its recorded
// fields, and the verifier must actually reject corrupted traces.
func TestVerifyTenantVerdicts(t *testing.T) {
	r, err := TenantConverge(quickConvergeConfig())
	if err != nil {
		t.Fatal(err)
	}
	checked, err := VerifyTenantVerdicts(r.Events, r.Cfg.Hysteresis)
	if err != nil {
		t.Fatal(err)
	}
	if checked != r.VerdictsChecked {
		t.Fatalf("re-verification checked %d verdicts, run recorded %d", checked, r.VerdictsChecked)
	}

	// A migrate verdict whose fresh prediction does not actually beat
	// the incumbent must fail verification.
	bad := append([]obs.Event(nil), r.Events...)
	corrupted := false
	for i := range bad {
		if bad[i].Type == obs.EvReschedule && bad[i].Verdict == "migrate" && bad[i].Reason != "initial" {
			bad[i].Fresh = bad[i].Current * 2
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("trace has no non-initial migrate verdict to corrupt")
	}
	if _, err := VerifyTenantVerdicts(bad, r.Cfg.Hysteresis); err == nil {
		t.Fatal("verifier accepted a corrupted migrate verdict")
	}

	// Dropping a tenant's service round breaks the policy/service
	// cross-check.
	var drop []obs.Event
	dropped := false
	for _, e := range r.Events {
		if !dropped && e.Type == obs.EvTenantRound {
			dropped = true
			continue
		}
		drop = append(drop, e)
	}
	if _, err := VerifyTenantVerdicts(drop, r.Cfg.Hysteresis); err == nil ||
		!strings.Contains(err.Error(), "service rounds") {
		t.Fatalf("verifier missed the dropped service round, err=%v", err)
	}
}
