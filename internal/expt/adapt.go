package expt

import (
	"fmt"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/load"
	"apples/internal/nws"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// AdaptRow is one variant of experiment E9 (the Section 3.2
// redistribution claim).
type AdaptRow struct {
	Variant      string
	Time         float64
	Replans      int
	MigratedMB   float64
	MigrationSec float64
}

// AdaptResult is experiment E9.
type AdaptResult struct {
	N        int
	ShiftSec float64 // when the load shift lands, relative to run start
	Rows     []AdaptRow
}

// Adaptation reproduces the redistribution scenario Section 3.2 argues
// for: mid-run, a batch job lands on the Alpha farm (its ambient load
// jumps to 5 competing processes per node). A statically scheduled
// AppLeS run rides out the storm with its now-stale partition; an
// adaptive run re-invokes the agent every CheckEvery iterations, notices
// the forecast shift, and migrates work off the Alphas — paying the
// migration traffic through the same contended network it simulates.
func Adaptation(n int, iterations int, seed int64) (*AdaptResult, error) {
	if n == 0 {
		n = 1500
	}
	if iterations == 0 {
		iterations = 200
	}
	const warmup = 600.0
	const shiftAfter = 10.0 // seconds into the run

	res := &AdaptResult{N: n, ShiftSec: shiftAfter}

	type variant struct {
		name     string
		adaptive bool
	}
	for _, v := range []variant{{"static", false}, {"adaptive", true}} {
		eng := sim.NewEngine()
		eng.SetEventLimit(200_000_000)
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
		svc := nws.NewService(eng, 10)
		svc.WatchTopology(tp)
		if err := eng.RunUntil(warmup); err != nil {
			return nil, err
		}

		// The load shift: a batch job floods the Alpha farm shortly after
		// the run starts. Scheduled identically for both variants.
		eng.ScheduleAt(warmup+shiftAfter, func() {
			for _, name := range []string{"alpha1", "alpha2", "alpha3", "alpha4"} {
				tp.Host(name).SetLoad(load.Constant(5))
			}
		})

		tpl := hat.Jacobi2D(n, iterations)
		agent, err := core.NewAgent(tp, tpl, &userspec.Spec{Decomposition: "strip"},
			core.NWSInformation(svc, tp))
		if err != nil {
			return nil, err
		}
		sched, err := agent.Schedule(n)
		if err != nil {
			return nil, err
		}

		cfg := jacobi.AdaptiveConfig{
			Config:     jacobi.Config{Iterations: iterations},
			CheckEvery: 10,
		}
		if v.adaptive {
			cfg.Replan = agent.Rescheduler(n, 0.20)
		}
		out, err := jacobi.RunAdaptive(tp, sched.Placement, cfg)
		if err != nil {
			return nil, fmt.Errorf("adaptation %s: %w", v.name, err)
		}
		svc.Stop()
		res.Rows = append(res.Rows, AdaptRow{
			Variant:      v.name,
			Time:         out.Time,
			Replans:      out.Replans,
			MigratedMB:   out.MigratedMB,
			MigrationSec: out.MigrationSec,
		})
	}
	return res, nil
}

// FormatAdaptation renders experiment E9.
func FormatAdaptation(r *AdaptResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Redistribution (Section 3.2) — %dx%d Jacobi2D, Alpha farm floods %.0f s into the run\n",
		r.N, r.N, r.ShiftSec)
	sb.WriteString("  variant       time(s)  replans  migrated(MB)  migration(s)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-10s  %8.2f  %7d  %12.1f  %12.2f\n",
			row.Variant, row.Time, row.Replans, row.MigratedMB, row.MigrationSec)
	}
	if len(r.Rows) == 2 && r.Rows[1].Time > 0 {
		fmt.Fprintf(&sb, "  adaptation speedup: %.2fx\n", r.Rows[0].Time/r.Rows[1].Time)
	}
	return sb.String()
}
