package expt

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders grouped horizontal bars: one group per label, one bar
// per series, all scaled to a common maximum. Used by cmd/expt -chart to
// visualize the figures in the terminal.
func BarChart(title string, labels []string, seriesOrder []string, series map[string][]float64, width int) string {
	if width < 10 {
		width = 50
	}
	maxVal := 0.0
	for _, vals := range series {
		for _, v := range vals {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if maxVal <= 0 || math.IsNaN(maxVal) {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	nameW := 0
	for _, s := range seriesOrder {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	for i, label := range labels {
		for j, s := range seriesOrder {
			vals := series[s]
			if i >= len(vals) {
				continue
			}
			v := vals[i]
			bar := strings.Repeat("#", int(v/maxVal*float64(width)+0.5))
			head := ""
			if j == 0 {
				head = label
			}
			fmt.Fprintf(&sb, "  %-7s %-*s %-*s %.4g\n", head, nameW, s, width, bar, v)
		}
		if i < len(labels)-1 {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// SweepChart renders a one-series sweep (like the pipeline-unit curve) as
// a vertical profile of bars.
func SweepChart(title string, xs []string, ys []float64, width int) string {
	if width < 10 {
		width = 50
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(ys) == 0 || math.IsInf(minY, 1) {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	span := maxY - minY
	for i, x := range xs {
		frac := 1.0
		if span > 0 {
			// Zoomed scale: emphasize the shape around the minimum.
			frac = 0.15 + 0.85*(ys[i]-minY)/span
		}
		bar := strings.Repeat("#", int(frac*float64(width)+0.5))
		marker := ""
		if ys[i] == minY {
			marker = "  <- best"
		}
		fmt.Fprintf(&sb, "  %-6s %-*s %.4g%s\n", x, width, bar, ys[i], marker)
	}
	return sb.String()
}

// Fig5Chart renders Figure 5 as a bar chart.
func Fig5Chart(rows []Fig5Row) string {
	labels := make([]string, len(rows))
	apples := make([]float64, len(rows))
	strip := make([]float64, len(rows))
	blocked := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = fmt.Sprint(r.N)
		apples[i], strip[i], blocked[i] = r.AppLeS, r.Strip, r.Blocked
	}
	return BarChart("Figure 5 (chart) — execution seconds by partition",
		labels, []string{"apples", "strip", "blocked"},
		map[string][]float64{"apples": apples, "strip": strip, "blocked": blocked}, 48)
}

// Fig6Chart renders Figure 6 as a bar chart.
func Fig6Chart(rows []Fig6Row) string {
	labels := make([]string, len(rows))
	apples := make([]float64, len(rows))
	blocked := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = fmt.Sprint(r.N)
		apples[i], blocked[i] = r.AppLeS, r.BlockedSP2
	}
	return BarChart("Figure 6 (chart) — execution seconds with memory considered",
		labels, []string{"apples", "blocked"},
		map[string][]float64{"apples": apples, "blocked": blocked}, 48)
}

// ReactChart renders the pipeline-unit sweep.
func ReactChart(r *ReactResult) string {
	var xs []string
	var ys []float64
	for u := 5; u <= 20; u++ {
		if v, ok := r.UnitSweep[u]; ok {
			xs = append(xs, fmt.Sprintf("u=%d", u))
			ys = append(ys, v)
		}
	}
	return SweepChart("3D-REACT (chart) — hours by pipeline unit (zoomed)", xs, ys, 48)
}
