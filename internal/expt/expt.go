// Package expt is the benchmark harness: it reconstructs every table and
// figure of the paper's evaluation (and the ablations DESIGN.md commits
// to) on the simulated metacomputer, and formats them as the paper-style
// rows the cmd/expt tool and the repository benchmarks print.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	E1 Figure 3  — Fig3: AppLeS partition of Jacobi2D on the SDSC/PCL net
//	E2 Figure 4  — Fig4: static non-uniform strip partition
//	E3 Figure 5  — Fig5: AppLeS vs Strip vs Blocked execution times
//	E4 Figure 6  — Fig6: memory-aware AppLeS vs SP-2-only Blocked
//	E5 §2.3      — React: 16 h single-site vs <5 h pipeline + unit sweep
//	E6 §2.1/§3.1 — Nile: skim vs remote-access decision curve
//	A1           — AblationForecast: oracle vs NWS vs static information
//	A3           — AblationSelection: exhaustive vs pruned resource sets
package expt

import (
	"fmt"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/nws"
	"apples/internal/partition"
	"apples/internal/sim"
	"apples/internal/stats"
	"apples/internal/userspec"
)

// Scheduler names a partitioning policy compared in the experiments.
type Scheduler string

const (
	// SchedAppLeS is the agent with NWS forecasts (the paper's AppLeS).
	SchedAppLeS Scheduler = "apples"
	// SchedAppLeSOracle is the agent with perfect information (ablation).
	SchedAppLeSOracle Scheduler = "apples-oracle"
	// SchedAppLeSStatic is the agent with compile-time information only
	// (ablation: isolates the value of dynamic prediction).
	SchedAppLeSStatic Scheduler = "apples-static"
	// SchedStrip is the paper's static non-uniform strip partition,
	// weighted by dedicated CPU speeds (Figure 4).
	SchedStrip Scheduler = "strip"
	// SchedBlocked is the HPF Uniform/Blocked partition over all hosts.
	SchedBlocked Scheduler = "blocked"
	// SchedBlockedSP2 is the Figure 6 baseline: HPF blocked on the two
	// SP-2 nodes only.
	SchedBlockedSP2 Scheduler = "blocked-sp2"
)

// RunSpec configures a single Jacobi2D execution under one scheduler.
type RunSpec struct {
	Scheduler  Scheduler
	N          int
	Iterations int
	Seed       int64
	WithSP2    bool
	// WarmupSec runs the testbed (and NWS sensors) before scheduling so
	// forecasts have history and ambient load is in steady state.
	// Default 600.
	WarmupSec float64
	// MaxResourceSets caps the agent's search (0 = exhaustive).
	MaxResourceSets int
	// RiskFactor k > 0 makes the AppLeS plan against forecast - k*RMSE
	// (ablation A4). Only meaningful for SchedAppLeS.
	RiskFactor float64
}

func (rs *RunSpec) setDefaults() {
	if rs.Iterations == 0 {
		rs.Iterations = 100
	}
	if rs.WarmupSec == 0 {
		rs.WarmupSec = 600
	}
}

// RunOutcome is one executed run.
type RunOutcome struct {
	Spec     RunSpec
	Measured float64 // wall-clock (virtual) seconds for the whole run
	// Schedule is non-nil for AppLeS runs.
	Schedule *core.Schedule
	// Placement actually executed.
	Placement *partition.Placement
	// SpillFraction per host (non-empty only when something spilled).
	SpillFraction map[string]float64
}

// Run executes one Jacobi2D run under the given scheduler on a fresh
// same-seed testbed, so competing schedulers see identical ambient
// conditions — the reproduction's version of the paper's back-to-back
// trials.
func Run(spec RunSpec) (*RunOutcome, error) {
	spec.setDefaults()
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: spec.Seed, WithSP2: spec.WithSP2})

	var svc *nws.Service
	needNWS := spec.Scheduler == SchedAppLeS
	if needNWS {
		svc = nws.NewService(eng, 10)
		svc.WatchTopology(tp)
	}
	if err := eng.RunUntil(spec.WarmupSec); err != nil {
		return nil, err
	}
	if svc != nil {
		// The agent schedules once, as in the paper's prototype; sensors
		// are stopped when the run finishes so the engine can drain.
		defer svc.Stop()
	}

	tpl := hat.Jacobi2D(spec.N, spec.Iterations)
	cfg := jacobi.Config{
		Iterations:          spec.Iterations,
		FlopPerPoint:        tpl.Tasks[0].FlopPerUnit,
		BytesPerPoint:       tpl.Tasks[0].BytesPerUnit,
		BorderBytesPerPoint: tpl.Comms[0].BytesPerUnit,
	}

	out := &RunOutcome{Spec: spec}
	var placement *partition.Placement

	switch spec.Scheduler {
	case SchedAppLeS, SchedAppLeSOracle, SchedAppLeSStatic:
		var info core.Information
		switch spec.Scheduler {
		case SchedAppLeS:
			if spec.RiskFactor > 0 {
				info = core.ConservativeInformation(svc, tp, spec.RiskFactor)
			} else {
				info = core.NWSInformation(svc, tp)
			}
		case SchedAppLeSOracle:
			info = core.OracleInformation(tp)
		default:
			info = core.StaticInformation(tp)
		}
		agent, err := core.NewAgent(tp, tpl, &userspec.Spec{
			Decomposition:   "strip",
			MaxResourceSets: spec.MaxResourceSets,
		}, info)
		if err != nil {
			return nil, err
		}
		sched, err := agent.Schedule(spec.N)
		if err != nil {
			return nil, err
		}
		out.Schedule = sched
		placement = sched.Placement

	case SchedStrip:
		hosts, weights := speedWeights(tp, false)
		p, err := partition.WeightedStrip(spec.N, hosts, weights, cfg.BorderBytesPerPoint)
		if err != nil {
			return nil, err
		}
		placement = p

	case SchedBlocked:
		p, err := partition.Blocked(spec.N, workstationHosts(tp, spec.WithSP2), cfg.BorderBytesPerPoint)
		if err != nil {
			return nil, err
		}
		placement = p

	case SchedBlockedSP2:
		if !spec.WithSP2 {
			return nil, fmt.Errorf("expt: blocked-sp2 requires WithSP2")
		}
		p, err := partition.Blocked(spec.N, []string{"sp2a", "sp2b"}, cfg.BorderBytesPerPoint)
		if err != nil {
			return nil, err
		}
		placement = p

	default:
		return nil, fmt.Errorf("expt: unknown scheduler %q", spec.Scheduler)
	}

	res, err := jacobi.Run(tp, placement, cfg)
	if err != nil {
		return nil, err
	}
	out.Measured = res.Time
	out.Placement = placement
	out.SpillFraction = map[string]float64{}
	for h, f := range res.SpillFraction {
		if f > 0 {
			out.SpillFraction[h] = f
		}
	}
	return out, nil
}

// speedWeights returns the testbed hosts and their dedicated speeds — the
// compile-time parameterization of the static Non-uniform Strip partition.
func speedWeights(tp *grid.Topology, withSP2 bool) ([]string, []float64) {
	var hosts []string
	var weights []float64
	for _, h := range tp.Hosts() {
		if !withSP2 && h.Arch == "sp2" {
			continue
		}
		hosts = append(hosts, h.Name)
		weights = append(weights, h.Speed)
	}
	return hosts, weights
}

// workstationHosts returns the Figure 2 hosts (excluding SP-2 nodes unless
// requested) in deterministic order for the blocked partition.
func workstationHosts(tp *grid.Topology, withSP2 bool) []string {
	var hosts []string
	for _, h := range tp.Hosts() {
		if !withSP2 && h.Arch == "sp2" {
			continue
		}
		if withSP2 && h.Arch == "sp2" {
			continue // blocked-over-everything never includes SP-2 in the paper
		}
		hosts = append(hosts, h.Name)
	}
	return hosts
}

// Spread runs the spec `trials` times with consecutive seeds and returns
// the full summary of the measured times — the spread behind the averages
// the paper's figures report.
func Spread(spec RunSpec, trials int) (stats.Summary, error) {
	if trials < 1 {
		trials = 1
	}
	times := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)*1000
		out, err := Run(s)
		if err != nil {
			return stats.Summary{}, err
		}
		times = append(times, out.Measured)
	}
	return stats.Summarize(times), nil
}

// Average runs the spec `trials` times with consecutive seeds and averages
// the measured times (the paper reports averages of back-to-back runs).
func Average(spec RunSpec, trials int) (float64, error) {
	s, err := Spread(spec, trials)
	if err != nil {
		return 0, err
	}
	return s.Mean, nil
}
