package expt

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Fig3Result is experiment E1: the AppLeS partition of Jacobi2D on the
// SDSC/PCL network under ambient load (Figure 3).
type Fig3Result struct {
	N                 int
	Hosts             []string  // strip chain order
	Shares            []float64 // fraction of the domain per host
	PredictedIterTime float64
}

// Fig3 computes the AppLeS partition for an n x n Jacobi2D under NWS
// forecasts on the loaded Figure 2 testbed.
func Fig3(n int, seed int64) (*Fig3Result, error) {
	out, err := Run(RunSpec{Scheduler: SchedAppLeS, N: n, Iterations: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{N: n, PredictedIterTime: out.Schedule.PredictedIterTime}
	for _, a := range out.Placement.Assignments {
		if a.Points == 0 {
			continue
		}
		res.Hosts = append(res.Hosts, a.Host)
		res.Shares = append(res.Shares, out.Placement.Fraction(a.Host))
	}
	return res, nil
}

// Fig4Result is experiment E2: the compile-time non-uniform strip
// partition parameterized by dedicated CPU speeds (Figure 4).
type Fig4Result struct {
	N      int
	Hosts  []string
	Shares []float64
}

// Fig4 computes the static non-uniform strip partition for an n x n grid.
func Fig4(n int, seed int64) (*Fig4Result, error) {
	out, err := Run(RunSpec{Scheduler: SchedStrip, N: n, Iterations: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{N: n}
	for _, a := range out.Placement.Assignments {
		if a.Points == 0 {
			continue
		}
		res.Hosts = append(res.Hosts, a.Host)
		res.Shares = append(res.Shares, out.Placement.Fraction(a.Host))
	}
	return res, nil
}

// Fig5Row is one problem size of experiment E3 (Figure 5).
type Fig5Row struct {
	N       int
	AppLeS  float64 // averaged measured seconds
	Strip   float64
	Blocked float64
}

// SpeedupVsStrip returns Strip/AppLeS.
func (r Fig5Row) SpeedupVsStrip() float64 { return r.Strip / r.AppLeS }

// SpeedupVsBlocked returns Blocked/AppLeS.
func (r Fig5Row) SpeedupVsBlocked() float64 { return r.Blocked / r.AppLeS }

// Fig5Config parameterizes experiment E3.
type Fig5Config struct {
	Sizes      []int // default 1000..2000 step 250
	Trials     int   // default 3
	Iterations int   // default 100
	Seed       int64
}

func (c *Fig5Config) setDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000, 1250, 1500, 1750, 2000}
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
}

// Fig5 reproduces Figure 5: execution-time averages of the AppLeS, static
// Strip, and HPF Blocked partitions for problem sizes 1000^2..2000^2 on
// the loaded testbed, each trio run back-to-back under identical ambient
// conditions (same seed).
//
// Every (size, scheduler) cell is an independent simulation with its own
// engine, so the sweep fans out across CPUs; results are assembled by
// index and therefore identical to a sequential run.
func Fig5(cfg Fig5Config) ([]Fig5Row, error) {
	cfg.setDefaults()
	scheds := []Scheduler{SchedAppLeS, SchedStrip, SchedBlocked}

	type cellResult struct {
		row, col int
		avg      float64
		err      error
	}
	cells := make(chan cellResult, len(cfg.Sizes)*len(scheds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, n := range cfg.Sizes {
		for j, sched := range scheds {
			i, j, n, sched := i, j, n, sched
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				avg, err := Average(RunSpec{
					Scheduler:  sched,
					N:          n,
					Iterations: cfg.Iterations,
					Seed:       cfg.Seed,
				}, cfg.Trials)
				cells <- cellResult{row: i, col: j, avg: avg, err: err}
			}()
		}
	}
	wg.Wait()
	close(cells)

	rows := make([]Fig5Row, len(cfg.Sizes))
	for i, n := range cfg.Sizes {
		rows[i].N = n
	}
	for c := range cells {
		if c.err != nil {
			return nil, fmt.Errorf("fig5 n=%d %s: %w", cfg.Sizes[c.row], scheds[c.col], c.err)
		}
		switch scheds[c.col] {
		case SchedAppLeS:
			rows[c.row].AppLeS = c.avg
		case SchedStrip:
			rows[c.row].Strip = c.avg
		case SchedBlocked:
			rows[c.row].Blocked = c.avg
		}
	}
	return rows, nil
}

// Fig6Row is one problem size of experiment E4 (Figure 6).
type Fig6Row struct {
	N          int
	AppLeS     float64
	BlockedSP2 float64
	// BlockedSpilled reports whether the SP-2-only partition exceeded
	// real memory at this size.
	BlockedSpilled bool
}

// Fig6Config parameterizes experiment E4.
type Fig6Config struct {
	Sizes      []int // default 2000..4400 step 400 (crossover ~3700)
	Trials     int   // default 2
	Iterations int   // default 60
	Seed       int64
}

func (c *Fig6Config) setDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2000, 2400, 2800, 3200, 3600, 4000, 4400}
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 60
	}
}

// Fig6 reproduces Figure 6: with two unloaded SP-2 nodes added, AppLeS
// tracks the SP-2-only HPF Blocked partition until the problem outgrows
// SP-2 memory (~3700^2), after which the blocked partition spills and
// collapses while AppLeS finds memory elsewhere. Sizes fan out across
// CPUs like Fig5.
func Fig6(cfg Fig6Config) ([]Fig6Row, error) {
	cfg.setDefaults()
	rows := make([]Fig6Row, len(cfg.Sizes))
	errs := make([]error, len(cfg.Sizes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, n := range cfg.Sizes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			row := Fig6Row{N: n}
			appl, err := Average(RunSpec{
				Scheduler: SchedAppLeS, N: n, Iterations: cfg.Iterations,
				Seed: cfg.Seed, WithSP2: true,
			}, cfg.Trials)
			if err != nil {
				errs[i] = fmt.Errorf("fig6 n=%d apples: %w", n, err)
				return
			}
			row.AppLeS = appl

			out, err := Run(RunSpec{
				Scheduler: SchedBlockedSP2, N: n, Iterations: cfg.Iterations,
				Seed: cfg.Seed, WithSP2: true,
			})
			if err != nil {
				errs[i] = fmt.Errorf("fig6 n=%d blocked: %w", n, err)
				return
			}
			row.BlockedSP2 = out.Measured
			row.BlockedSpilled = len(out.SpillFraction) > 0
			if cfg.Trials > 1 {
				avg, err := Average(RunSpec{
					Scheduler: SchedBlockedSP2, N: n, Iterations: cfg.Iterations,
					Seed: cfg.Seed, WithSP2: true,
				}, cfg.Trials)
				if err != nil {
					errs[i] = err
					return
				}
				row.BlockedSP2 = avg
			}
			rows[i] = row
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatPartition renders a Figure 3/4-style partition table.
func FormatPartition(title string, hosts []string, shares []float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i, h := range hosts {
		bar := strings.Repeat("#", int(shares[i]*60+0.5))
		fmt.Fprintf(&sb, "  %-10s %6.2f%% %s\n", h, shares[i]*100, bar)
	}
	return sb.String()
}

// FormatFig5 renders Figure 5 as a table.
func FormatFig5(rows []Fig5Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — Jacobi2D execution time averages (seconds)\n")
	sb.WriteString("      N     AppLeS      Strip    Blocked   Strip/AppLeS  Blocked/AppLeS\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %9.2f  %9.2f  %9.2f  %12.2fx  %13.2fx\n",
			r.N, r.AppLeS, r.Strip, r.Blocked, r.SpeedupVsStrip(), r.SpeedupVsBlocked())
	}
	return sb.String()
}

// FormatFig6 renders Figure 6 as a table.
func FormatFig6(rows []Fig6Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — Jacobi2D with memory considered (seconds)\n")
	sb.WriteString("      N     AppLeS  Blocked(SP-2)  SP-2 spilled\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %9.2f  %13.2f  %v\n", r.N, r.AppLeS, r.BlockedSP2, r.BlockedSpilled)
	}
	return sb.String()
}
