package expt

import (
	"math"
	"strings"
	"testing"
)

func TestRunAppLeSProducesSchedule(t *testing.T) {
	out, err := Run(RunSpec{Scheduler: SchedAppLeS, N: 800, Iterations: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule == nil {
		t.Fatal("AppLeS run without schedule")
	}
	if out.Measured <= 0 {
		t.Fatalf("measured %v", out.Measured)
	}
	if err := out.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunStripAndBlocked(t *testing.T) {
	for _, s := range []Scheduler{SchedStrip, SchedBlocked} {
		out, err := Run(RunSpec{Scheduler: s, N: 800, Iterations: 10, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if out.Measured <= 0 || out.Schedule != nil {
			t.Fatalf("%s: measured=%v schedule=%v", s, out.Measured, out.Schedule)
		}
	}
}

func TestRunBlockedSP2RequiresFlag(t *testing.T) {
	if _, err := Run(RunSpec{Scheduler: SchedBlockedSP2, N: 800, Iterations: 5, Seed: 1}); err == nil {
		t.Fatal("blocked-sp2 without WithSP2 accepted")
	}
}

func TestRunUnknownScheduler(t *testing.T) {
	if _, err := Run(RunSpec{Scheduler: "bogus", N: 100, Iterations: 1, Seed: 1}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	spec := RunSpec{Scheduler: SchedAppLeS, N: 600, Iterations: 10, Seed: 12}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Measured != b.Measured {
		t.Fatalf("same-seed runs diverged: %v vs %v", a.Measured, b.Measured)
	}
}

func TestFig3PartitionShape(t *testing.T) {
	res, err := Fig3(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) == 0 {
		t.Fatal("empty partition")
	}
	sum := 0.0
	uniform := true
	for i, s := range res.Shares {
		sum += s
		if i > 0 && math.Abs(s-res.Shares[0]) > 1e-3 {
			uniform = false
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("shares sum to %v", sum)
	}
	if len(res.Hosts) > 1 && uniform {
		t.Fatal("AppLeS partition is uniform; expected non-intuitive, load-aware shares")
	}
	txt := FormatPartition("fig3", res.Hosts, res.Shares)
	if !strings.Contains(txt, "%") {
		t.Fatalf("format: %q", txt)
	}
}

func TestFig4StaticPartitionTracksSpeeds(t *testing.T) {
	res, err := Fig4(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string]float64{}
	for i, h := range res.Hosts {
		shares[h] = res.Shares[i]
	}
	// Speed-proportional: alpha (40) > rs6000 (25) > sparc10 (10) > sparc2 (4).
	if !(shares["alpha1"] > shares["rs6000a"] && shares["rs6000a"] > shares["sparc10"] && shares["sparc10"] > shares["sparc2"]) {
		t.Fatalf("static strip shares not speed-ordered: %v", shares)
	}
	if shares["sparc2"] <= 0 {
		t.Fatal("static strip drops hosts; it should not")
	}
}

func TestFig5ShapeSmall(t *testing.T) {
	rows, err := Fig5(Fig5Config{Sizes: []int{1000, 1500}, Trials: 1, Iterations: 40, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AppLeS <= 0 || r.Strip <= 0 || r.Blocked <= 0 {
			t.Fatalf("row %+v has non-positive times", r)
		}
		// The paper's headline: AppLeS outperforms both static partitions
		// by factors of 2-8. Require at least 1.5x here (single trial).
		if r.SpeedupVsStrip() < 1.5 {
			t.Errorf("N=%d: AppLeS only %.2fx faster than Strip", r.N, r.SpeedupVsStrip())
		}
		if r.SpeedupVsBlocked() < 1.5 {
			t.Errorf("N=%d: AppLeS only %.2fx faster than Blocked", r.N, r.SpeedupVsBlocked())
		}
	}
	out := FormatFig5(rows)
	if !strings.Contains(out, "Figure 5") {
		t.Fatalf("format: %q", out)
	}
}

func TestFig6CrossoverSmall(t *testing.T) {
	rows, err := Fig6(Fig6Config{Sizes: []int{2000, 4400}, Trials: 1, Iterations: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	if small.BlockedSpilled {
		t.Fatal("2000^2 should fit in SP-2 memory")
	}
	if !big.BlockedSpilled {
		t.Fatal("4400^2 should spill from SP-2 memory")
	}
	// Before the crossover the two are comparable; after it the blocked
	// partition collapses.
	if small.BlockedSP2 > small.AppLeS*2.5 {
		t.Errorf("pre-crossover blocked %.1f vs apples %.1f: too far apart", small.BlockedSP2, small.AppLeS)
	}
	if big.BlockedSP2 < big.AppLeS*2 {
		t.Errorf("post-crossover blocked %.1f vs apples %.1f: no collapse", big.BlockedSP2, big.AppLeS)
	}
	out := FormatFig6(rows)
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("format: %q", out)
	}
}

func TestReactHeadline(t *testing.T) {
	res, err := React(600)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleC90Hours < 15 || res.SingleParagonHrs < 15 {
		t.Fatalf("single-site %0.1f/%0.1f h, paper: >16 h", res.SingleC90Hours, res.SingleParagonHrs)
	}
	if res.DistributedHours > 5.5 {
		t.Fatalf("distributed %.2f h, paper: <5 h", res.DistributedHours)
	}
	if res.Producer != "c90" || res.Consumer != "paragon" {
		t.Fatalf("mapping %s->%s", res.Producer, res.Consumer)
	}
	if len(res.UnitSweep) != 16 {
		t.Fatalf("unit sweep has %d entries, want 16", len(res.UnitSweep))
	}
	out := FormatReact(res)
	if !strings.Contains(out, "3D-REACT") {
		t.Fatalf("format: %q", out)
	}
}

func TestNileDecisionCurve(t *testing.T) {
	res, err := Nile(20000, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows %d, want 6", len(res.Rows))
	}
	bad := 0
	for _, r := range res.Rows {
		if r.Remote <= 0 || r.Skim <= 0 || r.AtData <= 0 {
			t.Fatalf("row %+v has non-positive times", r)
		}
		if !r.ChoseOK {
			bad++
		}
	}
	// Forecasts are imperfect; the site manager may misjudge a close call
	// occasionally, but not systematically.
	if bad > 2 {
		t.Errorf("site manager picked >15%% off best in %d/%d rows", bad, len(res.Rows))
	}
	// Skim must eventually amortize its copy and become the best choice.
	if res.SkimCrossover == 0 {
		t.Error("skim never became the best strategy in 6 passes")
	}
	out := FormatNile(res)
	if !strings.Contains(out, "CLEO/NILE") {
		t.Fatalf("format: %q", out)
	}
}

func TestAblationForecastOrdering(t *testing.T) {
	rows, err := AblationForecast([]int{1200}, 2, 41)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Oracle <= 0 || r.NWS <= 0 || r.Static <= 0 {
		t.Fatalf("row %+v", r)
	}
	// Static information must be clearly worse than NWS forecasts.
	if r.Static < r.NWS {
		t.Errorf("static (%v) beat NWS (%v); prediction should matter", r.Static, r.NWS)
	}
	out := FormatAblationForecast(rows)
	if !strings.Contains(out, "Ablation A1") {
		t.Fatalf("format: %q", out)
	}
}

func TestAblationSelectionBudget(t *testing.T) {
	rows, err := AblationSelection(1200, []int{0, 8, 1}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Considered <= rows[1].Considered {
		t.Fatalf("exhaustive considered %d <= budget-8 %d", rows[0].Considered, rows[1].Considered)
	}
	if rows[2].Considered != 1 {
		t.Fatalf("budget-1 considered %d", rows[2].Considered)
	}
	// A tiny budget should not beat the exhaustive search by much.
	if rows[2].Measured < rows[0].Measured*0.8 {
		t.Errorf("budget-1 (%v) much faster than exhaustive (%v)?", rows[2].Measured, rows[0].Measured)
	}
	out := FormatAblationSelection(rows)
	if !strings.Contains(out, "Ablation A3") {
		t.Fatalf("format: %q", out)
	}
}
