package expt

import (
	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/nws"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// NewReschedScenario builds the steady-state rescheduling scenario the
// delta benchmarks and parity sweeps drive: the same warmed NWS
// cluster-of-clusters as NewScaleAgent, but with the information source
// wrapped in an availability overlay. The returned map is live — writing
// a host's availability into it (and deleting it again) is how callers
// inject per-round deltas without advancing the simulation, which is
// exactly the small-perturbation regime a kHz rescheduling loop sees
// between forecaster updates.
func NewReschedScenario(clusters, per, n int, seed int64, opts ...core.AgentOption) (*core.Agent, map[string]float64, error) {
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: seed,
	})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(300); err != nil {
		return nil, nil, err
	}
	svc.Stop()
	overlay := map[string]float64{}
	info := core.NewOverlayInformation(core.NWSInformation(svc, tp), overlay)
	agent, err := core.NewAgent(tp, hat.Jacobi2D(n, 40), &userspec.Spec{Decomposition: "strip"},
		info, opts...)
	if err != nil {
		return nil, nil, err
	}
	return agent, overlay, nil
}

// NewGridReschedScenario is the grid-scale variant: a dedicated (quiet,
// oracle-informed) cluster-of-clusters with the same live availability
// overlay, for exercising the chunked-bitmask and lazy-link paths on
// pools past the pair-array threshold without NWS warmup cost.
func NewGridReschedScenario(clusters, per, n int, seed int64, opts ...core.AgentOption) (*core.Agent, map[string]float64, error) {
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: seed, Quiet: true,
	})
	overlay := map[string]float64{}
	info := core.NewOverlayInformation(core.OracleInformation(tp), overlay)
	agent, err := core.NewAgent(tp, hat.Jacobi2D(n, 40), &userspec.Spec{Decomposition: "strip"},
		info, opts...)
	if err != nil {
		return nil, nil, err
	}
	return agent, overlay, nil
}
