package expt

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"apples/internal/nile"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	rows := []Fig5Row{
		{N: 1000, AppLeS: 9.6, Strip: 22.1, Blocked: 67.3},
		{N: 2000, AppLeS: 42.6, Strip: 96.1, Blocked: 295.0},
	}
	header, cells := Fig5CSV(rows)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, header, cells); err != nil {
		t.Fatal(err)
	}
	back, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("records %d, want 3", len(back))
	}
	if back[0][0] != "n" || back[1][0] != "1000" || back[2][3] != "295" {
		t.Fatalf("csv content %v", back)
	}
}

func TestAllCSVRenderers(t *testing.T) {
	check := func(name string, header []string, cells [][]string) {
		t.Helper()
		if len(header) == 0 {
			t.Fatalf("%s: empty header", name)
		}
		for _, row := range cells {
			if len(row) != len(header) {
				t.Fatalf("%s: row width %d vs header %d", name, len(row), len(header))
			}
		}
	}
	h, c := Fig6CSV([]Fig6Row{{N: 2000, AppLeS: 1, BlockedSP2: 2, BlockedSpilled: true}})
	check("fig6", h, c)
	h, c = ReactCSV(&ReactResult{UnitSweep: map[int]float64{5: 5.1, 6: 5.0}})
	check("react", h, c)
	if c[0][0] != "5" || c[1][0] != "6" {
		t.Fatalf("react sweep not sorted: %v", c)
	}
	h, c = NileCSV(&NileResult{Rows: []NileRow{{Passes: 1, Remote: 1, Skim: 2, AtData: 3, Chosen: nile.Skim}}})
	check("nile", h, c)
	if !strings.Contains(c[0][4], "skim") {
		t.Fatalf("nile chosen cell %v", c[0])
	}
	h, c = ForecastAblationCSV([]ForecastAblationRow{{N: 1000, Oracle: 1, NWS: 2, Static: 3}})
	check("a1", h, c)
	h, c = RiskAblationCSV([]RiskAblationRow{{K: 0.5, MeanTime: 1, WorstTime: 2, MeanHosts: 7}})
	check("a4", h, c)
}
