package expt

import (
	"reflect"
	"testing"

	"apples/internal/core"
)

// scheduleWith builds the warmed scale scenario and schedules it once
// under the given selector, returning the predicted execution time.
func scheduleWith(t *testing.T, clusters, per int, seed int64, spec core.SelectorSpec) float64 {
	t.Helper()
	agent, err := NewScaleAgent(clusters, per, 600, seed,
		core.WithSelector(spec), core.WithParallelism(1))
	if err != nil {
		t.Fatalf("agent %dx%d seed %d: %v", clusters, per, seed, err)
	}
	sched, err := agent.Schedule(600)
	if err != nil {
		t.Fatalf("schedule %dx%d seed %d selector %q: %v", clusters, per, seed, spec.Kind, err)
	}
	return sched.PredictedTotal
}

// TestSelectorOptimalityGap pins the heuristic selector families to
// their documented optimality gaps against exhaustive subset
// enumeration on every pool size the exhaustive selector can still
// enumerate (2..12 hosts), across five load seeds. Exhaustive evaluates
// every subset under the same frozen snapshot, so it is the true
// optimum and no heuristic can come in below it.
func TestSelectorOptimalityGap(t *testing.T) {
	if testing.Short() {
		t.Skip("full gap sweep is slow")
	}
	heuristics := []struct {
		name   string
		spec   core.SelectorSpec
		maxGap float64 // percent above the exhaustive optimum
	}{
		{"greedy", core.SelectorSpec{Kind: core.SelectorGreedy}, 15},
		{"beam", core.SelectorSpec{Kind: core.SelectorBeam, BeamWidth: 8}, 5},
		{"lpga", core.SelectorSpec{Kind: core.SelectorLPGA, Seed: 1}, 5},
	}
	seeds := []int64{1, 2, 3, 4, 5}
	for size := 2; size <= 12; size++ {
		clusters, per := 1, size
		if size%2 == 0 {
			clusters, per = 2, size/2
		}
		for _, seed := range seeds {
			exact := scheduleWith(t, clusters, per, seed, core.SelectorSpec{Kind: core.SelectorExhaustive})
			for _, h := range heuristics {
				pred := scheduleWith(t, clusters, per, seed, h.spec)
				gap := 100 * (pred - exact) / exact
				if gap < -1e-9 {
					t.Errorf("%d hosts seed %d: %s predicted %.4fs beats the exhaustive optimum %.4fs",
						size, seed, h.name, pred, exact)
				}
				if gap > h.maxGap {
					t.Errorf("%d hosts seed %d: %s gap %.2f%% exceeds the %.0f%% bound (%.4fs vs %.4fs)",
						size, seed, h.name, gap, h.maxGap, pred, exact)
				}
			}
		}
	}
}

// TestSelectorDeterminism verifies every selector family reproduces the
// exact same schedule when the scenario and spec (including the GA
// seed) are identical — the property the paper's reproducibility story
// rests on.
func TestSelectorDeterminism(t *testing.T) {
	specs := []core.SelectorSpec{
		{Kind: core.SelectorExhaustive},
		{Kind: core.SelectorGreedy},
		{Kind: core.SelectorBeam, BeamWidth: 4},
		{Kind: core.SelectorLPGA, Seed: 7},
	}
	for _, spec := range specs {
		var schedules []interface{}
		for run := 0; run < 2; run++ {
			agent, err := NewScaleAgent(3, 4, 600, 42, core.WithSelector(spec))
			if err != nil {
				t.Fatalf("%s run %d: %v", spec.Kind, run, err)
			}
			sched, err := agent.Schedule(600)
			if err != nil {
				t.Fatalf("%s run %d: %v", spec.Kind, run, err)
			}
			schedules = append(schedules, sched)
		}
		if !reflect.DeepEqual(schedules[0], schedules[1]) {
			t.Errorf("selector %q is not deterministic:\n run 1: %+v\n run 2: %+v",
				spec.Kind, schedules[0], schedules[1])
		}
	}
}
