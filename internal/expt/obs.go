package expt

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"apples/internal/core"
	"apples/internal/obs"
)

// ObsRow is one pool size of the observability-overhead experiment.
type ObsRow struct {
	Hosts      int
	Candidates int     // resource sets the selector produced
	OffMS      float64 // tracer and metrics nil — the default fast path
	MetricsMS  float64 // shared obs.Metrics registry attached
	TraceMS    float64 // JSONL tracer streaming to a discarded writer
	Events     int     // trace events one round emits
}

// TraceOverheadPct returns the full-trace slowdown over the fast path,
// in percent (0 when the off run was too fast to resolve).
func (r ObsRow) TraceOverheadPct() float64 {
	if r.OffMS <= 0 {
		return 0
	}
	return 100 * (r.TraceMS - r.OffMS) / r.OffMS
}

// ObsOverhead measures what the decision-trace layer costs a scheduling
// round at each instrumentation level: off (nil tracer and metrics — the
// shipped default, one pointer check per site), metrics only (atomic
// counters and histograms), and a full JSONL trace streamed to a
// discarded writer. The "off" column is the price every user pays for
// the layer existing; it must be indistinguishable from a build without
// it. Each mode schedules the same warmed cluster-of-clusters scenario;
// times are the best of three rounds.
func ObsOverhead(sizes [][2]int, n int, seed int64) ([]ObsRow, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{2, 4}, {3, 4}, {8, 4}, {8, 8}}
	}
	if n == 0 {
		n = 2000
	}
	var rows []ObsRow
	for _, cp := range sizes {
		row := ObsRow{Hosts: cp[0] * cp[1]}

		var events atomic.Int64
		modes := []struct {
			set  func(*ObsRow, float64)
			opts func() []core.AgentOption
		}{
			{func(r *ObsRow, v float64) { r.OffMS = v },
				func() []core.AgentOption { return nil }},
			{func(r *ObsRow, v float64) { r.MetricsMS = v },
				func() []core.AgentOption {
					return []core.AgentOption{core.WithMetrics(obs.NewMetrics())}
				}},
			{func(r *ObsRow, v float64) { r.TraceMS = v },
				func() []core.AgentOption {
					jsonl := obs.NewJSONLTracer(io.Discard)
					return []core.AgentOption{core.WithTracer(obs.TracerFunc(func(e obs.Event) {
						events.Add(1)
						jsonl.Emit(e)
					}))}
				}},
		}
		const trials = 3
		for _, m := range modes {
			agent, err := NewScaleAgent(cp[0], cp[1], n, seed, m.opts()...)
			if err != nil {
				return nil, err
			}
			best := 0.0
			for trial := 0; trial < trials; trial++ {
				wall := time.Now()
				sched, err := agent.Schedule(n)
				if err != nil {
					return nil, fmt.Errorf("obs overhead %dx%d: %w", cp[0], cp[1], err)
				}
				row.Candidates = sched.CandidatesConsidered
				if ms := float64(time.Since(wall).Microseconds()) / 1000; trial == 0 || ms < best {
					best = ms
				}
			}
			m.set(&row, best)
		}
		// Every trial of a round emits the same event set (same pool, same
		// frozen forecasts), so the per-round count is the total over the
		// trace trials divided by the trial count.
		row.Events = int(events.Load()) / trials
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatObsOverhead renders the observability-overhead experiment.
func FormatObsOverhead(rows []ObsRow) string {
	var sb strings.Builder
	sb.WriteString("Observability overhead — one scheduling round (ms wall-clock, best of 3)\n")
	sb.WriteString("  hosts  candidates  off(ms)  +metrics(ms)  +trace(ms)  events  trace-vs-off\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %10d  %7.1f  %12.1f  %10.1f  %6d  %+11.1f%%\n",
			r.Hosts, r.Candidates, r.OffMS, r.MetricsMS, r.TraceMS, r.Events, r.TraceOverheadPct())
	}
	return sb.String()
}

// ObsOverheadCSV flattens the experiment for -csv.
func ObsOverheadCSV(rows []ObsRow) ([]string, [][]string) {
	header := []string{"hosts", "candidates", "off_ms", "metrics_ms", "trace_ms", "events", "trace_overhead_pct"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Hosts), fmt.Sprint(r.Candidates),
			fmt.Sprintf("%.3f", r.OffMS), fmt.Sprintf("%.3f", r.MetricsMS),
			fmt.Sprintf("%.3f", r.TraceMS), fmt.Sprint(r.Events),
			fmt.Sprintf("%.1f", r.TraceOverheadPct()),
		})
	}
	return header, cells
}
