package expt

import (
	"fmt"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/nws"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// NewServiceScenario builds the multi-tenant serving scenario the
// service benchmarks and smoke tests drive: K identically-configured
// Jacobi2D agents over ONE warmed NWS information source and one
// cluster-of-clusters pool, all registered with a fresh SchedService.
// Because every tenant shares the information source and pool, their
// concurrent rounds collapse onto one copy-on-write snapshot — the
// regime the sched_snapshot_shared_ratio gauge is about.
func NewServiceScenario(tenants, clusters, per, n int, seed int64, opts ...core.AgentOption) (*core.SchedService, []*core.Tenant, error) {
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: seed,
	})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(300); err != nil {
		return nil, nil, err
	}
	svc.Stop()
	info := core.NWSInformation(svc, tp)

	sched := core.NewSchedService()
	clients := make([]*core.Tenant, tenants)
	for k := range clients {
		agent, err := core.NewAgent(tp, hat.Jacobi2D(n, 40), &userspec.Spec{Decomposition: "strip"},
			info, opts...)
		if err != nil {
			return nil, nil, err
		}
		if clients[k], err = sched.Register(fmt.Sprintf("t%d", k), agent); err != nil {
			return nil, nil, err
		}
	}
	return sched, clients, nil
}
