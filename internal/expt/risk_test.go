package expt

import (
	"strings"
	"testing"
)

func TestAblationRiskShape(t *testing.T) {
	rows, err := AblationRisk(1000, []float64{0, 2}, []int64{101, 202})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	neutral, averse := rows[0], rows[1]
	if neutral.MeanTime <= 0 || averse.MeanTime <= 0 {
		t.Fatalf("non-positive times: %+v", rows)
	}
	// Strong risk aversion concentrates work on fewer, stabler hosts.
	if averse.MeanHosts >= neutral.MeanHosts {
		t.Errorf("k=2 used %.1f hosts, neutral used %.1f: aversion had no effect",
			averse.MeanHosts, neutral.MeanHosts)
	}
	// And it costs mean performance (it is a hedge, not a free lunch) —
	// but not catastrophically.
	if averse.MeanTime > neutral.MeanTime*2 {
		t.Errorf("k=2 mean %.2f vs neutral %.2f: aversion too destructive",
			averse.MeanTime, neutral.MeanTime)
	}
	out := FormatAblationRisk(rows)
	if !strings.Contains(out, "Ablation A4") {
		t.Fatalf("format: %q", out)
	}
}

func TestConservativeInformationIsDeterministic(t *testing.T) {
	a, err := runConservative(800, 30, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runConservative(800, 30, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Measured != b.Measured {
		t.Fatalf("conservative runs diverged: %v vs %v", a.Measured, b.Measured)
	}
	if a.Schedule.InfoSource != "nws-conservative" {
		t.Fatalf("info source %q", a.Schedule.InfoSource)
	}
}
