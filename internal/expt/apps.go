package expt

import (
	"fmt"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/nile"
	"apples/internal/nws"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// ReactResult is experiment E5 (Section 2.3's reported times).
type ReactResult struct {
	SurfaceFunctions int
	SingleC90Hours   float64
	SingleParagonHrs float64
	DistributedHours float64
	BestUnit         int
	Producer         string
	Consumer         string
	// UnitSweep maps pipeline unit -> simulated hours, over the template's
	// 5-20 range (the tuning curve the developers' model captured).
	UnitSweep map[int]float64
}

// React reproduces the 3D-REACT result: >16 h on either machine alone,
// just under 5 h distributed, with the pipeline-unit tradeoff.
func React(surfaceFunctions int) (*ReactResult, error) {
	if surfaceFunctions == 0 {
		surfaceFunctions = 600
	}
	tpl := hat.React3D(surfaceFunctions)
	res := &ReactResult{SurfaceFunctions: surfaceFunctions, UnitSweep: map[int]float64{}}

	for _, m := range []string{"c90", "paragon"} {
		tp := grid.CASA(sim.NewEngine())
		r, err := react.RunSingleSite(tp, tpl, m, react.Options{})
		if err != nil {
			return nil, err
		}
		if m == "c90" {
			res.SingleC90Hours = r.Time / 3600
		} else {
			res.SingleParagonHrs = r.Time / 3600
		}
	}

	// The mapping decision runs through the pipeline-blueprint AppLeS —
	// the same shared Coordinator as the Jacobi agent — with an oracle
	// information source on the dedicated CASA pair (availability 1
	// everywhere, so this reproduces the developers' static choice).
	tpSel := grid.CASA(sim.NewEngine())
	agent, err := core.NewPipelineAgent(tpSel, tpl, &userspec.Spec{},
		core.OracleInformation(tpSel), react.Options{})
	if err != nil {
		return nil, err
	}
	sched, err := agent.Schedule()
	if err != nil {
		return nil, err
	}
	prod, cons, unit := sched.Producer, sched.Consumer, sched.Unit
	res.Producer, res.Consumer, res.BestUnit = prod, cons, unit

	for u := tpl.PipelineUnitMin; u <= tpl.PipelineUnitMax; u++ {
		tp := grid.CASA(sim.NewEngine())
		r, err := react.RunPipeline(tp, tpl, prod, cons, u, react.Options{})
		if err != nil {
			return nil, err
		}
		res.UnitSweep[u] = r.Time / 3600
		if u == unit {
			res.DistributedHours = r.Time / 3600
		}
	}
	return res, nil
}

// FormatReact renders experiment E5.
func FormatReact(r *ReactResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "3D-REACT (%d surface functions)\n", r.SurfaceFunctions)
	fmt.Fprintf(&sb, "  single-site C90:      %6.2f h   (paper: >16 h)\n", r.SingleC90Hours)
	fmt.Fprintf(&sb, "  single-site Paragon:  %6.2f h   (paper: >16 h)\n", r.SingleParagonHrs)
	fmt.Fprintf(&sb, "  distributed %s->%s (unit=%d): %5.2f h   (paper: <5 h)\n",
		r.Producer, r.Consumer, r.BestUnit, r.DistributedHours)
	sb.WriteString("  pipeline unit sweep (hours):\n")
	for u := 5; u <= 20; u++ {
		if t, ok := r.UnitSweep[u]; ok {
			fmt.Fprintf(&sb, "    u=%2d  %6.3f\n", u, t)
		}
	}
	return sb.String()
}

// NileRow is one pass count of experiment E6's decision curve.
type NileRow struct {
	Passes  int
	Remote  float64 // measured seconds
	Skim    float64
	AtData  float64
	Chosen  nile.Strategy // site manager's pick
	ChoseOK bool          // pick within 10% of measured best
}

// NileResult is experiment E6.
type NileResult struct {
	Events int
	Rows   []NileRow
	// SkimCrossover is the first pass count at which skim becomes the
	// measured-best strategy (0 if it never does in the sweep).
	SkimCrossover int
}

// Nile reproduces the CLEO/NILE site-manager decision: the cost of
// skimming versus the predicted reduction in access cost once data is
// local, swept over repeated-analysis counts.
func Nile(events int, maxPasses int, seed int64) (*NileResult, error) {
	if events == 0 {
		events = 50000
	}
	if maxPasses == 0 {
		maxPasses = 8
	}
	res := &NileResult{Events: events}
	tpl := hat.Nile(events)

	// The physicist works on alpha2 (the CORBA-capable farm nodes, per the
	// paper's NILE constraint) and skims to keep half the events.
	const userHost = "alpha2"
	const selectivity = 0.5

	crossSet := false
	for p := 1; p <= maxPasses; p++ {
		row := NileRow{Passes: p}
		times := map[nile.Strategy]float64{}
		for _, s := range []nile.Strategy{nile.Remote, nile.Skim, nile.AtData} {
			eng := sim.NewEngine()
			tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
			if err := eng.RunUntil(300); err != nil {
				return nil, err
			}
			job, err := nile.JobFromTemplate(tpl, userHost, p)
			if err != nil {
				return nil, err
			}
			job.SkimSelectivity = selectivity
			ds := nile.Dataset{Name: "roar", Site: "alpha1", Events: events, RecordBytes: 20480}
			out, err := nile.Execute(tp, ds, job, s)
			if err != nil {
				return nil, err
			}
			times[s] = out.Time
		}
		row.Remote, row.Skim, row.AtData = times[nile.Remote], times[nile.Skim], times[nile.AtData]

		// Site manager decision driven by NWS forecasts, exactly as the
		// paper's Site Manager consumes dynamic information (an
		// instantaneous oracle would mispredict run-length averages).
		eng := sim.NewEngine()
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
		svc := nws.NewService(eng, 10)
		svc.WatchTopology(tp)
		if err := eng.RunUntil(300); err != nil {
			return nil, err
		}
		svc.Stop()
		// The analysis runs for hundreds of virtual seconds, so the site
		// manager consumes the NWS long-horizon (running mean) estimates
		// rather than the one-step forecasts.
		sm := nile.NewSiteManager(tp, nwsLongTerm{svc: svc, tp: tp})
		job, _ := nile.JobFromTemplate(tpl, userHost, p)
		job.SkimSelectivity = selectivity
		ds := nile.Dataset{Name: "roar", Site: "alpha1", Events: events, RecordBytes: 20480}
		choice, _, err := sm.Choose(ds, job)
		if err != nil {
			return nil, err
		}
		row.Chosen = choice
		best := times[nile.Remote]
		for _, t := range times {
			if t < best {
				best = t
			}
		}
		row.ChoseOK = times[choice] <= best*1.15
		res.Rows = append(res.Rows, row)

		if !crossSet && row.Skim <= best {
			res.SkimCrossover = p
			crossSet = true
		}
	}
	return res, nil
}

// nwsLongTerm adapts NWS long-horizon estimates to nile.Estimates.
type nwsLongTerm struct {
	svc *nws.Service
	tp  *grid.Topology
}

func (e nwsLongTerm) Availability(host string) float64 {
	if v, ok := e.svc.AvailabilityLongTerm(host); ok {
		return v
	}
	return 1
}

func (e nwsLongTerm) RouteBandwidth(a, b string) float64 {
	return e.svc.RouteBandwidthLongTerm(e.tp, a, b)
}

func (e nwsLongTerm) RouteLatency(a, b string) float64 {
	return e.tp.RouteLatency(a, b)
}

// FormatNile renders experiment E6.
func FormatNile(r *NileResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CLEO/NILE skim-vs-remote decision (%d events, 20 KB pass2 records)\n", r.Events)
	sb.WriteString("  passes     remote       skim    at-data   site-manager pick\n")
	for _, row := range r.Rows {
		ok := ""
		if !row.ChoseOK {
			ok = "  (!)"
		}
		fmt.Fprintf(&sb, "  %6d  %9.1f  %9.1f  %9.1f   %s%s\n",
			row.Passes, row.Remote, row.Skim, row.AtData, row.Chosen, ok)
	}
	if r.SkimCrossover > 0 {
		fmt.Fprintf(&sb, "  skimming becomes the best strategy at %d passes\n", r.SkimCrossover)
	} else {
		sb.WriteString("  skimming never becomes the best strategy in this sweep\n")
	}
	return sb.String()
}
