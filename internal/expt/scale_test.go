package expt

import (
	"strings"
	"testing"
)

func TestScalabilitySmall(t *testing.T) {
	rows, err := Scalability([][2]int{{2, 4}, {4, 4}}, 1200, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	small, big := rows[0], rows[1]
	if small.Hosts != 8 || big.Hosts != 16 {
		t.Fatalf("hosts %d/%d", small.Hosts, big.Hosts)
	}
	// 8 hosts: exhaustive subsets (255). 16 hosts: desirability prefixes.
	if small.Candidates != 255 {
		t.Fatalf("8-host pool considered %d sets, want 255", small.Candidates)
	}
	if big.Candidates != 16 {
		t.Fatalf("16-host pool considered %d sets, want 16 prefixes", big.Candidates)
	}
	// Even with the pruned search the agent must beat uniform blocked.
	for _, r := range rows {
		if r.Speedup() < 1.2 {
			t.Errorf("%d hosts: AppLeS only %.2fx better than blocked", r.Hosts, r.Speedup())
		}
		if r.AppLeS <= 0 || r.Blocked <= 0 {
			t.Fatalf("bad times %+v", r)
		}
	}
	out := FormatScalability(rows)
	if !strings.Contains(out, "Scalability") {
		t.Fatalf("format: %q", out)
	}
}
