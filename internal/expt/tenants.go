package expt

import (
	"fmt"
	"strings"
	"sync"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/nws"
	"apples/internal/obs"
	"apples/internal/partition"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// TenantConvergeConfig parameterizes the multi-tenant convergence
// experiment: K competing AppLeS agents registered with one scheduling
// service, each seeing the metacomputer through an overlay that folds
// the OTHER tenants' placements into per-host availability. Every loop
// round each tenant re-schedules through the service and applies the
// Section 3.2 migrate/keep policy (hysteresis + migration cost)
// against its current placement.
//
// Sequential selects the information regime, the experiment's
// independent variable. false (simultaneous) is the stale-information
// regime: every tenant decides from LAST round's placements, so
// identical agents make identical decisions and herd between host
// sets. true is the fresh-information regime: tenants update one at a
// time within a round, each seeing the placements as they are NOW —
// the application-centric analogue of scheduling from current rather
// than stale weather.
type TenantConvergeConfig struct {
	Tenants    int     // competing agents (default 6)
	N          int     // Jacobi2D problem size (default 1200)
	Rounds     int     // loop rounds before declaring oscillation (default 12)
	Hysteresis float64 // minimum fractional improvement to migrate (default 0.15)
	Horizon    int     // iterations a migration must amortize over (default 40)
	Sequential bool    // fresh-information (one-at-a-time) updates
	Undamped   bool    // migrate on ANY predicted gain (no hysteresis, no cost gate)
	Seed       int64
	Clusters   int // testbed clusters (default 3)
	PerCluster int // hosts per cluster (default 4)
}

func (c *TenantConvergeConfig) defaults() {
	if c.Tenants == 0 {
		c.Tenants = 6
	}
	if c.N == 0 {
		c.N = 1200
	}
	if c.Rounds == 0 {
		c.Rounds = 12
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.15
	}
	if c.Horizon == 0 {
		c.Horizon = 40
	}
	if c.Clusters == 0 {
		c.Clusters = 3
	}
	if c.PerCluster == 0 {
		c.PerCluster = 4
	}
}

// TenantFinal is one tenant's state when the loop stopped.
type TenantFinal struct {
	ID         string
	Hosts      []string
	IterTime   float64 // predicted s/iter of the placement it holds
	Migrations int     // migrate verdicts over the run (first adoption included)
}

// TenantConvergeResult reports one regime of the experiment.
type TenantConvergeResult struct {
	Cfg             TenantConvergeConfig
	Changed         []int // migrations per loop round
	ConvergedAt     int   // first round with zero migrations (0 = never)
	Oscillating     bool  // never went quiet within Cfg.Rounds
	Fairness        float64
	VerdictsChecked int // migrate/keep verdicts re-derived from the trace
	Final           []TenantFinal
	Events          []obs.Event // the shared decision trace (service + policy)
}

// TenantConverge runs K competing agents through one SchedService until
// no tenant migrates (a fixed point: identical placements imply
// identical overlays imply identical decisions forever) or Cfg.Rounds
// elapse. Every migrate/keep verdict is emitted as an EvReschedule into
// the shared trace and re-derived from the recorded fields before the
// result is returned.
func TenantConverge(cfg TenantConvergeConfig) (*TenantConvergeResult, error) {
	cfg.defaults()
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: cfg.Clusters, PerCluster: cfg.PerCluster, Seed: cfg.Seed,
	})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(300); err != nil {
		return nil, err
	}
	svc.Stop()
	base := core.NWSInformation(svc, tp)

	trace := obs.NewCollector()
	sched := core.NewSchedService(core.WithServiceTracer(trace))
	defer sched.Close()

	tpl := hat.Jacobi2D(cfg.N, cfg.Horizon)
	bytesPerPoint := tpl.Tasks[0].BytesPerUnit
	hosts := tp.Hosts()

	type tenant struct {
		id         string
		overlay    map[string]float64
		info       core.Information
		agent      *core.Agent
		client     *core.Tenant
		placement  *partition.Placement
		iterTime   float64
		migrations int
	}
	tenants := make([]*tenant, cfg.Tenants)
	for k := range tenants {
		overlay := map[string]float64{}
		info := core.NewOverlayInformation(base, overlay)
		agent, err := core.NewAgent(tp, tpl, &userspec.Spec{Decomposition: "strip"}, info)
		if err != nil {
			return nil, err
		}
		t := &tenant{id: fmt.Sprintf("t%d", k), overlay: overlay, info: info, agent: agent}
		if t.client, err = sched.Register(t.id, agent); err != nil {
			return nil, err
		}
		tenants[k] = t
	}

	// refreshOverlay folds every OTHER tenant's current placement into
	// t's availability view: a host carrying fraction f of a competitor
	// looks 1/(1+f) as available. The tenant's own load is excluded —
	// hosts it already holds look clean to it, which is what makes
	// staying put attractive once hysteresis damps the loop.
	refreshOverlay := func(t *tenant) {
		clear(t.overlay)
		for _, h := range hosts {
			load := 0.0
			for _, o := range tenants {
				if o != t && o.placement != nil {
					load += o.placement.Fraction(h.Name)
				}
			}
			if load > 0 {
				t.overlay[h.Name] = base.Availability(h.Name) / (1 + load)
			}
		}
	}

	// decide applies the Section 3.2 policy to the fresh service round
	// and emits the verdict into the shared trace.
	decide := func(t *tenant, round int, fresh *core.Schedule) (migrated bool, err error) {
		ev := obs.Event{Type: obs.EvReschedule, Tenant: t.id, Round: uint64(round)}
		adopt := func() {
			t.placement, t.iterTime = fresh.Placement, fresh.PredictedIterTime
			t.migrations++
		}
		if t.placement == nil {
			adopt()
			ev.Verdict, ev.Reason = "migrate", "initial"
			ev.Fresh, ev.Hosts = fresh.PredictedIterTime, fresh.Hosts
			trace.Emit(ev)
			return true, nil
		}
		cur, err := t.agent.EstimatePlacement(cfg.N, t.placement)
		if err != nil {
			return false, err
		}
		ev.Current, ev.Fresh = cur, fresh.PredictedIterTime
		if cfg.Undamped {
			// The greedy feedback loop the damping exists to prevent:
			// chase any predicted gain, however small, cost be damned.
			if fresh.PredictedIterTime < cur {
				adopt()
				ev.Verdict, ev.Reason, ev.Hosts = "migrate", "undamped", fresh.Hosts
				trace.Emit(ev)
				return true, nil
			}
			ev.Verdict, ev.Reason = "keep", "undamped"
			trace.Emit(ev)
			return false, nil
		}
		if fresh.PredictedIterTime >= cur*(1-cfg.Hysteresis) {
			ev.Verdict, ev.Reason = "keep", "hysteresis"
			trace.Emit(ev)
			return false, nil
		}
		savings := (cur - fresh.PredictedIterTime) * float64(cfg.Horizon)
		migMB := jacobi.EstimateMigrationMB(t.placement, fresh.Placement, bytesPerPoint)
		migCost := migrationSeconds(t.info, t.placement, fresh.Placement, migMB)
		ev.Savings, ev.MigCost = savings, migCost
		if savings <= migCost {
			ev.Verdict, ev.Reason = "keep", "migration-cost"
			trace.Emit(ev)
			return false, nil
		}
		adopt()
		ev.Verdict, ev.Hosts = "migrate", fresh.Hosts
		trace.Emit(ev)
		return true, nil
	}

	res := &TenantConvergeResult{Cfg: cfg}
	for round := 1; round <= cfg.Rounds; round++ {
		changed := 0
		if cfg.Sequential {
			// Fresh information: each tenant sees the placements as they
			// are NOW, including moves made earlier this same round.
			for _, t := range tenants {
				refreshOverlay(t)
				sched.InvalidateSnapshots()
				s, err := t.client.Schedule(cfg.N)
				if err != nil {
					return nil, err
				}
				m, err := decide(t, round, s)
				if err != nil {
					return nil, err
				}
				if m {
					changed++
				}
			}
		} else {
			// Stale information: every overlay is computed from LAST
			// round's placements, then all tenants re-schedule
			// concurrently through the service.
			for _, t := range tenants {
				refreshOverlay(t)
			}
			sched.InvalidateSnapshots()
			fresh := make([]*core.Schedule, len(tenants))
			errs := make([]error, len(tenants))
			var wg sync.WaitGroup
			for k, t := range tenants {
				wg.Add(1)
				go func(k int, t *tenant) {
					defer wg.Done()
					fresh[k], errs[k] = t.client.Schedule(cfg.N)
				}(k, t)
			}
			wg.Wait()
			for k, t := range tenants {
				if errs[k] != nil {
					return nil, errs[k]
				}
				m, err := decide(t, round, fresh[k])
				if err != nil {
					return nil, err
				}
				if m {
					changed++
				}
			}
		}
		res.Changed = append(res.Changed, changed)
		if changed == 0 {
			// Fixed point: unchanged placements reproduce the same
			// overlays, snapshots, and verdicts forever.
			res.ConvergedAt = round
			break
		}
	}
	res.Oscillating = res.ConvergedAt == 0
	res.Fairness = sched.Fairness()
	for _, t := range tenants {
		res.Final = append(res.Final, TenantFinal{
			ID: t.id, Hosts: t.placement.Hosts(), IterTime: t.iterTime, Migrations: t.migrations,
		})
	}
	res.Events = trace.Events()
	checked, err := VerifyTenantVerdicts(res.Events, cfg.Hysteresis)
	if err != nil {
		return nil, fmt.Errorf("tenant-converge: trace verification failed: %w", err)
	}
	res.VerdictsChecked = checked
	return res, nil
}

// migrationSeconds prices moving migMB between the placements through
// the slowest forecast route linking a shrinking host to a growing one
// (the same bottleneck model Agent.Rescheduler applies in-run).
func migrationSeconds(info core.Information, oldP, newP *partition.Placement, migMB float64) float64 {
	if migMB <= 0 {
		return 0
	}
	oldPts := map[string]int{}
	for _, a := range oldP.Assignments {
		oldPts[a.Host] = a.Points
	}
	var shrank, grew []string
	seen := map[string]bool{}
	for _, a := range newP.Assignments {
		seen[a.Host] = true
		switch d := a.Points - oldPts[a.Host]; {
		case d > 0:
			grew = append(grew, a.Host)
		case d < 0:
			shrank = append(shrank, a.Host)
		}
	}
	for h, pts := range oldPts {
		if !seen[h] && pts > 0 {
			shrank = append(shrank, h)
		}
	}
	worstBW := 1e30
	for _, s := range shrank {
		for _, g := range grew {
			if bw := info.RouteBandwidth(s, g); bw < worstBW {
				worstBW = bw
			}
		}
	}
	if worstBW <= 0 || worstBW >= 1e30 {
		return 0
	}
	return migMB / worstBW
}

// VerifyTenantVerdicts re-derives every migrate/keep verdict in a
// decision trace from the numeric fields recorded alongside it, and
// cross-checks the policy stream against the service stream: each
// EvReschedule must be backed by exactly one EvTenantRound for the
// same tenant. It returns how many verdicts were checked; any
// inconsistency is an error.
func VerifyTenantVerdicts(events []obs.Event, hysteresis float64) (int, error) {
	const eps = 1e-9
	rounds := map[string]int{}
	verdicts := map[string]int{}
	checked := 0
	for _, e := range events {
		switch e.Type {
		case obs.EvTenantRound:
			rounds[e.Tenant]++
		case obs.EvReschedule:
			verdicts[e.Tenant]++
			id := fmt.Sprintf("%s round %d", e.Tenant, e.Round)
			switch {
			case e.Verdict == "migrate" && e.Reason == "initial":
				// First adoption: nothing to compare against yet.
				continue
			case e.Verdict == "migrate" && e.Reason == "undamped":
				if e.Fresh >= e.Current {
					return checked, fmt.Errorf("%s: undamped migrate but fresh %.6f >= current %.6f",
						id, e.Fresh, e.Current)
				}
			case e.Verdict == "keep" && e.Reason == "undamped":
				if e.Fresh < e.Current {
					return checked, fmt.Errorf("%s: undamped keep but fresh %.6f < current %.6f",
						id, e.Fresh, e.Current)
				}
			case e.Verdict == "migrate":
				if e.Fresh >= e.Current*(1-hysteresis)+eps {
					return checked, fmt.Errorf("%s: migrated but fresh %.6f does not beat current %.6f by %.0f%%",
						id, e.Fresh, e.Current, 100*hysteresis)
				}
				if e.Savings <= e.MigCost {
					return checked, fmt.Errorf("%s: migrated but savings %.6f <= migration cost %.6f",
						id, e.Savings, e.MigCost)
				}
			case e.Verdict == "keep" && e.Reason == "hysteresis":
				if e.Fresh < e.Current*(1-hysteresis)-eps {
					return checked, fmt.Errorf("%s: kept on hysteresis but fresh %.6f beats current %.6f by more than %.0f%%",
						id, e.Fresh, e.Current, 100*hysteresis)
				}
			case e.Verdict == "keep" && e.Reason == "migration-cost":
				if e.Savings > e.MigCost+eps {
					return checked, fmt.Errorf("%s: kept on migration cost but savings %.6f > cost %.6f",
						id, e.Savings, e.MigCost)
				}
			default:
				return checked, fmt.Errorf("%s: unrecognized verdict %q/%q", id, e.Verdict, e.Reason)
			}
			checked++
		}
	}
	if checked == 0 {
		return 0, fmt.Errorf("no migrate/keep verdict in the trace to verify")
	}
	for id, v := range verdicts {
		if rounds[id] != v {
			return checked, fmt.Errorf("tenant %s: %d verdicts but %d service rounds", id, v, rounds[id])
		}
	}
	return checked, nil
}

// TenantConvergeRegimes runs the three-regime contrast the figure
// prints: undamped greedy feedback on stale placements (the herd that
// never settles), the damped Section 3.2 policy on stale placements,
// and the damped policy on fresh one-at-a-time placements.
func TenantConvergeRegimes(cfg TenantConvergeConfig) (undamped, stale, seq *TenantConvergeResult, err error) {
	c := cfg
	c.Sequential, c.Undamped = false, true
	if undamped, err = TenantConverge(c); err != nil {
		return nil, nil, nil, err
	}
	c.Undamped = false
	if stale, err = TenantConverge(c); err != nil {
		return nil, nil, nil, err
	}
	c.Sequential = true
	if seq, err = TenantConverge(c); err != nil {
		return nil, nil, nil, err
	}
	return undamped, stale, seq, nil
}

// FormatTenantConverge renders the three regimes side by side as the
// oscillate-vs-converge table.
func FormatTenantConverge(undamped, stale, seq *TenantConvergeResult) string {
	var sb strings.Builder
	cfg := stale.Cfg
	fmt.Fprintf(&sb, "Tenant convergence — %d competing agents on one scheduling service (%dx%d hosts, Jacobi2D %d, hysteresis %.0f%%)\n",
		cfg.Tenants, cfg.Clusters, cfg.PerCluster, cfg.N, 100*cfg.Hysteresis)
	fmt.Fprintf(&sb, "  migrations per loop round:\n")
	results := []*TenantConvergeResult{undamped, stale, seq}
	labels := []string{"undamped, stale info", "damped, stale info", "damped, fresh info"}
	fmt.Fprintf(&sb, "  %5s  %-22s  %-22s  %-22s\n", "round", labels[0], labels[1], labels[2])
	rows := 0
	for _, r := range results {
		rows = max(rows, len(r.Changed))
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "  %5d", i+1)
		for _, r := range results {
			if i < len(r.Changed) {
				fmt.Fprintf(&sb, "  %-22d", r.Changed[i])
			} else {
				fmt.Fprintf(&sb, "  %-22s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  %5s", "")
	for _, r := range results {
		if r.Oscillating {
			fmt.Fprintf(&sb, "  %-22s", "OSCILLATES")
		} else {
			fmt.Fprintf(&sb, "  %-22s", fmt.Sprintf("converges at round %d", r.ConvergedAt))
		}
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  fairness (max/min tenant rounds): %.2f / %.2f / %.2f\n",
		undamped.Fairness, stale.Fairness, seq.Fairness)
	fmt.Fprintf(&sb, "  verdicts re-derived from decision trace: %d\n",
		undamped.VerdictsChecked+stale.VerdictsChecked+seq.VerdictsChecked)
	fmt.Fprintf(&sb, "  final placements (damped, fresh info):\n")
	for _, t := range seq.Final {
		fmt.Fprintf(&sb, "    %-4s %2d migration(s)  %.4f s/iter  hosts=%v\n",
			t.ID, t.Migrations, t.IterTime, t.Hosts)
	}
	return sb.String()
}

// TenantConvergeCSV flattens the regimes into per-round rows.
func TenantConvergeCSV(undamped, stale, seq *TenantConvergeResult) ([]string, [][]string) {
	header := []string{"regime", "round", "migrations", "converged_at", "oscillating"}
	var cells [][]string
	emit := func(name string, r *TenantConvergeResult) {
		for i, c := range r.Changed {
			cells = append(cells, []string{
				name,
				fmt.Sprint(i + 1),
				fmt.Sprint(c),
				fmt.Sprint(r.ConvergedAt),
				fmt.Sprint(r.Oscillating),
			})
		}
	}
	emit("undamped-stale", undamped)
	emit("damped-stale", stale)
	emit("damped-fresh", seq)
	return header, cells
}
