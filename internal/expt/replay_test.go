package expt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "re-record the committed stores and golden files under testdata/")

// goldenReplaySpec is deliberately small: 12 sensing sweeps and a 600²
// problem keep the committed store a few kilobytes and the golden
// winner/verdict trace a reviewable handful of lines.
var goldenReplaySpec = ReplaySpec{N: 600, Iterations: 10, Seed: 11, WarmupSec: 120}

// winnerVerdictLines filters a JSONL decision trace down to the lines
// that state decisions — the winner of each scheduling round and the
// wait-or-run verdict — which is what the golden file pins.
func winnerVerdictLines(trace []byte) []byte {
	var out bytes.Buffer
	for _, line := range bytes.Split(trace, []byte("\n")) {
		if bytes.Contains(line, []byte(`"type":"winner"`)) || bytes.Contains(line, []byte(`"type":"wait-or-run"`)) {
			out.Write(line)
			out.WriteByte('\n')
		}
	}
	return out.Bytes()
}

// TestGoldenReplayTrace pins the full replay contract with committed
// artifacts: testdata/replay_store is a recorded sensing run in the
// durable store format, and testdata/golden_replay_trace.jsonl is the
// winner/verdict trace the original (live) run derived from it. A
// store-driven replay on a fresh process must re-derive that exact
// JSONL, and two replays must agree on every traced byte. Regenerate
// both artifacts with `go test -run GoldenReplay -update`.
func TestGoldenReplayTrace(t *testing.T) {
	storeDir := filepath.Join("testdata", "replay_store")
	golden := filepath.Join("testdata", "golden_replay_trace.jsonl")

	if *updateGolden {
		if err := os.RemoveAll(storeDir); err != nil {
			t.Fatal(err)
		}
		live, err := RecordReplayRun(goldenReplaySpec, storeDir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, winnerVerdictLines(live.Trace), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	first, err := ReplayRunFromStore(goldenReplaySpec, storeDir)
	if err != nil {
		t.Fatalf("%v (run `go test -run GoldenReplay -update` to record the store)", err)
	}
	second, err := ReplayRunFromStore(goldenReplaySpec, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Trace, second.Trace) {
		t.Fatal("two replays of the committed store produced different decision traces")
	}
	if first.Records == 0 {
		t.Fatal("replay restored no records from the committed store")
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run GoldenReplay -update` to create it)", err)
	}
	if got := winnerVerdictLines(first.Trace); !bytes.Equal(got, want) {
		t.Fatalf("replay re-derived a different winner/verdict trace than the recorded run —\n"+
			"if the schema or decision change is intended, regenerate with -update\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReplayEndToEnd runs the full record→replay→replay figure on a
// throwaway store and asserts both determinism properties hold, with
// the actuated times agreeing too — the replay drives the same
// schedule through the same world.
func TestReplayEndToEnd(t *testing.T) {
	spec := goldenReplaySpec
	spec.StoreDir = t.TempDir()
	r, err := Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deterministic {
		t.Error("replay-1 and replay-2 decision traces diverged")
	}
	if !r.MatchesLive {
		t.Error("replay decision trace diverged from the live run")
	}
	if r.Live.Measured != r.First.Measured || r.First.Measured != r.Second.Measured {
		t.Errorf("actuated times diverged: live %v, replay-1 %v, replay-2 %v",
			r.Live.Measured, r.First.Measured, r.Second.Measured)
	}
	if r.StoreRecords == 0 || r.StoreSegments == 0 {
		t.Errorf("store reports %d records in %d segments", r.StoreRecords, r.StoreSegments)
	}
	if out := FormatReplay(r); !bytes.Contains([]byte(out), []byte("identical")) {
		t.Errorf("FormatReplay output carries no verdict:\n%s", out)
	}
}
