package expt

import (
	"strings"
	"testing"
)

func TestMultiAppInterference(t *testing.T) {
	res, err := MultiApp(1000, 60, 61)
	if err != nil {
		t.Fatal(err)
	}
	if res.AloneA <= 0 || res.AloneB <= 0 || res.TogetherA <= 0 || res.TogetherB <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	// Identical agents with identical information pick overlapping
	// resources...
	if res.SharedHosts == 0 {
		t.Fatal("uncoordinated agents picked disjoint hosts?")
	}
	// ...so both applications must slow each other down appreciably, and
	// a fair processor-sharing substrate bounds the damage near 2x.
	for name, s := range map[string]float64{"A": res.SlowdownA(), "B": res.SlowdownB()} {
		if s < 1.2 {
			t.Errorf("app %s slowdown %.2fx: interference too weak", name, s)
		}
		if s > 3.5 {
			t.Errorf("app %s slowdown %.2fx: implausibly destructive", name, s)
		}
	}
	out := FormatMultiApp(res)
	if !strings.Contains(out, "Uncoordinated agents") {
		t.Fatalf("format: %q", out)
	}
}
