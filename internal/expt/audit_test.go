package expt

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"apples/internal/obs/audit"
)

// goldenAuditSpec keeps the committed store small (12 sensing sweeps)
// and the scenarios fast: a 600² problem, two back-to-back runs each.
var goldenAuditSpec = AuditSpec{
	N: 600, Iterations: 10, Seed: 23, WarmupSec: 120, Runs: 2,
	StoreDir: filepath.Join("testdata", "audit_store"),
}

// calibrationJSONL renders the offline series reports one JSON object
// per line — the committed golden calibration table.
func calibrationJSONL(t *testing.T, series []audit.SeriesReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range series {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestGoldenAuditCalibration pins the offline audit path with committed
// artifacts: testdata/audit_store is a recorded sensing run, and
// testdata/golden_audit_calibration.jsonl is the per-series forecast
// quality table derived from it. Auditing the store on a fresh process
// must re-derive that exact table, and two audits must agree byte for
// byte. Regenerate both with `go test -run GoldenAudit -update`.
func TestGoldenAuditCalibration(t *testing.T) {
	golden := filepath.Join("testdata", "golden_audit_calibration.jsonl")

	if *updateGolden {
		if err := os.RemoveAll(goldenAuditSpec.StoreDir); err != nil {
			t.Fatal(err)
		}
		if err := RecordAuditStore(goldenAuditSpec.StoreDir, goldenAuditSpec.Seed, goldenAuditSpec.WarmupSec); err != nil {
			t.Fatal(err)
		}
		series, _, err := AuditOffline(goldenAuditSpec.StoreDir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, calibrationJSONL(t, series), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	first, n1, err := AuditOffline(goldenAuditSpec.StoreDir)
	if err != nil {
		t.Fatalf("%v (run `go test -run GoldenAudit -update` to record the store)", err)
	}
	second, n2, err := AuditOffline(goldenAuditSpec.StoreDir)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 || n1 != n2 {
		t.Fatalf("audited %d then %d records, want equal and non-zero", n1, n2)
	}
	a, b := calibrationJSONL(t, first), calibrationJSONL(t, second)
	if !bytes.Equal(a, b) {
		t.Fatal("two audits of the committed store produced different calibration tables")
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run GoldenAudit -update` to create it)", err)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("offline audit re-derived a different calibration table than the recorded run —\n"+
			"if the forecaster or scoring change is intended, regenerate with -update\ngot:\n%s\nwant:\n%s", a, want)
	}
}

// TestAuditFigureDriftAndStability runs the full figure twice from the
// committed store and asserts the closing-the-loop contract: identical
// bytes across runs, drift alarms fire in the churn scenario and stay
// silent on the stationary baseline, and every scheduled run joined its
// prediction.
func TestAuditFigureDriftAndStability(t *testing.T) {
	r1, err := AuditFigure(goldenAuditSpec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AuditFigure(goldenAuditSpec)
	if err != nil {
		t.Fatal(err)
	}
	out1, out2 := FormatAudit(r1), FormatAudit(r2)
	if out1 != out2 {
		t.Fatalf("figure not bit-stable across two runs:\n%s\n---\n%s", out1, out2)
	}

	if len(r1.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(r1.Scenarios))
	}
	byName := map[string]AuditScenarioRow{}
	for _, row := range r1.Scenarios {
		byName[row.Name] = row
	}
	stat, churn := byName["stationary"], byName["churn"]
	if stat.Alarms != 0 || len(stat.Degraded) != 0 {
		t.Fatalf("stationary scenario drifted: alarms=%d degraded=%v", stat.Alarms, stat.Degraded)
	}
	if churn.Alarms == 0 || len(churn.Degraded) == 0 {
		t.Fatalf("churn scenario fired no drift: alarms=%d degraded=%v", churn.Alarms, churn.Degraded)
	}
	wantJoins := uint64(goldenAuditSpec.Runs)
	if stat.Joins != wantJoins || churn.Joins != wantJoins {
		t.Fatalf("joins = %d/%d, want %d per scenario", stat.Joins, churn.Joins, wantJoins)
	}
	for _, row := range r1.Scenarios {
		if row.MAE < 0 || row.AppLeS <= 0 || row.Strip <= 0 {
			t.Fatalf("degenerate scenario row: %+v", row)
		}
		var mass uint64
		for _, c := range row.Calibration {
			mass += c
		}
		if mass != row.Joins {
			t.Fatalf("%s calibration mass = %d, want %d joins", row.Name, mass, row.Joins)
		}
	}
	if r1.StoreRecords == 0 || len(r1.Series) == 0 {
		t.Fatalf("offline half empty: %d records, %d series", r1.StoreRecords, len(r1.Series))
	}
}
