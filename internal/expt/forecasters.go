package expt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"apples/internal/load"
	"apples/internal/nws"
	"apples/internal/sim"
)

// ForecasterClassRow is one load-generator class of ablation A2: which
// forecaster the bank selects for it, and how the selection compares with
// the single best and worst constituents.
type ForecasterClassRow struct {
	Class     string
	Selected  string
	BankMSE   float64 // MSE of the bank's dynamic selection (scored online)
	BestMSE   float64 // MSE of the single best forecaster in hindsight
	BestName  string
	WorstMSE  float64
	WorstName string
}

// AblationForecasters runs the full predictor bank over each load
// generator class and reports per-class winners — the paper's §3.6 point
// made concrete: no single predictor dominates, so dynamic selection is
// what makes the NWS robust.
func AblationForecasters(samples int, seed int64) ([]ForecasterClassRow, error) {
	if samples == 0 {
		samples = 2000
	}
	rng := sim.NewRand(seed)
	classes := []struct {
		name string
		mk   func() load.Source
	}{
		{"ar1-persistent", func() load.Source { return load.NewAR1(rng.Fork(), 1, 1.0, 0.95, 0.2) }},
		{"ar1-noisy", func() load.Source { return load.NewAR1(rng.Fork(), 1, 1.0, 0.5, 0.6) }},
		{"on-off", func() load.Source { return load.NewOnOff(rng.Fork(), 30, 30, 2) }},
		{"spiky", func() load.Source { return load.NewSpikes(rng.Fork(), 40, 2, 0.5, 8) }},
		{"periodic", func() load.Source { return load.NewPeriodic(1, 120, 1, 0.8, 0) }},
		{"constant", func() load.Source { return load.Constant(1.5) }},
	}

	var rows []ForecasterClassRow
	for _, cls := range classes {
		src := cls.mk()
		bank := nws.NewBank()
		// Score the bank's own selection online: before each update, ask
		// the bank for its forecast and compare with the next value.
		t0 := 0.0
		bankSq, scored := 0.0, 0
		for i := 0; i < samples; i++ {
			v, until := src.Sample(t0)
			if fc, _, ok := bank.Forecast(); ok {
				bankSq += (fc - v) * (fc - v)
				scored++
			}
			bank.Update(v)
			t0 = until
		}
		mse := bank.MSE()
		if len(mse) == 0 {
			return nil, fmt.Errorf("ablation A2: class %s produced no scored forecasters", cls.name)
		}
		row := ForecasterClassRow{Class: cls.name, BestMSE: math.Inf(1), WorstMSE: -1}
		for name, m := range mse {
			if m < row.BestMSE {
				row.BestMSE, row.BestName = m, name
			}
			if m > row.WorstMSE {
				row.WorstMSE, row.WorstName = m, name
			}
		}
		_, row.Selected, _ = bank.Forecast()
		if scored > 0 {
			row.BankMSE = bankSq / float64(scored)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Class < rows[j].Class })
	return rows, nil
}

// FormatAblationForecasters renders ablation A2.
func FormatAblationForecasters(rows []ForecasterClassRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A2 — forecaster bank per load class (MSE)\n")
	sb.WriteString("  class            selected      bank MSE  best (hindsight)        worst\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-15s  %-12s  %8.4f  %8.4f %-11s  %8.4f %s\n",
			r.Class, r.Selected, r.BankMSE, r.BestMSE, r.BestName, r.WorstMSE, r.WorstName)
	}
	return sb.String()
}
