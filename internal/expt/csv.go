package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV writes one experiment's rows with a header, for plotting.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// Fig5CSV renders Figure 5 rows as CSV cells.
func Fig5CSV(rows []Fig5Row) ([]string, [][]string) {
	header := []string{"n", "apples_s", "strip_s", "blocked_s"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{strconv.Itoa(r.N), f(r.AppLeS), f(r.Strip), f(r.Blocked)}
	}
	return header, out
}

// Fig6CSV renders Figure 6 rows as CSV cells.
func Fig6CSV(rows []Fig6Row) ([]string, [][]string) {
	header := []string{"n", "apples_s", "blocked_sp2_s", "sp2_spilled"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{strconv.Itoa(r.N), f(r.AppLeS), f(r.BlockedSP2), fmt.Sprint(r.BlockedSpilled)}
	}
	return header, out
}

// ReactCSV renders the pipeline-unit sweep as CSV cells.
func ReactCSV(r *ReactResult) ([]string, [][]string) {
	header := []string{"unit", "hours"}
	units := make([]int, 0, len(r.UnitSweep))
	for u := range r.UnitSweep {
		units = append(units, u)
	}
	sort.Ints(units)
	out := make([][]string, len(units))
	for i, u := range units {
		out[i] = []string{strconv.Itoa(u), f(r.UnitSweep[u])}
	}
	return header, out
}

// NileCSV renders the decision curve as CSV cells.
func NileCSV(r *NileResult) ([]string, [][]string) {
	header := []string{"passes", "remote_s", "skim_s", "atdata_s", "chosen"}
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = []string{
			strconv.Itoa(row.Passes), f(row.Remote), f(row.Skim), f(row.AtData), row.Chosen.String(),
		}
	}
	return header, out
}

// ForecastAblationCSV renders ablation A1 as CSV cells.
func ForecastAblationCSV(rows []ForecastAblationRow) ([]string, [][]string) {
	header := []string{"n", "oracle_s", "nws_s", "static_s"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{strconv.Itoa(r.N), f(r.Oracle), f(r.NWS), f(r.Static)}
	}
	return header, out
}

// RiskAblationCSV renders ablation A4 as CSV cells.
func RiskAblationCSV(rows []RiskAblationRow) ([]string, [][]string) {
	header := []string{"k", "mean_s", "worst_s", "mean_hosts"}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{f(r.K), f(r.MeanTime), f(r.WorstTime), f(r.MeanHosts)}
	}
	return header, out
}
