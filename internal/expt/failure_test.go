package expt

import (
	"strings"
	"testing"
)

func TestFailureEvacuation(t *testing.T) {
	res, err := Failure(800, 80, 53)
	if err != nil {
		t.Fatal(err)
	}
	static, adaptive := res.Rows[0], res.Rows[1]
	if adaptive.Replans == 0 {
		t.Fatal("adaptive run never evacuated the dead host")
	}
	// The static run is trapped behind the dead host's barrier; the
	// adaptive run must be dramatically (orders of magnitude) faster.
	if static.Time < 10*adaptive.Time {
		t.Fatalf("static %v vs adaptive %v: evacuation gain too small", static.Time, adaptive.Time)
	}
	out := FormatFailure(res)
	if !strings.Contains(out, "Failure injection") {
		t.Fatalf("format: %q", out)
	}
}
