package expt

import (
	"fmt"
	"strings"
	"time"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/nws"
	"apples/internal/partition"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// ScaleRow is one pool size of the scalability experiment.
type ScaleRow struct {
	Hosts      int
	Candidates int     // resource sets the selector produced
	PlanMillis float64 // real (wall-clock) scheduling time
	AppLeS     float64 // measured execution, seconds (virtual)
	Blocked    float64 // uniform blocked baseline on the same pool
}

// Speedup returns Blocked/AppLeS.
func (r ScaleRow) Speedup() float64 { return r.Blocked / r.AppLeS }

// Scalability measures the agent beyond the paper's 8-host testbed: pool
// sizes up to 64 hosts across a cluster-of-clusters metacomputer. Past 12
// hosts the Resource Selector abandons exhaustive subsets for
// desirability prefixes; this experiment verifies the schedules stay good
// (vs the blocked baseline) while planning cost stays interactive.
func Scalability(sizes [][2]int, n int, seed int64) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{2, 4}, {4, 4}, {8, 4}, {8, 8}}
	}
	if n == 0 {
		n = 2000
	}
	var rows []ScaleRow
	for _, cp := range sizes {
		clusters, per := cp[0], cp[1]
		build := func() (*sim.Engine, *grid.Topology, *nws.Service, error) {
			eng := sim.NewEngine()
			eng.SetEventLimit(200_000_000)
			tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
				Clusters: clusters, PerCluster: per, Seed: seed,
			})
			svc := nws.NewService(eng, 10)
			svc.WatchTopology(tp)
			if err := eng.RunUntil(600); err != nil {
				return nil, nil, nil, err
			}
			svc.Stop()
			return eng, tp, svc, nil
		}

		// AppLeS run.
		_, tp, svc, err := build()
		if err != nil {
			return nil, err
		}
		tpl := hat.Jacobi2D(n, 40)
		agent, err := core.NewAgent(tp, tpl, &userspec.Spec{Decomposition: "strip"},
			core.NWSInformation(svc, tp))
		if err != nil {
			return nil, err
		}
		wall := time.Now()
		sched, err := agent.Schedule(n)
		if err != nil {
			return nil, fmt.Errorf("scale %dx%d: %w", clusters, per, err)
		}
		planMS := float64(time.Since(wall).Microseconds()) / 1000
		res, err := jacobi.Run(tp, sched.Placement, jacobi.Config{Iterations: 40})
		if err != nil {
			return nil, err
		}

		// Blocked baseline on a fresh same-seed pool.
		_, tp2, _, err := build()
		if err != nil {
			return nil, err
		}
		blockedP, err := partition.Blocked(n, tp2.HostNames(), 8)
		if err != nil {
			return nil, err
		}
		blocked, err := jacobi.Run(tp2, blockedP, jacobi.Config{Iterations: 40})
		if err != nil {
			return nil, err
		}

		rows = append(rows, ScaleRow{
			Hosts:      clusters * per,
			Candidates: sched.CandidatesConsidered,
			PlanMillis: planMS,
			AppLeS:     res.Time,
			Blocked:    blocked.Time,
		})
	}
	return rows, nil
}

// NewScaleAgent builds a warmed scheduling scenario for latency
// measurements and benchmarks: a cluster-of-clusters metacomputer
// (`clusters` sites of `per` hosts) with ambient load, an NWS warmed for
// 300 virtual seconds, and an AppLeS for an n x n Jacobi2D configured
// with the given evaluation options.
func NewScaleAgent(clusters, per, n int, seed int64, opts ...core.AgentOption) (*core.Agent, error) {
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: seed,
	})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(300); err != nil {
		return nil, err
	}
	svc.Stop()
	return core.NewAgent(tp, hat.Jacobi2D(n, 40), &userspec.Spec{Decomposition: "strip"},
		core.NWSInformation(svc, tp), opts...)
}

// NewGridAgent builds a dedicated (quiet, oracle-informed)
// cluster-of-clusters scheduling scenario. It exists for the selector
// benchmarks and smoke tests on grid-scale pools, where NWS warmup
// would dominate setup cost without changing what is measured.
func NewGridAgent(clusters, per, n int, seed int64, opts ...core.AgentOption) (*core.Agent, error) {
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: seed, Quiet: true,
	})
	return core.NewAgent(tp, hat.Jacobi2D(n, 40), &userspec.Spec{Decomposition: "strip"},
		core.OracleInformation(tp), opts...)
}

// NewScalePipelineAgent builds a warmed pipeline-scheduling scenario for
// latency measurements and benchmarks: the same cluster-of-clusters
// metacomputer as NewScaleAgent, but driving the pipeline blueprint with
// a 3D-REACT-shaped template (every host runs the generic implementation,
// so all singles and ordered pairs are feasible mappings — a pool of h
// hosts enumerates h + h·(h−1) candidates).
func NewScalePipelineAgent(clusters, per, surfaceFunctions int, seed int64, opts ...core.AgentOption) (*core.PipelineAgent, error) {
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: seed,
	})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(300); err != nil {
		return nil, err
	}
	svc.Stop()
	return core.NewPipelineAgent(tp, hat.React3D(surfaceFunctions), &userspec.Spec{},
		core.NWSInformation(svc, tp), react.Options{}, opts...)
}

// PipelineLatencyRow is one pool size of the pipeline scheduler-latency
// experiment.
type PipelineLatencyRow struct {
	Hosts    int
	Mappings int     // singles + ordered pairs enumerated
	SeqMS    float64 // snapshot, sequential
	ParMS    float64 // snapshot, GOMAXPROCS worker pool
}

// PipelineSchedLatency measures the pipeline blueprint's decision latency
// across pool sizes, sequential vs parallel — the speedup the shared
// Coordinator hands the PipelineAgent for free. Best of three rounds.
func PipelineSchedLatency(sizes [][2]int, surfaceFunctions int, seed int64) ([]PipelineLatencyRow, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{2, 4}, {4, 4}, {8, 4}, {8, 8}}
	}
	if surfaceFunctions == 0 {
		surfaceFunctions = 600
	}
	modes := []struct {
		set  func(*PipelineLatencyRow, float64)
		opts []core.AgentOption
	}{
		{func(r *PipelineLatencyRow, v float64) { r.SeqMS = v },
			[]core.AgentOption{core.WithParallelism(1)}},
		{func(r *PipelineLatencyRow, v float64) { r.ParMS = v },
			[]core.AgentOption{core.WithParallelism(0)}},
	}
	var rows []PipelineLatencyRow
	for _, cp := range sizes {
		row := PipelineLatencyRow{Hosts: cp[0] * cp[1]}
		for _, m := range modes {
			agent, err := NewScalePipelineAgent(cp[0], cp[1], surfaceFunctions, seed, m.opts...)
			if err != nil {
				return nil, err
			}
			best := 0.0
			for trial := 0; trial < 3; trial++ {
				wall := time.Now()
				sched, err := agent.Schedule()
				if err != nil {
					return nil, fmt.Errorf("pipeline sched latency %dx%d: %w", cp[0], cp[1], err)
				}
				row.Mappings = sched.CandidatesConsidered
				if ms := float64(time.Since(wall).Microseconds()) / 1000; trial == 0 || ms < best {
					best = ms
				}
			}
			m.set(&row, best)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPipelineSchedLatency renders the pipeline scheduler-latency
// experiment.
func FormatPipelineSchedLatency(rows []PipelineLatencyRow) string {
	var sb strings.Builder
	sb.WriteString("Pipeline scheduler decision latency — one round (ms wall-clock)\n")
	sb.WriteString("  hosts  mappings  sequential(ms)  parallel(ms)  speedup\n")
	for _, r := range rows {
		speedup := 0.0
		if r.ParMS > 0 {
			speedup = r.SeqMS / r.ParMS
		}
		fmt.Fprintf(&sb, "  %5d  %8d  %14.1f  %12.1f  %6.2fx\n",
			r.Hosts, r.Mappings, r.SeqMS, r.ParMS, speedup)
	}
	return sb.String()
}

// LatencyRow is one pool size of the scheduler-latency experiment: the
// wall-clock cost of one scheduling round under each evaluation mode.
type LatencyRow struct {
	Hosts      int
	Candidates int
	DirectMS   float64 // legacy loop: sequential, re-querying the info source per set
	SeqMS      float64 // snapshot, sequential
	ParMS      float64 // snapshot, GOMAXPROCS worker pool
	PruneMS    float64 // snapshot, worker pool + best-so-far pruning
}

// SchedLatency measures scheduler decision latency — the quantity that
// must stay interactive for the agent to be worth consulting — across
// pool sizes and evaluation modes. Each mode schedules the same warmed
// scenario; the reported time is the best of three rounds.
func SchedLatency(sizes [][2]int, n int, seed int64) ([]LatencyRow, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{2, 4}, {3, 4}, {8, 4}, {8, 8}}
	}
	if n == 0 {
		n = 2000
	}
	modes := []struct {
		set  func(*LatencyRow, float64)
		opts []core.AgentOption
	}{
		{func(r *LatencyRow, v float64) { r.DirectMS = v },
			[]core.AgentOption{core.WithParallelism(1), core.WithInfoSnapshot(false)}},
		{func(r *LatencyRow, v float64) { r.SeqMS = v },
			[]core.AgentOption{core.WithParallelism(1)}},
		{func(r *LatencyRow, v float64) { r.ParMS = v },
			[]core.AgentOption{core.WithParallelism(0)}},
		{func(r *LatencyRow, v float64) { r.PruneMS = v },
			[]core.AgentOption{core.WithParallelism(0), core.WithPruning(true)}},
	}
	var rows []LatencyRow
	for _, cp := range sizes {
		row := LatencyRow{Hosts: cp[0] * cp[1]}
		for _, m := range modes {
			agent, err := NewScaleAgent(cp[0], cp[1], n, seed, m.opts...)
			if err != nil {
				return nil, err
			}
			best := 0.0
			for trial := 0; trial < 3; trial++ {
				wall := time.Now()
				sched, err := agent.Schedule(n)
				if err != nil {
					return nil, fmt.Errorf("sched latency %dx%d: %w", cp[0], cp[1], err)
				}
				row.Candidates = sched.CandidatesConsidered
				if ms := float64(time.Since(wall).Microseconds()) / 1000; trial == 0 || ms < best {
					best = ms
				}
			}
			m.set(&row, best)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSchedLatency renders the scheduler-latency experiment.
func FormatSchedLatency(rows []LatencyRow) string {
	var sb strings.Builder
	sb.WriteString("Scheduler decision latency — one round, by evaluation mode (ms wall-clock)\n")
	sb.WriteString("  hosts  candidates  direct(ms)  snapshot(ms)  parallel(ms)  +pruning(ms)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %10d  %10.1f  %12.1f  %12.1f  %12.1f\n",
			r.Hosts, r.Candidates, r.DirectMS, r.SeqMS, r.ParMS, r.PruneMS)
	}
	return sb.String()
}

// FormatScalability renders the scalability experiment.
func FormatScalability(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("Scalability — cluster-of-clusters pools (Jacobi2D, 40 iterations)\n")
	sb.WriteString("  hosts  candidates  plan(ms)   AppLeS(s)  Blocked(s)  Blocked/AppLeS\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %10d  %8.1f  %10.2f  %10.2f  %13.2fx\n",
			r.Hosts, r.Candidates, r.PlanMillis, r.AppLeS, r.Blocked, r.Speedup())
	}
	return sb.String()
}
