package expt

import (
	"strings"
	"testing"
)

func TestBarChartShape(t *testing.T) {
	out := BarChart("t", []string{"a", "b"}, []string{"x", "y"},
		map[string][]float64{"x": {1, 2}, "y": {4, 3}}, 40)
	if !strings.Contains(out, "t\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 2 groups * 2 series + blank between groups
	if len(lines) != 6 {
		t.Fatalf("lines %d: %q", len(lines), out)
	}
	// The max value (4) gets the longest bar.
	maxHashes, rowOfMax := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes, rowOfMax = n, l
		}
	}
	if !strings.Contains(rowOfMax, "y") || !strings.Contains(rowOfMax, "4") {
		t.Fatalf("longest bar not on max value: %q", rowOfMax)
	}
}

func TestBarChartEmpty(t *testing.T) {
	out := BarChart("t", nil, nil, nil, 40)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestSweepChartMarksBest(t *testing.T) {
	out := SweepChart("s", []string{"u=5", "u=6", "u=7"}, []float64{5.2, 5.0, 5.1}, 40)
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, "<- best") && !strings.Contains(l, "u=6") {
			t.Fatalf("best marker on wrong row: %q", l)
		}
	}
	if !strings.Contains(out, "<- best") {
		t.Fatalf("no best marker: %q", out)
	}
}

func TestFigureCharts(t *testing.T) {
	f5 := Fig5Chart([]Fig5Row{{N: 1000, AppLeS: 5, Strip: 10, Blocked: 30}})
	if !strings.Contains(f5, "apples") || !strings.Contains(f5, "blocked") {
		t.Fatalf("fig5 chart: %q", f5)
	}
	f6 := Fig6Chart([]Fig6Row{{N: 2000, AppLeS: 3, BlockedSP2: 4}})
	if !strings.Contains(f6, "Figure 6") {
		t.Fatalf("fig6 chart: %q", f6)
	}
	rc := ReactChart(&ReactResult{UnitSweep: map[int]float64{5: 5.2, 6: 5.0}})
	if !strings.Contains(rc, "u=5") || !strings.Contains(rc, "<- best") {
		t.Fatalf("react chart: %q", rc)
	}
}
