package expt

import (
	"fmt"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/nws"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// WaitRow is one queue-wait point of the wait-or-run experiment.
type WaitRow struct {
	WaitSec            float64
	SharedPredicted    float64
	DedicatedPredicted float64
	Waits              bool
}

// WaitResult reports the Section 3.2 decision sweep.
type WaitResult struct {
	N    int
	Rows []WaitRow
	// FlipAtSec is the first swept wait at which the user switches from
	// queueing to running shared (0 if they always run shared).
	FlipAtSec float64
}

// WaitOrRun sweeps the batch-queue wait for dedicated SP-2 access and
// records the user's decision at each point: "estimating the sum of the
// wait time and the dedicated time and comparing it with a prediction of
// the slowdown the application will experience on non-dedicated
// resources" (Section 3.2).
func WaitOrRun(n int, waits []float64, seed int64) (*WaitResult, error) {
	if n == 0 {
		n = 2000
	}
	if len(waits) == 0 {
		waits = []float64{0, 10, 30, 60, 120, 300, 600, 1200}
	}
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed, WithSP2: true})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		return nil, err
	}
	svc.Stop()

	// The SP-2 pair sits behind the batch queue; the shared pool is the
	// loaded workstation network.
	agent, err := core.NewAgent(tp, hat.Jacobi2D(n, 100),
		&userspec.Spec{Excluded: []string{"sp2a", "sp2b"}, Decomposition: "strip"},
		core.NWSInformation(svc, tp))
	if err != nil {
		return nil, err
	}

	res := &WaitResult{N: n}
	flipSet := false
	for _, w := range waits {
		dec, err := agent.WaitOrRun(n, core.DedicatedOffer{Hosts: []string{"sp2a", "sp2b"}, WaitSec: w})
		if err != nil {
			return nil, fmt.Errorf("wait-or-run w=%v: %w", w, err)
		}
		res.Rows = append(res.Rows, WaitRow{
			WaitSec:            w,
			SharedPredicted:    dec.SharedPredicted,
			DedicatedPredicted: dec.DedicatedPredicted,
			Waits:              dec.Wait,
		})
		if !flipSet && !dec.Wait {
			res.FlipAtSec = w
			flipSet = true
		}
	}
	return res, nil
}

// FormatWaitOrRun renders the decision sweep.
func FormatWaitOrRun(r *WaitResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wait-or-run (Section 3.2) — %dx%d Jacobi2D; SP-2 pair behind a batch queue\n", r.N, r.N)
	sb.WriteString("  queue wait(s)  shared now(s)  wait+dedicated(s)  decision\n")
	for _, row := range r.Rows {
		d := "run shared now"
		if row.Waits {
			d = "wait for dedicated"
		}
		fmt.Fprintf(&sb, "  %13.0f  %13.1f  %17.1f  %s\n",
			row.WaitSec, row.SharedPredicted, row.DedicatedPredicted, d)
	}
	if r.FlipAtSec > 0 {
		fmt.Fprintf(&sb, "  the user stops queueing once the wait reaches ~%.0f s\n", r.FlipAtSec)
	}
	return sb.String()
}
