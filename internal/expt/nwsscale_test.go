package expt

import (
	"strings"
	"testing"
)

func TestNWSScaleSmall(t *testing.T) {
	rows := NWSScale([]int{3, 7}, []int{5, 21}, 20, 1)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Ticks != 20 {
			t.Fatalf("row %+v: ticks not threaded through", r)
		}
		if r.UpdatesPerSec <= 0 || r.LegacyUpdatesPerSec <= 0 {
			t.Fatalf("row %+v: non-positive throughput", r)
		}
	}
	out := FormatNWSScale(rows)
	if !strings.Contains(out, "sensing throughput") || strings.Count(out, "\n") != 2+len(rows) {
		t.Fatalf("unexpected table:\n%s", out)
	}
	h, c := NWSScaleCSV(rows)
	if len(h) != 6 || len(c) != len(rows) || len(c[0]) != len(h) {
		t.Fatalf("csv shape: header %d, rows %d", len(h), len(c))
	}
}

func TestNWSScaleDefaultsApplied(t *testing.T) {
	// Only check the parameter-defaulting logic cheaply: a single tiny
	// cell with explicit args must not mutate into the default sweep.
	rows := NWSScale([]int{2}, []int{5}, 10, 1)
	if len(rows) != 1 || rows[0].Series != 2 || rows[0].Window != 5 {
		t.Fatalf("rows %+v", rows)
	}
}
