package expt

import (
	"strings"
	"testing"
)

func TestWaitOrRunSweepFlips(t *testing.T) {
	res, err := WaitOrRun(2000, []float64{0, 60, 100000}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Free dedicated access to the fastest machines: always take it.
	if !res.Rows[0].Waits {
		t.Fatalf("zero-wait dedicated offer rejected: %+v", res.Rows[0])
	}
	// An absurd wait: run shared.
	if res.Rows[2].Waits {
		t.Fatalf("100000-second queue accepted: %+v", res.Rows[2])
	}
	// Decisions are monotone in the wait: once the user stops queueing
	// they never start again at longer waits.
	waiting := true
	for _, row := range res.Rows {
		if row.Waits && !waiting {
			t.Fatalf("non-monotone decisions: %+v", res.Rows)
		}
		waiting = row.Waits
	}
	out := FormatWaitOrRun(res)
	if !strings.Contains(out, "Wait-or-run") {
		t.Fatalf("format: %q", out)
	}
}
