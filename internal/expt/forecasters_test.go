package expt

import (
	"strings"
	"testing"
)

func TestAblationForecastersNoSingleWinner(t *testing.T) {
	rows, err := AblationForecasters(2000, 71)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("classes %d, want 6", len(rows))
	}
	winners := map[string]bool{}
	for _, r := range rows {
		if r.BestMSE > r.WorstMSE {
			t.Fatalf("class %s: best %v > worst %v", r.Class, r.BestMSE, r.WorstMSE)
		}
		winners[r.BestName] = true
		// The bank's online selection must land near the hindsight best:
		// within 3x of its MSE (it pays for the adaptation period), and
		// always at least as good as the worst constituent.
		if r.BankMSE > r.WorstMSE && r.WorstMSE > 0 {
			t.Errorf("class %s: bank MSE %v worse than worst constituent %v",
				r.Class, r.BankMSE, r.WorstMSE)
		}
		if r.BestMSE > 0 && r.BankMSE > 3*r.BestMSE+1e-9 {
			t.Errorf("class %s: bank MSE %v far from hindsight best %v (%s)",
				r.Class, r.BankMSE, r.BestMSE, r.BestName)
		}
	}
	// The whole point: different classes are won by different forecasters,
	// and the tracking forecaster that wins persistent load must not win
	// the spiky class (where it pays twice per spike).
	if len(winners) < 2 {
		t.Errorf("only %d distinct winning forecasters across classes: %v", len(winners), winners)
	}
	for _, r := range rows {
		if r.Class == "spiky" && r.BestName == "last" {
			t.Error("last-value won the spiky class; the bank's raison d'etre disappears")
		}
	}
	out := FormatAblationForecasters(rows)
	if !strings.Contains(out, "Ablation A2") {
		t.Fatalf("format: %q", out)
	}
}
