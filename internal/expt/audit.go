package expt

import (
	"fmt"
	"os"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/load"
	"apples/internal/mstore"
	"apples/internal/nws"
	"apples/internal/obs/audit"
	"apples/internal/partition"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// AuditSpec configures the forecast & decision quality figure: two
// scheduled scenarios (stationary and churning ambient load) audited
// live, plus an offline audit of a recorded measurement store.
type AuditSpec struct {
	N          int
	Iterations int
	Seed       int64
	WarmupSec  float64
	// Runs is how many scheduled executions each scenario performs;
	// every one contributes a predicted-vs-actual join.
	Runs int
	// GapSec is the observation window after each run: the world (and
	// its sensors) keeps running so the audit engine watches the
	// forecasters track — or fail to track — the ambient conditions
	// between decisions. Under churn the later runs are scheduled
	// mid-flapping, which is what separates the two scenarios' rows.
	GapSec float64
	// StoreDir is the measurement store audited offline. Empty records
	// a throwaway store from a fresh sensing run (still deterministic:
	// the recording is a pure function of the seed).
	StoreDir string
	// StoreSec is the sensing duration when recording a throwaway store.
	StoreSec float64
}

func (as *AuditSpec) setDefaults() {
	if as.N == 0 {
		as.N = 900
	}
	if as.Iterations == 0 {
		as.Iterations = 40
	}
	if as.WarmupSec == 0 {
		as.WarmupSec = 600
	}
	if as.Runs == 0 {
		as.Runs = 3
	}
	if as.GapSec == 0 {
		// Not a multiple of the 60 s flap cycle: successive checkpoints
		// land in different churn phases, so the static baseline gets
		// caught on flooded Alphas while the agent reschedules around
		// them.
		as.GapSec = 320
	}
	if as.StoreSec == 0 {
		as.StoreSec = 120
	}
}

// Churn parameters: once the scenario's first run starts, the Alpha
// farm's ambient load flaps between flooded (5 competing processes)
// and idle every flapPeriod seconds. A single step would be absorbed
// by the one-step forecasters within a sweep or two; the flapping keeps
// surprising them, which is exactly the sustained forecast-error shift
// the Page-Hinkley detector exists to flag.
const (
	auditFlapDelay  = 10.0
	auditFlapPeriod = 30.0
	auditFlapCount  = 100
	// auditFlapLoad must push a flooded Alpha past the testbed's slow
	// ambient-loaded workstations, or the static strip's barrier never
	// notices the storm (the old Sparc is the bottleneck up to ~6
	// competing processes per Alpha).
	auditFlapLoad = 12.0
)

// AuditScenarioRow is one audited scheduling scenario.
type AuditScenarioRow struct {
	Name  string
	Churn bool
	// AppLeS and Strip are summed measured (virtual) seconds across the
	// back-to-back runs; Advantage is Strip/AppLeS.
	AppLeS    float64
	Strip     float64
	Advantage float64
	// Decision-quality aggregates from the audit engine's joins.
	Joins       uint64
	Bias        float64
	MAE         float64
	MAPE        float64
	Calibration []uint64
	// Drift state after the scenario.
	Alarms   uint64
	Degraded []string
}

// AuditResult is the whole figure.
type AuditResult struct {
	Spec AuditSpec
	// Offline half: every sensor record in the store replayed through
	// fresh forecaster banks.
	StoreRecords int
	Series       []audit.SeriesReport
	// Live half.
	Scenarios []AuditScenarioRow
}

// RecordAuditStore runs sensing only — no scheduling — for duration
// seconds on a fresh seeded testbed, appending every sample to the
// measurement store at dir.
func RecordAuditStore(dir string, seed int64, duration float64) error {
	st, err := mstore.Open(dir)
	if err != nil {
		return err
	}
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
	svc := nws.NewService(eng, 10, nws.WithStore(st))
	svc.WatchTopology(tp)
	if err := eng.RunUntil(duration); err != nil {
		st.Close()
		return err
	}
	svc.Stop()
	if err := svc.StoreErr(); err != nil {
		st.Close()
		return err
	}
	return st.Close()
}

// AuditOffline replays the store at dir through nws.AuditStore into a
// fresh audit engine and returns the per-series forecast-quality
// reports. The store preserves append order, so the reports are a pure
// function of the directory's contents — auditable long after the
// process that sensed them exited.
func AuditOffline(dir string) ([]audit.SeriesReport, int, error) {
	st, err := mstore.Open(dir, mstore.ReadOnly())
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	aud := audit.New()
	n, err := nws.AuditStore(st, aud, nil)
	if err != nil {
		return nil, n, err
	}
	return aud.SeriesSnapshot(), n, nil
}

// scheduleFlaps installs the churn: the Alpha farm load toggling
// between flooded and idle on a fixed cadence from start onward.
func scheduleFlaps(eng *sim.Engine, tp *grid.Topology, start float64) {
	alphas := []string{"alpha1", "alpha2", "alpha3", "alpha4"}
	for i := 0; i < auditFlapCount; i++ {
		level := 0.0
		if i%2 == 0 {
			level = auditFlapLoad
		}
		lv := level
		eng.ScheduleAt(start+auditFlapDelay+float64(i)*auditFlapPeriod, func() {
			for _, name := range alphas {
				tp.Host(name).SetLoad(load.Constant(lv))
			}
		})
	}
}

// auditScenario executes one scenario: an audited AppLeS agent doing
// Runs back-to-back schedule→actuate rounds with live sensors feeding
// both the forecasts and the audit engine's residual stream, then a
// static strip baseline on a fresh same-seed world (with the identical
// churn schedule) for the advantage column.
func auditScenario(spec AuditSpec, name string, churn bool) (AuditScenarioRow, error) {
	row := AuditScenarioRow{Name: name, Churn: churn}

	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: spec.Seed})
	// A slightly more tolerant detector than the engine default: the
	// testbed's ambient AR1 bandwidth series are genuinely noisy, and
	// the stationary baseline must stay silent for the churn alarms to
	// mean anything.
	aud := audit.New(audit.WithPageHinkley(0.05, 10, audit.DefaultPHMinSamples))
	svc := nws.NewService(eng, 10, nws.WithResiduals(aud))
	svc.WatchTopology(tp)
	if err := eng.RunUntil(spec.WarmupSec); err != nil {
		return row, err
	}
	if churn {
		scheduleFlaps(eng, tp, spec.WarmupSec)
	}

	tpl := hat.Jacobi2D(spec.N, spec.Iterations)
	cfg := jacobi.Config{
		Iterations:          spec.Iterations,
		FlopPerPoint:        tpl.Tasks[0].FlopPerUnit,
		BytesPerPoint:       tpl.Tasks[0].BytesPerUnit,
		BorderBytesPerPoint: tpl.Comms[0].BytesPerUnit,
	}
	// Sequential candidate evaluation pins determinism the same way the
	// replay figure does: the scenario rows must be a pure function of
	// the seed.
	agent, err := core.NewAgent(tp, tpl, &userspec.Spec{Decomposition: "strip"},
		core.NWSInformation(svc, tp), core.WithParallelism(1),
		core.WithAudit(aud), core.WithAuditTenant("apples"))
	if err != nil {
		return row, err
	}
	for r := 0; r < spec.Runs; r++ {
		_, measured, err := agent.Run(spec.N, core.ActuatorFromJacobi(tp, cfg))
		if err != nil {
			return row, fmt.Errorf("audit %s run %d: %w", name, r, err)
		}
		row.AppLeS += measured
		// Observe until the next checkpoint; the sensors keep scoring
		// the forecasters against the (possibly flapping) world.
		if err := eng.RunUntil(spec.WarmupSec + float64(r+1)*spec.GapSec); err != nil {
			return row, err
		}
	}
	svc.Stop()

	snap := aud.Snapshot()
	row.Joins = snap.Joined
	row.Alarms = snap.Alarms
	row.Degraded = snap.Degraded
	row.Calibration = snap.Calibration
	var joins float64
	for _, g := range snap.Groups {
		w := float64(g.Joins)
		row.Bias += g.Bias * w
		row.MAE += g.MAE * w
		row.MAPE += g.MAPE * w
		joins += w
	}
	if joins > 0 {
		row.Bias /= joins
		row.MAE /= joins
		row.MAPE /= joins
	}

	// Strip baseline: fresh same-seed world, same churn, no agent.
	eng2 := sim.NewEngine()
	eng2.SetEventLimit(200_000_000)
	tp2 := grid.SDSCPCL(eng2, grid.TestbedOptions{Seed: spec.Seed})
	if err := eng2.RunUntil(spec.WarmupSec); err != nil {
		return row, err
	}
	if churn {
		scheduleFlaps(eng2, tp2, spec.WarmupSec)
	}
	hosts, weights := speedWeights(tp2, false)
	p, err := partition.WeightedStrip(spec.N, hosts, weights, cfg.BorderBytesPerPoint)
	if err != nil {
		return row, err
	}
	for r := 0; r < spec.Runs; r++ {
		res, err := jacobi.Run(tp2, p, cfg)
		if err != nil {
			return row, fmt.Errorf("audit %s strip run %d: %w", name, r, err)
		}
		row.Strip += res.Time
		// Advance to the same checkpoints as the audited world so both
		// schedulers execute each run under identical conditions.
		if err := eng2.RunUntil(spec.WarmupSec + float64(r+1)*spec.GapSec); err != nil {
			return row, err
		}
	}
	if row.AppLeS > 0 {
		row.Advantage = row.Strip / row.AppLeS
	}
	return row, nil
}

// AuditFigure runs the whole closing-the-loop experiment: the offline
// audit of the (committed or freshly recorded) store, then the
// stationary and churn scenarios. Everything in the result is derived
// from virtual time and seeded state, so the figure is bit-stable
// across runs.
func AuditFigure(spec AuditSpec) (*AuditResult, error) {
	spec.setDefaults()
	res := &AuditResult{Spec: spec}

	dir := spec.StoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "apples-audit-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		if err := RecordAuditStore(tmp, spec.Seed, spec.StoreSec); err != nil {
			return nil, fmt.Errorf("expt: audit record: %w", err)
		}
		dir = tmp
	}
	series, n, err := AuditOffline(dir)
	if err != nil {
		return nil, fmt.Errorf("expt: audit store: %w", err)
	}
	res.Series = series
	res.StoreRecords = n

	for _, sc := range []struct {
		name  string
		churn bool
	}{{"stationary", false}, {"churn", true}} {
		row, err := auditScenario(spec, sc.name, sc.churn)
		if err != nil {
			return nil, err
		}
		res.Scenarios = append(res.Scenarios, row)
	}
	return res, nil
}

// bestForecaster picks the report's highest-skill forecaster,
// tie-breaking on name so the figure is deterministic.
func bestForecaster(r audit.SeriesReport) (string, float64) {
	name, skill := "", 0.0
	for _, f := range r.Forecasters {
		if name == "" || f.Skill > skill || (f.Skill == skill && f.Name < name) {
			name, skill = f.Name, f.Skill
		}
	}
	return name, skill
}

// AuditCSV renders the scenario rows for -csv.
func AuditCSV(r *AuditResult) ([]string, [][]string) {
	header := []string{"scenario", "apples_s", "strip_s", "advantage", "joins", "bias_s", "mae_s", "mape", "drift_alarms", "degraded"}
	var cells [][]string
	for _, row := range r.Scenarios {
		cells = append(cells, []string{
			row.Name,
			fmt.Sprintf("%.4f", row.AppLeS),
			fmt.Sprintf("%.4f", row.Strip),
			fmt.Sprintf("%.4f", row.Advantage),
			fmt.Sprintf("%d", row.Joins),
			fmt.Sprintf("%.4f", row.Bias),
			fmt.Sprintf("%.4f", row.MAE),
			fmt.Sprintf("%.4f", row.MAPE),
			fmt.Sprintf("%d", row.Alarms),
			strings.Join(row.Degraded, ";"),
		})
	}
	return header, cells
}

// FormatAudit renders the figure.
func FormatAudit(r *AuditResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Audit — forecast & decision quality (n=%d, %d runs/scenario, seed=%d)\n",
		r.Spec.N, r.Spec.Runs, r.Spec.Seed)

	fmt.Fprintf(&sb, "  offline store audit: %d records → %d series\n", r.StoreRecords, len(r.Series))
	sb.WriteString("    kind       series            samples  naiveMAE  best forecaster      skill\n")
	for _, s := range r.Series {
		name, skill := bestForecaster(s)
		fmt.Fprintf(&sb, "    %-9s  %-16s  %7d  %8.4f  %-16s  %+6.3f\n",
			s.Kind, s.Series, s.Samples, s.NaiveMAE, name, skill)
	}

	sb.WriteString("  scenario     apples(s)  strip(s)  advantage  joins  bias(s)    mae(s)   mape  alarms  degraded\n")
	for _, row := range r.Scenarios {
		deg := "-"
		if len(row.Degraded) > 0 {
			deg = strings.Join(row.Degraded, ",")
		}
		fmt.Fprintf(&sb, "  %-11s  %9.2f  %8.2f  %8.2fx  %5d  %+8.2f  %8.2f  %5.3f  %6d  %s\n",
			row.Name, row.AppLeS, row.Strip, row.Advantage, row.Joins,
			row.Bias, row.MAE, row.MAPE, row.Alarms, deg)
	}
	for _, row := range r.Scenarios {
		fmt.Fprintf(&sb, "  calibration[%s]: edges %v counts %v\n",
			row.Name, audit.CalibrationBuckets, row.Calibration)
	}
	return sb.String()
}
