package expt

import (
	"fmt"
	"strings"
	"time"

	"apples/internal/core"
)

// SelectorGapRow is one pool size of the selector optimality-gap
// experiment: mean predicted execution time under the exhaustive
// selector, and the mean relative gap of each heuristic family.
type SelectorGapRow struct {
	Hosts      int
	Exhaustive float64 // mean predicted time, seconds
	GreedyGap  float64 // mean (greedy - exhaustive)/exhaustive, percent
	BeamGap    float64
	LPGAGap    float64
}

// SelectorScaleRow is one large-pool row of the experiment: decision
// latency per selector family where exhaustive subset enumeration is
// impossible (the exhaustive column falls back to desirability
// prefixes).
type SelectorScaleRow struct {
	Hosts        int
	ExhaustiveMS float64
	GreedyMS     float64
	BeamMS       float64
	LPGAMS       float64
}

var selectorGapSpecs = []struct {
	name string
	spec core.SelectorSpec
}{
	{"greedy", core.SelectorSpec{Kind: core.SelectorGreedy}},
	{"beam", core.SelectorSpec{Kind: core.SelectorBeam, BeamWidth: 8}},
	{"lpga", core.SelectorSpec{Kind: core.SelectorLPGA, Seed: 1}},
}

// SelectorGap measures the optimality gap of the heuristic selector
// families against exhaustive subset enumeration on pools small enough
// to enumerate (<= 12 hosts): the same warmed scenario is scheduled
// under each selector and the predicted times are compared. Gaps are
// averaged across seeds.
func SelectorGap(sizes [][2]int, n int, seeds []int64) ([]SelectorGapRow, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{1, 4}, {2, 3}, {2, 4}, {2, 5}, {3, 4}}
	}
	if n == 0 {
		n = 2000
	}
	if len(seeds) == 0 {
		seeds = []int64{11, 23, 37}
	}
	schedule := func(clusters, per int, seed int64, spec core.SelectorSpec) (float64, error) {
		agent, err := NewScaleAgent(clusters, per, n, seed, core.WithSelector(spec))
		if err != nil {
			return 0, err
		}
		sched, err := agent.Schedule(n)
		if err != nil {
			return 0, fmt.Errorf("selector gap %dx%d: %w", clusters, per, err)
		}
		return sched.PredictedTotal, nil
	}
	var rows []SelectorGapRow
	for _, cp := range sizes {
		row := SelectorGapRow{Hosts: cp[0] * cp[1]}
		gaps := map[string]float64{}
		for _, seed := range seeds {
			exact, err := schedule(cp[0], cp[1], seed, core.SelectorSpec{Kind: core.SelectorExhaustive})
			if err != nil {
				return nil, err
			}
			row.Exhaustive += exact / float64(len(seeds))
			for _, s := range selectorGapSpecs {
				pred, err := schedule(cp[0], cp[1], seed, s.spec)
				if err != nil {
					return nil, err
				}
				gaps[s.name] += 100 * (pred - exact) / exact / float64(len(seeds))
			}
		}
		row.GreedyGap, row.BeamGap, row.LPGAGap = gaps["greedy"], gaps["beam"], gaps["lpga"]
		rows = append(rows, row)
	}
	return rows, nil
}

// SelectorScale measures one-round decision latency per selector family
// on pools far past the 2^n wall. Best of three rounds per cell.
func SelectorScale(sizes [][2]int, n int, seed int64) ([]SelectorScaleRow, error) {
	if len(sizes) == 0 {
		sizes = [][2]int{{8, 16}, {32, 16}}
	}
	if n == 0 {
		n = 2000
	}
	specs := append([]struct {
		name string
		spec core.SelectorSpec
	}{{"exhaustive", core.SelectorSpec{Kind: core.SelectorExhaustive}}}, selectorGapSpecs...)
	var rows []SelectorScaleRow
	for _, cp := range sizes {
		row := SelectorScaleRow{Hosts: cp[0] * cp[1]}
		for _, s := range specs {
			agent, err := NewScaleAgent(cp[0], cp[1], n, seed, core.WithSelector(s.spec))
			if err != nil {
				return nil, err
			}
			best := 0.0
			for trial := 0; trial < 3; trial++ {
				wall := time.Now()
				if _, err := agent.Schedule(n); err != nil {
					return nil, fmt.Errorf("selector scale %dx%d %s: %w", cp[0], cp[1], s.name, err)
				}
				if ms := float64(time.Since(wall).Microseconds()) / 1000; trial == 0 || ms < best {
					best = ms
				}
			}
			switch s.name {
			case "exhaustive":
				row.ExhaustiveMS = best
			case "greedy":
				row.GreedyMS = best
			case "beam":
				row.BeamMS = best
			case "lpga":
				row.LPGAMS = best
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSelectorGap renders the optimality-gap table.
func FormatSelectorGap(rows []SelectorGapRow) string {
	var sb strings.Builder
	sb.WriteString("Selector optimality gap vs exhaustive enumeration (predicted time, mean over seeds)\n")
	sb.WriteString("  hosts  exhaustive(s)  greedy(%)  beam(%)  lpga(%)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %13.2f  %+9.2f  %+7.2f  %+7.2f\n",
			r.Hosts, r.Exhaustive, r.GreedyGap, r.BeamGap, r.LPGAGap)
	}
	return sb.String()
}

// FormatSelectorScale renders the large-pool latency table.
func FormatSelectorScale(rows []SelectorScaleRow) string {
	var sb strings.Builder
	sb.WriteString("Selector decision latency past the 2^n wall — one round (ms wall-clock)\n")
	sb.WriteString("  hosts  exhaustive(ms)  greedy(ms)  beam(ms)  lpga(ms)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %5d  %14.1f  %10.1f  %8.1f  %8.1f\n",
			r.Hosts, r.ExhaustiveMS, r.GreedyMS, r.BeamMS, r.LPGAMS)
	}
	return sb.String()
}

// SelectorGapCSV flattens the gap table for CSV export.
func SelectorGapCSV(rows []SelectorGapRow) ([]string, [][]string) {
	header := []string{"hosts", "exhaustive_s", "greedy_gap_pct", "beam_gap_pct", "lpga_gap_pct"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Hosts),
			fmt.Sprintf("%.4f", r.Exhaustive),
			fmt.Sprintf("%.4f", r.GreedyGap),
			fmt.Sprintf("%.4f", r.BeamGap),
			fmt.Sprintf("%.4f", r.LPGAGap),
		})
	}
	return header, cells
}
