package expt

import "testing"

func TestSpreadSummarizesTrials(t *testing.T) {
	s, err := Spread(RunSpec{Scheduler: SchedAppLeS, N: 800, Iterations: 20, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Fatalf("trials %d", s.N)
	}
	if s.Mean <= 0 || s.Min > s.Mean || s.Max < s.Mean {
		t.Fatalf("summary %+v", s)
	}
	// Run-to-run variability across seeds exists but is bounded: the
	// scheduler should not produce order-of-magnitude swings on the same
	// workload.
	if s.Max > 4*s.Min {
		t.Fatalf("excessive spread: min %v max %v", s.Min, s.Max)
	}
}

func TestAverageMatchesSpreadMean(t *testing.T) {
	spec := RunSpec{Scheduler: SchedStrip, N: 600, Iterations: 10, Seed: 9}
	avg, err := Average(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Spread(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avg != s.Mean {
		t.Fatalf("Average %v != Spread.Mean %v", avg, s.Mean)
	}
}
