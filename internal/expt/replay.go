package expt

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/mstore"
	"apples/internal/nws"
	"apples/internal/obs"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// ReplaySpec configures the store-replay experiment: one live run whose
// NWS sensing is recorded to a measurement store, then deterministic
// re-runs whose forecasts are warm-started from that store instead of
// live sensors.
type ReplaySpec struct {
	N          int
	Iterations int
	Seed       int64
	WarmupSec  float64
	// StoreDir receives the recorded history. Empty means a throwaway
	// temporary directory.
	StoreDir string
}

func (rs *ReplaySpec) setDefaults() {
	if rs.N == 0 {
		rs.N = 1200
	}
	if rs.Iterations == 0 {
		rs.Iterations = 50
	}
	if rs.WarmupSec == 0 {
		rs.WarmupSec = 300
	}
}

// ReplayRound is one pass through the full snapshot → select → plan →
// actuate pipeline, with its complete decision trace.
type ReplayRound struct {
	// Trace is the round's JSONL decision trace: snapshot, candidates,
	// winner, and the wait-or-run verdict. Determinism is asserted on
	// these exact bytes.
	Trace []byte
	// Hosts and Predicted summarize the winning schedule.
	Hosts     []string
	Predicted float64
	// Verdict is the Section 3.2 wait-or-run decision on a fixed
	// dedicated offer, exercising the verdict event path.
	Verdict string
	// Measured is the actuated (virtual) execution time of the winner.
	Measured float64
	// Records is how many store records warm-started the forecasters
	// (zero for the live, sensor-driven round).
	Records int
}

// ReplayResult compares the recorded live round with two store-driven
// replays of it.
type ReplayResult struct {
	Spec          ReplaySpec
	Live          ReplayRound
	First, Second ReplayRound
	StoreSegments int
	StoreRecords  int
	// Deterministic: the two replays produced byte-identical decision
	// traces. MatchesLive: the replays also reproduced the live round's
	// trace exactly — the store carries everything the decision depended
	// on.
	Deterministic bool
	MatchesLive   bool
}

// runReplayRound drives one scheduling round on a warmed testbed whose
// forecasts come from svc, traces every decision, and actuates the
// winner. Sequential candidate evaluation pins the trace's emission
// order, and no stage timing is attached, so the trace bytes are a pure
// function of the forecast state and the testbed — the determinism
// contract the replay figure asserts.
func runReplayRound(spec ReplaySpec, eng *sim.Engine, tp *grid.Topology, svc *nws.Service) (ReplayRound, error) {
	var round ReplayRound
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	agent, err := core.NewAgent(tp, hat.Jacobi2D(spec.N, spec.Iterations),
		&userspec.Spec{Decomposition: "strip"}, core.NWSInformation(svc, tp),
		core.WithParallelism(1), core.WithTracer(tr))
	if err != nil {
		return round, err
	}
	sched, err := agent.Schedule(spec.N)
	if err != nil {
		return round, err
	}
	dec, err := agent.WaitOrRun(spec.N, core.DedicatedOffer{Hosts: []string{"alpha1", "alpha2"}, WaitSec: 600})
	if err != nil {
		return round, err
	}
	tpl := hat.Jacobi2D(spec.N, spec.Iterations)
	res, err := jacobi.Run(tp, sched.Placement, jacobi.Config{
		Iterations:          spec.Iterations,
		FlopPerPoint:        tpl.Tasks[0].FlopPerUnit,
		BytesPerPoint:       tpl.Tasks[0].BytesPerUnit,
		BorderBytesPerPoint: tpl.Comms[0].BytesPerUnit,
	})
	if err != nil {
		return round, err
	}
	if err := tr.Err(); err != nil {
		return round, err
	}
	round.Trace = append([]byte(nil), buf.Bytes()...)
	round.Hosts = sched.Hosts
	round.Predicted = sched.PredictedTotal
	round.Verdict = "run"
	if dec.Wait {
		round.Verdict = "wait"
	}
	round.Measured = res.Time
	return round, nil
}

// RecordReplayRun executes the live half: a fresh testbed senses
// WarmupSec of history into the store at dir, then schedules, decides,
// and actuates with that live service as the information source.
func RecordReplayRun(spec ReplaySpec, dir string) (ReplayRound, error) {
	spec.setDefaults()
	st, err := mstore.Open(dir)
	if err != nil {
		return ReplayRound{}, err
	}
	defer st.Close()
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: spec.Seed})
	svc := nws.NewService(eng, 10, nws.WithStore(st))
	svc.WatchTopology(tp)
	if err := eng.RunUntil(spec.WarmupSec); err != nil {
		return ReplayRound{}, err
	}
	svc.Stop()
	if err := svc.StoreErr(); err != nil {
		return ReplayRound{}, err
	}
	round, err := runReplayRound(spec, eng, tp, svc)
	if err != nil {
		return ReplayRound{}, err
	}
	return round, st.Close()
}

// ReplayRunFromStore executes the replay half: a fresh same-seed
// testbed is warmed with no sensors attached, the forecaster banks are
// restored from the recorded store alone, and the identical pipeline
// runs again. No live measurement is taken — every forecast the round
// sees came off disk.
func ReplayRunFromStore(spec ReplaySpec, dir string) (ReplayRound, error) {
	spec.setDefaults()
	st, err := mstore.Open(dir, mstore.ReadOnly())
	if err != nil {
		return ReplayRound{}, err
	}
	defer st.Close()
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: spec.Seed})
	if err := eng.RunUntil(spec.WarmupSec); err != nil {
		return ReplayRound{}, err
	}
	svc := nws.NewService(eng, 10)
	replayed, err := svc.RestoreFromStore(st)
	if err != nil {
		return ReplayRound{}, err
	}
	round, err := runReplayRound(spec, eng, tp, svc)
	if err != nil {
		return ReplayRound{}, err
	}
	round.Records = replayed
	return round, nil
}

// Replay runs the whole experiment: record one live round, replay it
// twice from the store, and compare the three decision traces.
func Replay(spec ReplaySpec) (*ReplayResult, error) {
	spec.setDefaults()
	dir := spec.StoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "apples-replay-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	res := &ReplayResult{Spec: spec}
	var err error
	if res.Live, err = RecordReplayRun(spec, dir); err != nil {
		return nil, fmt.Errorf("expt: replay record: %w", err)
	}
	if res.First, err = ReplayRunFromStore(spec, dir); err != nil {
		return nil, fmt.Errorf("expt: first replay: %w", err)
	}
	if res.Second, err = ReplayRunFromStore(spec, dir); err != nil {
		return nil, fmt.Errorf("expt: second replay: %w", err)
	}
	st, err := mstore.Open(dir, mstore.ReadOnly())
	if err != nil {
		return nil, err
	}
	res.StoreSegments = st.Segments()
	res.StoreRecords = res.First.Records
	st.Close()
	res.Deterministic = bytes.Equal(res.First.Trace, res.Second.Trace)
	res.MatchesLive = bytes.Equal(res.Live.Trace, res.First.Trace)
	return res, nil
}

// FormatReplay renders the replay experiment.
func FormatReplay(r *ReplayResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Replay — store-driven re-derivation of one recorded round (n=%d, seed=%d, warmup %.0fs)\n",
		r.Spec.N, r.Spec.Seed, r.Spec.WarmupSec)
	fmt.Fprintf(&sb, "  store: %d records in %d segment(s)\n", r.StoreRecords, r.StoreSegments)
	row := func(name string, rd ReplayRound) {
		fmt.Fprintf(&sb, "  %-8s winner=%v  predicted %8.2f s  measured %8.2f s  verdict=%s  trace %d bytes\n",
			name, rd.Hosts, rd.Predicted, rd.Measured, rd.Verdict, len(rd.Trace))
	}
	row("live", r.Live)
	row("replay-1", r.First)
	row("replay-2", r.Second)
	verdict := func(ok bool) string {
		if ok {
			return "identical"
		}
		return "DIVERGED"
	}
	fmt.Fprintf(&sb, "  replay-1 vs replay-2 decision traces: %s\n", verdict(r.Deterministic))
	fmt.Fprintf(&sb, "  replays vs live decision trace:       %s\n", verdict(r.MatchesLive))
	return sb.String()
}
