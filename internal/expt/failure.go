package expt

import (
	"fmt"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/load"
	"apples/internal/nws"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// FailureRow is one variant of the failure-injection experiment.
type FailureRow struct {
	Variant    string
	Time       float64
	Replans    int
	DeadShares float64 // fraction of the domain left on the dead host at the end
}

// FailureResult reports the failure-injection experiment: a host
// effectively dies (its ambient load goes to a level that starves the
// application) shortly after the run starts.
type FailureResult struct {
	N        int
	DeadHost string
	Rows     []FailureRow
}

// Failure injects a host "death" — not a crash, but the metacomputing
// failure mode the paper's model actually covers: a resource whose
// deliverable capability collapses to (near) zero. From the application's
// perspective "a resource for which there is much contention will simply
// deliver less performance" (Section 3.2); an adaptive agent must
// evacuate it, a static schedule is trapped behind the barrier forever.
func Failure(n, iterations int, seed int64) (*FailureResult, error) {
	if n == 0 {
		n = 1000
	}
	if iterations == 0 {
		iterations = 120
	}
	const warmup = 600.0
	const dead = "alpha3"
	// Load so high the host delivers ~1/2000 of its speed: effectively
	// dead for the application while staying within the fluid model.
	const deathLoad = 2000.0

	res := &FailureResult{N: n, DeadHost: dead}
	for _, adaptive := range []bool{false, true} {
		eng := sim.NewEngine()
		eng.SetEventLimit(200_000_000)
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
		svc := nws.NewService(eng, 10)
		svc.WatchTopology(tp)
		if err := eng.RunUntil(warmup); err != nil {
			return nil, err
		}
		eng.ScheduleAt(warmup+1, func() {
			tp.Host(dead).SetLoad(load.Constant(deathLoad))
		})

		tpl := hat.Jacobi2D(n, iterations)
		agent, err := core.NewAgent(tp, tpl, &userspec.Spec{Decomposition: "strip"},
			core.NWSInformation(svc, tp))
		if err != nil {
			return nil, err
		}
		sched, err := agent.Schedule(n)
		if err != nil {
			return nil, err
		}
		cfg := jacobi.AdaptiveConfig{
			Config:     jacobi.Config{Iterations: iterations},
			CheckEvery: 10,
		}
		name := "static"
		if adaptive {
			name = "adaptive"
			cfg.Replan = agent.Rescheduler(n, 0.20)
		}

		// A static schedule with a dead host takes absurdly long in
		// virtual time but only a handful of events in real time, so we
		// can afford to run it to completion.
		out, err := jacobi.RunAdaptive(tp, sched.Placement, cfg)
		if err != nil {
			return nil, fmt.Errorf("failure %s: %w", name, err)
		}
		svc.Stop()
		res.Rows = append(res.Rows, FailureRow{
			Variant: name,
			Time:    out.Time,
			Replans: out.Replans,
		})
	}
	return res, nil
}

// FormatFailure renders the failure-injection experiment.
func FormatFailure(r *FailureResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Failure injection — %s starved to ~0%% availability 1 s into a %dx%d run\n",
		r.DeadHost, r.N, r.N)
	sb.WriteString("  variant       time(s)  replans\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-10s %9.1f  %7d\n", row.Variant, row.Time, row.Replans)
	}
	if len(r.Rows) == 2 && r.Rows[1].Time > 0 {
		fmt.Fprintf(&sb, "  evacuation speedup: %.0fx\n", r.Rows[0].Time/r.Rows[1].Time)
	}
	return sb.String()
}
