package expt

import (
	"fmt"
	"strings"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/nws"
	"apples/internal/partition"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// MultiAppResult reports the two-application interference experiment.
type MultiAppResult struct {
	N              int
	AloneA, AloneB float64 // each application by itself
	TogetherA      float64 // concurrent execution
	TogetherB      float64
	SharedHosts    int // hosts both schedules placed work on
}

// SlowdownA returns TogetherA/AloneA.
func (r *MultiAppResult) SlowdownA() float64 { return r.TogetherA / r.AloneA }

// SlowdownB returns TogetherB/AloneB.
func (r *MultiAppResult) SlowdownB() float64 { return r.TogetherB / r.AloneB }

// MultiApp reproduces the Section 3 observation that application-centric
// scheduling is individually greedy: two users' AppLeS agents, each
// optimizing its own application without regard for the other, schedule
// two Jacobi2D runs at the same moment. Both agents pick the same "best"
// machines, so the applications collide and each experiences the other
// purely as reduced deliverable performance — contention neither agent's
// information pool could have predicted.
func MultiApp(n, iterations int, seed int64) (*MultiAppResult, error) {
	if n == 0 {
		n = 1200
	}
	if iterations == 0 {
		iterations = 80
	}
	const warmup = 600.0

	type prepared struct {
		tp     *grid.Topology
		eng    *sim.Engine
		placeA *partition.Placement
		placeB *partition.Placement
	}
	prep := func() (*prepared, error) {
		eng := sim.NewEngine()
		eng.SetEventLimit(200_000_000)
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
		svc := nws.NewService(eng, 10)
		svc.WatchTopology(tp)
		if err := eng.RunUntil(warmup); err != nil {
			return nil, err
		}
		svc.Stop()
		mkPlacement := func() (*partition.Placement, error) {
			agent, err := core.NewAgent(tp, hat.Jacobi2D(n, iterations),
				&userspec.Spec{Decomposition: "strip"}, core.NWSInformation(svc, tp))
			if err != nil {
				return nil, err
			}
			s, err := agent.Schedule(n)
			if err != nil {
				return nil, err
			}
			return s.Placement, nil
		}
		pa, err := mkPlacement()
		if err != nil {
			return nil, err
		}
		// User B schedules independently at the same instant with the
		// same information — uncoordinated, as the paper describes.
		pb, err := mkPlacement()
		if err != nil {
			return nil, err
		}
		return &prepared{tp: tp, eng: eng, placeA: pa, placeB: pb}, nil
	}

	res := &MultiAppResult{N: n}
	cfg := jacobi.Config{Iterations: iterations}

	// Solo baselines.
	for i := 0; i < 2; i++ {
		p, err := prep()
		if err != nil {
			return nil, err
		}
		place := p.placeA
		if i == 1 {
			place = p.placeB
		}
		out, err := jacobi.Run(p.tp, place, cfg)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			res.AloneA = out.Time
		} else {
			res.AloneB = out.Time
		}
	}

	// Concurrent execution.
	p, err := prep()
	if err != nil {
		return nil, err
	}
	remaining := 2
	var outA, outB *jacobi.Result
	done := func() {
		remaining--
		if remaining == 0 {
			p.eng.Halt()
		}
	}
	if err := jacobi.Start(p.tp, p.placeA, cfg, func(r *jacobi.Result) { outA = r; done() }); err != nil {
		return nil, err
	}
	if err := jacobi.Start(p.tp, p.placeB, cfg, func(r *jacobi.Result) { outB = r; done() }); err != nil {
		return nil, err
	}
	if err := p.eng.Run(); err != nil {
		return nil, err
	}
	if outA == nil || outB == nil {
		return nil, fmt.Errorf("expt: concurrent runs stalled")
	}
	res.TogetherA, res.TogetherB = outA.Time, outB.Time

	hostsA := map[string]bool{}
	for _, h := range p.placeA.Hosts() {
		hostsA[h] = true
	}
	for _, h := range p.placeB.Hosts() {
		if hostsA[h] {
			res.SharedHosts++
		}
	}
	return res, nil
}

// FormatMultiApp renders the interference experiment.
func FormatMultiApp(r *MultiAppResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Uncoordinated agents — two %dx%d Jacobi2D applications scheduled at the same instant\n", r.N, r.N)
	fmt.Fprintf(&sb, "  app A: alone %8.2f s   together %8.2f s   slowdown %.2fx\n", r.AloneA, r.TogetherA, r.SlowdownA())
	fmt.Fprintf(&sb, "  app B: alone %8.2f s   together %8.2f s   slowdown %.2fx\n", r.AloneB, r.TogetherB, r.SlowdownB())
	fmt.Fprintf(&sb, "  the two schedules overlap on %d host(s): each application experiences the\n", r.SharedHosts)
	sb.WriteString("  other purely as reduced deliverable performance (Section 3)\n")
	return sb.String()
}
