package grid

import (
	"math"
	"testing"
	"testing/quick"

	"apples/internal/load"
	"apples/internal/sim"
)

// testHost builds a standalone one-host topology for CPU tests.
func testHost(eng *sim.Engine, speed float64, src load.Source) *Host {
	tp := NewTopology(eng)
	h := tp.AddHost(HostSpec{Name: "h", Speed: speed, MemoryMB: 1024, Load: src})
	tp.Finalize()
	return h
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDedicatedCompute(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	var doneAt float64 = -1
	h.Submit(100, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(doneAt, 10, 1e-9) {
		t.Fatalf("100 Mflop at 10 Mflop/s finished at %v, want 10", doneAt)
	}
}

func TestTwoTasksShareCPU(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	var t1, t2 float64
	h.Submit(100, func() { t1 = eng.Now() })
	h.Submit(100, func() { t2 = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Equal work sharing one CPU: both finish at 2x the solo time.
	if !almostEq(t1, 20, 1e-9) || !almostEq(t2, 20, 1e-9) {
		t.Fatalf("shared tasks finished at %v, %v, want 20, 20", t1, t2)
	}
}

func TestUnequalTasksProcessorSharing(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	var tShort, tLong float64
	h.Submit(50, func() { tShort = eng.Now() })
	h.Submit(150, func() { tLong = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Short task: 50 at rate 5 -> t=10. Long: 50 by t=10, then 100 at rate
	// 10 -> t=20.
	if !almostEq(tShort, 10, 1e-9) {
		t.Fatalf("short finished at %v, want 10", tShort)
	}
	if !almostEq(tLong, 20, 1e-9) {
		t.Fatalf("long finished at %v, want 20", tLong)
	}
}

func TestConstantLoadHalvesSpeed(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, load.Constant(1))
	var doneAt float64
	h.Submit(100, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(doneAt, 20, 1e-9) {
		t.Fatalf("load=1 task finished at %v, want 20", doneAt)
	}
}

func TestLoadStepMidTask(t *testing.T) {
	eng := sim.NewEngine()
	// Load 0 until t=5, then load 3.
	src := load.NewTrace([]load.Step{{At: 0, Value: 0}, {At: 5, Value: 3}})
	h := testHost(eng, 10, src)
	var doneAt float64
	h.Submit(100, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 50 Mflop by t=5 at full speed; remaining 50 at 10/4=2.5 -> 20 more s.
	if !almostEq(doneAt, 25, 1e-9) {
		t.Fatalf("stepped-load task finished at %v, want 25", doneAt)
	}
}

func TestAvailabilityTracksLoad(t *testing.T) {
	eng := sim.NewEngine()
	src := load.NewTrace([]load.Step{{At: 0, Value: 1}, {At: 10, Value: 4}})
	h := testHost(eng, 10, src)
	if a := h.Availability(); !almostEq(a, 0.5, 1e-12) {
		t.Fatalf("availability at t=0: %v, want 0.5", a)
	}
	if err := eng.RunUntil(15); err != nil {
		t.Fatal(err)
	}
	if a := h.Availability(); !almostEq(a, 0.2, 1e-12) {
		t.Fatalf("availability at t=15: %v, want 0.2", a)
	}
	if !almostEq(h.EffectiveSpeed(), 2, 1e-12) {
		t.Fatalf("effective speed %v, want 2", h.EffectiveSpeed())
	}
}

func TestSubmitFromCallback(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	var second float64
	h.Submit(100, func() {
		h.Submit(50, func() { second = eng.Now() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(second, 15, 1e-9) {
		t.Fatalf("chained task finished at %v, want 15", second)
	}
}

func TestCancelTask(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	fired := false
	task := h.Submit(100, func() { fired = true })
	var otherDone float64
	h.Submit(100, func() { otherDone = eng.Now() })
	eng.Schedule(5, func() { h.Cancel(task) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled task's callback fired")
	}
	// Other task: 25 Mflop done by t=5 (rate 5), 75 left at rate 10 -> 12.5.
	if !almostEq(otherDone, 12.5, 1e-9) {
		t.Fatalf("surviving task finished at %v, want 12.5", otherDone)
	}
}

func TestZeroWorkTask(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	done := false
	task := h.Submit(0, func() { done = true })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || !task.Finished() {
		t.Fatal("zero-work task did not complete")
	}
}

func TestRunningTasksCount(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	h.Submit(100, nil)
	h.Submit(100, nil)
	if h.RunningTasks() != 2 {
		t.Fatalf("RunningTasks = %d, want 2", h.RunningTasks())
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if h.RunningTasks() != 0 {
		t.Fatalf("RunningTasks after drain = %d, want 0", h.RunningTasks())
	}
}

// Property: under any piecewise load, total delivered work never exceeds
// speed x elapsed time (the CPU cannot create capacity), and the task does
// complete under finite load.
func TestFluidConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		rng := sim.NewRand(seed)
		src := load.NewAR1(rng.Fork(), 2, 1, 0.8, 0.5)
		h := testHost(eng, 8, src)
		work := 200.0
		var doneAt float64 = -1
		h.Submit(work, func() { doneAt = eng.Now() })
		if err := eng.Run(); err != nil {
			return false
		}
		if doneAt < 0 {
			return false // never completed
		}
		// Work/speed is a hard lower bound on completion time.
		return doneAt >= work/8-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() float64 {
		eng := sim.NewEngine()
		src := load.NewOnOff(sim.NewRand(7), 3, 4, 2)
		h := testHost(eng, 10, src)
		var doneAt float64
		h.Submit(500, func() { doneAt = eng.Now() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return doneAt
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
	}
}

func BenchmarkHostContendedTask(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		src := load.NewAR1(sim.NewRand(1), 1, 1, 0.9, 0.3)
		h := testHost(eng, 10, src)
		h.Submit(1000, nil)
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
