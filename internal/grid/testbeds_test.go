package grid

import (
	"testing"

	"apples/internal/sim"
)

func TestSDSCPCLShape(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1})
	if got := len(tp.Hosts()); got != 8 {
		t.Fatalf("host count %d, want 8 (Figure 2)", got)
	}
	if got := len(tp.Links()); got != 4 {
		t.Fatalf("link count %d, want 4", got)
	}
	// Suns and RS6000s sit on different PCL segments...
	r := tp.Route("sparc2", "sparc10")
	if len(r) != 1 || r[0].Name != "pcl-eth-suns" {
		t.Fatalf("sparc2->sparc10 route %v, want single pcl-eth-suns hop", r)
	}
	r = tp.Route("sparc2", "rs6000a")
	if len(r) != 2 {
		t.Fatalf("sparc2->rs6000a route %v, want 2 hops via gateway", r)
	}
	// ...and the cross-site route traverses segment + WAN + FDDI.
	r = tp.Route("sparc2", "alpha1")
	if len(r) != 3 {
		t.Fatalf("sparc2->alpha1 route has %d hops, want 3", len(r))
	}
	if r[1].Name != "pcl-sdsc-wan" {
		t.Fatalf("cross-site route middle hop %v, want pcl-sdsc-wan", r[1])
	}
	// Alphas share the FDDI ring directly.
	r = tp.Route("alpha1", "alpha4")
	if len(r) != 1 || r[0].Name != "sdsc-fddi" {
		t.Fatalf("alpha1->alpha4 route %v, want single FDDI hop", r)
	}
}

func TestSDSCPCLHeterogeneity(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	s2, a1 := tp.Host("sparc2"), tp.Host("alpha1")
	if s2.Speed >= a1.Speed {
		t.Fatalf("sparc2 (%v) should be slower than alpha (%v)", s2.Speed, a1.Speed)
	}
	if s2.Site != "PCL" || a1.Site != "SDSC" {
		t.Fatal("sites not assigned per Figure 2")
	}
	if !s2.HasFeature("kelp") {
		t.Fatal("hosts should advertise the kelp actuation feature")
	}
}

func TestSDSCPCLQuietIsDedicated(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	if err := eng.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	for _, h := range tp.Hosts() {
		if h.CurrentLoad() != 0 {
			t.Fatalf("quiet testbed host %s has load %v", h.Name, h.CurrentLoad())
		}
	}
}

func TestSDSCPCLAmbientLoadVaries(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 3})
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		if err := eng.RunUntil(float64(i+1) * 10); err != nil {
			t.Fatal(err)
		}
		for _, h := range tp.Hosts() {
			if h.CurrentLoad() > 0 {
				seen[h.Name] = true
			}
		}
	}
	for _, name := range []string{"sparc2", "sparc10", "rs6000a", "rs6000b"} {
		if !seen[name] {
			t.Errorf("PCL host %s never experienced ambient load in 2000 s", name)
		}
	}
}

func TestSDSCPCLWithSP2(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, WithSP2: true})
	if got := len(tp.Hosts()); got != 10 {
		t.Fatalf("host count with SP-2 %d, want 10", got)
	}
	sp2 := tp.Host("sp2a")
	if sp2 == nil || !sp2.Dedicated {
		t.Fatal("SP-2 nodes must exist and be dedicated")
	}
	if sp2.MemoryMB != SP2MemoryMB {
		t.Fatalf("SP-2 memory %v, want %v", sp2.MemoryMB, float64(SP2MemoryMB))
	}
	if r := tp.Route("sp2a", "alpha1"); len(r) != 2 {
		t.Fatalf("sp2a->alpha1 route %v, want switch+FDDI", r)
	}
}

func TestCASAPair(t *testing.T) {
	eng := sim.NewEngine()
	tp := CASA(eng)
	if len(tp.Hosts()) != 2 {
		t.Fatalf("CASA hosts %d, want 2", len(tp.Hosts()))
	}
	r := tp.Route("c90", "paragon")
	if len(r) != 1 || r[0].Name != "hippi-sonet" {
		t.Fatalf("CASA route %v, want single hippi-sonet hop", r)
	}
	for _, h := range tp.Hosts() {
		if !h.Dedicated {
			t.Fatalf("CASA host %s must be dedicated", h.Name)
		}
	}
}

func TestTestbedDeterminism(t *testing.T) {
	sample := func() []float64 {
		eng := sim.NewEngine()
		tp := SDSCPCL(eng, TestbedOptions{Seed: 11})
		var out []float64
		for i := 0; i < 50; i++ {
			if err := eng.RunUntil(float64(i+1) * 20); err != nil {
				t.Fatal(err)
			}
			for _, h := range tp.Hosts() {
				out = append(out, h.CurrentLoad())
			}
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed testbeds diverged at sample %d", i)
		}
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate host did not panic")
		}
	}()
	tp := NewTopology(sim.NewEngine())
	tp.AddHost(HostSpec{Name: "h", Speed: 1, MemoryMB: 1})
	tp.AddHost(HostSpec{Name: "h", Speed: 1, MemoryMB: 1})
}

func TestUnroutableTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unreachable pair did not panic at Finalize")
		}
	}()
	tp := NewTopology(sim.NewEngine())
	tp.AddHost(HostSpec{Name: "a", Speed: 1, MemoryMB: 1})
	tp.AddHost(HostSpec{Name: "b", Speed: 1, MemoryMB: 1})
	l := tp.AddLink(LinkSpec{Name: "l", Latency: 0, Bandwidth: 1})
	tp.Attach("a", l)
	// b is attached to nothing.
	tp.Finalize()
}
