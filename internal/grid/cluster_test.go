package grid

import (
	"strings"
	"testing"

	"apples/internal/sim"
)

func TestClusterOfClustersShape(t *testing.T) {
	eng := sim.NewEngine()
	tp := ClusterOfClusters(eng, ClusterOptions{Clusters: 3, PerCluster: 5, Seed: 1})
	if got := len(tp.Hosts()); got != 15 {
		t.Fatalf("hosts %d, want 15", got)
	}
	if got := len(tp.Links()); got != 4 { // 3 switches + backbone
		t.Fatalf("links %d, want 4", got)
	}
	// Intra-cluster: one hop; inter-cluster: switch+backbone+switch.
	if r := tp.Route("site0-h0", "site0-h1"); len(r) != 1 {
		t.Fatalf("intra-cluster route %v", r)
	}
	r := tp.Route("site0-h0", "site2-h1")
	if len(r) != 3 || r[1].Name != "backbone" {
		t.Fatalf("inter-cluster route %v", r)
	}
}

func TestClusterOfClustersHeterogeneous(t *testing.T) {
	eng := sim.NewEngine()
	tp := ClusterOfClusters(eng, ClusterOptions{Seed: 2, Quiet: true})
	speeds := map[float64]bool{}
	for _, h := range tp.Hosts() {
		speeds[h.Speed] = true
		if !strings.HasPrefix(h.Site, "site") {
			t.Fatalf("host %s site %q", h.Name, h.Site)
		}
		if !h.HasFeature("kelp") {
			t.Fatalf("host %s lacks kelp", h.Name)
		}
	}
	if len(speeds) < 3 {
		t.Fatalf("only %d distinct speeds; want heterogeneity", len(speeds))
	}
}

func TestClusterOfClustersLoadVaries(t *testing.T) {
	eng := sim.NewEngine()
	tp := ClusterOfClusters(eng, ClusterOptions{Seed: 3})
	loaded := 0
	if err := eng.RunUntil(2000); err != nil {
		t.Fatal(err)
	}
	for _, h := range tp.Hosts() {
		if h.CurrentLoad() > 0 {
			loaded++
		}
	}
	if loaded == 0 {
		t.Fatal("no host shows ambient load after 2000 s")
	}
}
