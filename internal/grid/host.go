package grid

import (
	"fmt"

	"apples/internal/load"
)

// Host is one machine in the metacomputer.
type Host struct {
	Name      string
	Arch      string  // architecture family, e.g. "sparc2", "alpha", "sp2"
	Site      string  // administrative domain, e.g. "PCL", "SDSC"
	Speed     float64 // Mflop/s delivered when fully dedicated
	MemoryMB  float64 // real memory available to the application
	Dedicated bool    // true if no ambient load ever competes

	// Features advertises software capabilities user specifications can
	// require (the paper's example: CLEO/NILE requires a CORBA ORB).
	Features map[string]bool

	cpu *cpu
}

// String returns "name(site)".
func (h *Host) String() string { return fmt.Sprintf("%s(%s)", h.Name, h.Site) }

// HasFeature reports whether the host advertises the named capability.
func (h *Host) HasFeature(f string) bool { return h.Features[f] }

// CurrentLoad returns the ambient load (competing processes) right now.
func (h *Host) CurrentLoad() float64 { return h.cpu.currentLoad() }

// Availability returns the CPU fraction a newly arriving process would
// receive right now, ignoring the application's own tasks: 1/(1+load).
// This is the quantity NWS CPU sensors measure.
func (h *Host) Availability() float64 { return 1 / (1 + h.cpu.currentLoad()) }

// EffectiveSpeed returns Speed * Availability: the paper's "deliverable"
// compute rate for a single task arriving now.
func (h *Host) EffectiveSpeed() float64 { return h.Speed * h.Availability() }

// RunningTasks reports how many application tasks the host is executing.
func (h *Host) RunningTasks() int { return len(h.cpu.tasks) }

// Submit starts a compute task of `work` Mflop on the host; done fires when
// it completes. The task shares the CPU with ambient load and other tasks.
func (h *Host) Submit(work float64, done func()) *Task {
	return h.cpu.submit(work, done)
}

// Cancel aborts a running task; its completion callback will not fire.
func (h *Host) Cancel(t *Task) { h.cpu.cancel(t) }

// SetLoad replaces the host's ambient load source. Must be called before
// the simulation starts advancing, or with a source whose origin is the
// current time.
func (h *Host) SetLoad(src load.Source) { h.cpu.setLoad(src) }
