package grid

import (
	"testing"

	"apples/internal/load"
	"apples/internal/sim"
)

func TestSetLoadMidSimulation(t *testing.T) {
	eng := sim.NewEngine()
	h := testHost(eng, 10, nil)
	var doneAt float64
	h.Submit(100, func() { doneAt = eng.Now() })
	eng.Schedule(5, func() { h.SetLoad(load.Constant(1)) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 50 Mflop in first 5 s; remaining 50 at half speed -> 10 more s.
	if !almostEq(doneAt, 15, 1e-9) {
		t.Fatalf("SetLoad mid-run finished at %v, want 15", doneAt)
	}
}

func TestSetCrossTrafficMidTransfer(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0, 2, nil)
	var doneAt float64
	tp.Send("a", "b", 10, func() { doneAt = eng.Now() })
	eng.Schedule(2, func() { tp.Link("wire").SetCrossTraffic(load.Constant(1)) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 MB in 2 s at 2 MB/s; remaining 6 MB at 1 MB/s -> 6 more s.
	if !almostEq(doneAt, 8, 1e-9) {
		t.Fatalf("cross-traffic change mid-transfer: %v, want 8", doneAt)
	}
}

func TestManyConcurrentTransfersConserveBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0, 5, nil)
	const k = 10
	var last float64
	for i := 0; i < k; i++ {
		tp.Send("a", "b", 5, func() { last = eng.Now() })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 50 MB total over a 5 MB/s link: exactly 10 s regardless of sharing.
	if !almostEq(last, 10, 1e-9) {
		t.Fatalf("aggregate of %d transfers finished at %v, want 10", k, last)
	}
}

func TestThreeHostSegmentSharing(t *testing.T) {
	eng := sim.NewEngine()
	tp := NewTopology(eng)
	for _, n := range []string{"a", "b", "c"} {
		tp.AddHost(HostSpec{Name: n, Speed: 1, MemoryMB: 1})
	}
	l := tp.AddLink(LinkSpec{Name: "seg", Latency: 0, Bandwidth: 3, Dedicated: true})
	for _, n := range []string{"a", "b", "c"} {
		tp.Attach(n, l)
	}
	tp.Finalize()
	var t1, t2 float64
	tp.Send("a", "b", 6, func() { t1 = eng.Now() })
	tp.Send("c", "b", 6, func() { t2 = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Two transfers share the 3 MB/s segment: each gets 1.5 -> 4 s.
	if !almostEq(t1, 4, 1e-9) || !almostEq(t2, 4, 1e-9) {
		t.Fatalf("segment sharing: %v, %v, want 4, 4", t1, t2)
	}
}

func TestHostStringer(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	if s := tp.Host("sparc2").String(); s != "sparc2(PCL)" {
		t.Fatalf("Host.String() = %q", s)
	}
	if s := tp.Link("sdsc-fddi").String(); s != "sdsc-fddi" {
		t.Fatalf("Link.String() = %q", s)
	}
}
