package grid

import (
	"fmt"
	"sort"
	"strings"

	"apples/internal/load"
	"apples/internal/sim"
)

// Topology is the wired-up metacomputer: hosts and routers attached to
// shared links, with all-pairs routes computed by hop-count BFS.
//
// Build a topology with NewTopology and the Add/Attach calls, then call
// Finalize before simulating. The builders in testbeds.go construct the
// paper's configurations.
type Topology struct {
	Engine *sim.Engine

	hosts   map[string]*Host
	routers map[string]bool // attachment points that are not compute hosts
	links   map[string]*Link
	attach  map[string][]*Link // node name -> links it touches

	net       *network
	routes    map[[2]string][]*Link
	finalized bool

	// Large-topology route tables (built instead of `routes` when the
	// host count exceeds maxExactRouteHosts): hosts attached to the same
	// link set form an attachment class and share routes, so one BFS per
	// class replaces one per ordered pair.
	classOf     map[string]int       // host name -> attachment class
	classRoutes []map[string][]*Link // class -> destination host -> path
	classLinks  [][]*Link            // class -> single-segment intra-class path
}

// maxExactRouteHosts bounds the per-pair BFS precompute in Finalize.
// Beyond it, routes are derived from one BFS per attachment class —
// still minimum-hop and deterministic, but O(classes·nodes) instead of
// O(hosts²·nodes), which is what makes 1000+-host topologies buildable.
const maxExactRouteHosts = 64

// NewTopology returns an empty topology running on eng.
func NewTopology(eng *sim.Engine) *Topology {
	return &Topology{
		Engine:  eng,
		hosts:   make(map[string]*Host),
		routers: make(map[string]bool),
		links:   make(map[string]*Link),
		attach:  make(map[string][]*Link),
		net:     newNetwork(eng),
	}
}

// HostSpec declares a host for AddHost.
type HostSpec struct {
	Name      string
	Arch      string
	Site      string
	Speed     float64 // Mflop/s dedicated
	MemoryMB  float64
	Dedicated bool
	Features  []string
	Load      load.Source // nil means unloaded
}

// AddHost creates and registers a host.
func (tp *Topology) AddHost(spec HostSpec) *Host {
	if tp.finalized {
		panic("grid: AddHost after Finalize")
	}
	if _, dup := tp.hosts[spec.Name]; dup {
		panic(fmt.Sprintf("grid: duplicate host %q", spec.Name))
	}
	src := spec.Load
	if src == nil || spec.Dedicated {
		src = load.Constant(0)
	}
	h := &Host{
		Name:      spec.Name,
		Arch:      spec.Arch,
		Site:      spec.Site,
		Speed:     spec.Speed,
		MemoryMB:  spec.MemoryMB,
		Dedicated: spec.Dedicated,
		Features:  make(map[string]bool),
	}
	for _, f := range spec.Features {
		h.Features[f] = true
	}
	h.cpu = newCPU(tp.Engine, spec.Speed, src)
	tp.hosts[spec.Name] = h
	return h
}

// LinkSpec declares a shared link for AddLink.
type LinkSpec struct {
	Name         string
	Latency      float64 // seconds one-way
	Bandwidth    float64 // MB/s dedicated
	Dedicated    bool
	CrossTraffic load.Source // nil means no ambient traffic
}

// AddLink creates and registers a link (network segment).
func (tp *Topology) AddLink(spec LinkSpec) *Link {
	if tp.finalized {
		panic("grid: AddLink after Finalize")
	}
	if _, dup := tp.links[spec.Name]; dup {
		panic(fmt.Sprintf("grid: duplicate link %q", spec.Name))
	}
	src := spec.CrossTraffic
	if src == nil || spec.Dedicated {
		src = load.Constant(0)
	}
	l := &Link{
		Name:      spec.Name,
		Latency:   spec.Latency,
		Bandwidth: spec.Bandwidth,
		Dedicated: spec.Dedicated,
		src:       src,
	}
	tp.net.addLink(l)
	tp.links[spec.Name] = l
	return l
}

// AddRouter registers a non-compute attachment point (a gateway joining two
// segments, as between the PCL and SDSC in Figure 2).
func (tp *Topology) AddRouter(name string) {
	if tp.finalized {
		panic("grid: AddRouter after Finalize")
	}
	tp.routers[name] = true
}

// Attach connects a host or router (by name) to a link.
func (tp *Topology) Attach(node string, link *Link) {
	if tp.finalized {
		panic("grid: Attach after Finalize")
	}
	if _, ok := tp.hosts[node]; !ok && !tp.routers[node] {
		panic(fmt.Sprintf("grid: Attach of unknown node %q", node))
	}
	tp.attach[node] = append(tp.attach[node], link)
}

// Finalize computes all-pairs routes. It must be called once, before the
// simulation advances, and panics if any host pair is unreachable. Small
// topologies (≤ maxExactRouteHosts hosts) run one BFS per ordered pair;
// larger ones derive routes from one BFS per attachment class.
func (tp *Topology) Finalize() {
	if tp.finalized {
		panic("grid: Finalize called twice")
	}
	tp.finalized = true
	names := tp.HostNames()
	if len(names) > maxExactRouteHosts {
		tp.finalizeByClass(names)
		return
	}
	tp.routes = make(map[[2]string][]*Link)
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			r := tp.bfsRoute(a, b)
			if r == nil {
				panic(fmt.Sprintf("grid: no route between %q and %q", a, b))
			}
			tp.routes[[2]string{a, b}] = r
		}
	}
}

// finalizeByClass builds the large-topology route tables: hosts with an
// identical attached-link set see the network from the same point, so a
// single BFS from one class representative yields the routes for every
// member. Same-class pairs are one shared segment apart; the path is the
// lexically first attached link, independent of which member represents
// the class.
func (tp *Topology) finalizeByClass(hosts []string) {
	// Link membership, hoisted out of the per-source BFS (deterministic
	// order: nodes sorted by name, links in attach order).
	members := make(map[*Link][]string)
	nodes := make([]string, 0, len(tp.attach))
	for n := range tp.attach {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		for _, l := range tp.attach[n] {
			members[l] = append(members[l], n)
		}
	}
	tp.classOf = make(map[string]int, len(hosts))
	classIdx := make(map[string]int)
	var reps []string
	for _, h := range hosts {
		ls := make([]string, len(tp.attach[h]))
		for i, l := range tp.attach[h] {
			ls[i] = l.Name
		}
		sort.Strings(ls)
		key := strings.Join(ls, "\x00")
		id, ok := classIdx[key]
		if !ok {
			id = len(reps)
			classIdx[key] = id
			reps = append(reps, h)
		}
		tp.classOf[h] = id
	}
	hostSet := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		hostSet[h] = true
	}
	tp.classRoutes = make([]map[string][]*Link, len(reps))
	tp.classLinks = make([][]*Link, len(reps))
	for id, rep := range reps {
		att := append([]*Link(nil), tp.attach[rep]...)
		sort.Slice(att, func(i, j int) bool { return att[i].Name < att[j].Name })
		if len(att) > 0 {
			tp.classLinks[id] = att[:1]
		}
		tp.classRoutes[id] = tp.bfsTree(rep, members, hostSet)
		if len(tp.classRoutes[id])+1 < len(hosts) {
			for _, b := range hosts {
				if b != rep && tp.classRoutes[id][b] == nil {
					panic(fmt.Sprintf("grid: no route between %q and %q", rep, b))
				}
			}
		}
	}
}

// bfsTree runs one minimum-hop BFS from a source node and records the
// link path to every reachable host — the same traversal order as
// bfsRoute, but answering all destinations in one pass.
func (tp *Topology) bfsTree(from string, members map[*Link][]string, hostSet map[string]bool) map[string][]*Link {
	type state struct {
		node string
		path []*Link
	}
	out := make(map[string][]*Link)
	visited := map[string]bool{from: true}
	queue := []state{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range tp.attach[cur.node] {
			for _, next := range members[l] {
				if visited[next] {
					continue
				}
				visited[next] = true
				path := append(append([]*Link(nil), cur.path...), l)
				if hostSet[next] {
					out[next] = path
				}
				queue = append(queue, state{node: next, path: path})
			}
		}
	}
	return out
}

// bfsRoute finds the minimum-hop link path between two nodes via BFS over
// the bipartite node/link graph.
func (tp *Topology) bfsRoute(from, to string) []*Link {
	type state struct {
		node string
		path []*Link
	}
	visited := map[string]bool{from: true}
	queue := []state{{node: from}}
	// membership: link -> attached node names (deterministic order)
	members := make(map[*Link][]string)
	var nodes []string
	for n := range tp.attach {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		for _, l := range tp.attach[n] {
			members[l] = append(members[l], n)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range tp.attach[cur.node] {
			for _, next := range members[l] {
				if visited[next] {
					continue
				}
				visited[next] = true
				path := append(append([]*Link(nil), cur.path...), l)
				if next == to {
					return path
				}
				queue = append(queue, state{node: next, path: path})
			}
		}
	}
	return nil
}

// SetHostTraces replaces the ambient load of the named hosts with
// explicit piecewise-constant traces (e.g. parsed from measured logs via
// load.ParseTrace). Call before the simulation advances so trace origins
// align with virtual time zero.
func (tp *Topology) SetHostTraces(traces map[string][]load.Step) error {
	for name, steps := range traces {
		h := tp.hosts[name]
		if h == nil {
			return fmt.Errorf("grid: trace for unknown host %q", name)
		}
		h.SetLoad(load.NewTrace(steps))
	}
	return nil
}

// SetLinkTraces replaces the cross traffic of the named links with
// explicit traces.
func (tp *Topology) SetLinkTraces(traces map[string][]load.Step) error {
	for name, steps := range traces {
		l := tp.links[name]
		if l == nil {
			return fmt.Errorf("grid: trace for unknown link %q", name)
		}
		l.SetCrossTraffic(load.NewTrace(steps))
	}
	return nil
}

// Host returns the named host, or nil.
func (tp *Topology) Host(name string) *Host { return tp.hosts[name] }

// Link returns the named link, or nil.
func (tp *Topology) Link(name string) *Link { return tp.links[name] }

// Hosts returns all hosts sorted by name.
func (tp *Topology) Hosts() []*Host {
	out := make([]*Host, 0, len(tp.hosts))
	for _, name := range tp.HostNames() {
		out = append(out, tp.hosts[name])
	}
	return out
}

// HostNames returns all host names, sorted.
func (tp *Topology) HostNames() []string {
	names := make([]string, 0, len(tp.hosts))
	for n := range tp.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Links returns all links sorted by name.
func (tp *Topology) Links() []*Link {
	names := make([]string, 0, len(tp.links))
	for n := range tp.links {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Link, 0, len(names))
	for _, n := range names {
		out = append(out, tp.links[n])
	}
	return out
}

// Route returns the link path from host a to host b (nil if a == b).
func (tp *Topology) Route(a, b string) []*Link {
	if !tp.finalized {
		panic("grid: Route before Finalize")
	}
	if tp.routes != nil {
		return tp.routes[[2]string{a, b}]
	}
	if a == b {
		return nil
	}
	ca, ok := tp.classOf[a]
	if !ok {
		return nil
	}
	cb, ok := tp.classOf[b]
	if !ok {
		return nil
	}
	if ca == cb {
		return tp.classLinks[ca]
	}
	return tp.classRoutes[ca][b]
}

// Send transfers sizeMB from host a to host b; done fires on completion.
// Same-host sends complete after a zero-length event (local copies are
// treated as free, matching the paper's cost model where C_i covers only
// network border exchange).
func (tp *Topology) Send(a, b string, sizeMB float64, done func()) *Transfer {
	if a == b {
		t := &Transfer{}
		tp.Engine.Schedule(0, func() {
			t.finished = true
			if done != nil {
				done()
			}
		})
		return t
	}
	route := tp.Route(a, b)
	if route == nil {
		panic(fmt.Sprintf("grid: Send between unrouted hosts %q -> %q", a, b))
	}
	return tp.net.send(route, sizeMB, done)
}

// RouteLatency returns the summed one-way latency from a to b in seconds.
func (tp *Topology) RouteLatency(a, b string) float64 {
	if a == b {
		return 0
	}
	lat := 0.0
	for _, l := range tp.Route(a, b) {
		lat += l.Latency
	}
	return lat
}

// RouteBandwidth returns the current bottleneck available bandwidth (MB/s)
// a new transfer from a to b would see.
func (tp *Topology) RouteBandwidth(a, b string) float64 {
	if a == b {
		return inf()
	}
	bw := inf()
	for _, l := range tp.Route(a, b) {
		if v := l.AvailableBandwidth(); v < bw {
			bw = v
		}
	}
	return bw
}

// RouteDedicatedBandwidth returns the bottleneck bandwidth ignoring all
// contention — what a static, compile-time partitioner would assume.
func (tp *Topology) RouteDedicatedBandwidth(a, b string) float64 {
	if a == b {
		return inf()
	}
	bw := inf()
	for _, l := range tp.Route(a, b) {
		if l.Bandwidth < bw {
			bw = l.Bandwidth
		}
	}
	return bw
}

func inf() float64 { return 1e30 }
