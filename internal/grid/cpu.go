package grid

import (
	"math"

	"apples/internal/load"
	"apples/internal/sim"
)

// workEpsilon absorbs floating-point residue when deciding a task finished.
const workEpsilon = 1e-9

// Task is a compute job in flight on a host's CPU.
type Task struct {
	remaining float64 // Mflop left
	done      func()
	finished  bool
	cancelled bool
}

// Finished reports whether the task has completed.
func (t *Task) Finished() bool { return t.finished }

// cpu is the fluid processor-sharing model backing a Host. All running
// tasks and the ambient load divide the CPU equally; rates are recomputed
// at every arrival, completion, and load-change event.
//
// The ambient load source is sampled lazily: a load-change event is armed
// only while tasks are running, so an idle simulation drains instead of
// ticking forever.
type cpu struct {
	eng   *sim.Engine
	speed float64

	tasks map[*Task]struct{}

	src       load.Source
	loadVal   float64
	loadUntil float64
	sampled   bool

	lastAdvance float64
	rate        float64 // per-task Mflop/s under the current configuration

	completion *sim.Event
	loadChange *sim.Event
}

func newCPU(eng *sim.Engine, speed float64, src load.Source) *cpu {
	return &cpu{
		eng:   eng,
		speed: speed,
		tasks: make(map[*Task]struct{}),
		src:   src,
	}
}

func (c *cpu) setLoad(src load.Source) {
	c.advance()
	c.src = src
	c.sampled = false
	c.refreshLoad()
	c.reconfigure()
}

// refreshLoad brings the cached load segment up to date with the clock.
func (c *cpu) refreshLoad() {
	now := c.eng.Now()
	if !c.sampled || now >= c.loadUntil {
		c.loadVal, c.loadUntil = c.src.Sample(now)
		c.sampled = true
	}
}

func (c *cpu) currentLoad() float64 {
	c.refreshLoad()
	return c.loadVal
}

func (c *cpu) onLoadChange() {
	c.loadChange = nil
	c.advance()
	c.refreshLoad()
	c.reconfigure()
}

// advance applies progress at the current rate since lastAdvance.
func (c *cpu) advance() {
	now := c.eng.Now()
	dt := now - c.lastAdvance
	c.lastAdvance = now
	if dt <= 0 || c.rate <= 0 {
		return
	}
	for t := range c.tasks {
		t.remaining -= c.rate * dt
	}
}

// reconfigure recomputes the shared rate and re-arms the next completion
// and, while tasks are running, the next load-change wakeup.
func (c *cpu) reconfigure() {
	if c.completion != nil {
		c.eng.Cancel(c.completion)
		c.completion = nil
	}
	if c.loadChange != nil {
		c.eng.Cancel(c.loadChange)
		c.loadChange = nil
	}
	k := len(c.tasks)
	if k == 0 {
		c.rate = 0
		return
	}
	c.refreshLoad()
	if !math.IsInf(c.loadUntil, 1) {
		c.loadChange = c.eng.ScheduleAt(math.Max(c.loadUntil, c.eng.Now()), c.onLoadChange)
	}
	c.rate = c.speed / (float64(k) + c.loadVal)
	if c.rate <= 0 {
		// Fully starved CPU: park until the load changes.
		return
	}
	minRem := math.Inf(1)
	for t := range c.tasks {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	c.completion = c.eng.Schedule(math.Max(minRem, 0)/c.rate, c.onCompletion)
}

func (c *cpu) onCompletion() {
	c.completion = nil
	c.advance()
	var doneList []*Task
	for t := range c.tasks {
		if t.remaining <= workEpsilon {
			doneList = append(doneList, t)
		}
	}
	for _, t := range doneList {
		delete(c.tasks, t)
		t.finished = true
	}
	c.reconfigure()
	// Callbacks run after the CPU is consistent so they can submit new work.
	for _, t := range doneList {
		if t.done != nil && !t.cancelled {
			t.done()
		}
	}
}

func (c *cpu) submit(work float64, done func()) *Task {
	t := &Task{remaining: work, done: done}
	c.advance()
	if work <= workEpsilon {
		// Degenerate zero-work task: complete on a fresh event to keep
		// callback ordering consistent.
		c.eng.Schedule(0, func() {
			t.finished = true
			if done != nil {
				done()
			}
		})
		return t
	}
	c.tasks[t] = struct{}{}
	c.reconfigure()
	return t
}

// cancel aborts a task; its callback will not fire.
func (c *cpu) cancel(t *Task) {
	if t.finished || t.cancelled {
		return
	}
	t.cancelled = true
	c.advance()
	delete(c.tasks, t)
	c.reconfigure()
}
