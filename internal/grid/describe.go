package grid

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders the topology as a text diagram: each link with its
// characteristics and attached nodes, then each host with speed, memory,
// and current deliverable performance. cmd/apples -topology prints it;
// it is the reproduction's rendering of Figure 2.
func (tp *Topology) Describe() string {
	var sb strings.Builder
	sb.WriteString("links:\n")
	for _, l := range tp.Links() {
		kind := "shared"
		if l.Dedicated {
			kind = "dedicated"
		}
		var members []string
		for node, links := range tp.attach {
			for _, ll := range links {
				if ll == l {
					members = append(members, node)
				}
			}
		}
		sort.Strings(members)
		fmt.Fprintf(&sb, "  %-14s %6.2f MB/s  %5.1f ms  %-9s  [%s]\n",
			l.Name, l.Bandwidth, l.Latency*1000, kind, strings.Join(members, " "))
	}
	sb.WriteString("hosts:\n")
	for _, h := range tp.Hosts() {
		kind := "shared"
		if h.Dedicated {
			kind = "dedicated"
		}
		fmt.Fprintf(&sb, "  %-10s %-8s %-6s %6.0f Mflop/s  %6.0f MB  %-9s  deliverable now: %5.1f Mflop/s\n",
			h.Name, h.Arch, h.Site, h.Speed, h.MemoryMB, kind, h.EffectiveSpeed())
	}
	return sb.String()
}
