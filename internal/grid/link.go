package grid

import (
	"math"

	"apples/internal/load"
	"apples/internal/sim"
)

// Link is one shared network segment or point-to-point channel: an ethernet
// segment, an FDDI ring, a WAN circuit. Transfers crossing it divide its
// bandwidth with each other and with ambient cross traffic.
//
// Cross traffic is sampled lazily and its change events are armed only
// while the link carries transfers, so idle simulations drain.
type Link struct {
	Name      string
	Latency   float64 // seconds, one-way, per message
	Bandwidth float64 // MB/s when fully dedicated
	Dedicated bool

	net       *network
	transfers map[*Transfer]struct{}

	src       load.Source
	loadVal   float64 // cross traffic expressed in "equivalent streams"
	loadUntil float64
	sampled   bool
	loadEv    *sim.Event
}

// String returns the link name.
func (l *Link) String() string { return l.Name }

// CurrentCrossTraffic returns the ambient competing-stream count now.
func (l *Link) CurrentCrossTraffic() float64 {
	l.refreshLoad()
	return l.loadVal
}

// AvailableBandwidth returns the MB/s a single new transfer would get right
// now, given cross traffic and transfers already in flight. This is the
// quantity NWS bandwidth sensors measure.
func (l *Link) AvailableBandwidth() float64 {
	l.refreshLoad()
	return l.Bandwidth / (1 + l.loadVal + float64(len(l.transfers)))
}

// SetCrossTraffic replaces the link's ambient traffic source.
func (l *Link) SetCrossTraffic(src load.Source) {
	l.net.advanceAll()
	l.src = src
	l.sampled = false
	l.refreshLoad()
	l.net.reconfigureAll()
}

func (l *Link) refreshLoad() {
	now := l.net.eng.Now()
	if !l.sampled || now >= l.loadUntil {
		l.loadVal, l.loadUntil = l.src.Sample(now)
		l.sampled = true
	}
}

// Transfer is a message in flight across a route of links.
type Transfer struct {
	route     []*Link
	remaining float64 // MB left in the byte phase
	rate      float64
	done      func()
	started   bool // latency phase finished
	finished  bool
}

// Finished reports whether the transfer completed.
func (t *Transfer) Finished() bool { return t.finished }

// network owns all links and in-flight transfers of a topology and runs the
// shared fluid bandwidth model. Rates are recomputed globally at each
// arrival, completion, and cross-traffic change; with the handful of links
// in the paper's testbeds this is cheap and exact.
type network struct {
	eng         *sim.Engine
	links       []*Link
	active      map[*Transfer]struct{}
	lastAdvance float64
	completion  *sim.Event
}

func newNetwork(eng *sim.Engine) *network {
	return &network{eng: eng, active: make(map[*Transfer]struct{})}
}

func (n *network) addLink(l *Link) {
	l.net = n
	l.transfers = make(map[*Transfer]struct{})
	if l.src == nil {
		l.src = load.Constant(0)
	}
	n.links = append(n.links, l)
}

// send starts a transfer of sizeMB along route; done fires on completion.
// The message first pays the route's summed latency, then streams its bytes
// through the fluid bandwidth model.
func (n *network) send(route []*Link, sizeMB float64, done func()) *Transfer {
	if len(route) == 0 {
		panic("grid: send with empty route")
	}
	t := &Transfer{route: route, remaining: sizeMB, done: done}
	lat := 0.0
	for _, l := range route {
		lat += l.Latency
	}
	n.eng.Schedule(lat, func() {
		t.started = true
		if t.remaining <= workEpsilon {
			t.finished = true
			if t.done != nil {
				t.done()
			}
			return
		}
		n.advanceAll()
		n.active[t] = struct{}{}
		for _, l := range t.route {
			l.transfers[t] = struct{}{}
		}
		n.reconfigureAll()
	})
	return t
}

// advanceAll applies progress to every active transfer at its current rate.
func (n *network) advanceAll() {
	now := n.eng.Now()
	dt := now - n.lastAdvance
	n.lastAdvance = now
	if dt <= 0 {
		return
	}
	for t := range n.active {
		t.remaining -= t.rate * dt
	}
}

// reconfigureAll recomputes each transfer's rate as the minimum per-link
// fair share along its route, re-arms the next completion event, and arms
// cross-traffic wakeups on every busy link.
func (n *network) reconfigureAll() {
	if n.completion != nil {
		n.eng.Cancel(n.completion)
		n.completion = nil
	}
	for _, l := range n.links {
		if l.loadEv != nil {
			n.eng.Cancel(l.loadEv)
			l.loadEv = nil
		}
	}
	if len(n.active) == 0 {
		return
	}
	for _, l := range n.links {
		if len(l.transfers) == 0 {
			continue
		}
		l.refreshLoad()
		if !math.IsInf(l.loadUntil, 1) {
			at := math.Max(l.loadUntil, n.eng.Now())
			ll := l
			l.loadEv = n.eng.ScheduleAt(at, func() {
				ll.loadEv = nil
				n.advanceAll()
				ll.refreshLoad()
				n.reconfigureAll()
			})
		}
	}
	minETA := math.Inf(1)
	for t := range n.active {
		rate := math.Inf(1)
		for _, l := range t.route {
			share := l.Bandwidth / (float64(len(l.transfers)) + l.loadVal)
			if share < rate {
				rate = share
			}
		}
		t.rate = rate
		if rate > 0 {
			if eta := math.Max(t.remaining, 0) / rate; eta < minETA {
				minETA = eta
			}
		}
	}
	if math.IsInf(minETA, 1) {
		return // all routes starved; wait for a cross-traffic change
	}
	n.completion = n.eng.Schedule(minETA, n.onCompletion)
}

func (n *network) onCompletion() {
	n.completion = nil
	n.advanceAll()
	var doneList []*Transfer
	for t := range n.active {
		if t.remaining <= workEpsilon {
			doneList = append(doneList, t)
		}
	}
	for _, t := range doneList {
		delete(n.active, t)
		for _, l := range t.route {
			delete(l.transfers, t)
		}
		t.finished = true
	}
	n.reconfigureAll()
	for _, t := range doneList {
		if t.done != nil {
			t.done()
		}
	}
}
