// Package grid models the metacomputer: heterogeneous hosts joined by
// heterogeneous, shared networks.
//
// Hosts are fluid processor-sharing CPUs. A host with speed S (Mflop/s)
// running k application tasks under ambient load l(t) delivers S/(k+l(t))
// to each task, so non-dedicated machines appear to the application exactly
// as the paper describes: as resources with reduced, time-varying
// capability. Links are shared channels with latency and bandwidth; active
// transfers and cross traffic divide the bandwidth the same way.
//
// A Topology wires hosts, routers, and network segments together and
// computes multi-hop routes. Builders for the paper's testbeds (the
// SDSC/PCL configuration of Figure 2, its SP-2 extension used in Figure 6,
// and the CASA C90+Paragon pair used by 3D-REACT) live in testbeds.go.
//
// All dynamics run on a sim.Engine; everything is deterministic per seed.
package grid
