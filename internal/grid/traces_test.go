package grid

import (
	"testing"

	"apples/internal/load"
	"apples/internal/sim"
)

func TestSetHostTraces(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	err := tp.SetHostTraces(map[string][]load.Step{
		"sparc2":  {{At: 0, Value: 2}, {At: 100, Value: 0}},
		"sparc10": {{At: 0, Value: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l := tp.Host("sparc2").CurrentLoad(); l != 2 {
		t.Fatalf("sparc2 load %v, want 2", l)
	}
	if err := eng.RunUntil(150); err != nil {
		t.Fatal(err)
	}
	if l := tp.Host("sparc2").CurrentLoad(); l != 0 {
		t.Fatalf("sparc2 load after step %v, want 0", l)
	}
	if l := tp.Host("sparc10").CurrentLoad(); l != 1 {
		t.Fatalf("sparc10 load %v, want 1", l)
	}
}

func TestSetHostTracesUnknownHost(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	if err := tp.SetHostTraces(map[string][]load.Step{"ghost": {{At: 0, Value: 1}}}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestSetLinkTraces(t *testing.T) {
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	err := tp.SetLinkTraces(map[string][]load.Step{
		"pcl-sdsc-wan": {{At: 0, Value: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wan := tp.Link("pcl-sdsc-wan")
	if bw := wan.AvailableBandwidth(); bw != 1 {
		t.Fatalf("wan available bandwidth %v, want 4/(1+3)=1", bw)
	}
	if err := tp.SetLinkTraces(map[string][]load.Step{"ghost": nil}); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestTraceDrivenSchedulingScenario(t *testing.T) {
	// A scenario built entirely from explicit traces is bit-reproducible
	// and host "alpha1" is visibly loaded while the others are free.
	eng := sim.NewEngine()
	tp := SDSCPCL(eng, TestbedOptions{Seed: 1, Quiet: true})
	if err := tp.SetHostTraces(map[string][]load.Step{
		"alpha1": {{At: 0, Value: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	if tp.Host("alpha1").EffectiveSpeed() >= tp.Host("alpha2").EffectiveSpeed() {
		t.Fatal("trace-loaded alpha1 should deliver less than alpha2")
	}
}
