package grid

import (
	"apples/internal/load"
	"apples/internal/sim"
)

// TestbedOptions configures the paper testbed builders.
type TestbedOptions struct {
	// Seed drives every ambient load generator in the testbed. The same
	// seed reproduces the same contention, which is how the experiments run
	// competing partitions "back-to-back" under identical conditions.
	Seed int64
	// Quiet builds the testbed with no ambient load anywhere (dedicated
	// machines and networks), for baselines and unit tests.
	Quiet bool
	// WithSP2 adds the two unloaded SP-2 nodes used in Figure 6.
	WithSP2 bool
}

// SP2MemoryMB is the per-node real memory of the simulated SP-2 nodes. With
// 16 bytes/point of Jacobi state, two nodes hold a ~3700x3700 problem at
// the edge of memory — the crossover point reported for Figure 6.
const SP2MemoryMB = 110

// SDSCPCL builds the Figure 2 testbed: a Sparc-2 and a Sparc-10 on one PCL
// ethernet segment, two RS6000s on another, a gateway to SDSC, and four DEC
// Alphas on a non-dedicated FDDI ring at SDSC. Speeds are era-plausible
// Mflop/s; what matters for the reproduction is their heterogeneity, not
// their absolute values.
//
// Ambient load levels are chosen so that the PCL machines are busy desktop
// workstations (heavy, bursty contention), the Alphas are a lightly shared
// farm, and the networks carry background traffic — the environment in
// which the paper's AppLeS partition beat static partitions by 2-8x.
func SDSCPCL(eng *sim.Engine, opt TestbedOptions) *Topology {
	tp := NewTopology(eng)
	rng := sim.NewRand(opt.Seed)

	amb := func(mk func(r *sim.Rand) load.Source) load.Source {
		if opt.Quiet {
			return nil
		}
		return mk(rng.Fork())
	}

	// --- PCL workstations ---
	tp.AddHost(HostSpec{
		Name: "sparc2", Arch: "sparc2", Site: "PCL",
		Speed: 4, MemoryMB: 32,
		Features: []string{"kelp", "pvm"},
		Load: amb(func(r *sim.Rand) load.Source {
			// Moderately shared: old and slow, but not crowded.
			return load.NewAR1(r.Fork(), 5, 0.7, 0.9, 0.25)
		}),
	})
	tp.AddHost(HostSpec{
		Name: "sparc10", Arch: "sparc10", Site: "PCL",
		Speed: 10, MemoryMB: 64,
		Features: []string{"kelp", "pvm"},
		Load: amb(func(r *sim.Rand) load.Source {
			// The lab's popular desktop: crowded nearly all the time,
			// with extra interactive bursts on top. Compile-time
			// schedules that trust its nominal speed pay dearly.
			return load.NewComposite(
				load.NewAR1(r.Fork(), 5, 3.0, 0.92, 0.5),
				load.NewOnOff(r.Fork(), 120, 90, 2),
			)
		}),
	})
	tp.AddHost(HostSpec{
		Name: "rs6000a", Arch: "rs6000", Site: "PCL",
		Speed: 25, MemoryMB: 128,
		Features: []string{"kelp", "pvm"},
		Load: amb(func(r *sim.Rand) load.Source {
			return load.NewAR1(r.Fork(), 5, 0.8, 0.85, 0.3)
		}),
	})
	tp.AddHost(HostSpec{
		Name: "rs6000b", Arch: "rs6000", Site: "PCL",
		Speed: 25, MemoryMB: 128,
		Features: []string{"kelp", "pvm"},
		Load: amb(func(r *sim.Rand) load.Source {
			return load.NewComposite(
				load.NewAR1(r.Fork(), 5, 0.5, 0.85, 0.25),
				load.NewOnOff(r.Fork(), 300, 120, 1.5),
			)
		}),
	})

	// --- SDSC Alpha farm ---
	for _, name := range []string{"alpha1", "alpha2", "alpha3", "alpha4"} {
		tp.AddHost(HostSpec{
			Name: name, Arch: "alpha", Site: "SDSC",
			Speed: 40, MemoryMB: 128,
			Features: []string{"kelp", "pvm", "corba"},
			Load: amb(func(r *sim.Rand) load.Source {
				// A lightly shared farm, but with enough wandering load
				// that compile-time assumptions mislead.
				return load.NewAR1(r.Fork(), 5, 0.55, 0.85, 0.3)
			}),
		})
	}

	// --- Networks (Figure 2) ---
	// 10 Mbit ethernet ~ 1.25 MB/s; FDDI 100 Mbit ~ 12.5 MB/s; a shared
	// campus/WAN path between the sites.
	ethS := tp.AddLink(LinkSpec{
		Name: "pcl-eth-suns", Latency: 0.001, Bandwidth: 1.25,
		CrossTraffic: amb(func(r *sim.Rand) load.Source {
			return load.NewOnOff(r.Fork(), 30, 20, 1.0)
		}),
	})
	ethR := tp.AddLink(LinkSpec{
		Name: "pcl-eth-rs", Latency: 0.001, Bandwidth: 1.25,
		CrossTraffic: amb(func(r *sim.Rand) load.Source {
			return load.NewAR1(r.Fork(), 10, 0.5, 0.8, 0.2)
		}),
	})
	wan := tp.AddLink(LinkSpec{
		Name: "pcl-sdsc-wan", Latency: 0.003, Bandwidth: 4,
		CrossTraffic: amb(func(r *sim.Rand) load.Source {
			return load.NewComposite(
				load.NewAR1(r.Fork(), 10, 0.8, 0.85, 0.3),
				load.NewPeriodic(10, 600, 0.3, 0.3, 0),
			)
		}),
	})
	fddi := tp.AddLink(LinkSpec{
		Name: "sdsc-fddi", Latency: 0.0005, Bandwidth: 12.5,
		CrossTraffic: amb(func(r *sim.Rand) load.Source {
			return load.NewAR1(r.Fork(), 10, 0.6, 0.8, 0.25)
		}),
	})

	tp.AddRouter("pcl-gw")
	tp.AddRouter("sdsc-gw")

	tp.Attach("sparc2", ethS)
	tp.Attach("sparc10", ethS)
	tp.Attach("rs6000a", ethR)
	tp.Attach("rs6000b", ethR)
	tp.Attach("pcl-gw", ethS)
	tp.Attach("pcl-gw", ethR)
	tp.Attach("pcl-gw", wan)
	tp.Attach("sdsc-gw", wan)
	tp.Attach("sdsc-gw", fddi)
	for _, name := range []string{"alpha1", "alpha2", "alpha3", "alpha4"} {
		tp.Attach(name, fddi)
	}

	if opt.WithSP2 {
		// Two unloaded SP-2 nodes on a fast dedicated switch at SDSC
		// (Figure 6). Much faster than the workstations, but bounded memory.
		sw := tp.AddLink(LinkSpec{
			Name: "sp2-switch", Latency: 0.0001, Bandwidth: 35, Dedicated: true,
		})
		for _, name := range []string{"sp2a", "sp2b"} {
			tp.AddHost(HostSpec{
				Name: name, Arch: "sp2", Site: "SDSC",
				Speed: 120, MemoryMB: SP2MemoryMB, Dedicated: true,
				Features: []string{"kelp", "pvm", "hpf"},
			})
			tp.Attach(name, sw)
		}
		tp.Attach("sdsc-gw", sw)
	}

	tp.Finalize()
	return tp
}

// CASA builds the two-machine CASA testbed used by 3D-REACT (Section 2.3):
// a Cray C90 CPU at SDSC and a Paragon partition at CalTech over a
// dedicated HiPPI-SONET wide-area path. Both machines are dedicated, as the
// paper notes the application required.
func CASA(eng *sim.Engine) *Topology {
	tp := NewTopology(eng)
	tp.AddHost(HostSpec{
		Name: "c90", Arch: "c90", Site: "SDSC",
		Speed: 450, MemoryMB: 2048, Dedicated: true,
		Features: []string{"vector"},
	})
	tp.AddHost(HostSpec{
		Name: "paragon", Arch: "paragon", Site: "CalTech",
		Speed: 480, MemoryMB: 4096, Dedicated: true,
		Features: []string{"mpp"},
	})
	hippi := tp.AddLink(LinkSpec{
		Name: "hippi-sonet", Latency: 0.015, Bandwidth: 25, Dedicated: true,
	})
	tp.Attach("c90", hippi)
	tp.Attach("paragon", hippi)
	tp.Finalize()
	return tp
}
