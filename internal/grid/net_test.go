package grid

import (
	"testing"

	"apples/internal/load"
	"apples/internal/sim"
)

// pairTopology builds two hosts joined by one link for transfer tests.
func pairTopology(eng *sim.Engine, lat, bw float64, cross load.Source) *Topology {
	tp := NewTopology(eng)
	tp.AddHost(HostSpec{Name: "a", Speed: 10, MemoryMB: 64})
	tp.AddHost(HostSpec{Name: "b", Speed: 10, MemoryMB: 64})
	l := tp.AddLink(LinkSpec{Name: "wire", Latency: lat, Bandwidth: bw, CrossTraffic: cross})
	tp.Attach("a", l)
	tp.Attach("b", l)
	tp.Finalize()
	return tp
}

func TestTransferDedicated(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0.5, 2, nil)
	var doneAt float64
	tp.Send("a", "b", 10, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 0.5 s latency + 10 MB / 2 MB/s = 5.5 s.
	if !almostEq(doneAt, 5.5, 1e-9) {
		t.Fatalf("transfer finished at %v, want 5.5", doneAt)
	}
}

func TestTwoTransfersShareLink(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0, 2, nil)
	var t1, t2 float64
	tp.Send("a", "b", 10, func() { t1 = eng.Now() })
	tp.Send("b", "a", 10, func() { t2 = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(t1, 10, 1e-9) || !almostEq(t2, 10, 1e-9) {
		t.Fatalf("shared transfers finished at %v, %v, want 10, 10", t1, t2)
	}
}

func TestCrossTrafficSlowsTransfer(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0, 2, load.Constant(1))
	var doneAt float64
	tp.Send("a", "b", 10, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Bandwidth share 2/(1+1) = 1 MB/s -> 10 s.
	if !almostEq(doneAt, 10, 1e-9) {
		t.Fatalf("contended transfer finished at %v, want 10", doneAt)
	}
}

func TestCrossTrafficStepMidTransfer(t *testing.T) {
	eng := sim.NewEngine()
	cross := load.NewTrace([]load.Step{{At: 0, Value: 0}, {At: 2, Value: 3}})
	tp := pairTopology(eng, 0, 2, cross)
	var doneAt float64
	tp.Send("a", "b", 10, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 MB by t=2 at 2 MB/s, remaining 6 MB at 2/4=0.5 MB/s -> 12 more s.
	if !almostEq(doneAt, 14, 1e-9) {
		t.Fatalf("stepped transfer finished at %v, want 14", doneAt)
	}
}

func TestSameHostSendIsFree(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 1, 1, nil)
	var doneAt float64 = -1
	tp.Send("a", "a", 100, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 0 {
		t.Fatalf("local send finished at %v, want 0", doneAt)
	}
}

func TestZeroSizeTransferPaysLatencyOnly(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0.25, 1, nil)
	var doneAt float64
	tp.Send("a", "b", 0, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(doneAt, 0.25, 1e-9) {
		t.Fatalf("zero-size transfer at %v, want 0.25", doneAt)
	}
}

func TestMultiHopRoute(t *testing.T) {
	eng := sim.NewEngine()
	tp := NewTopology(eng)
	tp.AddHost(HostSpec{Name: "x", Speed: 1, MemoryMB: 1})
	tp.AddHost(HostSpec{Name: "y", Speed: 1, MemoryMB: 1})
	l1 := tp.AddLink(LinkSpec{Name: "l1", Latency: 0.1, Bandwidth: 10})
	l2 := tp.AddLink(LinkSpec{Name: "l2", Latency: 0.2, Bandwidth: 2})
	tp.AddRouter("r")
	tp.Attach("x", l1)
	tp.Attach("r", l1)
	tp.Attach("r", l2)
	tp.Attach("y", l2)
	tp.Finalize()

	if got := len(tp.Route("x", "y")); got != 2 {
		t.Fatalf("route length %d, want 2", got)
	}
	if lat := tp.RouteLatency("x", "y"); !almostEq(lat, 0.3, 1e-12) {
		t.Fatalf("route latency %v, want 0.3", lat)
	}
	if bw := tp.RouteDedicatedBandwidth("x", "y"); bw != 2 {
		t.Fatalf("bottleneck bandwidth %v, want 2", bw)
	}

	var doneAt float64
	tp.Send("x", "y", 4, func() { doneAt = eng.Now() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 0.3 latency + 4 MB at bottleneck 2 MB/s = 2.3.
	if !almostEq(doneAt, 2.3, 1e-9) {
		t.Fatalf("multi-hop transfer finished at %v, want 2.3", doneAt)
	}
}

func TestAvailableBandwidthSensing(t *testing.T) {
	eng := sim.NewEngine()
	tp := pairTopology(eng, 0, 4, load.Constant(1))
	l := tp.Link("wire")
	if bw := l.AvailableBandwidth(); !almostEq(bw, 2, 1e-12) {
		t.Fatalf("available bandwidth %v, want 2 (one cross stream)", bw)
	}
	tp.Send("a", "b", 100, nil)
	if err := eng.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	if bw := l.AvailableBandwidth(); !almostEq(bw, 4.0/3, 1e-12) {
		t.Fatalf("available bandwidth with transfer %v, want 4/3", bw)
	}
}
