package grid

import (
	"fmt"

	"apples/internal/load"
	"apples/internal/sim"
)

// ClusterOptions configures ClusterOfClusters.
type ClusterOptions struct {
	Clusters   int // number of sites (default 4)
	PerCluster int // hosts per site (default 4)
	Seed       int64
	Quiet      bool
	// BaseSpeed is the slowest host speed; hosts within a cluster vary
	// from BaseSpeed up to ~2x (default 20 Mflop/s).
	BaseSpeed float64
}

func (o *ClusterOptions) setDefaults() {
	if o.Clusters == 0 {
		o.Clusters = 4
	}
	if o.PerCluster == 0 {
		o.PerCluster = 4
	}
	if o.BaseSpeed == 0 {
		o.BaseSpeed = 20
	}
}

// ClusterOfClusters builds a larger metacomputer than the paper's
// testbed: `Clusters` sites, each with `PerCluster` heterogeneous
// workstations on a fast local switch, joined by a shared wide-area
// backbone through per-site gateways. It exists to exercise scheduling
// beyond the exhaustive-subset regime (the Resource Selector switches to
// desirability prefixes past 12 hosts) and to measure how the agent
// scales with pool size.
func ClusterOfClusters(eng *sim.Engine, opt ClusterOptions) *Topology {
	opt.setDefaults()
	tp := NewTopology(eng)
	rng := sim.NewRand(opt.Seed)

	backbone := tp.AddLink(LinkSpec{
		Name: "backbone", Latency: 0.005, Bandwidth: 8,
		CrossTraffic: func() load.Source {
			if opt.Quiet {
				return nil
			}
			return load.NewAR1(rng.Fork(), 10, 0.7, 0.85, 0.3)
		}(),
	})

	for c := 0; c < opt.Clusters; c++ {
		site := fmt.Sprintf("site%d", c)
		sw := tp.AddLink(LinkSpec{
			Name: site + "-switch", Latency: 0.0005, Bandwidth: 12,
			CrossTraffic: func() load.Source {
				if opt.Quiet {
					return nil
				}
				return load.NewAR1(rng.Fork(), 10, 0.3, 0.8, 0.15)
			}(),
		})
		gw := site + "-gw"
		tp.AddRouter(gw)
		tp.Attach(gw, sw)
		tp.Attach(gw, backbone)

		for i := 0; i < opt.PerCluster; i++ {
			name := fmt.Sprintf("%s-h%d", site, i)
			// Speeds vary deterministically within the cluster.
			speed := opt.BaseSpeed * (1 + float64((c+i)%4)*0.33)
			var src load.Source
			if !opt.Quiet {
				src = load.NewComposite(
					load.NewAR1(rng.Fork(), 5, 0.3+0.3*float64(i%3), 0.85, 0.25),
					load.NewSpikes(rng.Fork(), 300, 40, 0, float64(1+i%2)),
				)
			}
			tp.AddHost(HostSpec{
				Name: name, Arch: "ws", Site: site,
				Speed: speed, MemoryMB: 128,
				Features: []string{"kelp", "pvm"},
				Load:     src,
			})
			tp.Attach(name, sw)
		}
	}
	tp.Finalize()
	return tp
}
