// Package userspec implements the User Specifications (US) component of an
// AppLeS agent: the user's performance criterion, access rights, resource
// preferences, and implementation constraints (Sections 3.1, 3.5, 4.1).
//
// User specifications act as a filter over the resources and schedules the
// agent may consider — the paper's examples are the CLEO/NILE requirement
// that every processor run a CORBA ORB, and the Jacobi2D user's directive
// that only strip decompositions be planned.
package userspec

import (
	"fmt"
	"sort"

	"apples/internal/grid"
)

// Metric is the user's individual performance criterion (Section 3.1).
type Metric int

const (
	// MinExecutionTime minimizes wall-clock execution time (Jacobi2D).
	MinExecutionTime Metric = iota
	// MaxSpeedup maximizes speedup over the best single-machine run
	// (3D-REACT).
	MaxSpeedup
	// MinCost minimizes charged resource cost (cycle cost weighted time).
	MinCost
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MinExecutionTime:
		return "min-execution-time"
	case MaxSpeedup:
		return "max-speedup"
	case MinCost:
		return "min-cost"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Spec is one user's scheduling directives.
type Spec struct {
	// Metric selects the objective the Performance Estimator optimizes.
	Metric Metric

	// Accessible lists hosts the user has accounts on. Empty means all
	// hosts in the topology.
	Accessible []string
	// Logins records the login identifier per host or site, used by the
	// Actuator. Purely informational to scheduling but part of the US in
	// the paper.
	Logins map[string]string
	// Excluded hosts are never considered.
	Excluded []string
	// RequiredFeatures must all be advertised by a host (e.g. "corba").
	RequiredFeatures []string
	// PreferredSites, when non-empty, orders candidate resources so these
	// administrative domains are tried first.
	PreferredSites []string

	// Decomposition restricts the Planner's strategy; Jacobi2D's user
	// specified "strip" because non-strip predictions were too complex.
	Decomposition string

	// MaxResourceSets caps how many candidate resource sets the Resource
	// Selector may hand to the Planner (0 = planner default).
	MaxResourceSets int

	// MinHostMemoryMB filters out hosts too small to matter, and
	// CostPerCPUHour supports the MinCost metric.
	MinHostMemoryMB float64
	CostPerCPUHour  map[string]float64
}

// Filter returns the hosts the user may schedule on, in deterministic
// order: preferred sites first, then by descending dedicated speed, then
// name. This is the "feasible resource" filtering step of Section 4.2.
func (s *Spec) Filter(hosts []*grid.Host) []*grid.Host {
	allowed := map[string]bool{}
	for _, n := range s.Accessible {
		allowed[n] = true
	}
	excluded := map[string]bool{}
	for _, n := range s.Excluded {
		excluded[n] = true
	}
	prefSite := map[string]int{}
	for i, site := range s.PreferredSites {
		prefSite[site] = len(s.PreferredSites) - i
	}

	var out []*grid.Host
	for _, h := range hosts {
		if len(allowed) > 0 && !allowed[h.Name] {
			continue
		}
		if excluded[h.Name] {
			continue
		}
		if h.MemoryMB < s.MinHostMemoryMB {
			continue
		}
		ok := true
		for _, f := range s.RequiredFeatures {
			if !h.HasFeature(f) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := prefSite[out[i].Site], prefSite[out[j].Site]
		if pi != pj {
			return pi > pj
		}
		if out[i].Speed != out[j].Speed {
			return out[i].Speed > out[j].Speed
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CostRate returns the user's charge rate for a host in cost units per CPU
// hour (0 when unknown), for the MinCost metric.
func (s *Spec) CostRate(host string) float64 {
	return s.CostPerCPUHour[host]
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	seen := map[string]bool{}
	for _, n := range s.Accessible {
		if seen[n] {
			return fmt.Errorf("userspec: duplicate accessible host %q", n)
		}
		seen[n] = true
	}
	for _, n := range s.Excluded {
		if seen[n] {
			return fmt.Errorf("userspec: host %q both accessible and excluded", n)
		}
	}
	if s.MaxResourceSets < 0 {
		return fmt.Errorf("userspec: negative MaxResourceSets")
	}
	if s.MinHostMemoryMB < 0 {
		return fmt.Errorf("userspec: negative MinHostMemoryMB")
	}
	return nil
}
