package userspec

import (
	"strings"
	"testing"

	"apples/internal/grid"
	"apples/internal/sim"
)

func testbed(t *testing.T) *grid.Topology {
	t.Helper()
	return grid.SDSCPCL(sim.NewEngine(), grid.TestbedOptions{Seed: 1, Quiet: true, WithSP2: true})
}

func names(hosts []*grid.Host) []string {
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = h.Name
	}
	return out
}

func TestFilterEmptySpecKeepsAll(t *testing.T) {
	tp := testbed(t)
	s := &Spec{}
	got := s.Filter(tp.Hosts())
	if len(got) != 10 {
		t.Fatalf("empty spec filtered to %d hosts, want 10", len(got))
	}
}

func TestFilterAccessible(t *testing.T) {
	tp := testbed(t)
	s := &Spec{Accessible: []string{"alpha1", "sparc2"}}
	got := names(s.Filter(tp.Hosts()))
	if len(got) != 2 {
		t.Fatalf("accessible filter -> %v", got)
	}
}

func TestFilterExcluded(t *testing.T) {
	tp := testbed(t)
	s := &Spec{Excluded: []string{"sparc2"}}
	for _, n := range names(s.Filter(tp.Hosts())) {
		if n == "sparc2" {
			t.Fatal("excluded host survived filter")
		}
	}
}

func TestFilterRequiredFeature(t *testing.T) {
	tp := testbed(t)
	// Only the alphas advertise corba in the testbed (the paper's
	// CLEO/NILE constraint).
	s := &Spec{RequiredFeatures: []string{"corba"}}
	got := names(s.Filter(tp.Hosts()))
	if len(got) != 4 {
		t.Fatalf("corba filter -> %v, want the 4 alphas", got)
	}
	for _, n := range got {
		if !strings.HasPrefix(n, "alpha") {
			t.Fatalf("corba filter admitted %s", n)
		}
	}
}

func TestFilterMemoryFloor(t *testing.T) {
	tp := testbed(t)
	s := &Spec{MinHostMemoryMB: 100}
	for _, h := range s.Filter(tp.Hosts()) {
		if h.MemoryMB < 100 {
			t.Fatalf("memory floor admitted %s with %v MB", h.Name, h.MemoryMB)
		}
	}
}

func TestFilterOrderPreferredSitesFirst(t *testing.T) {
	tp := testbed(t)
	s := &Spec{PreferredSites: []string{"PCL"}}
	got := s.Filter(tp.Hosts())
	if got[0].Site != "PCL" {
		t.Fatalf("first host %s at %s, want PCL first", got[0].Name, got[0].Site)
	}
	// Within PCL, fastest first.
	if got[0].Name != "rs6000a" {
		t.Fatalf("fastest PCL host first: got %s", got[0].Name)
	}
}

func TestFilterOrderBySpeedThenName(t *testing.T) {
	tp := testbed(t)
	s := &Spec{}
	got := s.Filter(tp.Hosts())
	for i := 1; i < len(got); i++ {
		if got[i-1].Speed < got[i].Speed {
			t.Fatalf("hosts not ordered by descending speed: %v", names(got))
		}
	}
	if got[0].Name != "sp2a" {
		t.Fatalf("fastest host first: got %s", got[0].Name)
	}
}

func TestValidate(t *testing.T) {
	good := &Spec{Accessible: []string{"a", "b"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Spec{Accessible: []string{"a", "a"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate accessible host accepted")
	}
	bad2 := &Spec{Accessible: []string{"a"}, Excluded: []string{"a"}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("accessible+excluded host accepted")
	}
	bad3 := &Spec{MaxResourceSets: -1}
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative MaxResourceSets accepted")
	}
}

func TestMetricString(t *testing.T) {
	if MinExecutionTime.String() != "min-execution-time" ||
		MaxSpeedup.String() != "max-speedup" ||
		MinCost.String() != "min-cost" {
		t.Fatal("metric strings wrong")
	}
}

func TestCostRate(t *testing.T) {
	s := &Spec{CostPerCPUHour: map[string]float64{"c90": 500}}
	if s.CostRate("c90") != 500 || s.CostRate("ghost") != 0 {
		t.Fatal("CostRate lookup wrong")
	}
}
