package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names. Subsystems resolve handles for these once at
// construction; the plain-text dump and the CLIs key on the same names.
const (
	// Scheduling rounds (core.Coordinator).
	MetricRounds               = "sched_rounds_total"
	MetricCandidatesEvaluated  = "sched_candidates_evaluated_total"
	MetricCandidatesPruned     = "sched_candidates_pruned_total"
	MetricCandidatesInfeasible = "sched_candidates_infeasible_total"
	MetricRoundSeconds         = "sched_round_seconds"
	MetricSnapshotSeconds      = "sched_snapshot_seconds"
	// MetricCandidates is the base name of the per-selector candidate
	// counter family; concrete series carry a selector label in the
	// registry key, e.g. `sched_candidates_total{selector="greedy"}`
	// (see NameWithLabels).
	MetricCandidates = "sched_candidates_total"
	// MetricSelectorTruncated counts rounds whose selector capped its
	// enumeration (the EvTruncated trace event).
	MetricSelectorTruncated = "sched_selector_truncated_total"
	// MetricRoundDeltaRatio is the fraction of the frozen candidate
	// universe re-scored by the most recent delta-aware session round
	// (0 on a carried round, 1 on a cold or full round).
	MetricRoundDeltaRatio = "sched_round_delta_ratio"
	// MetricCandidatesRescored counts candidate sets re-planned by
	// delta-aware session rounds across the process lifetime.
	MetricCandidatesRescored = "sched_candidates_rescored_total"
	// Multi-tenant scheduling service (core.SchedService).
	// MetricTenantRounds and MetricTenantRoundSeconds are per-tenant
	// label families: concrete series carry a tenant label in the
	// registry key, e.g. `sched_tenant_rounds_total{tenant="t3"}`.
	MetricTenantRounds       = "sched_tenant_rounds_total"
	MetricTenantRoundSeconds = "sched_tenant_round_seconds"
	// MetricQueueDepth is the service's admitted-but-unfinished request
	// count; MetricQueueRejected counts submissions bounced with
	// ErrQueueFull.
	MetricQueueDepth    = "sched_queue_depth"
	MetricQueueRejected = "sched_queue_rejected_total"
	// MetricSnapshotShared is the running fraction of service rounds that
	// reused a cache-shared snapshot instead of freezing their own;
	// MetricSnapshotBuilds and MetricSnapshotReused are the underlying
	// counters.
	MetricSnapshotShared = "sched_snapshot_shared_ratio"
	MetricSnapshotBuilds = "sched_snapshot_builds_total"
	MetricSnapshotReused = "sched_snapshot_reused_total"
	// MetricTenantFairness is the max/min completed-round ratio across
	// tenants that have finished at least one round (1 = perfectly fair).
	MetricTenantFairness = "sched_tenant_fairness_ratio"
	// Sensing (nws.Service).
	MetricBankUpdates  = "nws_bank_updates_total"
	MetricSensorSweeps = "nws_sensor_sweeps_total"
	// Durable measurement store (mstore.Store): segment count, appended
	// bytes, and the per-append latency distribution.
	MetricStoreSegments      = "mstore_segments"
	MetricStoreBytes         = "mstore_appended_bytes_total"
	MetricStoreAppendSeconds = "mstore_append_seconds"
	// Simulation (sim.Engine).
	MetricSimEvents = "sim_events_total"
	// Forecast & decision audit (audit.Engine).
	// MetricPredictionError is the |predicted-actual| distribution of
	// joined scheduling decisions, in seconds.
	MetricPredictionError = "sched_prediction_error_seconds"
	// MetricForecastSkill is a per-series label family: concrete gauges
	// carry kind/series/forecaster labels in the registry key, e.g.
	// `nws_forecast_skill{kind="cpu",series="alpha1",forecaster="ar1"}`,
	// holding 1 - MAE/MAE_naive against the last-value baseline.
	MetricForecastSkill = "nws_forecast_skill"
	// MetricDriftAlarms counts Page-Hinkley alarms across every decision
	// and forecaster drift detector.
	MetricDriftAlarms = "audit_drift_alarms_total"
	// Join bookkeeping: predictions joined with an actual, actuals that
	// found no standing prediction, predictions whose actual never came
	// inside the TTL, and the current outstanding-prediction count.
	MetricAuditJoined   = "audit_joined_total"
	MetricAuditOrphaned = "audit_orphaned_total"
	MetricAuditExpired  = "audit_expired_total"
	MetricAuditPending  = "audit_pending"
	// Serving-process self-description (see EnableRuntime).
	MetricGoroutines    = "go_goroutines"
	MetricHeapBytes     = "go_heap_alloc_bytes"
	MetricGCPauseTotal  = "go_gc_pause_seconds_total"
	MetricGCCycles      = "go_gc_cycles_total"
	MetricProcessUptime = "process_uptime_seconds"
)

// DefaultLatencyBuckets are the upper bounds (seconds) used for the
// round- and snapshot-latency histograms: decades from 10µs to 10s.
var DefaultLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// StoreAppendBuckets are the bounds for mstore_append_seconds: a
// buffered append is sub-microsecond, a rotation pays an fsync, so the
// decades run from 100ns to 100ms.
var StoreAppendBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// PredictionErrorBuckets are the bounds for the
// sched_prediction_error_seconds histogram. Decision errors live on
// the scale of application runtimes (seconds to hours), not scheduler
// latencies, so the edges run from 100ms to an hour.
var PredictionErrorBuckets = []float64{0.1, 1, 10, 60, 300, 1800, 3600}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float value (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. The bounds are
// upper edges in ascending order with an implicit +Inf bucket at the
// end; Observe is a linear scan plus three atomic updates — no
// allocation, no lock — so it is safe on the scheduling hot path.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank — the same estimator as PromQL's histogram_quantile. The
// first bucket interpolates from lower edge 0 (observations here are
// non-negative latencies); a rank landing in the +Inf overflow bucket
// reports the highest finite bound, since no upper edge exists to
// interpolate toward. Returns NaN for an empty histogram or q outside
// [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(n)
	var cum float64
	for i := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return lower
			}
			return lower + (h.bounds[i]-lower)*(rank-cum)/c
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the bucket upper bounds and their counts (the last
// count is the +Inf overflow bucket). The slices are fresh copies.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// Metrics is a named registry of counters, gauges, and histograms.
// Lookup (get-or-create) takes a lock and may allocate; handles are
// meant to be resolved once at construction and then updated atomically,
// keeping instrumented hot paths allocation-free. All methods are safe
// for concurrent use.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// rt, when non-nil, refreshes the serving-process gauges before
	// each exposition (see EnableRuntime).
	rt atomic.Pointer[runtimeCollector]
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls keep the original bounds; nil
// bounds default to DefaultLatencyBuckets).
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		h = newHistogram(bounds)
		m.histograms[name] = h
	}
	return h
}

// WriteTo renders the registry as a plain-text dump, one metric per
// line sorted by name — the `apples -metrics` output format:
//
//	counter sched_rounds_total 42
//	gauge   ...
//	hist    sched_round_seconds count=42 sum=0.103 mean=0.002 p50=0.0018 p95=0.009 p99=0.03 le{0.00001:0 ...}
//
// The p50/p95/p99 columns are bucket-interpolated estimates (see
// Quantile); WritePrometheus exposes the same registry in Prometheus
// text format instead.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.collectRuntime()
	m.mu.Lock()
	defer m.mu.Unlock()
	var sb strings.Builder
	names := make([]string, 0, len(m.counters))
	for n := range m.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "counter %-34s %d\n", n, m.counters[n].Value())
	}
	names = names[:0]
	for n := range m.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "gauge   %-34s %g\n", n, m.gauges[n].Value())
	}
	names = names[:0]
	for n := range m.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.histograms[n]
		bounds, counts := h.Buckets()
		fmt.Fprintf(&sb, "hist    %-34s count=%d sum=%g mean=%g p50=%.4g p95=%.4g p99=%.4g le{",
			n, h.Count(), h.Sum(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		for i, b := range bounds {
			fmt.Fprintf(&sb, "%g:%d ", b, counts[i])
		}
		fmt.Fprintf(&sb, "+Inf:%d}\n", counts[len(counts)-1])
	}
	k, err := io.WriteString(w, sb.String())
	return int64(k), err
}
