package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// helpFor documents the canonical metric families for the Prometheus
// exposition. Families not listed here are exposed without a HELP line.
var helpFor = map[string]string{
	MetricRounds:               "Scheduling rounds completed by the Coordinator.",
	MetricCandidatesEvaluated:  "Candidate resource sets planned and estimated.",
	MetricCandidatesPruned:     "Candidate resource sets skipped by the lower-bound prune.",
	MetricCandidatesInfeasible: "Candidate resource sets the planner rejected.",
	MetricRoundSeconds:         "End-to-end scheduling round latency in seconds.",
	MetricSnapshotSeconds:      "Information-snapshot build latency in seconds.",
	MetricStageSeconds:         "Per-stage latency of the scheduling round in seconds.",
	MetricBankUpdates:          "Forecaster-bank absorptions (one per watched resource per sweep).",
	MetricSensorSweeps:         "NWS batch sensor sweeps completed.",
	MetricSimEvents:            "Discrete-event simulator events dispatched.",
	MetricPredictionError:      "Absolute error of joined scheduling predictions in seconds.",
	MetricForecastSkill:        "Forecast skill 1 - MAE/MAE_naive vs the last-value baseline.",
	MetricDriftAlarms:          "Page-Hinkley drift alarms across decision and forecaster detectors.",
	MetricAuditJoined:          "Predictions joined with an observed actual.",
	MetricAuditOrphaned:        "Actuals that found no standing prediction.",
	MetricAuditExpired:         "Predictions whose actual never arrived inside the TTL.",
	MetricAuditPending:         "Outstanding predictions awaiting their actual.",
	MetricGoroutines:           "Live goroutines in the serving process.",
	MetricHeapBytes:            "Heap bytes currently allocated and in use.",
	MetricGCPauseTotal:         "Cumulative stop-the-world GC pause seconds.",
	MetricGCCycles:             "Completed GC cycles.",
	MetricProcessUptime:        "Seconds since the metrics registry enabled runtime collection.",
}

// escapeLabelValue applies Prometheus label-value escaping: backslash,
// double quote, and newline must be escaped inside the quotes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp applies HELP-line escaping: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitName splits a registry key into its base metric name and the raw
// label body (without braces, "" when unlabeled). Keys are built by
// NameWithLabels, so the body is already escaped for re-emission.
func splitName(key string) (base, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], strings.TrimSuffix(key[i+1:], "}")
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest float64 round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case v > 1.7e308:
		return "+Inf"
	case v < -1.7e308:
		return "-Inf"
	case v != v:
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series is one registry entry regrouped for exposition.
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is every series sharing one base metric name; the exposition
// format requires them contiguous under a single TYPE header.
type family struct {
	base string
	typ  string // "counter", "gauge", "histogram"
	ss   []series
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per metric family, labeled
// series grouped under their family, histograms as cumulative
// `_bucket{le="..."}` series closed by `le="+Inf"` plus `_sum` and
// `_count`. Registry keys of the form `name{label="value"}` (see
// NameWithLabels) expose as natively labeled series. Families are
// emitted in name order, series within a family in label order, so the
// output is deterministic. A name collision across instrument kinds
// (the same base registered as, say, counter and gauge) would be
// invalid exposition; the registry's canonical names keep kinds
// disjoint, and such series are emitted under separate TYPE headers
// anyway.
func (m *Metrics) WritePrometheus(w io.Writer) (int64, error) {
	m.collectRuntime()
	m.mu.Lock()
	fams := map[string]*family{}
	add := func(key, typ string, s series) {
		base, labels := splitName(key)
		s.labels = labels
		// Kind-collision guard: keep one family per (base, kind).
		fk := base + " " + typ
		f := fams[fk]
		if f == nil {
			f = &family{base: base, typ: typ}
			fams[fk] = f
		}
		f.ss = append(f.ss, s)
	}
	for k, c := range m.counters {
		add(k, "counter", series{c: c})
	}
	for k, g := range m.gauges {
		add(k, "gauge", series{g: g})
	}
	for k, h := range m.histograms {
		add(k, "histogram", series{h: h})
	}
	m.mu.Unlock()

	order := make([]*family, 0, len(fams))
	for _, f := range fams {
		sort.Slice(f.ss, func(i, j int) bool { return f.ss[i].labels < f.ss[j].labels })
		order = append(order, f)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].base != order[j].base {
			return order[i].base < order[j].base
		}
		return order[i].typ < order[j].typ
	})

	var sb strings.Builder
	for _, f := range order {
		if help := helpFor[f.base]; help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.base, escapeHelp(help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.base, f.typ)
		for _, s := range f.ss {
			switch {
			case s.c != nil:
				fmt.Fprintf(&sb, "%s%s %d\n", f.base, wrapLabels(s.labels), s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&sb, "%s%s %s\n", f.base, wrapLabels(s.labels), formatFloat(s.g.Value()))
			case s.h != nil:
				writeHistogram(&sb, f.base, s.labels, s.h)
			}
		}
	}
	k, err := io.WriteString(w, sb.String())
	return int64(k), err
}

// wrapLabels re-braces a raw label body ("" stays "").
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// writeHistogram emits one histogram series: cumulative buckets with the
// le label merged after any existing labels, then _sum and _count.
func writeHistogram(sb *strings.Builder, base, labels string, h *Histogram) {
	bounds, counts := h.Buckets()
	prefix := labels
	if prefix != "" {
		prefix += ","
	}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(sb, "%s_bucket{%sle=%q} %d\n", base, prefix, formatFloat(b), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(sb, "%s_bucket{%sle=\"+Inf\"} %d\n", base, prefix, cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", base, wrapLabels(labels), formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", base, wrapLabels(labels), h.Count())
}
