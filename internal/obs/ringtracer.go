package obs

import "sync"

// RingTracer is a bounded in-memory trace sink holding the most recent
// N events — the backing store of the observability server's
// /trace/recent endpoint. Unlike Collector it never grows: a long
// agent run can leave it attached forever and memory stays O(N).
//
// Emit is wait-free with respect to I/O (nothing is encoded or
// written) and its critical section is a fixed-size slot store plus a
// cursor bump, so emitters on the scheduling hot path never block on a
// reader draining the ring; readers copy the live window out under the
// same short lock.
type RingTracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever emitted; also assigns Seq
}

// NewRingTracer returns a ring retaining the last n events (n < 1 is
// clamped to 1).
func NewRingTracer(n int) *RingTracer {
	if n < 1 {
		n = 1
	}
	return &RingTracer{buf: make([]Event, n)}
}

// Emit implements Tracer: the event takes the next Seq and overwrites
// the oldest retained slot.
func (r *RingTracer) Emit(e Event) {
	r.mu.Lock()
	r.total++
	e.Seq = r.total
	r.buf[(r.total-1)%uint64(len(r.buf))] = e
	r.mu.Unlock()
}

// Cap reports the ring's capacity.
func (r *RingTracer) Cap() int { return len(r.buf) }

// Total reports how many events have ever been emitted (retained or
// evicted).
func (r *RingTracer) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len reports how many events are currently retained.
func (r *RingTracer) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(min64(r.total, uint64(len(r.buf))))
}

// Recent returns up to k retained events, oldest first (newest last),
// as a fresh slice. k <= 0 returns everything retained.
func (r *RingTracer) Recent(k int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(min64(r.total, uint64(len(r.buf))))
	if k <= 0 || k > n {
		k = n
	}
	out := make([]Event, k)
	for i := 0; i < k; i++ {
		// Walk backwards from the newest slot.
		seq := r.total - uint64(k-1-i)
		out[i] = r.buf[(seq-1)%uint64(len(r.buf))]
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
