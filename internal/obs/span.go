package obs

import (
	"strings"
	"time"
)

// Stage names for the spans the blueprint round and the NWS emit. One
// scheduling round times, in order: the information-snapshot build, the
// resource-selection enumeration, the plan+estimate fan-out, and the
// reduce/winner step; Run additionally times actuation, and the NWS
// times each batch sensor sweep. All stages share one histogram family,
// MetricStageSeconds, labeled by stage name.
const (
	StageSnapshot     = "snapshot"
	StageSelect       = "select"
	StagePlanEstimate = "plan_estimate"
	StageReduce       = "reduce"
	StageActuate      = "actuate"
	StageSweep        = "sensor_sweep"
)

// MetricStageSeconds is the base name of the per-stage latency histogram
// family. Concrete series carry a stage label in the registry key, e.g.
// `sched_stage_seconds{stage="select"}`; WritePrometheus renders the
// label natively and WriteTo prints the key verbatim.
const MetricStageSeconds = "sched_stage_seconds"

// StageMetricName returns the registry key of one stage's latency
// histogram: MetricStageSeconds with the stage label attached.
func StageMetricName(stage string) string {
	return NameWithLabels(MetricStageSeconds, "stage", stage)
}

// NameWithLabels builds a labeled registry key — base followed by
// `{k1="v1",k2="v2"}` with Prometheus label-value escaping — from
// alternating key/value pairs. With no pairs it returns base unchanged.
// The registry treats the whole key as an opaque name; WritePrometheus
// parses it back into name and labels.
func NameWithLabels(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: NameWithLabels needs key/value pairs")
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(kv[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// monotonicBase anchors the default clock so spans measure elapsed
// monotonic time (time.Since reads the monotonic component).
var monotonicBase = time.Now()

// defaultClock is the wall clock in monotonic seconds since process
// start — what a StageTimer uses when no clock is injected.
func defaultClock() float64 { return time.Since(monotonicBase).Seconds() }

// StageTimer hands out Spans that record stage wall-time into per-stage
// histograms and, when a tracer is attached, emit an EvSpan event on
// End. The clock is injectable (seconds, monotonic) so simulations and
// golden-trace tests stay deterministic; nil means the real monotonic
// clock. A nil *StageTimer is "off": Start returns an inert Span and
// the instrumented call sites reduce to one nil check.
type StageTimer struct {
	clock  func() float64
	tracer Tracer
	m      *Metrics
	// hists caches the known stages' histogram handles, resolved once at
	// construction; the map is never written after NewStageTimer, so
	// concurrent span Ends read it without locking.
	hists map[string]*Histogram
}

// NewStageTimer builds a timer recording into registry m (required),
// tracing span events to tr (nil: histograms only), reading the given
// monotonic-seconds clock (nil: wall clock).
func NewStageTimer(m *Metrics, tr Tracer, clock func() float64) *StageTimer {
	if m == nil {
		panic("obs: NewStageTimer needs a metrics registry")
	}
	if clock == nil {
		clock = defaultClock
	}
	t := &StageTimer{clock: clock, tracer: tr, m: m, hists: make(map[string]*Histogram)}
	for _, s := range []string{StageSnapshot, StageSelect, StagePlanEstimate, StageReduce, StageActuate, StageSweep} {
		t.hists[s] = m.Histogram(StageMetricName(s), nil)
	}
	return t
}

// Start opens a span for one stage of the given round (0 when the stage
// is not tied to a numbered round, e.g. a sensor sweep). Calling Start
// on a nil timer returns an inert span whose End is a no-op.
func (t *StageTimer) Start(round uint64, stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, round: round, start: t.clock()}
}

// Span is one in-flight stage measurement. It is a small value — pass
// it around or defer End directly; the zero Span is inert.
type Span struct {
	t     *StageTimer
	stage string
	round uint64
	start float64
}

// End closes the span: the elapsed clock time is observed into the
// stage's histogram and, when the timer has a tracer, emitted as one
// EvSpan event. End on the zero Span does nothing. Clock regressions
// clamp to zero rather than recording negative time.
func (s Span) End() {
	if s.t == nil {
		return
	}
	dur := s.t.clock() - s.start
	if dur < 0 {
		dur = 0
	}
	h := s.t.hists[s.stage]
	if h == nil {
		// Unknown stage: resolve through the registry (slow path; all
		// blueprint stages are pre-resolved).
		h = s.t.m.Histogram(StageMetricName(s.stage), nil)
	}
	h.Observe(dur)
	if s.t.tracer != nil {
		s.t.tracer.Emit(Event{Round: s.round, Type: EvSpan, Stage: s.stage, Seconds: dur})
	}
}
