package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusFormat validates the exposition against the text
// format rules: HELP/TYPE headers, family grouping, cumulative buckets
// closed by +Inf, and _sum/_count companions.
func TestWritePrometheusFormat(t *testing.T) {
	m := NewMetrics()
	m.Counter(MetricRounds).Add(3)
	m.Gauge("pool_size").Set(8.5)
	h := m.Histogram(MetricRoundSeconds, []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 5} {
		h.Observe(v)
	}

	var sb strings.Builder
	if _, err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP sched_rounds_total ",
		"# TYPE sched_rounds_total counter",
		"sched_rounds_total 3",
		"# TYPE pool_size gauge",
		"pool_size 8.5",
		"# HELP sched_round_seconds ",
		"# TYPE sched_round_seconds histogram",
		`sched_round_seconds_bucket{le="0.001"} 1`,
		`sched_round_seconds_bucket{le="0.01"} 2`,
		`sched_round_seconds_bucket{le="0.1"} 3`,
		`sched_round_seconds_bucket{le="+Inf"} 4`,
		"sched_round_seconds_sum 5.0555",
		"sched_round_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// TYPE must precede the family's first sample.
	typeIdx := strings.Index(out, "# TYPE sched_round_seconds histogram")
	sampleIdx := strings.Index(out, "sched_round_seconds_bucket")
	if typeIdx < 0 || sampleIdx < typeIdx {
		t.Fatalf("TYPE header does not precede samples:\n%s", out)
	}
}

// TestWritePrometheusLabeledHistogram: stage-labeled registry keys
// expose as natively labeled series with le merged after the stage
// label, and the whole family sits under one TYPE header.
func TestWritePrometheusLabeledHistogram(t *testing.T) {
	m := NewMetrics()
	m.Histogram(StageMetricName(StageSelect), []float64{0.01}).Observe(0.005)
	m.Histogram(StageMetricName(StageReduce), []float64{0.01}).Observe(0.5)

	var sb strings.Builder
	if _, err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if got := strings.Count(out, "# TYPE sched_stage_seconds histogram"); got != 1 {
		t.Fatalf("want exactly one TYPE header for the stage family, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		`sched_stage_seconds_bucket{stage="select",le="0.01"} 1`,
		`sched_stage_seconds_bucket{stage="select",le="+Inf"} 1`,
		`sched_stage_seconds_sum{stage="select"} 0.005`,
		`sched_stage_seconds_count{stage="select"} 1`,
		`sched_stage_seconds_bucket{stage="reduce",le="0.01"} 0`,
		`sched_stage_seconds_bucket{stage="reduce",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusEscaping: label values and HELP text must escape
// backslash, quote, and newline per the format rules.
func TestWritePrometheusEscaping(t *testing.T) {
	m := NewMetrics()
	m.Counter(NameWithLabels("weird_total", "path", "a\\b\"c\nd")).Inc()

	var sb strings.Builder
	if _, err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `weird_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped sample %q missing:\n%s", want, out)
	}
	if strings.Contains(out, "c\nd") {
		t.Fatalf("raw newline leaked into a label value:\n%s", out)
	}
}

// TestWritePrometheusDeterministic: two renders of the same registry
// are byte-identical (families and series are sorted).
func TestWritePrometheusDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Counter("b_total").Inc()
	m.Counter("a_total").Inc()
	m.Gauge("z").Set(1)
	m.Histogram(StageMetricName(StageSweep), nil).Observe(0.1)
	m.Histogram(StageMetricName(StageActuate), nil).Observe(0.2)

	var one, two strings.Builder
	if _, err := m.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("non-deterministic exposition:\n%s\n---\n%s", one.String(), two.String())
	}
	if idx := strings.Index(one.String(), "a_total 1"); idx < 0 || idx > strings.Index(one.String(), "b_total 1") {
		t.Fatalf("families not name-sorted:\n%s", one.String())
	}
}
