package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSpanRecordsHistogramAndEvent closes spans under an injected clock
// and checks both outputs: the stage-labeled histogram observation and
// the EvSpan trace event.
func TestSpanRecordsHistogramAndEvent(t *testing.T) {
	m := NewMetrics()
	col := NewCollector()
	now := 0.0
	st := NewStageTimer(m, col, func() float64 { return now })

	sp := st.Start(7, StageSelect)
	now = 0.25
	sp.End()

	h := m.Histogram(StageMetricName(StageSelect), nil)
	if h.Count() != 1 || h.Sum() != 0.25 {
		t.Fatalf("histogram count=%d sum=%v, want 1 observation of 0.25", h.Count(), h.Sum())
	}
	evs := col.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Type != EvSpan || e.Stage != StageSelect || e.Seconds != 0.25 || e.Round != 7 {
		t.Fatalf("span event = %+v", e)
	}
}

// TestSpanNilSafety: a nil timer and the zero Span are inert.
func TestSpanNilSafety(t *testing.T) {
	var st *StageTimer
	sp := st.Start(1, StageSnapshot)
	sp.End() // must not panic
	(Span{}).End()
}

// TestSpanClockRegressionClampsToZero: a non-monotonic injected clock
// must not record negative time.
func TestSpanClockRegressionClampsToZero(t *testing.T) {
	m := NewMetrics()
	now := 5.0
	st := NewStageTimer(m, nil, func() float64 { v := now; now -= 1; return v })
	sp := st.Start(0, StageReduce)
	sp.End()
	if got := m.Histogram(StageMetricName(StageReduce), nil).Sum(); got != 0 {
		t.Fatalf("regressing clock recorded %v, want 0", got)
	}
}

// TestSpanUnknownStageResolvesLazily: stages outside the blueprint set
// still record, through the registry slow path.
func TestSpanUnknownStageResolvesLazily(t *testing.T) {
	m := NewMetrics()
	st := NewStageTimer(m, nil, nil)
	st.Start(0, "custom_stage").End()
	if got := m.Histogram(StageMetricName("custom_stage"), nil).Count(); got != 1 {
		t.Fatalf("custom stage count = %d, want 1", got)
	}
}

// TestNameWithLabels pins the registry-key grammar the Prometheus
// exposition parses back, including label-value escaping.
func TestNameWithLabels(t *testing.T) {
	if got := NameWithLabels("m"); got != "m" {
		t.Fatalf("no labels: %q", got)
	}
	if got, want := NameWithLabels("m", "a", "x", "b", "y"), `m{a="x",b="y"}`; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	if got, want := NameWithLabels("m", "a", "q\"\\\n"), `m{a="q\"\\\n"}`; got != want {
		t.Fatalf("escaping: got %q, want %q", got, want)
	}
}

// TestConcurrentSpans drives spans from many goroutines into one
// registry and one ring tracer — exact bookkeeping, and the -race job
// checks the synchronization of the shared stage-timer handles.
func TestConcurrentSpans(t *testing.T) {
	m := NewMetrics()
	ring := NewRingTracer(64)
	st := NewStageTimer(m, ring, nil)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.Start(uint64(w), StagePlanEstimate).End()
			}
		}(w)
	}
	wg.Wait()
	if got := m.Histogram(StageMetricName(StagePlanEstimate), nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := ring.Total(); got != workers*per {
		t.Fatalf("ring total = %d, want %d", got, workers*per)
	}
	if got := ring.Len(); got != 64 {
		t.Fatalf("ring retained %d, want its capacity 64", got)
	}
	for _, e := range ring.Recent(0) {
		if e.Type != EvSpan || e.Stage != StagePlanEstimate {
			t.Fatalf("unexpected ring event %+v", e)
		}
	}
}

// TestWriteToQuantiles: the plain dump now carries p50/p95/p99 columns.
func TestWriteToQuantiles(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat", []float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"p50=0.5", "p95=0.95", "p99=0.99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantile pins exact interpolated values for a
// hand-filled histogram: bounds {1, 2, 4} with counts {2, 4, 2} and 2
// overflow observations (10 total).
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	fill := []struct {
		v float64
		n int
	}{{0.5, 2}, {1.5, 4}, {3, 2}, {9, 2}}
	for _, f := range fill {
		for i := 0; i < f.n; i++ {
			h.Observe(f.v)
		}
	}
	cases := []struct {
		q, want float64
	}{
		// rank = q*10. Bucket cumulative edges: 2 @le=1, 6 @le=2, 8 @le=4.
		{0.0, 0},    // rank 0 → lower edge of the first bucket
		{0.1, 0.5},  // rank 1, first bucket: 0 + 1*(1-0)/2
		{0.2, 1},    // rank 2, exactly the first bucket's edge
		{0.5, 1.75}, // rank 5, second bucket: 1 + 1*(5-2)/4
		{0.8, 4},    // rank 8, exactly the third bucket's edge
		{0.95, 4},   // rank 9.5 → overflow bucket → highest finite bound
		{1.0, 4},    // rank 10 → overflow bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q must return NaN")
	}
	if !math.IsNaN(newHistogram([]float64{1}).Quantile(0.5)) {
		t.Fatal("empty histogram must return NaN")
	}
}

// TestRingTracerWindow pins eviction and ordering semantics.
func TestRingTracerWindow(t *testing.T) {
	r := NewRingTracer(3)
	if r.Cap() != 3 {
		t.Fatalf("cap = %d", r.Cap())
	}
	if got := r.Recent(0); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Type: EvCandidate, Index: i})
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Fatalf("total=%d len=%d, want 5/3", r.Total(), r.Len())
	}
	got := r.Recent(0)
	if len(got) != 3 || got[0].Index != 3 || got[2].Index != 5 {
		t.Fatalf("window = %+v, want indices 3..5 oldest-first", got)
	}
	if got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("seq not preserved across eviction: %+v", got)
	}
	if got = r.Recent(2); len(got) != 2 || got[0].Index != 4 {
		t.Fatalf("Recent(2) = %+v, want the newest two", got)
	}
	if got = r.Recent(99); len(got) != 3 {
		t.Fatalf("Recent(99) = %d events, want all 3 retained", len(got))
	}
	if NewRingTracer(0).Cap() != 1 {
		t.Fatal("capacity must clamp to 1")
	}
}
