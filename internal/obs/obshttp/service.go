package obshttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"apples/internal/core"
	"apples/internal/obs"
)

// ScheduleResponse is the /schedule endpoint's JSON schema: one
// completed service round.
type ScheduleResponse struct {
	Tenant            string   `json:"tenant"`
	Seq               uint64   `json:"seq"`
	Hosts             []string `json:"hosts"`
	PredictedIterTime float64  `json:"predicted_iter_time"`
	PredictedTotal    float64  `json:"predicted_total"`
	InfoSource        string   `json:"info_source"`
	SharedSnapshot    bool     `json:"shared_snapshot"`
	ElapsedMS         float64  `json:"elapsed_ms"`
}

// ServiceHandler extends the observability mux with the multi-tenant
// scheduling endpoints:
//
//	/schedule?tenant=ID&n=SIZE  run one round for a tenant (GET or
//	                            POST), synchronously returning the
//	                            decision as JSON. 404 for an unknown
//	                            tenant, 429 when the admission queue is
//	                            full, 503 when the service is closed.
//	/tenants                    the tenant table as a JSON array
//	                            (core.TenantStatus), plus queue depth,
//	                            shared-snapshot ratio, and fairness in
//	                            the surrounding object.
//
// The metrics registry and ring behave as in Handler and may be nil;
// options (audit endpoints, health components) pass through to it.
func ServiceHandler(svc *core.SchedService, m *obs.Metrics, ring *obs.RingTracer, opts ...ServeOption) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", Handler(m, ring, opts...))
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("tenant")
		if id == "" {
			http.Error(w, "missing tenant parameter", http.StatusBadRequest)
			return
		}
		t, ok := svc.Tenant(id)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown tenant %q", id), http.StatusNotFound)
			return
		}
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad n: want a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		ch, err := t.Submit(n)
		if err != nil {
			switch {
			case errors.Is(err, core.ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			case errors.Is(err, core.ErrServiceClosed):
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		res := <-ch
		if res.Err != nil {
			http.Error(w, res.Err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp := ScheduleResponse{
			Tenant:            res.Tenant,
			Seq:               res.Seq,
			Hosts:             res.Schedule.Hosts,
			PredictedIterTime: res.Schedule.PredictedIterTime,
			PredictedTotal:    res.Schedule.PredictedTotal,
			InfoSource:        res.Schedule.InfoSource,
			SharedSnapshot:    res.SharedSnapshot,
			ElapsedMS:         float64(res.Elapsed) / float64(time.Millisecond),
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
		type tenantsResponse struct {
			Tenants     []core.TenantStatus `json:"tenants"`
			QueueDepth  int                 `json:"queue_depth"`
			SharedRatio float64             `json:"shared_ratio"`
			Fairness    float64             `json:"fairness"`
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(tenantsResponse{
			Tenants:     svc.Tenants(),
			QueueDepth:  svc.QueueDepth(),
			SharedRatio: svc.SharedRatio(),
			Fairness:    svc.Fairness(),
		})
	})
	return mux
}

// ServeService binds addr and serves the scheduling service mux (the
// observability endpoints plus /schedule and /tenants) on a background
// goroutine until Close.
func ServeService(addr string, svc *core.SchedService, m *obs.Metrics, ring *obs.RingTracer, opts ...ServeOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           ServiceHandler(svc, m, ring, opts...),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
