package obshttp

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"apples/internal/core"
	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/nws"
	"apples/internal/obs"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// newTestService assembles a 2-tenant service over the warmed SDSC/PCL
// testbed, with metrics and a ring attached.
func newTestService(t *testing.T) (*core.SchedService, *obs.Metrics, *obs.RingTracer) {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 4})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	info := core.NWSInformation(svc, tp)

	m := obs.NewMetrics()
	ring := obs.NewRingTracer(64)
	sched := core.NewSchedService(core.WithServiceMetrics(m), core.WithServiceTracer(ring))
	t.Cleanup(sched.Close)
	for _, id := range []string{"t0", "t1"} {
		a, err := core.NewAgent(tp, hat.Jacobi2D(400, 5), &userspec.Spec{}, info)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.Register(id, a); err != nil {
			t.Fatal(err)
		}
	}
	return sched, m, ring
}

func TestServiceHandlerSchedule(t *testing.T) {
	sched, m, ring := newTestService(t)
	h := ServiceHandler(sched, m, ring)

	res, body := get(t, h, "/schedule?tenant=t0&n=400")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/schedule status = %d: %s", res.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatalf("/schedule is not JSON: %v\n%s", err, body)
	}
	if sr.Tenant != "t0" || sr.Seq != 1 || len(sr.Hosts) == 0 || sr.PredictedTotal <= 0 {
		t.Fatalf("/schedule response = %+v", sr)
	}

	// Second round for the same tenant: seq advances, snapshot shared.
	_, body = get(t, h, "/schedule?tenant=t0&n=400")
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Seq != 2 || !sr.SharedSnapshot {
		t.Fatalf("second round: seq=%d shared=%v, want 2/true", sr.Seq, sr.SharedSnapshot)
	}

	// Error surface.
	if res, _ := get(t, h, "/schedule?tenant=nobody&n=400"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", res.StatusCode)
	}
	if res, _ := get(t, h, "/schedule?n=400"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing tenant status = %d, want 400", res.StatusCode)
	}
	if res, _ := get(t, h, "/schedule?tenant=t0&n=bogus"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n status = %d, want 400", res.StatusCode)
	}

	// The observability endpoints ride along, now with tenant series.
	res, body = get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	for _, want := range []string{
		`sched_tenant_rounds_total{tenant="t0"} 2`,
		"sched_snapshot_shared_ratio",
		"sched_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServiceHandlerTenants(t *testing.T) {
	sched, m, ring := newTestService(t)
	h := ServiceHandler(sched, m, ring)
	if _, body := get(t, h, "/schedule?tenant=t1&n=400"); !strings.Contains(body, `"tenant":"t1"`) {
		t.Fatalf("warmup round: %s", body)
	}

	res, body := get(t, h, "/tenants")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/tenants status = %d", res.StatusCode)
	}
	var tr struct {
		Tenants     []core.TenantStatus `json:"tenants"`
		QueueDepth  int                 `json:"queue_depth"`
		SharedRatio float64             `json:"shared_ratio"`
		Fairness    float64             `json:"fairness"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/tenants is not JSON: %v\n%s", err, body)
	}
	if len(tr.Tenants) != 2 || tr.Tenants[0].ID != "t0" || tr.Tenants[1].ID != "t1" {
		t.Fatalf("/tenants = %+v", tr.Tenants)
	}
	if tr.Tenants[1].Rounds != 1 || tr.Tenants[1].Kind != "agent" {
		t.Fatalf("t1 status = %+v", tr.Tenants[1])
	}
	if tr.QueueDepth != 0 {
		t.Fatalf("queue depth = %d", tr.QueueDepth)
	}
}

// TestServeServiceRoundTrip exercises the real listener end to end:
// schedule over TCP, then confirm the round landed in the ring trace.
func TestServeServiceRoundTrip(t *testing.T) {
	sched, m, ring := newTestService(t)
	s, err := ServeService("127.0.0.1:0", sched, m, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := http.Get(s.URL() + "/schedule?tenant=t0&n=400")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("live /schedule status = %d", res.StatusCode)
	}
	found := false
	for _, e := range ring.Recent(0) {
		if e.Type == obs.EvTenantRound && e.Tenant == "t0" {
			found = true
		}
	}
	if !found {
		t.Fatal("no tenant_round event in the ring after a live round")
	}
}
