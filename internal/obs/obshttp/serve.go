// Package obshttp serves the obs layer over HTTP: live Prometheus
// metrics, a recent-events trace window, pprof, and a health probe —
// the "operable while serving" counterpart of the post-mortem trace
// file and exit-time metrics dump.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of a Metrics registry
//	/trace/recent  last events of a RingTracer as a JSON array (?n=K)
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard Go profiling handlers
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"apples/internal/obs"
)

// Handler builds the observability mux over a metrics registry and a
// ring of recent trace events. Either may be nil; the corresponding
// endpoint then reports 404 with a hint instead of serving empty data.
func Handler(m *obs.Metrics, ring *obs.RingTracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if m == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := m.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing to rewrite.
			return
		}
	})
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			http.Error(w, "no ring tracer attached", http.StatusNotFound)
			return
		}
		n := 0 // everything retained
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(ring.Recent(n))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener; construct with Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" or "host:0" picks an ephemeral port) and
// serves the observability mux on a background goroutine until Close.
func Serve(addr string, m *obs.Metrics, ring *obs.RingTracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(m, ring),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL reports the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
