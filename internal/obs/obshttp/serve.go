// Package obshttp serves the obs layer over HTTP: live Prometheus
// metrics, a recent-events trace window, pprof, audit reports, and a
// component-health probe — the "operable while serving" counterpart of
// the post-mortem trace file and exit-time metrics dump.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition of a Metrics registry
//	/trace/recent  last events of a RingTracer as a JSON array (?n=K)
//	/healthz       component health as JSON (status "ok"/"degraded")
//	/audit         decision-audit snapshot (with WithAudit)
//	/audit/series  per-series forecast audit (with WithAudit)
//	/debug/pprof/  the standard Go profiling handlers
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"apples/internal/obs"
	"apples/internal/obs/audit"
)

// ComponentCheck probes one component for /healthz: status is "ok" or
// "degraded" (anything else is reported verbatim and counts as not
// ok); detail carries human-readable specifics. Checks run on every
// probe, so they must be cheap and safe for concurrent use.
type ComponentCheck func() (status string, detail []string)

// ServeOption extends the observability mux beyond the core endpoints.
type ServeOption func(*serveConfig)

// WithComponent registers a named component on /healthz; the probe
// aggregates every registered check into the overall status.
func WithComponent(name string, check ComponentCheck) ServeOption {
	return func(c *serveConfig) {
		if check == nil {
			return
		}
		c.components = append(c.components, component{name: name, check: check})
	}
}

// WithAudit mounts the audit engine: /audit serves the decision-audit
// snapshot, /audit/series the per-series forecast audit, and the
// engine's drift state joins /healthz as the "audit" component.
func WithAudit(a *audit.Engine) ServeOption {
	return func(c *serveConfig) {
		if a == nil {
			return
		}
		c.aud = a
		c.components = append(c.components, component{name: "audit", check: a.Health})
	}
}

type component struct {
	name  string
	check ComponentCheck
}

type serveConfig struct {
	components []component
	aud        *audit.Engine
}

// componentHealth is one component's row in the /healthz document.
type componentHealth struct {
	Status string   `json:"status"`
	Detail []string `json:"detail,omitempty"`
}

// healthResponse is the /healthz JSON schema. Status is "ok" only when
// every component is; liveness probes that grep for the substring "ok"
// keep working, and orchestration that parses JSON gets the breakdown.
type healthResponse struct {
	Status        string                     `json:"status"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Components    map[string]componentHealth `json:"components,omitempty"`
}

// Handler builds the observability mux over a metrics registry and a
// ring of recent trace events. Either may be nil; the corresponding
// endpoint then reports 404 with a hint instead of serving empty data.
// A non-nil registry gains the serving-process runtime gauges (a
// /metrics endpoint describes a live process by definition). Options
// mount the audit endpoints and extend /healthz with component checks.
func Handler(m *obs.Metrics, ring *obs.RingTracer, opts ...ServeOption) http.Handler {
	var cfg serveConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if m != nil {
		m.EnableRuntime()
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		resp := healthResponse{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
		}
		if len(cfg.components) > 0 {
			resp.Components = make(map[string]componentHealth, len(cfg.components))
			for _, c := range cfg.components {
				st, detail := c.check()
				sort.Strings(detail)
				resp.Components[c.name] = componentHealth{Status: st, Detail: detail}
				if st != "ok" {
					resp.Status = "degraded"
				}
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if m == nil {
			http.Error(w, "no metrics registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := m.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing to rewrite.
			return
		}
	})
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			http.Error(w, "no ring tracer attached", http.StatusNotFound)
			return
		}
		n := 0 // everything retained
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(ring.Recent(n))
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.aud == nil {
			http.Error(w, "no audit engine attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(cfg.aud.Snapshot())
	})
	mux.HandleFunc("/audit/series", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.aud == nil {
			http.Error(w, "no audit engine attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(cfg.aud.SeriesSnapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability listener; construct with Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" or "host:0" picks an ephemeral port) and
// serves the observability mux on a background goroutine until Close.
func Serve(addr string, m *obs.Metrics, ring *obs.RingTracer, opts ...ServeOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(m, ring, opts...),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL reports the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
