package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"apples/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter(obs.MetricRounds).Inc()
	m.Histogram(obs.StageMetricName(obs.StageSelect), nil).Observe(0.01)
	ring := obs.NewRingTracer(8)
	ring.Emit(obs.Event{Type: obs.EvWinner, Round: 1})
	ring.Emit(obs.Event{Type: obs.EvSpan, Stage: obs.StageSelect, Seconds: 0.01})
	h := Handler(m, ring)

	res, body := get(t, h, "/healthz")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d %q", res.StatusCode, body)
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" {
		t.Fatalf("/healthz status = %q, want ok", health.Status)
	}

	res, body = get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{"sched_rounds_total 1", `sched_stage_seconds_bucket{stage="select",le="+Inf"} 1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	res, body = get(t, h, "/trace/recent")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/trace/recent status = %d", res.StatusCode)
	}
	var evs []obs.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/trace/recent is not a JSON event array: %v\n%s", err, body)
	}
	if len(evs) != 2 || evs[0].Type != obs.EvWinner || evs[1].Stage != obs.StageSelect {
		t.Fatalf("/trace/recent = %+v", evs)
	}

	if _, body = get(t, h, "/trace/recent?n=1"); true {
		if err := json.Unmarshal([]byte(body), &evs); err != nil || len(evs) != 1 || evs[0].Type != obs.EvSpan {
			t.Fatalf("/trace/recent?n=1 = %v %s", err, body)
		}
	}
	if res, _ = get(t, h, "/trace/recent?n=bogus"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d, want 400", res.StatusCode)
	}
	if res, _ = get(t, h, "/trace/recent?n=-3"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative n: status = %d, want 400", res.StatusCode)
	}

	if res, _ = get(t, h, "/debug/pprof/cmdline"); res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", res.StatusCode)
	}
}

func TestHandlerNilBackends(t *testing.T) {
	h := Handler(nil, nil)
	if res, _ := get(t, h, "/metrics"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("nil registry /metrics status = %d, want 404", res.StatusCode)
	}
	if res, _ := get(t, h, "/trace/recent"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("nil ring /trace/recent status = %d, want 404", res.StatusCode)
	}
	if res, _ := get(t, h, "/healthz"); res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz must stay alive with nil backends, got %d", res.StatusCode)
	}
}

// TestServeRoundTrip exercises the real listener: ephemeral port, live
// GETs over TCP, clean shutdown.
func TestServeRoundTrip(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter(obs.MetricRounds).Inc()
	s, err := Serve("127.0.0.1:0", m, obs.NewRingTracer(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("URL = %q", s.URL())
	}
	res, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || !strings.Contains(string(body), "sched_rounds_total 1") {
		t.Fatalf("live /metrics: err=%v body=%s", err, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
