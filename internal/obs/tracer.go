package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLTracer writes each event as one JSON object per line (JSON
// Lines), the interchange format of `apples -trace <file>`. Writes are
// serialized under a mutex, which also orders Seq assignment; the
// encoder writes directly to w, so wrap files in a bufio.Writer when
// tracing large rounds and flush via the caller's Close.
type JSONLTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	seq uint64
	err error
}

// NewJSONLTracer returns a tracer emitting JSON lines to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{enc: json.NewEncoder(w)}
}

// Emit implements Tracer. The first write error is retained and
// subsequent events are dropped; Err reports it.
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	e.Seq = t.seq
	if err := t.enc.Encode(e); err != nil {
		t.err = fmt.Errorf("obs: encode trace event: %w", err)
	}
}

// Err returns the first write error encountered, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Collector buffers events in memory — the sink for tests, golden
// files, and programmatic inspection of a decision.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty in-memory sink.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.Seq = uint64(len(c.events) + 1)
	c.events = append(c.events, e)
}

// Events returns a copy of everything emitted so far, in Seq order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len reports how many events have been collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards collected events and restarts Seq at 1.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = nil
}

// MultiTracer fans each event out to several sinks (e.g. a JSONL file
// plus an in-memory collector). Each sink assigns its own Seq.
type MultiTracer []Tracer

// Emit implements Tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		if t != nil {
			t.Emit(e)
		}
	}
}
