package audit

import (
	"apples/internal/obs"
)

// seriesAgg scores one measurement series (kind/name): the naive
// last-value baseline every forecaster must beat, per-forecaster
// residual sums, and the drift detector fed by the bank's currently
// selected forecaster.
type seriesAgg struct {
	kind, name string

	haveLast bool
	last     float64

	naiveN      int
	naiveAbsErr float64

	fc map[string]*fcAgg

	ph       *PageHinkley
	gauges   bool // per-series skill gauges installed (under the cap)
	degraded bool
}

// fcAgg accumulates one forecaster's residuals on one series.
type fcAgg struct {
	n        int
	absErr   float64
	sqErr    float64
	selected int // samples where the bank had selected this forecaster
	gauge    *obs.Gauge
}

// ObserveSample ingests one sensor sample for a series: it scores the
// naive last-value baseline against the sample and then carries the
// sample forward as the next naive prediction. Call it once per sweep,
// after the ObserveResidual calls for the same sample.
func (e *Engine) ObserveSample(kind, series string, actual float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	s := e.seriesLocked(kind, series)
	if s.haveLast {
		s.naiveN++
		s.naiveAbsErr += abs(s.last - actual)
	}
	s.haveLast = true
	s.last = actual
	e.mu.Unlock()
}

// ObserveResidual scores one forecaster's standing one-step prediction
// against the sample that just arrived. selected flags the bank's
// currently chosen forecaster; its relative error stream drives the
// series' drift detector.
func (e *Engine) ObserveResidual(kind, series, forecaster string, predicted, actual float64, selected bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	s := e.seriesLocked(kind, series)
	f := s.fc[forecaster]
	if f == nil {
		f = &fcAgg{}
		if s.gauges {
			f.gauge = e.reg.Gauge(obs.NameWithLabels(obs.MetricForecastSkill,
				"kind", kind, "series", series, "forecaster", forecaster))
		}
		s.fc[forecaster] = f
	}
	err := predicted - actual
	f.n++
	f.absErr += abs(err)
	f.sqErr += err * err
	var drift bool
	if selected {
		f.selected++
		denom := abs(actual)
		if denom > 0 && s.ph.Update(clipRel(abs(err)/denom)) {
			drift = true
			s.degraded = true
			e.alarms++
			e.degraded["series/"+kind+"/"+series] = "forecast drift (selected " + forecaster + ")"
		}
	}
	var skill float64
	var haveSkill bool
	if f.gauge != nil && s.naiveN > 0 && f.n > 0 {
		skill = skillScore(f.absErr/float64(f.n), s.naiveAbsErr/float64(s.naiveN))
		haveSkill = true
	}
	e.mu.Unlock()

	if haveSkill {
		f.gauge.Set(skill)
	}
	if drift {
		if e.metAlarms != nil {
			e.metAlarms.Inc()
		}
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{Type: obs.EvAudit, Verdict: "drift",
				Reason: "series/" + kind + "/" + series, Tenant: forecaster})
		}
	}
}

// seriesLocked returns the aggregate for kind/series, creating it (and
// its skill gauges, while under the cardinality cap) on first sight.
func (e *Engine) seriesLocked(kind, series string) *seriesAgg {
	key := kind + "/" + series
	s := e.series[key]
	if s == nil {
		s = &seriesAgg{
			kind: kind,
			name: series,
			fc:   make(map[string]*fcAgg),
			ph:   newPageHinkley(e.phDelta, e.phLambda, e.phMin),
		}
		s.gauges = e.reg != nil && len(e.seriesKeys) < e.skillGaugeLimit
		e.series[key] = s
		e.seriesKeys = append(e.seriesKeys, key)
	}
	return s
}

// skillScore is 1 - MAE_forecaster/MAE_naive: 1 perfect, 0 no better
// than carrying the last value forward, negative worse. A zero-MAE
// naive baseline (constant series) makes any non-zero forecaster error
// maximally unskilled.
func skillScore(maeForecaster, maeNaive float64) float64 {
	if maeNaive == 0 {
		if maeForecaster == 0 {
			return 1
		}
		return -1
	}
	return 1 - maeForecaster/maeNaive
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
