package audit

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"apples/internal/obs"
)

// DecisionLabels classify a joined prediction for breakdown: which
// tenant issued it, which selector family enumerated the winning set,
// and which host class (architecture family, or "mixed") won.
type DecisionLabels struct {
	Tenant    string `json:"tenant"`
	Selector  string `json:"selector"`
	HostClass string `json:"host_class"`
}

// Prediction is one decision's completion-time estimate awaiting its
// actual. Key must come from NextKey; Predicted is the coordinator
// winner's predicted total seconds.
type Prediction struct {
	Key       uint64
	Labels    DecisionLabels
	Predicted float64
}

// Join is the outcome of a RecordActual that found its prediction.
type Join struct {
	Labels    DecisionLabels
	Predicted float64
	Actual    float64
	// Err is the signed error Predicted - Actual (positive: the
	// estimator promised more time than the run took).
	Err float64
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithMetrics surfaces the engine through a registry: the
// sched_prediction_error_seconds histogram, audit_* join/drift
// counters, the audit_pending gauge, and per-series nws_forecast_skill
// gauges. Handles resolve once here (per-series gauges resolve on
// first observation and are cached).
func WithMetrics(m *obs.Metrics) Option {
	return func(e *Engine) {
		if m == nil {
			return
		}
		e.reg = m
		e.metErr = m.Histogram(obs.MetricPredictionError, obs.PredictionErrorBuckets)
		e.metJoined = m.Counter(obs.MetricAuditJoined)
		e.metOrphaned = m.Counter(obs.MetricAuditOrphaned)
		e.metExpired = m.Counter(obs.MetricAuditExpired)
		e.metAlarms = m.Counter(obs.MetricDriftAlarms)
		e.metPending = m.Gauge(obs.MetricAuditPending)
	}
}

// WithTracer emits an EvAudit event per joined prediction and per
// drift alarm.
func WithTracer(t obs.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithClock injects the monotonic-seconds clock used for prediction
// TTL expiry (nil: wall clock). Simulations pass the engine's virtual
// clock so audits stay deterministic.
func WithClock(fn func() float64) Option {
	return func(e *Engine) {
		if fn != nil {
			e.clock = fn
		}
	}
}

// WithPendingTTL bounds how long (in clock seconds) a prediction waits
// for its actual before expiring (default 3600).
func WithPendingTTL(seconds float64) Option {
	return func(e *Engine) {
		if seconds > 0 {
			e.ttl = seconds
		}
	}
}

// WithMaxPending caps the outstanding-prediction table (default 4096);
// beyond it the oldest pending prediction is expired to admit the new
// one, so a producer whose actuals never arrive cannot grow the engine
// without bound.
func WithMaxPending(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxPending = n
		}
	}
}

// WithPageHinkley overrides the drift-detector parameters shared by
// every per-series and per-tenant detector.
func WithPageHinkley(delta, lambda float64, minSamples int) Option {
	return func(e *Engine) {
		e.phDelta, e.phLambda, e.phMin = delta, lambda, minSamples
	}
}

// WithSkillGaugeLimit caps how many distinct series get per-series
// nws_forecast_skill gauges (default 64) — on a 2048-host grid the
// label cardinality would otherwise swamp the registry. Series beyond
// the cap are still fully scored in SeriesSnapshot; only the gauge is
// skipped.
func WithSkillGaugeLimit(n int) Option {
	return func(e *Engine) { e.skillGaugeLimit = n }
}

// CalibrationBuckets are the predicted/actual ratio edges of the
// calibration histogram: a well-calibrated estimator concentrates mass
// around 1.0; mass below means under-prediction (runs took longer than
// promised), above means over-prediction.
var CalibrationBuckets = []float64{0.5, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.25, 2.0}

// Engine is the online audit core. All methods are safe for concurrent
// use; every ingestion path takes one mutex, so auditing serializes
// observers — the cost of the loop being closed. A nil *Engine is
// inert: every exported method returns zeroes without panicking, so
// call sites guard with a single nil check.
type Engine struct {
	mu sync.Mutex

	clock      func() float64
	ttl        float64
	maxPending int

	keys atomic.Uint64

	pending map[uint64]pendingPred
	order   []uint64 // issue order; may contain keys already joined

	groups map[DecisionLabels]*groupAgg
	calAll []uint64 // engine-wide calibration counts, len(CalibrationBuckets)+1

	joined, orphaned, expired uint64
	alarms                    uint64

	series     map[string]*seriesAgg
	seriesKeys []string // insertion order, for the gauge cap

	phDelta         float64
	phLambda        float64
	phMin           int
	skillGaugeLimit int

	degraded map[string]string // entity ("tenant/x", "series/cpu/y") -> detail

	reg         *obs.Metrics
	metErr      *obs.Histogram
	metJoined   *obs.Counter
	metOrphaned *obs.Counter
	metExpired  *obs.Counter
	metAlarms   *obs.Counter
	metPending  *obs.Gauge
	tracer      obs.Tracer
}

type pendingPred struct {
	labels    DecisionLabels
	predicted float64
	issued    float64
}

// groupAgg accumulates one (tenant, selector, host-class) cell.
type groupAgg struct {
	n         int
	sumErr    float64 // signed predicted-actual
	sumAbsErr float64
	sumAPE    float64 // |err|/actual, over samples with actual > 0
	nAPE      int
	cal       []uint64
	ph        *PageHinkley
}

// monotonicBase anchors the default clock (matching obs.StageTimer's).
var monotonicBase = time.Now()

// New builds an audit engine. With no options it aggregates silently —
// attach WithMetrics/WithTracer to surface it, or read Snapshot and
// SeriesSnapshot directly.
func New(opts ...Option) *Engine {
	e := &Engine{
		clock:           func() float64 { return time.Since(monotonicBase).Seconds() },
		ttl:             3600,
		maxPending:      4096,
		pending:         make(map[uint64]pendingPred),
		groups:          make(map[DecisionLabels]*groupAgg),
		calAll:          make([]uint64, len(CalibrationBuckets)+1),
		series:          make(map[string]*seriesAgg),
		phDelta:         DefaultPHDelta,
		phLambda:        DefaultPHLambda,
		phMin:           DefaultPHMinSamples,
		skillGaugeLimit: 64,
		degraded:        make(map[string]string),
	}
	for _, opt := range opts {
		if opt != nil {
			opt(e)
		}
	}
	return e
}

// NextKey issues a fresh join key. Keys are process-unique per engine;
// the predictor passes the same key to RecordActual after actuation.
func (e *Engine) NextKey() uint64 {
	if e == nil {
		return 0
	}
	return e.keys.Add(1)
}

// RecordPrediction registers a decision's completion-time estimate,
// awaiting its actual. Predictions past the TTL (and the oldest beyond
// the pending cap) expire rather than linger.
func (e *Engine) RecordPrediction(p Prediction) {
	if e == nil {
		return
	}
	now := e.clock()
	e.mu.Lock()
	e.expireLocked(now)
	for len(e.pending) >= e.maxPending {
		if !e.expireOldestLocked() {
			break
		}
	}
	e.pending[p.Key] = pendingPred{labels: p.Labels, predicted: p.Predicted, issued: now}
	e.order = append(e.order, p.Key)
	e.mu.Unlock()
	if e.metPending != nil {
		e.metPending.Set(float64(e.Pending()))
	}
}

// RecordActual joins an observed execution time with its prediction.
// ok is false (and the actual counted orphaned) when no prediction
// with that key is outstanding — it never arrived, already joined, or
// expired.
func (e *Engine) RecordActual(key uint64, actual float64) (Join, bool) {
	if e == nil {
		return Join{}, false
	}
	e.mu.Lock()
	p, ok := e.pending[key]
	if !ok {
		e.orphaned++
		e.mu.Unlock()
		if e.metOrphaned != nil {
			e.metOrphaned.Inc()
		}
		return Join{}, false
	}
	delete(e.pending, key)
	e.joined++
	j := Join{Labels: p.labels, Predicted: p.predicted, Actual: actual, Err: p.predicted - actual}

	g := e.groups[p.labels]
	if g == nil {
		g = &groupAgg{
			cal: make([]uint64, len(CalibrationBuckets)+1),
			ph:  newPageHinkley(e.phDelta, e.phLambda, e.phMin),
		}
		e.groups[p.labels] = g
	}
	g.n++
	g.sumErr += j.Err
	g.sumAbsErr += math.Abs(j.Err)
	if actual > 0 {
		g.sumAPE += math.Abs(j.Err) / actual
		g.nAPE++
		ratio := p.predicted / actual
		bi := calBucket(ratio)
		g.cal[bi]++
		e.calAll[bi]++
	}
	var driftEntity string
	if actual > 0 && g.ph.Update(clipRel(math.Abs(j.Err)/actual)) {
		driftEntity = "tenant/" + p.labels.Tenant
		e.alarms++
		e.degraded[driftEntity] = fmt.Sprintf("decision-error drift (selector=%s class=%s after %d joins)",
			p.labels.Selector, p.labels.HostClass, g.n)
	}
	e.mu.Unlock()

	if e.metJoined != nil {
		e.metJoined.Inc()
		e.metErr.Observe(math.Abs(j.Err))
		e.metPending.Set(float64(e.Pending()))
	}
	if driftEntity != "" && e.metAlarms != nil {
		e.metAlarms.Inc()
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Type: obs.EvAudit, Verdict: "join", Tenant: p.labels.Tenant,
			Reason: p.labels.Selector + "/" + p.labels.HostClass,
			Predicted: p.predicted, Actual: actual})
		if driftEntity != "" {
			e.tracer.Emit(obs.Event{Type: obs.EvAudit, Verdict: "drift", Tenant: p.labels.Tenant,
				Reason: driftEntity})
		}
	}
	return j, true
}

// expireLocked drops pending predictions older than the TTL.
func (e *Engine) expireLocked(now float64) {
	for len(e.order) > 0 {
		k := e.order[0]
		p, live := e.pending[k]
		if live && now-p.issued <= e.ttl {
			return
		}
		e.order = e.order[1:]
		if live {
			delete(e.pending, k)
			e.expired++
			if e.metExpired != nil {
				e.metExpired.Inc()
			}
		}
	}
}

// expireOldestLocked evicts the oldest still-pending prediction; false
// when none remain.
func (e *Engine) expireOldestLocked() bool {
	for len(e.order) > 0 {
		k := e.order[0]
		e.order = e.order[1:]
		if _, live := e.pending[k]; live {
			delete(e.pending, k)
			e.expired++
			if e.metExpired != nil {
				e.metExpired.Inc()
			}
			return true
		}
	}
	return false
}

// calBucket maps a predicted/actual ratio to its calibration bucket
// index (the last index is the overflow bucket).
func calBucket(ratio float64) int {
	for i, b := range CalibrationBuckets {
		if ratio <= b {
			return i
		}
	}
	return len(CalibrationBuckets)
}

// clipRel bounds a relative error so one absurd sample cannot blow a
// drift detector's cumulative state.
func clipRel(v float64) float64 {
	if v > 10 {
		return 10
	}
	return v
}

// Pending reports the outstanding (unjoined, unexpired) predictions.
func (e *Engine) Pending() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// Totals reports the join bookkeeping: predictions joined, actuals
// orphaned, predictions expired, and drift alarms raised (decision and
// forecaster detectors combined).
func (e *Engine) Totals() (joined, orphaned, expired, alarms uint64) {
	if e == nil {
		return 0, 0, 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.joined, e.orphaned, e.expired, e.alarms
}

// Health reports the component state for /healthz: "ok", or
// "degraded" with the drift-flagged entities (sorted) as detail.
func (e *Engine) Health() (status string, detail []string) {
	if e == nil {
		return "ok", nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.degraded) == 0 {
		return "ok", nil
	}
	detail = make([]string, 0, len(e.degraded))
	for entity, why := range e.degraded {
		detail = append(detail, entity+": "+why)
	}
	sort.Strings(detail)
	return "degraded", detail
}

// Degraded lists the drift-flagged entities ("tenant/x",
// "series/cpu/alpha1"), sorted.
func (e *Engine) Degraded() []string {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.degraded))
	for entity := range e.degraded {
		out = append(out, entity)
	}
	sort.Strings(out)
	return out
}
