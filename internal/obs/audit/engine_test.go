package audit

import (
	"encoding/json"
	"strings"
	"testing"

	"apples/internal/obs"
)

func TestJoinBookkeeping(t *testing.T) {
	e := New()
	labels := DecisionLabels{Tenant: "t1", Selector: "greedy", HostClass: "alpha"}

	k1 := e.NextKey()
	k2 := e.NextKey()
	if k1 == k2 || k1 == 0 {
		t.Fatalf("keys not unique/non-zero: %d %d", k1, k2)
	}
	e.RecordPrediction(Prediction{Key: k1, Labels: labels, Predicted: 100})
	e.RecordPrediction(Prediction{Key: k2, Labels: labels, Predicted: 50})
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}

	j, ok := e.RecordActual(k1, 80)
	if !ok {
		t.Fatal("join of a standing prediction reported !ok")
	}
	if j.Err != 20 || j.Predicted != 100 || j.Actual != 80 {
		t.Fatalf("join = %+v, want err=20", j)
	}
	if _, ok := e.RecordActual(k1, 80); ok {
		t.Fatal("double join of the same key succeeded")
	}
	if _, ok := e.RecordActual(999, 10); ok {
		t.Fatal("join of an unknown key succeeded")
	}

	joined, orphaned, expired, _ := e.Totals()
	if joined != 1 || orphaned != 2 || expired != 0 {
		t.Fatalf("totals = joined %d orphaned %d expired %d, want 1 2 0", joined, orphaned, expired)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestPendingTTLAndCap(t *testing.T) {
	now := 0.0
	e := New(WithClock(func() float64 { return now }), WithPendingTTL(10), WithMaxPending(3))

	keys := make([]uint64, 5)
	for i := range keys {
		keys[i] = e.NextKey()
		e.RecordPrediction(Prediction{Key: keys[i], Predicted: 1})
	}
	// Cap 3: the two oldest were evicted as expired.
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3 (cap)", got)
	}
	if _, ok := e.RecordActual(keys[0], 1); ok {
		t.Fatal("evicted prediction still joinable")
	}

	now = 11 // past the TTL of everything outstanding
	k := e.NextKey()
	e.RecordPrediction(Prediction{Key: k, Predicted: 1})
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d after TTL sweep, want 1", got)
	}
	_, _, expired, _ := e.Totals()
	if expired != 5 {
		t.Fatalf("expired = %d, want 5 (2 cap evictions + 3 TTL)", expired)
	}
}

func TestGroupStatsAndCalibration(t *testing.T) {
	e := New()
	labels := DecisionLabels{Tenant: "t1", Selector: "exhaustive", HostClass: "sp2"}
	// predicted, actual pairs: errors +10, -10, +30.
	for _, pa := range [][2]float64{{110, 100}, {90, 100}, {130, 100}} {
		k := e.NextKey()
		e.RecordPrediction(Prediction{Key: k, Labels: labels, Predicted: pa[0]})
		e.RecordActual(k, pa[1])
	}
	snap := e.Snapshot()
	if len(snap.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(snap.Groups))
	}
	g := snap.Groups[0]
	if g.Joins != 3 {
		t.Fatalf("joins = %d, want 3", g.Joins)
	}
	if !close3(g.Bias, 10) || !close3(g.MAE, 50.0/3) || !close3(g.MAPE, 0.5/3) {
		t.Fatalf("bias=%g mae=%g mape=%g, want 10, 16.67, 0.167", g.Bias, g.MAE, g.MAPE)
	}
	var total uint64
	for _, c := range g.Calibration {
		total += c
	}
	if total != 3 {
		t.Fatalf("calibration mass = %d, want 3", total)
	}
	// Ratios 1.1, 0.9, 1.3 land in distinct buckets.
	if g.Calibration[calBucket(1.1)] != 1 || g.Calibration[calBucket(0.9)] != 1 || g.Calibration[calBucket(1.3)] != 1 {
		t.Fatalf("calibration histogram misplaced: %v", g.Calibration)
	}
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	if k := e.NextKey(); k != 0 {
		t.Fatalf("nil NextKey = %d", k)
	}
	e.RecordPrediction(Prediction{Key: 1})
	if _, ok := e.RecordActual(1, 1); ok {
		t.Fatal("nil RecordActual ok")
	}
	e.ObserveSample("cpu", "h1", 1)
	e.ObserveResidual("cpu", "h1", "ar1", 1, 1, true)
	if e.Pending() != 0 || e.SeriesSnapshot() != nil || len(e.Degraded()) != 0 {
		t.Fatal("nil engine leaked state")
	}
	if st, _ := e.Health(); st != "ok" {
		t.Fatalf("nil Health = %q", st)
	}
}

func TestForecasterScoring(t *testing.T) {
	e := New()
	// Series alternates 0 and 2: the naive last-value predictor is always
	// off by 2; a perfect forecaster has MAE 0 (skill 1), a worse-than-
	// naive one has negative skill.
	v := 0.0
	for i := 0; i < 40; i++ {
		next := 2 - v
		e.ObserveResidual("cpu", "h1", "perfect", next, next, true)
		e.ObserveResidual("cpu", "h1", "bad", v-3, next, false)
		e.ObserveSample("cpu", "h1", next)
		v = next
	}
	reps := e.SeriesSnapshot()
	if len(reps) != 1 {
		t.Fatalf("series = %d, want 1", len(reps))
	}
	r := reps[0]
	if r.Kind != "cpu" || r.Series != "h1" || r.Samples != 39 {
		t.Fatalf("report header = %+v", r)
	}
	if !close3(r.NaiveMAE, 2) {
		t.Fatalf("naive MAE = %g, want 2", r.NaiveMAE)
	}
	byName := map[string]ForecasterReport{}
	for _, f := range r.Forecasters {
		byName[f.Name] = f
	}
	if s := byName["perfect"].Skill; !close3(s, 1) {
		t.Fatalf("perfect skill = %g, want 1", s)
	}
	if s := byName["bad"].Skill; s >= 0 {
		t.Fatalf("bad skill = %g, want negative", s)
	}
	if byName["perfect"].Selected != 40 || byName["bad"].Selected != 0 {
		t.Fatalf("selected counts = %d/%d, want 40/0", byName["perfect"].Selected, byName["bad"].Selected)
	}
}

func TestSeriesDriftFlagsDegraded(t *testing.T) {
	m := obs.NewMetrics()
	var events []obs.Event
	e := New(WithMetrics(m), WithTracer(obs.TracerFunc(func(ev obs.Event) { events = append(events, ev) })))

	// Selected forecaster tracks the series well, then the series goes
	// somewhere the forecaster keeps missing badly.
	for i := 0; i < 100; i++ {
		e.ObserveResidual("cpu", "h1", "ar1", 1.0, 1.01, true)
		e.ObserveSample("cpu", "h1", 1.01)
	}
	for i := 0; i < 200; i++ {
		e.ObserveResidual("cpu", "h1", "ar1", 1.0, 3.0, true)
		e.ObserveSample("cpu", "h1", 3.0)
	}
	if _, _, _, alarms := e.Totals(); alarms == 0 {
		t.Fatal("no drift alarm on a persistent forecast-error shift")
	}
	if st, detail := e.Health(); st != "degraded" || len(detail) == 0 {
		t.Fatalf("Health = %q %v, want degraded", st, detail)
	}
	if got := e.Degraded(); len(got) != 1 || got[0] != "series/cpu/h1" {
		t.Fatalf("Degraded = %v", got)
	}
	if m.Counter(obs.MetricDriftAlarms).Value() == 0 {
		t.Fatal("audit_drift_alarms_total not incremented")
	}
	found := false
	for _, ev := range events {
		if ev.Type == obs.EvAudit && ev.Verdict == "drift" && ev.Reason == "series/cpu/h1" {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvAudit drift event emitted")
	}
}

func TestMetricsAndTraceOnJoin(t *testing.T) {
	m := obs.NewMetrics()
	var events []obs.Event
	e := New(WithMetrics(m), WithTracer(obs.TracerFunc(func(ev obs.Event) { events = append(events, ev) })))
	labels := DecisionLabels{Tenant: "t9", Selector: "beam", HostClass: "mixed"}
	k := e.NextKey()
	e.RecordPrediction(Prediction{Key: k, Labels: labels, Predicted: 120})
	e.RecordActual(k, 100)

	if m.Counter(obs.MetricAuditJoined).Value() != 1 {
		t.Fatal("audit_joined_total != 1")
	}
	h := m.Histogram(obs.MetricPredictionError, obs.PredictionErrorBuckets)
	if h.Count() != 1 || !close3(h.Sum(), 20) {
		t.Fatalf("prediction-error histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Type != obs.EvAudit || ev.Verdict != "join" || ev.Tenant != "t9" ||
		ev.Predicted != 120 || ev.Actual != 100 || ev.Reason != "beam/mixed" {
		t.Fatalf("join event = %+v", ev)
	}
}

// Snapshots of equal engine states must serialize to equal bytes — the
// property the golden expt figure depends on.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Engine {
		e := New()
		for _, tenant := range []string{"b", "a", "c"} {
			for i := 0; i < 3; i++ {
				k := e.NextKey()
				e.RecordPrediction(Prediction{Key: k,
					Labels:    DecisionLabels{Tenant: tenant, Selector: "greedy", HostClass: "alpha"},
					Predicted: float64(100 + i)})
				e.RecordActual(k, 100)
			}
		}
		e.ObserveResidual("cpu", "h2", "z", 1, 1, true)
		e.ObserveResidual("cpu", "h2", "a", 1, 1, false)
		e.ObserveSample("cpu", "h2", 1)
		e.ObserveSample("cpu", "h1", 1)
		return e
	}
	enc := func(e *Engine) string {
		var sb strings.Builder
		je := json.NewEncoder(&sb)
		if err := je.Encode(e.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := je.Encode(e.SeriesSnapshot()); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := enc(build()), enc(build())
	if a != b {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, `"tenant":"a"`) {
		t.Fatalf("snapshot missing group content:\n%s", a)
	}
}

func close3(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < 1e-3
}
