package audit

// PageHinkley is the classic Page-Hinkley test for an upward shift in
// the mean of a stream — here, of a forecast-error stream: a forecaster
// whose errors were small and become persistently larger is drifting.
//
// The detector maintains the cumulative deviation of each observation
// from the running mean (minus a tolerance delta) and alarms when that
// cumulation rises more than lambda above its historical minimum. Small
// delta makes it sensitive; large lambda makes it patient. minSamples
// suppresses alarms while the running mean is still settling.
//
// PageHinkley is a plain value with no internal locking; the Engine
// serializes access. The zero value is unusable — construct with
// newPageHinkley.
type PageHinkley struct {
	delta      float64
	lambda     float64
	minSamples int

	n    int
	sum  float64
	mt   float64 // cumulative deviation Σ(x_i - mean_i - delta)
	minM float64 // historical minimum of mt
}

// Default Page-Hinkley parameters, tuned for relative forecast-error
// streams (|predicted-actual| / actual, clipped): ambient-load noise on
// the simulated testbed keeps relative errors around a stable mean, so
// the cumulation only escapes lambda when the error level genuinely
// shifts — e.g. a load regime the forecasters were not trained on.
const (
	DefaultPHDelta      = 0.02
	DefaultPHLambda     = 5.0
	DefaultPHMinSamples = 30
)

func newPageHinkley(delta, lambda float64, minSamples int) *PageHinkley {
	return &PageHinkley{delta: delta, lambda: lambda, minSamples: minSamples}
}

// Update absorbs one observation and reports whether the detector
// alarms on it. After an alarm the detector resets its cumulative
// state, so a persistent shift raises a bounded series of discrete
// alarms rather than one alarm per subsequent sample.
func (ph *PageHinkley) Update(x float64) (alarm bool) {
	ph.n++
	ph.sum += x
	mean := ph.sum / float64(ph.n)
	ph.mt += x - mean - ph.delta
	if ph.mt < ph.minM {
		ph.minM = ph.mt
	}
	if ph.n >= ph.minSamples && ph.mt-ph.minM > ph.lambda {
		ph.reset()
		return true
	}
	return false
}

// reset clears the cumulative state after an alarm. The sample count
// restarts too: post-drift observations define a new baseline mean.
func (ph *PageHinkley) reset() {
	ph.n, ph.sum, ph.mt, ph.minM = 0, 0, 0, 0
}

// Samples reports how many observations the detector has absorbed
// since construction or its last alarm.
func (ph *PageHinkley) Samples() int { return ph.n }
