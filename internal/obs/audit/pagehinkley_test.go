package audit

import (
	"math"
	"testing"
)

// A stationary stream must never alarm: the running mean absorbs the
// noise and the delta tolerance eats the residual wander.
func TestPageHinkleyStationarySilent(t *testing.T) {
	ph := newPageHinkley(DefaultPHDelta, DefaultPHLambda, DefaultPHMinSamples)
	for i := 0; i < 10_000; i++ {
		// Deterministic bounded noise around 0.1.
		x := 0.1 + 0.05*math.Sin(float64(i)*0.7)
		if ph.Update(x) {
			t.Fatalf("alarm on stationary stream at sample %d", i)
		}
	}
	if ph.Samples() != 10_000 {
		t.Fatalf("Samples = %d, want 10000", ph.Samples())
	}
}

// A level shift must alarm, and only after the shift.
func TestPageHinkleyDetectsShift(t *testing.T) {
	ph := newPageHinkley(DefaultPHDelta, DefaultPHLambda, DefaultPHMinSamples)
	const shiftAt = 200
	for i := 0; i < shiftAt; i++ {
		if ph.Update(0.1) {
			t.Fatalf("alarm before the shift at sample %d", i)
		}
	}
	alarmAt := -1
	for i := 0; i < 200; i++ {
		if ph.Update(1.1) {
			alarmAt = i
			break
		}
	}
	if alarmAt < 0 {
		t.Fatal("no alarm within 200 post-shift samples")
	}
	// The reset must restart the baseline: staying at the new level is
	// the new normal, so it cannot keep alarming forever.
	alarms := 0
	for i := 0; i < 5_000; i++ {
		if ph.Update(1.1) {
			alarms++
		}
	}
	if alarms > 2 {
		t.Fatalf("%d alarms while holding the post-shift level, want a bounded burst", alarms)
	}
}

// Alarms are suppressed until minSamples even for egregious shifts.
func TestPageHinkleyMinSamples(t *testing.T) {
	ph := newPageHinkley(0.0, 0.1, 50)
	for i := 0; i < 49; i++ {
		if ph.Update(float64(i)) {
			t.Fatalf("alarm at sample %d, before minSamples=50", i+1)
		}
	}
	if !ph.Update(1000) {
		t.Fatal("no alarm at minSamples on a divergent stream")
	}
	if ph.Samples() != 0 {
		t.Fatalf("Samples = %d after alarm, want 0 (reset)", ph.Samples())
	}
}
