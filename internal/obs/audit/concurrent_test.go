package audit

import (
	"sync"
	"testing"

	"apples/internal/obs"
)

// N tenants feed predictions and join actuals while sensors feed
// residual streams, all concurrently. Run under -race this pins the
// engine's locking; the bookkeeping assertions pin exact conservation:
// every issued prediction is joined, expired, or still pending, and
// every deliberate stray actual is counted orphaned.
func TestConcurrentIngestionBookkeeping(t *testing.T) {
	const (
		tenants      = 8
		joinsEach    = 200
		straysEach   = 25
		abandonEach  = 10 // predictions whose actual never arrives
		sensorSweeps = 300
	)
	m := obs.NewMetrics()
	ring := obs.NewRingTracer(64)
	e := New(WithMetrics(m), WithTracer(ring))

	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			labels := DecisionLabels{Tenant: string(rune('a' + tenant)), Selector: "greedy", HostClass: "alpha"}
			for j := 0; j < joinsEach; j++ {
				k := e.NextKey()
				e.RecordPrediction(Prediction{Key: k, Labels: labels, Predicted: 100})
				if _, ok := e.RecordActual(k, 90); !ok {
					t.Errorf("tenant %d: standing prediction %d failed to join", tenant, k)
					return
				}
			}
			for j := 0; j < abandonEach; j++ {
				k := e.NextKey()
				e.RecordPrediction(Prediction{Key: k, Labels: labels, Predicted: 100})
			}
			for j := 0; j < straysEach; j++ {
				// Keys from a range NextKey never issues in this test.
				if _, ok := e.RecordActual(1_000_000+uint64(tenant*straysEach+j), 90); ok {
					t.Errorf("tenant %d: stray actual joined", tenant)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < sensorSweeps; s++ {
			for _, series := range []string{"h1", "h2", "h3"} {
				v := float64(s % 7)
				e.ObserveResidual("cpu", series, "last_value", v, v, true)
				e.ObserveSample("cpu", series, v)
			}
		}
	}()
	wg.Wait()

	joined, orphaned, expired, _ := e.Totals()
	issued := uint64(tenants * (joinsEach + abandonEach))
	if joined != uint64(tenants*joinsEach) {
		t.Fatalf("joined = %d, want %d", joined, tenants*joinsEach)
	}
	if orphaned != uint64(tenants*straysEach) {
		t.Fatalf("orphaned = %d, want %d", orphaned, tenants*straysEach)
	}
	if joined+uint64(e.Pending())+expired != issued {
		t.Fatalf("conservation violated: joined %d + pending %d + expired %d != issued %d",
			joined, e.Pending(), expired, issued)
	}
	if expired != 0 {
		t.Fatalf("expired = %d, want 0 (TTL and cap were never hit)", expired)
	}
	if got := m.Counter(obs.MetricAuditJoined).Value(); got != joined {
		t.Fatalf("audit_joined_total = %d, want %d", got, joined)
	}
	if got := m.Counter(obs.MetricAuditOrphaned).Value(); got != orphaned {
		t.Fatalf("audit_orphaned_total = %d, want %d", got, orphaned)
	}
	reps := e.SeriesSnapshot()
	if len(reps) != 3 {
		t.Fatalf("series = %d, want 3", len(reps))
	}
	for _, r := range reps {
		if r.Samples != sensorSweeps-1 {
			t.Fatalf("series %s samples = %d, want %d", r.Series, r.Samples, sensorSweeps-1)
		}
	}
}

// Snapshot readers racing with writers must see consistent state — run
// under -race this is the test that catches a forgotten lock.
func TestConcurrentSnapshotReads(t *testing.T) {
	e := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		labels := DecisionLabels{Tenant: "w", Selector: "greedy", HostClass: "alpha"}
		for i := 0; i < 2_000; i++ {
			k := e.NextKey()
			e.RecordPrediction(Prediction{Key: k, Labels: labels, Predicted: 10})
			e.RecordActual(k, 9)
			e.ObserveResidual("cpu", "h", "f", 1, 1, true)
			e.ObserveSample("cpu", "h", 1)
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Snapshot()
				if snap.Joined > 2_000 {
					t.Errorf("impossible joined count %d", snap.Joined)
					return
				}
				e.SeriesSnapshot()
				e.Health()
			}
		}()
	}
	wg.Wait()
}
