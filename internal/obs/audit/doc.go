// Package audit closes the predict→observe→adapt loop: it joins every
// scheduling decision's predicted completion time with the subsequently
// observed actual, scores every NWS forecaster against a naive
// last-value baseline per measurement series, and watches both streams
// with Page-Hinkley drift detectors that flip a tenant or series into a
// degraded health state.
//
// The rest of the stack can trace, time, and persist every decision;
// this package is where the system finally checks whether a single
// prediction came true. Three ingestion surfaces feed one Engine:
//
//   - RecordPrediction / RecordActual join a decision's completion-time
//     estimate (captured from the coordinator's winner, via
//     core.WithAudit) with the measured execution time, keyed by an
//     engine-issued join key. Joined pairs land in per-(tenant,
//     selector, host-class) groups carrying signed bias, MAE, MAPE, and
//     a calibration histogram of predicted/actual ratios; predictions
//     whose actual never arrives expire after a TTL, and actuals with
//     no standing prediction count as orphaned — the bookkeeping
//     invariant joined+pending+expired == predictions issued holds at
//     every instant.
//
//   - ObserveSample / ObserveResidual score the NWS forecasters: every
//     sensor sample updates the series' naive last-value baseline, and
//     every ready forecaster's standing one-step prediction is scored
//     against the sample (nws.WithResiduals installs the hook; the
//     bank's currently selected forecaster is flagged so its error
//     stream drives the series' drift detector). Per-forecaster skill
//     is 1 - MAE_forecaster/MAE_naive: 1 is perfect, 0 no better than
//     carrying the last value forward, negative worse.
//
//   - The same two methods back the offline mode: nws.AuditStore
//     replays any mstore directory through fresh banks into an Engine,
//     so historical decisions and sensing runs are auditable long after
//     the process that made them exited.
//
// Everything surfaces through the existing observability stack: the
// sched_prediction_error_seconds histogram, nws_forecast_skill gauges,
// audit_* counters (obs metric names), EvAudit trace events, the
// obshttp /audit and /audit/series endpoints, and component health on
// /healthz. A nil *Engine is "off" everywhere — instrumented call
// sites reduce to one pointer check, so the audit-off hot path pays
// nothing.
package audit
