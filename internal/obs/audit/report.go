package audit

import (
	"math"
	"sort"
)

// GroupReport is one (tenant, selector, host-class) cell of the
// decision audit.
type GroupReport struct {
	Tenant    string `json:"tenant"`
	Selector  string `json:"selector"`
	HostClass string `json:"host_class"`
	Joins     int    `json:"joins"`
	// Bias is the mean signed error predicted-actual in seconds:
	// positive means the scheduler promised more time than runs took.
	Bias float64 `json:"bias_seconds"`
	MAE  float64 `json:"mae_seconds"`
	// MAPE is the mean |error|/actual over joins with actual > 0.
	MAPE float64 `json:"mape"`
	// Calibration counts predicted/actual ratios per CalibrationBuckets
	// edge (last entry: overflow).
	Calibration []uint64 `json:"calibration"`
}

// Snapshot is the decision-audit state at one instant, with every
// slice sorted so equal engine states serialize to equal bytes.
type Snapshot struct {
	Joined   uint64 `json:"joined"`
	Orphaned uint64 `json:"orphaned"`
	Expired  uint64 `json:"expired"`
	Pending  int    `json:"pending"`
	Alarms   uint64 `json:"drift_alarms"`

	Degraded []string `json:"degraded,omitempty"`

	// CalibrationEdges echoes CalibrationBuckets so a report is
	// self-describing; Calibration is the engine-wide histogram.
	CalibrationEdges []float64 `json:"calibration_edges"`
	Calibration      []uint64  `json:"calibration"`

	Groups []GroupReport `json:"groups"`
}

// Snapshot captures the decision-audit state. Safe to call while
// ingestion continues; the result is a consistent point-in-time copy.
func (e *Engine) Snapshot() Snapshot {
	if e == nil {
		return Snapshot{CalibrationEdges: CalibrationBuckets}
	}
	e.mu.Lock()
	snap := Snapshot{
		Joined:           e.joined,
		Orphaned:         e.orphaned,
		Expired:          e.expired,
		Pending:          len(e.pending),
		Alarms:           e.alarms,
		CalibrationEdges: CalibrationBuckets,
		Calibration:      append([]uint64(nil), e.calAll...),
		Groups:           make([]GroupReport, 0, len(e.groups)),
	}
	for entity := range e.degraded {
		snap.Degraded = append(snap.Degraded, entity)
	}
	for labels, g := range e.groups {
		r := GroupReport{
			Tenant:      labels.Tenant,
			Selector:    labels.Selector,
			HostClass:   labels.HostClass,
			Joins:       g.n,
			Calibration: append([]uint64(nil), g.cal...),
		}
		if g.n > 0 {
			r.Bias = g.sumErr / float64(g.n)
			r.MAE = g.sumAbsErr / float64(g.n)
		}
		if g.nAPE > 0 {
			r.MAPE = g.sumAPE / float64(g.nAPE)
		}
		snap.Groups = append(snap.Groups, r)
	}
	e.mu.Unlock()

	sort.Strings(snap.Degraded)
	sort.Slice(snap.Groups, func(i, j int) bool {
		a, b := snap.Groups[i], snap.Groups[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Selector != b.Selector {
			return a.Selector < b.Selector
		}
		return a.HostClass < b.HostClass
	})
	return snap
}

// ForecasterReport scores one forecaster on one series.
type ForecasterReport struct {
	Name    string `json:"name"`
	Samples int    `json:"samples"`
	MAE     float64 `json:"mae"`
	RMSE    float64 `json:"rmse"`
	// Skill is 1 - MAE/MAE_naive against the series' last-value
	// baseline.
	Skill float64 `json:"skill"`
	// Selected counts samples on which the bank had chosen this
	// forecaster.
	Selected int `json:"selected"`
}

// SeriesReport is the forecast audit of one measurement series.
type SeriesReport struct {
	Kind     string `json:"kind"`
	Series   string `json:"series"`
	Samples  int    `json:"samples"`
	NaiveMAE float64 `json:"naive_mae"`
	Degraded bool   `json:"degraded,omitempty"`

	Forecasters []ForecasterReport `json:"forecasters"`
}

// SeriesSnapshot captures every series' forecast audit, sorted by
// kind then series name (forecasters sorted by name) for byte-stable
// serialization. Series beyond the skill-gauge cap appear here in
// full; only their gauges were skipped.
func (e *Engine) SeriesSnapshot() []SeriesReport {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]SeriesReport, 0, len(e.series))
	for _, s := range e.series {
		r := SeriesReport{
			Kind:        s.kind,
			Series:      s.name,
			Samples:     s.naiveN,
			Degraded:    s.degraded,
			Forecasters: make([]ForecasterReport, 0, len(s.fc)),
		}
		naiveMAE := 0.0
		if s.naiveN > 0 {
			naiveMAE = s.naiveAbsErr / float64(s.naiveN)
			r.NaiveMAE = naiveMAE
		}
		for name, f := range s.fc {
			fr := ForecasterReport{Name: name, Samples: f.n, Selected: f.selected}
			if f.n > 0 {
				fr.MAE = f.absErr / float64(f.n)
				fr.RMSE = math.Sqrt(f.sqErr / float64(f.n))
				if s.naiveN > 0 {
					fr.Skill = skillScore(fr.MAE, naiveMAE)
				}
			}
			r.Forecasters = append(r.Forecasters, fr)
		}
		out = append(out, r)
	}
	e.mu.Unlock()

	for i := range out {
		fs := out[i].Forecasters
		sort.Slice(fs, func(a, b int) bool { return fs[a].Name < fs[b].Name })
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Series < out[j].Series
	})
	return out
}
