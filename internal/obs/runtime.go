package obs

import (
	"runtime"
	"time"
)

// runtimeCollector owns the serving-process gauges. Collection is
// pull-driven: both exposition paths refresh the gauges immediately
// before rendering, so there is no sampling goroutine to manage and an
// idle registry costs nothing.
type runtimeCollector struct {
	start time.Time

	goroutines *Gauge
	heap       *Gauge
	gcPause    *Gauge
	gcCycles   *Gauge
	uptime     *Gauge
}

// EnableRuntime adds the serving-process self-description gauges
// (go_goroutines, go_heap_alloc_bytes, go_gc_pause_seconds_total,
// go_gc_cycles_total, process_uptime_seconds) to the registry; they
// refresh on every WriteTo / WritePrometheus. Off by default so
// registries built for deterministic tests and golden dumps stay free
// of process-dependent series; obshttp.Handler enables it, since a
// registry serving /metrics describes a live process by definition.
// Idempotent; the first call pins the uptime epoch.
func (m *Metrics) EnableRuntime() {
	rc := &runtimeCollector{
		start:      time.Now(),
		goroutines: m.Gauge(MetricGoroutines),
		heap:       m.Gauge(MetricHeapBytes),
		gcPause:    m.Gauge(MetricGCPauseTotal),
		gcCycles:   m.Gauge(MetricGCCycles),
		uptime:     m.Gauge(MetricProcessUptime),
	}
	m.rt.CompareAndSwap(nil, rc)
}

// collectRuntime refreshes the runtime gauges if EnableRuntime has
// been called. Must run before the caller takes m.mu: the gauge
// handles write atomically, but resolving them re-entrantly would
// deadlock.
func (m *Metrics) collectRuntime() {
	rc := m.rt.Load()
	if rc == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rc.goroutines.Set(float64(runtime.NumGoroutine()))
	rc.heap.Set(float64(ms.HeapAlloc))
	rc.gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	rc.gcCycles.Set(float64(ms.NumGC))
	rc.uptime.Set(time.Since(rc.start).Seconds())
}
