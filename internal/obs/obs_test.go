package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v, want 0", g.Value())
	}
	g.Set(3.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %v, want -1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 1066.5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bucket shape = %d bounds / %d counts", len(bounds), len(counts))
	}
	// Upper edges are inclusive: 1 lands in le=1, 10 in le=10.
	want := []uint64{2, 2, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if got := h.Mean(); got != 1066.5/6 {
		t.Fatalf("mean = %v", got)
	}
}

func TestMetricsRegistryReusesHandles(t *testing.T) {
	m := NewMetrics()
	if m.Counter("x") != m.Counter("x") {
		t.Fatal("counter handle not stable across lookups")
	}
	if m.Gauge("y") != m.Gauge("y") {
		t.Fatal("gauge handle not stable across lookups")
	}
	h := m.Histogram("z", []float64{1, 2})
	if h != m.Histogram("z", []float64{5, 6, 7}) {
		t.Fatal("histogram handle not stable across lookups")
	}
	bounds, _ := h.Buckets()
	if len(bounds) != 2 {
		t.Fatalf("later bounds overwrote the original: %v", bounds)
	}
	if b, _ := m.Histogram("defaulted", nil).Buckets(); len(b) != len(DefaultLatencyBuckets) {
		t.Fatalf("nil bounds should default, got %v", b)
	}
}

func TestMetricsWriteTo(t *testing.T) {
	m := NewMetrics()
	m.Counter(MetricRounds).Add(3)
	m.Gauge("pool_size").Set(8)
	m.Histogram(MetricRoundSeconds, nil).Observe(0.002)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"counter sched_rounds_total", "3",
		"gauge   pool_size", "8",
		"hist    sched_round_seconds", "count=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Emit(Event{Type: EvSnapshot, Pool: 8})
	tr.Emit(Event{Type: EvWinner, Hosts: []string{"a"}, Score: 1.5})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Type != EvSnapshot || first.Pool != 8 {
		t.Fatalf("first event round-trip = %+v", first)
	}
	// Zero-valued fields must vanish from the wire format.
	if strings.Contains(lines[0], "score") || strings.Contains(lines[0], "hosts") {
		t.Fatalf("omitempty violated: %s", lines[0])
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestJSONLTracerRetainsFirstError(t *testing.T) {
	w := &failingWriter{}
	tr := NewJSONLTracer(w)
	tr.Emit(Event{Type: EvSnapshot})
	tr.Emit(Event{Type: EvWinner})
	if tr.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if w.n != 1 {
		t.Fatalf("tracer kept writing after an error (%d writes)", w.n)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Type: EvSnapshot})
	c.Emit(Event{Type: EvWinner})
	evs := c.Events()
	if len(evs) != 2 || c.Len() != 2 {
		t.Fatalf("collected %d events", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seq not assigned in order: %+v", evs)
	}
	evs[0].Type = "mutated"
	if c.Events()[0].Type != EvSnapshot {
		t.Fatal("Events() must return a copy")
	}
	c.Reset()
	c.Emit(Event{Type: EvCandidate})
	if got := c.Events(); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("reset did not restart seq: %+v", got)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	mt := MultiTracer{a, nil, b}
	mt.Emit(Event{Type: EvWinner})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out reached %d/%d sinks", a.Len(), b.Len())
	}
}

// TestConcurrentInstruments hammers one registry and one collector from
// many goroutines; correctness is exact counts, and `go test -race`
// checks the synchronization.
func TestConcurrentInstruments(t *testing.T) {
	m := NewMetrics()
	col := NewCollector()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared")
			h := m.Histogram("lat", nil)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
				col.Emit(Event{Type: EvCandidate})
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := m.Histogram("lat", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := col.Len(); got != workers*per {
		t.Fatalf("collector = %d events, want %d", got, workers*per)
	}
	if got := m.Histogram("lat", nil).Sum(); got < workers*per*0.001*0.999 || got > workers*per*0.001*1.001 {
		t.Fatalf("histogram CAS sum drifted: %v", got)
	}
}
