// Package obs is the zero-dependency decision-trace and metrics layer
// for the AppLeS round. The paper's argument is that a schedule is only
// as good as the dynamic information and estimates behind it; obs makes
// those estimates inspectable after the fact instead of leaving each
// Coordinator round a black box.
//
// Three independent surfaces:
//
//   - Tracer receives one structured Event per decision step: the
//     information snapshot built for the round, every candidate
//     evaluated (resource set, predicted time, score), every candidate
//     pruned (lower bound vs incumbent), the winner selected, the
//     reschedule / wait-or-run verdicts, and the stage spans described
//     below. Sinks: JSONLTracer writes one JSON object per line;
//     Collector buffers events in memory for tests and golden files;
//     RingTracer keeps a bounded window of the most recent events for
//     live inspection.
//
//   - Metrics is a registry of atomic counters, gauges, and fixed-bucket
//     histograms. Handles are resolved once at construction and updated
//     with single atomic operations, so the scheduling and sensing hot
//     paths stay allocation-free while instrumented. Histograms answer
//     Quantile(q) by bucket interpolation, and the whole registry
//     renders either as a human dump (WriteTo) or as Prometheus text
//     exposition (WritePrometheus), with NameWithLabels-encoded keys
//     parsed back into natively labeled series.
//
//   - StageTimer times the phases of a scheduling round (snapshot,
//     select, plan_estimate, reduce, actuate) and the NWS sensor sweep.
//     Each closed Span lands one observation in the stage-labeled
//     sched_stage_seconds histogram family and, when a tracer is
//     attached, one EvSpan event inline with the decision events it
//     times. The clock is injectable so simulated runs pin span
//     durations deterministically in golden traces.
//
// Package obshttp serves the live counterparts over HTTP: /metrics
// (Prometheus), /trace/recent (the ring as JSON), /healthz, and pprof.
//
// All surfaces are optional everywhere they are threaded: a nil Tracer,
// Metrics, or StageTimer handle is a single pointer check on the hot
// path, so disabled observability costs nothing measurable (see `expt
// -fig obs-overhead`). Every implementation in this package is safe for
// concurrent use — parallel candidate-evaluation workers emit events
// and bump counters from multiple goroutines.
package obs
