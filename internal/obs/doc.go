// Package obs is the zero-dependency decision-trace and metrics layer
// for the AppLeS round. The paper's argument is that a schedule is only
// as good as the dynamic information and estimates behind it; obs makes
// those estimates inspectable after the fact instead of leaving each
// Coordinator round a black box.
//
// Two independent surfaces:
//
//   - Tracer receives one structured Event per decision step: the
//     information snapshot built for the round, every candidate
//     evaluated (resource set, predicted time, score), every candidate
//     pruned (lower bound vs incumbent), the winner selected, and the
//     reschedule / wait-or-run verdicts. Sinks: JSONLTracer writes one
//     JSON object per line; Collector buffers events in memory for
//     tests and golden files.
//
//   - Metrics is a registry of atomic counters, gauges, and fixed-bucket
//     histograms. Handles are resolved once at construction and updated
//     with single atomic operations, so the scheduling and sensing hot
//     paths stay allocation-free while instrumented.
//
// Both are optional everywhere they are threaded: a nil Tracer or nil
// Metrics handle is a single pointer check on the hot path, so disabled
// observability costs nothing measurable (see `expt -fig obs-overhead`).
// Every implementation in this package is safe for concurrent use —
// parallel candidate-evaluation workers emit events and bump counters
// from multiple goroutines.
package obs
