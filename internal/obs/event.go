package obs

// EventType tags one decision step of a scheduling round.
type EventType string

// The event vocabulary. One Coordinator round emits, in order: one
// EvSnapshot, then an EvCandidate / EvPruned / EvInfeasible per
// enumerated resource set (emission order follows evaluation order, so
// it is the enumeration order only under sequential evaluation), then
// one EvWinner. EvReschedule and EvWaitOrRun wrap whole rounds: they
// record the policy verdicts of Section 3.2.
const (
	// EvSnapshot: the round's information snapshot was built — Pool
	// hosts, Pairs ordered host pairs, and Queries calls actually issued
	// to the underlying information source (the batched route path
	// resolves each link once, so Queries < Pairs on shared links).
	EvSnapshot EventType = "snapshot"
	// EvCandidate: one resource set was planned and estimated. Index is
	// its 1-based position in enumeration order; Predicted is the
	// estimator's total seconds (T_i); Score is the user-metric
	// objective (lower is better).
	EvCandidate EventType = "candidate"
	// EvPruned: a resource set was skipped because its lower bound
	// (Bound) already exceeded the best score seen so far (Incumbent).
	EvPruned EventType = "pruned"
	// EvInfeasible: the planner rejected the set (e.g. aggregate memory
	// cannot hold the problem).
	EvInfeasible EventType = "infeasible"
	// EvWinner: the round reduced to its decision — the winning hosts,
	// score, and predicted time, plus how many sets were considered and
	// how many produced feasible plans.
	EvWinner EventType = "winner"
	// EvReschedule: a mid-run redistribution checkpoint. Verdict is
	// "migrate" or "keep"; Reason explains a "keep" (hysteresis,
	// migration cost, or a failed re-schedule).
	EvReschedule EventType = "reschedule"
	// EvWaitOrRun: the dedicated-offer comparison. Verdict is "wait" or
	// "run"; Shared and Dedicated carry both predicted totals.
	EvWaitOrRun EventType = "wait-or-run"
	// EvSpan: one timed stage of a round closed — Stage names the phase
	// (see the Stage* constants) and Seconds its wall-time. Spans emit at
	// Span.End, so within a sequentially evaluated round their order is
	// pinned: snapshot, select, plan_estimate (after the candidate
	// events), reduce (after the winner event).
	EvSpan EventType = "span"
	// EvTruncated: the Resource Selector capped its enumeration (e.g.
	// MaxResourceSets) — Considered is how many sets were emitted and
	// Dropped how many the cap cut. Without this event a capped round is
	// indistinguishable from one that genuinely had fewer candidates.
	EvTruncated EventType = "selector_truncated"
	// EvTenantRound: one multi-tenant service round completed. Tenant
	// names the registered client, Round is the tenant-local completed
	// round sequence, Hosts/Predicted the decision, SharedSnap whether
	// the round reused a cache-shared snapshot, and Seconds the queue +
	// evaluation wall-time.
	EvTenantRound EventType = "tenant_round"
	// EvDeltaRound: a ReschedSession round completed incrementally.
	// Changed counts pool hosts whose inputs differ from the previous
	// round (directly or through a changed link on one of their routes),
	// Rescored how many candidate sets were re-planned, Considered the
	// frozen universe size, and Carried whether the incumbent winner was
	// carried forward unchanged. Hosts/Predicted/Score describe the
	// winner, as in EvWinner.
	EvDeltaRound EventType = "delta_round"
	// EvAudit: the audit engine joined a decision's prediction with its
	// observed actual (Verdict "join": Tenant, Predicted, Actual, and
	// Reason carrying "selector/host-class"), or a drift detector
	// alarmed (Verdict "drift": Reason names the degraded entity, e.g.
	// "tenant/t1" or "series/cpu/alpha1").
	EvAudit EventType = "audit"
)

// Event is one structured record in a decision trace. It is a flat
// union: every field is tagged omitempty and only the fields meaningful
// for the Type are set (Index is 1-based and Round starts at 1 so zero
// always means "not applicable"). The JSONL schema is documented in
// DESIGN.md §10; the golden-file test in internal/core pins it.
type Event struct {
	// Seq is the sink-assigned emission sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// Round numbers the scheduling round within one Coordinator lineage,
	// starting at 1. Zero for events outside a round (verdict events).
	Round uint64    `json:"round,omitempty"`
	Type  EventType `json:"type"`

	// Snapshot fields. SharedSnap marks a round that evaluated against a
	// shared frozen view from the service's snapshot cache instead of
	// freezing its own (the stats then describe the original build).
	Pool       int  `json:"pool,omitempty"`
	Pairs      int  `json:"pairs,omitempty"`
	Queries    int  `json:"queries,omitempty"`
	SharedSnap bool `json:"shared_snap,omitempty"`

	// Tenant names the multi-tenant service client the event belongs to
	// (EvTenantRound, and service-side verdict events).
	Tenant string `json:"tenant,omitempty"`

	// Candidate / pruned / winner fields.
	Index      int      `json:"index,omitempty"`
	Hosts      []string `json:"hosts,omitempty"`
	Predicted  float64  `json:"predicted,omitempty"`
	Score      float64  `json:"score,omitempty"`
	Bound      float64  `json:"bound,omitempty"`
	Incumbent  float64  `json:"incumbent,omitempty"`
	Considered int      `json:"considered,omitempty"`
	Planned    int      `json:"planned,omitempty"`
	// Dropped is how many candidate sets a selector cap cut from the
	// enumeration (EvTruncated only).
	Dropped int `json:"dropped,omitempty"`

	// Delta-round fields (EvDeltaRound only). Changed is the number of
	// pool hosts whose inputs changed since the previous session round,
	// Rescored how many candidate sets were re-planned, and Carried
	// whether the previous winner survived without re-materialization.
	Changed  int  `json:"changed,omitempty"`
	Rescored int  `json:"rescored,omitempty"`
	Carried  bool `json:"carried,omitempty"`

	// Span fields. Stage names the timed phase of the round; Seconds is
	// its measured wall-time under the span's clock.
	Stage   string  `json:"stage,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`

	// Actual is the observed execution time joined against Predicted
	// (EvAudit only).
	Actual float64 `json:"actual,omitempty"`

	// Verdict fields (reschedule / wait-or-run / audit).
	Verdict   string  `json:"verdict,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	Current   float64 `json:"current,omitempty"`
	Fresh     float64 `json:"fresh,omitempty"`
	Savings   float64 `json:"savings,omitempty"`
	MigCost   float64 `json:"mig_cost,omitempty"`
	Shared    float64 `json:"shared,omitempty"`
	Dedicated float64 `json:"dedicated,omitempty"`
}

// Tracer receives decision-trace events. Implementations must be safe
// for concurrent Emit calls: parallel evaluation workers trace from
// multiple goroutines. The sink assigns Event.Seq; emitters leave it 0.
//
// Everywhere the scheduler carries a Tracer, nil means "off" and is
// guarded by a single pointer check before any event is built, so the
// disabled path does no tracing work at all.
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a function to Tracer. The function itself must be
// safe for concurrent calls.
type TracerFunc func(Event)

// Emit implements Tracer.
func (f TracerFunc) Emit(e Event) { f(e) }
