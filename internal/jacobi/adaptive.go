package jacobi

import (
	"fmt"

	"apples/internal/grid"
	"apples/internal/partition"
)

// ReplanFunc is consulted at rescheduling points of an adaptive run. It
// receives the number of completed iterations and the current placement,
// and returns a replacement placement, or nil to keep the current one.
// The paper motivates this hook in Section 3.2: dynamic information
// serves both the initial schedule and "decisions about redistribution of
// the application during execution".
type ReplanFunc func(iterationsDone int, current *partition.Placement) *partition.Placement

// AdaptiveConfig extends Config with rescheduling points.
type AdaptiveConfig struct {
	Config
	// CheckEvery is the iteration period between replanning opportunities
	// (default 10).
	CheckEvery int
	// Replan is consulted at each opportunity; nil disables adaptation
	// (the run degenerates to Run).
	Replan ReplanFunc
}

// AdaptiveResult extends Result with redistribution accounting.
type AdaptiveResult struct {
	Result
	// Replans counts accepted redistributions.
	Replans int
	// MigratedMB is the total strip state moved between hosts.
	MigratedMB float64
	// MigrationSec is wall-clock time spent in migration phases.
	MigrationSec float64
}

// RunAdaptive executes the placement like Run, but pauses every
// CheckEvery iterations to consult Replan. An accepted replacement
// triggers a migration phase: the strip state that changes owners is
// shipped over the (contended) network before iteration resumes, so
// redistribution pays its true cost.
func RunAdaptive(tp *grid.Topology, p *partition.Placement, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	cfg.setDefaults()
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 10
	}
	workers, err := newWorkers(tp, p, cfg.Config)
	if err != nil {
		return nil, err
	}

	eng := tp.Engine
	res := &AdaptiveResult{}
	res.SpillFraction = map[string]float64{}
	current := p

	refreshSpill := func() {
		for _, w := range workers {
			if w.spill > res.SpillFraction[w.asg.Host] {
				res.SpillFraction[w.asg.Host] = w.spill
			}
		}
		if len(workers) > res.Hosts {
			res.Hosts = len(workers)
		}
	}
	refreshSpill()

	start := eng.Now()
	iterStart := start
	iter := 0
	outstanding := 0
	var runErr error

	var beginIteration func()
	var afterIteration func()
	var opDone func()

	opDone = func() {
		outstanding--
		if outstanding > 0 {
			return
		}
		res.IterTimes = append(res.IterTimes, eng.Now()-iterStart)
		iter++
		if iter >= cfg.Iterations {
			res.Time = eng.Now() - start
			eng.Halt()
			return
		}
		afterIteration()
	}

	// afterIteration decides whether this is a rescheduling point and, if
	// a new placement is accepted, runs the migration phase before the
	// next sweep.
	afterIteration = func() {
		if cfg.Replan == nil || iter%cfg.CheckEvery != 0 {
			beginIteration()
			return
		}
		next := cfg.Replan(iter, current)
		if next == nil {
			beginIteration()
			return
		}
		newWorkersList, err := newWorkers(tp, next, cfg.Config)
		if err != nil {
			runErr = fmt.Errorf("jacobi: replacement placement rejected: %w", err)
			eng.Halt()
			return
		}
		moves := migrationPlan(current, next, cfg.BytesPerPoint)
		res.Replans++
		current = next
		workers = newWorkersList
		refreshSpill()
		if len(moves) == 0 {
			beginIteration()
			return
		}
		migStart := eng.Now()
		pending := len(moves)
		for _, m := range moves {
			res.MigratedMB += m.sizeMB
			tp.Send(m.from, m.to, m.sizeMB, func() {
				pending--
				if pending == 0 {
					res.MigrationSec += eng.Now() - migStart
					beginIteration()
				}
			})
		}
	}

	beginIteration = func() {
		iterStart = eng.Now()
		outstanding = len(workers)
		for _, w := range workers {
			w := w
			w.host.Submit(w.mflop, func() {
				if len(w.asg.Borders) == 0 {
					opDone()
					return
				}
				sends := len(w.asg.Borders)
				for _, b := range w.asg.Borders {
					tp.Send(w.asg.Host, b.Peer, b.Bytes/1e6, func() {
						sends--
						if sends == 0 {
							opDone()
						}
					})
				}
			})
		}
	}

	beginIteration()
	if err := eng.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	if iter < cfg.Iterations {
		return nil, fmt.Errorf("jacobi: adaptive run stalled at iteration %d/%d", iter, cfg.Iterations)
	}
	return res, nil
}

// EstimateMigrationMB returns the megabytes of strip state that switching
// from oldP to newP would move between hosts — the quantity a rescheduler
// weighs against the predicted savings.
func EstimateMigrationMB(oldP, newP *partition.Placement, bytesPerPoint float64) float64 {
	total := 0.0
	for _, m := range migrationPlan(oldP, newP, bytesPerPoint) {
		total += m.sizeMB
	}
	return total
}

// migration is one bulk state transfer between hosts.
type migration struct {
	from, to string
	sizeMB   float64
}

// migrationPlan pairs hosts that shrank with hosts that grew and ships
// the difference: a fluid approximation of row migration in which every
// surplus point moves exactly once.
func migrationPlan(oldP, newP *partition.Placement, bytesPerPoint float64) []migration {
	oldPts := map[string]int{}
	for _, a := range oldP.Assignments {
		oldPts[a.Host] = a.Points
	}
	newPts := map[string]int{}
	for _, a := range newP.Assignments {
		newPts[a.Host] = a.Points
	}
	type delta struct {
		host string
		pts  int
	}
	var sources, sinks []delta
	seen := map[string]bool{}
	for _, a := range oldP.Assignments {
		seen[a.Host] = true
		d := newPts[a.Host] - a.Points
		if d < 0 {
			sources = append(sources, delta{a.Host, -d})
		} else if d > 0 {
			sinks = append(sinks, delta{a.Host, d})
		}
	}
	for _, a := range newP.Assignments {
		if !seen[a.Host] && a.Points > 0 {
			sinks = append(sinks, delta{a.Host, a.Points})
		}
	}

	var moves []migration
	si := 0
	for _, src := range sources {
		rem := src.pts
		for rem > 0 && si < len(sinks) {
			take := rem
			if take > sinks[si].pts {
				take = sinks[si].pts
			}
			if take > 0 {
				moves = append(moves, migration{
					from:   src.host,
					to:     sinks[si].host,
					sizeMB: float64(take) * bytesPerPoint / 1e6,
				})
			}
			rem -= take
			sinks[si].pts -= take
			if sinks[si].pts == 0 {
				si++
			}
		}
	}
	return moves
}
