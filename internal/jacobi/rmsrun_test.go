package jacobi

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/partition"
	"apples/internal/sim"
)

func TestRunViaRMSMatchesDirectRun(t *testing.T) {
	mk := func() (*grid.Topology, *partition.Placement) {
		eng := sim.NewEngine()
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 5, Quiet: true})
		p, err := partition.UniformStrip(600, tp.HostNames(), 8)
		if err != nil {
			t.Fatal(err)
		}
		return tp, p
	}
	cfg := Config{Iterations: 20}

	tp1, p1 := mk()
	direct, err := Run(tp1, p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp2, p2 := mk()
	viaRMS, err := RunViaRMS(tp2, p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRMS.IterTimes) != 20 {
		t.Fatalf("RMS run recorded %d iterations", len(viaRMS.IterTimes))
	}
	// The RMS path adds barrier control traffic: strictly slower than the
	// idealized direct run, but by a bounded factor.
	if viaRMS.Time <= direct.Time {
		t.Fatalf("RMS actuation (%v) should cost more than direct execution (%v)", viaRMS.Time, direct.Time)
	}
	if viaRMS.Time > direct.Time*1.5 {
		t.Fatalf("RMS actuation overhead too large: %v vs %v", viaRMS.Time, direct.Time)
	}
}

func TestRunViaRMSSingleHost(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 5, Quiet: true})
	p, err := partition.WeightedStrip(300, []string{"alpha1", "alpha2"}, []float64{1, 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunViaRMS(tp, p, Config{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 1 || res.Time <= 0 {
		t.Fatalf("single-host RMS run: %+v", res)
	}
}

func TestRunViaRMSUnderLoad(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 5})
	p, err := partition.UniformStrip(600, tp.HostNames(), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunViaRMS(tp, p, Config{Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 15 {
		t.Fatalf("iterations %d", len(res.IterTimes))
	}
}

func TestRunViaRMSRejectsCorruptPlacement(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 5, Quiet: true})
	p, _ := partition.UniformStrip(100, tp.HostNames(), 8)
	p.Assignments[0].Points++
	if _, err := RunViaRMS(tp, p, Config{Iterations: 2}); err == nil {
		t.Fatal("corrupt placement accepted")
	}
}
