package jacobi

import (
	"math"
	"testing"
	"testing/quick"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/partition"
	"apples/internal/sim"
)

func TestAdaptiveWithoutReplanMatchesRun(t *testing.T) {
	mk := func() (*grid.Topology, *partition.Placement) {
		eng := sim.NewEngine()
		tp := twoHostTopology(eng, 10, 20, 1024, 1024, nil)
		p, err := partition.UniformStrip(200, []string{"a", "b"}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return tp, p
	}
	tp1, p1 := mk()
	plain, err := Run(tp1, p1, Config{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	tp2, p2 := mk()
	adaptive, err := RunAdaptive(tp2, p2, AdaptiveConfig{Config: Config{Iterations: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Time-adaptive.Time) > 1e-9 {
		t.Fatalf("adaptive-without-replan %v differs from plain run %v", adaptive.Time, plain.Time)
	}
	if adaptive.Replans != 0 || adaptive.MigratedMB != 0 {
		t.Fatalf("no-op adaptive run migrated: %+v", adaptive)
	}
}

func TestAdaptiveReplanMigratesAndWins(t *testing.T) {
	// Host a starts fast and becomes terrible at t=0.5; a replan that
	// moves everything to b must beat the static placement.
	mkTp := func() *grid.Topology {
		eng := sim.NewEngine()
		src := load.NewTrace([]load.Step{{At: 0, Value: 0}, {At: 0.5, Value: 20}})
		return twoHostTopology(eng, 50, 50, 1024, 1024, src)
	}
	allA, _ := partition.WeightedStrip(400, []string{"a", "b"}, []float64{3, 1}, 8)

	tp1 := mkTp()
	static, err := Run(tp1, allA, Config{Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}

	tp2 := mkTp()
	moved := false
	adaptive, err := RunAdaptive(tp2, allA, AdaptiveConfig{
		Config:     Config{Iterations: 100},
		CheckEvery: 10,
		Replan: func(done int, cur *partition.Placement) *partition.Placement {
			if moved || tp2.Host("a").CurrentLoad() < 10 {
				return nil
			}
			moved = true
			p, err := partition.WeightedStrip(400, []string{"a", "b"}, []float64{0, 1}, 8)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Replans != 1 {
		t.Fatalf("replans = %d, want 1", adaptive.Replans)
	}
	if adaptive.MigratedMB <= 0 || adaptive.MigrationSec <= 0 {
		t.Fatalf("no migration recorded: %+v", adaptive)
	}
	if adaptive.Time >= static.Time {
		t.Fatalf("adaptive %v not faster than static %v under a load shift", adaptive.Time, static.Time)
	}
}

func TestAdaptiveRejectsCorruptReplacement(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 10, 10, 1024, 1024, nil)
	p, _ := partition.UniformStrip(100, []string{"a", "b"}, 8)
	_, err := RunAdaptive(tp, p, AdaptiveConfig{
		Config:     Config{Iterations: 30},
		CheckEvery: 5,
		Replan: func(done int, cur *partition.Placement) *partition.Placement {
			bad, _ := partition.UniformStrip(100, []string{"a", "b"}, 8)
			bad.Assignments[0].Points += 7
			return bad
		},
	})
	if err == nil {
		t.Fatal("corrupt replacement placement accepted")
	}
}

func TestMigrationPlanConservation(t *testing.T) {
	oldP, _ := partition.WeightedStrip(100, []string{"a", "b", "c"}, []float64{2, 1, 1}, 8)
	newP, _ := partition.WeightedStrip(100, []string{"a", "b", "c"}, []float64{1, 1, 2}, 8)
	moves := migrationPlan(oldP, newP, 16)
	movedPts := 0.0
	for _, m := range moves {
		if m.sizeMB < 0 {
			t.Fatalf("negative move %+v", m)
		}
		movedPts += m.sizeMB * 1e6 / 16
	}
	// Total moved must equal the total positive delta.
	wantPts := 0.0
	for _, a := range newP.Assignments {
		for _, b := range oldP.Assignments {
			if a.Host == b.Host && a.Points > b.Points {
				wantPts += float64(a.Points - b.Points)
			}
		}
	}
	if math.Abs(movedPts-wantPts) > 1e-6 {
		t.Fatalf("moved %v points, want %v", movedPts, wantPts)
	}
}

// Property: for any pair of weightings over the same hosts, the migration
// estimate equals the one-sided sum of share decreases (every surplus
// point moves exactly once, nothing moves twice).
func TestEstimateMigrationProperty(t *testing.T) {
	f := func(w1, w2 [3]uint8) bool {
		hosts := []string{"a", "b", "c"}
		toW := func(w [3]uint8) []float64 {
			out := make([]float64, 3)
			any := false
			for i, v := range w {
				out[i] = float64(v%9) + 0.01
				if out[i] > 0 {
					any = true
				}
			}
			_ = any
			return out
		}
		oldP, err := partition.WeightedStrip(60, hosts, toW(w1), 8)
		if err != nil {
			return true
		}
		newP, err := partition.WeightedStrip(60, hosts, toW(w2), 8)
		if err != nil {
			return true
		}
		got := EstimateMigrationMB(oldP, newP, 16)
		oldPts := map[string]int{}
		for _, a := range oldP.Assignments {
			oldPts[a.Host] = a.Points
		}
		want := 0.0
		for _, a := range newP.Assignments {
			if d := a.Points - oldPts[a.Host]; d > 0 {
				want += float64(d) * 16 / 1e6
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveOnTestbedWithLoadShift(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 3})
	eng.ScheduleAt(5, func() {
		tp.Host("alpha1").SetLoad(load.Constant(8))
	})
	p, err := partition.UniformStrip(600, tp.HostNames(), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptive(tp, p, AdaptiveConfig{
		Config:     Config{Iterations: 40},
		CheckEvery: 10,
		Replan: func(done int, cur *partition.Placement) *partition.Placement {
			return nil // observe only; the shift must not corrupt the run
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 40 {
		t.Fatalf("iterations recorded %d", len(res.IterTimes))
	}
}
