package jacobi

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/partition"
	"apples/internal/sim"
)

// twoHostTopology builds hosts "a" (speed sa) and "b" (speed sb) joined by
// a dedicated link.
func twoHostTopology(eng *sim.Engine, sa, sb, memA, memB float64, loadA load.Source) *grid.Topology {
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "a", Speed: sa, MemoryMB: memA, Load: loadA})
	tp.AddHost(grid.HostSpec{Name: "b", Speed: sb, MemoryMB: memB})
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0.001, Bandwidth: 10, Dedicated: true})
	tp.Attach("a", l)
	tp.Attach("b", l)
	tp.Finalize()
	return tp
}

func TestUniformRunOnEqualHosts(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 10, 10, 1024, 1024, nil)
	p, err := partition.UniformStrip(100, []string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Iterations: 10, FlopPerPoint: 10, BytesPerPoint: 16}
	res, err := Run(tp, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: 5000 pts * 10 flop = 0.05 Mflop at 10 Mflop/s = 5 ms
	// compute, plus 800-byte border (~0.08 ms + 1 ms latency).
	perIter := res.MeanIterTime()
	if perIter < 0.005 || perIter > 0.010 {
		t.Fatalf("mean iteration %v s, want ~0.006", perIter)
	}
	if len(res.IterTimes) != 10 {
		t.Fatalf("recorded %d iterations, want 10", len(res.IterTimes))
	}
	if res.Hosts != 2 {
		t.Fatalf("hosts = %d, want 2", res.Hosts)
	}
}

func TestSlowHostDominatesUniformPartition(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 100, 10, 1024, 1024, nil)
	p, _ := partition.UniformStrip(100, []string{"a", "b"}, 8)
	res, err := Run(tp, p, Config{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Iteration time tracks the slow host: 0.05 Mflop / 10 = 5 ms.
	if res.MeanIterTime() < 0.005 {
		t.Fatalf("iteration %v faster than slow host allows", res.MeanIterTime())
	}
}

func TestWeightedBeatsUniformOnHeterogeneousHosts(t *testing.T) {
	run := func(mk func() (*partition.Placement, error), seed int64) float64 {
		eng := sim.NewEngine()
		tp := twoHostTopology(eng, 100, 10, 1024, 1024, nil)
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tp, p, Config{Iterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	uniform := run(func() (*partition.Placement, error) {
		return partition.UniformStrip(200, []string{"a", "b"}, 8)
	}, 1)
	weighted := run(func() (*partition.Placement, error) {
		return partition.WeightedStrip(200, []string{"a", "b"}, []float64{100, 10}, 8)
	}, 1)
	if weighted >= uniform {
		t.Fatalf("speed-weighted strip (%v) not faster than uniform (%v)", weighted, uniform)
	}
}

func TestAmbientLoadSlowsRun(t *testing.T) {
	run := func(src load.Source) float64 {
		eng := sim.NewEngine()
		tp := twoHostTopology(eng, 10, 10, 1024, 1024, src)
		p, _ := partition.UniformStrip(100, []string{"a", "b"}, 8)
		res, err := Run(tp, p, Config{Iterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	quiet := run(nil)
	loaded := run(load.Constant(3))
	// Host a delivers 1/4 speed; iteration time should roughly triple.
	if loaded < 2.5*quiet {
		t.Fatalf("loaded run %v not much slower than quiet run %v", loaded, quiet)
	}
}

func TestMemorySpillPenalty(t *testing.T) {
	run := func(memA float64) float64 {
		eng := sim.NewEngine()
		tp := twoHostTopology(eng, 10, 10, memA, 1024, nil)
		p, _ := partition.UniformStrip(1000, []string{"a", "b"}, 8)
		res, err := Run(tp, p, Config{Iterations: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	// Strip needs 500k points * 16 B = 8 MB.
	fits := run(64)
	spills := run(4) // half the strip spills
	if spills < 5*fits {
		t.Fatalf("spilled run %v vs resident %v: spill penalty too weak", spills, fits)
	}
}

func TestSpillFractionReported(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 10, 10, 4, 1024, nil)
	p, _ := partition.UniformStrip(1000, []string{"a", "b"}, 8)
	res, err := Run(tp, p, Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// a needs 8 MB with 4 MB real: half spilled.
	if f := res.SpillFraction["a"]; math.Abs(f-0.5) > 0.01 {
		t.Fatalf("spill fraction %v, want 0.5", f)
	}
	if f := res.SpillFraction["b"]; f != 0 {
		t.Fatalf("host b spill %v, want 0", f)
	}
}

func TestSingleHostNoComm(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 10, 10, 1024, 1024, nil)
	p, err := partition.WeightedStrip(100, []string{"a", "b"}, []float64{1, 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tp, p, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	// All on a: 0.1 Mflop/iter at 10 Mflop/s = 10 ms exactly, no comm.
	if math.Abs(res.MeanIterTime()-0.01) > 1e-6 {
		t.Fatalf("solo iteration %v, want 0.01", res.MeanIterTime())
	}
}

func TestInvalidPlacementRejected(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 10, 10, 1024, 1024, nil)
	p, _ := partition.UniformStrip(100, []string{"a", "b"}, 8)
	p.Assignments[0].Points += 3
	if _, err := Run(tp, p, Config{Iterations: 1}); err == nil {
		t.Fatal("corrupt placement accepted")
	}
}

func TestUnknownHostRejected(t *testing.T) {
	eng := sim.NewEngine()
	tp := twoHostTopology(eng, 10, 10, 1024, 1024, nil)
	p, _ := partition.UniformStrip(100, []string{"a", "ghost"}, 8)
	if _, err := Run(tp, p, Config{Iterations: 1}); err == nil {
		t.Fatal("placement on unknown host accepted")
	}
}

func TestRunOnFigure2Testbed(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 2})
	hosts := tp.HostNames()
	p, err := partition.UniformStrip(400, hosts, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tp, p, Config{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || len(res.IterTimes) != 10 {
		t.Fatalf("testbed run: time=%v iters=%d", res.Time, len(res.IterTimes))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		eng := sim.NewEngine()
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 9})
		p, err := partition.UniformStrip(300, tp.HostNames(), 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tp, p, Config{Iterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed jacobi runs diverged: %v vs %v", a, b)
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{IterTimes: []float64{1, 3, 2}, Time: 6}
	if r.MeanIterTime() != 2 {
		t.Fatalf("MeanIterTime %v", r.MeanIterTime())
	}
	if r.MaxIterTime() != 3 {
		t.Fatalf("MaxIterTime %v", r.MaxIterTime())
	}
	empty := &Result{}
	if empty.MeanIterTime() != 0 || empty.MaxIterTime() != 0 {
		t.Fatal("empty result accessors")
	}
}

func BenchmarkJacobiRunTestbed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 2})
		p, err := partition.UniformStrip(500, tp.HostNames(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(tp, p, Config{Iterations: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
