// Package jacobi executes a partitioned two-dimensional Jacobi iteration
// on the simulated metacomputer.
//
// This is the reproduction's stand-in for the paper's KeLP-actuated runs:
// instead of trusting the Planner's cost model, a placement is *executed* —
// every iteration each host computes its strip under whatever ambient load
// the testbed produces at that moment, then exchanges borders with its
// neighbors over the shared networks, with a global synchronization before
// the next sweep (Jacobi updates all points simultaneously, so the
// partitioning problem and the scheduling problem coincide, per Section 5).
//
// Hosts whose strip exceeds real memory pay a spill penalty on the excess
// fraction of their points — the "dramatic reduction in performance" that
// Figure 6 shows when the HPF partition outgrows the SP-2.
package jacobi

import (
	"fmt"
	"math"

	"apples/internal/grid"
	"apples/internal/partition"
)

// Config parameterizes a run. Zero values take the defaults noted below.
type Config struct {
	// Iterations is the number of synchronous sweeps (default 50).
	Iterations int
	// FlopPerPoint is the stencil cost per grid point (default 10).
	FlopPerPoint float64
	// BytesPerPoint is the resident state per point (default 16:
	// two float64 grids).
	BytesPerPoint float64
	// BorderBytesPerPoint is the exchange volume per boundary point
	// (default 8). Used only for reporting; placements carry their border
	// volumes already.
	BorderBytesPerPoint float64
	// SpillFactor multiplies the per-point cost of the out-of-memory
	// fraction of a strip (default 25).
	SpillFactor float64
}

func (c *Config) setDefaults() {
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.FlopPerPoint == 0 {
		c.FlopPerPoint = 10
	}
	if c.BytesPerPoint == 0 {
		c.BytesPerPoint = 16
	}
	if c.BorderBytesPerPoint == 0 {
		c.BorderBytesPerPoint = 8
	}
	if c.SpillFactor == 0 {
		c.SpillFactor = 25
	}
}

// Result reports a completed run.
type Result struct {
	// Time is total wall-clock (virtual) seconds for all iterations.
	Time float64
	// IterTimes is the duration of each sweep.
	IterTimes []float64
	// SpillFraction maps host -> fraction of its points that exceeded
	// real memory (0 for fully resident strips).
	SpillFraction map[string]float64
	// Hosts is the number of hosts that carried work.
	Hosts int
}

// MeanIterTime returns the average sweep duration.
func (r *Result) MeanIterTime() float64 {
	if len(r.IterTimes) == 0 {
		return 0
	}
	return r.Time / float64(len(r.IterTimes))
}

// MaxIterTime returns the slowest sweep.
func (r *Result) MaxIterTime() float64 {
	worst := 0.0
	for _, t := range r.IterTimes {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// worker is one host's per-iteration work under a placement.
type worker struct {
	host  *grid.Host
	asg   partition.Assignment
	mflop float64 // per-iteration compute including spill penalty
	spill float64
}

// newWorkers binds a placement to hosts, computing per-iteration work and
// spill fractions.
func newWorkers(tp *grid.Topology, p *partition.Placement, cfg Config) ([]*worker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var workers []*worker
	for _, a := range p.Assignments {
		if a.Points == 0 {
			continue
		}
		h := tp.Host(a.Host)
		if h == nil {
			return nil, fmt.Errorf("jacobi: placement references unknown host %q", a.Host)
		}
		needMB := float64(a.Points) * cfg.BytesPerPoint / 1e6
		spill := 0.0
		if needMB > h.MemoryMB && needMB > 0 {
			spill = (needMB - h.MemoryMB) / needMB
		}
		mult := 1 + spill*(cfg.SpillFactor-1)
		workers = append(workers, &worker{
			host:  h,
			asg:   a,
			mflop: float64(a.Points) * cfg.FlopPerPoint / 1e6 * mult,
			spill: spill,
		})
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("jacobi: placement has no work")
	}
	return workers, nil
}

// Start begins executing the placement asynchronously: all events are
// scheduled on the topology's engine, and whenDone fires (with the
// completed result) when the last iteration's barrier clears. Start does
// not drive the engine, so several applications can execute concurrently
// on the same metacomputer — each experiencing the others as contention,
// exactly the setting Section 3 describes.
//
// Validation errors are returned synchronously; whenDone is then never
// called.
func Start(tp *grid.Topology, p *partition.Placement, cfg Config, whenDone func(*Result)) error {
	cfg.setDefaults()
	workers, err := newWorkers(tp, p, cfg)
	if err != nil {
		return err
	}

	eng := tp.Engine
	res := &Result{SpillFraction: map[string]float64{}, Hosts: len(workers)}
	for _, w := range workers {
		res.SpillFraction[w.asg.Host] = w.spill
	}

	start := eng.Now()
	iterStart := start
	iter := 0
	outstanding := 0

	var beginIteration func()
	var opDone func()

	opDone = func() {
		outstanding--
		if outstanding > 0 {
			return
		}
		res.IterTimes = append(res.IterTimes, eng.Now()-iterStart)
		iter++
		if iter >= cfg.Iterations {
			res.Time = eng.Now() - start
			whenDone(res)
			return
		}
		beginIteration()
	}

	beginIteration = func() {
		iterStart = eng.Now()
		outstanding = len(workers)
		for _, w := range workers {
			w := w
			w.host.Submit(w.mflop, func() {
				// Compute done: exchange borders. Each border edge sends
				// the strip boundary to the peer; the matching receive is
				// the peer's own send, so one send per edge direction.
				if len(w.asg.Borders) == 0 {
					opDone()
					return
				}
				sends := len(w.asg.Borders)
				for _, b := range w.asg.Borders {
					tp.Send(w.asg.Host, b.Peer, b.Bytes/1e6, func() {
						sends--
						if sends == 0 {
							opDone()
						}
					})
				}
			})
		}
	}

	beginIteration()
	return nil
}

// Run executes the placement on the topology, driving the topology's
// engine until the run completes. It returns an error for invalid
// placements or unknown hosts.
func Run(tp *grid.Topology, p *partition.Placement, cfg Config) (*Result, error) {
	cfg.setDefaults()
	eng := tp.Engine
	var out *Result
	if err := Start(tp, p, cfg, func(r *Result) {
		out = r
		eng.Halt()
	}); err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("jacobi: run stalled (t=%v)", eng.Now())
	}
	if math.IsNaN(out.Time) || out.Time < 0 {
		return nil, fmt.Errorf("jacobi: invalid total time %v", out.Time)
	}
	return out, nil
}
