package jacobi

import (
	"fmt"

	"apples/internal/grid"
	"apples/internal/partition"
	"apples/internal/rms"
)

// Message tags for the RMS-actuated execution.
const (
	tagBorder = 1
	tagDone   = 2
	tagGo     = 3
)

// controlMB is the size of DONE/GO control messages (they pay real
// latency on the simulated network, like any PVM message).
const controlMB = 1e-4

// RunViaRMS executes the placement through the rms (PVM-style)
// resource-management substrate instead of driving hosts directly: one
// task per strip, border exchange as tagged messages, and a coordinator
// task enforcing the iteration barrier with DONE/GO control messages.
//
// This is the Actuator path the paper describes — the agent "implements
// that schedule with respect to the appropriate resource management
// systems" — and it costs slightly more than the idealized Run because
// barrier control traffic crosses the same contended network.
func RunViaRMS(tp *grid.Topology, p *partition.Placement, cfg Config) (*Result, error) {
	cfg.setDefaults()
	workers, err := newWorkers(tp, p, cfg)
	if err != nil {
		return nil, err
	}

	eng := tp.Engine
	m := rms.New(tp)
	res := &Result{SpillFraction: map[string]float64{}, Hosts: len(workers)}
	for _, w := range workers {
		res.SpillFraction[w.asg.Host] = w.spill
	}

	start := eng.Now()
	iterStart := start
	iter := 0

	taskOf := make(map[string]rms.TaskID, len(workers))
	var coord *rms.Task

	// The coordinator lives on the first strip's host.
	_, err = m.Spawn(workers[0].asg.Host, func(t *rms.Task) {
		coord = t
		var barrier func(msgs []rms.Message)
		barrier = func(msgs []rms.Message) {
			res.IterTimes = append(res.IterTimes, eng.Now()-iterStart)
			iter++
			if iter >= cfg.Iterations {
				res.Time = eng.Now() - start
				eng.Halt()
				return
			}
			iterStart = eng.Now()
			for _, id := range taskOf {
				t.Send(id, tagGo, controlMB, nil)
			}
			t.RecvN(tagDone, len(workers), barrier)
		}
		t.RecvN(tagDone, len(workers), barrier)
	})
	if err != nil {
		return nil, err
	}

	for _, w := range workers {
		w := w
		id, err := m.Spawn(w.asg.Host, func(t *rms.Task) {
			var sweep func()
			sweep = func() {
				t.Compute(w.mflop, func() {
					for _, b := range w.asg.Borders {
						t.Send(taskOf[b.Peer], tagBorder, b.Bytes/1e6, nil)
					}
					t.RecvN(tagBorder, len(w.asg.Borders), func([]rms.Message) {
						t.Send(coord.ID(), tagDone, controlMB, nil)
					})
				})
			}
			var onGo func(rms.Message)
			onGo = func(rms.Message) {
				sweep()
				t.Recv(tagGo, onGo)
			}
			t.Recv(tagGo, onGo)
			sweep() // first iteration starts unprompted
		})
		if err != nil {
			return nil, err
		}
		taskOf[w.asg.Host] = id
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if iter < cfg.Iterations {
		return nil, fmt.Errorf("jacobi: RMS run stalled at iteration %d/%d", iter, cfg.Iterations)
	}
	return res, nil
}
