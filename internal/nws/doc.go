// Package nws reimplements the Network Weather Service the paper's AppLeS
// agents rely on for dynamic information: periodic sensing of CPU
// availability and network capability, plus short-term forecasts of both.
//
// Forecasting follows the actual NWS design (Wolski's postcasting
// approach): every monitored series feeds a bank of simple forecasters
// (last value, running/sliding means, medians, exponential smoothing at
// several gains, an online-fit AR(1), ...). Each new measurement first
// scores every forecaster's previous prediction, then updates it; a
// Forecast query returns the prediction of the forecaster with the lowest
// accumulated error *on this series so far*. No single predictor wins on
// all load processes — dynamic selection is what makes the service robust,
// and the ablation benchmarks in this repository reproduce that effect.
//
// The sensing hot path is incremental and allocation-free in steady
// state: all windowed forecasters in a bank share one fixed-capacity ring
// buffer (pushed exactly once per measurement), order statistics (sliding
// median, trimmed mean) come from a sorted multiset updated in O(log k)
// per measurement, and the windowed AR(1) maintains shifted window sums
// instead of re-fitting from scratch. A Service batches every sensor onto
// one engine event per period (ObserveAll), so watching ten thousand
// resources costs the event queue no more than watching ten. The legacy
// copy+sort implementations are kept (legacy.go) as differential-test
// oracles: the incremental forecasters are pinned bit-identical to them
// (windowed AR(1): identical up to float re-association, ~1e-9 relative).
package nws
