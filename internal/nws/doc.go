// Package nws reimplements the Network Weather Service the paper's AppLeS
// agents rely on for dynamic information: periodic sensing of CPU
// availability and network capability, plus short-term forecasts of both.
//
// Forecasting follows the actual NWS design (Wolski's postcasting
// approach): every monitored series feeds a bank of simple forecasters
// (last value, running/sliding means, medians, exponential smoothing at
// several gains, an online-fit AR(1), ...). Each new measurement first
// scores every forecaster's previous prediction, then updates it; a
// Forecast query returns the prediction of the forecaster with the lowest
// accumulated error *on this series so far*. No single predictor wins on
// all load processes — dynamic selection is what makes the service robust,
// and the ablation benchmarks in this repository reproduce that effect.
package nws
