package nws

import (
	"math"
	"testing"
)

func TestWindowedAR1RecoversAfterRegimeShift(t *testing.T) {
	full := NewAR1Fit()
	windowed := NewWindowedAR1(20, "war1_20")
	// Long stretch at level 1, then a shift to level 5 with AR structure.
	for i := 0; i < 300; i++ {
		full.Update(1)
		windowed.Update(1)
	}
	x := 5.0
	for i := 0; i < 40; i++ {
		full.Update(x)
		windowed.Update(x)
		x = 5 + 0.8*(x-5) + 0.05*float64(i%3-1)
	}
	next := 5 + 0.8*(x-5)
	errFull := math.Abs(full.Forecast() - next)
	errWin := math.Abs(windowed.Forecast() - next)
	if errWin >= errFull {
		t.Fatalf("windowed AR err %v should beat full-history AR err %v after a shift", errWin, errFull)
	}
}

func TestWindowedAR1SmallHistory(t *testing.T) {
	f := NewWindowedAR1(10, "w")
	if f.Ready() {
		t.Fatal("fresh forecaster Ready")
	}
	f.Update(2)
	if !f.Ready() || f.Forecast() != 2 {
		t.Fatalf("one-sample forecast %v", f.Forecast())
	}
	f.Update(2)
	if f.Forecast() != 2 {
		t.Fatalf("two-sample forecast %v", f.Forecast())
	}
}

func TestWindowedAR1ConstantSeries(t *testing.T) {
	f := NewWindowedAR1(10, "w")
	for i := 0; i < 50; i++ {
		f.Update(3)
	}
	if math.Abs(f.Forecast()-3) > 1e-9 {
		t.Fatalf("constant series forecast %v", f.Forecast())
	}
}

func TestWindowedAR1BadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=2 did not panic")
		}
	}()
	NewWindowedAR1(2, "bad")
}

func TestWindowedAR1InCustomBank(t *testing.T) {
	bank := NewBank(append(DefaultForecasters(), NewWindowedAR1(20, "war1_20"))...)
	for i := 0; i < 100; i++ {
		bank.Update(float64(i % 4))
	}
	if _, _, ok := bank.Forecast(); !ok {
		t.Fatal("custom bank produced no forecast")
	}
	if _, scored := bank.MSE()["war1_20"]; !scored {
		t.Fatal("windowed AR never scored in the bank")
	}
}
