package nws

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"apples/internal/sim"
)

// diffSeries builds deterministic test series of several shapes: smooth
// AR(1)-like, spiky, stepped, and duplicate-heavy (duplicates stress the
// sorted-multiset remove path).
func diffSeries(seed int64, n int, kind int) []float64 {
	rng := sim.NewRand(seed)
	out := make([]float64, n)
	x := rng.Uniform(0, 1)
	for i := range out {
		switch kind % 4 {
		case 0: // smooth autocorrelated
			x = 0.5 + 0.8*(x-0.5) + rng.Normal(0, 0.1)
			out[i] = x
		case 1: // spiky
			out[i] = rng.Uniform(0, 1)
			if rng.Bool(0.05) {
				out[i] = rng.Uniform(20, 50)
			}
		case 2: // stepped with plateaus
			if i%17 == 0 {
				x = rng.Uniform(0, 4)
			}
			out[i] = x
		default: // duplicate-heavy small alphabet
			out[i] = float64(rng.Intn(5))
		}
	}
	return out
}

// Differential: the incremental sliding mean/median/trimmed mean return
// bit-identical forecasts to the legacy copy+sort implementations after
// every update, across window sizes and series shapes.
func TestIncrementalMatchesLegacyBitIdentical(t *testing.T) {
	windows := []int{1, 2, 3, 5, 8, 21, 50, 101}
	for _, k := range windows {
		for kind := 0; kind < 4; kind++ {
			series := diffSeries(int64(100*k+kind), 400, kind)
			pairs := []struct {
				name        string
				incr, legcy Forecaster
			}{
				{"mean", NewSlidingMean(k, "m"), NewLegacySlidingMean(k, "m")},
				{"median", NewSlidingMedian(k, "m"), NewLegacySlidingMedian(k, "m")},
			}
			if trim := k / 4; 2*trim < k {
				pairs = append(pairs, struct {
					name        string
					incr, legcy Forecaster
				}{"trimmed", NewTrimmedMean(k, trim, "t"), NewLegacyTrimmedMean(k, trim, "t")})
			}
			for _, p := range pairs {
				for i, v := range series {
					if p.incr.Ready() != p.legcy.Ready() {
						t.Fatalf("%s k=%d kind=%d: Ready mismatch at %d", p.name, k, kind, i)
					}
					p.incr.Update(v)
					p.legcy.Update(v)
					got, want := p.incr.Forecast(), p.legcy.Forecast()
					if got != want {
						t.Fatalf("%s k=%d kind=%d step %d: incremental %v != legacy %v",
							p.name, k, kind, i, got, want)
					}
				}
			}
		}
	}
}

// Differential: the incrementally-maintained windowed AR(1) matches the
// legacy two-pass re-fit to floating-point re-association error (the
// window moments are the same sums, accumulated in a different order).
func TestWindowedAR1MatchesLegacy(t *testing.T) {
	for _, k := range []int{3, 5, 21, 101} {
		for kind := 0; kind < 4; kind++ {
			series := diffSeries(int64(7*k+kind), 400, kind)
			incr := NewWindowedAR1(k, "w")
			legcy := NewLegacyWindowedAR1(k, "w")
			for i, v := range series {
				incr.Update(v)
				legcy.Update(v)
				got, want := incr.Forecast(), legcy.Forecast()
				scale := math.Max(1, math.Abs(want))
				if math.Abs(got-want) > 1e-9*scale {
					t.Fatalf("war1 k=%d kind=%d step %d: incremental %v vs legacy %v",
						k, kind, i, got, want)
				}
			}
		}
	}
}

// Differential: a bank of incremental copy+sort-family forecasters (which
// share one ring) accumulates bit-identical error state and selections to
// a bank of the legacy ones.
func TestBankSharedRingMatchesLegacyBank(t *testing.T) {
	mkIncr := func() *Bank {
		return NewBank(
			NewLastValue(),
			NewSlidingMean(5, "win_mean_5"),
			NewSlidingMean(20, "win_mean_20"),
			NewSlidingMedian(5, "win_med_5"),
			NewSlidingMedian(21, "win_med_21"),
			NewTrimmedMean(15, 3, "trim_15_3"),
		)
	}
	mkLegacy := func() *Bank {
		return NewBank(
			NewLastValue(),
			NewLegacySlidingMean(5, "win_mean_5"),
			NewLegacySlidingMean(20, "win_mean_20"),
			NewLegacySlidingMedian(5, "win_med_5"),
			NewLegacySlidingMedian(21, "win_med_21"),
			NewLegacyTrimmedMean(15, 3, "trim_15_3"),
		)
	}
	f := func(seed int64, kindRaw uint8) bool {
		kind := int(kindRaw % 4)
		series := diffSeries(seed, 300, kind)
		a, b := mkIncr(), mkLegacy()
		for _, v := range series {
			a.Update(v)
			b.Update(v)
		}
		va, bya, oka := a.Forecast()
		vb, byb, okb := b.Forecast()
		if va != vb || bya != byb || oka != okb {
			return false
		}
		ma, mb := a.MSE(), b.MSE()
		if len(ma) != len(mb) {
			return false
		}
		for name, v := range ma {
			if mb[name] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: forecasters sharing a bank ring forecast identically to
// standalone instances of themselves fed the same series (the shared ring
// is pure representation sharing).
func TestSharedRingEquivalentToPrivateRings(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		kind := int(kindRaw % 4)
		series := diffSeries(seed, 200, kind)
		shared := []Forecaster{
			NewSlidingMean(7, "a"),
			NewSlidingMedian(13, "b"),
			NewTrimmedMean(21, 4, "c"),
			NewWindowedAR1(9, "d"),
		}
		private := []Forecaster{
			NewSlidingMean(7, "a"),
			NewSlidingMedian(13, "b"),
			NewTrimmedMean(21, 4, "c"),
			NewWindowedAR1(9, "d"),
		}
		bank := NewBank(shared...)
		for _, v := range series {
			bank.Update(v)
			for _, p := range private {
				p.Update(v)
			}
		}
		for i := range shared {
			if shared[i].Forecast() != private[i].Forecast() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A forecaster that already absorbed history must keep its private buffer
// when handed to a bank, and still forecast correctly.
func TestBankKeepsWarmForecasterPrivate(t *testing.T) {
	warm := NewSlidingMedian(5, "warm")
	for _, v := range []float64{9, 1, 7} {
		warm.Update(v)
	}
	bank := NewBank(warm, NewSlidingMedian(5, "cold"))
	for _, v := range []float64{2, 8} {
		bank.Update(v)
	}
	// warm window: 9,1,7,2,8 -> median 7; cold window: 2,8 -> median 5.
	if got := warm.Forecast(); got != 7 {
		t.Fatalf("warm median %v, want 7", got)
	}
	ref := NewLegacySlidingMedian(5, "ref")
	for _, v := range []float64{2, 8} {
		ref.Update(v)
	}
	if got, want := bank.fcs[1].Forecast(), ref.Forecast(); got != want {
		t.Fatalf("cold median %v, want %v", got, want)
	}
}

// Numerical stability: the running mean and full-history AR(1) must stay
// accurate on a long series riding a 1e9 offset, where the legacy raw
// Σx/Σx² accumulation loses the signal to cancellation.
func TestStabilityOnLargeOffsetSeries(t *testing.T) {
	const offset = 1e9
	mean := NewRunningMean()
	ar := NewAR1Fit()
	war := NewWindowedAR1(21, "w")
	// Alternating ±1 around the offset: true mean = offset, and the next
	// value is perfectly predicted by -1 * (last - mean) + mean.
	n := 200000
	for i := 0; i < n; i++ {
		v := offset + float64(1-2*(i%2))
		mean.Update(v)
		ar.Update(v)
		war.Update(v)
	}
	if got := mean.Forecast(); math.Abs(got-offset) > 1e-3 {
		t.Fatalf("running mean %v, want %v", got, offset)
	}
	// Last value was offset-1 (i ends odd), so an accurate AR(1) with
	// phi ~ -1 predicts ~ offset+1.
	if got := ar.Forecast(); math.Abs(got-(offset+1)) > 0.05 {
		t.Fatalf("ar1 forecast %v, want ~%v", got, offset+1)
	}
	// The finite-window fit biases phi toward zero (|phi| ~ 0.86 at
	// k=21), so only require the forecast to sit clearly above the mean —
	// catastrophic cancellation would pin phi (and the excursion) to ~0.
	if got := war.Forecast(); got < offset+0.5 || got > offset+1.5 {
		t.Fatalf("windowed ar1 forecast %v, want ~%v", got, offset+1)
	}
}

// ring unit coverage: wraparound, back indexing, bounded values().
func TestRingWraparound(t *testing.T) {
	r := newRing(3)
	for i := 1; i <= 5; i++ {
		r.push(float64(i))
	}
	if r.len() != 3 || r.total != 5 {
		t.Fatalf("len=%d total=%d", r.len(), r.total)
	}
	for i, want := range []float64{5, 4, 3} {
		if got := r.back(i); got != want {
			t.Fatalf("back(%d)=%v, want %v", i, got, want)
		}
	}
	vals := r.values()
	if fmt.Sprint(vals) != "[3 4 5]" {
		t.Fatalf("values %v", vals)
	}
}

func TestOrderedWindowDuplicates(t *testing.T) {
	w := newOrderedWindow(4)
	for _, v := range []float64{2, 2, 1, 2} {
		w.insert(v)
	}
	w.remove(2)
	if got := fmt.Sprint(w.sorted); got != "[1 2 2]" {
		t.Fatalf("after remove: %v", got)
	}
	if w.median() != 2 {
		t.Fatalf("median %v", w.median())
	}
}
