package nws

import (
	"math"
	"testing"
	"testing/quick"

	"apples/internal/load"
	"apples/internal/sim"
)

func TestBankEmptyNotReady(t *testing.T) {
	b := NewBank()
	if b.Ready() {
		t.Fatal("empty bank is Ready")
	}
	if _, _, ok := b.Forecast(); ok {
		t.Fatal("empty bank produced a forecast")
	}
}

func TestBankConstantSeries(t *testing.T) {
	b := NewBank()
	for i := 0; i < 50; i++ {
		b.Update(3)
	}
	v, _, ok := b.Forecast()
	if !ok || math.Abs(v-3) > 1e-9 {
		t.Fatalf("constant-series forecast %v ok=%v, want 3", v, ok)
	}
	rmse, ok := b.ErrorEstimate()
	if !ok || rmse > 1e-9 {
		t.Fatalf("constant-series RMSE %v, want 0", rmse)
	}
}

func TestBankPicksLastValueOnPersistentSeries(t *testing.T) {
	// A slow ramp is best predicted by last-value among our bank.
	b := NewBank()
	for i := 0; i < 200; i++ {
		b.Update(float64(i) * 0.1)
	}
	_, by, ok := b.Forecast()
	if !ok {
		t.Fatal("no forecast")
	}
	if by != "last" && by != "exp_0.70" && by != "ar1" && by != "adaptive" {
		t.Fatalf("ramp series selected %q, want a tracking forecaster", by)
	}
}

func TestBankPicksRobustOnSpikySeries(t *testing.T) {
	// Mostly 1 with occasional huge spikes: medians/means beat last-value,
	// because last-value pays twice per spike.
	b := NewBank()
	for i := 0; i < 400; i++ {
		v := 1.0
		if i%20 == 19 {
			v = 50
		}
		b.Update(v)
	}
	mse := b.MSE()
	if mse["win_med_21"] >= mse["last"] {
		t.Fatalf("median MSE %v should beat last-value MSE %v on spiky series",
			mse["win_med_21"], mse["last"])
	}
	_, by, _ := b.Forecast()
	if by == "last" {
		t.Fatalf("bank selected last-value on spiky series (MSEs: %v)", mse)
	}
}

// Property: the bank's selected forecaster has minimal MSE among all scored
// forecasters — dynamic selection is exactly argmin.
func TestBankSelectionIsArgminProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRand(seed)
		src := load.NewAR1(rng.Fork(), 1, 1, 0.7, 0.4)
		b := NewBank()
		t0 := 0.0
		for i := 0; i < 100; i++ {
			v, until := src.Sample(t0)
			b.Update(v)
			t0 = until
		}
		_, by, ok := b.Forecast()
		if !ok {
			return false
		}
		mse := b.MSE()
		best := math.Inf(1)
		for _, v := range mse {
			if v < best {
				best = v
			}
		}
		return mse[by] <= best+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBankMAEPopulated(t *testing.T) {
	b := NewBank()
	for i := 0; i < 30; i++ {
		b.Update(float64(i % 3))
	}
	mae := b.MAE()
	if len(mae) == 0 {
		t.Fatal("MAE map empty after 30 updates")
	}
	for name, v := range mae {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("forecaster %s MAE = %v", name, v)
		}
	}
}

func TestBankLastAndLen(t *testing.T) {
	b := NewBank()
	b.Update(4)
	b.Update(9)
	if b.Len() != 2 || b.Last() != 9 {
		t.Fatalf("Len=%d Last=%v, want 2, 9", b.Len(), b.Last())
	}
}

// BenchmarkBankUpdate and BenchmarkServiceTick live in bench_test.go.
