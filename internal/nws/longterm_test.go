package nws

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

func TestBankMean(t *testing.T) {
	b := NewBank()
	if b.Mean() != 0 {
		t.Fatalf("empty bank mean %v", b.Mean())
	}
	for _, v := range []float64{1, 2, 3, 4} {
		b.Update(v)
	}
	if b.Mean() != 2.5 {
		t.Fatalf("mean %v, want 2.5", b.Mean())
	}
}

func TestAvailabilityLongTermAveragesTransients(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	// Load alternates 0 and 3 every 50 s: availability alternates 1 and
	// 0.25, mean 0.625. The one-step forecast tracks the current phase;
	// the long-term estimate must sit near the mean.
	var steps []load.Step
	for i := 0; i < 40; i++ {
		v := 0.0
		if i%2 == 1 {
			v = 3
		}
		steps = append(steps, load.Step{At: float64(i) * 50, Value: v})
	}
	h := tp.AddHost(grid.HostSpec{Name: "h", Speed: 10, MemoryMB: 64, Load: load.NewTrace(steps)})
	tp.Finalize()
	svc := NewService(eng, 10)
	svc.WatchHost(h)
	if err := eng.RunUntil(1990); err != nil {
		t.Fatal(err)
	}
	lt, ok := svc.AvailabilityLongTerm("h")
	if !ok {
		t.Fatal("no long-term estimate")
	}
	if math.Abs(lt-0.625) > 0.05 {
		t.Fatalf("long-term availability %v, want ~0.625", lt)
	}
	// The one-step forecast at the end of a phase should be near that
	// phase's level, i.e. far from the mean at least sometimes.
	fc, _ := svc.AvailabilityForecast("h")
	if math.Abs(fc-lt) < 1e-6 {
		t.Logf("forecast %v equals long-term %v (possible but unusual)", fc, lt)
	}
}

func TestBandwidthLongTerm(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "a", Speed: 1, MemoryMB: 1})
	tp.AddHost(grid.HostSpec{Name: "b", Speed: 1, MemoryMB: 1})
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0, Bandwidth: 8, CrossTraffic: load.Constant(1)})
	tp.Attach("a", l)
	tp.Attach("b", l)
	tp.Finalize()
	svc := NewService(eng, 5)
	svc.WatchLink(l)
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	v, ok := svc.BandwidthLongTerm("wire")
	if !ok || math.Abs(v-4) > 1e-9 {
		t.Fatalf("long-term bandwidth %v ok=%v, want 4", v, ok)
	}
	if bw := svc.RouteBandwidthLongTerm(tp, "a", "b"); math.Abs(bw-4) > 1e-9 {
		t.Fatalf("route long-term %v, want 4", bw)
	}
}

func TestLongTermUnwatched(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng, 10)
	if _, ok := svc.AvailabilityLongTerm("ghost"); ok {
		t.Fatal("unwatched host returned long-term estimate")
	}
	if _, ok := svc.BandwidthLongTerm("ghost"); ok {
		t.Fatal("unwatched link returned long-term estimate")
	}
}
