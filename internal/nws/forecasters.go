package nws

// Forecaster is an online one-step-ahead predictor. Update feeds one
// measurement; Forecast predicts the next one. Ready reports whether the
// forecaster has enough history to predict.
//
// Every forecaster in this package is incremental: Update does O(log k)
// work for a window of k samples (plus an O(trim)/O(1) standing-forecast
// refresh) and Forecast is an O(1) read of the standing prediction. The
// pre-optimization copy+sort implementations survive as NewLegacy*
// constructors in legacy.go; differential tests pin the incremental
// forms to them value-for-value.
type Forecaster interface {
	Name() string
	Update(v float64)
	Forecast() float64
	Ready() bool
}

// scoreAbsorber is the bank's combined score+absorb hot path: it returns
// the standing forecast as of before v (what the bank scores), then
// absorbs v — one virtual call per forecaster per tick instead of the
// Ready/Forecast/Update triple, and no recomputation of a forecast that
// the forecaster already keeps on hand. Foreign Forecaster
// implementations that lack it still work through the generic path.
type scoreAbsorber interface {
	scoreAbsorb(v float64) (standing float64, ready bool)
}

// ringWindowed is implemented by windowed forecasters so a Bank can
// replace their private rings with one shared ring sized to the largest
// window (see NewBank). attachRing reports whether the forecaster
// adopted the ring; it declines if either side has already absorbed
// samples or the ring is too small for its window.
type ringWindowed interface {
	window() int
	attachRing(r *ring) bool
}

// --- shared windowed core ---

// windowed is the common core of every sliding-window forecaster: the
// window size k, the backing ring (private until a bank shares its own),
// the current window occupancy, and the cached standing forecast.
type windowed struct {
	name     string
	k        int
	r        *ring
	own      bool // this forecaster pushes into r itself
	n        int  // samples currently in the window
	standing float64
}

func newWindowed(k int, name string) windowed {
	return windowed{name: name, k: k, r: newRing(k), own: true}
}

func (w *windowed) Name() string      { return w.name }
func (w *windowed) Ready() bool       { return w.n > 0 }
func (w *windowed) Forecast() float64 { return w.standing }
func (w *windowed) window() int       { return w.k }

func (w *windowed) attachRing(r *ring) bool {
	if w.r.total != 0 || r.total != 0 || len(r.data) < w.k {
		return false
	}
	w.r = r
	w.own = false
	return true
}

// evicting reports whether absorbing one more sample pushes one out of
// the window, and returns it.
func (w *windowed) evicting() (float64, bool) {
	if w.n < w.k {
		return 0, false
	}
	return w.r.back(w.k - 1), true
}

// --- last value ---

type lastValue struct {
	v    float64
	seen bool
}

// NewLastValue predicts the next measurement equals the current one. Hard
// to beat on strongly autocorrelated series like Unix load.
func NewLastValue() Forecaster { return &lastValue{} }

func (f *lastValue) Name() string      { return "last" }
func (f *lastValue) Update(v float64)  { f.v, f.seen = v, true }
func (f *lastValue) Forecast() float64 { return f.v }
func (f *lastValue) Ready() bool       { return f.seen }
func (f *lastValue) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.v, f.seen
	f.v, f.seen = v, true
	return prev, ready
}

// --- running mean ---

type runningMean struct {
	mean float64
	n    int
}

// NewRunningMean predicts the mean of the entire history, maintained as a
// Welford update so precision holds on long series with large offsets.
// Best for stationary noisy series.
func NewRunningMean() Forecaster { return &runningMean{} }

func (f *runningMean) Name() string { return "run_mean" }
func (f *runningMean) Update(v float64) {
	f.n++
	f.mean += (v - f.mean) / float64(f.n)
}
func (f *runningMean) Forecast() float64 { return f.mean }
func (f *runningMean) Ready() bool       { return f.n > 0 }
func (f *runningMean) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.mean, f.n > 0
	f.Update(v)
	return prev, ready
}

// --- sliding window mean ---

type slidingMean struct {
	windowed
	sum float64
}

// NewSlidingMean predicts the mean of the last k measurements, maintained
// by add/evict corrections against the ring.
func NewSlidingMean(k int, name string) Forecaster {
	if k < 1 {
		panic("nws: sliding window must be >= 1")
	}
	return &slidingMean{windowed: newWindowed(k, name)}
}

func (f *slidingMean) absorb(v float64) {
	// Same arithmetic order as the legacy buffer: add the new sample,
	// then subtract the evicted one — keeps the sums bit-identical.
	f.sum += v
	if old, ok := f.evicting(); ok {
		f.sum -= old
	} else {
		f.n++
	}
	f.standing = f.sum / float64(f.n)
}

func (f *slidingMean) Update(v float64) {
	f.absorb(v)
	if f.own {
		f.r.push(v)
	}
}

func (f *slidingMean) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.standing, f.n > 0
	f.Update(v)
	return prev, ready
}

// --- sliding window median ---

type slidingMedian struct {
	windowed
	win *orderedWindow
}

// NewSlidingMedian predicts the median of the last k measurements; robust
// to load spikes. The window is kept as a sorted multiset, so an update
// is a binary-search insert/remove instead of a copy + full sort.
func NewSlidingMedian(k int, name string) Forecaster {
	if k < 1 {
		panic("nws: sliding window must be >= 1")
	}
	return &slidingMedian{windowed: newWindowed(k, name), win: newOrderedWindow(k)}
}

func (f *slidingMedian) absorb(v float64) {
	if old, ok := f.evicting(); ok {
		f.win.remove(old)
	} else {
		f.n++
	}
	f.win.insert(v)
	f.standing = f.win.median()
}

func (f *slidingMedian) Update(v float64) {
	f.absorb(v)
	if f.own {
		f.r.push(v)
	}
}

func (f *slidingMedian) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.standing, f.n > 0
	f.Update(v)
	return prev, ready
}

// --- exponential smoothing ---

type expSmooth struct {
	name  string
	alpha float64
	s     float64
	seen  bool
}

// NewExpSmoothing predicts s(t) = alpha*v + (1-alpha)*s(t-1). Small alpha
// tracks slow trends; large alpha approaches last-value.
func NewExpSmoothing(alpha float64, name string) Forecaster {
	if alpha <= 0 || alpha > 1 {
		panic("nws: smoothing gain must be in (0,1]")
	}
	return &expSmooth{alpha: alpha, name: name}
}

func (f *expSmooth) Name() string { return f.name }
func (f *expSmooth) Update(v float64) {
	if !f.seen {
		f.s, f.seen = v, true
		return
	}
	f.s = f.alpha*v + (1-f.alpha)*f.s
}
func (f *expSmooth) Forecast() float64 { return f.s }
func (f *expSmooth) Ready() bool       { return f.seen }
func (f *expSmooth) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.s, f.seen
	f.Update(v)
	return prev, ready
}

// --- adaptive exponential smoothing ---

type adaptiveSmooth struct {
	s, err float64
	absErr float64
	seen   bool
}

// NewAdaptiveSmoothing is Trigg-Leach adaptive-response smoothing: the gain
// is the |smoothed error| / smoothed |error| tracking signal, so it speeds
// up after level shifts and settles on stable stretches.
func NewAdaptiveSmoothing() Forecaster { return &adaptiveSmooth{} }

func (f *adaptiveSmooth) Name() string { return "adaptive" }
func (f *adaptiveSmooth) Update(v float64) {
	if !f.seen {
		f.s, f.seen = v, true
		return
	}
	const beta = 0.2
	e := v - f.s
	f.err = beta*e + (1-beta)*f.err
	ae := e
	if ae < 0 {
		ae = -ae
	}
	f.absErr = beta*ae + (1-beta)*f.absErr
	gain := 0.2
	if f.absErr > 1e-12 {
		gain = f.err / f.absErr
		if gain < 0 {
			gain = -gain
		}
		if gain > 1 {
			gain = 1
		}
	}
	f.s += gain * e
}
func (f *adaptiveSmooth) Forecast() float64 { return f.s }
func (f *adaptiveSmooth) Ready() bool       { return f.seen }
func (f *adaptiveSmooth) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.s, f.seen
	f.Update(v)
	return prev, ready
}

// --- online AR(1) ---

type ar1Fit struct {
	shift    float64 // first sample; all sums run on y = x - shift
	prevY    float64
	seen     int
	sumY     float64
	sumYY    float64
	sumLagYY float64
	n        float64
}

// NewAR1Fit predicts with an AR(1) model whose mean and lag-1 coefficient
// are estimated online from the whole history:
//
//	x(t+1) = mean + phi*(x(t) - mean)
//
// The moment sums are kept on samples shifted by the first measurement
// (phi is shift-invariant, and the mean shifts back exactly), which keeps
// the fit numerically stable on long series riding a large offset, where
// raw Σx² − n·mean² cancels catastrophically.
func NewAR1Fit() Forecaster { return &ar1Fit{} }

func (f *ar1Fit) Name() string { return "ar1" }
func (f *ar1Fit) Update(v float64) {
	if f.seen == 0 {
		f.shift = v
	}
	y := v - f.shift
	if f.seen > 0 {
		f.sumLagYY += f.prevY * y
		f.n++
	}
	f.sumY += y
	f.sumYY += y * y
	f.seen++
	f.prevY = y
}
func (f *ar1Fit) Forecast() float64 {
	mean := f.sumY / float64(f.seen)
	phi := 0.0
	if f.n >= 2 {
		// lag-1 autocovariance / variance, both around the running mean
		cov := f.sumLagYY/f.n - mean*mean
		variance := f.sumYY/float64(f.seen) - mean*mean
		if variance > 1e-12 {
			phi = cov / variance
			if phi > 1 {
				phi = 1
			}
			if phi < -1 {
				phi = -1
			}
		}
	}
	return f.shift + mean + phi*(f.prevY-mean)
}
func (f *ar1Fit) Ready() bool { return f.seen > 0 }
func (f *ar1Fit) scoreAbsorb(v float64) (float64, bool) {
	var prev float64
	ready := f.seen > 0
	if ready {
		prev = f.Forecast()
	}
	f.Update(v)
	return prev, ready
}

// --- windowed AR(1) ---

type windowedAR1 struct {
	windowed
	shift       float64 // first sample ever; sums run on y = x - shift
	s, q, l     float64 // window Σy, Σy², Σ adjacent y·y products
	first, last float64 // oldest and newest shifted samples in the window
}

// NewWindowedAR1 fits the AR(1) mean and lag-1 coefficient over only the
// last k measurements, so it re-converges quickly after regime shifts
// that the whole-history NewAR1Fit averages away. The window moments
// (Σy, Σy², Σy·y₋₁ on samples shifted by the first measurement, for
// numerical stability under large offsets) are maintained by add/evict
// corrections against the ring instead of a full per-tick re-fit. Not
// part of the default bank (the reproduced experiments fix that set);
// callers compose it via
// NewBank(append(DefaultForecasters(), NewWindowedAR1(30, "war1_30"))...).
func NewWindowedAR1(k int, name string) Forecaster {
	if k < 3 {
		panic("nws: windowed AR(1) needs k >= 3")
	}
	return &windowedAR1{windowed: newWindowed(k, name)}
}

func (f *windowedAR1) absorb(v float64) {
	if f.r.total == 0 {
		f.shift = v
	}
	y := v - f.shift
	if f.n >= 1 {
		f.l += (f.r.back(0) - f.shift) * y // new adjacent pair (latest, v)
	}
	if old, ok := f.evicting(); ok {
		oldY := old - f.shift
		f.s -= oldY
		f.q -= oldY * oldY
		f.l -= oldY * (f.r.back(f.k-2) - f.shift) // pair between the two oldest
	} else {
		f.n++
	}
	f.s += y
	f.q += y * y
	f.last = y
	if f.n >= 2 {
		f.first = f.r.back(f.n-2) - f.shift // oldest survivor (v not yet pushed)
	} else {
		f.first = y
	}
	f.refit()
}

// refit recomputes the standing forecast from the window moments: the
// centered sums the legacy fit looped for fall out algebraically as
//
//	Σ(y−m)²          = Σy² − n·m²
//	Σ(y₋₁−m)(y−m)    = Σy·y₋₁ − m(Σy−first) − m(Σy−last) + (n−1)m²
//
// both invariant under the first-sample shift, which only moves the mean.
func (f *windowedAR1) refit() {
	if f.n < 3 {
		f.standing = f.shift + f.last
		return
	}
	n := float64(f.n)
	mean := f.s / n
	sumYY := f.q - n*mean*mean
	sumLag := f.l - mean*((f.s-f.last)+(f.s-f.first)) + (n-1)*mean*mean
	phi := 0.0
	if sumYY > 1e-12 {
		phi = sumLag / sumYY
		if phi > 1 {
			phi = 1
		}
		if phi < -1 {
			phi = -1
		}
	}
	f.standing = f.shift + mean + phi*(f.last-mean)
}

func (f *windowedAR1) Update(v float64) {
	f.absorb(v)
	if f.own {
		f.r.push(v)
	}
}

func (f *windowedAR1) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.standing, f.n > 0
	f.Update(v)
	return prev, ready
}

// --- trimmed sliding mean ---

type trimmedMean struct {
	windowed
	trim int
	win  *orderedWindow
}

// NewTrimmedMean predicts the mean of the last k measurements after
// dropping the `trim` largest and smallest.
func NewTrimmedMean(k, trim int, name string) Forecaster {
	if k < 1 || trim < 0 || 2*trim >= k {
		panic("nws: invalid trimmed-mean window")
	}
	return &trimmedMean{windowed: newWindowed(k, name), trim: trim, win: newOrderedWindow(k)}
}

func (f *trimmedMean) absorb(v float64) {
	if old, ok := f.evicting(); ok {
		f.win.remove(old)
	} else {
		f.n++
	}
	f.win.insert(v)
	f.standing = f.win.trimmedMean(f.trim)
}

func (f *trimmedMean) Update(v float64) {
	f.absorb(v)
	if f.own {
		f.r.push(v)
	}
}

func (f *trimmedMean) scoreAbsorb(v float64) (float64, bool) {
	prev, ready := f.standing, f.n > 0
	f.Update(v)
	return prev, ready
}

// DefaultForecasters returns the standard NWS-style predictor bank.
func DefaultForecasters() []Forecaster {
	return []Forecaster{
		NewLastValue(),
		NewRunningMean(),
		NewSlidingMean(5, "win_mean_5"),
		NewSlidingMean(20, "win_mean_20"),
		NewSlidingMedian(5, "win_med_5"),
		NewSlidingMedian(21, "win_med_21"),
		NewExpSmoothing(0.05, "exp_0.05"),
		NewExpSmoothing(0.3, "exp_0.30"),
		NewExpSmoothing(0.7, "exp_0.70"),
		NewAdaptiveSmoothing(),
		NewAR1Fit(),
		NewTrimmedMean(15, 3, "trim_15_3"),
	}
}
