package nws

import "sort"

// Forecaster is an online one-step-ahead predictor. Update feeds one
// measurement; Forecast predicts the next one. Ready reports whether the
// forecaster has enough history to predict.
type Forecaster interface {
	Name() string
	Update(v float64)
	Forecast() float64
	Ready() bool
}

// --- last value ---

type lastValue struct {
	v    float64
	seen bool
}

// NewLastValue predicts the next measurement equals the current one. Hard
// to beat on strongly autocorrelated series like Unix load.
func NewLastValue() Forecaster { return &lastValue{} }

func (f *lastValue) Name() string      { return "last" }
func (f *lastValue) Update(v float64)  { f.v, f.seen = v, true }
func (f *lastValue) Forecast() float64 { return f.v }
func (f *lastValue) Ready() bool       { return f.seen }

// --- running mean ---

type runningMean struct {
	sum float64
	n   int
}

// NewRunningMean predicts the mean of the entire history. Best for
// stationary noisy series.
func NewRunningMean() Forecaster { return &runningMean{} }

func (f *runningMean) Name() string { return "run_mean" }
func (f *runningMean) Update(v float64) {
	f.sum += v
	f.n++
}
func (f *runningMean) Forecast() float64 { return f.sum / float64(f.n) }
func (f *runningMean) Ready() bool       { return f.n > 0 }

// --- sliding window mean ---

type slidingMean struct {
	name string
	buf  []float64
	k    int
	sum  float64
}

// NewSlidingMean predicts the mean of the last k measurements.
func NewSlidingMean(k int, name string) Forecaster {
	if k < 1 {
		panic("nws: sliding window must be >= 1")
	}
	return &slidingMean{k: k, name: name}
}

func (f *slidingMean) Name() string { return f.name }
func (f *slidingMean) Update(v float64) {
	f.buf = append(f.buf, v)
	f.sum += v
	if len(f.buf) > f.k {
		f.sum -= f.buf[0]
		f.buf = f.buf[1:]
	}
}
func (f *slidingMean) Forecast() float64 { return f.sum / float64(len(f.buf)) }
func (f *slidingMean) Ready() bool       { return len(f.buf) > 0 }

// --- sliding window median ---

type slidingMedian struct {
	name string
	buf  []float64
	k    int
}

// NewSlidingMedian predicts the median of the last k measurements; robust
// to load spikes.
func NewSlidingMedian(k int, name string) Forecaster {
	if k < 1 {
		panic("nws: sliding window must be >= 1")
	}
	return &slidingMedian{k: k, name: name}
}

func (f *slidingMedian) Name() string { return f.name }
func (f *slidingMedian) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.k {
		f.buf = f.buf[1:]
	}
}
func (f *slidingMedian) Forecast() float64 {
	tmp := append([]float64(nil), f.buf...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
func (f *slidingMedian) Ready() bool { return len(f.buf) > 0 }

// --- exponential smoothing ---

type expSmooth struct {
	name  string
	alpha float64
	s     float64
	seen  bool
}

// NewExpSmoothing predicts s(t) = alpha*v + (1-alpha)*s(t-1). Small alpha
// tracks slow trends; large alpha approaches last-value.
func NewExpSmoothing(alpha float64, name string) Forecaster {
	if alpha <= 0 || alpha > 1 {
		panic("nws: smoothing gain must be in (0,1]")
	}
	return &expSmooth{alpha: alpha, name: name}
}

func (f *expSmooth) Name() string { return f.name }
func (f *expSmooth) Update(v float64) {
	if !f.seen {
		f.s, f.seen = v, true
		return
	}
	f.s = f.alpha*v + (1-f.alpha)*f.s
}
func (f *expSmooth) Forecast() float64 { return f.s }
func (f *expSmooth) Ready() bool       { return f.seen }

// --- adaptive exponential smoothing ---

type adaptiveSmooth struct {
	s, err float64
	absErr float64
	seen   bool
}

// NewAdaptiveSmoothing is Trigg-Leach adaptive-response smoothing: the gain
// is the |smoothed error| / smoothed |error| tracking signal, so it speeds
// up after level shifts and settles on stable stretches.
func NewAdaptiveSmoothing() Forecaster { return &adaptiveSmooth{} }

func (f *adaptiveSmooth) Name() string { return "adaptive" }
func (f *adaptiveSmooth) Update(v float64) {
	if !f.seen {
		f.s, f.seen = v, true
		return
	}
	const beta = 0.2
	e := v - f.s
	f.err = beta*e + (1-beta)*f.err
	ae := e
	if ae < 0 {
		ae = -ae
	}
	f.absErr = beta*ae + (1-beta)*f.absErr
	gain := 0.2
	if f.absErr > 1e-12 {
		gain = f.err / f.absErr
		if gain < 0 {
			gain = -gain
		}
		if gain > 1 {
			gain = 1
		}
	}
	f.s += gain * e
}
func (f *adaptiveSmooth) Forecast() float64 { return f.s }
func (f *adaptiveSmooth) Ready() bool       { return f.seen }

// --- online AR(1) ---

type ar1Fit struct {
	prev     float64
	seen     int
	sumX     float64
	sumXX    float64
	sumLagXY float64
	n        float64
}

// NewAR1Fit predicts with an AR(1) model whose mean and lag-1 coefficient
// are estimated online from the whole history:
//
//	x(t+1) = mean + phi*(x(t) - mean)
func NewAR1Fit() Forecaster { return &ar1Fit{} }

func (f *ar1Fit) Name() string { return "ar1" }
func (f *ar1Fit) Update(v float64) {
	if f.seen > 0 {
		f.sumLagXY += f.prev * v
		f.n++
	}
	f.sumX += v
	f.sumXX += v * v
	f.seen++
	f.prev = v
}
func (f *ar1Fit) Forecast() float64 {
	mean := f.sumX / float64(f.seen)
	phi := 0.0
	if f.n >= 2 {
		// lag-1 autocovariance / variance, both around the running mean
		cov := f.sumLagXY/f.n - mean*mean
		variance := f.sumXX/float64(f.seen) - mean*mean
		if variance > 1e-12 {
			phi = cov / variance
			if phi > 1 {
				phi = 1
			}
			if phi < -1 {
				phi = -1
			}
		}
	}
	return mean + phi*(f.prev-mean)
}
func (f *ar1Fit) Ready() bool { return f.seen > 0 }

// --- windowed AR(1) ---

type windowedAR1 struct {
	name string
	buf  []float64
	k    int
}

// NewWindowedAR1 fits the AR(1) mean and lag-1 coefficient over only the
// last k measurements, so it re-converges quickly after regime shifts
// that the whole-history NewAR1Fit averages away. Not part of the default
// bank (the reproduced experiments fix that set); callers compose it via
// NewBank(append(DefaultForecasters(), NewWindowedAR1(30, "war1_30"))...).
func NewWindowedAR1(k int, name string) Forecaster {
	if k < 3 {
		panic("nws: windowed AR(1) needs k >= 3")
	}
	return &windowedAR1{k: k, name: name}
}

func (f *windowedAR1) Name() string { return f.name }
func (f *windowedAR1) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.k {
		f.buf = f.buf[1:]
	}
}
func (f *windowedAR1) Forecast() float64 {
	n := len(f.buf)
	last := f.buf[n-1]
	if n < 3 {
		return last
	}
	mean, sumXX, sumLag := 0.0, 0.0, 0.0
	for _, v := range f.buf {
		mean += v
	}
	mean /= float64(n)
	for i, v := range f.buf {
		d := v - mean
		sumXX += d * d
		if i > 0 {
			sumLag += (f.buf[i-1] - mean) * d
		}
	}
	phi := 0.0
	if sumXX > 1e-12 {
		phi = sumLag / sumXX
		if phi > 1 {
			phi = 1
		}
		if phi < -1 {
			phi = -1
		}
	}
	return mean + phi*(last-mean)
}
func (f *windowedAR1) Ready() bool { return len(f.buf) > 0 }

// --- trimmed sliding mean ---

type trimmedMean struct {
	name string
	buf  []float64
	k    int
	trim int
}

// NewTrimmedMean predicts the mean of the last k measurements after
// dropping the `trim` largest and smallest.
func NewTrimmedMean(k, trim int, name string) Forecaster {
	if k < 1 || trim < 0 || 2*trim >= k {
		panic("nws: invalid trimmed-mean window")
	}
	return &trimmedMean{k: k, trim: trim, name: name}
}

func (f *trimmedMean) Name() string { return f.name }
func (f *trimmedMean) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.k {
		f.buf = f.buf[1:]
	}
}
func (f *trimmedMean) Forecast() float64 {
	tmp := append([]float64(nil), f.buf...)
	sort.Float64s(tmp)
	lo, hi := 0, len(tmp)
	if len(tmp) > 2*f.trim {
		lo, hi = f.trim, len(tmp)-f.trim
	}
	sum := 0.0
	for _, v := range tmp[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
func (f *trimmedMean) Ready() bool { return len(f.buf) > 0 }

// DefaultForecasters returns the standard NWS-style predictor bank.
func DefaultForecasters() []Forecaster {
	return []Forecaster{
		NewLastValue(),
		NewRunningMean(),
		NewSlidingMean(5, "win_mean_5"),
		NewSlidingMean(20, "win_mean_20"),
		NewSlidingMedian(5, "win_med_5"),
		NewSlidingMedian(21, "win_med_21"),
		NewExpSmoothing(0.05, "exp_0.05"),
		NewExpSmoothing(0.3, "exp_0.30"),
		NewExpSmoothing(0.7, "exp_0.70"),
		NewAdaptiveSmoothing(),
		NewAR1Fit(),
		NewTrimmedMean(15, 3, "trim_15_3"),
	}
}
