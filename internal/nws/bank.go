package nws

import (
	"fmt"
	"math"
	"strings"
)

// Bank performs dynamic predictor selection over a set of forecasters.
// On each measurement it first scores every ready forecaster's standing
// prediction (cumulative squared and absolute error), then lets each
// forecaster absorb the measurement. Forecast returns the prediction of
// the forecaster with the lowest mean squared error so far.
//
// The update path is allocation-free: forecasters that implement the
// combined score+absorb step hand the bank their cached standing
// forecast in the same call that absorbs the measurement, and all
// windowed forecasters share one ring buffer sized to the largest window
// that the bank pushes into exactly once per measurement.
type Bank struct {
	fcs    []Forecaster
	sa     []scoreAbsorber // sa[i] non-nil when fcs[i] supports the fused path
	ring   *ring           // shared window storage, nil without windowed forecasters
	sqErr  []float64
	absErr []float64
	scored []int // how many predictions each forecaster has been scored on
	n      int   // total measurements
	last   float64
	sum    float64
}

// NewBank builds a bank over the given forecasters (DefaultForecasters()
// when none are supplied). Fresh windowed forecasters are re-pointed at
// one shared ring sized to the largest window; a forecaster that has
// already absorbed history keeps its own buffer. A forecaster instance
// must belong to at most one bank.
func NewBank(fcs ...Forecaster) *Bank {
	if len(fcs) == 0 {
		fcs = DefaultForecasters()
	}
	b := &Bank{
		fcs:    fcs,
		sa:     make([]scoreAbsorber, len(fcs)),
		sqErr:  make([]float64, len(fcs)),
		absErr: make([]float64, len(fcs)),
		scored: make([]int, len(fcs)),
	}
	maxK := 0
	for i, f := range fcs {
		if sa, ok := f.(scoreAbsorber); ok {
			b.sa[i] = sa
		}
		if w, ok := f.(ringWindowed); ok && w.window() > maxK {
			maxK = w.window()
		}
	}
	if maxK > 0 {
		shared := newRing(maxK)
		for _, f := range fcs {
			if w, ok := f.(ringWindowed); ok && w.attachRing(shared) {
				b.ring = shared
			}
		}
	}
	return b
}

// Update scores all standing predictions against v, then feeds v to every
// forecaster. Steady state allocates nothing.
func (b *Bank) Update(v float64) {
	for i, f := range b.fcs {
		var fc float64
		var ready bool
		if sa := b.sa[i]; sa != nil {
			fc, ready = sa.scoreAbsorb(v)
		} else {
			if ready = f.Ready(); ready {
				fc = f.Forecast()
			}
			f.Update(v)
		}
		if ready {
			e := fc - v
			b.sqErr[i] += e * e
			b.absErr[i] += math.Abs(e)
			b.scored[i]++
		}
	}
	if b.ring != nil {
		b.ring.push(v)
	}
	b.n++
	b.last = v
	b.sum += v
}

// Len reports how many measurements the bank has absorbed.
func (b *Bank) Len() int { return b.n }

// Last returns the most recent measurement.
func (b *Bank) Last() float64 { return b.last }

// Mean returns the running mean of all measurements — the bank's
// long-horizon estimate, appropriate when the scheduling time frame spans
// many mean-reversion times of the underlying load (the one-step Forecast
// tracks the current level instead).
func (b *Bank) Mean() float64 {
	if b.n == 0 {
		return 0
	}
	return b.sum / float64(b.n)
}

// Ready reports whether at least one forecaster can predict.
func (b *Bank) Ready() bool {
	for _, f := range b.fcs {
		if f.Ready() {
			return true
		}
	}
	return false
}

// best returns the index of the lowest-MSE scored forecaster, or the first
// ready one before any scoring has happened, or -1.
func (b *Bank) best() int {
	bestIdx, bestMSE := -1, math.Inf(1)
	for i, f := range b.fcs {
		if !f.Ready() {
			continue
		}
		if b.scored[i] == 0 {
			if bestIdx == -1 {
				bestIdx = i
			}
			continue
		}
		mse := b.sqErr[i] / float64(b.scored[i])
		if mse < bestMSE {
			bestIdx, bestMSE = i, mse
		}
	}
	return bestIdx
}

// Forecast returns the current one-step-ahead prediction and the name of
// the forecaster that produced it. ok is false before any measurements.
func (b *Bank) Forecast() (value float64, by string, ok bool) {
	i := b.best()
	if i < 0 {
		return 0, "", false
	}
	return b.fcs[i].Forecast(), b.fcs[i].Name(), true
}

// EachForecast calls fn with every ready forecaster's standing
// one-step prediction, in bank order — the audit hook's view of what
// each forecaster would say right now, before the next measurement is
// absorbed.
func (b *Bank) EachForecast(fn func(name string, predicted float64)) {
	for _, f := range b.fcs {
		if f.Ready() {
			fn(f.Name(), f.Forecast())
		}
	}
}

// ErrorEstimate returns the root-mean-squared error of the currently
// selected forecaster — the agent's measure of how much to trust the
// forecast. ok is false until at least one prediction has been scored.
func (b *Bank) ErrorEstimate() (rmse float64, ok bool) {
	i := b.best()
	if i < 0 || b.scored[i] == 0 {
		return 0, false
	}
	return math.Sqrt(b.sqErr[i] / float64(b.scored[i])), true
}

// MSE returns forecaster name -> mean squared prediction error, for
// forecasters that have been scored at least once.
func (b *Bank) MSE() map[string]float64 {
	out := make(map[string]float64, len(b.fcs))
	for i, f := range b.fcs {
		if b.scored[i] > 0 {
			out[f.Name()] = b.sqErr[i] / float64(b.scored[i])
		}
	}
	return out
}

// MAE returns forecaster name -> mean absolute prediction error.
func (b *Bank) MAE() map[string]float64 {
	out := make(map[string]float64, len(b.fcs))
	for i, f := range b.fcs {
		if b.scored[i] > 0 {
			out[f.Name()] = b.absErr[i] / float64(b.scored[i])
		}
	}
	return out
}

// String summarizes the bank's current selection and per-forecaster MSE.
func (b *Bank) String() string {
	var sb strings.Builder
	_, by, ok := b.Forecast()
	fmt.Fprintf(&sb, "bank[n=%d selected=%s ok=%v]", b.n, by, ok)
	return sb.String()
}
