package nws

import (
	"fmt"
	"sort"
	"strings"

	"apples/internal/grid"
	"apples/internal/mstore"
	"apples/internal/obs"
	"apples/internal/sim"
)

// DefaultRetention is how many raw measurements per watched series a
// Service keeps for snapshots when WithRetention does not override it —
// generous enough that every reproduced experiment retains its full
// history, while still bounding memory for week-long sensing runs.
const DefaultRetention = 4096

// ServiceOption configures a Service at construction.
type ServiceOption func(*Service)

// WithRetention caps how many raw measurements per series the service
// retains for snapshots (the forecaster banks always see every
// measurement). n must be >= 1.
func WithRetention(n int) ServiceOption {
	if n < 1 {
		panic("nws: retention must be >= 1")
	}
	return func(s *Service) { s.retention = n }
}

// WithBankFactory replaces the forecaster bank a new sensor starts with
// (NewBank() by default) — e.g. to add windowed AR(1) predictors or to
// sweep window sizes in scaling experiments.
func WithBankFactory(mk func() *Bank) ServiceOption {
	if mk == nil {
		panic("nws: nil bank factory")
	}
	return func(s *Service) { s.newBank = mk }
}

// WithMetrics registers the service's sensing metrics in the registry:
// nws_bank_updates_total counts forecaster-bank absorptions (one per
// watched resource per sweep) and nws_sensor_sweeps_total counts batch
// sweeps. Handles resolve here, once; the sensing hot path adds two
// atomic increments and stays allocation-free. nil leaves metrics off.
func WithMetrics(m *obs.Metrics) ServiceOption {
	return func(s *Service) {
		if m == nil {
			s.metBankUpdates, s.metSweeps = nil, nil
			return
		}
		s.metBankUpdates = m.Counter(obs.MetricBankUpdates)
		s.metSweeps = m.Counter(obs.MetricSensorSweeps)
	}
}

// WithStageTiming attaches a stage timer to the service: every batch
// sensor sweep records its wall-time as a StageSweep span into the
// timer's per-stage histogram family (and as an EvSpan trace event
// when the timer carries a tracer). nil leaves sweep timing off.
func WithStageTiming(st *obs.StageTimer) ServiceOption {
	return func(s *Service) { s.stages = st }
}

// Service is the Network Weather Service instance for one metacomputer:
// it owns periodic sensors for host CPU availability and link bandwidth,
// and answers forecast queries for the scheduling agent.
//
// All sensors share one batch tick: each sensing period fires a single
// engine event that sweeps every watched resource in watch order
// (ObserveAll), so a metacomputer with ten thousand series costs the
// event queue no more than one with ten, and the sweep itself does not
// allocate in steady state.
type Service struct {
	eng       *sim.Engine
	period    float64
	retention int
	newBank   func() *Bank

	cpuBanks map[string]*Bank // host name -> availability series
	bwBanks  map[string]*Bank // link name -> available-bandwidth series
	batch    *sim.BatchTicker // nil until the first Watch (and after Stop)
	hosts    map[string]*grid.Host
	links    map[string]*grid.Link

	watchedHosts map[string]bool
	watchedLinks map[string]bool
	// Raw measurement series for snapshots (persist.go), bounded to the
	// last `retention` samples each.
	cpuSeries map[string]*ring
	bwSeries  map[string]*ring

	// Metric handles (nil when WithMetrics was not given). sweepHook
	// records that the batch carries a leading sweep-counting callback,
	// which Sensors() must not count as a resource sensor.
	metBankUpdates *obs.Counter
	metSweeps      *obs.Counter
	sweepHook      bool
	// stages, when non-nil, times each batch sweep as a StageSweep span.
	stages *obs.StageTimer
	// store, when non-nil, receives every observed sample as an appended
	// record (WithStore); storeErr latches the first append failure.
	store    *mstore.Store
	storeErr error
	// residuals, when non-nil, receives every sample's forecaster
	// residuals before the bank absorbs it (WithResiduals).
	residuals ResidualSink
}

// NewService creates a service sampling every period seconds of virtual
// time (the real NWS default is 10s for CPU sensors).
func NewService(eng *sim.Engine, period float64, opts ...ServiceOption) *Service {
	if period <= 0 {
		panic("nws: sensor period must be positive")
	}
	s := &Service{
		eng:          eng,
		period:       period,
		retention:    DefaultRetention,
		newBank:      func() *Bank { return NewBank() },
		cpuBanks:     make(map[string]*Bank),
		bwBanks:      make(map[string]*Bank),
		hosts:        make(map[string]*grid.Host),
		links:        make(map[string]*grid.Link),
		watchedHosts: make(map[string]bool),
		watchedLinks: make(map[string]bool),
		cpuSeries:    make(map[string]*ring),
		bwSeries:     make(map[string]*ring),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// addSensor registers one sampling callback on the shared batch tick,
// creating the tick lazily so an idle service schedules nothing.
func (s *Service) addSensor(kind mstore.Kind, name string, bank *Bank, series *ring, sample func() float64) {
	if s.batch == nil {
		s.batch = sim.NewBatchTicker(s.eng, s.period)
		s.sweepHook = false
		if s.metSweeps != nil {
			sweeps := s.metSweeps
			s.batch.Add(func(float64) { sweeps.Inc() })
			s.sweepHook = true
		}
		if s.stages != nil {
			st := s.stages
			s.batch.SetAround(func(fire func(float64), now float64) {
				sp := st.Start(0, obs.StageSweep)
				fire(now)
				sp.End()
			})
		}
	}
	updates := s.metBankUpdates
	s.batch.Add(func(float64) {
		v := sample()
		if s.residuals != nil {
			observeResiduals(s.residuals, kind, name, bank, v)
		}
		bank.Update(v)
		series.push(v)
		if updates != nil {
			updates.Inc()
		}
		if s.store != nil && s.storeErr == nil {
			// The ring's total is the sample's 1-based position in its
			// series — monotonic across restarts once RestoreFromStore
			// has replayed the history.
			err := s.store.Append(mstore.Record{Kind: kind, Series: name, Tick: series.total, Value: v})
			if err != nil {
				s.storeErr = err
			}
		}
	})
}

// WatchHost installs a CPU availability sensor on the host. A bank
// restored from a snapshot keeps its history; new measurements append.
func (s *Service) WatchHost(h *grid.Host) {
	if s.watchedHosts[h.Name] {
		return
	}
	s.watchedHosts[h.Name] = true
	bank := s.cpuBanks[h.Name]
	if bank == nil {
		bank = s.newBank()
		s.cpuBanks[h.Name] = bank
	}
	series := s.cpuSeries[h.Name]
	if series == nil {
		series = newRing(s.retention)
		s.cpuSeries[h.Name] = series
	}
	s.hosts[h.Name] = h
	s.addSensor(mstore.KindCPU, h.Name, bank, series, h.Availability)
}

// WatchLink installs an available-bandwidth sensor on the link. A bank
// restored from a snapshot keeps its history; new measurements append.
func (s *Service) WatchLink(l *grid.Link) {
	if s.watchedLinks[l.Name] {
		return
	}
	s.watchedLinks[l.Name] = true
	bank := s.bwBanks[l.Name]
	if bank == nil {
		bank = s.newBank()
		s.bwBanks[l.Name] = bank
	}
	series := s.bwSeries[l.Name]
	if series == nil {
		series = newRing(s.retention)
		s.bwSeries[l.Name] = series
	}
	s.links[l.Name] = l
	s.addSensor(mstore.KindBandwidth, l.Name, bank, series, l.AvailableBandwidth)
}

// WatchTopology installs sensors on every host and link of a topology.
func (s *Service) WatchTopology(tp *grid.Topology) {
	for _, h := range tp.Hosts() {
		s.WatchHost(h)
	}
	for _, l := range tp.Links() {
		s.WatchLink(l)
	}
}

// ObserveAll runs one sensing sweep over every watched resource, in watch
// order. The periodic batch tick calls it each period; benchmarks and
// tests may call it directly to drive sensing without advancing the
// simulation clock.
func (s *Service) ObserveAll(now float64) {
	if s.batch != nil {
		s.batch.Fire(now)
	}
}

// Sensors reports how many resource sensors are currently sampling.
func (s *Service) Sensors() int {
	if s.batch == nil {
		return 0
	}
	n := s.batch.Len()
	if s.sweepHook {
		n-- // the sweep-counting hook is bookkeeping, not a sensor
	}
	return n
}

// Stop halts all sensors (e.g. before draining the simulation). Banks and
// retained series stay queryable; a resource watched after Stop starts a
// fresh batch tick covering only newly watched resources, matching the
// per-sensor semantics the service had before batching.
func (s *Service) Stop() {
	if s.batch != nil {
		s.batch.Stop()
		s.batch = nil
	}
}

// AvailabilityForecast predicts the CPU availability (0..1] of a host over
// the scheduling time frame. ok is false if the host is unwatched or the
// sensor has no history yet.
func (s *Service) AvailabilityForecast(host string) (float64, bool) {
	b := s.cpuBanks[host]
	if b == nil || !b.Ready() {
		return 0, false
	}
	v, _, ok := b.Forecast()
	if !ok {
		return 0, false
	}
	return clamp(v, 0.01, 1), true
}

// AvailabilityLongTerm returns the running-mean CPU availability of a
// host — the estimate to use when the scheduled work will run for much
// longer than one sensing period, so that transient load states average
// out (Section 3.2: capability is assessed "for the time frame in which
// the application will be scheduled").
func (s *Service) AvailabilityLongTerm(host string) (float64, bool) {
	b := s.cpuBanks[host]
	if b == nil || b.Len() == 0 {
		return 0, false
	}
	return clamp(b.Mean(), 0.01, 1), true
}

// BandwidthLongTerm returns the running-mean deliverable bandwidth of a
// link (MB/s).
func (s *Service) BandwidthLongTerm(link string) (float64, bool) {
	b := s.bwBanks[link]
	if b == nil || b.Len() == 0 {
		return 0, false
	}
	v := b.Mean()
	if v < 1e-6 {
		v = 1e-6
	}
	return v, true
}

// RouteBandwidthLongTerm is the long-horizon analogue of
// RouteBandwidthForecast.
func (s *Service) RouteBandwidthLongTerm(tp *grid.Topology, a, b string) float64 {
	if a == b {
		return 1e30
	}
	bw := 1e30
	for _, l := range tp.Route(a, b) {
		v, ok := s.BandwidthLongTerm(l.Name)
		if !ok {
			v = l.Bandwidth
		}
		if v < bw {
			bw = v
		}
	}
	return bw
}

// AvailabilityError returns the RMSE of the selected availability
// forecaster for the host, as a trust measure.
func (s *Service) AvailabilityError(host string) (float64, bool) {
	b := s.cpuBanks[host]
	if b == nil {
		return 0, false
	}
	return b.ErrorEstimate()
}

// BandwidthError returns the RMSE of the selected bandwidth forecaster
// for the link, as a trust measure.
func (s *Service) BandwidthError(link string) (float64, bool) {
	b := s.bwBanks[link]
	if b == nil {
		return 0, false
	}
	return b.ErrorEstimate()
}

// BandwidthForecast predicts the deliverable bandwidth (MB/s) of a link.
func (s *Service) BandwidthForecast(link string) (float64, bool) {
	b := s.bwBanks[link]
	if b == nil || !b.Ready() {
		return 0, false
	}
	v, _, ok := b.Forecast()
	if !ok {
		return 0, false
	}
	if v < 1e-6 {
		v = 1e-6
	}
	return v, true
}

// RouteBandwidthForecast predicts the bottleneck bandwidth along the route
// from host a to host b in tp, falling back to dedicated capacity for
// unwatched links.
func (s *Service) RouteBandwidthForecast(tp *grid.Topology, a, b string) float64 {
	if a == b {
		return 1e30
	}
	bw := 1e30
	for _, l := range tp.Route(a, b) {
		v, ok := s.BandwidthForecast(l.Name)
		if !ok {
			v = l.Bandwidth
		}
		if v < bw {
			bw = v
		}
	}
	return bw
}

// CPUBank exposes a host's availability bank (for reports and tests).
func (s *Service) CPUBank(host string) *Bank { return s.cpuBanks[host] }

// LinkBank exposes a link's bandwidth bank (for reports and tests).
func (s *Service) LinkBank(link string) *Bank { return s.bwBanks[link] }

// Report returns a human-readable forecast table for everything watched,
// hosts first then links, each sorted by name.
func (s *Service) Report() string {
	var sb strings.Builder
	hosts := make([]string, 0, len(s.cpuBanks))
	for n := range s.cpuBanks {
		hosts = append(hosts, n)
	}
	sort.Strings(hosts)
	for _, n := range hosts {
		v, by, ok := s.cpuBanks[n].Forecast()
		fmt.Fprintf(&sb, "cpu  %-10s forecast=%6.3f by=%-12s ok=%v\n", n, v, by, ok)
	}
	links := make([]string, 0, len(s.bwBanks))
	for n := range s.bwBanks {
		links = append(links, n)
	}
	sort.Strings(links)
	for _, n := range links {
		v, by, ok := s.bwBanks[n].Forecast()
		fmt.Fprintf(&sb, "bw   %-14s forecast=%7.3f by=%-12s ok=%v\n", n, v, by, ok)
	}
	return sb.String()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
