package nws

import (
	"fmt"
	"sort"

	"apples/internal/grid"
	"apples/internal/sim"
)

// Service is the Network Weather Service instance for one metacomputer:
// it owns periodic sensors for host CPU availability and link bandwidth,
// and answers forecast queries for the scheduling agent.
type Service struct {
	eng    *sim.Engine
	period float64

	cpuBanks map[string]*Bank // host name -> availability series
	bwBanks  map[string]*Bank // link name -> available-bandwidth series
	tickers  []*sim.Ticker
	hosts    map[string]*grid.Host
	links    map[string]*grid.Link

	watchedHosts map[string]bool
	watchedLinks map[string]bool
	// Raw measurement series, kept for snapshots (persist.go).
	cpuSeries map[string][]float64
	bwSeries  map[string][]float64
}

// NewService creates a service sampling every period seconds of virtual
// time (the real NWS default is 10s for CPU sensors).
func NewService(eng *sim.Engine, period float64) *Service {
	if period <= 0 {
		panic("nws: sensor period must be positive")
	}
	return &Service{
		eng:          eng,
		period:       period,
		cpuBanks:     make(map[string]*Bank),
		bwBanks:      make(map[string]*Bank),
		hosts:        make(map[string]*grid.Host),
		links:        make(map[string]*grid.Link),
		watchedHosts: make(map[string]bool),
		watchedLinks: make(map[string]bool),
		cpuSeries:    make(map[string][]float64),
		bwSeries:     make(map[string][]float64),
	}
}

// WatchHost installs a CPU availability sensor on the host. A bank
// restored from a snapshot keeps its history; new measurements append.
func (s *Service) WatchHost(h *grid.Host) {
	if s.watchedHosts[h.Name] {
		return
	}
	s.watchedHosts[h.Name] = true
	bank := s.cpuBanks[h.Name]
	if bank == nil {
		bank = NewBank()
		s.cpuBanks[h.Name] = bank
	}
	s.hosts[h.Name] = h
	name := h.Name
	s.tickers = append(s.tickers, sim.NewTicker(s.eng, s.period, func(float64) {
		v := h.Availability()
		bank.Update(v)
		s.cpuSeries[name] = append(s.cpuSeries[name], v)
	}))
}

// WatchLink installs an available-bandwidth sensor on the link. A bank
// restored from a snapshot keeps its history; new measurements append.
func (s *Service) WatchLink(l *grid.Link) {
	if s.watchedLinks[l.Name] {
		return
	}
	s.watchedLinks[l.Name] = true
	bank := s.bwBanks[l.Name]
	if bank == nil {
		bank = NewBank()
		s.bwBanks[l.Name] = bank
	}
	s.links[l.Name] = l
	name := l.Name
	s.tickers = append(s.tickers, sim.NewTicker(s.eng, s.period, func(float64) {
		v := l.AvailableBandwidth()
		bank.Update(v)
		s.bwSeries[name] = append(s.bwSeries[name], v)
	}))
}

// WatchTopology installs sensors on every host and link of a topology.
func (s *Service) WatchTopology(tp *grid.Topology) {
	for _, h := range tp.Hosts() {
		s.WatchHost(h)
	}
	for _, l := range tp.Links() {
		s.WatchLink(l)
	}
}

// Stop halts all sensors (e.g. before draining the simulation).
func (s *Service) Stop() {
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
}

// AvailabilityForecast predicts the CPU availability (0..1] of a host over
// the scheduling time frame. ok is false if the host is unwatched or the
// sensor has no history yet.
func (s *Service) AvailabilityForecast(host string) (float64, bool) {
	b := s.cpuBanks[host]
	if b == nil || !b.Ready() {
		return 0, false
	}
	v, _, ok := b.Forecast()
	if !ok {
		return 0, false
	}
	return clamp(v, 0.01, 1), true
}

// AvailabilityLongTerm returns the running-mean CPU availability of a
// host — the estimate to use when the scheduled work will run for much
// longer than one sensing period, so that transient load states average
// out (Section 3.2: capability is assessed "for the time frame in which
// the application will be scheduled").
func (s *Service) AvailabilityLongTerm(host string) (float64, bool) {
	b := s.cpuBanks[host]
	if b == nil || b.Len() == 0 {
		return 0, false
	}
	return clamp(b.Mean(), 0.01, 1), true
}

// BandwidthLongTerm returns the running-mean deliverable bandwidth of a
// link (MB/s).
func (s *Service) BandwidthLongTerm(link string) (float64, bool) {
	b := s.bwBanks[link]
	if b == nil || b.Len() == 0 {
		return 0, false
	}
	v := b.Mean()
	if v < 1e-6 {
		v = 1e-6
	}
	return v, true
}

// RouteBandwidthLongTerm is the long-horizon analogue of
// RouteBandwidthForecast.
func (s *Service) RouteBandwidthLongTerm(tp *grid.Topology, a, b string) float64 {
	if a == b {
		return 1e30
	}
	bw := 1e30
	for _, l := range tp.Route(a, b) {
		v, ok := s.BandwidthLongTerm(l.Name)
		if !ok {
			v = l.Bandwidth
		}
		if v < bw {
			bw = v
		}
	}
	return bw
}

// AvailabilityError returns the RMSE of the selected availability
// forecaster for the host, as a trust measure.
func (s *Service) AvailabilityError(host string) (float64, bool) {
	b := s.cpuBanks[host]
	if b == nil {
		return 0, false
	}
	return b.ErrorEstimate()
}

// BandwidthError returns the RMSE of the selected bandwidth forecaster
// for the link, as a trust measure.
func (s *Service) BandwidthError(link string) (float64, bool) {
	b := s.bwBanks[link]
	if b == nil {
		return 0, false
	}
	return b.ErrorEstimate()
}

// BandwidthForecast predicts the deliverable bandwidth (MB/s) of a link.
func (s *Service) BandwidthForecast(link string) (float64, bool) {
	b := s.bwBanks[link]
	if b == nil || !b.Ready() {
		return 0, false
	}
	v, _, ok := b.Forecast()
	if !ok {
		return 0, false
	}
	if v < 1e-6 {
		v = 1e-6
	}
	return v, true
}

// RouteBandwidthForecast predicts the bottleneck bandwidth along the route
// from host a to host b in tp, falling back to dedicated capacity for
// unwatched links.
func (s *Service) RouteBandwidthForecast(tp *grid.Topology, a, b string) float64 {
	if a == b {
		return 1e30
	}
	bw := 1e30
	for _, l := range tp.Route(a, b) {
		v, ok := s.BandwidthForecast(l.Name)
		if !ok {
			v = l.Bandwidth
		}
		if v < bw {
			bw = v
		}
	}
	return bw
}

// CPUBank exposes a host's availability bank (for reports and tests).
func (s *Service) CPUBank(host string) *Bank { return s.cpuBanks[host] }

// LinkBank exposes a link's bandwidth bank (for reports and tests).
func (s *Service) LinkBank(link string) *Bank { return s.bwBanks[link] }

// Report returns a human-readable forecast table for everything watched.
func (s *Service) Report() string {
	var out string
	var hosts []string
	for n := range s.cpuBanks {
		hosts = append(hosts, n)
	}
	sort.Strings(hosts)
	for _, n := range hosts {
		v, by, ok := s.cpuBanks[n].Forecast()
		out += fmt.Sprintf("cpu  %-10s forecast=%6.3f by=%-12s ok=%v\n", n, v, by, ok)
	}
	var links []string
	for n := range s.bwBanks {
		links = append(links, n)
	}
	sort.Strings(links)
	for _, n := range links {
		v, by, ok := s.bwBanks[n].Forecast()
		out += fmt.Sprintf("bw   %-14s forecast=%7.3f by=%-12s ok=%v\n", n, v, by, ok)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
