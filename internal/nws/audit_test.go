package nws

import (
	"reflect"
	"testing"

	"apples/internal/grid"
	"apples/internal/mstore"
	"apples/internal/sim"
)

// auditEvent is one recorded ResidualSink call; Sample distinguishes
// ObserveSample from ObserveResidual.
type auditEvent struct {
	Sample                   bool
	Kind, Series, Forecaster string
	Predicted, Actual        float64
	Selected                 bool
}

type recSink struct{ events []auditEvent }

func (r *recSink) ObserveSample(kind, series string, actual float64) {
	r.events = append(r.events, auditEvent{Sample: true, Kind: kind, Series: series, Actual: actual})
}

func (r *recSink) ObserveResidual(kind, series, forecaster string, predicted, actual float64, selected bool) {
	r.events = append(r.events, auditEvent{Kind: kind, Series: series, Forecaster: forecaster,
		Predicted: predicted, Actual: actual, Selected: selected})
}

func TestWithResidualsStreams(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 11})
	rec := &recSink{}
	svc := NewService(eng, 10, WithResiduals(rec))
	svc.WatchHost(tp.Host("alpha1"))
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	svc.Stop()

	samples, residuals, selected := 0, 0, 0
	for _, ev := range rec.events {
		if ev.Sample {
			samples++
			if ev.Kind != "cpu" || ev.Series != "alpha1" {
				t.Fatalf("sample on %s/%s, want cpu/alpha1", ev.Kind, ev.Series)
			}
			continue
		}
		residuals++
		if ev.Selected {
			selected++
		}
	}
	if samples != 10 {
		t.Fatalf("samples = %d, want 10", samples)
	}
	// Sweep 1 has no ready forecaster; from sweep 2 on, each sweep
	// scores at least the last-value predictor and flags exactly one
	// selected forecaster.
	if residuals == 0 {
		t.Fatal("no residuals streamed")
	}
	if selected != 9 {
		t.Fatalf("selected residuals = %d, want one per post-warmup sweep (9)", selected)
	}
}

// The offline store audit must reproduce exactly the residual stream
// the live sweep emitted: same banks, same samples in append order.
func TestAuditStoreMatchesLive(t *testing.T) {
	dir := t.TempDir()
	st, err := mstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 7})
	live := &recSink{}
	svc := NewService(eng, 10, WithStore(st), WithResiduals(live))
	svc.WatchTopology(tp)
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	if err := svc.StoreErr(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := mstore.Open(dir, mstore.ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	offline := &recSink{}
	audited, err := AuditStore(ro, offline, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := 20 * (len(tp.Hosts()) + len(tp.Links()))
	if audited != wantRecords {
		t.Fatalf("audited %d records, want %d", audited, wantRecords)
	}
	if len(offline.events) != len(live.events) {
		t.Fatalf("offline stream %d events, live %d", len(offline.events), len(live.events))
	}
	if !reflect.DeepEqual(offline.events, live.events) {
		for i := range live.events {
			if offline.events[i] != live.events[i] {
				t.Fatalf("streams diverge at event %d:\nlive    %+v\noffline %+v",
					i, live.events[i], offline.events[i])
			}
		}
	}
}

// EachForecast yields exactly the ready forecasters' standing
// one-step predictions.
func TestBankEachForecast(t *testing.T) {
	b := NewBank()
	got := map[string]float64{}
	b.EachForecast(func(name string, pred float64) { got[name] = pred })
	if len(got) != 0 {
		t.Fatalf("fresh bank yielded forecasts: %v", got)
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		b.Update(v)
	}
	got = map[string]float64{}
	b.EachForecast(func(name string, pred float64) { got[name] = pred })
	if len(got) == 0 {
		t.Fatal("warmed bank yielded no forecasts")
	}
	if v, ok := got["last"]; !ok || v != 5 {
		t.Fatalf("last-value forecast = %v (ok=%v), want 5", v, ok)
	}
	want, by, ok := b.Forecast()
	if !ok {
		t.Fatal("bank not ready")
	}
	if got[by] != want {
		t.Fatalf("EachForecast[%s] = %g, Forecast() = %g", by, got[by], want)
	}
}
