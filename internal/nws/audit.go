package nws

import (
	"fmt"

	"apples/internal/mstore"
)

// ResidualSink receives forecaster-quality observations from the
// sensing sweep: one ObserveResidual per ready forecaster per sample
// (selected flags the bank's current choice), then one ObserveSample
// for the sample itself. kind is the mstore kind name ("cpu",
// "bandwidth"). Implemented by audit.Engine; implementations must be
// safe for concurrent calls when sensing runs on multiple engines.
type ResidualSink interface {
	ObserveSample(kind, series string, actual float64)
	ObserveResidual(kind, series, forecaster string, predicted, actual float64, selected bool)
}

// WithResiduals streams every sensor sample's forecaster residuals
// into sink, before the banks absorb the sample — each ready
// forecaster's standing one-step prediction is scored against the
// value that actually arrived. nil leaves auditing off; the sweep then
// pays only a nil check (the audited sweep allocates one closure per
// sample, a price only paid when someone is watching).
func WithResiduals(sink ResidualSink) ServiceOption {
	return func(s *Service) { s.residuals = sink }
}

// observeResiduals reports every ready forecaster's standing
// prediction for the sample v that just arrived on kind/name.
func observeResiduals(sink ResidualSink, kind mstore.Kind, name string, bank *Bank, v float64) {
	kindName := kind.String()
	_, by, ok := bank.Forecast()
	if ok {
		bank.EachForecast(func(fc string, pred float64) {
			sink.ObserveResidual(kindName, name, fc, pred, v, fc == by)
		})
	}
	sink.ObserveSample(kindName, name, v)
}

// AuditStore replays every sensor record in st through fresh forecaster
// banks (mk, NewBank by default) into sink — the offline counterpart of
// WithResiduals. The store preserves append order and forecasters are
// deterministic functions of their input series, so auditing a
// directory reproduces exactly the residual stream the live sweep would
// have emitted, long after the process that sensed it exited. Records
// of non-sensor kinds (e.g. load-trace steps sharing the store) are
// skipped. Returns how many sensor records were audited.
func AuditStore(st *mstore.Store, sink ResidualSink, mk func() *Bank) (int, error) {
	if mk == nil {
		mk = func() *Bank { return NewBank() }
	}
	banks := make(map[string]*Bank)
	audited := 0
	for r, err := range st.Records() {
		if err != nil {
			return audited, fmt.Errorf("nws: audit store: %w", err)
		}
		if r.Kind != mstore.KindCPU && r.Kind != mstore.KindBandwidth {
			continue
		}
		key := r.Kind.String() + "\x00" + r.Series
		b := banks[key]
		if b == nil {
			b = mk()
			banks[key] = b
		}
		observeResiduals(sink, r.Kind, r.Series, b, r.Value)
		b.Update(r.Value)
		audited++
	}
	return audited, nil
}
