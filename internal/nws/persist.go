package nws

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is the serializable state of a Service: the raw measurement
// series of every watched resource. The real NWS persists its sensor
// history so forecasters survive restarts; we reproduce that by replaying
// the series into fresh forecaster banks on restore, which reconstructs
// both the predictions and the accumulated per-forecaster error state
// exactly (forecasters are deterministic functions of their input
// series).
//
// Series are bounded: the service retains the last `retention` samples
// per resource (WithRetention, default DefaultRetention), so a snapshot
// carries at most that window and a restored bank replays exactly what
// the snapshot holds. Snapshotting a service and restoring it is
// idempotent — the round trip reproduces forecasts bit for bit.
type Snapshot struct {
	Version int                  `json:"version"`
	Period  float64              `json:"period"`
	CPU     map[string][]float64 `json:"cpu"`
	Links   map[string][]float64 `json:"links"`
}

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// Snapshot captures the service's measurement history.
func (s *Service) Snapshot() *Snapshot {
	snap := &Snapshot{
		Version: snapshotVersion,
		Period:  s.period,
		CPU:     make(map[string][]float64, len(s.cpuSeries)),
		Links:   make(map[string][]float64, len(s.bwSeries)),
	}
	for name, series := range s.cpuSeries {
		snap.CPU[name] = series.values()
	}
	for name, series := range s.bwSeries {
		snap.Links[name] = series.values()
	}
	return snap
}

// Restore replays a snapshot into the service, seeding (or re-seeding)
// the forecaster banks of the named resources. Restored series count as
// history; subsequent sensor measurements append to them. It must be
// called before virtual time advances past the snapshot's horizon in a
// meaningful way — typically right after NewService.
func (s *Service) Restore(snap *Snapshot) error {
	if snap.Version != snapshotVersion {
		return fmt.Errorf("nws: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	for name, series := range snap.CPU {
		s.cpuBanks[name], s.cpuSeries[name] = s.replay(series)
	}
	for name, series := range snap.Links {
		s.bwBanks[name], s.bwSeries[name] = s.replay(series)
	}
	return nil
}

// replay feeds one snapshot series into a fresh bank and a fresh
// retention ring. The bank absorbs every sample the snapshot carries; the
// ring keeps the last `retention` of them, same as live sensing would.
func (s *Service) replay(series []float64) (*Bank, *ring) {
	bank := s.newBank()
	r := newRing(s.retention)
	for _, v := range series {
		bank.Update(v)
		r.push(v)
	}
	return bank, r
}

// WriteTo serializes the snapshot as JSON.
func (snap *Snapshot) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return 0, fmt.Errorf("nws: encode snapshot: %w", err)
	}
	n, err := w.Write(data)
	return int64(n), err
}

// ReadSnapshot deserializes a snapshot from JSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("nws: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("nws: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	return &snap, nil
}
