package nws

import "sort"

// This file preserves the pre-optimization forecaster implementations —
// append-and-reslice buffers, per-query copy + sort.Float64s, raw running
// sums — verbatim. They are the ground truth the incremental forecasters
// in forecasters.go are differentially tested against (bit-identical for
// the windowed mean/median/trimmed family, tight-tolerance for the
// re-derived AR fits), and the "before" side of the bench-nws and
// nws-scale comparisons. Nothing on the sensing hot path uses them.

// legacySlidingMean is the reference sliding mean.
type legacySlidingMean struct {
	name string
	buf  []float64
	k    int
	sum  float64
}

// NewLegacySlidingMean returns the reference copy-buffer sliding mean.
func NewLegacySlidingMean(k int, name string) Forecaster {
	if k < 1 {
		panic("nws: sliding window must be >= 1")
	}
	return &legacySlidingMean{k: k, name: name}
}

func (f *legacySlidingMean) Name() string { return f.name }
func (f *legacySlidingMean) Update(v float64) {
	f.buf = append(f.buf, v)
	f.sum += v
	if len(f.buf) > f.k {
		f.sum -= f.buf[0]
		f.buf = f.buf[1:]
	}
}
func (f *legacySlidingMean) Forecast() float64 { return f.sum / float64(len(f.buf)) }
func (f *legacySlidingMean) Ready() bool       { return len(f.buf) > 0 }

// legacySlidingMedian is the reference copy+sort sliding median.
type legacySlidingMedian struct {
	name string
	buf  []float64
	k    int
}

// NewLegacySlidingMedian returns the reference copy+sort sliding median.
func NewLegacySlidingMedian(k int, name string) Forecaster {
	if k < 1 {
		panic("nws: sliding window must be >= 1")
	}
	return &legacySlidingMedian{k: k, name: name}
}

func (f *legacySlidingMedian) Name() string { return f.name }
func (f *legacySlidingMedian) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.k {
		f.buf = f.buf[1:]
	}
}
func (f *legacySlidingMedian) Forecast() float64 {
	tmp := append([]float64(nil), f.buf...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
func (f *legacySlidingMedian) Ready() bool { return len(f.buf) > 0 }

// legacyTrimmedMean is the reference copy+sort trimmed mean.
type legacyTrimmedMean struct {
	name string
	buf  []float64
	k    int
	trim int
}

// NewLegacyTrimmedMean returns the reference copy+sort trimmed mean.
func NewLegacyTrimmedMean(k, trim int, name string) Forecaster {
	if k < 1 || trim < 0 || 2*trim >= k {
		panic("nws: invalid trimmed-mean window")
	}
	return &legacyTrimmedMean{k: k, trim: trim, name: name}
}

func (f *legacyTrimmedMean) Name() string { return f.name }
func (f *legacyTrimmedMean) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.k {
		f.buf = f.buf[1:]
	}
}
func (f *legacyTrimmedMean) Forecast() float64 {
	tmp := append([]float64(nil), f.buf...)
	sort.Float64s(tmp)
	lo, hi := 0, len(tmp)
	if len(tmp) > 2*f.trim {
		lo, hi = f.trim, len(tmp)-f.trim
	}
	sum := 0.0
	for _, v := range tmp[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
func (f *legacyTrimmedMean) Ready() bool { return len(f.buf) > 0 }

// legacyWindowedAR1 is the reference full re-fit windowed AR(1).
type legacyWindowedAR1 struct {
	name string
	buf  []float64
	k    int
}

// NewLegacyWindowedAR1 returns the reference windowed AR(1) that re-fits
// mean and lag-1 coefficient with two full passes per query.
func NewLegacyWindowedAR1(k int, name string) Forecaster {
	if k < 3 {
		panic("nws: windowed AR(1) needs k >= 3")
	}
	return &legacyWindowedAR1{k: k, name: name}
}

func (f *legacyWindowedAR1) Name() string { return f.name }
func (f *legacyWindowedAR1) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.k {
		f.buf = f.buf[1:]
	}
}
func (f *legacyWindowedAR1) Forecast() float64 {
	n := len(f.buf)
	last := f.buf[n-1]
	if n < 3 {
		return last
	}
	mean, sumXX, sumLag := 0.0, 0.0, 0.0
	for _, v := range f.buf {
		mean += v
	}
	mean /= float64(n)
	for i, v := range f.buf {
		d := v - mean
		sumXX += d * d
		if i > 0 {
			sumLag += (f.buf[i-1] - mean) * d
		}
	}
	phi := 0.0
	if sumXX > 1e-12 {
		phi = sumLag / sumXX
		if phi > 1 {
			phi = 1
		}
		if phi < -1 {
			phi = -1
		}
	}
	return mean + phi*(last-mean)
}
func (f *legacyWindowedAR1) Ready() bool { return len(f.buf) > 0 }

// legacyRunningMean is the reference raw-sum running mean.
type legacyRunningMean struct {
	sum float64
	n   int
}

// NewLegacyRunningMean returns the reference raw-sum running mean.
func NewLegacyRunningMean() Forecaster { return &legacyRunningMean{} }

func (f *legacyRunningMean) Name() string { return "run_mean" }
func (f *legacyRunningMean) Update(v float64) {
	f.sum += v
	f.n++
}
func (f *legacyRunningMean) Forecast() float64 { return f.sum / float64(f.n) }
func (f *legacyRunningMean) Ready() bool       { return f.n > 0 }

// legacyAR1Fit is the reference raw-sum whole-history AR(1) fit.
type legacyAR1Fit struct {
	prev     float64
	seen     int
	sumX     float64
	sumXX    float64
	sumLagXY float64
	n        float64
}

// NewLegacyAR1Fit returns the reference raw-sum AR(1) fit.
func NewLegacyAR1Fit() Forecaster { return &legacyAR1Fit{} }

func (f *legacyAR1Fit) Name() string { return "ar1" }
func (f *legacyAR1Fit) Update(v float64) {
	if f.seen > 0 {
		f.sumLagXY += f.prev * v
		f.n++
	}
	f.sumX += v
	f.sumXX += v * v
	f.seen++
	f.prev = v
}
func (f *legacyAR1Fit) Forecast() float64 {
	mean := f.sumX / float64(f.seen)
	phi := 0.0
	if f.n >= 2 {
		// lag-1 autocovariance / variance, both around the running mean
		cov := f.sumLagXY/f.n - mean*mean
		variance := f.sumXX/float64(f.seen) - mean*mean
		if variance > 1e-12 {
			phi = cov / variance
			if phi > 1 {
				phi = 1
			}
			if phi < -1 {
				phi = -1
			}
		}
	}
	return mean + phi*(f.prev-mean)
}
func (f *legacyAR1Fit) Ready() bool { return f.seen > 0 }

// LegacyDefaultForecasters mirrors DefaultForecasters with the reference
// implementations substituted where they exist — the "before" bank for
// differential tests and throughput comparisons.
func LegacyDefaultForecasters() []Forecaster {
	return []Forecaster{
		NewLastValue(),
		NewLegacyRunningMean(),
		NewLegacySlidingMean(5, "win_mean_5"),
		NewLegacySlidingMean(20, "win_mean_20"),
		NewLegacySlidingMedian(5, "win_med_5"),
		NewLegacySlidingMedian(21, "win_med_21"),
		NewExpSmoothing(0.05, "exp_0.05"),
		NewExpSmoothing(0.3, "exp_0.30"),
		NewExpSmoothing(0.7, "exp_0.70"),
		NewAdaptiveSmoothing(),
		NewLegacyAR1Fit(),
		NewLegacyTrimmedMean(15, 3, "trim_15_3"),
	}
}
