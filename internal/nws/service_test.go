package nws

import (
	"math"
	"strings"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/obs"
	"apples/internal/sim"
)

func TestServiceForecastsHostAvailability(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	h := tp.AddHost(grid.HostSpec{
		Name: "h", Speed: 10, MemoryMB: 64,
		Load: load.Constant(1), // availability 0.5 forever
	})
	tp.Finalize()

	svc := NewService(eng, 10)
	svc.WatchHost(h)
	if err := eng.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	v, ok := svc.AvailabilityForecast("h")
	if !ok || math.Abs(v-0.5) > 1e-9 {
		t.Fatalf("availability forecast %v ok=%v, want 0.5", v, ok)
	}
	if rmse, ok := svc.AvailabilityError("h"); !ok || rmse > 1e-9 {
		t.Fatalf("availability RMSE %v ok=%v, want 0", rmse, ok)
	}
}

func TestServiceForecastsLinkBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "a", Speed: 1, MemoryMB: 1})
	tp.AddHost(grid.HostSpec{Name: "b", Speed: 1, MemoryMB: 1})
	l := tp.AddLink(grid.LinkSpec{
		Name: "wire", Latency: 0, Bandwidth: 4,
		CrossTraffic: load.Constant(1),
	})
	tp.Attach("a", l)
	tp.Attach("b", l)
	tp.Finalize()

	svc := NewService(eng, 5)
	svc.WatchLink(l)
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	v, ok := svc.BandwidthForecast("wire")
	if !ok || math.Abs(v-2) > 1e-9 {
		t.Fatalf("bandwidth forecast %v ok=%v, want 2", v, ok)
	}
	if bw := svc.RouteBandwidthForecast(tp, "a", "b"); math.Abs(bw-2) > 1e-9 {
		t.Fatalf("route bandwidth forecast %v, want 2", bw)
	}
}

func TestServiceUnwatchedReturnsNotOK(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng, 10)
	if _, ok := svc.AvailabilityForecast("ghost"); ok {
		t.Fatal("forecast for unwatched host returned ok")
	}
	if _, ok := svc.BandwidthForecast("ghost"); ok {
		t.Fatal("forecast for unwatched link returned ok")
	}
}

func TestServiceNoHistoryNotOK(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	h := tp.AddHost(grid.HostSpec{Name: "h", Speed: 1, MemoryMB: 1})
	tp.Finalize()
	svc := NewService(eng, 10)
	svc.WatchHost(h)
	// Clock has not advanced; no samples yet.
	if _, ok := svc.AvailabilityForecast("h"); ok {
		t.Fatal("forecast before first sample returned ok")
	}
}

func TestWatchTopologyCoversEverything(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 5})
	svc := NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil {
		t.Fatal(err)
	}
	for _, h := range tp.Hosts() {
		if _, ok := svc.AvailabilityForecast(h.Name); !ok {
			t.Errorf("no availability forecast for %s", h.Name)
		}
	}
	for _, l := range tp.Links() {
		if _, ok := svc.BandwidthForecast(l.Name); !ok {
			t.Errorf("no bandwidth forecast for %s", l.Name)
		}
	}
	rep := svc.Report()
	if !strings.Contains(rep, "sparc2") || !strings.Contains(rep, "sdsc-fddi") {
		t.Fatalf("report missing entries:\n%s", rep)
	}
}

func TestServiceTracksChangingLoad(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	// Load 0 for 500 s, then load 4 forever.
	h := tp.AddHost(grid.HostSpec{
		Name: "h", Speed: 10, MemoryMB: 64,
		Load: load.NewTrace([]load.Step{{At: 0, Value: 0}, {At: 500, Value: 4}}),
	})
	tp.Finalize()
	svc := NewService(eng, 10)
	svc.WatchHost(h)

	if err := eng.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	v1, _ := svc.AvailabilityForecast("h")
	if math.Abs(v1-1) > 0.01 {
		t.Fatalf("pre-shift forecast %v, want ~1", v1)
	}
	if err := eng.RunUntil(1500); err != nil {
		t.Fatal(err)
	}
	v2, _ := svc.AvailabilityForecast("h")
	if math.Abs(v2-0.2) > 0.05 {
		t.Fatalf("post-shift forecast %v, want ~0.2", v2)
	}
}

func TestServiceStopHaltsSensors(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	h := tp.AddHost(grid.HostSpec{Name: "h", Speed: 1, MemoryMB: 1})
	tp.Finalize()
	svc := NewService(eng, 10)
	svc.WatchHost(h)
	svc.Stop()
	if err := eng.Run(); err != nil {
		t.Fatal(err) // would never drain if sensors kept ticking
	}
}

func TestForecastAccuracyOnTestbedBeatsNaiveStatic(t *testing.T) {
	// On the loaded testbed, the NWS forecast of sparc2 availability must
	// be closer to truth than assuming the machine is dedicated (av=1).
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 21})
	svc := NewService(eng, 10)
	svc.WatchTopology(tp)

	var nwsErr, staticErr float64
	n := 0
	for i := 0; i < 100; i++ {
		if err := eng.RunUntil(200 + float64(i)*10); err != nil {
			t.Fatal(err)
		}
		fc, ok := svc.AvailabilityForecast("sparc2")
		if !ok {
			continue
		}
		truth := tp.Host("sparc2").Availability()
		nwsErr += (fc - truth) * (fc - truth)
		staticErr += (1 - truth) * (1 - truth)
		n++
	}
	if n == 0 {
		t.Fatal("no forecasts scored")
	}
	if nwsErr >= staticErr {
		t.Fatalf("NWS MSE %v not better than static assumption MSE %v", nwsErr/float64(n), staticErr/float64(n))
	}
}

// TestServiceSweepSpans: with stage timing attached, every batch sweep
// records exactly one sensor_sweep observation covering all sensors —
// exact counts against the tick count, plus EvSpan events in the ring.
func TestServiceSweepSpans(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	h1 := tp.AddHost(grid.HostSpec{Name: "h1", Speed: 10, MemoryMB: 64, Load: load.Constant(1)})
	h2 := tp.AddHost(grid.HostSpec{Name: "h2", Speed: 10, MemoryMB: 64, Load: load.Constant(1)})
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0, Bandwidth: 4})
	tp.Attach("h1", l)
	tp.Attach("h2", l)
	tp.Finalize()

	reg := obs.NewMetrics()
	ring := obs.NewRingTracer(16)
	st := obs.NewStageTimer(reg, ring, nil)
	svc := NewService(eng, 10, WithMetrics(reg), WithStageTiming(st))
	svc.WatchHost(h1)
	svc.WatchHost(h2)
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}

	sweeps := reg.Counter(obs.MetricSensorSweeps).Value()
	if sweeps == 0 {
		t.Fatal("no sweeps recorded")
	}
	hist := reg.Histogram(obs.StageMetricName(obs.StageSweep), nil)
	if hist.Count() != sweeps {
		t.Fatalf("sweep spans = %d, want one per sweep (%d)", hist.Count(), sweeps)
	}
	for _, e := range ring.Recent(0) {
		if e.Type != obs.EvSpan || e.Stage != obs.StageSweep {
			t.Fatalf("ring holds non-sweep event %+v", e)
		}
	}
	if got := uint64(len(ring.Recent(0))); got != sweeps {
		t.Fatalf("ring holds %d sweep events, want %d", got, sweeps)
	}
	// Timing must not perturb sensing: both banks saw every sweep.
	if got := reg.Counter(obs.MetricBankUpdates).Value(); got != 2*sweeps {
		t.Fatalf("bank updates = %d, want %d (2 hosts x %d sweeps)", got, 2*sweeps, sweeps)
	}
}
