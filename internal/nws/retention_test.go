package nws

import (
	"strings"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

func retentionTopo(eng *sim.Engine) (*grid.Topology, *grid.Host) {
	tp := grid.NewTopology(eng)
	h := tp.AddHost(grid.HostSpec{
		Name: "h", Speed: 10, MemoryMB: 64,
		Load: load.Constant(1),
	})
	tp.Finalize()
	return tp, h
}

// The retention cap bounds the raw snapshot series while the bank still
// absorbs every measurement.
func TestRetentionCapsSnapshotSeries(t *testing.T) {
	eng := sim.NewEngine()
	_, h := retentionTopo(eng)

	svc := NewService(eng, 10, WithRetention(8))
	svc.WatchHost(h)
	if err := eng.RunUntil(505); err != nil { // 50 samples at t=10..500
		t.Fatal(err)
	}
	if got := svc.CPUBank("h").Len(); got != 50 {
		t.Fatalf("bank absorbed %d samples, want 50", got)
	}
	snap := svc.Snapshot()
	if got := len(snap.CPU["h"]); got != 8 {
		t.Fatalf("snapshot retained %d samples, want 8 (the cap)", got)
	}
}

// Restoring a bounded snapshot and snapshotting again is idempotent: the
// retained tail round-trips exactly.
func TestBoundedSnapshotRoundTripIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	_, h := retentionTopo(eng)

	svc := NewService(eng, 10, WithRetention(5))
	svc.WatchHost(h)
	if err := eng.RunUntil(205); err != nil {
		t.Fatal(err)
	}
	snap := svc.Snapshot()

	svc2 := NewService(sim.NewEngine(), 10, WithRetention(5))
	svc2.Restore(snap)
	snap2 := svc2.Snapshot()
	a, b := snap.CPU["h"], snap2.CPU["h"]
	if len(a) != len(b) {
		t.Fatalf("round trip changed series length: %d -> %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed sample %d: %v -> %v", i, a[i], b[i])
		}
	}
}

func TestRetentionRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithRetention(0) did not panic")
		}
	}()
	WithRetention(0)
}

// Report lists hosts then links, each block sorted by name, regardless of
// watch order (map iteration must not leak into the output).
func TestReportStableOrdering(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	names := []string{"zeta", "alpha", "mu", "beta", "omega"}
	for _, n := range names {
		tp.AddHost(grid.HostSpec{Name: n, Speed: 1, MemoryMB: 1, Load: load.Constant(1)})
	}
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0, Bandwidth: 4})
	for _, n := range names {
		tp.Attach(n, l)
	}
	tp.Finalize()

	svc := NewService(eng, 10)
	for _, n := range names {
		svc.WatchHost(tp.Host(n))
	}
	svc.WatchLink(l)
	if err := eng.RunUntil(50); err != nil {
		t.Fatal(err)
	}

	first := svc.Report()
	for i := 0; i < 10; i++ {
		if svc.Report() != first {
			t.Fatal("Report output is not deterministic across calls")
		}
	}
	var prev string
	sawLink := false
	for _, line := range strings.Split(strings.TrimSpace(first), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed report line %q", line)
		}
		kind, name := fields[0], fields[1]
		switch kind {
		case "cpu":
			if sawLink {
				t.Fatalf("host line %q after link lines", line)
			}
			if prev != "" && name < prev {
				t.Fatalf("host %q out of order after %q", name, prev)
			}
			prev = name
		case "bw":
			sawLink = true
		default:
			t.Fatalf("unknown report line kind %q", kind)
		}
	}
	if !sawLink {
		t.Fatal("report missing link section")
	}
}

// Sensors counts registered samplers; ObserveAll drives one sweep without
// the simulation clock.
func TestSensorsAndObserveAll(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	a := tp.AddHost(grid.HostSpec{Name: "a", Speed: 1, MemoryMB: 1, Load: load.Constant(1)})
	b := tp.AddHost(grid.HostSpec{Name: "b", Speed: 1, MemoryMB: 1, Load: load.Constant(3)})
	l := tp.AddLink(grid.LinkSpec{Name: "ab", Latency: 0, Bandwidth: 4})
	tp.Attach("a", l)
	tp.Attach("b", l)
	tp.Finalize()

	svc := NewService(eng, 10)
	if svc.Sensors() != 0 {
		t.Fatalf("idle service reports %d sensors, want 0", svc.Sensors())
	}
	svc.WatchHost(a)
	svc.WatchHost(b)
	if svc.Sensors() != 2 {
		t.Fatalf("Sensors() = %d, want 2", svc.Sensors())
	}
	for i := 0; i < 5; i++ {
		svc.ObserveAll(float64(i))
	}
	if got := svc.CPUBank("a").Len(); got != 5 {
		t.Fatalf("host a bank has %d samples after 5 sweeps, want 5", got)
	}
	if v, ok := svc.AvailabilityForecast("b"); !ok || v != 0.25 {
		t.Fatalf("host b forecast %v ok=%v, want 0.25", v, ok)
	}
	svc.Stop()
	if svc.Sensors() != 0 {
		t.Fatalf("Sensors() after Stop = %d, want 0", svc.Sensors())
	}
}
