package nws

import "sort"

// orderedWindow is the order-statistics structure behind the sliding
// median and trimmed mean: the current window's samples maintained in
// ascending order inside a preallocated array (a sorted multiset over the
// ring). An update is a binary-search locate (O(log k)) plus a small
// in-place shift; order-statistic queries are O(1) and trimmed sums walk
// only the surviving middle of the window. Nothing allocates after
// construction, and — unlike a heap pair — the fully sorted window lets
// the trimmed mean accumulate its sum in ascending order, which keeps it
// bit-identical to the legacy copy+sort implementation.
type orderedWindow struct {
	sorted []float64
}

func newOrderedWindow(k int) *orderedWindow {
	return &orderedWindow{sorted: make([]float64, 0, k)}
}

// insert adds v, keeping ascending order. The caller must remove an
// evicted sample first when the window is full; capacity is never grown.
func (w *orderedWindow) insert(v float64) {
	i := sort.SearchFloat64s(w.sorted, v)
	w.sorted = append(w.sorted, 0)
	copy(w.sorted[i+1:], w.sorted[i:])
	w.sorted[i] = v
}

// remove deletes one instance of v, which must be present.
func (w *orderedWindow) remove(v float64) {
	i := sort.SearchFloat64s(w.sorted, v)
	if i >= len(w.sorted) || w.sorted[i] != v {
		panic("nws: orderedWindow.remove of absent value")
	}
	copy(w.sorted[i:], w.sorted[i+1:])
	w.sorted = w.sorted[:len(w.sorted)-1]
}

// median returns the window median (mean of the middle pair when even).
func (w *orderedWindow) median() float64 {
	n := len(w.sorted)
	if n%2 == 1 {
		return w.sorted[n/2]
	}
	return (w.sorted[n/2-1] + w.sorted[n/2]) / 2
}

// trimmedMean averages the window after dropping the trim largest and
// trim smallest samples (or nothing, while the window is still shorter
// than 2*trim+1). The sum runs in ascending order — the exact order the
// legacy implementation summed its sorted scratch copy — so results match
// it bit for bit.
func (w *orderedWindow) trimmedMean(trim int) float64 {
	lo, hi := 0, len(w.sorted)
	if len(w.sorted) > 2*trim {
		lo, hi = trim, len(w.sorted)-trim
	}
	sum := 0.0
	for _, v := range w.sorted[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
