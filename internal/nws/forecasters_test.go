package nws

import (
	"math"
	"testing"
)

func feed(f Forecaster, vals ...float64) {
	for _, v := range vals {
		f.Update(v)
	}
}

func TestLastValue(t *testing.T) {
	f := NewLastValue()
	if f.Ready() {
		t.Fatal("fresh last-value is Ready")
	}
	feed(f, 1, 2, 7)
	if !f.Ready() || f.Forecast() != 7 {
		t.Fatalf("last-value forecast %v, want 7", f.Forecast())
	}
}

func TestRunningMean(t *testing.T) {
	f := NewRunningMean()
	feed(f, 2, 4, 6)
	if got := f.Forecast(); got != 4 {
		t.Fatalf("running mean %v, want 4", got)
	}
}

func TestSlidingMeanWindow(t *testing.T) {
	f := NewSlidingMean(3, "w3")
	feed(f, 100, 1, 2, 3)
	if got := f.Forecast(); got != 2 {
		t.Fatalf("sliding mean %v, want 2 (100 evicted)", got)
	}
}

func TestSlidingMedianOddEven(t *testing.T) {
	f := NewSlidingMedian(5, "m5")
	feed(f, 1, 9, 3)
	if got := f.Forecast(); got != 3 {
		t.Fatalf("median of 1,9,3 = %v, want 3", got)
	}
	feed(f, 5)
	if got := f.Forecast(); got != 4 {
		t.Fatalf("median of 1,9,3,5 = %v, want 4", got)
	}
}

func TestSlidingMedianRobustToSpike(t *testing.T) {
	f := NewSlidingMedian(5, "m5")
	feed(f, 1, 1, 1000, 1, 1)
	if got := f.Forecast(); got != 1 {
		t.Fatalf("median with spike %v, want 1", got)
	}
}

func TestExpSmoothing(t *testing.T) {
	f := NewExpSmoothing(0.5, "e")
	feed(f, 10) // initializes s=10
	feed(f, 20) // s = 15
	if got := f.Forecast(); got != 15 {
		t.Fatalf("exp smoothing %v, want 15", got)
	}
}

func TestExpSmoothingBadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha=0 did not panic")
		}
	}()
	NewExpSmoothing(0, "bad")
}

func TestAdaptiveSmoothingTracksLevelShift(t *testing.T) {
	f := NewAdaptiveSmoothing()
	for i := 0; i < 50; i++ {
		f.Update(1)
	}
	for i := 0; i < 50; i++ {
		f.Update(10)
	}
	if got := f.Forecast(); math.Abs(got-10) > 1 {
		t.Fatalf("adaptive smoothing after shift = %v, want ~10", got)
	}
}

func TestAR1FitConvergesOnAR1(t *testing.T) {
	// Deterministic AR(1)-ish series: x -> mean + phi*(x-mean) with a
	// two-point oscillation disturbance.
	f := NewAR1Fit()
	mean, phi := 5.0, 0.8
	x := 9.0
	for i := 0; i < 500; i++ {
		f.Update(x)
		d := 0.2
		if i%2 == 0 {
			d = -0.2
		}
		x = mean + phi*(x-mean) + d
	}
	pred := f.Forecast()
	next := mean + phi*(x-mean)
	if math.Abs(pred-next) > 0.8 {
		t.Fatalf("AR1 fit forecast %v, want near %v", pred, next)
	}
}

func TestTrimmedMeanDropsOutliers(t *testing.T) {
	f := NewTrimmedMean(5, 1, "t")
	feed(f, 1, 1, 1, 1, 100)
	if got := f.Forecast(); got != 1 {
		t.Fatalf("trimmed mean %v, want 1", got)
	}
}

func TestTrimmedMeanSmallHistory(t *testing.T) {
	f := NewTrimmedMean(5, 2, "t")
	feed(f, 4)
	if got := f.Forecast(); got != 4 {
		t.Fatalf("trimmed mean with 1 sample %v, want 4", got)
	}
}

func TestDefaultForecastersDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range DefaultForecasters() {
		if seen[f.Name()] {
			t.Fatalf("duplicate forecaster name %q", f.Name())
		}
		seen[f.Name()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("bank has %d forecasters, want >= 10", len(seen))
	}
}
