package nws

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

func sensedService(t *testing.T, horizon float64) (*Service, *grid.Topology) {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 77})
	svc := NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	return svc, tp
}

func TestSnapshotRoundTrip(t *testing.T) {
	svc, _ := sensedService(t, 500)
	snap := svc.Snapshot()
	if len(snap.CPU) != 8 || len(snap.Links) != 4 {
		t.Fatalf("snapshot covers %d hosts / %d links", len(snap.CPU), len(snap.Links))
	}

	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Restoring into a fresh service reproduces every forecast exactly:
	// forecasters are deterministic functions of the series.
	eng2 := sim.NewEngine()
	svc2 := NewService(eng2, 10)
	if err := svc2.Restore(back); err != nil {
		t.Fatal(err)
	}
	for host := range snap.CPU {
		want, okW := svc.AvailabilityForecast(host)
		got, okG := svc2.AvailabilityForecast(host)
		if okW != okG || want != got {
			t.Fatalf("host %s forecast %v/%v vs restored %v/%v", host, want, okW, got, okG)
		}
		wlt, _ := svc.AvailabilityLongTerm(host)
		glt, _ := svc2.AvailabilityLongTerm(host)
		if wlt != glt {
			t.Fatalf("host %s long-term %v vs restored %v", host, wlt, glt)
		}
	}
	for link := range snap.Links {
		want, _ := svc.BandwidthForecast(link)
		got, _ := svc2.BandwidthForecast(link)
		if want != got {
			t.Fatalf("link %s forecast %v vs restored %v", link, want, got)
		}
	}
}

func TestRestoreThenWatchAppends(t *testing.T) {
	svc, _ := sensedService(t, 300)
	snap := svc.Snapshot()
	before := len(snap.CPU["sparc2"])
	if before == 0 {
		t.Fatal("no sparc2 history in snapshot")
	}

	// Fresh engine + testbed; restore, then keep sensing.
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 77})
	svc2 := NewService(eng, 10)
	if err := svc2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	svc2.WatchTopology(tp)
	if err := eng.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	after := svc2.Snapshot()
	if got := len(after.CPU["sparc2"]); got != before+10 {
		t.Fatalf("series length %d after restore+10 samples, want %d", got, before+10)
	}
	if svc2.CPUBank("sparc2").Len() != before+10 {
		t.Fatalf("bank length %d, want %d", svc2.CPUBank("sparc2").Len(), before+10)
	}
}

func TestReadSnapshotRejectsBadInput(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	svc := NewService(sim.NewEngine(), 10)
	if err := svc.Restore(&Snapshot{Version: 99}); err == nil {
		t.Fatal("Restore accepted wrong version")
	}
}

// Property: snapshot -> JSON -> restore preserves forecasts for arbitrary
// series.
func TestSnapshotForecastProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 5
		rng := sim.NewRand(seed)
		src := load.NewAR1(rng, 1, 1, 0.8, 0.4)

		eng := sim.NewEngine()
		tp := grid.NewTopology(eng)
		h := tp.AddHost(grid.HostSpec{Name: "h", Speed: 10, MemoryMB: 64, Load: src})
		tp.Finalize()
		svc := NewService(eng, 1)
		svc.WatchHost(h)
		if err := eng.RunUntil(float64(n)); err != nil {
			return false
		}

		var buf bytes.Buffer
		if _, err := svc.Snapshot().WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		svc2 := NewService(sim.NewEngine(), 1)
		if err := svc2.Restore(back); err != nil {
			return false
		}
		a, okA := svc.AvailabilityForecast("h")
		b, okB := svc2.AvailabilityForecast("h")
		return okA == okB && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
