package nws

import (
	"fmt"

	"apples/internal/mstore"
)

// WithStore attaches a durable measurement store: every sample a sensor
// observes is appended as one record (KindCPU for host availability,
// KindBandwidth for link bandwidth; the record tick is the sample's
// 1-based position in its series). Appends ride the sensing sweep and
// are buffered — the store's own rotation/Sync policy decides when they
// reach disk. The first append failure is latched (StoreErr) and stops
// further appends rather than failing the sweep: sensing keeps the
// in-memory banks correct even when the disk misbehaves.
func WithStore(st *mstore.Store) ServiceOption {
	return func(s *Service) { s.store = st }
}

// StoreErr reports the first store-append failure, or nil. Callers that
// care about durability check it after sensing stops (the CLIs do on
// exit).
func (s *Service) StoreErr() error { return s.storeErr }

// RestoreFromStore replays every sensor record in the store — the full
// history, not one retention window — into fresh forecaster banks and
// retention rings, exactly as living through the samples would have:
// forecasts, per-forecaster error state, and bank winners come out
// bit-identical (forecasters are deterministic functions of their input
// series, and the store preserves append order). Series present in the
// service but absent from the store are left untouched; records of
// non-sensor kinds (e.g. load-trace steps sharing the store) are
// skipped. Call it before watching resources, like Restore; subsequent
// sensing appends to both the banks and — when WithStore points at the
// same store — the history itself, so ticks stay monotonic across
// restarts.
//
// It returns how many sensor records were replayed.
func (s *Service) RestoreFromStore(st *mstore.Store) (int, error) {
	replayed := 0
	fresh := make(map[string]bool) // kind-prefixed series started over
	for r, err := range st.Records() {
		if err != nil {
			return replayed, fmt.Errorf("nws: restore from store: %w", err)
		}
		var banks map[string]*Bank
		var rings map[string]*ring
		switch r.Kind {
		case mstore.KindCPU:
			banks, rings = s.cpuBanks, s.cpuSeries
		case mstore.KindBandwidth:
			banks, rings = s.bwBanks, s.bwSeries
		default:
			continue
		}
		key := r.Kind.String() + "\x00" + r.Series
		if !fresh[key] {
			fresh[key] = true
			banks[r.Series] = s.newBank()
			rings[r.Series] = newRing(s.retention)
		}
		banks[r.Series].Update(r.Value)
		rings[r.Series].push(r.Value)
		replayed++
	}
	return replayed, nil
}
