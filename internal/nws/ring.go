package nws

// ring is a fixed-capacity circular buffer of measurements. It is the
// backing store for every windowed forecaster and for the service's
// bounded raw-series retention: pushing into a full ring overwrites the
// oldest sample in place, so steady-state sensing never allocates and
// never shifts memory the way the old `buf = buf[1:]` append churn did.
//
// A ring also counts every sample ever pushed (total), which lets several
// forecasters with different window sizes share one ring: a forecaster
// with window k evicts back(k-1) — the k-th most recent sample — once
// total >= k, regardless of what larger window the ring itself retains.
type ring struct {
	data  []float64
	start int    // index of the oldest retained sample
	count int    // retained samples, <= cap
	total uint64 // samples ever pushed
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		panic("nws: ring capacity must be >= 1")
	}
	return &ring{data: make([]float64, capacity)}
}

// push appends v, overwriting the oldest retained sample when full.
func (r *ring) push(v float64) {
	if r.count < len(r.data) {
		r.data[(r.start+r.count)%len(r.data)] = v
		r.count++
	} else {
		r.data[r.start] = v
		r.start++
		if r.start == len(r.data) {
			r.start = 0
		}
	}
	r.total++
}

// back returns the i-th most recent sample; back(0) is the latest.
func (r *ring) back(i int) float64 {
	if i < 0 || i >= r.count {
		panic("nws: ring index out of window")
	}
	idx := r.start + r.count - 1 - i
	if idx >= len(r.data) {
		idx -= len(r.data)
	}
	return r.data[idx]
}

// len reports how many samples the ring currently retains.
func (r *ring) len() int { return r.count }

// values returns the retained samples oldest-first as a fresh slice.
// Only snapshotting uses it; the sensing path never does.
func (r *ring) values() []float64 {
	if r.count == 0 {
		return nil
	}
	out := make([]float64, r.count)
	for i := 0; i < r.count; i++ {
		idx := r.start + i
		if idx >= len(r.data) {
			idx -= len(r.data)
		}
		out[i] = r.data[idx]
	}
	return out
}
