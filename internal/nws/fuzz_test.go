package nws

import (
	"bytes"
	"reflect"
	"testing"

	"apples/internal/sim"
)

// FuzzReadSnapshot feeds arbitrary bytes to the sensor-snapshot decoder.
// Decoding must never panic; an accepted snapshot must survive an
// encode/decode round trip unchanged and must restore into a fresh
// service without panicking, leaving every restored series queryable —
// the persistence contract forecaster banks are rebuilt from.
func FuzzReadSnapshot(f *testing.F) {
	// A realistic two-host, one-link snapshot.
	f.Add([]byte(`{"version":1,"period":10,` +
		`"cpu":{"alpha1":[0.9,0.8,0.85],"alpha2":[1,1,0.4]},` +
		`"links":{"ether1":[0.62,0.58,0.6]}}`))
	// Empty but well-formed.
	f.Add([]byte(`{"version":1,"period":10,"cpu":{},"links":{}}`))
	// Single sample and extreme values.
	f.Add([]byte(`{"version":1,"period":0.5,"cpu":{"h":[1e308]},"links":{"l":[-1e-308,0]}}`))
	// Rejection seeds: wrong version, malformed JSON, wrong shapes.
	f.Add([]byte(`{"version":2,"period":10}`))
	f.Add([]byte(`{"version":1,"cpu":{"h":"notalist"}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		snap2, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(snap), normalize(snap2)) {
			t.Fatalf("round trip changed the snapshot:\n was %+v\n now %+v", snap, snap2)
		}

		svc := NewService(sim.NewEngine(), 10)
		if err := svc.Restore(snap); err != nil {
			t.Fatalf("restore of an accepted snapshot failed: %v", err)
		}
		for name, series := range snap.CPU {
			if _, ok := svc.AvailabilityLongTerm(name); ok != (len(series) > 0) {
				t.Fatalf("restored cpu series %q: queryable=%v with %d samples", name, ok, len(series))
			}
		}
		for name, series := range snap.Links {
			if _, ok := svc.BandwidthLongTerm(name); ok != (len(series) > 0) {
				t.Fatalf("restored link series %q: queryable=%v with %d samples", name, ok, len(series))
			}
		}
	})
}

// normalize maps empty and nil series containers to a canonical form:
// JSON does not distinguish a missing map from an empty one, so the
// round-trip equality must not either.
func normalize(s *Snapshot) *Snapshot {
	out := &Snapshot{Version: s.Version, Period: s.Period,
		CPU: map[string][]float64{}, Links: map[string][]float64{}}
	for k, v := range s.CPU {
		out.CPU[k] = append([]float64{}, v...)
	}
	for k, v := range s.Links {
		out.Links[k] = append([]float64{}, v...)
	}
	return out
}
