package nws

import (
	"fmt"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

// benchValues pregenerates a measurement series so RNG cost stays out of
// the timed loop.
func benchValues(n int) []float64 {
	rng := sim.NewRand(1)
	out := make([]float64, n)
	x := 0.5
	for i := range out {
		x = 0.5 + 0.8*(x-0.5) + rng.Normal(0, 0.1)
		out[i] = x
	}
	return out
}

// windowBank builds a bank whose windowed forecasters all use window k,
// from the incremental (legacy=false) or copy+sort legacy (legacy=true)
// implementations.
func windowBank(k int, legacy bool) *Bank {
	ark := k
	if ark < 3 {
		ark = 3
	}
	if legacy {
		return NewBank(
			NewLastValue(),
			NewLegacySlidingMean(k, "mean"),
			NewLegacySlidingMedian(k, "median"),
			NewLegacyTrimmedMean(k, k/8, "trim"),
			NewLegacyWindowedAR1(ark, "ar"),
		)
	}
	return NewBank(
		NewLastValue(),
		NewSlidingMean(k, "mean"),
		NewSlidingMedian(k, "median"),
		NewTrimmedMean(k, k/8, "trim"),
		NewWindowedAR1(ark, "ar"),
	)
}

// BenchmarkBankUpdate measures the sensing hot path: one Update on a bank
// of forecasters. The default bank is what every Service sensor runs; the
// wN/legacy-wN pairs sweep window size to expose the O(k) vs O(log k)
// gap and the allocation behavior.
func BenchmarkBankUpdate(b *testing.B) {
	vals := benchValues(4096)
	run := func(name string, mk func() *Bank) {
		b.Run(name, func(b *testing.B) {
			bank := mk()
			for _, v := range vals[:256] { // warm past every window
				bank.Update(v)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bank.Update(vals[i%len(vals)])
			}
		})
	}
	run("default", func() *Bank { return NewBank() })
	run("legacy-default", func() *Bank { return NewBank(LegacyDefaultForecasters()...) })
	for _, k := range []int{5, 21, 101} {
		k := k
		run(fmt.Sprintf("w%d", k), func() *Bank { return windowBank(k, false) })
		run(fmt.Sprintf("legacy-w%d", k), func() *Bank { return windowBank(k, true) })
	}
}

func BenchmarkBankForecast(b *testing.B) {
	bank := NewBank()
	for _, v := range benchValues(1000) {
		bank.Update(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Forecast()
	}
}

// BenchmarkServiceTick measures one full sensing sweep (ObserveAll) over
// topologies of increasing size. Routing is never touched, so the
// topology is left unfinalized and sweeping 10k hosts stays cheap.
func BenchmarkServiceTick(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("series%d", n), func(b *testing.B) {
			eng := sim.NewEngine()
			tp := grid.NewTopology(eng)
			svc := NewService(eng, 10)
			for i := 0; i < n; i++ {
				h := tp.AddHost(grid.HostSpec{
					Name: fmt.Sprintf("h%04d", i), Speed: 10, MemoryMB: 64,
					Load: load.Constant(float64(i%7) * 0.3),
				})
				svc.WatchHost(h)
			}
			svc.ObserveAll(0) // warm: first sweep samples lazy load state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc.ObserveAll(float64(i))
			}
		})
	}
}
