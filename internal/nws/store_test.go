package nws

import (
	"reflect"
	"testing"

	"apples/internal/grid"
	"apples/internal/mstore"
	"apples/internal/sim"
)

// bankFingerprint is everything observable about one forecaster bank:
// the selected forecast and its winner, the trust estimate, the running
// mean, and the full per-forecaster error state. Warm-start parity means
// two banks produce equal fingerprints, compared with == on every float.
type bankFingerprint struct {
	Len      int
	Last     float64
	Mean     float64
	Forecast float64
	By       string
	OK       bool
	RMSE     float64
	RMSEOK   bool
	MSE      map[string]float64
	MAE      map[string]float64
}

func fingerprint(b *Bank) bankFingerprint {
	if b == nil {
		return bankFingerprint{}
	}
	fp := bankFingerprint{Len: b.Len(), Last: b.Last(), MSE: b.MSE(), MAE: b.MAE()}
	if b.Len() > 0 {
		fp.Mean = b.Mean()
	}
	fp.Forecast, fp.By, fp.OK = b.Forecast()
	fp.RMSE, fp.RMSEOK = b.ErrorEstimate()
	return fp
}

// serviceFingerprints maps every watched resource to its bank state.
func serviceFingerprints(svc *Service, tp *grid.Topology) map[string]bankFingerprint {
	out := make(map[string]bankFingerprint)
	for _, h := range tp.Hosts() {
		out["cpu:"+h.Name] = fingerprint(svc.CPUBank(h.Name))
	}
	for _, l := range tp.Links() {
		out["bw:"+l.Name] = fingerprint(svc.LinkBank(l.Name))
	}
	return out
}

// TestStoreWarmStartDifferential is the warm-start parity sweep: one
// service lives through T1+T2 seconds of sensing; a second senses T1
// seconds into a store, "dies", and a fresh service restores from the
// store and senses the remaining T2 on the same (deterministic) world.
// Across seeds × retention × forecaster sets, every bank must end
// bit-identical — forecasts, winners, per-forecaster error state — which
// is the RestoreFromStore contract extended from persist.go's one
// retention window to the full history.
func TestStoreWarmStartDifferential(t *testing.T) {
	const period, t1, t2 = 10.0, 300.0, 200.0
	banks := map[string]func() *Bank{
		"default": func() *Bank { return NewBank() },
		"windowed": func() *Bank {
			return NewBank(NewLastValue(), NewSlidingMean(21, "mean21"),
				NewSlidingMedian(31, "med31"), NewExpSmoothing(0.3, "exp03"))
		},
		"minimal": func() *Bank { return NewBank(NewRunningMean(), NewAR1Fit()) },
	}
	for _, seed := range []int64{11, 77} {
		for _, retention := range []int{16, DefaultRetention} {
			for bankName, mk := range banks {
				opts := func() []ServiceOption {
					return []ServiceOption{WithRetention(retention), WithBankFactory(mk)}
				}

				// Reference: one service, uninterrupted sensing.
				engA := sim.NewEngine()
				tpA := grid.SDSCPCL(engA, grid.TestbedOptions{Seed: seed})
				svcA := NewService(engA, period, opts()...)
				svcA.WatchTopology(tpA)
				if err := engA.RunUntil(t1 + t2); err != nil {
					t.Fatal(err)
				}

				// Restarted: sense T1 into a store, stop (the "crash"),
				// restore into a fresh service, sense the rest.
				dir := t.TempDir()
				st, err := mstore.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				engB := sim.NewEngine()
				tpB := grid.SDSCPCL(engB, grid.TestbedOptions{Seed: seed})
				svcB1 := NewService(engB, period, append(opts(), WithStore(st))...)
				svcB1.WatchTopology(tpB)
				if err := engB.RunUntil(t1); err != nil {
					t.Fatal(err)
				}
				svcB1.Stop()
				if err := svcB1.StoreErr(); err != nil {
					t.Fatal(err)
				}
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}

				re, err := mstore.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				svcB2 := NewService(engB, period, append(opts(), WithStore(re))...)
				replayed, err := svcB2.RestoreFromStore(re)
				if err != nil {
					t.Fatal(err)
				}
				wantReplayed := int(t1/period) * (len(tpB.Hosts()) + len(tpB.Links()))
				if replayed != wantReplayed {
					t.Fatalf("seed=%d ret=%d bank=%s: replayed %d records, want %d",
						seed, retention, bankName, replayed, wantReplayed)
				}
				svcB2.WatchTopology(tpB)
				if err := engB.RunUntil(t1 + t2); err != nil {
					t.Fatal(err)
				}
				svcB2.Stop()
				if err := svcB2.StoreErr(); err != nil {
					t.Fatal(err)
				}

				want := serviceFingerprints(svcA, tpA)
				got := serviceFingerprints(svcB2, tpB)
				if !reflect.DeepEqual(got, want) {
					for k := range want {
						if !reflect.DeepEqual(got[k], want[k]) {
							t.Errorf("seed=%d ret=%d bank=%s: %s diverged:\nlive    %+v\nrestart %+v",
								seed, retention, bankName, k, want[k], got[k])
						}
					}
					t.FailNow()
				}

				// The continued store now holds the full history: a third
				// service restored from it alone must match too.
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
				final, err := mstore.Open(dir, mstore.ReadOnly())
				if err != nil {
					t.Fatal(err)
				}
				svcC := NewService(sim.NewEngine(), period, opts()...)
				if _, err := svcC.RestoreFromStore(final); err != nil {
					t.Fatal(err)
				}
				if got := serviceFingerprints(svcC, tpA); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d ret=%d bank=%s: restore of the full history diverged from the live run",
						seed, retention, bankName)
				}
			}
		}
	}
}

// TestStoreTicksMonotonicAcrossRestart pins the tick contract: a series'
// records carry its 1-based sample positions, and a restart that
// restores before sensing continues the numbering instead of starting
// over.
func TestStoreTicksMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	run := func(restore bool, horizon float64) {
		st, err := mstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		eng := sim.NewEngine()
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 5})
		svc := NewService(eng, 10, WithStore(st))
		if restore {
			if _, err := svc.RestoreFromStore(st); err != nil {
				t.Fatal(err)
			}
		}
		svc.WatchTopology(tp)
		if err := eng.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		svc.Stop()
		if err := svc.StoreErr(); err != nil {
			t.Fatal(err)
		}
	}
	run(false, 100)
	run(true, 100) // second process: 10 more sweeps after restore

	final, err := mstore.Open(dir, mstore.ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(map[string]uint64)
	for r, err := range final.Records() {
		if err != nil {
			t.Fatal(err)
		}
		key := r.Kind.String() + ":" + r.Series
		if r.Tick != ticks[key]+1 {
			t.Fatalf("series %s jumped from tick %d to %d", key, ticks[key], r.Tick)
		}
		ticks[key] = r.Tick
	}
	if got := ticks["cpu:sparc2"]; got != 20 {
		t.Fatalf("sparc2 reached tick %d after two 10-sweep runs, want 20", got)
	}
}
