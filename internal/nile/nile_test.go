package nile

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/load"
	"apples/internal/sim"
)

// labTopology: a data store host and a user workstation over a shared
// campus link, plus a second store for catalog tests.
func labTopology(eng *sim.Engine, linkCross load.Source) *grid.Topology {
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "store1", Speed: 40, MemoryMB: 512})
	tp.AddHost(grid.HostSpec{Name: "store2", Speed: 40, MemoryMB: 512})
	tp.AddHost(grid.HostSpec{Name: "desk", Speed: 25, MemoryMB: 256})
	l := tp.AddLink(grid.LinkSpec{Name: "campus", Latency: 0.002, Bandwidth: 4, CrossTraffic: linkCross})
	tp.Attach("store1", l)
	tp.Attach("store2", l)
	tp.Attach("desk", l)
	tp.Finalize()
	return tp
}

func testJob(passes int) Job {
	return Job{UserHost: "desk", Passes: passes, FlopPerEvent: 2.0e5}
}

func testDataset(events int) Dataset {
	return Dataset{Name: "roar", Site: "store1", Events: events, RecordBytes: 20480}
}

func TestExecuteSkimMatchesHandComputation(t *testing.T) {
	eng := sim.NewEngine()
	tp := labTopology(eng, nil)
	ds := testDataset(10000) // 204.8 MB, 2000 Mflop
	res, err := Execute(tp, ds, testJob(2), Skim)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer: 204.8/4 = 51.2 s + 2 ms; compute: 2000/25 = 80 s per pass.
	want := 51.2 + 0.002 + 2*80
	if math.Abs(res.Time-want) > 0.5 {
		t.Fatalf("skim run %v s, want ~%v", res.Time, want)
	}
	if res.BytesMoved != 10000*20480 {
		t.Fatalf("bytes moved %v", res.BytesMoved)
	}
}

func TestExecuteAtDataUsesStoreSpeed(t *testing.T) {
	eng := sim.NewEngine()
	tp := labTopology(eng, nil)
	ds := testDataset(10000)
	res, err := Execute(tp, ds, testJob(1), AtData)
	if err != nil {
		t.Fatal(err)
	}
	// 2000 Mflop at 40 Mflop/s = 50 s + 1 MB result transfer (~0.25 s).
	want := 50 + 0.25 + 0.002
	if math.Abs(res.Time-want) > 0.5 {
		t.Fatalf("at-data run %v s, want ~%v", res.Time, want)
	}
}

func TestExecuteRemoteOverlapsTransferAndCompute(t *testing.T) {
	eng := sim.NewEngine()
	tp := labTopology(eng, nil)
	ds := testDataset(10000)
	res, err := Execute(tp, ds, testJob(1), Remote)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer-bound pass: 51.2 s of streaming dominates 80 s of compute?
	// Compute 80 s > transfer 51.2 s, so the pass is compute-bound; with
	// overlap it must be close to max(80, 51.2) plus one chunk's latency,
	// and strictly less than the serial sum.
	if res.Time > 135 || res.Time < 80 {
		t.Fatalf("remote run %v s, want between 80 (bound) and 131 (serial)", res.Time)
	}
	if res.Time > 100 {
		t.Fatalf("remote run %v s shows no transfer/compute overlap", res.Time)
	}
}

func TestSkimBeatsRemoteForManyPasses(t *testing.T) {
	run := func(s Strategy, passes int) float64 {
		eng := sim.NewEngine()
		tp := labTopology(eng, nil)
		job := testJob(passes)
		job.SkimSelectivity = 0.5 // later passes touch half the events
		res, err := Execute(tp, testDataset(20000), job, s)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	// One pass: skim's up-front copy makes it slower or comparable.
	if run(Skim, 1) < run(Remote, 1) {
		t.Fatal("skim should not beat remote on a single pass here")
	}
	// Ten passes: local data amortizes the copy.
	if run(Skim, 10) >= run(Remote, 10) {
		t.Fatal("skim should beat remote after many passes")
	}
}

func TestSiteManagerChoosesMeasuredBest(t *testing.T) {
	// With oracle-quality estimates, the chosen strategy's measured time
	// must be the minimum of the three measured times.
	for _, passes := range []int{1, 3, 8} {
		times := map[Strategy]float64{}
		for _, s := range []Strategy{Remote, Skim, AtData} {
			eng := sim.NewEngine()
			tp := labTopology(eng, nil)
			res, err := Execute(tp, testDataset(20000), testJob(passes), s)
			if err != nil {
				t.Fatal(err)
			}
			times[s] = res.Time
		}
		eng := sim.NewEngine()
		tp := labTopology(eng, nil)
		sm := NewSiteManager(tp, oracle{tp})
		choice, pred, err := sm.Choose(testDataset(20000), testJob(passes))
		if err != nil {
			t.Fatal(err)
		}
		best := Remote
		for s, tm := range times {
			if tm < times[best] {
				best = s
			}
		}
		// Allow the choice to differ only if within 10% of the best.
		if choice != best && times[choice] > times[best]*1.1 {
			t.Fatalf("passes=%d: chose %v (measured %v), best %v (measured %v), predicted %v",
				passes, choice, times[choice], best, times[best], pred)
		}
	}
}

// oracle adapts the topology's true state to the Estimates interface.
type oracle struct{ tp *grid.Topology }

func (o oracle) Availability(h string) float64      { return o.tp.Host(h).Availability() }
func (o oracle) RouteBandwidth(a, b string) float64 { return o.tp.RouteBandwidth(a, b) }
func (o oracle) RouteLatency(a, b string) float64   { return o.tp.RouteLatency(a, b) }

func TestSkimCrossover(t *testing.T) {
	eng := sim.NewEngine()
	tp := labTopology(eng, nil)
	sm := NewSiteManager(tp, oracle{tp})
	ds := testDataset(20000)
	// Make transfer dominate: slow per-event compute relative to data.
	job := Job{UserHost: "desk", Passes: 1, FlopPerEvent: 2.0e4}
	cross, err := sm.SkimCrossover(ds, job, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cross < 2 {
		t.Fatalf("crossover %d: skim should not win immediately", cross)
	}
	if cross == 0 {
		t.Fatal("skim never wins despite transfer-dominated passes")
	}
}

func TestDistributedBeatsCentralized(t *testing.T) {
	catalog := []Dataset{
		{Name: "s1", Site: "store1", Events: 20000, RecordBytes: 20480},
		{Name: "s2", Site: "store2", Events: 20000, RecordBytes: 20480},
	}
	eng := sim.NewEngine()
	tp := labTopology(eng, nil)
	dist, err := ExecuteDistributed(tp, catalog, testJob(1))
	if err != nil {
		t.Fatal(err)
	}
	eng2 := sim.NewEngine()
	tp2 := labTopology(eng2, nil)
	central, err := CentralizedBaseline(tp2, catalog, testJob(1))
	if err != nil {
		t.Fatal(err)
	}
	if dist.Time >= central.Time {
		t.Fatalf("distributed %v not faster than centralized %v", dist.Time, central.Time)
	}
	if dist.BytesMoved >= central.BytesMoved {
		t.Fatalf("distributed moved %v bytes, centralized %v", dist.BytesMoved, central.BytesMoved)
	}
}

func TestContendedLinkShiftsDecisionToAtData(t *testing.T) {
	// Saturated campus link: moving data is hopeless, computing at the
	// store wins even though the store is also the data server.
	eng := sim.NewEngine()
	tp := labTopology(eng, load.Constant(20))
	sm := NewSiteManager(tp, oracle{tp})
	choice, _, err := sm.Choose(testDataset(20000), testJob(3))
	if err != nil {
		t.Fatal(err)
	}
	if choice != AtData {
		t.Fatalf("with a saturated link the site manager chose %v, want at-data", choice)
	}
}

func TestJobFromTemplate(t *testing.T) {
	job, err := JobFromTemplate(hat.Nile(1000), "desk", 4)
	if err != nil {
		t.Fatal(err)
	}
	if job.FlopPerEvent != 2.0e5 || job.Passes != 4 || job.UserHost != "desk" {
		t.Fatalf("job %+v", job)
	}
	if _, err := JobFromTemplate(hat.Jacobi2D(10, 1), "desk", 1); err == nil {
		t.Fatal("non-NILE template accepted")
	}
}

func TestExecuteValidation(t *testing.T) {
	eng := sim.NewEngine()
	tp := labTopology(eng, nil)
	if _, err := Execute(tp, Dataset{Name: "x", Site: "ghost", Events: 1, RecordBytes: 1}, testJob(1), Remote); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := Execute(tp, testDataset(0), testJob(1), Remote); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := Execute(tp, testDataset(10), testJob(0), Remote); err == nil {
		t.Fatal("zero passes accepted")
	}
	if _, err := Execute(tp, testDataset(10), Job{UserHost: "ghost", Passes: 1}, Remote); err == nil {
		t.Fatal("unknown user host accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Remote.String() != "remote" || Skim.String() != "skim" || AtData.String() != "at-data" {
		t.Fatal("strategy strings wrong")
	}
}

func BenchmarkRemoteAnalysis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		tp := labTopology(eng, nil)
		if _, err := Execute(tp, testDataset(5000), testJob(2), Remote); err != nil {
			b.Fatal(err)
		}
	}
}
