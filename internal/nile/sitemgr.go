package nile

import (
	"fmt"
	"math"

	"apples/internal/grid"
)

// Estimates supplies the Site Manager's dynamic predictions. The AppLeS
// Information implementations in internal/core satisfy this interface.
type Estimates interface {
	Availability(host string) float64
	RouteBandwidth(a, b string) float64
	RouteLatency(a, b string) float64
}

// SiteManager is the NILE component users submit analysis programs to: it
// predicts each strategy's cost from dynamic information and picks the
// cheapest (Section 2.1).
type SiteManager struct {
	tp   *grid.Topology
	info Estimates
}

// NewSiteManager builds a site manager over the topology with the given
// prediction source.
func NewSiteManager(tp *grid.Topology, info Estimates) *SiteManager {
	return &SiteManager{tp: tp, info: info}
}

// effectiveMflops is the forecast deliverable compute rate of a host.
func (sm *SiteManager) effectiveMflops(host string) float64 {
	h := sm.tp.Host(host)
	if h == nil {
		return 0
	}
	return h.Speed * sm.info.Availability(host)
}

// Predict estimates the total time of one strategy for the job.
func (sm *SiteManager) Predict(ds Dataset, job Job, s Strategy) (float64, error) {
	job.setDefaults()
	if err := validate(sm.tp, ds, job); err != nil {
		return 0, err
	}
	eventsMB := float64(ds.Events) * ds.RecordBytes / 1e6
	computeMflop := float64(ds.Events) * job.FlopPerEvent / 1e6
	bw := sm.info.RouteBandwidth(ds.Site, job.UserHost)
	if bw <= 0 {
		bw = 1e-6
	}
	lat := sm.info.RouteLatency(ds.Site, job.UserHost)
	userRate := sm.effectiveMflops(job.UserHost)
	storeRate := sm.effectiveMflops(ds.Site)
	if userRate <= 0 || storeRate <= 0 {
		return 0, fmt.Errorf("nile: no deliverable compute rate")
	}
	xfer := eventsMB/bw + lat
	userCompute := computeMflop / userRate
	storeCompute := computeMflop / storeRate
	p := float64(job.Passes)

	switch s {
	case Remote:
		// Transfer and compute overlap within a pass.
		return p * math.Max(xfer, userCompute), nil
	case Skim:
		return xfer + p*userCompute*job.SkimSelectivity, nil
	case AtData:
		return p * (storeCompute + job.ResultBytes/1e6/bw + lat), nil
	default:
		return 0, fmt.Errorf("nile: unknown strategy %v", s)
	}
}

// Choose returns the strategy with the minimum predicted time and the
// prediction itself.
func (sm *SiteManager) Choose(ds Dataset, job Job) (Strategy, float64, error) {
	best, bestT := Remote, math.Inf(1)
	for _, s := range []Strategy{Remote, Skim, AtData} {
		t, err := sm.Predict(ds, job, s)
		if err != nil {
			return 0, 0, err
		}
		if t < bestT {
			best, bestT = s, t
		}
	}
	return best, bestT, nil
}

// SkimCrossover returns the smallest pass count at which Skim's predicted
// time beats Remote's (0 if Skim never wins within maxPasses) — the
// decision curve of experiment E6.
func (sm *SiteManager) SkimCrossover(ds Dataset, job Job, maxPasses int) (int, error) {
	for p := 1; p <= maxPasses; p++ {
		job.Passes = p
		r, err := sm.Predict(ds, job, Remote)
		if err != nil {
			return 0, err
		}
		k, err := sm.Predict(ds, job, Skim)
		if err != nil {
			return 0, err
		}
		if k < r {
			return p, nil
		}
	}
	return 0, nil
}

// ExecuteDistributed analyzes a sharded catalog in parallel: every shard
// is processed at its own data site (one pass each; the data-parallel NILE
// case) and the histogram results gather at the user host. Returns the
// wall-clock time, which is bounded by the slowest site.
func ExecuteDistributed(tp *grid.Topology, catalog []Dataset, job Job) (*Result, error) {
	job.setDefaults()
	if len(catalog) == 0 {
		return nil, fmt.Errorf("nile: empty catalog")
	}
	for _, ds := range catalog {
		if err := validate(tp, ds, job); err != nil {
			return nil, err
		}
	}
	eng := tp.Engine
	res := &Result{Strategy: AtData}
	start := eng.Now()
	remaining := len(catalog) * job.Passes
	done := func() {
		remaining--
		if remaining == 0 {
			res.Time = eng.Now() - start
			eng.Halt()
		}
	}
	for _, ds := range catalog {
		ds := ds
		store := tp.Host(ds.Site)
		computeMflop := float64(ds.Events) * job.FlopPerEvent / 1e6
		pass := 0
		var runPass func()
		runPass = func() {
			if pass >= job.Passes {
				return
			}
			pass++
			store.Submit(computeMflop, func() {
				tp.Send(ds.Site, job.UserHost, job.ResultBytes/1e6, func() {
					done()
					runPass()
				})
			})
		}
		runPass()
		res.BytesMoved += float64(job.Passes) * job.ResultBytes
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return res, nil
}

// CentralizedBaseline streams the whole catalog to the user host and
// analyzes it there (the single-site alternative NILE exists to replace).
func CentralizedBaseline(tp *grid.Topology, catalog []Dataset, job Job) (*Result, error) {
	if len(catalog) == 0 {
		return nil, fmt.Errorf("nile: empty catalog")
	}
	total := &Result{Strategy: Remote}
	for _, ds := range catalog {
		r, err := Execute(tp, ds, job, Remote)
		if err != nil {
			return nil, err
		}
		total.Time += r.Time
		total.BytesMoved += r.BytesMoved
	}
	return total, nil
}
