// Package nile models CLEO/NILE distributed event analysis (Section 2.1):
// high-energy-physics event records stored at data sites, analyzed by
// physicists from arbitrary hosts in the metacomputer.
//
// The package implements the Site Manager's scheduling decision the paper
// highlights — "the cost of skimming is compared with a prediction of the
// reduction in cost of event analysis when the data is local" — as a
// choice among three execution strategies for a repeated analysis:
//
//   - Remote: every pass streams the event subset from the data site to
//     the analysis host, overlapping transfer with computation;
//   - Skim: a one-time copy creates a private local data set, after which
//     every pass is purely local;
//   - AtData: the analysis program moves to the data site and only the
//     (small) histogram results travel.
//
// It also implements the multi-site data-parallel analysis that motivates
// NILE: shards analyzed in place, in parallel, with a histogram gather at
// the end — versus centralizing all data at one host.
//
// Everything executes on the simulated metacomputer, so strategy costs
// reflect ambient CPU load and network contention, and the Site Manager's
// predictions can be checked against measured outcomes (experiment E6).
package nile
