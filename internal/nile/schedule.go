package nile

import (
	"fmt"
	"math"
	"sort"

	"apples/internal/grid"
)

// ShardPlan assigns one dataset shard to a compute host. When the host is
// the shard's data site the records never leave the server; otherwise
// they stream over the network with transfer/compute overlap.
type ShardPlan struct {
	Dataset   string
	DataSite  string
	Compute   string
	Predicted float64 // seconds of work this plan adds to Compute
}

// AnalysisSchedule is a full multi-site assignment for one pass over a
// sharded catalog.
type AnalysisSchedule struct {
	Plans []ShardPlan
	// PredictedMakespan is the estimated completion time of the slowest
	// compute host.
	PredictedMakespan float64
}

// Local reports how many shards run at their own data site.
func (s *AnalysisSchedule) Local() int {
	n := 0
	for _, p := range s.Plans {
		if p.Compute == p.DataSite {
			n++
		}
	}
	return n
}

// PlanDistributed is the NILE Site Manager acting as a resource allocator
// (the paper: "In the NILE system under development, resource allocation
// will be added to the services provided by the Site Manager"): it
// assigns every shard of the catalog to a compute host so the predicted
// makespan is minimized, trading data locality against deliverable CPU
// performance exactly as Section 3.3 prescribes — a far-away fast host
// beats the local server only if the network can feed it.
//
// The assignment uses longest-processing-time-first list scheduling over
// per-(shard, host) costs from the Estimates source.
func PlanDistributed(tp *grid.Topology, catalog []Dataset, job Job, hosts []string, est Estimates) (*AnalysisSchedule, error) {
	job.setDefaults()
	if len(catalog) == 0 {
		return nil, fmt.Errorf("nile: empty catalog")
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("nile: no candidate compute hosts")
	}
	for _, ds := range catalog {
		if err := validate(tp, ds, job); err != nil {
			return nil, err
		}
	}
	for _, h := range hosts {
		if tp.Host(h) == nil {
			return nil, fmt.Errorf("nile: unknown compute host %q", h)
		}
	}

	// cost of shard i on host h: compute overlapped with the stream from
	// the data site (free if local).
	cost := func(ds Dataset, host string) float64 {
		rate := tp.Host(host).Speed * est.Availability(host)
		if rate <= 0 {
			return math.Inf(1)
		}
		compute := float64(ds.Events) * job.FlopPerEvent / 1e6 / rate
		if host == ds.Site {
			return compute
		}
		bw := est.RouteBandwidth(ds.Site, host)
		if bw <= 0 {
			return math.Inf(1)
		}
		xfer := float64(ds.Events)*ds.RecordBytes/1e6/bw + est.RouteLatency(ds.Site, host)
		return math.Max(compute, xfer)
	}

	// LPT: biggest shards (by their best-case cost) placed first, each on
	// the host whose completion time grows the least.
	order := make([]int, len(catalog))
	for i := range order {
		order[i] = i
	}
	bestCase := make([]float64, len(catalog))
	for i, ds := range catalog {
		b := math.Inf(1)
		for _, h := range hosts {
			if c := cost(ds, h); c < b {
				b = c
			}
		}
		bestCase[i] = b
	}
	sort.SliceStable(order, func(a, b int) bool { return bestCase[order[a]] > bestCase[order[b]] })

	loadPerHost := make(map[string]float64, len(hosts))
	plans := make([]ShardPlan, len(catalog))
	for _, idx := range order {
		ds := catalog[idx]
		bestHost, bestDone, bestCost := "", math.Inf(1), math.Inf(1)
		for _, h := range hosts {
			c := cost(ds, h)
			done := loadPerHost[h] + c
			if done < bestDone || (done == bestDone && h < bestHost) {
				bestHost, bestDone, bestCost = h, done, c
			}
		}
		if math.IsInf(bestDone, 1) {
			return nil, fmt.Errorf("nile: shard %q unschedulable", ds.Name)
		}
		loadPerHost[bestHost] += bestCost
		plans[idx] = ShardPlan{
			Dataset:   ds.Name,
			DataSite:  ds.Site,
			Compute:   bestHost,
			Predicted: bestCost,
		}
	}
	makespan := 0.0
	for _, l := range loadPerHost {
		if l > makespan {
			makespan = l
		}
	}
	return &AnalysisSchedule{Plans: plans, PredictedMakespan: makespan}, nil
}

// ExecuteSchedule runs one analysis pass under the given assignment: all
// shards execute concurrently, local shards compute in place, remote
// shards stream their records in chunks overlapping compute, and every
// shard ships its (small) result to the user host. The run completes when
// the last shard's result lands.
func ExecuteSchedule(tp *grid.Topology, catalog []Dataset, job Job, sched *AnalysisSchedule) (*Result, error) {
	job.setDefaults()
	if len(sched.Plans) != len(catalog) {
		return nil, fmt.Errorf("nile: schedule covers %d shards, catalog has %d", len(sched.Plans), len(catalog))
	}
	byName := map[string]Dataset{}
	for _, ds := range catalog {
		byName[ds.Name] = ds
	}
	eng := tp.Engine
	res := &Result{Strategy: AtData}
	start := eng.Now()
	remaining := len(sched.Plans)
	finishOne := func() {
		remaining--
		if remaining == 0 {
			res.Time = eng.Now() - start
			eng.Halt()
		}
	}

	for _, plan := range sched.Plans {
		ds, ok := byName[plan.Dataset]
		if !ok {
			return nil, fmt.Errorf("nile: schedule references unknown shard %q", plan.Dataset)
		}
		host := tp.Host(plan.Compute)
		if host == nil {
			return nil, fmt.Errorf("nile: schedule references unknown host %q", plan.Compute)
		}
		computeMflop := float64(ds.Events) * job.FlopPerEvent / 1e6
		shipResult := func() {
			res.BytesMoved += job.ResultBytes
			tp.Send(plan.Compute, job.UserHost, job.ResultBytes/1e6, finishOne)
		}
		if plan.Compute == ds.Site {
			host.Submit(computeMflop, shipResult)
			continue
		}
		// Remote shard: stream chunks, overlap with compute.
		eventsMB := float64(ds.Events) * ds.RecordBytes / 1e6
		chunks := (ds.Events + job.ChunkEvents - 1) / job.ChunkEvents
		chunkMB := eventsMB / float64(chunks)
		chunkMflop := computeMflop / float64(chunks)
		res.BytesMoved += eventsMB * 1e6

		received, computed := 0, 0
		busy := false
		var consume func()
		consume = func() {
			if computed == chunks {
				shipResult()
				return
			}
			if busy || computed >= received {
				return
			}
			busy = true
			host.Submit(chunkMflop, func() {
				busy = false
				computed++
				consume()
			})
		}
		var pump func(k int)
		pump = func(k int) {
			if k >= chunks {
				return
			}
			tp.Send(ds.Site, plan.Compute, chunkMB, func() {
				received++
				consume()
				pump(k + 1)
			})
		}
		pump(0)
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if remaining > 0 {
		return nil, fmt.Errorf("nile: scheduled analysis stalled with %d shards left", remaining)
	}
	return res, nil
}
