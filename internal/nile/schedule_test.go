package nile

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

// schedTopology: two store hosts (one optionally crushed by load), one
// fast idle compute farm node, and the physicist's desk.
func schedTopology(eng *sim.Engine, store2Load load.Source) *grid.Topology {
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "store1", Speed: 40, MemoryMB: 512})
	tp.AddHost(grid.HostSpec{Name: "store2", Speed: 40, MemoryMB: 512, Load: store2Load})
	tp.AddHost(grid.HostSpec{Name: "farm", Speed: 120, MemoryMB: 1024})
	tp.AddHost(grid.HostSpec{Name: "desk", Speed: 25, MemoryMB: 256})
	l := tp.AddLink(grid.LinkSpec{Name: "lan", Latency: 0.001, Bandwidth: 12})
	for _, h := range []string{"store1", "store2", "farm", "desk"} {
		tp.Attach(h, l)
	}
	tp.Finalize()
	return tp
}

func schedCatalog(events int) []Dataset {
	return []Dataset{
		{Name: "s1", Site: "store1", Events: events, RecordBytes: 20480},
		{Name: "s2", Site: "store2", Events: events, RecordBytes: 20480},
	}
}

func TestPlanDistributedPrefersLocality(t *testing.T) {
	// Quiet stores, slow network relative to compute: shards stay home.
	eng := sim.NewEngine()
	tp := schedTopology(eng, nil)
	// Make the farm unattractive by excluding it: locality is then free.
	sched, err := PlanDistributed(tp, schedCatalog(20000), testJob(1), []string{"store1", "store2"}, oracle{tp})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Local() != 2 {
		t.Fatalf("local shards %d, want 2: %+v", sched.Local(), sched.Plans)
	}
	if sched.PredictedMakespan <= 0 {
		t.Fatalf("makespan %v", sched.PredictedMakespan)
	}
}

func TestPlanDistributedEvacuatesLoadedStore(t *testing.T) {
	// store2 is crushed: its shard must stream to the idle farm node even
	// though that moves 400 MB.
	eng := sim.NewEngine()
	tp := schedTopology(eng, load.Constant(20))
	sched, err := PlanDistributed(tp, schedCatalog(20000), testJob(1),
		[]string{"store1", "store2", "farm"}, oracle{tp})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sched.Plans {
		if p.Dataset == "s2" && p.Compute == "store2" {
			t.Fatalf("shard s2 left on the crushed store: %+v", sched.Plans)
		}
	}
}

func TestExecuteScheduleMatchesPlanShape(t *testing.T) {
	eng := sim.NewEngine()
	tp := schedTopology(eng, load.Constant(20))
	job := testJob(1)
	sched, err := PlanDistributed(tp, schedCatalog(20000), job,
		[]string{"store1", "store2", "farm"}, oracle{tp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSchedule(tp, schedCatalog(20000), job, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("measured %v", res.Time)
	}
	// The oracle-informed plan should be within 2x of its prediction.
	if ratio := res.Time / sched.PredictedMakespan; ratio > 2 || ratio < 0.5 {
		t.Fatalf("measured %v vs predicted %v", res.Time, sched.PredictedMakespan)
	}
}

func TestScheduledBeatsDataLocalUnderSkew(t *testing.T) {
	// With store2 crushed, the cost-based schedule must beat the naive
	// data-local execution.
	mk := func() *grid.Topology {
		return schedTopology(sim.NewEngine(), load.Constant(20))
	}
	job := testJob(1)

	tp1 := mk()
	sched, err := PlanDistributed(tp1, schedCatalog(20000), job,
		[]string{"store1", "store2", "farm"}, oracle{tp1})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := ExecuteSchedule(tp1, schedCatalog(20000), job, sched)
	if err != nil {
		t.Fatal(err)
	}

	tp2 := mk()
	local, err := ExecuteDistributed(tp2, schedCatalog(20000), job)
	if err != nil {
		t.Fatal(err)
	}
	if smart.Time >= local.Time {
		t.Fatalf("cost-based schedule %v not faster than data-local %v", smart.Time, local.Time)
	}
}

func TestPlanDistributedErrors(t *testing.T) {
	eng := sim.NewEngine()
	tp := schedTopology(eng, nil)
	if _, err := PlanDistributed(tp, nil, testJob(1), []string{"farm"}, oracle{tp}); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := PlanDistributed(tp, schedCatalog(10), testJob(1), nil, oracle{tp}); err == nil {
		t.Fatal("no hosts accepted")
	}
	if _, err := PlanDistributed(tp, schedCatalog(10), testJob(1), []string{"ghost"}, oracle{tp}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestExecuteScheduleValidation(t *testing.T) {
	eng := sim.NewEngine()
	tp := schedTopology(eng, nil)
	job := testJob(1)
	if _, err := ExecuteSchedule(tp, schedCatalog(10), job, &AnalysisSchedule{}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	bad := &AnalysisSchedule{Plans: []ShardPlan{
		{Dataset: "s1", DataSite: "store1", Compute: "ghost"},
		{Dataset: "s2", DataSite: "store2", Compute: "store2"},
	}}
	if _, err := ExecuteSchedule(tp, schedCatalog(10), job, bad); err == nil {
		t.Fatal("unknown compute host accepted")
	}
}
