package nile

import (
	"fmt"

	"apples/internal/grid"
	"apples/internal/hat"
)

// Dataset is one event collection resident at a data site.
type Dataset struct {
	Name        string
	Site        string  // host holding the records
	Events      int     // events of interest (after skim selection)
	RecordBytes float64 // bytes per event record (20 KB pass2, 8 KB raw)
}

// Job is one physicist's analysis request.
type Job struct {
	// UserHost is where the physicist works (and where skimmed data
	// lands).
	UserHost string
	// Passes is how many times the analysis runs over the data set
	// (histogram tweaks, cut scans, ...).
	Passes int
	// FlopPerEvent is the per-event analysis cost.
	FlopPerEvent float64
	// ResultBytes is the size of the aggregated result (histograms)
	// shipped back per pass.
	ResultBytes float64
	// ChunkEvents is the streaming granularity for transfer/compute
	// overlap (default 2000 events).
	ChunkEvents int
	// SkimSelectivity is the fraction of events the skim retains for
	// further local analysis (default 1: keep everything). Remote and
	// AtData passes must always scan the full set; post-skim local passes
	// touch only the selected subset — that asymmetry is what the Site
	// Manager's skim decision trades against the one-time copy.
	SkimSelectivity float64
}

func (j *Job) setDefaults() {
	if j.ChunkEvents == 0 {
		j.ChunkEvents = 2000
	}
	if j.ResultBytes == 0 {
		j.ResultBytes = 1 << 20
	}
	if j.SkimSelectivity == 0 {
		j.SkimSelectivity = 1
	}
}

// JobFromTemplate builds a Job from the CLEO/NILE HAT.
func JobFromTemplate(tpl *hat.Template, userHost string, passes int) (Job, error) {
	task, ok := tpl.Task("analyze")
	if !ok {
		return Job{}, fmt.Errorf("nile: template lacks analyze task")
	}
	return Job{
		UserHost:     userHost,
		Passes:       passes,
		FlopPerEvent: task.FlopPerUnit,
	}, nil
}

// Strategy is one way to execute the job.
type Strategy int

const (
	// Remote streams records from the data site on every pass.
	Remote Strategy = iota
	// Skim copies the data set to the user's host once, then runs local
	// passes.
	Skim
	// AtData runs the analysis at the data site and ships back results.
	AtData
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Remote:
		return "remote"
	case Skim:
		return "skim"
	case AtData:
		return "at-data"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Result reports an executed analysis.
type Result struct {
	Strategy   Strategy
	Time       float64 // wall-clock (virtual) seconds for all passes
	BytesMoved float64
}

// Execute runs the job against the dataset with the given strategy,
// driving the topology's engine to completion.
func Execute(tp *grid.Topology, ds Dataset, job Job, strategy Strategy) (*Result, error) {
	job.setDefaults()
	if err := validate(tp, ds, job); err != nil {
		return nil, err
	}
	eng := tp.Engine
	res := &Result{Strategy: strategy}
	start := eng.Now()
	finish := func() {
		res.Time = eng.Now() - start
		eng.Halt()
	}

	user := tp.Host(job.UserHost)
	store := tp.Host(ds.Site)
	eventsMB := float64(ds.Events) * ds.RecordBytes / 1e6
	computeMflop := float64(ds.Events) * job.FlopPerEvent / 1e6
	resultMB := job.ResultBytes / 1e6

	switch strategy {
	case Skim:
		// One-time skim transfer of the full set, then local passes over
		// the selected subset back to back.
		res.BytesMoved = eventsMB * 1e6
		localMflop := computeMflop * job.SkimSelectivity
		pass := 0
		var runPass func()
		runPass = func() {
			if pass >= job.Passes {
				finish()
				return
			}
			pass++
			user.Submit(localMflop, runPass)
		}
		tp.Send(ds.Site, job.UserHost, eventsMB, runPass)

	case AtData:
		// Compute at the store; ship the small result back each pass.
		res.BytesMoved = float64(job.Passes) * job.ResultBytes
		pass := 0
		var runPass func()
		runPass = func() {
			if pass >= job.Passes {
				finish()
				return
			}
			pass++
			store.Submit(computeMflop, func() {
				tp.Send(ds.Site, job.UserHost, resultMB, runPass)
			})
		}
		runPass()

	case Remote:
		// Stream chunks each pass, overlapping transfer with compute.
		res.BytesMoved = float64(job.Passes) * eventsMB * 1e6
		chunks := (ds.Events + job.ChunkEvents - 1) / job.ChunkEvents
		chunkMB := eventsMB / float64(chunks)
		chunkMflop := computeMflop / float64(chunks)
		pass := 0
		var runPass func()
		runPass = func() {
			if pass >= job.Passes {
				finish()
				return
			}
			pass++
			received, computed := 0, 0
			busy := false
			var pump func(k int)
			var consume func()
			consume = func() {
				if computed == chunks {
					runPass()
					return
				}
				if busy || computed >= received {
					return
				}
				busy = true
				user.Submit(chunkMflop, func() {
					busy = false
					computed++
					consume()
				})
			}
			pump = func(k int) {
				if k >= chunks {
					return
				}
				tp.Send(ds.Site, job.UserHost, chunkMB, func() {
					received++
					consume()
					pump(k + 1)
				})
			}
			pump(0)
		}
		runPass()

	default:
		return nil, fmt.Errorf("nile: unknown strategy %v", strategy)
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if res.Time == 0 && eng.Pending() == 0 && job.Passes > 0 {
		// Completed at t==start only possible for zero work; otherwise
		// the run stalled.
		if computeMflop > 0 || eventsMB > 0 {
			return nil, fmt.Errorf("nile: %v run stalled", strategy)
		}
	}
	return res, nil
}

func validate(tp *grid.Topology, ds Dataset, job Job) error {
	if tp.Host(ds.Site) == nil {
		return fmt.Errorf("nile: unknown data site %q", ds.Site)
	}
	if tp.Host(job.UserHost) == nil {
		return fmt.Errorf("nile: unknown user host %q", job.UserHost)
	}
	if ds.Events <= 0 || ds.RecordBytes <= 0 {
		return fmt.Errorf("nile: dataset %q has no data", ds.Name)
	}
	if job.Passes <= 0 {
		return fmt.Errorf("nile: job has no passes")
	}
	if job.FlopPerEvent < 0 {
		return fmt.Errorf("nile: negative per-event cost")
	}
	if job.SkimSelectivity < 0 || job.SkimSelectivity > 1 {
		return fmt.Errorf("nile: skim selectivity %v outside (0,1]", job.SkimSelectivity)
	}
	return nil
}
