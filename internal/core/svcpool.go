package core

import "sync/atomic"

// workerBudget is the SchedService's global candidate-evaluation
// parallelism budget. Standalone agents each own a worker pool sized by
// WithParallelism; under the service that ownership lifts out of the
// agents — N tenants' rounds draw fan-out width from one shared pool of
// tokens, so total evaluation parallelism is bounded service-wide
// instead of multiplying per tenant.
//
// The budget counts *extra* workers: every in-flight round always keeps
// its own runner goroutine (a grant never returns less than 1), and
// only fan-out beyond that consumes tokens. That keeps the service
// deadlock-free — a round can always proceed sequentially — and
// self-balancing: a lone round claims the whole budget and evaluates at
// full width, while 64 concurrent rounds each run near-sequentially and
// the parallelism lives across rounds instead of within them.
//
// Tokens are sharded across padded atomics so concurrent grant/release
// traffic from many runner goroutines does not serialize on one cache
// line; a grant drains its home shard first and steals the remainder
// from neighbors.
type workerBudget struct {
	shards []budgetShard
}

// budgetShard pads each token counter to its own cache line.
type budgetShard struct {
	avail atomic.Int64
	_     [56]byte
}

// newWorkerBudget distributes total extra-worker tokens across shards
// (capped at one shard per token; both arguments floor at 1).
func newWorkerBudget(total, shards int) *workerBudget {
	if total < 1 {
		total = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > total {
		shards = total
	}
	b := &workerBudget{shards: make([]budgetShard, shards)}
	base, extra := total/shards, total%shards
	for i := range b.shards {
		n := base
		if i < extra {
			n++
		}
		b.shards[i].avail.Store(int64(n))
	}
	return b
}

// grant claims up to want total workers for one round and returns how
// many were secured (always ≥ 1: the round's own goroutine is free).
// home spreads contention — callers pass a stable per-tenant shard
// index. Pair every grant with a release of the same value.
func (b *workerBudget) grant(home, want int) int {
	extra := want - 1
	got := 0
	ns := len(b.shards)
	for off := 0; off < ns && got < extra; off++ {
		sh := &b.shards[(home+off)%ns]
		for got < extra {
			cur := sh.avail.Load()
			if cur <= 0 {
				break
			}
			take := int64(extra - got)
			if take > cur {
				take = cur
			}
			if sh.avail.CompareAndSwap(cur, cur-take) {
				got += int(take)
				break
			}
		}
	}
	return 1 + got
}

// release returns a grant's extra tokens to the caller's home shard
// (tokens migrate between shards over time; the total is conserved).
func (b *workerBudget) release(home, granted int) {
	if granted <= 1 {
		return
	}
	b.shards[home%len(b.shards)].avail.Add(int64(granted - 1))
}

// available sums the outstanding tokens across shards (test hook).
func (b *workerBudget) available() int {
	total := int64(0)
	for i := range b.shards {
		total += b.shards[i].avail.Load()
	}
	return int(total)
}
