package core

import (
	"apples/internal/grid"
	"apples/internal/nws"
)

// conservativeInfo discounts NWS forecasts by a multiple of their own
// error estimate. Section 3.6 warns that "a schedule is only as good as
// the accuracy of its underlying predictions"; a risk-averse agent can
// hedge by planning against forecast-minus-k-sigma capability, so
// high-variance resources look worse than stable ones with the same mean.
type conservativeInfo struct {
	svc *nws.Service
	tp  *grid.Topology
	k   float64
}

// ConservativeInformation returns an information source that plans
// against (forecast - k*RMSE) for both CPU availability and link
// bandwidth. k = 0 degenerates to NWSInformation.
func ConservativeInformation(svc *nws.Service, tp *grid.Topology, k float64) Information {
	if k < 0 {
		k = 0
	}
	return &conservativeInfo{svc: svc, tp: tp, k: k}
}

func (c *conservativeInfo) Availability(host string) float64 {
	v, ok := c.svc.AvailabilityForecast(host)
	if !ok {
		return 1
	}
	if rmse, ok := c.svc.AvailabilityError(host); ok {
		v -= c.k * rmse
	}
	if v < 0.01 {
		v = 0.01
	}
	if v > 1 {
		v = 1
	}
	return v
}

func (c *conservativeInfo) RouteBandwidth(a, b string) float64 {
	if a == b {
		return 1e30
	}
	bw := 1e30
	for _, l := range c.tp.Route(a, b) {
		v, ok := c.svc.BandwidthForecast(l.Name)
		if !ok {
			v = l.Bandwidth
		}
		if rmse, ok := c.svc.BandwidthError(l.Name); ok {
			v -= c.k * rmse
		}
		if v < 1e-6 {
			v = 1e-6
		}
		if v < bw {
			bw = v
		}
	}
	return bw
}

func (c *conservativeInfo) RouteLatency(a, b string) float64 {
	return c.tp.RouteLatency(a, b)
}

func (c *conservativeInfo) Source() string { return "nws-conservative" }
