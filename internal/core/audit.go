package core

import (
	"apples/internal/grid"
	"apples/internal/obs/audit"
)

// WithAudit attaches a forecast-quality audit engine to the agent:
// every Run registers the winning schedule's predicted total with the
// engine before actuating and joins the measured execution time
// afterwards, labeled by tenant (WithAuditTenant), selector kind, and
// the winner's host class. nil leaves auditing off — the default,
// costing one pointer check per Run and nothing on Schedule/evaluate.
func WithAudit(a *audit.Engine) AgentOption {
	return func(c *coordConfig) { c.aud = a }
}

// WithAuditTenant sets the tenant label on this agent's audited
// decisions (default ""). The multi-tenant service labels each
// registered agent with its tenant id.
func WithAuditTenant(id string) AgentOption {
	return func(c *coordConfig) { c.audTenant = id }
}

// auditPrediction registers a decision's predicted total with the
// audit engine and returns the join key (0 with auditing off).
func (c *Coordinator) auditPrediction(predicted float64, hostClass string) uint64 {
	if c.aud == nil {
		return 0
	}
	key := c.aud.NextKey()
	c.aud.RecordPrediction(audit.Prediction{
		Key: key,
		Labels: audit.DecisionLabels{
			Tenant:    c.audTenant,
			Selector:  selectorLabel(string(c.selector.normalized().Kind)),
			HostClass: hostClass,
		},
		Predicted: predicted,
	})
	return key
}

// auditActual joins a measured execution time with its prediction.
func (c *Coordinator) auditActual(key uint64, measured float64) {
	if c.aud == nil {
		return
	}
	c.aud.RecordActual(key, measured)
}

// selectorLabel normalizes an empty selector kind to the same "custom"
// label the per-selector candidate counter uses.
func selectorLabel(kind string) string {
	if kind == "" {
		return "custom"
	}
	return kind
}

// hostClass reduces a winner's host list to one audit label: the
// architecture family every selected host shares, or "mixed" for a
// heterogeneous set ("unknown" when no host resolves).
func hostClass(tp *grid.Topology, hosts []string) string {
	class := ""
	for _, name := range hosts {
		h := tp.Host(name)
		if h == nil {
			continue
		}
		switch {
		case class == "":
			class = h.Arch
		case class != h.Arch:
			return "mixed"
		}
	}
	if class == "" {
		return "unknown"
	}
	return class
}
