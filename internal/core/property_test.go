package core

import (
	"errors"
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// The pruning-invariance property (pruning on/off picks the identical
// schedule) lives in determinism_test.go: TestPruningPreservesSelection.
// This file adds the remaining Coordinator properties: the winner's
// estimate must be reproducible through the standalone re-estimation
// path, and degenerate pools must fail with the documented sentinels.

// TestWinnerScoreMatchesReestimate closes the loop between the round's
// winning estimate and the standalone re-estimation path: pricing the
// chosen placement with EstimatePlacement under the same information must
// reproduce the predicted iteration time the round reported.
func TestWinnerScoreMatchesReestimate(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		tp, info := buildPool(t, 0, 0, seed)
		agent, err := NewAgent(tp, hat.Jacobi2D(600, 10), &userspec.Spec{}, info)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := agent.Schedule(600)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		est, err := agent.EstimatePlacement(600, sched.Placement)
		if err != nil {
			t.Fatalf("seed %d re-estimate: %v", seed, err)
		}
		if diff := math.Abs(est - sched.PredictedIterTime); diff > 1e-9*sched.PredictedIterTime {
			t.Fatalf("seed %d: re-estimated iter time %v, round predicted %v (diff %g)",
				seed, est, sched.PredictedIterTime, diff)
		}
	}
}

// TestScheduleSentinelErrors pins the documented failure modes: a pool
// the user specification empties must fail with ErrNoFeasibleHosts, and a
// pool whose only host cannot run the problem must fail with
// ErrNoFeasiblePlan — never a zero-value schedule.
func TestScheduleSentinelErrors(t *testing.T) {
	tp, info := buildPool(t, 0, 0, 11)
	tpl := hat.Jacobi2D(600, 10)

	empty, err := NewAgent(tp, tpl, &userspec.Spec{Accessible: []string{"no-such-host"}}, info)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := empty.Schedule(600)
	if !errors.Is(err, ErrNoFeasibleHosts) {
		t.Fatalf("empty pool: err = %v, want ErrNoFeasibleHosts", err)
	}
	if sched != nil {
		t.Fatalf("empty pool returned a schedule alongside the error: %v", sched)
	}

	// A pool whose single host delivers no cycles: every plan over it is
	// infeasible, so the round completes but selects nothing.
	husk := grid.NewTopology(sim.NewEngine())
	husk.AddHost(grid.HostSpec{Name: "husk", Arch: "relic", Speed: 0, MemoryMB: 64})
	husk.Finalize()
	solo, err := NewAgent(husk, tpl, &userspec.Spec{}, StaticInformation(husk))
	if err != nil {
		t.Fatal(err)
	}
	sched, err = solo.Schedule(600)
	if !errors.Is(err, ErrNoFeasiblePlan) {
		t.Fatalf("infeasible single-host pool: err = %v, want ErrNoFeasiblePlan", err)
	}
	if sched != nil {
		t.Fatalf("infeasible pool returned a schedule alongside the error: %v", sched)
	}
}
