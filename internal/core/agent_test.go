package core

import (
	"strings"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/load"
	"apples/internal/nws"
	"apples/internal/sim"
	"apples/internal/userspec"
)

func quietAgent(t *testing.T, opt grid.TestbedOptions, spec *userspec.Spec) (*Agent, *grid.Topology) {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, opt)
	if spec == nil {
		spec = &userspec.Spec{Decomposition: "strip"}
	}
	a, err := NewAgent(tp, hat.Jacobi2D(1000, 50), spec, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	return a, tp
}

func TestScheduleOnQuietTestbed(t *testing.T) {
	a, _ := quietAgent(t, grid.TestbedOptions{Seed: 1, Quiet: true}, nil)
	s, err := a.Schedule(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.PredictedIterTime <= 0 || s.PredictedTotal <= 0 {
		t.Fatalf("predictions %v / %v not positive", s.PredictedIterTime, s.PredictedTotal)
	}
	if s.CandidatesConsidered != 255 {
		t.Fatalf("considered %d sets, want 255 (all subsets of 8 hosts)", s.CandidatesConsidered)
	}
	if s.CandidatesPlanned == 0 {
		t.Fatal("no candidate produced a plan")
	}
	if !strings.Contains(s.String(), "oracle") {
		t.Fatalf("schedule string %q missing info source", s.String())
	}
}

func TestScheduleFavorsFastHosts(t *testing.T) {
	a, _ := quietAgent(t, grid.TestbedOptions{Seed: 1, Quiet: true}, nil)
	s, err := a.Schedule(1000)
	if err != nil {
		t.Fatal(err)
	}
	// On the quiet testbed the four 40-Mflop alphas dominate the 4-Mflop
	// sparc2; if the sparc2 appears at all its share must be small.
	alphaShare := 0.0
	for _, h := range []string{"alpha1", "alpha2", "alpha3", "alpha4"} {
		alphaShare += s.Placement.Fraction(h)
	}
	if alphaShare < 0.5 {
		t.Fatalf("alphas got %.2f of the domain, want majority", alphaShare)
	}
	if f := s.Placement.Fraction("sparc2"); f > 0.05 {
		t.Fatalf("sparc2 share %.3f, want < 0.05", f)
	}
}

func TestScheduleShiftsWorkOffLoadedHost(t *testing.T) {
	// Two identical hosts, one crushed by load: the oracle-informed agent
	// must shift work to the free one.
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "busy", Speed: 40, MemoryMB: 512, Load: load.Constant(4)})
	tp.AddHost(grid.HostSpec{Name: "free", Speed: 40, MemoryMB: 512})
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0.001, Bandwidth: 10, Dedicated: true})
	tp.Attach("busy", l)
	tp.Attach("free", l)
	tp.Finalize()

	a, err := NewAgent(tp, hat.Jacobi2D(500, 50), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Schedule(500)
	if err != nil {
		t.Fatal(err)
	}
	fb, ff := s.Placement.Fraction("busy"), s.Placement.Fraction("free")
	if ff < 3*fb {
		t.Fatalf("free=%.2f busy=%.2f: agent did not shift work off the loaded host", ff, fb)
	}
}

func TestScheduleRespectsExclusion(t *testing.T) {
	spec := &userspec.Spec{Excluded: []string{"alpha1", "alpha2", "alpha3", "alpha4"}}
	a, _ := quietAgent(t, grid.TestbedOptions{Seed: 1, Quiet: true}, spec)
	s, err := a.Schedule(800)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range s.Placement.Hosts() {
		if strings.HasPrefix(h, "alpha") {
			t.Fatalf("excluded host %s received work", h)
		}
	}
}

func TestScheduleRespectsMaxResourceSets(t *testing.T) {
	spec := &userspec.Spec{MaxResourceSets: 10}
	a, _ := quietAgent(t, grid.TestbedOptions{Seed: 1, Quiet: true}, spec)
	s, err := a.Schedule(800)
	if err != nil {
		t.Fatal(err)
	}
	if s.CandidatesConsidered != 10 {
		t.Fatalf("considered %d, want 10", s.CandidatesConsidered)
	}
}

func TestScheduleAvoidsMemorySpill(t *testing.T) {
	// SP-2 nodes are fastest but bounded; past their joint capacity the
	// agent must bring in other memory instead of spilling (Figure 6).
	a, _ := quietAgent(t, grid.TestbedOptions{Seed: 1, Quiet: true, WithSP2: true}, nil)

	// Small problem: the SP-2 pair carries the dominant share (on a fully
	// quiet testbed the agent legitimately adds the alphas for their extra
	// aggregate speed, so "dominant" rather than "exclusive").
	small, err := a.Schedule(2000)
	if err != nil {
		t.Fatal(err)
	}
	sp2Share := small.Placement.Fraction("sp2a") + small.Placement.Fraction("sp2b")
	if sp2Share < 0.5 {
		t.Fatalf("small problem SP-2 share %.2f, want majority", sp2Share)
	}
	for _, h := range small.Placement.Hosts() {
		if small.Placement.Fraction(h) > small.Placement.Fraction("sp2a") && !strings.HasPrefix(h, "sp2") {
			t.Fatalf("host %s outranks an SP-2 node on the quiet testbed", h)
		}
	}

	// Large problem: 4000^2 * 16 B = 256 MB > 220 MB of SP-2 memory.
	big, err := a.Schedule(4000)
	if err != nil {
		t.Fatal(err)
	}
	others := 0.0
	for _, h := range big.Placement.Hosts() {
		if !strings.HasPrefix(h, "sp2") {
			others += big.Placement.Fraction(h)
		}
	}
	if others <= 0 {
		t.Fatal("large problem stayed on SP-2 despite memory cap")
	}
	// And no strip may exceed its host memory by more than rounding.
	for _, asg := range big.Placement.Assignments {
		h := a.tp.Host(asg.Host)
		needMB := float64(asg.Points) * 16 / 1e6
		if needMB > h.MemoryMB*1.02 {
			t.Fatalf("%s assigned %.1f MB with %.1f MB real", asg.Host, needMB, h.MemoryMB)
		}
	}
}

func TestNWSInformedScheduleEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 7})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(600); err != nil { // warm the sensors
		t.Fatal(err)
	}
	a, err := NewAgent(tp, hat.Jacobi2D(1000, 30), &userspec.Spec{Decomposition: "strip"}, NWSInformation(svc, tp))
	if err != nil {
		t.Fatal(err)
	}
	s, measured, err := a.Run(1000, ActuatorFromJacobi(tp, jacobi.Config{Iterations: 30}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.InfoSource != "nws" {
		t.Fatalf("info source %q, want nws", s.InfoSource)
	}
	if measured <= 0 {
		t.Fatalf("measured time %v", measured)
	}
}

func TestAgentRejectsBadInputs(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	if _, err := NewAgent(tp, hat.React3D(100), &userspec.Spec{}, OracleInformation(tp)); err == nil {
		t.Fatal("task-parallel template accepted by Jacobi blueprint")
	}
	if _, err := NewAgent(tp, hat.Jacobi2D(100, 10), &userspec.Spec{Decomposition: "block-cyclic"}, OracleInformation(tp)); err == nil {
		t.Fatal("unsupported decomposition accepted")
	}
	a, err := NewAgent(tp, hat.Jacobi2D(100, 10), &userspec.Spec{Accessible: []string{"ghost"}}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Schedule(100); err == nil {
		t.Fatal("empty resource pool accepted")
	}
	if _, err := a.Schedule(0); err == nil {
		t.Fatal("zero problem size accepted")
	}
}

func TestSpeedupMetricPrefersParallel(t *testing.T) {
	spec := &userspec.Spec{Metric: userspec.MaxSpeedup}
	a, _ := quietAgent(t, grid.TestbedOptions{Seed: 1, Quiet: true}, spec)
	s, err := a.Schedule(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Placement.Hosts()) < 2 {
		t.Fatalf("speedup metric chose %v, want a parallel schedule", s.Placement.Hosts())
	}
}

func TestActuateViaJacobi(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 4, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(600, 20), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	act := ActuatorFromJacobi(tp, jacobi.Config{Iterations: 20})
	s, measured, err := a.Run(600, act)
	if err != nil {
		t.Fatal(err)
	}
	if measured <= 0 {
		t.Fatalf("measured time %v", measured)
	}
	// On a quiet testbed the model should predict within a factor ~2.
	ratio := measured / s.PredictedTotal
	if ratio > 2.5 || ratio < 0.4 {
		t.Fatalf("measured %v vs predicted %v: model error ratio %v", measured, s.PredictedTotal, ratio)
	}
}
