package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/obs"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// sessionSelectors is the sweep every session parity test runs: one of
// each selector family, all deterministic for a fixed spec.
var sessionSelectors = []struct {
	name string
	spec SelectorSpec
}{
	{"exhaustive", SelectorSpec{Kind: SelectorExhaustive}},
	{"greedy", SelectorSpec{Kind: SelectorGreedy}},
	{"beam", SelectorSpec{Kind: SelectorBeam, BeamWidth: 8}},
	{"lpga", SelectorSpec{Kind: SelectorLPGA, Seed: 1}},
}

// TestSessionColdParity is the session's base contract: the first
// Round() must be bit-identical — DeepEqual on the whole Schedule,
// which pins float bits, placement shape, and host order — to what
// Agent.Schedule produces at the same instant, across pools, selector
// families, and user metrics.
func TestSessionColdParity(t *testing.T) {
	pools := []struct {
		name          string
		clusters, per int
		seed          int64
	}{
		{"sdscpcl-8host", 0, 0, 3},
		{"sdscpcl-8host-b", 0, 0, 11},
		{"cluster-12host", 3, 4, 11},
	}
	metrics := []userspec.Metric{userspec.MinExecutionTime, userspec.MaxSpeedup, userspec.MinCost}
	const n = 600
	for _, p := range pools {
		tp, info := buildPool(t, p.clusters, p.per, p.seed)
		for _, sel := range sessionSelectors {
			for _, m := range metrics {
				name := p.name + "/" + sel.name + "/" + m.String()
				agent, err := NewAgent(tp, hat.Jacobi2D(n, 10), &userspec.Spec{Metric: m}, info,
					WithSelector(sel.spec), WithParallelism(1))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := agent.Schedule(n)
				if err != nil {
					t.Fatalf("%s schedule: %v", name, err)
				}
				sess, err := agent.NewReschedSession(n)
				if err != nil {
					t.Fatalf("%s session: %v", name, err)
				}
				got, st, err := sess.Round()
				if err != nil {
					t.Fatalf("%s round: %v", name, err)
				}
				if !st.Cold || st.Round != 1 {
					t.Fatalf("%s: first round stats not cold: %+v", name, st)
				}
				if st.Considered != want.CandidatesConsidered {
					t.Fatalf("%s: universe %d sets, agent considered %d", name, st.Considered, want.CandidatesConsidered)
				}
				if st.Rescored != st.Considered {
					t.Fatalf("%s: cold round rescored %d of %d", name, st.Rescored, st.Considered)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s: cold round diverged from Schedule\nagent:   %+v\nsession: %+v", name, want, got)
				}
			}
		}
	}
}

// TestSessionDeltaParity drives twin sessions through perturbation
// sweeps — no change, one host, three hosts, the whole pool — applied
// through a live availability overlay, and demands the delta-aware
// Round() stay bit-identical to FullRound() on its twin, while actually
// exploiting the delta (rescoring a strict subset of the universe on
// small perturbations). EstimatePlacement must agree with the agent's
// allocating estimator under the same refreshed inputs.
func TestSessionDeltaParity(t *testing.T) {
	tp, base := buildPool(t, 3, 4, 7)
	overlay := map[string]float64{}
	info := NewOverlayInformation(base, overlay)
	hosts := tp.Hosts()
	const n = 600

	deltas := []struct {
		name  string
		hosts int // pool hosts to perturb this round
	}{
		{"none", 0},
		{"one", 1},
		{"three", 3},
		{"one-b", 1},
		{"all", len(hosts)},
		{"none-b", 0},
	}

	for _, sel := range sessionSelectors {
		for k := range overlay {
			delete(overlay, k)
		}
		agent, err := NewAgent(tp, hat.Jacobi2D(n, 10), &userspec.Spec{}, info, WithSelector(sel.spec))
		if err != nil {
			t.Fatalf("%s: %v", sel.name, err)
		}
		sess, err := agent.NewReschedSession(n)
		if err != nil {
			t.Fatalf("%s session: %v", sel.name, err)
		}
		twin, err := agent.NewReschedSession(n)
		if err != nil {
			t.Fatalf("%s twin: %v", sel.name, err)
		}

		for round, d := range deltas {
			for i := 0; i < d.hosts; i++ {
				// Deterministic, round-varying perturbation.
				overlay[hosts[i].Name] = 0.15 + 0.1*float64((round+i)%7)
			}
			got, st, gerr := sess.Round()
			want, wst, werr := twin.FullRound()
			name := sel.name + "/" + d.name
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("%s: error divergence: %v vs %v", name, gerr, werr)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: delta round diverged from full recomputation\nfull:  %+v\ndelta: %+v", name, want, got)
			}
			if wst.Rescored != wst.Considered {
				t.Fatalf("%s: FullRound rescored %d of %d", name, wst.Rescored, wst.Considered)
			}
			if round == 0 {
				continue
			}
			// The delta path must actually be incremental.
			if d.hosts == 0 {
				if st.Rescored != 0 || !st.Carried || st.ChangedHosts != 0 {
					t.Fatalf("%s: quiescent round did work: %+v", name, st)
				}
			} else if d.hosts == 1 && st.Rescored >= st.Considered && st.Considered > 1 {
				t.Fatalf("%s: one-host delta rescored the whole universe: %+v", name, st)
			}

			// Placement pricing parity under the same refreshed inputs.
			if got != nil {
				se, serr := sess.EstimatePlacement(got.Placement)
				ae, aerr := agent.EstimatePlacement(n, got.Placement)
				if (serr == nil) != (aerr == nil) || se != ae {
					t.Fatalf("%s: EstimatePlacement diverged: session (%v, %v) vs agent (%v, %v)",
						name, se, serr, ae, aerr)
				}
			}
		}
	}
}

// TestSessionGridDeltaParity exercises the chunked-bitmask, lazy-link,
// and site-chain paths on a pool past the pair-array threshold: a
// 128-host dedicated grid under the greedy selector, perturbed through
// the overlay. Round() must match FullRound() bit for bit there too.
func TestSessionGridDeltaParity(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{Clusters: 8, PerCluster: 16, Seed: 7, Quiet: true})
	overlay := map[string]float64{}
	info := NewOverlayInformation(OracleInformation(tp), overlay)
	hosts := tp.Hosts()
	const n = 2000

	agent, err := NewAgent(tp, hat.Jacobi2D(n, 10), &userspec.Spec{}, info,
		WithSelector(SelectorSpec{Kind: SelectorGreedy}))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := agent.NewReschedSession(n)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := agent.NewReschedSession(n)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < round*3; i++ {
			overlay[hosts[(i*17)%len(hosts)].Name] = 0.2 + 0.1*float64((round+i)%5)
		}
		got, st, gerr := sess.Round()
		want, _, werr := twin.FullRound()
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("round %d: error divergence: %v vs %v", round, gerr, werr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d (changed %d): diverged from full recomputation\nfull:  %+v\ndelta: %+v",
				round, st.ChangedHosts, want, got)
		}
	}
}

// TestSessionSteadyStateAllocFree is the zero-allocation gate for the
// kHz loop: once warm, a Round() that observes no input change must not
// allocate at all — the condition that makes per-simulated-second
// rescheduling affordable. Run without tracer or metrics, as the
// steady-state loop would be.
func TestSessionSteadyStateAllocFree(t *testing.T) {
	tp, info := buildPool(t, 3, 4, 11)
	const n = 600
	agent, err := NewAgent(tp, hat.Jacobi2D(n, 10), &userspec.Spec{}, info)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := agent.NewReschedSession(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := sess.Round(); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := sess.Round(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state Round allocates %v objects/op, want 0", allocs)
	}
}

// TestGoldenTraceDeltaRounds pins the JSONL trace of a three-round
// session — cold, quiescent carry, one-host delta — against
// testdata/golden_delta_trace.jsonl (regenerate with `go test -run
// Golden -update`), then re-derives the delta bookkeeping from the
// trace alone.
func TestGoldenTraceDeltaRounds(t *testing.T) {
	tp, base := buildPool(t, 0, 0, 11)
	overlay := map[string]float64{}
	info := NewOverlayInformation(base, overlay)
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	spec := &userspec.Spec{Accessible: []string{"alpha1", "alpha2", "alpha3", "alpha4"}}
	agent, err := NewAgent(tp, hat.Jacobi2D(600, 10), spec, info, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := agent.NewReschedSession(600)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if round == 2 {
			overlay["alpha2"] = 0.4
		}
		if _, _, err := sess.Round(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_delta_trace.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from %s — if the schema change is intended, regenerate with -update\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}

	var events []obs.Event
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		events = append(events, e)
	}
	if len(events) != 3 {
		t.Fatalf("want 3 delta_round events, got %d", len(events))
	}
	for i, e := range events {
		if e.Type != obs.EvDeltaRound || e.Round != uint64(i+1) {
			t.Fatalf("event %d: want delta_round round %d, got %+v", i, i+1, e)
		}
		if e.Considered == 0 || len(e.Hosts) == 0 {
			t.Fatalf("event %d carries no decision: %+v", i, e)
		}
	}
	cold, quiet, delta := events[0], events[1], events[2]
	if cold.Rescored != cold.Considered || cold.Changed != 4 || cold.Carried {
		t.Fatalf("cold round bookkeeping wrong: %+v", cold)
	}
	if quiet.Rescored != 0 || quiet.Changed != 0 || !quiet.Carried {
		t.Fatalf("quiescent round bookkeeping wrong: %+v", quiet)
	}
	if delta.Changed != 1 || delta.Rescored == 0 || delta.Rescored >= delta.Considered {
		t.Fatalf("one-host delta bookkeeping wrong: %+v", delta)
	}
}
