package core

import "apples/internal/grid"

// InfoSnapshot is an immutable, point-in-time resolution of an
// Information source over a fixed host set. The agent takes one snapshot
// per scheduling round and evaluates every candidate resource set against
// it, which
//
//   - removes the repeated Availability/RouteBandwidth/RouteLatency
//     queries the select → plan → estimate loop otherwise issues for the
//     same values (an O(pool²) cost per candidate with forecast-backed
//     sources, since each route query walks links and consults a
//     forecaster bank), and
//   - makes parallel candidate evaluation safe: workers read only the
//     snapshot's frozen maps, never the underlying source, so an
//     Information implementation need not be thread-safe.
//
// Lookups for hosts outside the snapshot fall through to the underlying
// source (this only happens on sequential paths such as re-estimating a
// stale placement whose hosts have since been filtered out).
type InfoSnapshot struct {
	avail  map[string]float64
	bw     map[pairKey]float64
	lat    map[pairKey]float64
	source string
	base   Information
	stats  SnapshotStats
}

type pairKey struct{ a, b string }

// SnapshotStats reports what building a snapshot cost: how much was
// resolved and how many queries actually reached the underlying source.
// The decision trace's snapshot event carries these numbers, making the
// batched route path's query savings visible (Queries < 2·Pairs when
// pairs share links).
type SnapshotStats struct {
	// Hosts is the number of availability lookups frozen.
	Hosts int
	// Pairs is the number of ordered host pairs resolved (bandwidth and
	// latency each).
	Pairs int
	// SourceQueries counts calls issued to the underlying Information
	// source: one availability per host plus, on the batched path, one
	// bandwidth query per distinct link — or bandwidth+latency per pair
	// on the generic path.
	SourceQueries int
}

// Stats reports how the snapshot was built.
func (s *InfoSnapshot) Stats() SnapshotStats { return s.stats }

// SnapshotInformation resolves every lookup the scheduling round can make
// for the given hosts — one Availability per host, one RouteBandwidth and
// RouteLatency per ordered pair — and freezes them. The snapshot reflects
// the source at call time; take a fresh one per scheduling round.
func SnapshotInformation(info Information, hosts []string) *InfoSnapshot {
	s := &InfoSnapshot{
		avail:  make(map[string]float64, len(hosts)),
		bw:     make(map[pairKey]float64, len(hosts)*len(hosts)),
		lat:    make(map[pairKey]float64, len(hosts)*len(hosts)),
		source: info.Source(),
		base:   info,
	}
	for _, h := range hosts {
		s.avail[h] = info.Availability(h)
	}
	if rb, ok := info.(routeBatcher); ok {
		// Batched path: resolve each link's bandwidth once, then compose
		// the per-pair bottleneck mins and latency sums by walking the
		// precomputed routes. Route queries reduce per-link values in
		// route order with the same seed and comparison as the source's
		// own query, so the resulting snapshot is bit-identical to the
		// per-pair path below — just without re-consulting the forecaster
		// bank for every pair sharing a link.
		tp := rb.routeTopology()
		linkBW := make(map[*grid.Link]float64)
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				bw, lat := 1e30, 0.0
				for _, l := range tp.Route(a, b) {
					v, ok := linkBW[l]
					if !ok {
						v = rb.linkBandwidth(l)
						linkBW[l] = v
					}
					if v < bw {
						bw = v
					}
					lat += l.Latency
				}
				k := pairKey{a, b}
				s.bw[k] = bw
				s.lat[k] = lat
			}
		}
		s.stats = SnapshotStats{
			Hosts:         len(hosts),
			Pairs:         len(s.bw),
			SourceQueries: len(hosts) + len(linkBW),
		}
		return s
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			k := pairKey{a, b}
			s.bw[k] = info.RouteBandwidth(a, b)
			s.lat[k] = info.RouteLatency(a, b)
		}
	}
	s.stats = SnapshotStats{
		Hosts:         len(hosts),
		Pairs:         len(s.bw),
		SourceQueries: len(hosts) + 2*len(s.bw),
	}
	return s
}

// Availability implements Information from the frozen map.
func (s *InfoSnapshot) Availability(host string) float64 {
	if v, ok := s.avail[host]; ok {
		return v
	}
	return s.base.Availability(host)
}

// RouteBandwidth implements Information from the frozen map.
func (s *InfoSnapshot) RouteBandwidth(a, b string) float64 {
	if v, ok := s.bw[pairKey{a, b}]; ok {
		return v
	}
	return s.base.RouteBandwidth(a, b)
}

// RouteLatency implements Information from the frozen map.
func (s *InfoSnapshot) RouteLatency(a, b string) float64 {
	if v, ok := s.lat[pairKey{a, b}]; ok {
		return v
	}
	return s.base.RouteLatency(a, b)
}

// Source names the underlying source as of snapshot time.
func (s *InfoSnapshot) Source() string { return s.source }

// lazySnapshotThreshold is the pool size past which a scheduling round
// freezes per-link values instead of materializing every ordered pair:
// at p hosts the full snapshot stores 2·p·(p−1) route values, which at
// 2048 hosts is ~8.4M map entries per round — far more than any
// heuristic selector will ever read.
const lazySnapshotThreshold = 64

// infoView is what a scheduling round evaluates against: a frozen
// Information source that can report what building it cost.
type infoView interface {
	Information
	Stats() SnapshotStats
}

// roundSnapshot is the one snapshot constructor every scheduling path
// resolves through: Coordinator.EvaluateRound, WaitOrRun's union view,
// the ReschedSession cold path, and the SchedService's shared-snapshot
// cache. It extracts the pool's host names (deduplicated, in pool
// order), appends any extra names not already present (WaitOrRun's
// offered hosts), and freezes the view via snapshotInformation — so
// "what does a round see" has exactly one answer regardless of which
// layer asked.
func roundSnapshot(info Information, pool []*grid.Host, extra ...string) infoView {
	names := make([]string, 0, len(pool)+len(extra))
	seen := make(map[string]bool, len(pool)+len(extra))
	for _, h := range pool {
		if !seen[h.Name] {
			seen[h.Name] = true
			names = append(names, h.Name)
		}
	}
	for _, name := range extra {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return snapshotInformation(info, names)
}

// snapshotInformation resolves the information view for one scheduling
// round. Pools up to lazySnapshotThreshold hosts get the fully
// materialized InfoSnapshot; larger pools over a route-batching source
// get a linkSnapshot, which freezes one availability per host and one
// bandwidth per link and composes route values on demand — the same
// values bit for bit (both paths reduce per-link bandwidth in route
// order with the same seed and comparison), at O(hosts + links) source
// queries instead of O(hosts²).
func snapshotInformation(info Information, hosts []string) infoView {
	if len(hosts) > lazySnapshotThreshold {
		if rb, ok := info.(routeBatcher); ok {
			return newLinkSnapshot(info, rb, hosts)
		}
	}
	return SnapshotInformation(info, hosts)
}

// linkSnapshot is the large-pool information view: per-host availability
// and per-link bandwidth are frozen eagerly; per-pair route values are
// composed on demand by walking the topology's precomputed routes over
// the frozen link map. All maps are read-only after construction, so
// parallel evaluation workers share it exactly like an InfoSnapshot.
type linkSnapshot struct {
	tp     *grid.Topology
	avail  map[string]float64
	linkBW map[*grid.Link]float64
	source string
	base   Information
	stats  SnapshotStats
}

func newLinkSnapshot(info Information, rb routeBatcher, hosts []string) *linkSnapshot {
	s := &linkSnapshot{
		tp:     rb.routeTopology(),
		avail:  make(map[string]float64, len(hosts)),
		source: info.Source(),
		base:   info,
	}
	for _, h := range hosts {
		s.avail[h] = info.Availability(h)
	}
	links := s.tp.Links()
	s.linkBW = make(map[*grid.Link]float64, len(links))
	for _, l := range links {
		s.linkBW[l] = rb.linkBandwidth(l)
	}
	// Pairs stays 0: nothing pairwise is materialized up front.
	s.stats = SnapshotStats{Hosts: len(hosts), SourceQueries: len(hosts) + len(links)}
	return s
}

// Stats reports how the snapshot was built (Pairs is 0: route values are
// composed lazily).
func (s *linkSnapshot) Stats() SnapshotStats { return s.stats }

// Availability implements Information from the frozen map.
func (s *linkSnapshot) Availability(host string) float64 {
	if v, ok := s.avail[host]; ok {
		return v
	}
	return s.base.Availability(host)
}

// RouteBandwidth implements Information: the bottleneck min over the
// route's frozen link bandwidths, seeded at 1e30 like every source.
func (s *linkSnapshot) RouteBandwidth(a, b string) float64 {
	if a == b {
		return s.base.RouteBandwidth(a, b)
	}
	bw := 1e30
	for _, l := range s.tp.Route(a, b) {
		if v, ok := s.linkBW[l]; ok && v < bw {
			bw = v
		}
	}
	return bw
}

// RouteLatency implements Information: latencies are static link
// properties for every built-in source, so the sum needs no freezing.
func (s *linkSnapshot) RouteLatency(a, b string) float64 {
	if a == b {
		return 0
	}
	lat := 0.0
	for _, l := range s.tp.Route(a, b) {
		lat += l.Latency
	}
	return lat
}

// Source names the underlying source as of snapshot time.
func (s *linkSnapshot) Source() string { return s.source }
