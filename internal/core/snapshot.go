package core

import "apples/internal/grid"

// InfoSnapshot is an immutable, point-in-time resolution of an
// Information source over a fixed host set. The agent takes one snapshot
// per scheduling round and evaluates every candidate resource set against
// it, which
//
//   - removes the repeated Availability/RouteBandwidth/RouteLatency
//     queries the select → plan → estimate loop otherwise issues for the
//     same values (an O(pool²) cost per candidate with forecast-backed
//     sources, since each route query walks links and consults a
//     forecaster bank), and
//   - makes parallel candidate evaluation safe: workers read only the
//     snapshot's frozen maps, never the underlying source, so an
//     Information implementation need not be thread-safe.
//
// Lookups for hosts outside the snapshot fall through to the underlying
// source (this only happens on sequential paths such as re-estimating a
// stale placement whose hosts have since been filtered out).
type InfoSnapshot struct {
	avail  map[string]float64
	bw     map[pairKey]float64
	lat    map[pairKey]float64
	source string
	base   Information
	stats  SnapshotStats
}

type pairKey struct{ a, b string }

// SnapshotStats reports what building a snapshot cost: how much was
// resolved and how many queries actually reached the underlying source.
// The decision trace's snapshot event carries these numbers, making the
// batched route path's query savings visible (Queries < 2·Pairs when
// pairs share links).
type SnapshotStats struct {
	// Hosts is the number of availability lookups frozen.
	Hosts int
	// Pairs is the number of ordered host pairs resolved (bandwidth and
	// latency each).
	Pairs int
	// SourceQueries counts calls issued to the underlying Information
	// source: one availability per host plus, on the batched path, one
	// bandwidth query per distinct link — or bandwidth+latency per pair
	// on the generic path.
	SourceQueries int
}

// Stats reports how the snapshot was built.
func (s *InfoSnapshot) Stats() SnapshotStats { return s.stats }

// SnapshotInformation resolves every lookup the scheduling round can make
// for the given hosts — one Availability per host, one RouteBandwidth and
// RouteLatency per ordered pair — and freezes them. The snapshot reflects
// the source at call time; take a fresh one per scheduling round.
func SnapshotInformation(info Information, hosts []string) *InfoSnapshot {
	s := &InfoSnapshot{
		avail:  make(map[string]float64, len(hosts)),
		bw:     make(map[pairKey]float64, len(hosts)*len(hosts)),
		lat:    make(map[pairKey]float64, len(hosts)*len(hosts)),
		source: info.Source(),
		base:   info,
	}
	for _, h := range hosts {
		s.avail[h] = info.Availability(h)
	}
	if rb, ok := info.(routeBatcher); ok {
		// Batched path: resolve each link's bandwidth once, then compose
		// the per-pair bottleneck mins and latency sums by walking the
		// precomputed routes. Route queries reduce per-link values in
		// route order with the same seed and comparison as the source's
		// own query, so the resulting snapshot is bit-identical to the
		// per-pair path below — just without re-consulting the forecaster
		// bank for every pair sharing a link.
		tp := rb.routeTopology()
		linkBW := make(map[*grid.Link]float64)
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				bw, lat := 1e30, 0.0
				for _, l := range tp.Route(a, b) {
					v, ok := linkBW[l]
					if !ok {
						v = rb.linkBandwidth(l)
						linkBW[l] = v
					}
					if v < bw {
						bw = v
					}
					lat += l.Latency
				}
				k := pairKey{a, b}
				s.bw[k] = bw
				s.lat[k] = lat
			}
		}
		s.stats = SnapshotStats{
			Hosts:         len(hosts),
			Pairs:         len(s.bw),
			SourceQueries: len(hosts) + len(linkBW),
		}
		return s
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			k := pairKey{a, b}
			s.bw[k] = info.RouteBandwidth(a, b)
			s.lat[k] = info.RouteLatency(a, b)
		}
	}
	s.stats = SnapshotStats{
		Hosts:         len(hosts),
		Pairs:         len(s.bw),
		SourceQueries: len(hosts) + 2*len(s.bw),
	}
	return s
}

// Availability implements Information from the frozen map.
func (s *InfoSnapshot) Availability(host string) float64 {
	if v, ok := s.avail[host]; ok {
		return v
	}
	return s.base.Availability(host)
}

// RouteBandwidth implements Information from the frozen map.
func (s *InfoSnapshot) RouteBandwidth(a, b string) float64 {
	if v, ok := s.bw[pairKey{a, b}]; ok {
		return v
	}
	return s.base.RouteBandwidth(a, b)
}

// RouteLatency implements Information from the frozen map.
func (s *InfoSnapshot) RouteLatency(a, b string) float64 {
	if v, ok := s.lat[pairKey{a, b}]; ok {
		return v
	}
	return s.base.RouteLatency(a, b)
}

// Source names the underlying source as of snapshot time.
func (s *InfoSnapshot) Source() string { return s.source }
