package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// evalChunk is how many candidate indices a worker claims per grab. Plan +
// estimate for one set costs microseconds, so claiming one index at a time
// would spend a meaningful fraction of the round on the shared counter;
// chunks amortize it while still load-balancing across uneven set sizes.
const evalChunk = 16

// runIndexed fans f out over indices [0, n) on up to `workers` goroutines.
// Each index is processed exactly once; f must be safe to call
// concurrently for distinct indices. workers <= 1 runs inline with no
// goroutines — the sequential path is literally the same loop.
func runIndexed(n, workers int, f func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(evalChunk)) - evalChunk
				if start >= n {
					return
				}
				end := min(start+evalChunk, n)
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// bestScore is the shared best-so-far objective value used for pruning:
// workers publish every feasible candidate's score and consult the
// incumbent before paying for a plan. Stored as float bits in an atomic
// for a lock-free CAS min.
type bestScore struct{ bits atomic.Uint64 }

func newBestScore() *bestScore {
	b := &bestScore{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *bestScore) load() float64 { return math.Float64frombits(b.bits.Load()) }

func (b *bestScore) update(s float64) {
	for {
		old := b.bits.Load()
		if s >= math.Float64frombits(old) {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}
