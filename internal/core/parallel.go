package core

import (
	"iter"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"apples/internal/grid"
)

// evalChunk is how many candidate indices a worker claims per grab. Plan +
// estimate for one set costs microseconds, so claiming one index at a time
// would spend a meaningful fraction of the round on the shared counter;
// chunks amortize it while still load-balancing across uneven set sizes.
const evalChunk = 16

// runIndexed fans f out over indices [0, n) on up to `workers` goroutines.
// Each index is processed exactly once; f must be safe to call
// concurrently for distinct indices. workers <= 1 runs inline with no
// goroutines — the sequential path is literally the same loop.
func runIndexed(n, workers int, f func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(evalChunk)) - evalChunk
				if start >= n {
					return
				}
				end := min(start+evalChunk, n)
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// runStreamed consumes candidate sets from a selector sequence as they
// are produced, evaluating each with eval, and returns the feasible
// candidates in enumeration order plus the number of sets consumed. The
// full set list is never materialized: with workers <= 1 each set is
// evaluated inline between yields; otherwise the consuming goroutine
// feeds a bounded channel and up to `workers` goroutines evaluate
// concurrently, collecting (index, candidate) pairs that are merged and
// re-sorted by enumeration index at the end — so the result, and
// therefore the (score, index) reduce downstream, is bit-identical to
// the sequential path regardless of interleaving.
func runStreamed(seq iter.Seq[[]*grid.Host], workers int, eval func(int, []*grid.Host) (Candidate, bool)) ([]Candidate, int) {
	considered := 0
	if workers == 1 {
		var cands []Candidate
		for set := range seq {
			i := considered
			considered++
			if cand, ok := eval(i, set); ok {
				cands = append(cands, cand)
			}
		}
		return cands, considered
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		i   int
		set []*grid.Host
	}
	type indexed struct {
		i    int
		cand Candidate
	}
	jobs := make(chan job, workers*evalChunk)
	locals := make(chan []indexed, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []indexed
			for j := range jobs {
				if cand, ok := eval(j.i, j.set); ok {
					out = append(out, indexed{j.i, cand})
				}
			}
			locals <- out
		}()
	}
	for set := range seq {
		jobs <- job{considered, set}
		considered++
	}
	close(jobs)
	wg.Wait()
	close(locals)
	var all []indexed
	for out := range locals {
		all = append(all, out...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].i < all[b].i })
	var cands []Candidate
	if len(all) > 0 {
		cands = make([]Candidate, 0, len(all))
		for _, r := range all {
			cands = append(cands, r.cand)
		}
	}
	return cands, considered
}

// bestScore is the shared best-so-far objective value used for pruning:
// workers publish every feasible candidate's score and consult the
// incumbent before paying for a plan. Stored as float bits in an atomic
// for a lock-free CAS min.
type bestScore struct{ bits atomic.Uint64 }

func newBestScore() *bestScore {
	b := &bestScore{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *bestScore) load() float64 { return math.Float64frombits(b.bits.Load()) }

func (b *bestScore) update(s float64) {
	for {
		old := b.bits.Load()
		if s >= math.Float64frombits(old) {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}
