package core

import (
	"fmt"
	"math"
	"sort"

	"apples/internal/partition"
)

// sessionScratch is the ReschedSession's reusable working memory: every
// buffer the per-candidate solve touches, sized once at construction so
// the steady-state path never allocates. Buffer ownership rule: scratch
// belongs to the session and is overwritten by every chainFor/solveChain
// call; nothing the session returns to callers aliases it (materialized
// schedules copy what they need).
type sessionScratch struct {
	eff      []float64 // deliverable speed per pool index (raw availability)
	effOrder []int     // pool indices by eff desc, name asc

	touched     []uint64 // hosts whose inputs changed this round
	linkTouched []uint64 // hosts reached through changed links

	members []int // candidate members in eff-seed order
	chain   []int // strip-chain order (pool indices)
	rem     []int // greedy nearest-neighbor worklist

	// Per chain position, the planner/balancer columns.
	secPP      []float64
	commSec    []float64
	maxPts     []float64
	relaxedMax []float64
	area       []float64
	state      []int
	rows       []int

	// Largest-remainder rounding worklists.
	lrIdx []int
	lrRem []float64

	// Site-aware chain (large heuristic pools): first-appearance rank per
	// site id, invalidated by epoch instead of clearing.
	siteFirst []int
	siteEpoch []int
	epoch     int

	effSort  effSorter
	fracSort fracSorter
	siteSort siteSorter
}

func (scr *sessionScratch) init(np, words int) {
	scr.eff = make([]float64, np)
	scr.effOrder = make([]int, np)
	scr.touched = make([]uint64, words)
	scr.linkTouched = make([]uint64, words)
	scr.members = make([]int, np)
	scr.chain = make([]int, np)
	scr.rem = make([]int, np)
	scr.secPP = make([]float64, np)
	scr.commSec = make([]float64, np)
	scr.maxPts = make([]float64, np)
	scr.relaxedMax = make([]float64, np)
	scr.area = make([]float64, np)
	scr.state = make([]int, np)
	scr.rows = make([]int, np)
	scr.lrIdx = make([]int, np)
	scr.lrRem = make([]float64, np)
}

// effSorter orders pool indices by deliverable speed descending, name
// ascending — the chain seed order of orderChain and selModel. It is a
// pre-stored sort.Interface value so the hot path avoids the closure
// allocation of sort.Slice; the comparator is a total order, so any
// correct sort yields the same permutation the closures would.
type effSorter struct {
	idx   []int
	eff   []float64
	names []string
}

func (s *effSorter) Len() int      { return len(s.idx) }
func (s *effSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *effSorter) Less(i, j int) bool {
	a, b := s.idx[i], s.idx[j]
	if s.eff[a] != s.eff[b] {
		return s.eff[a] > s.eff[b]
	}
	return s.names[a] < s.names[b]
}

// fracSorter orders largest-remainder fractions descending, index
// ascending — partition.largestRemainder's total order.
type fracSorter struct {
	idx []int
	rem []float64
}

func (s *fracSorter) Len() int { return len(s.idx) }
func (s *fracSorter) Swap(i, j int) {
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
	s.rem[i], s.rem[j] = s.rem[j], s.rem[i]
}
func (s *fracSorter) Less(i, j int) bool {
	if s.rem[i] != s.rem[j] {
		return s.rem[i] > s.rem[j]
	}
	return s.idx[i] < s.idx[j]
}

// siteSorter stably orders members by their site's first appearance in
// the eff ranking — selModel.chain's large-pool layout. Used with
// sort.Stable only: the comparator is not total, and stability is what
// pins the permutation to sort.SliceStable's.
type siteSorter struct {
	idx    []int
	siteID []int
	first  []int
}

func (s *siteSorter) Len() int      { return len(s.idx) }
func (s *siteSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *siteSorter) Less(i, j int) bool {
	return s.first[s.siteID[s.idx[i]]] < s.first[s.siteID[s.idx[j]]]
}

// routeBW composes pair (i,j)'s bandwidth: the frozen pair array when
// present, otherwise the bottleneck min over frozen link bandwidths in
// route order (linkSnapshot's composition, bit for bit).
func (s *ReschedSession) routeBW(i, j int) float64 {
	if s.pairArrays {
		return s.pairBW[i*len(s.pool)+j]
	}
	bw := 1e30
	for _, l := range s.rtp.Route(s.names[i], s.names[j]) {
		if li, ok := s.linkIdx[l]; ok && s.linkBW[li] < bw {
			bw = s.linkBW[li]
		}
	}
	return bw
}

// routeLat composes pair (i,j)'s latency: frozen pair array or the sum
// of static link latencies in route order.
func (s *ReschedSession) routeLat(i, j int) float64 {
	if s.pairArrays {
		return s.pairLat[i*len(s.pool)+j]
	}
	lat := 0.0
	for _, l := range s.rtp.Route(s.names[i], s.names[j]) {
		lat += l.Latency
	}
	return lat
}

// costAt is the chain transfer cost between pool indices: latency plus
// seconds per nominal MB on the (floored) route bandwidth — the value
// orderChain and selModel.cost compute.
func (s *ReschedSession) costAt(i, j int) float64 {
	if s.pairArrays {
		return s.cost[i*len(s.pool)+j]
	}
	bw := s.routeBW(i, j)
	if bw <= 0 {
		bw = 1e-6
	}
	return s.routeLat(i, j) + 1.0/bw
}

// chainFor lays candidate mask out as a strip chain into scr.chain and
// returns its length: members filtered from the eff order, then greedy
// nearest-neighbor by transfer cost (orderChain / exhaustive-selector
// layout) or, for large heuristic pools, the site-aware stable order
// (selModel.chain layout).
func (s *ReschedSession) chainFor(mask []uint64) int {
	scr := &s.scr
	k := 0
	for _, idx := range scr.effOrder {
		if maskTest(mask, idx) {
			scr.members[k] = idx
			k++
		}
	}
	if k == 0 {
		return 0
	}
	if k == 1 {
		scr.chain[0] = scr.members[0]
		return 1
	}
	if s.siteChain {
		scr.epoch++
		rank := 0
		for i := 0; i < k; i++ {
			sid := s.siteID[scr.members[i]]
			if scr.siteEpoch[sid] != scr.epoch {
				scr.siteEpoch[sid] = scr.epoch
				scr.siteFirst[sid] = rank
				rank++
			}
		}
		copy(scr.chain[:k], scr.members[:k])
		scr.siteSort.idx = scr.chain[:k]
		sort.Stable(&scr.siteSort)
		return k
	}
	cur := scr.members[0]
	scr.chain[0] = cur
	rem := scr.rem[:k-1]
	copy(rem, scr.members[1:k])
	pos := 1
	for len(rem) > 0 {
		bestI, bestCost := 0, math.Inf(1)
		for i, idx := range rem {
			if c := s.costAt(cur, idx); c < bestCost || (c == bestCost && s.names[idx] < s.names[rem[bestI]]) {
				bestI, bestCost = i, c
			}
		}
		cur = rem[bestI]
		scr.chain[pos] = cur
		pos++
		rem = append(rem[:bestI], rem[bestI+1:]...)
	}
	return k
}

// solveChain runs the fused Planner+Estimator over scr.chain[:k]: the
// strip cost model, the time-balance solve with drop/cap iteration and
// capacity relaxation, largest-remainder rounding, and the estimator's
// spill-priced iteration time. It mirrors planner.costsFor,
// partition.TimeBalanced, and estimator.iterTime operation for
// operation (same association order, same comparisons, same tie-breaks)
// so results are bit-identical to the allocating path; any condition
// those return an error for reports ok=false here. Results land in
// scratch: scr.rows holds the row counts materialize reads.
func (s *ReschedSession) solveChain(k int) (iterT float64, ok bool) {
	scr := &s.scr
	n := s.n
	edge := float64(n) * s.borderBytes / 1e6
	for i := 0; i < k; i++ {
		h := scr.chain[i]
		avail := floorAvailability(s.avail[h])
		speed := s.speed[h] * avail * s.factor[h]
		if speed <= 0 {
			return 0, false
		}
		scr.secPP[i] = s.flopPerUnit / 1e6 / speed
		comm := 0.0
		if i > 0 {
			p := scr.chain[i-1]
			bw := s.routeBW(h, p)
			if bw <= 0 {
				bw = 1e-6
			}
			comm += 2 * (s.routeLat(h, p) + edge/bw)
		}
		if i < k-1 {
			nx := scr.chain[i+1]
			bw := s.routeBW(h, nx)
			if bw <= 0 {
				bw = 1e-6
			}
			comm += 2 * (s.routeLat(h, nx) + edge/bw)
		}
		scr.commSec[i] = comm
		scr.maxPts[i] = s.capPts[h]
	}

	// partition.TimeBalanced, in place.
	for i := 0; i < k; i++ {
		if scr.secPP[i] <= 0 {
			return 0, false
		}
		if scr.commSec[i] < 0 {
			return 0, false
		}
	}
	total := float64(n) * float64(n)
	capTotal, unbounded := 0.0, false
	for i := 0; i < k; i++ {
		if scr.maxPts[i] <= 0 {
			unbounded = true
			break
		}
		capTotal += scr.maxPts[i]
	}
	copy(scr.relaxedMax[:k], scr.maxPts[:k])
	if !unbounded && capTotal < total {
		scale := total / capTotal
		for i := 0; i < k; i++ {
			scr.relaxedMax[i] *= scale * 1.0001 // headroom for rounding
		}
	}
	for i := 0; i < k; i++ {
		scr.area[i] = 0
		scr.state[i] = 0 // 0 active, 1 dropped, 2 capped
	}
	remaining := total
	var T float64
	converged := false
	for iter := 0; iter < 4*k+4; iter++ {
		sumInvP, sumCoverP := 0.0, 0.0
		active := 0
		for i := 0; i < k; i++ {
			if scr.state[i] != 0 {
				continue
			}
			active++
			sumInvP += 1 / scr.secPP[i]
			sumCoverP += scr.commSec[i] / scr.secPP[i]
		}
		if active == 0 {
			break
		}
		T = (remaining + sumCoverP) / sumInvP
		worstNeg, worstNegIdx := 0.0, -1
		worstOver, worstOverIdx := 0.0, -1
		for i := 0; i < k; i++ {
			if scr.state[i] != 0 {
				continue
			}
			a := (T - scr.commSec[i]) / scr.secPP[i]
			scr.area[i] = a
			if a < 0 && a < worstNeg {
				worstNeg, worstNegIdx = a, i
			}
			if scr.relaxedMax[i] > 0 && a > scr.relaxedMax[i] {
				if over := a - scr.relaxedMax[i]; over > worstOver {
					worstOver, worstOverIdx = over, i
				}
			}
		}
		if worstNegIdx >= 0 {
			scr.state[worstNegIdx] = 1
			scr.area[worstNegIdx] = 0
			continue
		}
		if worstOverIdx >= 0 {
			scr.state[worstOverIdx] = 2
			scr.area[worstOverIdx] = scr.relaxedMax[worstOverIdx]
			remaining -= scr.relaxedMax[worstOverIdx]
			continue
		}
		converged = true
		break
	}
	if !converged {
		return 0, false
	}
	s.roundRows(k, n)
	sumRows, bands := 0, 0
	for i := 0; i < k; i++ {
		sumRows += scr.rows[i]
		if scr.rows[i] > 0 {
			bands++
		}
	}
	if sumRows != n {
		return 0, false // internal rounding error
	}
	if bands == 0 {
		return 0, false // every host dropped
	}

	// estimator.iterTime over the bands in chain (= placement) order.
	worst := 0.0
	for i := 0; i < k; i++ {
		if scr.rows[i] == 0 {
			continue
		}
		pts := scr.rows[i] * n
		mult := 1.0
		if s.bytesPerUnit > 0 {
			memMB := s.memMB[scr.chain[i]]
			needMB := float64(pts) * s.bytesPerUnit / 1e6
			if needMB > memMB {
				spill := (needMB - memMB) / needMB
				mult = 1 + spill*(s.spillFactor-1)
			}
		}
		t := float64(pts)*scr.secPP[i]*mult + scr.commSec[i]
		if t > worst {
			worst = t
		}
	}
	return worst, true
}

// roundRows applies partition.largestRemainder to scr.area[:k] with
// total rows, writing scr.rows[:k] — same floor/remainder/tie-break and
// degenerate-dump sequence, allocation-free.
func (s *ReschedSession) roundRows(k, total int) {
	scr := &s.scr
	for i := 0; i < k; i++ {
		scr.rows[i] = 0
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		if scr.area[i] > 0 {
			sum += scr.area[i]
		}
	}
	if sum == 0 || total <= 0 {
		return
	}
	assigned := 0
	nf := 0
	for i := 0; i < k; i++ {
		w := scr.area[i]
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / sum
		fl := math.Floor(exact)
		scr.rows[i] = int(fl)
		assigned += int(fl)
		scr.lrIdx[nf] = i
		scr.lrRem[nf] = exact - fl
		nf++
	}
	scr.fracSort.idx = scr.lrIdx[:nf]
	scr.fracSort.rem = scr.lrRem[:nf]
	sort.Sort(&scr.fracSort)
	for f := 0; assigned < total && f < nf; f++ {
		scr.rows[scr.lrIdx[f]]++
		assigned++
	}
	// Degenerate rounding shortfall (all remainders zero): dump on the
	// largest weight.
	for assigned < total {
		best := 0
		for i := 0; i < k; i++ {
			if scr.area[i] > scr.area[best] {
				best = i
			}
		}
		scr.rows[best]++
		assigned++
	}
}

// sortHostsByShare is pickBest's reporting order: hosts with the larger
// placement fraction first, ties keeping chain order.
func sortHostsByShare(hosts []string, share map[string]float64) {
	sort.SliceStable(hosts, func(i, j int) bool { return share[hosts[i]] > share[hosts[j]] })
}

// EstimatePlacement prices an existing placement under the inputs of
// the session's most recent Round refresh — the allocation-free twin of
// Agent.EstimatePlacement, sharing one refresh per tick instead of
// building a fresh snapshot per call. Placements touching hosts outside
// the frozen pool (or predating the first Round) delegate to the agent.
func (s *ReschedSession) EstimatePlacement(p *partition.Placement) (float64, error) {
	if s.rounds == 0 {
		return s.a.EstimatePlacement(s.n, p)
	}
	scr := &s.scr
	k := 0
	for _, asg := range p.Assignments {
		if asg.Points == 0 {
			continue
		}
		if s.a.tp.Host(asg.Host) == nil {
			continue
		}
		idx, ok := s.poolIdx[asg.Host]
		if !ok || k >= len(scr.chain) {
			return s.a.EstimatePlacement(s.n, p)
		}
		scr.chain[k] = idx
		k++
	}
	// planner.costsFor over the worked hosts in assignment order.
	edge := float64(s.n) * s.borderBytes / 1e6
	for i := 0; i < k; i++ {
		h := scr.chain[i]
		avail := floorAvailability(s.avail[h])
		speed := s.speed[h] * avail * s.factor[h]
		if speed <= 0 {
			return 0, fmt.Errorf("core: host %s has no deliverable speed", s.names[h])
		}
		scr.secPP[i] = s.flopPerUnit / 1e6 / speed
		comm := 0.0
		if i > 0 {
			pv := scr.chain[i-1]
			bw := s.routeBW(h, pv)
			if bw <= 0 {
				bw = 1e-6
			}
			comm += 2 * (s.routeLat(h, pv) + edge/bw)
		}
		if i < k-1 {
			nx := scr.chain[i+1]
			bw := s.routeBW(h, nx)
			if bw <= 0 {
				bw = 1e-6
			}
			comm += 2 * (s.routeLat(h, nx) + edge/bw)
		}
		scr.commSec[i] = comm
	}
	// estimator.iterTime: match each worked assignment to its cost column
	// by name, +Inf when a host has no column (unknown machine).
	worst := 0.0
	for _, asg := range p.Assignments {
		if asg.Points == 0 {
			continue
		}
		pos := -1
		for i := 0; i < k; i++ {
			if s.names[scr.chain[i]] == asg.Host {
				pos = i
				break
			}
		}
		if pos < 0 {
			return math.Inf(1), nil
		}
		mult := 1.0
		if s.bytesPerUnit > 0 {
			memMB := s.memMB[scr.chain[pos]]
			needMB := float64(asg.Points) * s.bytesPerUnit / 1e6
			if needMB > memMB {
				spill := (needMB - memMB) / needMB
				mult = 1 + spill*(s.spillFactor-1)
			}
		}
		t := float64(asg.Points)*scr.secPP[pos]*mult + scr.commSec[pos]
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}
