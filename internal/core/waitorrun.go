package core

import (
	"fmt"

	"apples/internal/obs"
)

// DedicatedOffer describes a batch-queue style offer: after WaitSec of
// queue wait, the named hosts become dedicated to the application.
type DedicatedOffer struct {
	Hosts   []string
	WaitSec float64
}

// WaitOrRunDecision is the outcome of the Section 3.2 comparison: "the
// sum of the wait time and the dedicated time ... compared with a
// prediction of the slowdown the application will experience on
// non-dedicated resources."
type WaitOrRunDecision struct {
	// Wait is true when queueing for dedicated access is predicted
	// faster.
	Wait bool
	// SharedPredicted is the predicted total on the shared pool, now.
	SharedPredicted float64
	// DedicatedPredicted is wait + predicted total on the dedicated
	// hosts.
	DedicatedPredicted float64
	// Schedule is the one to actuate: the shared schedule when Wait is
	// false, the dedicated one when true.
	Schedule *Schedule
	// SharedSchedule and DedicatedSchedule expose both candidates.
	SharedSchedule, DedicatedSchedule *Schedule
}

// dedicatedInfo overrides availability to 1 for the offered hosts —
// they will be dedicated when the application runs.
type dedicatedInfo struct {
	Information
	hosts map[string]bool
}

func (d *dedicatedInfo) Availability(host string) float64 {
	if d.hosts[host] {
		return 1
	}
	return d.Information.Availability(host)
}

func (d *dedicatedInfo) Source() string { return d.Information.Source() + "+dedicated" }

// WaitOrRun evaluates a dedicated-access offer against running on the
// shared pool immediately and returns the user's best course.
func (a *Agent) WaitOrRun(n int, offer DedicatedOffer) (*WaitOrRunDecision, error) {
	if len(offer.Hosts) == 0 {
		return nil, fmt.Errorf("core: dedicated offer names no hosts")
	}
	if offer.WaitSec < 0 {
		return nil, fmt.Errorf("core: negative queue wait %v", offer.WaitSec)
	}
	// Both branches price against ONE frozen information view, resolved
	// over the union of the shared pool and the offered hosts. This halves
	// the forecaster traffic (the old path built a full snapshot per
	// branch) and guarantees the comparison is internally consistent: the
	// shared and dedicated predictions cannot diverge because the source
	// moved between the two evaluations. Under the simulation's
	// stopped-clock scheduling the decisions are value-identical to the
	// two-snapshot path.
	snap := roundSnapshot(a.coord.info, a.spec.Filter(a.tp.Hosts()), offer.Hosts...)

	sharedAgent := a.clone()
	sharedAgent.coord.info = snap
	shared, err := sharedAgent.Schedule(n)
	if err != nil {
		return nil, err
	}

	dedSpec := *a.spec
	dedSpec.Accessible = append([]string(nil), offer.Hosts...)
	dedSpec.Excluded = nil
	hostSet := map[string]bool{}
	for _, h := range offer.Hosts {
		hostSet[h] = true
	}
	// Clone so the dedicated evaluation inherits the agent's full
	// configuration (spill factor, parallelism, pruning, snapshotting).
	dedAgent := a.clone()
	dedAgent.spec = &dedSpec
	dedAgent.coord.info = &dedicatedInfo{Information: snap, hosts: hostSet}
	dedicated, err := dedAgent.Schedule(n)
	if err != nil {
		return nil, fmt.Errorf("core: dedicated offer unschedulable: %w", err)
	}

	dec := &WaitOrRunDecision{
		SharedPredicted:    shared.PredictedTotal,
		DedicatedPredicted: offer.WaitSec + dedicated.PredictedTotal,
		SharedSchedule:     shared,
		DedicatedSchedule:  dedicated,
	}
	if dec.DedicatedPredicted < dec.SharedPredicted {
		dec.Wait = true
		dec.Schedule = dedicated
	} else {
		dec.Schedule = shared
	}
	if tr := a.coord.tracer; tr != nil {
		verdict := "run"
		if dec.Wait {
			verdict = "wait"
		}
		tr.Emit(obs.Event{Type: obs.EvWaitOrRun, Verdict: verdict, Hosts: dec.Schedule.Hosts,
			Shared: dec.SharedPredicted, Dedicated: dec.DedicatedPredicted})
	}
	return dec, nil
}
