package core

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/sim"
	"apples/internal/userspec"
)

func TestScheduleExplainedTopK(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(800, 20), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	best, top, err := a.ScheduleExplained(800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("top-k %d, want 5", len(top))
	}
	// Ranked ascending by score, and the winner equals Schedule's pick.
	for i := 1; i < len(top); i++ {
		if top[i-1].Score > top[i].Score {
			t.Fatalf("candidates not ranked: %v then %v", top[i-1].Score, top[i].Score)
		}
	}
	if top[0].PredictedIterTime != best.PredictedIterTime {
		t.Fatalf("best candidate iter %v != schedule %v", top[0].PredictedIterTime, best.PredictedIterTime)
	}
	if err := top[0].Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	// Consistency with the plain entry point.
	plain, err := a.Schedule(800)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PredictedTotal != best.PredictedTotal {
		t.Fatalf("Schedule and ScheduleExplained disagree: %v vs %v", plain.PredictedTotal, best.PredictedTotal)
	}
}

func TestScheduleExplainedAll(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(500, 10), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	_, all, err := a.ScheduleExplained(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 255 {
		t.Fatalf("all candidates %d, want 255", len(all))
	}
}
