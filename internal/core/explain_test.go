package core

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

func TestScheduleExplainedTopK(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(800, 20), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	best, top, err := a.ScheduleExplained(800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("top-k %d, want 5", len(top))
	}
	// Ranked ascending by score, and the winner equals Schedule's pick.
	for i := 1; i < len(top); i++ {
		if top[i-1].Score > top[i].Score {
			t.Fatalf("candidates not ranked: %v then %v", top[i-1].Score, top[i].Score)
		}
	}
	if top[0].PredictedIterTime != best.PredictedIterTime {
		t.Fatalf("best candidate iter %v != schedule %v", top[0].PredictedIterTime, best.PredictedIterTime)
	}
	if err := top[0].Placement.Validate(); err != nil {
		t.Fatal(err)
	}
	// Consistency with the plain entry point.
	plain, err := a.Schedule(800)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PredictedTotal != best.PredictedTotal {
		t.Fatalf("Schedule and ScheduleExplained disagree: %v vs %v", plain.PredictedTotal, best.PredictedTotal)
	}
}

func TestCandidatesAccessor(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(800, 20), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.Candidates(800, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("Candidates(800, 3) returned %d", len(top))
	}
	best, err := a.Schedule(800)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates(n, 1)[0] describes the schedule Schedule(n) picks.
	if top[0].PredictedTotal != best.PredictedTotal {
		t.Fatalf("top candidate %v != schedule %v", top[0].PredictedTotal, best.PredictedTotal)
	}
}

func TestPipelineScheduleExplained(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.CASA(eng)
	a, err := NewPipelineAgent(tp, hat.React3D(600), &userspec.Spec{}, OracleInformation(tp), react.Options{})
	if err != nil {
		t.Fatal(err)
	}
	best, all, err := a.ScheduleExplained(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no explained pipeline candidates")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Score > all[i].Score {
			t.Fatalf("pipeline candidates not ranked: %v then %v", all[i-1].Score, all[i].Score)
		}
	}
	if all[0].PredictedTotal != best.Predicted {
		t.Fatalf("best candidate %v != schedule prediction %v", all[0].PredictedTotal, best.Predicted)
	}
	// The winning mapping's hosts match the schedule.
	if best.SingleSite != "" {
		if len(all[0].Hosts) != 1 || all[0].Hosts[0] != best.SingleSite {
			t.Fatalf("single-site candidate %v != %s", all[0].Hosts, best.SingleSite)
		}
	} else {
		if len(all[0].Hosts) != 2 || all[0].Hosts[0] != best.Producer || all[0].Hosts[1] != best.Consumer {
			t.Fatalf("pair candidate %v != %s->%s", all[0].Hosts, best.Producer, best.Consumer)
		}
		if all[0].Unit != best.Unit {
			t.Fatalf("candidate unit %d != schedule unit %d", all[0].Unit, best.Unit)
		}
	}
	// Consistency across the unified surface.
	plain, err := a.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Predicted != best.Predicted {
		t.Fatalf("Schedule and ScheduleExplained disagree: %v vs %v", plain.Predicted, best.Predicted)
	}
	top, err := a.Candidates(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Score != all[0].Score {
		t.Fatalf("Candidates(2) inconsistent with ScheduleExplained: %v", top)
	}
}

func TestScheduleExplainedAll(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(500, 10), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	_, all, err := a.ScheduleExplained(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 255 {
		t.Fatalf("all candidates %d, want 255", len(all))
	}
}
