package core

import (
	"strings"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/load"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

func casaAgent(t *testing.T, spec *userspec.Spec) (*PipelineAgent, *grid.Topology) {
	t.Helper()
	tp := grid.CASA(sim.NewEngine())
	if spec == nil {
		spec = &userspec.Spec{}
	}
	a, err := NewPipelineAgent(tp, hat.React3D(600), spec, OracleInformation(tp), react.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a, tp
}

func TestPipelineAgentPicksPaperMapping(t *testing.T) {
	a, _ := casaAgent(t, nil)
	s, err := a.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.SingleSite != "" {
		t.Fatalf("agent fell back to single-site %s", s.SingleSite)
	}
	if s.Producer != "c90" || s.Consumer != "paragon" {
		t.Fatalf("mapping %s->%s, want c90->paragon", s.Producer, s.Consumer)
	}
	if s.Unit < 5 || s.Unit > 20 {
		t.Fatalf("unit %d outside the template's 5-20 range", s.Unit)
	}
	// 2 singles + 2 ordered pairs.
	if s.CandidatesConsidered != 4 {
		t.Fatalf("considered %d candidates, want 4", s.CandidatesConsidered)
	}
	if !strings.Contains(s.String(), "c90->paragon") {
		t.Fatalf("schedule string %q", s.String())
	}
}

func TestPipelineAgentRunMeasures(t *testing.T) {
	a, _ := casaAgent(t, nil)
	s, measured, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if measured <= 0 {
		t.Fatalf("measured %v", measured)
	}
	// The simulated pipeline matches the model within a few percent.
	if ratio := measured / s.Predicted; ratio > 1.1 || ratio < 0.9 {
		t.Fatalf("measured %v vs predicted %v", measured, s.Predicted)
	}
	// And it reproduces the headline: under 5 hours distributed.
	if measured/3600 > 5.3 {
		t.Fatalf("distributed run %.2f h, want < ~5", measured/3600)
	}
}

func TestPipelineAgentSingleSiteWhenPeerExcluded(t *testing.T) {
	a, _ := casaAgent(t, &userspec.Spec{Excluded: []string{"paragon"}})
	s, err := a.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.SingleSite != "c90" {
		t.Fatalf("schedule %v, want single-site c90", s)
	}
	_, measured, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if measured/3600 < 15 {
		t.Fatalf("single-site run %.2f h, want >15", measured/3600)
	}
}

func TestPipelineAgentAvoidsLoadedMachine(t *testing.T) {
	// Three identical machines, one crushed by load: the mapping must use
	// the two free ones.
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	for _, spec := range []grid.HostSpec{
		{Name: "m1", Arch: "c90", Site: "x", Speed: 450, MemoryMB: 4096, Load: load.Constant(9)},
		{Name: "m2", Arch: "c90", Site: "x", Speed: 450, MemoryMB: 4096},
		{Name: "m3", Arch: "paragon", Site: "x", Speed: 480, MemoryMB: 4096},
	} {
		tp.AddHost(spec)
	}
	l := tp.AddLink(grid.LinkSpec{Name: "net", Latency: 0.01, Bandwidth: 25, Dedicated: true})
	for _, h := range []string{"m1", "m2", "m3"} {
		tp.Attach(h, l)
	}
	tp.Finalize()

	a, err := NewPipelineAgent(tp, hat.React3D(600), &userspec.Spec{}, OracleInformation(tp), react.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.Producer == "m1" || s.Consumer == "m1" {
		t.Fatalf("agent mapped onto the loaded machine: %v", s)
	}
	if s.Producer != "m2" || s.Consumer != "m3" {
		t.Fatalf("mapping %s->%s, want m2->m3 (vector LHSF, MPP Log-D)", s.Producer, s.Consumer)
	}
}

func TestPipelineAgentRejectsBadTemplates(t *testing.T) {
	tp := grid.CASA(sim.NewEngine())
	if _, err := NewPipelineAgent(tp, hat.Jacobi2D(100, 1), &userspec.Spec{}, OracleInformation(tp), react.Options{}); err == nil {
		t.Fatal("data-parallel template accepted")
	}
	bad := hat.React3D(100)
	bad.Comms = nil
	if _, err := NewPipelineAgent(tp, bad, &userspec.Spec{}, OracleInformation(tp), react.Options{}); err == nil {
		t.Fatal("template without pipeline edge accepted")
	}
}

func TestPipelineAgentEmptyPool(t *testing.T) {
	a, _ := casaAgent(t, &userspec.Spec{Accessible: []string{"ghost"}})
	if _, err := a.Schedule(); err == nil {
		t.Fatal("empty pool accepted")
	}
}
