package core

import (
	"apples/internal/grid"
	"apples/internal/jacobi"
	"apples/internal/obs"
	"apples/internal/partition"
)

// EstimatePlacement predicts the per-iteration time of an existing
// placement under the agent's *current* information — the quantity a
// rescheduling decision compares against a fresh schedule's prediction.
func (a *Agent) EstimatePlacement(n int, p *partition.Placement) (float64, error) {
	var chain []*grid.Host
	for _, asg := range p.Assignments {
		if asg.Points == 0 {
			continue
		}
		h := a.tp.Host(asg.Host)
		if h == nil {
			continue
		}
		chain = append(chain, h)
	}
	names := make([]string, len(chain))
	for i, h := range chain {
		names[i] = h.Name
	}
	pl := &planner{tp: a.tp, tpl: a.tpl, info: a.coord.View(names)}
	costs, err := pl.costsFor(n, chain)
	if err != nil {
		return 0, err
	}
	es := newEstimator(a.tp, a.spec, a.tpl.Tasks[0].BytesPerUnit, a.SpillFactor, max(a.tpl.Iterations, 1))
	return es.iterTime(p, costs), nil
}

// Rescheduler returns the redistribution policy of Section 3.2 as a
// jacobi.ReplanFunc: at each rescheduling point the agent re-runs its
// blueprint with fresh forecasts and accepts the new schedule only when
//
//   - the new predicted iteration time improves on the current
//     placement's by at least the hysteresis fraction (guarding against
//     thrashing on forecast noise), and
//   - the predicted savings over the remaining iterations exceed the
//     estimated cost of migrating the strip state.
func (a *Agent) Rescheduler(n int, hysteresis float64) jacobi.ReplanFunc {
	if hysteresis <= 0 {
		hysteresis = 0.10
	}
	totalIters := max(a.tpl.Iterations, 1)
	bytesPerPoint := a.tpl.Tasks[0].BytesPerUnit

	// keep traces a rejected checkpoint; the nil tracer costs one check.
	keep := func(reason string, cur, freshIter, savings, migCost float64) *partition.Placement {
		if tr := a.coord.tracer; tr != nil {
			tr.Emit(obs.Event{Type: obs.EvReschedule, Verdict: "keep", Reason: reason,
				Current: cur, Fresh: freshIter, Savings: savings, MigCost: migCost})
		}
		return nil
	}

	// The delta-aware session freezes the candidate universe at the first
	// checkpoint and from then on re-scores only candidates whose
	// forecasts changed, instead of rebuilding a full snapshot and
	// re-enumerating per checkpoint. Construction is deferred so the pool
	// reflects run-time state; a construction failure is sticky and the
	// policy falls back to full blueprint rounds for the whole run.
	var (
		sess     *ReschedSession
		sessErr  error
		sessInit bool
	)

	return func(done int, current *partition.Placement) *partition.Placement {
		remaining := totalIters - done
		if remaining <= 0 {
			return nil
		}
		if !sessInit {
			sessInit = true
			sess, sessErr = a.NewReschedSession(n)
		}
		var (
			fresh *Schedule
			err   error
		)
		if sessErr == nil {
			fresh, _, err = sess.Round()
		} else {
			fresh, err = a.Schedule(n)
		}
		if err != nil {
			return keep("no-fresh-schedule", 0, 0, 0, 0)
		}
		var curIter float64
		if sessErr == nil {
			curIter, err = sess.EstimatePlacement(current)
		} else {
			curIter, err = a.EstimatePlacement(n, current)
		}
		if err != nil {
			return keep("estimate-failed", 0, fresh.PredictedIterTime, 0, 0)
		}
		if fresh.PredictedIterTime >= curIter*(1-hysteresis) {
			return keep("hysteresis", curIter, fresh.PredictedIterTime, 0, 0)
		}
		savings := (curIter - fresh.PredictedIterTime) * float64(remaining)
		migMB := jacobi.EstimateMigrationMB(current, fresh.Placement, bytesPerPoint)
		migCost := a.migrationCost(current, fresh.Placement, migMB)
		if savings <= migCost {
			return keep("migration-cost", curIter, fresh.PredictedIterTime, savings, migCost)
		}
		if tr := a.coord.tracer; tr != nil {
			tr.Emit(obs.Event{Type: obs.EvReschedule, Verdict: "migrate", Hosts: fresh.Hosts,
				Current: curIter, Fresh: fresh.PredictedIterTime, Savings: savings, MigCost: migCost})
		}
		return fresh.Placement
	}
}

// migrationCost estimates the seconds needed to move migMB between the
// placements' hosts, using the slowest forecast route among the affected
// pairs as the bottleneck.
func (a *Agent) migrationCost(oldP, newP *partition.Placement, migMB float64) float64 {
	if migMB <= 0 {
		return 0
	}
	// Affected hosts: anyone whose share changed.
	oldPts := map[string]int{}
	for _, asg := range oldP.Assignments {
		oldPts[asg.Host] = asg.Points
	}
	var shrank, grew []string
	seen := map[string]bool{}
	for _, asg := range newP.Assignments {
		seen[asg.Host] = true
		switch d := asg.Points - oldPts[asg.Host]; {
		case d > 0:
			grew = append(grew, asg.Host)
		case d < 0:
			shrank = append(shrank, asg.Host)
		}
	}
	for h := range oldPts {
		if !seen[h] && oldPts[h] > 0 {
			shrank = append(shrank, h)
		}
	}
	worstBW := 1e30
	for _, s := range shrank {
		for _, g := range grew {
			if bw := a.coord.Information().RouteBandwidth(s, g); bw < worstBW {
				worstBW = bw
			}
		}
	}
	if worstBW <= 0 || worstBW >= 1e30 {
		return 0
	}
	return migMB / worstBW
}
