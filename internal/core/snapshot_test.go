package core

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/nws"
	"apples/internal/sim"
)

// TestSnapshotMatchesSource: the snapshot must resolve exactly the values
// the underlying source returns at snapshot time, for every covered host
// and ordered pair.
func TestSnapshotMatchesSource(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 9})
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	info := NWSInformation(svc, tp)

	names := tp.HostNames()
	snap := SnapshotInformation(info, names)
	if snap.Source() != info.Source() {
		t.Fatalf("source %q, want %q", snap.Source(), info.Source())
	}
	for _, h := range names {
		if got, want := snap.Availability(h), info.Availability(h); got != want {
			t.Fatalf("availability(%s) %v != %v", h, got, want)
		}
	}
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			if got, want := snap.RouteBandwidth(a, b), info.RouteBandwidth(a, b); got != want {
				t.Fatalf("bandwidth(%s,%s) %v != %v", a, b, got, want)
			}
			if got, want := snap.RouteLatency(a, b), info.RouteLatency(a, b); got != want {
				t.Fatalf("latency(%s,%s) %v != %v", a, b, got, want)
			}
		}
	}
}

// TestSnapshotFallsThrough: lookups outside the snapshotted host set
// delegate to the underlying source instead of failing.
func TestSnapshotFallsThrough(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	info := OracleInformation(tp)
	names := tp.HostNames()
	snap := SnapshotInformation(info, names[:2])
	outside := names[len(names)-1]
	if got, want := snap.Availability(outside), info.Availability(outside); got != want {
		t.Fatalf("fallback availability %v != %v", got, want)
	}
	if got, want := snap.RouteBandwidth(names[0], outside), info.RouteBandwidth(names[0], outside); got != want {
		t.Fatalf("fallback bandwidth %v != %v", got, want)
	}
}

// TestSnapshotFreezes: the snapshot keeps its values when the underlying
// system state moves on — that is the point of a per-round snapshot.
func TestSnapshotFreezes(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 4})
	info := OracleInformation(tp)
	if err := eng.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	names := tp.HostNames()
	snap := SnapshotInformation(info, names)
	before := make(map[string]float64, len(names))
	for _, h := range names {
		before[h] = snap.Availability(h)
	}
	if err := eng.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	for _, h := range names {
		if snap.Availability(h) != before[h] {
			t.Fatalf("snapshot availability of %s drifted after simulated time advanced", h)
		}
	}
}
