package core

import (
	"iter"
	"math"
	"sort"

	"apples/internal/grid"
)

// maxExhaustiveHosts bounds the all-subsets enumeration (2^12 - 1 = 4095
// candidate sets). The paper's prototype considered "all subsets" of its 8
// machines; beyond this we fall back to desirability prefixes.
const maxExhaustiveHosts = 12

// exhaustiveSelector adapts the all-subsets enumeration (and its legacy
// re-querying twin) to the streaming ResourceSelector contract. The
// enumeration itself stays eager — it is the work the select stage span
// measures, and on exhaustive-size pools the whole list fits easily —
// but consumers still pull sets one at a time, and the cap that
// userspec.MaxResourceSets applies is reported through
// TruncationReporter instead of silently shrinking the round.
type exhaustiveSelector struct {
	rs      *resourceSelector
	maxSets int
	// direct switches to candidatesDirect, the per-set re-querying path
	// used when the per-round snapshot is disabled.
	direct  bool
	dropped int
	capped  bool
}

// SelectSeq implements ResourceSelector.
func (s *exhaustiveSelector) SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host] {
	s.dropped, s.capped = 0, false
	var sets [][]*grid.Host
	if s.direct {
		sets = s.rs.candidatesDirect(pool, s.maxSets)
	} else {
		sets = s.rs.candidates(pool, s.maxSets)
	}
	if s.maxSets > 0 && len(pool) > 0 {
		total := len(pool)
		if len(pool) <= maxExhaustiveHosts {
			total = 1<<len(pool) - 1
		}
		if total > len(sets) {
			s.dropped, s.capped = total-len(sets), true
		}
	}
	return func(yield func([]*grid.Host) bool) {
		for _, set := range sets {
			if !yield(set) {
				return
			}
		}
	}
}

// Truncated implements TruncationReporter.
func (s *exhaustiveSelector) Truncated() (int, bool) { return s.dropped, s.capped }

// resourceSelector implements the Resource Selector subsystem: it ranks
// feasible hosts by deliverable performance, orders each candidate set so
// that logically close hosts are strip neighbors, and enumerates candidate
// sets for the Planner.
type resourceSelector struct {
	tp   *grid.Topology
	info Information
}

// desirability scores a host by forecast deliverable speed discounted by
// its network distance to the rest of the pool — the application-specific
// "closeness" of Section 3.3: a fast machine behind a slow shared WAN is
// less desirable to a border-exchanging stencil code than a modest one on
// the local segment.
func (rs *resourceSelector) desirability(h *grid.Host, pool []*grid.Host) float64 {
	eff := h.Speed * rs.info.Availability(h.Name)
	// Mean logical distance to the other pool members: seconds to move a
	// nominal 1 MB border to each.
	if len(pool) <= 1 {
		return eff
	}
	dist := 0.0
	for _, o := range pool {
		if o.Name == h.Name {
			continue
		}
		bw := rs.info.RouteBandwidth(h.Name, o.Name)
		if bw <= 0 {
			bw = 1e-6
		}
		dist += rs.info.RouteLatency(h.Name, o.Name) + 1.0/bw
	}
	dist /= float64(len(pool) - 1)
	return eff / (1 + dist)
}

// orderChain arranges a resource set into a strip chain that keeps
// logically close hosts adjacent: greedy nearest-neighbor by route
// transfer cost, seeded at the fastest host. Deterministic.
func (rs *resourceSelector) orderChain(set []*grid.Host) []*grid.Host {
	eff := func(h *grid.Host) float64 { return h.Speed * rs.info.Availability(h.Name) }
	if len(set) <= 2 {
		out := append([]*grid.Host(nil), set...)
		sort.Slice(out, func(i, j int) bool {
			ei, ej := eff(out[i]), eff(out[j])
			if ei != ej {
				return ei > ej
			}
			return out[i].Name < out[j].Name
		})
		return out
	}
	remaining := append([]*grid.Host(nil), set...)
	sort.Slice(remaining, func(i, j int) bool {
		ei, ej := eff(remaining[i]), eff(remaining[j])
		if ei != ej {
			return ei > ej
		}
		return remaining[i].Name < remaining[j].Name
	})
	chain := []*grid.Host{remaining[0]}
	remaining = remaining[1:]
	for len(remaining) > 0 {
		cur := chain[len(chain)-1]
		bestIdx, bestCost := 0, math.Inf(1)
		for i, h := range remaining {
			bw := rs.info.RouteBandwidth(cur.Name, h.Name)
			if bw <= 0 {
				bw = 1e-6
			}
			cost := rs.info.RouteLatency(cur.Name, h.Name) + 1.0/bw
			if cost < bestCost || (cost == bestCost && h.Name < remaining[bestIdx].Name) {
				bestIdx, bestCost = i, cost
			}
		}
		chain = append(chain, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return chain
}

// candidatesDirect enumerates resource sets the way the pre-snapshot
// engine did: build each subset, rank by aggregate desirability, and run
// every set through orderChain — re-querying the information source for
// the same availability and route values on every set. It remains the
// evaluation path when the per-round snapshot is disabled
// (WithInfoSnapshot(false)): without a frozen information view, hoisting
// those lookups out of the per-set loop would just be snapshotting by
// another name, and the ablation is meant to measure exactly that cost.
// Its output is bit-identical to candidates (a differential test pins
// this).
func (rs *resourceSelector) candidatesDirect(pool []*grid.Host, maxSets int) [][]*grid.Host {
	if len(pool) == 0 {
		return nil
	}
	des := make(map[string]float64, len(pool))
	for _, h := range pool {
		des[h.Name] = rs.desirability(h, pool)
	}
	ranked := append([]*grid.Host(nil), pool...)
	sort.Slice(ranked, func(i, j int) bool {
		di, dj := des[ranked[i].Name], des[ranked[j].Name]
		if di != dj {
			return di > dj
		}
		return ranked[i].Name < ranked[j].Name
	})

	var sets [][]*grid.Host
	if len(ranked) <= maxExhaustiveHosts {
		n := len(ranked)
		for mask := 1; mask < 1<<n; mask++ {
			var set []*grid.Host
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					set = append(set, ranked[b])
				}
			}
			sets = append(sets, set)
		}
		// Prefer larger aggregate desirability first so a cap keeps the
		// most promising sets.
		agg := make([]float64, len(sets))
		for i, set := range sets {
			sum := 0.0
			for _, h := range set {
				sum += des[h.Name]
			}
			agg[i] = sum
		}
		order := make([]int, len(sets))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool { return agg[order[i]] > agg[order[j]] })
		sorted := make([][]*grid.Host, len(sets))
		for i, idx := range order {
			sorted[i] = sets[idx]
		}
		sets = sorted
	} else {
		for k := 1; k <= len(ranked); k++ {
			sets = append(sets, append([]*grid.Host(nil), ranked[:k]...))
		}
	}
	if maxSets > 0 && len(sets) > maxSets {
		sets = sets[:maxSets]
	}
	for i, set := range sets {
		sets[i] = rs.orderChain(set)
	}
	return sets
}

// candidates enumerates resource sets for the Planner, each already
// ordered as a strip chain. With a small pool every non-empty subset is
// considered (as the paper's prototype did); larger pools use prefixes of
// the desirability ranking. maxSets caps the result when positive.
//
// The exhaustive path is the hot loop of a scheduling round (2^pool - 1
// sets), so every information value it needs — per-host effective speed
// and the pairwise transfer cost — is resolved once up front; subsets are
// then enumerated as bitmasks and chained by index arithmetic. The
// resulting sets are identical, element for element, to candidatesDirect
// (a differential test pins this).
func (rs *resourceSelector) candidates(pool []*grid.Host, maxSets int) [][]*grid.Host {
	n := len(pool)
	if n == 0 {
		return nil
	}
	// eff[i] is host i's deliverable speed; cost[i][j] the seconds to move
	// a nominal 1 MB border from i to j — the same quantities desirability
	// and orderChain compute, resolved once for the whole enumeration.
	eff := make([]float64, n)
	for i, h := range pool {
		eff[i] = h.Speed * rs.info.Availability(h.Name)
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				continue
			}
			bw := rs.info.RouteBandwidth(pool[i].Name, pool[j].Name)
			if bw <= 0 {
				bw = 1e-6
			}
			cost[i][j] = rs.info.RouteLatency(pool[i].Name, pool[j].Name) + 1.0/bw
		}
	}
	des := make([]float64, n)
	for i := range pool {
		des[i] = eff[i]
		if n > 1 {
			dist := 0.0
			for j := range pool {
				if j == i {
					continue
				}
				dist += cost[i][j]
			}
			dist /= float64(n - 1)
			des[i] = eff[i] / (1 + dist)
		}
	}
	// Rank by desirability (the enumeration and prefix order), then
	// re-index eff and cost to ranked positions.
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		if des[ord[a]] != des[ord[b]] {
			return des[ord[a]] > des[ord[b]]
		}
		return pool[ord[a]].Name < pool[ord[b]].Name
	})
	ranked := make([]*grid.Host, n)
	rDes := make([]float64, n)
	rEff := make([]float64, n)
	rCost := make([][]float64, n)
	for a, idx := range ord {
		ranked[a] = pool[idx]
		rDes[a] = des[idx]
		rEff[a] = eff[idx]
		rCost[a] = make([]float64, n)
		for b, jdx := range ord {
			rCost[a][b] = cost[idx][jdx]
		}
	}

	if n > maxExhaustiveHosts {
		sets := make([][]*grid.Host, 0, n)
		for k := 1; k <= n; k++ {
			sets = append(sets, append([]*grid.Host(nil), ranked[:k]...))
		}
		if maxSets > 0 && len(sets) > maxSets {
			sets = sets[:maxSets]
		}
		for i, set := range sets {
			sets[i] = rs.orderChain(set)
		}
		return sets
	}

	// effOrder is orderChain's seed ordering (eff desc, name asc) over
	// ranked indices; filtering it by a mask yields each subset already
	// eff-sorted.
	effOrder := make([]int, n)
	for i := range effOrder {
		effOrder[i] = i
	}
	sort.Slice(effOrder, func(a, b int) bool {
		if rEff[effOrder[a]] != rEff[effOrder[b]] {
			return rEff[effOrder[a]] > rEff[effOrder[b]]
		}
		return ranked[effOrder[a]].Name < ranked[effOrder[b]].Name
	})

	// Prefer larger aggregate desirability first so a cap keeps the most
	// promising sets; ties keep mask-enumeration order (stable sort).
	total := 1<<n - 1
	agg := make([]float64, total+1)
	for mask := 1; mask <= total; mask++ {
		sum := 0.0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				sum += rDes[b]
			}
		}
		agg[mask] = sum
	}
	order := make([]int, total)
	for i := range order {
		order[i] = i + 1
	}
	sort.SliceStable(order, func(a, b int) bool { return agg[order[a]] > agg[order[b]] })
	if maxSets > 0 && len(order) > maxSets {
		order = order[:maxSets]
	}

	// Chain each mask: greedy nearest neighbor by transfer cost, seeded at
	// the highest-eff member, ties broken by name — orderChain's algorithm
	// on the precomputed matrices.
	sets := make([][]*grid.Host, len(order))
	scratch := make([]int, 0, n)
	for si, mask := range order {
		scratch = scratch[:0]
		for _, idx := range effOrder {
			if mask&(1<<idx) != 0 {
				scratch = append(scratch, idx)
			}
		}
		chain := make([]*grid.Host, 1, len(scratch))
		cur := scratch[0]
		chain[0] = ranked[cur]
		rem := scratch[1:]
		for len(rem) > 0 {
			bestI, bestCost := 0, math.Inf(1)
			for i, idx := range rem {
				if c := rCost[cur][idx]; c < bestCost || (c == bestCost && ranked[idx].Name < ranked[rem[bestI]].Name) {
					bestI, bestCost = i, c
				}
			}
			cur = rem[bestI]
			chain = append(chain, ranked[cur])
			rem = append(rem[:bestI], rem[bestI+1:]...)
		}
		sets[si] = chain
	}
	return sets
}
