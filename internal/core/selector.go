package core

import (
	"math"
	"sort"

	"apples/internal/grid"
)

// maxExhaustiveHosts bounds the all-subsets enumeration (2^12 - 1 = 4095
// candidate sets). The paper's prototype considered "all subsets" of its 8
// machines; beyond this we fall back to desirability prefixes.
const maxExhaustiveHosts = 12

// resourceSelector implements the Resource Selector subsystem: it ranks
// feasible hosts by deliverable performance, orders each candidate set so
// that logically close hosts are strip neighbors, and enumerates candidate
// sets for the Planner.
type resourceSelector struct {
	tp   *grid.Topology
	info Information
}

// desirability scores a host by forecast deliverable speed discounted by
// its network distance to the rest of the pool — the application-specific
// "closeness" of Section 3.3: a fast machine behind a slow shared WAN is
// less desirable to a border-exchanging stencil code than a modest one on
// the local segment.
func (rs *resourceSelector) desirability(h *grid.Host, pool []*grid.Host) float64 {
	eff := h.Speed * rs.info.Availability(h.Name)
	// Mean logical distance to the other pool members: seconds to move a
	// nominal 1 MB border to each.
	if len(pool) <= 1 {
		return eff
	}
	dist := 0.0
	for _, o := range pool {
		if o.Name == h.Name {
			continue
		}
		bw := rs.info.RouteBandwidth(h.Name, o.Name)
		if bw <= 0 {
			bw = 1e-6
		}
		dist += rs.info.RouteLatency(h.Name, o.Name) + 1.0/bw
	}
	dist /= float64(len(pool) - 1)
	return eff / (1 + dist)
}

// orderChain arranges a resource set into a strip chain that keeps
// logically close hosts adjacent: greedy nearest-neighbor by route
// transfer cost, seeded at the fastest host. Deterministic.
func (rs *resourceSelector) orderChain(set []*grid.Host) []*grid.Host {
	eff := func(h *grid.Host) float64 { return h.Speed * rs.info.Availability(h.Name) }
	if len(set) <= 2 {
		out := append([]*grid.Host(nil), set...)
		sort.Slice(out, func(i, j int) bool {
			ei, ej := eff(out[i]), eff(out[j])
			if ei != ej {
				return ei > ej
			}
			return out[i].Name < out[j].Name
		})
		return out
	}
	remaining := append([]*grid.Host(nil), set...)
	sort.Slice(remaining, func(i, j int) bool {
		ei, ej := eff(remaining[i]), eff(remaining[j])
		if ei != ej {
			return ei > ej
		}
		return remaining[i].Name < remaining[j].Name
	})
	chain := []*grid.Host{remaining[0]}
	remaining = remaining[1:]
	for len(remaining) > 0 {
		cur := chain[len(chain)-1]
		bestIdx, bestCost := 0, math.Inf(1)
		for i, h := range remaining {
			bw := rs.info.RouteBandwidth(cur.Name, h.Name)
			if bw <= 0 {
				bw = 1e-6
			}
			cost := rs.info.RouteLatency(cur.Name, h.Name) + 1.0/bw
			if cost < bestCost || (cost == bestCost && h.Name < remaining[bestIdx].Name) {
				bestIdx, bestCost = i, cost
			}
		}
		chain = append(chain, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return chain
}

// candidates enumerates resource sets for the Planner, each already
// ordered as a strip chain. With a small pool every non-empty subset is
// considered (as the paper's prototype did); larger pools use prefixes of
// the desirability ranking. maxSets caps the result when positive.
func (rs *resourceSelector) candidates(pool []*grid.Host, maxSets int) [][]*grid.Host {
	if len(pool) == 0 {
		return nil
	}
	ranked := append([]*grid.Host(nil), pool...)
	sort.Slice(ranked, func(i, j int) bool {
		di, dj := rs.desirability(ranked[i], pool), rs.desirability(ranked[j], pool)
		if di != dj {
			return di > dj
		}
		return ranked[i].Name < ranked[j].Name
	})

	var sets [][]*grid.Host
	if len(ranked) <= maxExhaustiveHosts {
		n := len(ranked)
		for mask := 1; mask < 1<<n; mask++ {
			var set []*grid.Host
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					set = append(set, ranked[b])
				}
			}
			sets = append(sets, set)
		}
		// Prefer larger aggregate desirability first so a cap keeps the
		// most promising sets.
		sort.SliceStable(sets, func(i, j int) bool {
			return rs.aggregate(sets[i], pool) > rs.aggregate(sets[j], pool)
		})
	} else {
		for k := 1; k <= len(ranked); k++ {
			sets = append(sets, append([]*grid.Host(nil), ranked[:k]...))
		}
	}
	if maxSets > 0 && len(sets) > maxSets {
		sets = sets[:maxSets]
	}
	for i, set := range sets {
		sets[i] = rs.orderChain(set)
	}
	return sets
}

func (rs *resourceSelector) aggregate(set, pool []*grid.Host) float64 {
	sum := 0.0
	for _, h := range set {
		sum += rs.desirability(h, pool)
	}
	return sum
}
