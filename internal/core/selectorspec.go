package core

import (
	"fmt"
	"strings"
)

// SelectorKind names a candidate-enumeration strategy for the blueprint
// agents' Resource Selector.
type SelectorKind string

const (
	// SelectorExhaustive reproduces the paper's prototype: every
	// non-empty subset on pools up to 12 hosts (ranked by aggregate
	// desirability), desirability prefixes beyond. The default.
	SelectorExhaustive SelectorKind = "exhaustive"
	// SelectorGreedy enumerates desirability prefixes plus a
	// marginal-gain grown chain — O(pool) candidate sets, the selector
	// for interactive rounds on 100–4096-host grids.
	SelectorGreedy SelectorKind = "greedy"
	// SelectorBeam runs a width-W beam search over add/drop/swap moves
	// under a communication-aware surrogate objective, emitting each
	// surviving beam state as a candidate.
	SelectorBeam SelectorKind = "beam"
	// SelectorLPGA seeds a genetic algorithm from an LP-relaxation
	// threshold sweep of the desirability ranking (after Garg et al.'s
	// LP-driven GA for utility-grid meta-scheduling) and emits each new
	// individual as a candidate. Deterministic for a fixed Seed.
	SelectorLPGA SelectorKind = "lpga"
)

// SelectorSpec selects and parameterizes the Resource Selector a
// blueprint agent binds each scheduling round. The zero value means
// exhaustive with default parameters; pass it through WithSelector.
type SelectorSpec struct {
	Kind SelectorKind
	// BeamWidth is the number of beam states kept per iteration
	// (SelectorBeam; default 8). The pipeline blueprint also uses it to
	// size its pair-enumeration cutoff under heuristic selectors.
	BeamWidth int
	// Seed drives SelectorLPGA's rounding and genetic operators; runs
	// with equal seeds enumerate identical candidates (default 1).
	Seed int64
}

// ParseSelector parses a -selector flag value into a SelectorSpec.
func ParseSelector(s string) (SelectorSpec, error) {
	spec := SelectorSpec{Kind: SelectorKind(strings.ToLower(strings.TrimSpace(s)))}
	if err := spec.validate(); err != nil {
		return SelectorSpec{}, err
	}
	return spec, nil
}

// validate rejects unknown kinds (empty means exhaustive).
func (s SelectorSpec) validate() error {
	switch s.Kind {
	case "", SelectorExhaustive, SelectorGreedy, SelectorBeam, SelectorLPGA:
		return nil
	}
	return fmt.Errorf("core: unknown selector %q (want exhaustive, greedy, beam, or lpga)", s.Kind)
}

// normalized fills defaults: exhaustive kind, beam width 8, seed 1.
func (s SelectorSpec) normalized() SelectorSpec {
	if s.Kind == "" {
		s.Kind = SelectorExhaustive
	}
	if s.BeamWidth <= 0 {
		s.BeamWidth = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// newSelector binds the configured selector for one data-parallel round.
// The exhaustive selector keeps the legacy re-querying path when the
// per-round snapshot is off (the ablation candidatesDirect preserves);
// the heuristic selectors read whatever information view they are given.
func newSelector(spec SelectorSpec, rs *resourceSelector, maxSets int, snapshotted bool) ResourceSelector {
	spec = spec.normalized()
	switch spec.Kind {
	case SelectorGreedy:
		return &greedySelector{rs: rs, maxSets: maxSets}
	case SelectorBeam:
		return &beamSelector{rs: rs, width: spec.BeamWidth, maxSets: maxSets}
	case SelectorLPGA:
		return &lpgaSelector{rs: rs, seed: spec.Seed, maxSets: maxSets}
	default:
		return &exhaustiveSelector{rs: rs, maxSets: maxSets, direct: !snapshotted}
	}
}
