package core

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

// selectorFixture builds a two-site topology: two fast hosts on a fast
// local link, one fast host behind a slow WAN.
func selectorFixture(t *testing.T) (*resourceSelector, *grid.Topology) {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "near1", Arch: "ws", Site: "here", Speed: 40, MemoryMB: 256})
	tp.AddHost(grid.HostSpec{Name: "near2", Arch: "ws", Site: "here", Speed: 40, MemoryMB: 256})
	tp.AddHost(grid.HostSpec{Name: "far1", Arch: "ws", Site: "there", Speed: 40, MemoryMB: 256})
	lan := tp.AddLink(grid.LinkSpec{Name: "lan", Latency: 0.0005, Bandwidth: 12, Dedicated: true})
	wan := tp.AddLink(grid.LinkSpec{Name: "wan", Latency: 0.05, Bandwidth: 0.4, Dedicated: true})
	tp.AddRouter("gw")
	tp.Attach("near1", lan)
	tp.Attach("near2", lan)
	tp.Attach("gw", lan)
	tp.Attach("gw", wan)
	tp.Attach("far1", wan)
	tp.Finalize()
	return &resourceSelector{tp: tp, info: OracleInformation(tp)}, tp
}

func TestDesirabilityPenalizesDistance(t *testing.T) {
	rs, tp := selectorFixture(t)
	pool := tp.Hosts()
	var near, far float64
	for _, h := range pool {
		d := rs.desirability(h, pool)
		switch h.Name {
		case "near1":
			near = d
		case "far1":
			far = d
		}
	}
	// Same speed, same availability; the far host's slow WAN must make it
	// less desirable to a border-exchanging application.
	if far >= near {
		t.Fatalf("far host desirability %v >= near %v", far, near)
	}
}

func TestOrderChainKeepsCloseHostsAdjacent(t *testing.T) {
	rs, tp := selectorFixture(t)
	chain := rs.orderChain(tp.Hosts())
	if len(chain) != 3 {
		t.Fatalf("chain %v", chain)
	}
	// The far host must sit at an end of the chain, never between the two
	// near hosts.
	if chain[1].Name == "far1" {
		t.Fatalf("far host placed mid-chain: %v %v %v", chain[0].Name, chain[1].Name, chain[2].Name)
	}
}

func TestOrderChainDeterministic(t *testing.T) {
	rs, tp := selectorFixture(t)
	a := rs.orderChain(tp.Hosts())
	b := rs.orderChain(tp.Hosts())
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("chain order not deterministic: %v vs %v", a, b)
		}
	}
}

func TestCandidatesExhaustiveSmallPool(t *testing.T) {
	rs, tp := selectorFixture(t)
	sets := rs.candidates(tp.Hosts(), 0)
	if len(sets) != 7 { // 2^3 - 1
		t.Fatalf("candidate sets %d, want 7", len(sets))
	}
	// Every set is non-empty and contains distinct hosts.
	for _, set := range sets {
		seen := map[string]bool{}
		for _, h := range set {
			if seen[h.Name] {
				t.Fatalf("duplicate host in set: %v", set)
			}
			seen[h.Name] = true
		}
		if len(set) == 0 {
			t.Fatal("empty candidate set")
		}
	}
}

func TestCandidatesCap(t *testing.T) {
	rs, tp := selectorFixture(t)
	sets := rs.candidates(tp.Hosts(), 2)
	if len(sets) != 2 {
		t.Fatalf("capped candidates %d, want 2", len(sets))
	}
}

func TestCandidatesPrefixLargePool(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{Clusters: 4, PerCluster: 4, Seed: 1, Quiet: true})
	rs := &resourceSelector{tp: tp, info: OracleInformation(tp)}
	sets := rs.candidates(tp.Hosts(), 0)
	if len(sets) != 16 {
		t.Fatalf("16-host pool candidates %d, want 16 prefixes", len(sets))
	}
	for k, set := range sets {
		if len(set) != k+1 {
			t.Fatalf("prefix %d has %d hosts", k, len(set))
		}
	}
}

// TestCandidatesMatchLegacyConstruction pins the optimized exhaustive
// enumeration (precomputed eff/cost matrices, bitmask subsets, index-based
// chaining) to candidatesDirect — the legacy per-set-query construction —
// on both a hand-built two-site topology and a loaded cluster-of-clusters
// pool. This equivalence is what lets WithInfoSnapshot(false) serve as a
// bit-identical sequential reference for the parallel engine.
func TestCandidatesMatchLegacyConstruction(t *testing.T) {
	check := func(name string, rs *resourceSelector, pool []*grid.Host, maxSets int) {
		t.Helper()
		got := rs.candidates(pool, maxSets)
		want := rs.candidatesDirect(pool, maxSets)
		if len(got) != len(want) {
			t.Fatalf("%s: %d sets, want %d", name, len(got), len(want))
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("%s: set %d has %d hosts, want %d", name, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j].Name != want[i][j].Name {
					t.Fatalf("%s: set %d diverged at %d: %s vs %s", name, i, j, got[i][j].Name, want[i][j].Name)
				}
			}
		}
	}
	rs, tp := selectorFixture(t)
	check("two-site", rs, tp.Hosts(), 0)
	check("two-site-capped", rs, tp.Hosts(), 3)

	eng := sim.NewEngine()
	ctp := grid.ClusterOfClusters(eng, grid.ClusterOptions{Clusters: 3, PerCluster: 3, Seed: 7, Quiet: true})
	crs := &resourceSelector{tp: ctp, info: OracleInformation(ctp)}
	check("cluster-9host", crs, ctp.Hosts(), 0)
}

func TestCandidatesPreferLoadedPoolShift(t *testing.T) {
	// A loaded near host should rank below an equally fast idle one.
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "busy", Speed: 40, MemoryMB: 256, Load: load.Constant(4)})
	tp.AddHost(grid.HostSpec{Name: "idle", Speed: 40, MemoryMB: 256})
	l := tp.AddLink(grid.LinkSpec{Name: "lan", Latency: 0.001, Bandwidth: 10, Dedicated: true})
	tp.Attach("busy", l)
	tp.Attach("idle", l)
	tp.Finalize()
	rs := &resourceSelector{tp: tp, info: OracleInformation(tp)}
	sets := rs.candidates(tp.Hosts(), 1)
	// The single best set is the full pool (most aggregate desirability);
	// within it the chain starts at the faster *deliverable* host.
	if sets[0][0].Name != "idle" {
		t.Fatalf("chain starts at %s, want idle", sets[0][0].Name)
	}
}
