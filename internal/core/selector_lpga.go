package core

import (
	"iter"
	"math/bits"
	"math/rand"
	"sort"

	"apples/internal/grid"
)

// LP/GA budget: population and generation counts sized so the selector
// explores a few hundred memberships — well under the exhaustive 2^12
// wall it replaces, well over what the gap bounds need.
const (
	lpgaPopulation  = 24
	lpgaGenerations = 16
	lpgaElite       = 2
	// lpgaGeneHosts caps the genome: the GA refines membership among the
	// top-ranked hosts (a 64-bit mask), while the LP threshold sweep
	// still yields prefixes of every ladder size over the full pool.
	lpgaGeneHosts = 64
)

// lpgaSelector is the LP-relaxation-seeded genetic selector, after Garg
// et al.'s LP-driven GA for utility-grid meta-scheduling: a continuous
// relaxation of host selection is approximated by sweeping a threshold
// down the desirability ranking (every prefix is priced under the
// surrogate objective and yielded); the fractional solution around the
// best threshold k* then seeds a small GA — probabilistic rounding for
// the initial population, tournament selection, uniform crossover,
// per-bit mutation, elitism — whose every new individual is yielded as
// a candidate. All randomness flows from one seeded PRNG, so equal
// seeds enumerate identical candidate sequences.
type lpgaSelector struct {
	rs      *resourceSelector
	seed    int64
	maxSets int
	truncation
}

// SelectSeq implements ResourceSelector.
func (g *lpgaSelector) SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host] {
	g.truncation = truncation{}
	m := buildSelModel(g.rs, pool)
	return func(yield func([]*grid.Host) bool) {
		if m.n == 0 {
			return
		}
		stopped := false
		yielded := make(map[string]bool)
		emitted := 0
		emit := func(s *selState) bool {
			if stopped || yielded[s.key()] {
				return !stopped
			}
			yielded[s.key()] = true
			if g.maxSets > 0 && emitted >= g.maxSets {
				g.dropped++
				g.capped = true
				return true
			}
			emitted++
			if !yield(m.chain(s.idxs)) {
				stopped = true
			}
			return !stopped
		}

		// LP threshold sweep: price every prefix of the desirability
		// ranking and yield it; the best one fixes the threshold k*.
		prefix := newSelState(m.n)
		next := 0
		bestK, bestF := 1, 0.0
		for _, size := range prefixSizes(m.n) {
			for len(prefix.idxs) < size {
				m.add(prefix, m.rank[next])
				next++
			}
			if f := m.score(prefix); size == 1 || f < bestF {
				bestK, bestF = size, f
			}
			if !emit(prefix.clone()) {
				return
			}
		}

		// Fractional solution: hosts above the threshold are fully in
		// (x=1); below it, membership decays with the desirability ratio
		// to the marginal host — the rounding probabilities for the GA's
		// initial population.
		genes := min(m.n, lpgaGeneHosts)
		x := make([]float64, genes)
		marginal := m.des[m.rank[bestK-1]]
		for p := 0; p < genes; p++ {
			switch {
			case p < bestK:
				x[p] = 1
			case marginal <= 0:
				x[p] = 0.05
			default:
				frac := 0.5 * m.des[m.rank[p]] / marginal
				if frac < 0.05 {
					frac = 0.05
				}
				x[p] = frac
			}
		}

		rng := rand.New(rand.NewSource(g.seed))
		type indiv struct {
			mask uint64
			f    float64
		}
		stateOf := func(mask uint64) *selState {
			s := newSelState(m.n)
			for p := 0; p < genes; p++ {
				if mask&(1<<uint(p)) != 0 {
					m.add(s, m.rank[p])
				}
			}
			return s
		}
		fitness := func(mask uint64) float64 { return m.score(stateOf(mask)) }

		pop := make([]indiv, 0, lpgaPopulation)
		for len(pop) < lpgaPopulation {
			var mask uint64
			for p := 0; p < genes; p++ {
				if rng.Float64() < x[p] {
					mask |= 1 << uint(p)
				}
			}
			if mask == 0 {
				mask = 1
			}
			pop = append(pop, indiv{mask, fitness(mask)})
			if s := stateOf(mask); !emit(s) {
				return
			}
		}
		rankPop := func() {
			sort.SliceStable(pop, func(a, b int) bool {
				if pop[a].f != pop[b].f {
					return pop[a].f < pop[b].f
				}
				return pop[a].mask < pop[b].mask
			})
		}
		tournament := func() indiv {
			a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
			if b.f < a.f {
				return b
			}
			return a
		}
		for gen := 0; gen < lpgaGenerations; gen++ {
			rankPop()
			nextPop := append([]indiv(nil), pop[:lpgaElite]...)
			for len(nextPop) < lpgaPopulation {
				p1, p2 := tournament(), tournament()
				var cross uint64
				for p := 0; p < genes; p++ {
					if rng.Float64() < 0.5 {
						cross |= 1 << uint(p)
					}
				}
				child := (p1.mask & cross) | (p2.mask &^ cross)
				for p := 0; p < genes; p++ {
					if rng.Float64() < 1.0/float64(genes) {
						child ^= 1 << uint(p)
					}
				}
				if child == 0 {
					child = p1.mask | p2.mask
					if child == 0 {
						child = 1
					}
				}
				nextPop = append(nextPop, indiv{child, fitness(child)})
				if bits.OnesCount64(child) > 0 {
					if s := stateOf(child); !emit(s) {
						return
					}
				}
			}
			pop = nextPop
		}
	}
}
