package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/nws"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// buildPool constructs a warmed, loaded topology with an NWS for
// determinism tests. clusters == 0 builds the 8-host SDSC/PCL testbed.
func buildPool(t *testing.T, clusters, per int, seed int64) (*grid.Topology, Information) {
	t.Helper()
	eng := sim.NewEngine()
	eng.SetEventLimit(200_000_000)
	var tp *grid.Topology
	if clusters == 0 {
		tp = grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed})
	} else {
		tp = grid.ClusterOfClusters(eng, grid.ClusterOptions{Clusters: clusters, PerCluster: per, Seed: seed})
	}
	svc := nws.NewService(eng, 10)
	svc.WatchTopology(tp)
	if err := eng.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	return tp, NWSInformation(svc, tp)
}

// TestParallelMatchesSequential is the engine's determinism contract:
// across seeds and pool sizes, parallel snapshotted evaluation must
// produce a Schedule bit-identical to the legacy sequential loop that
// queries the information source directly.
func TestParallelMatchesSequential(t *testing.T) {
	configs := []struct {
		name          string
		clusters, per int
	}{
		{"sdscpcl-8host", 0, 0},
		{"cluster-12host", 3, 4},
		{"cluster-24host", 6, 4},
	}
	for _, cfg := range configs {
		for _, seed := range []int64{1, 7, 23} {
			tp, info := buildPool(t, cfg.clusters, cfg.per, seed)
			tpl := hat.Jacobi2D(600, 10)

			seq, err := NewAgent(tp, tpl, &userspec.Spec{}, info,
				WithParallelism(1), WithInfoSnapshot(false))
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewAgent(tp, tpl, &userspec.Spec{}, info, WithParallelism(8))
			if err != nil {
				t.Fatal(err)
			}

			want, err := seq.Schedule(600)
			if err != nil {
				t.Fatalf("%s seed %d sequential: %v", cfg.name, seed, err)
			}
			got, err := par.Schedule(600)
			if err != nil {
				t.Fatalf("%s seed %d parallel: %v", cfg.name, seed, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s seed %d: parallel schedule diverged\nseq: %v\npar: %v", cfg.name, seed, want, got)
			}
		}
	}
}

// TestParallelExplainedMatchesSequential extends the contract to the
// explain surface: the ranked candidate slices must agree exactly.
func TestParallelExplainedMatchesSequential(t *testing.T) {
	tp, info := buildPool(t, 3, 4, 5)
	tpl := hat.Jacobi2D(500, 10)
	seq, err := NewAgent(tp, tpl, &userspec.Spec{}, info, WithParallelism(1), WithInfoSnapshot(false))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewAgent(tp, tpl, &userspec.Spec{}, info, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := seq.ScheduleExplained(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := par.ScheduleExplained(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("explained candidates diverged: %d vs %d entries", len(want), len(got))
	}
}

// TestPruningPreservesSelection is the pruning property: across seeds,
// enabling pruning must never change the selected schedule — only
// CandidatesPlanned may shrink (pruned sets are never planned).
func TestPruningPreservesSelection(t *testing.T) {
	for _, seed := range []int64{2, 11, 29, 47} {
		tp, info := buildPool(t, 3, 4, seed)
		tpl := hat.Jacobi2D(800, 20)
		plain, err := NewAgent(tp, tpl, &userspec.Spec{Metric: userspec.MinExecutionTime}, info)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := NewAgent(tp, tpl, &userspec.Spec{Metric: userspec.MinExecutionTime}, info,
			WithPruning(true))
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Schedule(800)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pruned.Schedule(800)
		if err != nil {
			t.Fatal(err)
		}
		if got.CandidatesPlanned > want.CandidatesPlanned {
			t.Fatalf("seed %d: pruning planned more sets (%d) than exhaustive (%d)",
				seed, got.CandidatesPlanned, want.CandidatesPlanned)
		}
		// Everything except the planned count must be identical.
		got.CandidatesPlanned = want.CandidatesPlanned
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: pruning changed the selection\nplain:  %v\npruned: %v", seed, want, got)
		}
	}
}

// TestConcurrentScheduleCalls drives the worker pool from multiple
// goroutines at once (run with -race): an agent must support concurrent
// scheduling rounds, and each must reach the same decision.
func TestConcurrentScheduleCalls(t *testing.T) {
	tp, info := buildPool(t, 3, 4, 3)
	a, err := NewAgent(tp, hat.Jacobi2D(500, 10), &userspec.Spec{}, info,
		WithParallelism(8), WithPruning(true))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := a.Schedule(500)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	scheds := make([]*Schedule, 6)
	errs := make([]error, 6)
	for i := range scheds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scheds[i], errs[i] = a.Schedule(500)
		}(i)
	}
	wg.Wait()
	for i, s := range scheds {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(s.Hosts, ref.Hosts) || s.PredictedTotal != ref.PredictedTotal {
			t.Fatalf("concurrent round %d diverged: %v vs %v", i, s, ref)
		}
	}
}

// TestAgentOptions covers the functional-options surface and the
// deprecated SpillFactor field's continued operation.
func TestAgentOptions(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	a, err := NewAgent(tp, hat.Jacobi2D(500, 10), &userspec.Spec{}, OracleInformation(tp),
		WithSpillFactor(40), WithParallelism(2), WithPruning(true))
	if err != nil {
		t.Fatal(err)
	}
	if a.SpillFactor != 40 {
		t.Fatalf("WithSpillFactor not applied: %v", a.SpillFactor)
	}
	if a.coord.parallelism != 2 || !a.coord.pruning || !a.coord.snapshot {
		t.Fatalf("options not applied: parallelism=%d pruning=%v snapshot=%v",
			a.coord.parallelism, a.coord.pruning, a.coord.snapshot)
	}
	// Legacy field write still takes effect (deprecated but supported).
	b, err := NewAgent(tp, hat.Jacobi2D(500, 10), &userspec.Spec{}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	if b.SpillFactor != 25 {
		t.Fatalf("default spill factor %v, want 25", b.SpillFactor)
	}
	b.SpillFactor = 40
	if _, err := b.Schedule(500); err != nil {
		t.Fatal(err)
	}
}

// TestSentinelErrors asserts the typed error surface: callers use
// errors.Is, never string matching.
func TestSentinelErrors(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})

	// ErrNoFeasibleHosts: the spec excludes everything.
	a, err := NewAgent(tp, hat.Jacobi2D(500, 10),
		&userspec.Spec{Accessible: []string{"no-such-host"}}, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Schedule(500); !errors.Is(err, ErrNoFeasibleHosts) {
		t.Fatalf("want ErrNoFeasibleHosts, got %v", err)
	}

	// ErrBadTemplate: a task-parallel template handed to the Jacobi
	// blueprint.
	if _, err := NewAgent(tp, hat.React3D(100), &userspec.Spec{}, OracleInformation(tp)); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("want ErrBadTemplate, got %v", err)
	}
	// ...and the Jacobi template handed to the pipeline blueprint.
	if _, err := NewPipelineAgent(tp, hat.Jacobi2D(500, 10), &userspec.Spec{}, OracleInformation(tp),
		react.Options{}); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("want ErrBadTemplate from pipeline, got %v", err)
	}

	// ErrNoFeasiblePlan: every host in the pool has zero deliverable
	// speed, so no candidate set can produce a plan.
	eng2 := sim.NewEngine()
	dead := grid.NewTopology(eng2)
	dead.AddHost(grid.HostSpec{Name: "dead1", Speed: 0, MemoryMB: 256})
	dead.AddHost(grid.HostSpec{Name: "dead2", Speed: 0, MemoryMB: 256})
	l := dead.AddLink(grid.LinkSpec{Name: "lan", Latency: 0.001, Bandwidth: 10, Dedicated: true})
	dead.Attach("dead1", l)
	dead.Attach("dead2", l)
	dead.Finalize()
	b, err := NewAgent(dead, hat.Jacobi2D(500, 10), &userspec.Spec{}, OracleInformation(dead))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Schedule(500); !errors.Is(err, ErrNoFeasiblePlan) {
		t.Fatalf("want ErrNoFeasiblePlan, got %v", err)
	}
}
