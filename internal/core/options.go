package core

// AgentOption configures an Agent at construction:
//
//	a, err := core.NewAgent(tp, tpl, spec, info,
//		core.WithParallelism(8), core.WithPruning(true))
type AgentOption func(*Agent)

// WithSpillFactor sets the estimator's out-of-memory penalty multiplier
// (default 25, matching jacobi.Config). It replaces writing the exported
// Agent.SpillFactor field.
func WithSpillFactor(f float64) AgentOption {
	return func(a *Agent) {
		if f > 0 {
			a.SpillFactor = f
		}
	}
}

// WithParallelism bounds the candidate-evaluation worker pool. n <= 0
// (the default) sizes the pool to GOMAXPROCS; n == 1 forces sequential
// evaluation. Regardless of n, the chosen schedule is bit-identical to
// the sequential path: results are reduced by (score, candidate index),
// so goroutine interleaving cannot change the decision.
func WithParallelism(n int) AgentOption {
	return func(a *Agent) { a.parallelism = n }
}

// WithPruning enables best-so-far pruning: workers share the incumbent
// best score through an atomic and skip candidate sets whose compute-time
// lower bound already exceeds it, saving the plan + estimate work. The
// bound is conservative, so pruning never changes the selected schedule —
// only Schedule.CandidatesPlanned may be lower (pruned sets are never
// planned, and under parallel evaluation how many prune depends on
// timing). Pruning applies to the MinExecutionTime metric; other metrics
// evaluate every set.
func WithPruning(on bool) AgentOption {
	return func(a *Agent) { a.pruning = on }
}

// WithInfoSnapshot toggles the per-round information snapshot (default
// on). Disabling it restores the legacy behavior of querying the
// Information source for every candidate set — useful only for ablation
// and benchmarking the snapshot's effect; it also forces sequential
// evaluation, since parallel workers may only read the immutable
// snapshot.
func WithInfoSnapshot(on bool) AgentOption {
	return func(a *Agent) { a.snapshot = on }
}
