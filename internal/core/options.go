package core

import (
	"sync/atomic"

	"apples/internal/obs"
)

// coordConfig is the construction-time target of AgentOption: the
// Coordinator's evaluation-engine settings plus the estimator knobs that
// only some blueprints consume (the pipeline blueprint has no memory
// model, so it ignores spillFactor).
type coordConfig struct {
	Coordinator
	// spillFactor, when > 0, overrides the Jacobi estimator's
	// out-of-memory penalty multiplier.
	spillFactor float64
}

// newCoordConfig returns the default configuration over an information
// source: per-round snapshotting on, GOMAXPROCS worker pool, no pruning.
func newCoordConfig(info Information) coordConfig {
	return coordConfig{Coordinator: Coordinator{info: info, snapshot: true, rounds: new(atomic.Uint64)}}
}

// AgentOption configures a blueprint agent's Coordinator at construction.
// The same options apply to every blueprint sharing the coordinator —
// NewAgent, NewPipelineAgent, and NewCoordinator all accept them:
//
//	a, err := core.NewAgent(tp, tpl, spec, info,
//		core.WithParallelism(8), core.WithPruning(true))
type AgentOption func(*coordConfig)

// WithSpillFactor sets the estimator's out-of-memory penalty multiplier
// (default 25, matching jacobi.Config). It replaces writing the exported
// Agent.SpillFactor field; the pipeline blueprint, which has no spill
// model, ignores it.
func WithSpillFactor(f float64) AgentOption {
	return func(c *coordConfig) {
		if f > 0 {
			c.spillFactor = f
		}
	}
}

// WithParallelism bounds the candidate-evaluation worker pool. n <= 0
// (the default) sizes the pool to GOMAXPROCS; n == 1 forces sequential
// evaluation. Regardless of n, the chosen schedule is bit-identical to
// the sequential path: results are reduced by (score, candidate index),
// so goroutine interleaving cannot change the decision.
func WithParallelism(n int) AgentOption {
	return func(c *coordConfig) { c.parallelism = n }
}

// WithPruning enables best-so-far pruning: workers share the incumbent
// best score through an atomic and skip candidate sets whose lower bound
// already exceeds it, saving the plan + estimate work. The bound is
// conservative, so pruning never changes the selected schedule — only
// Schedule.CandidatesPlanned may be lower (pruned sets are never planned,
// and under parallel evaluation how many prune depends on timing).
// Pruning applies to rounds that supply a sound bound (the Jacobi
// blueprint under the MinExecutionTime metric); other rounds evaluate
// every set.
func WithPruning(on bool) AgentOption {
	return func(c *coordConfig) { c.pruning = on }
}

// WithInfoSnapshot toggles the per-round information snapshot (default
// on). Disabling it restores the legacy behavior of querying the
// Information source for every candidate set — useful only for ablation
// and benchmarking the snapshot's effect; it also forces sequential
// evaluation, since parallel workers may only read the immutable
// snapshot.
func WithInfoSnapshot(on bool) AgentOption {
	return func(c *coordConfig) { c.snapshot = on }
}

// WithSelector picks the Resource Selector strategy the blueprint
// agents bind each scheduling round: exhaustive subsets (the default,
// faithful to the paper but walled at 2^pool), or one of the heuristic
// family — greedy marginal gain, width-W beam search, LP-seeded GA —
// that scales candidate enumeration to 100–4096-host grids. Unknown
// kinds fail agent construction. Every heuristic is deterministic for a
// fixed SelectorSpec, so scheduling stays reproducible.
func WithSelector(spec SelectorSpec) AgentOption {
	return func(c *coordConfig) { c.selector = spec }
}

// WithTracer attaches a decision-trace sink to the Coordinator: every
// scheduling round emits structured events for the snapshot built, each
// candidate evaluated/pruned/rejected, and the winner selected, plus
// reschedule and wait-or-run verdicts. The tracer must be safe for
// concurrent Emit calls (parallel workers trace from multiple
// goroutines; obs.JSONLTracer and obs.Collector both are). nil leaves
// tracing off — the default, costing one pointer check per site.
func WithTracer(t obs.Tracer) AgentOption {
	return func(c *coordConfig) { c.tracer = t }
}

// WithStageTiming attaches a stage timer to the Coordinator: every
// scheduling round records per-stage wall-time spans — snapshot build,
// resource selection, the plan+estimate fan-out, and the reduce/winner
// step, plus actuation in Run — into the timer's
// `sched_stage_seconds{stage="..."}` histograms. A timer built with a
// tracer additionally emits each span as an EvSpan trace event on
// close. nil leaves stage timing off (the default: one pointer check
// per stage).
func WithStageTiming(st *obs.StageTimer) AgentOption {
	return func(c *coordConfig) { c.stages = st }
}

// WithMetrics registers the Coordinator's round metrics in the given
// registry — round and snapshot-build latency histograms plus counters
// for rounds run and candidates evaluated/pruned/infeasible (the
// sched_* metric names in package obs). Handles are resolved here, once, so the
// instrumented round performs only atomic updates; nil leaves metrics
// off.
func WithMetrics(m *obs.Metrics) AgentOption {
	return func(c *coordConfig) {
		if m == nil {
			c.met = nil
			return
		}
		c.met = &roundMetrics{
			rounds:          m.Counter(obs.MetricRounds),
			evaluated:       m.Counter(obs.MetricCandidatesEvaluated),
			pruned:          m.Counter(obs.MetricCandidatesPruned),
			infeasible:      m.Counter(obs.MetricCandidatesInfeasible),
			truncated:       m.Counter(obs.MetricSelectorTruncated),
			deltaRatio:      m.Gauge(obs.MetricRoundDeltaRatio),
			rescored:        m.Counter(obs.MetricCandidatesRescored),
			roundLatency:    m.Histogram(obs.MetricRoundSeconds, nil),
			snapshotLatency: m.Histogram(obs.MetricSnapshotSeconds, nil),
			reg:             m,
		}
	}
}
