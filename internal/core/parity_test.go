package core

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// This file pins the Coordinator refactor to the pre-refactor behavior:
// legacyAgentSchedule and legacyPipelineSchedule are line-for-line
// transcriptions of the private evaluate loops Agent and PipelineAgent
// had before the generic Coordinator absorbed them. The differential
// tests below must keep both refactored agents bit-identical to these
// oracles across seeds, pool sizes, worker-pool widths, and pruning
// settings — run them under -race to also exercise the parallel path.

// legacyAgentSchedule is the pre-Coordinator sequential Jacobi round:
// snapshot, enumerate, plan+estimate in order, reduce by (score, index).
func legacyAgentSchedule(tp *grid.Topology, tpl *hat.Template, spec *userspec.Spec, baseInfo Information, spillFactor float64, n int) (*Schedule, []Candidate, error) {
	pool := spec.Filter(tp.Hosts())
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("no hosts")
	}
	names := make([]string, len(pool))
	for i, h := range pool {
		names[i] = h.Name
	}
	info := SnapshotInformation(baseInfo, names)

	rs := &resourceSelector{tp: tp, info: info}
	pl := &planner{tp: tp, tpl: tpl, info: info}
	es := newEstimator(tp, spec, tpl.Tasks[0].BytesPerUnit, spillFactor, max(tpl.Iterations, 1))
	sets := rs.candidates(pool, spec.MaxResourceSets)

	solo := math.Inf(1)
	if spec.Metric == userspec.MaxSpeedup {
		for _, h := range pool {
			p, costs, _, err := pl.plan(n, []*grid.Host{h})
			if err != nil {
				continue
			}
			if t := es.iterTime(p, costs) * float64(es.iterations); t < solo {
				solo = t
			}
		}
	}

	var cands []Candidate
	for _, set := range sets {
		p, costs, _, err := pl.plan(n, set)
		if err != nil {
			continue
		}
		iterT := es.iterTime(p, costs)
		hosts := make([]string, len(set))
		for j, h := range set {
			hosts[j] = h.Name
		}
		cands = append(cands, Candidate{
			Hosts:             hosts,
			PredictedIterTime: iterT,
			PredictedTotal:    iterT * float64(es.iterations),
			Score:             es.score(iterT, p, solo),
			Placement:         p,
		})
	}

	bestIdx, bestSc := -1, math.Inf(1)
	for i, c := range cands {
		if c.Score < bestSc {
			bestIdx, bestSc = i, c.Score
		}
	}
	if bestIdx < 0 {
		return nil, nil, fmt.Errorf("no feasible plan")
	}
	c := cands[bestIdx]
	s := &Schedule{
		Placement:            c.Placement,
		PredictedIterTime:    c.PredictedIterTime,
		PredictedTotal:       c.PredictedTotal,
		Hosts:                append([]string(nil), c.Hosts...),
		InfoSource:           baseInfo.Source(),
		CandidatesConsidered: len(sets),
		CandidatesPlanned:    len(cands),
	}
	sort.SliceStable(s.Hosts, func(i, j int) bool {
		return s.Placement.Fraction(s.Hosts[i]) > s.Placement.Fraction(s.Hosts[j])
	})
	return s, cands, nil
}

// legacyPipelineSchedule is the pre-Coordinator sequential pipeline
// round: snapshot, score every single machine then every ordered pair
// (with the literal 0.01 availability clamps the old code carried), pick
// the minimum score with earliest-index ties.
func legacyPipelineSchedule(tp *grid.Topology, tpl *hat.Template, spec *userspec.Spec, baseInfo Information, opt react.Options) (*PipelineSchedule, []Candidate, error) {
	pool := spec.Filter(tp.Hosts())
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("no hosts")
	}
	names := make([]string, len(pool))
	for i, h := range pool {
		names[i] = h.Name
	}
	info := SnapshotInformation(baseInfo, names)

	var cands []Candidate
	for _, h := range pool {
		t, err := react.PredictSingleSite(tp, tpl, h.Name, opt)
		if err != nil {
			continue
		}
		avail := info.Availability(h.Name)
		if avail <= 0 {
			avail = 0.01
		}
		t /= avail
		cands = append(cands, Candidate{Hosts: []string{h.Name}, PredictedTotal: t, Score: t})
	}

	minU, maxU := tpl.PipelineUnitMin, tpl.PipelineUnitMax
	if minU == 0 {
		minU = 1
	}
	if maxU < minU {
		maxU = minU
	}
	for _, p := range pool {
		for _, c := range pool {
			if p.Name == c.Name {
				continue
			}
			m, err := react.NewModel(tp, tpl, p.Name, c.Name, opt)
			if err != nil {
				continue
			}
			availP := info.Availability(p.Name)
			availC := info.Availability(c.Name)
			if availP <= 0 {
				availP = 0.01
			}
			if availC <= 0 {
				availC = 0.01
			}
			m.TL /= availP
			m.TD /= availC
			if bw := info.RouteBandwidth(p.Name, c.Name); bw > 0 && bw < 1e29 {
				var comm hat.Comm
				for _, cm := range tpl.Comms {
					if cm.Pattern == hat.PipelineFlow {
						comm = cm
					}
				}
				m.SecPerUnitXfer = comm.BytesPerUnit / 1e6 / bw
			}
			m.Latency = info.RouteLatency(p.Name, c.Name)
			u, t := m.BestUnit(minU, maxU)
			cands = append(cands, Candidate{Hosts: []string{p.Name, c.Name}, PredictedTotal: t, Score: t, Unit: u})
		}
	}

	bestIdx, bestSc := -1, math.Inf(1)
	for i, c := range cands {
		if c.Score < bestSc {
			bestIdx, bestSc = i, c.Score
		}
	}
	if bestIdx < 0 {
		return nil, nil, fmt.Errorf("no feasible mapping")
	}
	c := cands[bestIdx]
	s := &PipelineSchedule{Predicted: c.Score, CandidatesConsidered: len(cands)}
	if len(c.Hosts) == 1 {
		s.SingleSite = c.Hosts[0]
		s.Producer, s.Consumer = c.Hosts[0], c.Hosts[0]
	} else {
		s.Producer, s.Consumer = c.Hosts[0], c.Hosts[1]
		s.Unit = c.Unit
	}
	return s, cands, nil
}

// TestAgentParityWithLegacy pins the refactored Agent to the pre-refactor
// oracle across seeds, pool sizes, worker widths, and pruning settings.
func TestAgentParityWithLegacy(t *testing.T) {
	pools := []struct {
		name          string
		clusters, per int
	}{
		{"sdscpcl-8host", 0, 0},
		{"cluster-12host", 3, 4},
	}
	for _, pc := range pools {
		for _, seed := range []int64{3, 11} {
			tp, info := buildPool(t, pc.clusters, pc.per, seed)
			tpl := hat.Jacobi2D(600, 10)
			spec := &userspec.Spec{}

			want, wantCands, err := legacyAgentSchedule(tp, tpl, spec, info, 25, 600)
			if err != nil {
				t.Fatalf("%s seed %d legacy: %v", pc.name, seed, err)
			}

			for _, workers := range []int{1, 2, 8} {
				for _, prune := range []bool{false, true} {
					name := fmt.Sprintf("%s/seed%d/w%d/prune=%v", pc.name, seed, workers, prune)
					a, err := NewAgent(tp, tpl, spec, info,
						WithParallelism(workers), WithPruning(prune))
					if err != nil {
						t.Fatal(err)
					}
					got, gotCands, err := a.ScheduleExplained(600, 0)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					// Pruning legitimately skips planning dominated sets,
					// so only the planned count may differ.
					norm := *got
					if prune {
						norm.CandidatesPlanned = want.CandidatesPlanned
					}
					if !reflect.DeepEqual(want, &norm) {
						t.Fatalf("%s: schedule diverged from legacy\nlegacy: %v\ngot:    %v", name, want, got)
					}
					if !prune && !reflect.DeepEqual(rankCandidates(wantCands, 0), gotCands) {
						t.Fatalf("%s: candidate ranking diverged from legacy", name)
					}
				}
			}
		}
	}
}

// TestPipelineParityWithLegacy pins the refactored PipelineAgent to the
// pre-refactor oracle, on both the paper's CASA pair and a larger loaded
// pool, across worker widths.
func TestPipelineParityWithLegacy(t *testing.T) {
	type poolFn func(t *testing.T) (*grid.Topology, Information)
	pools := []struct {
		name  string
		build poolFn
	}{
		{"casa", func(t *testing.T) (*grid.Topology, Information) {
			tp := grid.CASA(sim.NewEngine())
			return tp, OracleInformation(tp)
		}},
		{"cluster-12host-seed3", func(t *testing.T) (*grid.Topology, Information) {
			return buildPool(t, 3, 4, 3)
		}},
		{"cluster-12host-seed11", func(t *testing.T) (*grid.Topology, Information) {
			return buildPool(t, 3, 4, 11)
		}},
	}
	for _, pc := range pools {
		tp, info := pc.build(t)
		tpl := hat.React3D(100)
		spec := &userspec.Spec{}
		opt := react.Options{}

		want, wantCands, err := legacyPipelineSchedule(tp, tpl, spec, info, opt)
		if err != nil {
			t.Fatalf("%s legacy: %v", pc.name, err)
		}

		for _, workers := range []int{1, 2, 8} {
			name := fmt.Sprintf("%s/w%d", pc.name, workers)
			a, err := NewPipelineAgent(tp, tpl, spec, info, opt, WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			got, gotCands, err := a.ScheduleExplained(0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: schedule diverged from legacy\nlegacy: %v\ngot:    %v", name, want, got)
			}
			if !reflect.DeepEqual(rankCandidates(wantCands, 0), gotCands) {
				t.Fatalf("%s: candidate ranking diverged from legacy", name)
			}
		}
	}
}
