//go:build !race

package core

// raceEnabled relaxes wall-clock budgets when the race detector's
// instrumentation (typically 5-10x slowdown) is active.
const raceEnabled = false
