package core

import "math/bits"

// Chunked bitmask helpers over a frozen pool ordering. A mask is a
// []uint64 of maskWords(n) words; bit i corresponds to the pool host at
// frozen index i. Masks with ≤64 hosts are a single word, so the common
// pools stay one register wide; larger grids chunk transparently. All
// helpers are allocation-free — callers own the backing slices.

// maskWords returns the number of 64-bit words needed for n bits.
func maskWords(n int) int { return (n + 63) / 64 }

// maskSet sets bit i.
func maskSet(m []uint64, i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// maskTest reports whether bit i is set.
func maskTest(m []uint64, i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// maskClear zeroes every word.
func maskClear(m []uint64) {
	for i := range m {
		m[i] = 0
	}
}

// maskFill sets the low n bits and clears the rest.
func maskFill(m []uint64, n int) {
	maskClear(m)
	for i := 0; i < n>>6; i++ {
		m[i] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		m[n>>6] = (1 << r) - 1
	}
}

// maskOr folds src into dst (dst |= src).
func maskOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// masksIntersect reports whether a and b share any set bit.
func masksIntersect(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// maskAny reports whether any bit is set.
func maskAny(m []uint64) bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// maskCount returns the population count.
func maskCount(m []uint64) int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}
