package core

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"apples/internal/grid"
)

// selExactPairHosts bounds the exact pairwise transfer-cost matrix the
// heuristic selectors precompute. Up to this pool size (which covers
// every pool the exhaustive selector can also handle, so the
// optimality-gap tests compare like for like) chains and surrogate
// scores use exact pair costs; larger pools estimate each host's
// network distance against a fixed sample of the pool instead, keeping
// model construction O(pool · samples) rather than O(pool²).
const selExactPairHosts = 64

// selDistSamples is how many sample hosts a large pool's distance
// estimate averages over. Eight evenly spaced hosts straddle every site
// of the cluster topologies the sampled mode exists for; doubling it
// measurably slows 2048-host rounds without moving the ranking.
const selDistSamples = 8

// selModel is the shared precompute behind the heuristic selectors:
// per-host deliverable speed, network distance, desirability, and (for
// small pools) the exact pairwise transfer costs — resolved once per
// round in SelectSeq, so the per-candidate work inside the sequence is
// arithmetic only. It also owns chain layout: the same greedy
// nearest-neighbor strip order as orderChain when exact costs exist,
// and a site-aware O(k log k) approximation beyond.
type selModel struct {
	rs   *resourceSelector
	pool []*grid.Host
	n    int

	eff  []float64   // deliverable speed per pool index
	dist []float64   // mean network distance per pool index
	des  []float64   // desirability: eff / (1 + dist)
	cost [][]float64 // exact pair costs; nil past selExactPairHosts

	rank     []int // pool indices by desirability desc, name asc
	effOrder []int // pool indices by eff desc, name asc (chain seed order)
	rankPos  []int // inverse of rank: pool index -> ranking position
}

func buildSelModel(rs *resourceSelector, pool []*grid.Host) *selModel {
	n := len(pool)
	m := &selModel{rs: rs, pool: pool, n: n,
		eff: make([]float64, n), dist: make([]float64, n), des: make([]float64, n)}
	for i, h := range pool {
		m.eff[i] = h.Speed * rs.info.Availability(h.Name)
	}
	pairCost := func(a, b *grid.Host) float64 {
		bw := rs.info.RouteBandwidth(a.Name, b.Name)
		if bw <= 0 {
			bw = 1e-6
		}
		return rs.info.RouteLatency(a.Name, b.Name) + 1.0/bw
	}
	if n <= selExactPairHosts {
		m.cost = make([][]float64, n)
		for i := range m.cost {
			m.cost[i] = make([]float64, n)
			for j := range m.cost[i] {
				if i != j {
					m.cost[i][j] = pairCost(pool[i], pool[j])
				}
			}
		}
		for i := range pool {
			if n > 1 {
				d := 0.0
				for j := range pool {
					d += m.cost[i][j]
				}
				m.dist[i] = d / float64(n-1)
			}
		}
	} else {
		// Sampled distances: average transfer cost to a deterministic,
		// evenly spaced subset of the pool.
		stride := (n + selDistSamples - 1) / selDistSamples
		var samples []int
		for s := 0; s < n; s += stride {
			samples = append(samples, s)
		}
		for i := range pool {
			d, k := 0.0, 0
			for _, s := range samples {
				if s == i {
					continue
				}
				d += pairCost(pool[i], pool[s])
				k++
			}
			if k > 0 {
				m.dist[i] = d / float64(k)
			}
		}
	}
	for i := range pool {
		m.des[i] = m.eff[i] / (1 + m.dist[i])
	}
	m.rank = make([]int, n)
	m.effOrder = make([]int, n)
	for i := range m.rank {
		m.rank[i] = i
		m.effOrder[i] = i
	}
	sort.Slice(m.rank, func(a, b int) bool {
		if m.des[m.rank[a]] != m.des[m.rank[b]] {
			return m.des[m.rank[a]] > m.des[m.rank[b]]
		}
		return pool[m.rank[a]].Name < pool[m.rank[b]].Name
	})
	sort.Slice(m.effOrder, func(a, b int) bool {
		if m.eff[m.effOrder[a]] != m.eff[m.effOrder[b]] {
			return m.eff[m.effOrder[a]] > m.eff[m.effOrder[b]]
		}
		return pool[m.effOrder[a]].Name < pool[m.effOrder[b]].Name
	})
	m.rankPos = make([]int, n)
	for pos, idx := range m.rank {
		m.rankPos[idx] = pos
	}
	return m
}

// pairCost is the (possibly approximated) transfer cost between two
// pool indices: the exact matrix value when precomputed, otherwise the
// mean of the two hosts' sampled distances.
func (m *selModel) pairCost(i, j int) float64 {
	if m.cost != nil {
		return m.cost[i][j]
	}
	return (m.dist[i] + m.dist[j]) / 2
}

// surrogate scores a candidate membership from its running sums: the
// seconds one "unit" of work plus one mean border exchange would take on
// the set's aggregate deliverable speed — the same shape as the true
// estimator (compute term shrinks with Σeff, communication term grows
// with pair cost), cheap enough to evaluate per move. Lower is better.
func surrogate(sumEff, sumPair float64, k int) float64 {
	if k <= 0 || sumEff <= 0 {
		return math.Inf(1)
	}
	meanPair := 0.0
	if k >= 2 {
		meanPair = sumPair / float64(k*(k-1)/2)
	}
	return (1 + meanPair) / sumEff
}

// selState is one candidate membership under incremental surrogate
// scoring. Members are tracked as a bitset over pool indices; sums
// update in O(k) exact mode / O(1) sampled mode per add.
type selState struct {
	member  []bool
	idxs    []int // members, ascending pool index
	sumEff  float64
	sumPair float64
}

func newSelState(n int) *selState {
	return &selState{member: make([]bool, n)}
}

func (s *selState) clone() *selState {
	c := &selState{
		member:  append([]bool(nil), s.member...),
		idxs:    append([]int(nil), s.idxs...),
		sumEff:  s.sumEff,
		sumPair: s.sumPair,
	}
	return c
}

// addPairDelta is the surrogate pair-sum increase from adding pool
// index i to the state.
func (m *selModel) addPairDelta(s *selState, i int) float64 {
	if m.cost != nil {
		d := 0.0
		for _, j := range s.idxs {
			d += m.cost[i][j]
		}
		return d
	}
	// Sampled mode: i pairs with each existing member at the mean of
	// their per-host distances.
	return (m.dist[i]*float64(len(s.idxs)) + sumDist(m, s)) / 2
}

func sumDist(m *selModel, s *selState) float64 {
	d := 0.0
	for _, j := range s.idxs {
		d += m.dist[j]
	}
	return d
}

// add inserts pool index i (must not be a member).
func (m *selModel) add(s *selState, i int) {
	s.sumPair += m.addPairDelta(s, i)
	s.sumEff += m.eff[i]
	s.member[i] = true
	pos := sort.SearchInts(s.idxs, i)
	s.idxs = append(s.idxs, 0)
	copy(s.idxs[pos+1:], s.idxs[pos:])
	s.idxs[pos] = i
}

// remove deletes pool index i (must be a member).
func (m *selModel) remove(s *selState, i int) {
	s.member[i] = false
	pos := sort.SearchInts(s.idxs, i)
	s.idxs = append(s.idxs[:pos], s.idxs[pos+1:]...)
	s.sumEff -= m.eff[i]
	s.sumPair -= m.addPairDelta(s, i)
}

// score is the state's current surrogate value.
func (m *selModel) score(s *selState) float64 {
	return surrogate(s.sumEff, s.sumPair, len(s.idxs))
}

// key is the state's canonical membership identity for dedup and
// deterministic tie-breaks.
func (s *selState) key() string {
	var sb strings.Builder
	for _, i := range s.idxs {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteByte(',')
	}
	return sb.String()
}

// chain lays a membership out as a strip chain. With exact pair costs
// it is orderChain's algorithm on the precomputed matrix (greedy
// nearest neighbor by transfer cost, seeded at the highest-eff member,
// name tie-breaks) — identical layout, so heuristic and exhaustive
// candidates over the same membership score identically. On large pools
// it falls back to a site-aware order: hosts grouped by site in order of
// each site's first appearance in the eff ranking, members eff-sorted
// within — O(k log k), keeping same-switch hosts adjacent, which is
// what the nearest-neighbor pass does on cluster topologies anyway.
func (m *selModel) chain(idxs []int) []*grid.Host {
	if len(idxs) == 0 {
		return nil
	}
	if len(idxs) == 1 {
		return []*grid.Host{m.pool[idxs[0]]}
	}
	member := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		member[i] = true
	}
	// Members in eff-seed order (eff desc, name asc).
	ordered := make([]int, 0, len(idxs))
	for _, i := range m.effOrder {
		if member[i] {
			ordered = append(ordered, i)
		}
	}
	if m.cost != nil {
		chain := make([]*grid.Host, 1, len(ordered))
		cur := ordered[0]
		chain[0] = m.pool[cur]
		rem := append([]int(nil), ordered[1:]...)
		for len(rem) > 0 {
			bestI, bestCost := 0, math.Inf(1)
			for i, idx := range rem {
				if c := m.cost[cur][idx]; c < bestCost || (c == bestCost && m.pool[idx].Name < m.pool[rem[bestI]].Name) {
					bestI, bestCost = i, c
				}
			}
			cur = rem[bestI]
			chain = append(chain, m.pool[cur])
			rem = append(rem[:bestI], rem[bestI+1:]...)
		}
		return chain
	}
	siteRank := make(map[string]int)
	for _, i := range ordered {
		site := m.pool[i].Site
		if _, ok := siteRank[site]; !ok {
			siteRank[site] = len(siteRank)
		}
	}
	sort.SliceStable(ordered, func(a, b int) bool {
		return siteRank[m.pool[ordered[a]].Site] < siteRank[m.pool[ordered[b]].Site]
	})
	chain := make([]*grid.Host, len(ordered))
	for i, idx := range ordered {
		chain[i] = m.pool[idx]
	}
	return chain
}

// prefixSizes are the candidate-set sizes every heuristic selector
// yields as desirability-ranking prefixes: every size on small pools,
// 1..32 then a ×1.5 geometric ladder (always ending at the full pool)
// beyond. The evaluation cost of the ladder is its size sum — ×1.5
// keeps that at ~3 pool-lengths, so a 2048-host round stays inside the
// interactive budget while still bracketing the best pool fraction
// within 50%.
func prefixSizes(n int) []int {
	if n <= 64 {
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = i + 1
		}
		return sizes
	}
	var sizes []int
	for k := 1; k <= 32; k++ {
		sizes = append(sizes, k)
	}
	last := 32
	for last < n {
		next := last * 3 / 2
		if next > n {
			next = n
		}
		sizes = append(sizes, next)
		last = next
	}
	return sizes
}

// truncation is the shared cap bookkeeping the heuristic selectors embed
// to satisfy TruncationReporter.
type truncation struct {
	dropped int
	capped  bool
}

// Truncated implements TruncationReporter.
func (t *truncation) Truncated() (int, bool) { return t.dropped, t.capped }
