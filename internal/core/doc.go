// Package core implements the AppLeS agent — the paper's central
// contribution (Section 4). An agent is organized exactly as Figure 1
// describes: a Coordinator drives four subsystems over a shared
// information pool.
//
// The Coordinator itself is generic (coordinator.go): it owns the whole
// scheduling round — per-round information snapshot, bounded parallel
// fan-out over candidate resource sets, optional selection-preserving
// pruning, and the deterministic (score, index) reduce — while each
// application paradigm plugs in its subsystems through a Round. The
// Jacobi2D Agent (agent.go) and the 3D-REACT PipelineAgent (pipeline.go)
// are both thin instantiations of this one blueprint.
//
//   - the Resource Selector (selector.go) filters the metacomputer through
//     the User Specifications and enumerates candidate resource sets,
//     ordered and pruned by an application-specific notion of resource
//     distance;
//   - the Planner (planner.go) computes a resource-dependent schedule for
//     each candidate set — for the Jacobi2D blueprint, a strip
//     decomposition that balances T_i = A_i*P_i + C_i using forecast
//     availability and bandwidth;
//   - the Performance Estimator (estimator.go) evaluates each candidate
//     schedule under the user's own metric, including memory-spill
//     penalties the cost model would otherwise hide;
//   - the Actuator (agent.go) implements the best schedule on the target
//     resource management system — here, the simulated metacomputer.
//
// The information pool is abstracted by the Information interface
// (info.go), with implementations backed by the Network Weather Service,
// by a perfect oracle, and by static compile-time assumptions; the latter
// two exist for the prediction-quality ablation the paper's Section 3.6
// motivates ("a schedule is only as good as the accuracy of its underlying
// predictions").
package core
