package core

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// loadedAgentWithSP2 builds an agent on the loaded testbed where the two
// SP-2 nodes are the dedicated-offer targets.
func loadedAgentWithSP2(t *testing.T) *Agent {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 13, WithSP2: true})
	if err := eng.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	// Exclude the SP-2 nodes from the *shared* pool: the scenario is that
	// they are reachable only through the batch queue.
	a, err := NewAgent(tp, hat.Jacobi2D(2000, 100),
		&userspec.Spec{Excluded: []string{"sp2a", "sp2b"}},
		OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestWaitOrRunShortWaitWaits(t *testing.T) {
	a := loadedAgentWithSP2(t)
	offer := DedicatedOffer{Hosts: []string{"sp2a", "sp2b"}, WaitSec: 5}
	dec, err := a.WaitOrRun(2000, offer)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Wait {
		t.Fatalf("short wait for fast dedicated nodes rejected: shared=%v dedicated=%v",
			dec.SharedPredicted, dec.DedicatedPredicted)
	}
	if dec.Schedule != dec.DedicatedSchedule {
		t.Fatal("decision schedule is not the dedicated one")
	}
	for _, h := range dec.Schedule.Placement.Hosts() {
		if h != "sp2a" && h != "sp2b" {
			t.Fatalf("dedicated schedule uses non-offered host %s", h)
		}
	}
}

func TestWaitOrRunLongWaitRuns(t *testing.T) {
	a := loadedAgentWithSP2(t)
	offer := DedicatedOffer{Hosts: []string{"sp2a", "sp2b"}, WaitSec: 1e6}
	dec, err := a.WaitOrRun(2000, offer)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Wait {
		t.Fatalf("million-second queue wait accepted: shared=%v dedicated=%v",
			dec.SharedPredicted, dec.DedicatedPredicted)
	}
	if dec.Schedule != dec.SharedSchedule {
		t.Fatal("decision schedule is not the shared one")
	}
}

func TestWaitOrRunThresholdConsistency(t *testing.T) {
	// The flip point is exactly where wait + dedicated = shared.
	a := loadedAgentWithSP2(t)
	base, err := a.WaitOrRun(2000, DedicatedOffer{Hosts: []string{"sp2a", "sp2b"}, WaitSec: 0})
	if err != nil {
		t.Fatal(err)
	}
	breakEven := base.SharedPredicted - (base.DedicatedPredicted - 0)
	if breakEven <= 0 {
		t.Skip("dedicated never attractive on this seed")
	}
	just, err := a.WaitOrRun(2000, DedicatedOffer{Hosts: []string{"sp2a", "sp2b"}, WaitSec: breakEven * 0.9})
	if err != nil {
		t.Fatal(err)
	}
	over, err := a.WaitOrRun(2000, DedicatedOffer{Hosts: []string{"sp2a", "sp2b"}, WaitSec: breakEven * 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if !just.Wait || over.Wait {
		t.Fatalf("threshold inconsistent: wait(0.9x)=%v wait(1.1x)=%v", just.Wait, over.Wait)
	}
}

func TestWaitOrRunErrors(t *testing.T) {
	a := loadedAgentWithSP2(t)
	if _, err := a.WaitOrRun(2000, DedicatedOffer{}); err == nil {
		t.Fatal("empty offer accepted")
	}
	if _, err := a.WaitOrRun(2000, DedicatedOffer{Hosts: []string{"sp2a"}, WaitSec: -1}); err == nil {
		t.Fatal("negative wait accepted")
	}
	if _, err := a.WaitOrRun(2000, DedicatedOffer{Hosts: []string{"ghost"}}); err == nil {
		t.Fatal("offer of unknown host accepted")
	}
}
