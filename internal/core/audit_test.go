package core

import (
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/jacobi"
	"apples/internal/obs/audit"
	"apples/internal/react"
	"apples/internal/sim"
	"apples/internal/userspec"
)

func TestRunJoinsAuditPrediction(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 4, Quiet: true})
	aud := audit.New()
	a, err := NewAgent(tp, hat.Jacobi2D(600, 20), &userspec.Spec{}, OracleInformation(tp),
		WithAudit(aud), WithAuditTenant("t1"))
	if err != nil {
		t.Fatal(err)
	}
	s, measured, err := a.Run(600, ActuatorFromJacobi(tp, jacobi.Config{Iterations: 20}))
	if err != nil {
		t.Fatal(err)
	}

	joined, orphaned, expired, _ := aud.Totals()
	if joined != 1 || orphaned != 0 || expired != 0 || aud.Pending() != 0 {
		t.Fatalf("totals = joined %d orphaned %d expired %d pending %d, want 1 0 0 0",
			joined, orphaned, expired, aud.Pending())
	}
	snap := aud.Snapshot()
	if len(snap.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(snap.Groups))
	}
	g := snap.Groups[0]
	if g.Tenant != "t1" {
		t.Fatalf("tenant = %q, want t1", g.Tenant)
	}
	if g.Selector != "exhaustive" {
		t.Fatalf("selector = %q, want exhaustive (the default kind)", g.Selector)
	}
	wantClass := hostClass(tp, s.Hosts)
	if g.HostClass != wantClass || wantClass == "" || wantClass == "unknown" {
		t.Fatalf("host class = %q, want %q from winner %v", g.HostClass, wantClass, s.Hosts)
	}
	if got := g.Bias; got != s.PredictedTotal-measured {
		t.Fatalf("bias = %g, want predicted-actual = %g", got, s.PredictedTotal-measured)
	}
}

func TestPipelineRunJoinsAudit(t *testing.T) {
	tp := grid.CASA(sim.NewEngine())
	aud := audit.New()
	a, err := NewPipelineAgent(tp, hat.React3D(40), &userspec.Spec{}, OracleInformation(tp),
		react.Options{}, WithAudit(aud))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	joined, _, _, _ := aud.Totals()
	if joined != 1 || aud.Pending() != 0 {
		t.Fatalf("joined = %d pending = %d, want 1 0", joined, aud.Pending())
	}
}

func TestHostClass(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true, WithSP2: true})
	alphas := []string{"alpha1", "alpha2"}
	if got := hostClass(tp, alphas); got == "" || got == "mixed" || got == "unknown" {
		t.Fatalf("homogeneous class = %q", got)
	}
	if got := hostClass(tp, []string{"alpha1", "sp2a"}); got != "mixed" {
		t.Fatalf("heterogeneous class = %q, want mixed", got)
	}
	if got := hostClass(tp, []string{"ghost"}); got != "unknown" {
		t.Fatalf("unresolvable class = %q, want unknown", got)
	}
}
