package core

import (
	"strings"
	"sync"
	"sync/atomic"

	"apples/internal/grid"
)

// snapshotCache is the service's copy-on-write snapshot pool: N
// concurrent tenant rounds over the same (information source, host
// pool) in one tick share ONE frozen view — a single routeBatcher pass
// over the forecaster bank — instead of N independent freezes. The
// first round to arrive builds the snapshot (under the entry's
// sync.Once, so concurrent arrivals block briefly and then share);
// every other round fans out over the immutable result with a
// refcount tracking how many are reading it.
//
// Correctness leans on the same property the standalone round does:
// a frozen view is immutable, so sharing it across rounds is
// indistinguishable from each round freezing its own — provided the
// underlying source has not moved between the builds being collapsed.
// The service guarantees that by epoch: Invalidate() retires every
// entry (future acquires rebuild), and the daemon calls it whenever
// simulated time advances. Between invalidations the source is static,
// so shared and private freezes are bit-identical.
//
// Keys pair the Information identity with the pool fingerprint, so
// tenants over different sources (or different userspec filters) never
// share. Information values must be comparable (every built-in source
// is a pointer).
type snapshotCache struct {
	mu      sync.Mutex
	epoch   uint64
	entries map[snapKey]*snapEntry

	// builds counts rounds that froze a snapshot (cache miss), reused
	// those that shared an existing one; reused/(builds+reused) is the
	// sched_snapshot_shared_ratio gauge.
	builds atomic.Uint64
	reused atomic.Uint64
}

type snapKey struct {
	info Information
	pool string
}

type snapEntry struct {
	once sync.Once
	view infoView
	refs atomic.Int64 // rounds currently evaluating against this view
}

func newSnapshotCache() *snapshotCache {
	return &snapshotCache{entries: make(map[snapKey]*snapEntry)}
}

// poolFingerprint canonicalizes a pool for the cache key. Pool order is
// part of the identity: enumeration order feeds the deterministic
// (score, index) reduce, so two tenants only share when their rounds
// would read identical views in identical order.
func poolFingerprint(pool []*grid.Host) string {
	var sb strings.Builder
	for i, h := range pool {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(h.Name)
	}
	return sb.String()
}

// acquire resolves the shared frozen view for (info, pool), building it
// exactly once per epoch. shared reports whether this round reused an
// existing freeze. The returned entry's refcount is held; pair with
// release once the round is done reading.
func (c *snapshotCache) acquire(info Information, pool []*grid.Host) (e *snapEntry, shared bool) {
	key := snapKey{info: info, pool: poolFingerprint(pool)}
	c.mu.Lock()
	e = c.entries[key]
	if e == nil {
		e = &snapEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		e.view = roundSnapshot(info, pool)
		built = true
	})
	if built {
		c.builds.Add(1)
	} else {
		c.reused.Add(1)
	}
	e.refs.Add(1)
	return e, !built
}

// release drops one round's hold on the entry's view.
func (c *snapshotCache) release(e *snapEntry) { e.refs.Add(-1) }

// Invalidate retires every cached entry: subsequent acquires freeze
// fresh views. Rounds still holding a retired entry finish against it
// unharmed (the view is immutable; the garbage collector reclaims it
// when the last ref drops). Call whenever the underlying information
// may have moved — the daemon ties this to simulated-time advances.
func (c *snapshotCache) Invalidate() {
	c.mu.Lock()
	c.epoch++
	c.entries = make(map[snapKey]*snapEntry)
	c.mu.Unlock()
}

// ratio is the running shared fraction: reused / (builds + reused).
// Zero until the first acquire.
func (c *snapshotCache) ratio() float64 {
	b, r := c.builds.Load(), c.reused.Load()
	if b+r == 0 {
		return 0
	}
	return float64(r) / float64(b+r)
}
