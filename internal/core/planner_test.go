package core

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/load"
	"apples/internal/sim"
)

// plannerFixture: two hosts over one dedicated link with known numbers.
func plannerFixture(t *testing.T, loadA load.Source) (*planner, *grid.Topology) {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "a", Arch: "ws", Speed: 10, MemoryMB: 64, Load: loadA})
	tp.AddHost(grid.HostSpec{Name: "b", Arch: "ws", Speed: 20, MemoryMB: 128})
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0.01, Bandwidth: 2, Dedicated: true})
	tp.Attach("a", l)
	tp.Attach("b", l)
	tp.Finalize()
	return &planner{tp: tp, tpl: hat.Jacobi2D(1000, 10), info: OracleInformation(tp)}, tp
}

func TestCostsForFormulas(t *testing.T) {
	pl, tp := plannerFixture(t, nil)
	chain := []*grid.Host{tp.Host("a"), tp.Host("b")}
	costs, err := pl.costsFor(1000, chain)
	if err != nil {
		t.Fatal(err)
	}
	// P_a = 10 flop/pt / 1e6 / 10 Mflop/s = 1e-6 s/pt.
	if math.Abs(costs[0].SecPerPoint-1e-6) > 1e-12 {
		t.Fatalf("P_a = %v, want 1e-6", costs[0].SecPerPoint)
	}
	if math.Abs(costs[1].SecPerPoint-0.5e-6) > 1e-12 {
		t.Fatalf("P_b = %v, want 5e-7", costs[1].SecPerPoint)
	}
	// C_i = 2*(latency + edgeMB/bw); edge = 1000 pts * 8 B = 0.008 MB.
	wantC := 2 * (0.01 + 0.008/2.0)
	for i, c := range costs {
		if math.Abs(c.CommSec-wantC) > 1e-12 {
			t.Fatalf("C[%d] = %v, want %v", i, c.CommSec, wantC)
		}
	}
	// Memory cap: 64 MB / 16 B per point = 4e6 points.
	if math.Abs(costs[0].MaxPoints-4e6) > 1 {
		t.Fatalf("cap_a = %v, want 4e6", costs[0].MaxPoints)
	}
}

func TestCostsForAvailabilityDiscount(t *testing.T) {
	pl, tp := plannerFixture(t, load.Constant(1)) // a delivers half speed
	chain := []*grid.Host{tp.Host("a"), tp.Host("b")}
	costs, err := pl.costsFor(1000, chain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costs[0].SecPerPoint-2e-6) > 1e-12 {
		t.Fatalf("loaded P_a = %v, want 2e-6", costs[0].SecPerPoint)
	}
}

func TestCostsForEndsOfChainHaveOneNeighbor(t *testing.T) {
	eng := sim.NewEngine()
	tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: 1, Quiet: true})
	pl := &planner{tp: tp, tpl: hat.Jacobi2D(500, 10), info: OracleInformation(tp)}
	var chain []*grid.Host
	for _, n := range []string{"alpha1", "alpha2", "alpha3"} {
		chain = append(chain, tp.Host(n))
	}
	costs, err := pl.costsFor(500, chain)
	if err != nil {
		t.Fatal(err)
	}
	// Middle host pays two borders, ends one.
	if costs[1].CommSec <= costs[0].CommSec {
		t.Fatalf("middle comm %v <= end comm %v", costs[1].CommSec, costs[0].CommSec)
	}
	if math.Abs(costs[1].CommSec-2*costs[0].CommSec) > 1e-12 {
		t.Fatalf("middle comm %v, want twice end %v", costs[1].CommSec, costs[0].CommSec)
	}
}

func TestPlanProducesBalancedStrips(t *testing.T) {
	pl, tp := plannerFixture(t, nil)
	chain := []*grid.Host{tp.Host("a"), tp.Host("b")}
	p, costs, tIter, err := pl.plan(1000, chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if tIter <= 0 {
		t.Fatalf("predicted iteration %v", tIter)
	}
	// b is twice as fast: roughly 2/3 of the domain.
	if f := p.Fraction("b"); math.Abs(f-2.0/3) > 0.02 {
		t.Fatalf("b fraction %v, want ~0.667", f)
	}
	_ = costs
}
