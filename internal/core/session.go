package core

import (
	"fmt"
	"math"
	"sort"

	"apples/internal/grid"
	"apples/internal/obs"
	"apples/internal/partition"
	"apples/internal/userspec"
)

// ReschedSession is the delta-aware, allocation-free rescheduling loop:
// the same decision Agent.Schedule makes, restructured for being asked
// again and again at kHz rates as forecasts drift.
//
// At construction the session freezes the candidate universe — the
// US-filtered pool in filter order and the exact candidate sets the
// agent's Resource Selector enumerates against the information current
// then — and represents each set as a bitmask over the frozen pool
// ordering ([]uint64, one word up to 64 hosts, chunked beyond). Every
// static per-host coefficient (speed, implementation factor, memory
// capacity, cost rate) is resolved into flat arrays once.
//
// Each Round() then:
//
//  1. re-reads the dynamic inputs (per-host availability; per-link
//     bandwidth for batched sources, per-pair values otherwise) into the
//     same arrays and diffs them against the previous round, building a
//     touched-host bitmask (a changed link touches both endpoints of
//     every frozen route that traverses it — a conservative superset);
//  2. re-plans only candidates whose membership mask intersects the
//     touched mask, writing scores into per-candidate arrays; untouched
//     candidates keep their cached scores (under MaxSpeedup a changed
//     solo baseline rescales them from the cached totals — same values
//     the estimator would compute, no re-planning);
//  3. reduces with the Coordinator's (score, index) rule over the frozen
//     enumeration order and re-materializes the winning *Schedule only
//     when the winner changed or was itself re-planned.
//
// A round where nothing changed performs O(hosts + links) comparisons
// and returns the cached schedule — zero allocations (gated by
// TestSessionSteadyStateAllocFree). The solver never allocates either:
// chains, cost rows, balance areas, and row counts live in
// session-owned scratch reused across rounds.
//
// Equivalence: the first Round() is bit-identical to Agent.Schedule(n)
// called at the same instant, and every later Round() is bit-identical
// to FullRound(), which re-plans the entire frozen universe (the parity
// suite in session_test.go pins both, DeepEqual on schedules and float
// bits on scores). The session deliberately pins candidate *membership*
// at creation: availability drift re-prices and re-orders every chain
// but does not re-run desirability ranking, so heuristic selectors keep
// the universe they opened with (exhaustive pools ≤12 hosts enumerate
// every subset, so for them the universe never depends on information).
// Pruning and parallelism options are ignored — the session scores
// every candidate sequentially, which preserves the decision exactly.
//
// The returned *Schedule is owned by the session: it stays valid until
// a later Round re-materializes the winner, and its candidate counters
// are refreshed in place on carried rounds. Copy it if you need a
// round-frozen snapshot. A session is not safe for concurrent use.
type ReschedSession struct {
	a          *Agent
	n          int
	iterations int
	metric     userspec.Metric

	flopPerUnit  float64
	bytesPerUnit float64
	borderBytes  float64
	spillFactor  float64

	// Frozen pool, in userspec filter order. poolIdx inverts names to
	// frozen indices; every per-host array below is indexed by it.
	pool    []*grid.Host
	names   []string
	poolIdx map[string]int

	speed  []float64 // dedicated Mflop/s
	factor []float64 // implementation SpeedFactorOn(arch)
	capPts []float64 // memory capacity in points (0 = unbounded)
	memMB  []float64 // physical memory for the spill check
	rate   []float64 // userspec cost rate (0 -> priced as 1)
	avail  []float64 // last refreshed availability

	// Batched link mode (sources implementing routeBatcher): per-link
	// bandwidth is refreshed and diffed, and linkMask[l] records which
	// pool hosts have a frozen route through link l.
	rb       routeBatcher
	rtp      *grid.Topology // route topology for link composition
	links    []*grid.Link
	linkIdx  map[*grid.Link]int
	linkBW   []float64
	linkMask []uint64 // len(links)*words, stride words

	// Pair arrays (pools ≤ selExactPairHosts, and every non-batched
	// source): bandwidth/latency per ordered pair plus the derived chain
	// transfer cost, flattened n×n. Larger batched pools skip these and
	// compose route values lazily from linkBW, mirroring linkSnapshot.
	pairArrays bool
	pairBW     []float64
	pairLat    []float64
	cost       []float64

	// siteChain mirrors selModel.chain's large-pool layout: heuristic
	// selectors past selExactPairHosts order members by site-first-
	// appearance instead of greedy nearest-neighbor.
	siteChain bool
	siteID    []int

	// Frozen candidate universe: candCount membership masks of `words`
	// words each, in the selector's enumeration order, plus per-candidate
	// score caches.
	words     int
	candMask  []uint64
	candCount int

	score    []float64
	total    []float64 // predicted total seconds (for solo rescaling)
	feasible []bool
	planned  int

	solo float64 // MaxSpeedup solo baseline

	winner   int // universe index of the incumbent, -1 if none
	sched    *Schedule
	schedErr error
	rounds   int

	scr sessionScratch
}

// DeltaStats describes what one session round did.
type DeltaStats struct {
	// Round is the session-local round number, starting at 1.
	Round int
	// Cold marks the first round, which scores the whole universe.
	Cold bool
	// ChangedHosts counts pool hosts whose inputs changed since the
	// previous round — directly (availability) or through a changed link
	// on one of their frozen routes. On a cold or FullRound it is the
	// pool size.
	ChangedHosts int
	// ChangedLinks counts changed links (batched sources) or changed
	// ordered host pairs (generic sources).
	ChangedLinks int
	// Rescored is how many candidate sets were re-planned; Considered is
	// the frozen universe size.
	Rescored   int
	Considered int
	// Carried reports that the incumbent winner survived without being
	// re-planned, so the cached schedule was reused.
	Carried bool
}

// NewReschedSession freezes the agent's scheduling round for an n×n
// problem into an incrementally re-evaluable session. The candidate
// universe is enumerated once, by the agent's own selector against a
// snapshot of the information current now; see the ReschedSession type
// comment for the semantics of that pin.
func (a *Agent) NewReschedSession(n int) (*ReschedSession, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive problem size %d", n)
	}
	pool := a.spec.Filter(a.tp.Hosts())
	if len(pool) == 0 {
		return nil, fmt.Errorf("core: %w: user specification filters out every host", ErrNoFeasibleHosts)
	}
	task := a.tpl.Tasks[0]
	np := len(pool)
	s := &ReschedSession{
		a:            a,
		n:            n,
		iterations:   max(a.tpl.Iterations, 1),
		metric:       a.spec.Metric,
		flopPerUnit:  task.FlopPerUnit,
		bytesPerUnit: task.BytesPerUnit,
		borderBytes:  (&planner{tp: a.tp, tpl: a.tpl}).borderBytes(),
		spillFactor:  a.SpillFactor,
		pool:         pool,
		words:        maskWords(np),
		winner:       -1,
	}
	s.names = make([]string, np)
	s.poolIdx = make(map[string]int, np)
	s.speed = make([]float64, np)
	s.factor = make([]float64, np)
	s.capPts = make([]float64, np)
	s.memMB = make([]float64, np)
	s.rate = make([]float64, np)
	s.avail = make([]float64, np)
	for i, h := range pool {
		s.names[i] = h.Name
		s.poolIdx[h.Name] = i
		s.speed[i] = h.Speed
		s.factor[i] = task.SpeedFactorOn(h.Arch)
		if task.BytesPerUnit > 0 {
			s.capPts[i] = h.MemoryMB * 1e6 / task.BytesPerUnit
		}
		s.memMB[i] = h.MemoryMB
		s.rate[i] = a.spec.CostRate(h.Name)
	}

	if rb, ok := a.coord.info.(routeBatcher); ok {
		s.rb = rb
		s.rtp = rb.routeTopology()
		s.links = s.rtp.Links()
		s.linkIdx = make(map[*grid.Link]int, len(s.links))
		for i, l := range s.links {
			s.linkIdx[l] = i
		}
		s.linkBW = make([]float64, len(s.links))
		s.linkMask = make([]uint64, len(s.links)*s.words)
		for i := 0; i < np; i++ {
			for j := 0; j < np; j++ {
				if i == j {
					continue
				}
				for _, l := range s.rtp.Route(s.names[i], s.names[j]) {
					if li, ok := s.linkIdx[l]; ok {
						m := s.linkMask[li*s.words : (li+1)*s.words]
						maskSet(m, i)
						maskSet(m, j)
					}
				}
			}
		}
		s.pairArrays = np <= selExactPairHosts
	} else {
		// Generic sources have no link substructure to diff; refresh and
		// diff at pair granularity instead.
		s.pairArrays = true
	}
	if s.pairArrays {
		s.pairBW = make([]float64, np*np)
		s.pairLat = make([]float64, np*np)
		s.cost = make([]float64, np*np)
	}

	kind := a.coord.selector.normalized().Kind
	s.siteChain = kind != SelectorExhaustive && np > selExactPairHosts
	if s.siteChain {
		siteOf := make(map[string]int)
		s.siteID = make([]int, np)
		for i, h := range pool {
			id, ok := siteOf[h.Site]
			if !ok {
				id = len(siteOf)
				siteOf[h.Site] = id
			}
			s.siteID[i] = id
		}
		s.scr.siteFirst = make([]int, len(siteOf))
		s.scr.siteEpoch = make([]int, len(siteOf))
	}

	// Enumerate the universe once, exactly the way a scheduling round
	// does: the real selector over a real snapshot of the current
	// information, honoring MaxResourceSets.
	snap := roundSnapshot(a.coord.info, pool)
	rs := &resourceSelector{tp: a.tp, info: snap}
	sel := newSelector(a.coord.selector, rs, a.spec.MaxResourceSets, true)
	for set := range sel.SelectSeq(pool) {
		base := len(s.candMask)
		for w := 0; w < s.words; w++ {
			s.candMask = append(s.candMask, 0)
		}
		m := s.candMask[base : base+s.words]
		for _, h := range set {
			maskSet(m, s.poolIdx[h.Name])
		}
		s.candCount++
	}
	if s.candCount == 0 {
		return nil, fmt.Errorf("core: %w: selector produced no candidate sets", ErrNoFeasiblePlan)
	}
	s.score = make([]float64, s.candCount)
	s.total = make([]float64, s.candCount)
	s.feasible = make([]bool, s.candCount)

	s.scr.init(np, s.words)
	s.scr.effSort.eff = s.scr.eff
	s.scr.effSort.names = s.names
	s.scr.siteSort.siteID = s.siteID
	s.scr.siteSort.first = s.scr.siteFirst
	return s, nil
}

// mask returns candidate c's membership bitmask.
func (s *ReschedSession) mask(c int) []uint64 {
	return s.candMask[c*s.words : (c+1)*s.words]
}

// refresh re-reads every dynamic input into the session arrays and
// diffs against the previous round. It returns whether any availability
// changed and how many links (or pairs) changed; scr.touched holds the
// union touched-host mask afterwards (all hosts when cold).
func (s *ReschedSession) refresh(cold bool) (availChanged bool, changedLinks int) {
	info := s.a.coord.info
	scr := &s.scr
	maskClear(scr.touched)
	for i, name := range s.names {
		v := info.Availability(name)
		if cold || v != s.avail[i] {
			s.avail[i] = v
			maskSet(scr.touched, i)
			availChanged = true
		}
	}
	if s.rb != nil {
		maskClear(scr.linkTouched)
		for li, l := range s.links {
			v := s.rb.linkBandwidth(l)
			if cold || v != s.linkBW[li] {
				s.linkBW[li] = v
				changedLinks++
				if !cold {
					maskOr(scr.linkTouched, s.linkMask[li*s.words:(li+1)*s.words])
				}
			}
		}
		if s.pairArrays && changedLinks > 0 {
			// Recompute the pair values whose routes may traverse a changed
			// link: both endpoints lie in the changed links' host mask (a
			// conservative superset — extra pairs recompute to identical
			// values).
			for i := range s.pool {
				if !cold && !maskTest(scr.linkTouched, i) {
					continue
				}
				for j := range s.pool {
					if i == j || (!cold && !maskTest(scr.linkTouched, j)) {
						continue
					}
					s.composePair(i, j)
				}
			}
		}
		maskOr(scr.touched, scr.linkTouched)
	} else {
		np := len(s.pool)
		for i := 0; i < np; i++ {
			for j := 0; j < np; j++ {
				if i == j {
					continue
				}
				bw := info.RouteBandwidth(s.names[i], s.names[j])
				lat := info.RouteLatency(s.names[i], s.names[j])
				at := i*np + j
				if cold || bw != s.pairBW[at] || lat != s.pairLat[at] {
					s.pairBW[at] = bw
					s.pairLat[at] = lat
					cb := bw
					if cb <= 0 {
						cb = 1e-6
					}
					s.cost[at] = lat + 1.0/cb
					changedLinks++
					maskSet(scr.touched, i)
					maskSet(scr.touched, j)
				}
			}
		}
	}
	if cold {
		maskFill(scr.touched, len(s.pool))
	}
	return availChanged, changedLinks
}

// composePair recomputes pair (i,j)'s bandwidth, latency, and chain
// transfer cost from the frozen per-link bandwidths, mirroring the
// batched snapshot composition: bottleneck min seeded at 1e30 in route
// order, latencies summed in route order.
func (s *ReschedSession) composePair(i, j int) {
	bw, lat := 1e30, 0.0
	for _, l := range s.rtp.Route(s.names[i], s.names[j]) {
		if li, ok := s.linkIdx[l]; ok {
			if v := s.linkBW[li]; v < bw {
				bw = v
			}
		}
		lat += l.Latency
	}
	at := i*len(s.pool) + j
	s.pairBW[at] = bw
	s.pairLat[at] = lat
	cb := bw
	if cb <= 0 {
		cb = 1e-6
	}
	s.cost[at] = lat + 1.0/cb
}

// Round advances the session one rescheduling tick: refresh, diff,
// re-plan the touched slice of the universe, reduce, and return the
// winning schedule (cached when the incumbent carries). See the type
// comment for the full contract.
func (s *ReschedSession) Round() (*Schedule, DeltaStats, error) { return s.roundImpl(false) }

// FullRound re-plans the entire frozen universe against the freshly
// refreshed inputs, ignoring the delta. It exists as the parity oracle
// for Round — both must agree bit for bit — and as an escape hatch when
// the caller knows everything moved.
func (s *ReschedSession) FullRound() (*Schedule, DeltaStats, error) { return s.roundImpl(true) }

func (s *ReschedSession) roundImpl(full bool) (*Schedule, DeltaStats, error) {
	cold := s.rounds == 0
	s.rounds++
	availChanged, changedLinks := s.refresh(cold)
	full = full || cold
	scr := &s.scr

	st := DeltaStats{Round: s.rounds, Cold: cold, ChangedLinks: changedLinks, Considered: s.candCount}
	if full {
		maskFill(scr.touched, len(s.pool))
		availChanged = true
	}
	st.ChangedHosts = maskCount(scr.touched)

	if !full && !maskAny(scr.touched) {
		// Nothing moved: the previous outcome stands as-is.
		st.Carried = true
		s.emit(st)
		return s.sched, st, s.schedErr
	}

	soloChanged := false
	if availChanged {
		for i := range s.pool {
			scr.eff[i] = s.speed[i] * s.avail[i]
		}
		for i := range scr.effOrder {
			scr.effOrder[i] = i
		}
		scr.effSort.idx = scr.effOrder
		sort.Sort(&scr.effSort)
		if s.metric == userspec.MaxSpeedup {
			old := s.solo
			s.solo = s.computeSolo()
			soloChanged = cold || s.solo != old
		}
	}

	rescored := 0
	for c := 0; c < s.candCount; c++ {
		if full || masksIntersect(s.mask(c), scr.touched) {
			rescored++
			s.solve(c)
		} else if soloChanged && s.feasible[c] {
			// Untouched plan, new solo baseline: the schedule and total are
			// cached; only the speedup ratio moves.
			if s.total[c] <= 0 {
				s.score[c] = math.Inf(1)
			} else {
				s.score[c] = -s.solo / s.total[c]
			}
		}
	}
	st.Rescored = rescored

	bestIdx, best := -1, math.Inf(1)
	planned := 0
	for c := 0; c < s.candCount; c++ {
		if !s.feasible[c] {
			continue
		}
		planned++
		if s.score[c] < best {
			bestIdx, best = c, s.score[c]
		}
	}
	s.planned = planned

	prevWinner := s.winner
	if bestIdx < 0 {
		s.winner = -1
		s.sched = nil
		s.schedErr = fmt.Errorf("core: %w: no feasible schedule among %d candidate sets", ErrNoFeasiblePlan, s.candCount)
	} else {
		winnerRescored := full || masksIntersect(s.mask(bestIdx), scr.touched)
		if s.sched == nil || bestIdx != prevWinner || winnerRescored {
			s.sched = s.materialize(bestIdx)
		} else {
			s.sched.CandidatesPlanned = planned
			st.Carried = true
		}
		s.winner = bestIdx
		s.schedErr = nil
	}
	s.emit(st)
	return s.sched, st, s.schedErr
}

// solve re-plans universe candidate c into the score caches.
func (s *ReschedSession) solve(c int) {
	k := s.chainFor(s.mask(c))
	iterT, ok := s.solveChain(k)
	if !ok {
		s.feasible[c] = false
		s.score[c] = math.Inf(1)
		s.total[c] = 0
		return
	}
	total := iterT * float64(s.iterations)
	s.feasible[c] = true
	s.total[c] = total
	switch s.metric {
	case userspec.MinExecutionTime:
		s.score[c] = total
	case userspec.MaxSpeedup:
		if total <= 0 {
			s.score[c] = math.Inf(1)
		} else {
			s.score[c] = -s.solo / total
		}
	case userspec.MinCost:
		cost := 0.0
		for i := 0; i < k; i++ {
			if s.scr.rows[i] == 0 {
				continue
			}
			rate := s.rate[s.scr.chain[i]]
			if rate == 0 {
				rate = 1
			}
			cost += total / 3600 * rate
		}
		s.score[c] = cost
	default:
		s.score[c] = total
	}
}

// computeSolo mirrors the agent's MaxSpeedup baseline: the best
// predicted single-host total over the frozen pool, in pool order.
func (s *ReschedSession) computeSolo() float64 {
	solo := math.Inf(1)
	for i := range s.pool {
		s.scr.chain[0] = i
		iterT, ok := s.solveChain(1)
		if !ok {
			continue
		}
		if t := iterT * float64(s.iterations); t < solo {
			solo = t
		}
	}
	return solo
}

// materialize rebuilds the winner's *Schedule exactly as pickBest
// would: re-solve the candidate into scratch, assemble the strip
// placement (stripFromRows shape, including nil Borders on a single
// band), and share-sort the reported host list. This is the only
// allocating step of a non-carried round.
func (s *ReschedSession) materialize(c int) *Schedule {
	k := s.chainFor(s.mask(c))
	iterT, _ := s.solveChain(k)
	scr := &s.scr

	type band struct {
		name string
		rows int
	}
	bands := make([]band, 0, k)
	for i := 0; i < k; i++ {
		if scr.rows[i] > 0 {
			bands = append(bands, band{s.names[scr.chain[i]], scr.rows[i]})
		}
	}
	edge := float64(s.n) * s.borderBytes
	p := &partition.Placement{N: s.n, Kind: "strip"}
	p.Assignments = make([]partition.Assignment, 0, len(bands))
	for i, b := range bands {
		a := partition.Assignment{Host: b.name, Rows: b.rows, Points: b.rows * s.n}
		if i > 0 || i < len(bands)-1 {
			a.Borders = make([]partition.Border, 0, 2)
		}
		if i > 0 {
			a.Borders = append(a.Borders, partition.Border{Peer: bands[i-1].name, Bytes: edge})
		}
		if i < len(bands)-1 {
			a.Borders = append(a.Borders, partition.Border{Peer: bands[i+1].name, Bytes: edge})
		}
		p.Assignments = append(p.Assignments, a)
	}

	hosts := make([]string, k)
	for i := 0; i < k; i++ {
		hosts[i] = s.names[scr.chain[i]]
	}
	sched := &Schedule{
		Placement:            p,
		PredictedIterTime:    iterT,
		PredictedTotal:       iterT * float64(s.iterations),
		Hosts:                hosts,
		InfoSource:           s.a.coord.Information().Source(),
		CandidatesConsidered: s.candCount,
		CandidatesPlanned:    s.planned,
	}
	share := make(map[string]float64, len(hosts))
	for _, h := range hosts {
		share[h] = p.Fraction(h)
	}
	sortHostsByShare(sched.Hosts, share)
	return sched
}

// emit publishes the round's delta observability: the re-score ratio
// gauge, the re-score counter, and an EvDeltaRound trace event.
func (s *ReschedSession) emit(st DeltaStats) {
	if met := s.a.coord.met; met != nil {
		met.deltaRatio.Set(float64(st.Rescored) / float64(s.candCount))
		met.rescored.Add(uint64(st.Rescored))
	}
	if tr := s.a.coord.tracer; tr != nil {
		e := obs.Event{Type: obs.EvDeltaRound, Round: uint64(st.Round),
			Changed: st.ChangedHosts, Rescored: st.Rescored, Carried: st.Carried,
			Considered: st.Considered}
		if s.sched != nil {
			e.Hosts = s.sched.Hosts
			e.Predicted = s.sched.PredictedTotal
			e.Score = s.score[s.winner]
			e.Planned = s.planned
		} else {
			e.Reason = "no-feasible-plan"
		}
		tr.Emit(e)
	}
}

// Stats returns the bookkeeping of the most recent round without
// advancing the session.
func (s *ReschedSession) Stats() (rounds, considered int) { return s.rounds, s.candCount }

// Pool returns the frozen pool's host names in userspec filter order —
// the universe every candidate bitmask indexes into. The slice is owned
// by the session; callers must not mutate it.
func (s *ReschedSession) Pool() []string { return s.names }
