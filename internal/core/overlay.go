package core

import "apples/internal/grid"

// overlayInfo layers per-host availability overrides on top of another
// Information source. Hosts present in the override map report the
// overridden availability; every other query passes through to the
// base. It exists so tests, benchmarks, and churn experiments can
// perturb a few hosts between scheduling rounds without rebuilding the
// underlying forecaster bank — exactly the small-delta regime the
// delta-aware ReschedSession is built for.
type overlayInfo struct {
	base  Information
	avail map[string]float64
}

func (o *overlayInfo) Availability(host string) float64 {
	if v, ok := o.avail[host]; ok {
		return v
	}
	return o.base.Availability(host)
}

func (o *overlayInfo) RouteBandwidth(a, b string) float64 { return o.base.RouteBandwidth(a, b) }
func (o *overlayInfo) RouteLatency(a, b string) float64   { return o.base.RouteLatency(a, b) }
func (o *overlayInfo) Source() string                     { return o.base.Source() + "+overlay" }

// overlayBatchInfo additionally forwards the batched route-resolution
// fast path when the base supports it. The promotion cannot happen
// through interface embedding (routeBatcher is unexported and embedded
// Information values do not satisfy it), so NewOverlayInformation picks
// the variant explicitly.
type overlayBatchInfo struct {
	overlayInfo
	rb routeBatcher
}

func (o *overlayBatchInfo) routeTopology() *grid.Topology      { return o.rb.routeTopology() }
func (o *overlayBatchInfo) linkBandwidth(l *grid.Link) float64 { return o.rb.linkBandwidth(l) }

// NewOverlayInformation returns an Information source that reports the
// availabilities in avail for the named hosts and defers every other
// query to base. The map is referenced, not copied: mutating it between
// rounds changes what subsequent rounds observe, which makes it the
// natural driver for delta-parity tests and steady-state resched
// benchmarks. The returned source preserves the base's batched link
// resolution when present, so snapshot costs do not regress.
func NewOverlayInformation(base Information, avail map[string]float64) Information {
	o := overlayInfo{base: base, avail: avail}
	if rb, ok := base.(routeBatcher); ok {
		return &overlayBatchInfo{overlayInfo: o, rb: rb}
	}
	return &o
}
