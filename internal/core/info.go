package core

import (
	"apples/internal/grid"
	"apples/internal/nws"
)

// minAvailability floors forecast CPU availability before any model
// divides by it. A source can legitimately report 0 (a saturated or
// just-registered machine with no history); clamping to 1% keeps every
// per-availability division finite while still pricing such hosts as
// effectively unusable.
const minAvailability = 0.01

// floorAvailability applies the minAvailability division-by-zero guard
// shared by every cost model (strip planner, pruning bound, pipeline
// model, single-site prediction).
func floorAvailability(avail float64) float64 {
	if avail <= 0 {
		return minAvailability
	}
	return avail
}

// Information is the agent's view of dynamic system state: short-term
// forecasts of deliverable CPU and network performance for the scheduling
// time frame. It abstracts the paper's Information Pool so prediction
// sources can be swapped for ablation.
type Information interface {
	// Availability forecasts the CPU fraction (0, 1] host will deliver.
	Availability(host string) float64
	// RouteBandwidth forecasts the bottleneck MB/s between two hosts.
	RouteBandwidth(a, b string) float64
	// RouteLatency returns the one-way route latency in seconds.
	RouteLatency(a, b string) float64
	// Source names the information source for reports.
	Source() string
}

// routeBatcher is implemented by Information sources whose route queries
// reduce per-link quantities along precomputed topology routes (all the
// built-in sources). It lets SnapshotInformation resolve each link's
// bandwidth once per round and compose the per-pair bottleneck mins from
// that cache — an O(pool² · route length) → O(links) cut in
// forecaster-bank queries, which otherwise dominate snapshot
// construction on large pools.
type routeBatcher interface {
	routeTopology() *grid.Topology
	// linkBandwidth returns the source's bandwidth estimate for one link;
	// a route query is the min over its links, seeded at 1e30.
	linkBandwidth(l *grid.Link) float64
}

// nwsInfo backs Information with Network Weather Service forecasts,
// falling back to static capabilities where no history exists yet.
type nwsInfo struct {
	svc *nws.Service
	tp  *grid.Topology
}

// NWSInformation returns the production information source: NWS forecasts
// over the given topology.
func NWSInformation(svc *nws.Service, tp *grid.Topology) Information {
	return &nwsInfo{svc: svc, tp: tp}
}

func (i *nwsInfo) Availability(host string) float64 {
	if v, ok := i.svc.AvailabilityForecast(host); ok {
		return v
	}
	return 1
}

func (i *nwsInfo) RouteBandwidth(a, b string) float64 {
	return i.svc.RouteBandwidthForecast(i.tp, a, b)
}

func (i *nwsInfo) RouteLatency(a, b string) float64 {
	return i.tp.RouteLatency(a, b)
}

func (i *nwsInfo) Source() string { return "nws" }

func (i *nwsInfo) routeTopology() *grid.Topology { return i.tp }

func (i *nwsInfo) linkBandwidth(l *grid.Link) float64 {
	if v, ok := i.svc.BandwidthForecast(l.Name); ok {
		return v
	}
	return l.Bandwidth
}

// oracleInfo reads the simulator's true instantaneous state — the
// unattainable upper bound on prediction quality.
type oracleInfo struct {
	tp *grid.Topology
}

// OracleInformation returns a perfect-knowledge information source for
// ablation experiments.
func OracleInformation(tp *grid.Topology) Information {
	return &oracleInfo{tp: tp}
}

func (i *oracleInfo) Availability(host string) float64 {
	h := i.tp.Host(host)
	if h == nil {
		return 1
	}
	return h.Availability()
}

func (i *oracleInfo) RouteBandwidth(a, b string) float64 {
	return i.tp.RouteBandwidth(a, b)
}

func (i *oracleInfo) RouteLatency(a, b string) float64 {
	return i.tp.RouteLatency(a, b)
}

func (i *oracleInfo) Source() string { return "oracle" }

func (i *oracleInfo) routeTopology() *grid.Topology { return i.tp }

func (i *oracleInfo) linkBandwidth(l *grid.Link) float64 { return l.AvailableBandwidth() }

// staticInfo assumes every resource is dedicated — the compile-time
// assumption embodied by the paper's static Strip and Blocked baselines.
type staticInfo struct {
	tp *grid.Topology
}

// StaticInformation returns the no-dynamic-information source.
func StaticInformation(tp *grid.Topology) Information {
	return &staticInfo{tp: tp}
}

func (i *staticInfo) Availability(string) float64 { return 1 }

func (i *staticInfo) RouteBandwidth(a, b string) float64 {
	return i.tp.RouteDedicatedBandwidth(a, b)
}

func (i *staticInfo) RouteLatency(a, b string) float64 {
	return i.tp.RouteLatency(a, b)
}

func (i *staticInfo) Source() string { return "static" }

func (i *staticInfo) routeTopology() *grid.Topology { return i.tp }

func (i *staticInfo) linkBandwidth(l *grid.Link) float64 { return l.Bandwidth }
