package core

import (
	"apples/internal/grid"
	"apples/internal/jacobi"
	"apples/internal/partition"
)

// ActuatorFromJacobi returns the Actuator that implements schedules by
// executing them as a distributed Jacobi2D run on the simulated
// metacomputer — the reproduction's equivalent of the paper's KeLP
// actuation.
func ActuatorFromJacobi(tp *grid.Topology, cfg jacobi.Config) Actuator {
	return ActuatorFunc(func(p *partition.Placement) (float64, error) {
		res, err := jacobi.Run(tp, p, cfg)
		if err != nil {
			return 0, err
		}
		return res.Time, nil
	})
}

// ActuatorFromRMS actuates schedules through the PVM-style rms substrate
// instead: one task per strip, message-passing borders, and a real
// barrier protocol. Slightly slower than ActuatorFromJacobi because the
// control traffic is simulated too — the honest version of "implement
// the schedule with respect to the appropriate resource management
// system".
func ActuatorFromRMS(tp *grid.Topology, cfg jacobi.Config) Actuator {
	return ActuatorFunc(func(p *partition.Placement) (float64, error) {
		res, err := jacobi.RunViaRMS(tp, p, cfg)
		if err != nil {
			return 0, err
		}
		return res.Time, nil
	})
}
