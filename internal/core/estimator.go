package core

import (
	"math"

	"apples/internal/grid"
	"apples/internal/partition"
	"apples/internal/userspec"
)

// estimator implements the Performance Estimator subsystem: it evaluates a
// candidate schedule under the user's own performance metric.
//
// Unlike the Planner's balance equation, the estimator re-scores the
// *rounded, clamped* placement — including the spill penalty for any strip
// that exceeds real memory — so that infeasible-but-balanced plans are
// priced honestly (this is what steers the Figure 6 agent to alternative
// memory when the SP-2 fills).
type estimator struct {
	tp   *grid.Topology
	spec *userspec.Spec

	bytesPerPoint float64
	spillFactor   float64
	iterations    int
}

// iterTime predicts one iteration of the placement under the given cost
// parameters: max_i (A_i * P_i * spillMult_i + C_i).
func (es *estimator) iterTime(p *partition.Placement, costs []partition.HostCost) float64 {
	byHost := map[string]partition.HostCost{}
	for _, c := range costs {
		byHost[c.Host] = c
	}
	worst := 0.0
	for _, a := range p.Assignments {
		if a.Points == 0 {
			continue
		}
		c, ok := byHost[a.Host]
		if !ok {
			return math.Inf(1)
		}
		mult := 1.0
		if h := es.tp.Host(a.Host); h != nil && es.bytesPerPoint > 0 {
			needMB := float64(a.Points) * es.bytesPerPoint / 1e6
			if needMB > h.MemoryMB {
				spill := (needMB - h.MemoryMB) / needMB
				mult = 1 + spill*(es.spillFactor-1)
			}
		}
		t := float64(a.Points)*c.SecPerPoint*mult + c.CommSec
		if t > worst {
			worst = t
		}
	}
	return worst
}

// score converts a candidate schedule into the user's objective value
// (lower is better for every metric; speedup is negated).
func (es *estimator) score(p *partition.Placement, costs []partition.HostCost, soloTime float64) float64 {
	total := es.iterTime(p, costs) * float64(es.iterations)
	switch es.spec.Metric {
	case userspec.MinExecutionTime:
		return total
	case userspec.MaxSpeedup:
		if total <= 0 {
			return math.Inf(1)
		}
		return -soloTime / total
	case userspec.MinCost:
		cost := 0.0
		for _, a := range p.Assignments {
			rate := es.spec.CostRate(a.Host)
			if rate == 0 {
				rate = 1
			}
			cost += total / 3600 * rate
		}
		return cost
	default:
		return total
	}
}
