package core

import (
	"math"

	"apples/internal/grid"
	"apples/internal/partition"
	"apples/internal/userspec"
)

// estimator implements the Performance Estimator subsystem: it evaluates a
// candidate schedule under the user's own performance metric.
//
// Unlike the Planner's balance equation, the estimator re-scores the
// *rounded, clamped* placement — including the spill penalty for any strip
// that exceeds real memory — so that infeasible-but-balanced plans are
// priced honestly (this is what steers the Figure 6 agent to alternative
// memory when the SP-2 fills).
//
// An estimator is immutable after newEstimator and safe for concurrent
// use by evaluation workers.
type estimator struct {
	spec *userspec.Spec

	// memMB caches each host's physical memory so the spill check does
	// not touch the topology from worker goroutines.
	memMB map[string]float64

	bytesPerPoint float64
	spillFactor   float64
	iterations    int
}

// newEstimator builds the estimator for one scheduling round, resolving
// every host's memory capacity up front.
func newEstimator(tp *grid.Topology, spec *userspec.Spec, bytesPerPoint, spillFactor float64, iterations int) *estimator {
	hosts := tp.Hosts()
	memMB := make(map[string]float64, len(hosts))
	for _, h := range hosts {
		memMB[h.Name] = h.MemoryMB
	}
	return &estimator{
		spec:          spec,
		memMB:         memMB,
		bytesPerPoint: bytesPerPoint,
		spillFactor:   spillFactor,
		iterations:    iterations,
	}
}

// iterTime predicts one iteration of the placement under the given cost
// parameters: max_i (A_i * P_i * spillMult_i + C_i). Candidate sets are
// small, so hosts are matched by linear scan rather than a per-call map.
func (es *estimator) iterTime(p *partition.Placement, costs []partition.HostCost) float64 {
	worst := 0.0
	for _, a := range p.Assignments {
		if a.Points == 0 {
			continue
		}
		var c *partition.HostCost
		for i := range costs {
			if costs[i].Host == a.Host {
				c = &costs[i]
				break
			}
		}
		if c == nil {
			return math.Inf(1)
		}
		mult := 1.0
		if memMB, ok := es.memMB[a.Host]; ok && es.bytesPerPoint > 0 {
			needMB := float64(a.Points) * es.bytesPerPoint / 1e6
			if needMB > memMB {
				spill := (needMB - memMB) / needMB
				mult = 1 + spill*(es.spillFactor-1)
			}
		}
		t := float64(a.Points)*c.SecPerPoint*mult + c.CommSec
		if t > worst {
			worst = t
		}
	}
	return worst
}

// score converts a candidate schedule into the user's objective value
// (lower is better for every metric; speedup is negated). iterT is the
// placement's precomputed iterTime, so callers that report it do not pay
// for the estimate twice.
func (es *estimator) score(iterT float64, p *partition.Placement, soloTime float64) float64 {
	total := iterT * float64(es.iterations)
	switch es.spec.Metric {
	case userspec.MinExecutionTime:
		return total
	case userspec.MaxSpeedup:
		if total <= 0 {
			return math.Inf(1)
		}
		return -soloTime / total
	case userspec.MinCost:
		cost := 0.0
		for _, a := range p.Assignments {
			rate := es.spec.CostRate(a.Host)
			if rate == 0 {
				rate = 1
			}
			cost += total / 3600 * rate
		}
		return cost
	default:
		return total
	}
}
