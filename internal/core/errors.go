package core

import "errors"

// Sentinel errors for the agent's failure modes. Call sites wrap these
// with %w and context, so callers distinguish outcomes with errors.Is
// instead of string matching:
//
//	if errors.Is(err, core.ErrNoFeasibleHosts) { relax the user spec }
//	if errors.Is(err, core.ErrNoFeasiblePlan)  { shrink the problem }
//	if errors.Is(err, core.ErrBadTemplate)     { fix the HAT }
//
// The facade re-exports all three.
var (
	// ErrNoFeasibleHosts: the user specification filters out every host
	// in the topology, so there is nothing to schedule onto.
	ErrNoFeasibleHosts = errors.New("no feasible hosts")

	// ErrNoFeasiblePlan: candidate resource sets were enumerated but none
	// produced a feasible plan (e.g. aggregate memory cannot hold the
	// problem, or no pipeline mapping works).
	ErrNoFeasiblePlan = errors.New("no feasible plan")

	// ErrBadTemplate: the application template does not fit the agent
	// blueprint it was handed to (wrong paradigm, missing tasks or comm
	// edges, or failed validation).
	ErrBadTemplate = errors.New("bad application template")

	// ErrQueueFull: the multi-tenant service's admission queue is at its
	// configured depth; the submission was rejected without queueing.
	// Back off and retry — nothing was scheduled.
	ErrQueueFull = errors.New("scheduling queue full")

	// ErrServiceClosed: the multi-tenant service has shut down; no new
	// tenants or rounds are accepted.
	ErrServiceClosed = errors.New("scheduling service closed")
)
