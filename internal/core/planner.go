package core

import (
	"fmt"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/partition"
)

// planner implements the Planner subsystem for the Jacobi2D blueprint: it
// parameterizes the strip cost model from the HAT and the information
// pool, then solves for the time-balanced decomposition.
type planner struct {
	tp   *grid.Topology
	tpl  *hat.Template
	info Information
}

// borderBytes returns the per-unit border exchange volume from the HAT's
// neighbor-exchange comm edge (0 when the template has none).
func (pl *planner) borderBytes() float64 {
	b := 0.0
	for _, c := range pl.tpl.Comms {
		if c.Pattern == hat.NeighborExchange {
			b = c.BytesPerUnit
		}
	}
	return b
}

// costsFor builds the per-host cost-model parameters for a chain-ordered
// resource set and problem size n:
//
//	P_i = flop/point / (speed * availability * implementation factor)
//	C_i = sum over strip neighbors of 2*(latency + borderBytes/bandwidth)
//	cap = host memory / bytes per point
func (pl *planner) costsFor(n int, chain []*grid.Host) ([]partition.HostCost, error) {
	task := pl.tpl.Tasks[0]
	borderBytes := pl.borderBytes()
	costs := make([]partition.HostCost, len(chain))
	for i, h := range chain {
		avail := floorAvailability(pl.info.Availability(h.Name))
		speed := h.Speed * avail * task.SpeedFactorOn(h.Arch) // Mflop/s deliverable
		if speed <= 0 {
			return nil, fmt.Errorf("core: host %s has no deliverable speed", h.Name)
		}
		p := task.FlopPerUnit / 1e6 / speed // seconds per point

		comm := 0.0
		edge := float64(n) * borderBytes / 1e6 // MB per border per direction
		for _, j := range []int{i - 1, i + 1} {
			if j < 0 || j >= len(chain) {
				continue
			}
			bw := pl.info.RouteBandwidth(h.Name, chain[j].Name)
			if bw <= 0 {
				bw = 1e-6
			}
			lat := pl.info.RouteLatency(h.Name, chain[j].Name)
			comm += 2 * (lat + edge/bw) // send + receive
		}

		capPoints := 0.0
		if task.BytesPerUnit > 0 {
			capPoints = h.MemoryMB * 1e6 / task.BytesPerUnit
		}
		costs[i] = partition.HostCost{
			Host:        h.Name,
			SecPerPoint: p,
			CommSec:     comm,
			MaxPoints:   capPoints,
		}
	}
	return costs, nil
}

// plan produces the strip schedule for one candidate resource set,
// returning the placement, its cost parameters, and the model's predicted
// per-iteration time.
func (pl *planner) plan(n int, chain []*grid.Host) (*partition.Placement, []partition.HostCost, float64, error) {
	costs, err := pl.costsFor(n, chain)
	if err != nil {
		return nil, nil, 0, err
	}
	p, tIter, err := partition.TimeBalanced(n, costs, pl.borderBytes())
	if err != nil {
		return nil, nil, 0, err
	}
	return p, costs, tIter, nil
}
