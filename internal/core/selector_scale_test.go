package core

import (
	"testing"
	"time"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/sim"
	"apples/internal/userspec"
)

// newGridAgent builds a dedicated cluster-of-clusters scenario with
// oracle information — the shape the heuristic selectors exist for.
func newGridAgent(t testing.TB, clusters, per int, spec SelectorSpec) *Agent {
	t.Helper()
	eng := sim.NewEngine()
	tp := grid.ClusterOfClusters(eng, grid.ClusterOptions{
		Clusters: clusters, PerCluster: per, Seed: 7, Quiet: true,
	})
	agent, err := NewAgent(tp, hat.Jacobi2D(4000, 40), &userspec.Spec{Decomposition: "strip"},
		OracleInformation(tp), WithSelector(spec))
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

// TestGreedySelector2048Hosts is the "past the 2^n wall" smoke test:
// one greedy scheduling round over a 2048-host grid must stay
// interactive (< 50ms wall-clock; relaxed under the race detector). The
// round exercises the whole large-pool path — class-collapsed routes,
// the lazy link snapshot, the sampled selector model, and the streaming
// coordinator.
func TestGreedySelector2048Hosts(t *testing.T) {
	agent := newGridAgent(t, 128, 16, SelectorSpec{Kind: SelectorGreedy})
	budget := 50 * time.Millisecond
	if raceEnabled {
		budget = 500 * time.Millisecond
	}
	best := time.Duration(0)
	var considered int
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		sched, err := agent.Schedule(4000)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); trial == 0 || d < best {
			best = d
		}
		considered = sched.CandidatesConsidered
		if got := len(sched.Placement.Assignments); got == 0 {
			t.Fatal("empty placement")
		}
	}
	if best > budget {
		t.Errorf("greedy round over 2048 hosts took %v (best of 3), budget %v", best, budget)
	}
	if considered < 32 {
		t.Errorf("greedy considered only %d candidate sets over 2048 hosts", considered)
	}
	t.Logf("2048-host greedy round: %v (best of 3), %d candidates", best, considered)
}

// TestHeuristicSelectors512Hosts checks beam and lpga complete a round
// on a 512-host grid and agree on feasibility — a breadth check that
// every family survives pools far past the exhaustive range.
func TestHeuristicSelectors512Hosts(t *testing.T) {
	for _, spec := range []SelectorSpec{
		{Kind: SelectorBeam, BeamWidth: 8},
		{Kind: SelectorLPGA, Seed: 1},
	} {
		agent := newGridAgent(t, 32, 16, spec)
		sched, err := agent.Schedule(4000)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if len(sched.Placement.Assignments) == 0 {
			t.Fatalf("%s: empty placement", spec.Kind)
		}
	}
}
