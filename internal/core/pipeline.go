package core

import (
	"fmt"
	"math"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/react"
	"apples/internal/userspec"
)

// PipelineSchedule is the chosen schedule of a PipelineAgent: either a
// producer/consumer mapping with a tuned pipeline unit, or a single-site
// fallback when no pair beats the best single machine.
type PipelineSchedule struct {
	// Producer and Consumer name the mapping; for a single-site schedule
	// both equal SingleSite and Unit is 0.
	Producer, Consumer string
	// SingleSite is non-empty when one machine alone is predicted best.
	SingleSite string
	// Unit is the chosen pipeline transfer unit (surface functions per
	// subdomain).
	Unit int
	// Predicted is the estimated execution time in seconds.
	Predicted float64
	// CandidatesConsidered counts evaluated mappings (pairs + singles).
	CandidatesConsidered int
}

// String summarizes the schedule.
func (s *PipelineSchedule) String() string {
	if s.SingleSite != "" {
		return fmt.Sprintf("pipeline-schedule{single-site=%s pred=%.0fs}", s.SingleSite, s.Predicted)
	}
	return fmt.Sprintf("pipeline-schedule{%s->%s unit=%d pred=%.0fs}",
		s.Producer, s.Consumer, s.Unit, s.Predicted)
}

// PipelineAgent is the AppLeS for two-task pipelined applications —
// exactly the agent Section 4.2 sketches for 3D-REACT: the HAT supplies
// computation-to-communication ratios and per-architecture
// implementations, the Resource Selector proposes viable machine pairs
// under the User Specifications, the Planner parameterizes the analytic
// pipeline model with forecasts and derives the transfer unit "which
// yields the necessary overlap", and the Performance Estimator compares
// candidate mappings (including single-site fallbacks) under the user's
// metric.
type PipelineAgent struct {
	tp   *grid.Topology
	tpl  *hat.Template
	spec *userspec.Spec
	info Information
	opt  react.Options
}

// NewPipelineAgent assembles a pipeline agent. The template must be
// task-parallel with lhsf/logd tasks joined by a PipelineFlow comm edge
// (the 3D-REACT shape).
func NewPipelineAgent(tp *grid.Topology, tpl *hat.Template, spec *userspec.Spec, info Information, opt react.Options) (*PipelineAgent, error) {
	if err := tpl.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w: %w", ErrBadTemplate, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tpl.Paradigm != hat.TaskParallel {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs a task-parallel template, got %s", ErrBadTemplate, tpl.Paradigm)
	}
	if _, ok := tpl.Task("lhsf"); !ok {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs an lhsf task", ErrBadTemplate)
	}
	if _, ok := tpl.Task("logd"); !ok {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs a logd task", ErrBadTemplate)
	}
	hasFlow := false
	for _, c := range tpl.Comms {
		if c.Pattern == hat.PipelineFlow {
			hasFlow = true
		}
	}
	if !hasFlow {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs a pipeline comm edge", ErrBadTemplate)
	}
	return &PipelineAgent{tp: tp, tpl: tpl, spec: spec, info: info, opt: opt}, nil
}

// modelFor parameterizes the analytic pipeline model for one mapping,
// discounting machine speeds by forecast availability and the link by
// forecast bandwidth — the dynamic-information step the paper adds over
// the developers' hand-built static model. Forecasts come from the given
// information view (a per-round snapshot during evaluation).
func (a *PipelineAgent) modelFor(info Information, producer, consumer *grid.Host) (*react.Model, error) {
	m, err := react.NewModel(a.tp, a.tpl, producer.Name, consumer.Name, a.opt)
	if err != nil {
		return nil, err
	}
	availP := info.Availability(producer.Name)
	availC := info.Availability(consumer.Name)
	if availP <= 0 {
		availP = 0.01
	}
	if availC <= 0 {
		availC = 0.01
	}
	m.TL /= availP
	m.TD /= availC
	if bw := info.RouteBandwidth(producer.Name, consumer.Name); bw > 0 && bw < 1e29 {
		var comm hat.Comm
		for _, c := range a.tpl.Comms {
			if c.Pattern == hat.PipelineFlow {
				comm = c
			}
		}
		m.SecPerUnitXfer = comm.BytesPerUnit / 1e6 / bw
	}
	m.Latency = info.RouteLatency(producer.Name, consumer.Name)
	return m, nil
}

// singleSitePrediction estimates a machine running both tasks alone,
// discounted by forecast availability.
func (a *PipelineAgent) singleSitePrediction(info Information, h *grid.Host) (float64, error) {
	t, err := react.PredictSingleSite(a.tp, a.tpl, h.Name, a.opt)
	if err != nil {
		return 0, err
	}
	avail := info.Availability(h.Name)
	if avail <= 0 {
		avail = 0.01
	}
	return t / avail, nil
}

// evaluate scores every feasible mapping — each single machine and each
// ordered producer/consumer pair — against a per-round information
// snapshot and returns them as the shared Candidate representation:
// single-site mappings have one host and Unit 0, pipeline mappings have
// [producer, consumer] and the tuned transfer unit. Every supported
// metric reduces to minimizing predicted time here (speedup is
// bestSingle/t, monotone in t for a fixed baseline), so Score is the
// predicted execution time.
func (a *PipelineAgent) evaluate() ([]Candidate, error) {
	pool := a.spec.Filter(a.tp.Hosts())
	if len(pool) == 0 {
		return nil, fmt.Errorf("core: %w: user specification filters out every machine", ErrNoFeasibleHosts)
	}
	names := make([]string, len(pool))
	for i, h := range pool {
		names[i] = h.Name
	}
	info := SnapshotInformation(a.info, names)

	var cands []Candidate
	for _, h := range pool {
		t, err := a.singleSitePrediction(info, h)
		if err != nil {
			continue
		}
		cands = append(cands, Candidate{Hosts: []string{h.Name}, PredictedTotal: t, Score: t})
	}

	minU, maxU := a.tpl.PipelineUnitMin, a.tpl.PipelineUnitMax
	if minU == 0 {
		minU = 1
	}
	if maxU < minU {
		maxU = minU
	}
	for _, p := range pool {
		for _, c := range pool {
			if p.Name == c.Name {
				continue
			}
			m, err := a.modelFor(info, p, c)
			if err != nil {
				continue
			}
			u, t := m.BestUnit(minU, maxU)
			cands = append(cands, Candidate{Hosts: []string{p.Name, c.Name}, PredictedTotal: t, Score: t, Unit: u})
		}
	}
	return cands, nil
}

// scheduleFrom reduces evaluated candidates to the chosen mapping: the
// strictly best score wins, ties keep the earliest candidate (single-site
// mappings are evaluated before pairs, as before).
func (a *PipelineAgent) scheduleFrom(cands []Candidate) (*PipelineSchedule, error) {
	bestIdx, bestScore := -1, math.Inf(1)
	for i, c := range cands {
		if c.Score < bestScore {
			bestIdx, bestScore = i, c.Score
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("core: %w: no feasible pipeline mapping among %d candidates", ErrNoFeasiblePlan, len(cands))
	}
	c := cands[bestIdx]
	best := &PipelineSchedule{Predicted: c.Score, CandidatesConsidered: len(cands)}
	if len(c.Hosts) == 1 {
		best.SingleSite = c.Hosts[0]
		best.Producer, best.Consumer = c.Hosts[0], c.Hosts[0]
	} else {
		best.Producer, best.Consumer = c.Hosts[0], c.Hosts[1]
		best.Unit = c.Unit
	}
	return best, nil
}

// Schedule runs the blueprint: filter machines through the US, evaluate
// every ordered pair (and every single machine), and return the mapping
// with the best predicted performance under the user's metric.
func (a *PipelineAgent) Schedule() (*PipelineSchedule, error) {
	cands, err := a.evaluate()
	if err != nil {
		return nil, err
	}
	return a.scheduleFrom(cands)
}

// ScheduleExplained runs the blueprint and additionally returns the top-k
// candidate mappings sorted ascending by score — the same Candidate
// surface Agent.ScheduleExplained exposes, so callers explain both
// blueprints uniformly. topK <= 0 returns every feasible candidate.
func (a *PipelineAgent) ScheduleExplained(topK int) (*PipelineSchedule, []Candidate, error) {
	cands, err := a.evaluate()
	if err != nil {
		return nil, nil, err
	}
	best, err := a.scheduleFrom(cands)
	if err != nil {
		return nil, nil, err
	}
	return best, rankCandidates(cands, topK), nil
}

// Candidates evaluates every mapping and returns the top-k sorted
// ascending by score, without committing to a schedule. k <= 0 returns
// all of them.
func (a *PipelineAgent) Candidates(k int) ([]Candidate, error) {
	cands, err := a.evaluate()
	if err != nil {
		return nil, err
	}
	return rankCandidates(cands, k), nil
}

// Run schedules and immediately actuates: the pipeline executes on the
// simulated machines (or the single-site variant runs sequentially) and
// the measured time is returned alongside the schedule.
func (a *PipelineAgent) Run() (*PipelineSchedule, float64, error) {
	s, err := a.Schedule()
	if err != nil {
		return nil, 0, err
	}
	if s.SingleSite != "" {
		res, err := react.RunSingleSite(a.tp, a.tpl, s.SingleSite, a.opt)
		if err != nil {
			return s, 0, err
		}
		return s, res.Time, nil
	}
	res, err := react.RunPipeline(a.tp, a.tpl, s.Producer, s.Consumer, s.Unit, a.opt)
	if err != nil {
		return s, 0, err
	}
	return s, res.Time, nil
}
