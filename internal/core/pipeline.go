package core

import (
	"fmt"
	"iter"
	"sort"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/react"
	"apples/internal/userspec"
)

// PipelineSchedule is the chosen schedule of a PipelineAgent: either a
// producer/consumer mapping with a tuned pipeline unit, or a single-site
// fallback when no pair beats the best single machine.
type PipelineSchedule struct {
	// Producer and Consumer name the mapping; for a single-site schedule
	// both equal SingleSite and Unit is 0.
	Producer, Consumer string
	// SingleSite is non-empty when one machine alone is predicted best.
	SingleSite string
	// Unit is the chosen pipeline transfer unit (surface functions per
	// subdomain).
	Unit int
	// Predicted is the estimated execution time in seconds.
	Predicted float64
	// CandidatesConsidered counts enumerated mappings (singles + ordered
	// pairs); mappings the model rejects are still counted as considered.
	CandidatesConsidered int
}

// String summarizes the schedule.
func (s *PipelineSchedule) String() string {
	if s.SingleSite != "" {
		return fmt.Sprintf("pipeline-schedule{single-site=%s pred=%.0fs}", s.SingleSite, s.Predicted)
	}
	return fmt.Sprintf("pipeline-schedule{%s->%s unit=%d pred=%.0fs}",
		s.Producer, s.Consumer, s.Unit, s.Predicted)
}

// PipelineAgent is the AppLeS for two-task pipelined applications —
// exactly the agent Section 4.2 sketches for 3D-REACT: the HAT supplies
// computation-to-communication ratios and per-architecture
// implementations, the Resource Selector proposes viable machine pairs
// under the User Specifications, the Planner parameterizes the analytic
// pipeline model with forecasts and derives the transfer unit "which
// yields the necessary overlap", and the Performance Estimator compares
// candidate mappings (including single-site fallbacks) under the user's
// metric. Like Agent, it is a thin instantiation of the shared
// Coordinator round, so it evaluates mappings in parallel against a
// per-round information snapshot and accepts the same options.
type PipelineAgent struct {
	tp    *grid.Topology
	tpl   *hat.Template
	spec  *userspec.Spec
	coord Coordinator
	opt   react.Options
}

// NewPipelineAgent assembles a pipeline agent. The template must be
// task-parallel with lhsf/logd tasks joined by a PipelineFlow comm edge
// (the 3D-REACT shape). Options tune the shared evaluation engine
// exactly as for NewAgent (the pipeline blueprint has no memory model,
// so WithSpillFactor is ignored, and no pruning bound, so WithPruning is
// a no-op).
func NewPipelineAgent(tp *grid.Topology, tpl *hat.Template, spec *userspec.Spec, info Information, opt react.Options, opts ...AgentOption) (*PipelineAgent, error) {
	if err := tpl.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w: %w", ErrBadTemplate, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tpl.Paradigm != hat.TaskParallel {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs a task-parallel template, got %s", ErrBadTemplate, tpl.Paradigm)
	}
	if _, ok := tpl.Task("lhsf"); !ok {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs an lhsf task", ErrBadTemplate)
	}
	if _, ok := tpl.Task("logd"); !ok {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs a logd task", ErrBadTemplate)
	}
	hasFlow := false
	for _, c := range tpl.Comms {
		if c.Pattern == hat.PipelineFlow {
			hasFlow = true
		}
	}
	if !hasFlow {
		return nil, fmt.Errorf("core: %w: pipeline blueprint needs a pipeline comm edge", ErrBadTemplate)
	}
	cfg := newCoordConfig(info)
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if err := cfg.selector.validate(); err != nil {
		return nil, err
	}
	return &PipelineAgent{tp: tp, tpl: tpl, spec: spec, coord: cfg.Coordinator, opt: opt}, nil
}

// modelFor parameterizes the analytic pipeline model for one mapping,
// discounting machine speeds by forecast availability and the link by
// forecast bandwidth — the dynamic-information step the paper adds over
// the developers' hand-built static model. Forecasts come from the given
// information view (a per-round snapshot during evaluation).
func (a *PipelineAgent) modelFor(info Information, producer, consumer *grid.Host) (*react.Model, error) {
	m, err := react.NewModel(a.tp, a.tpl, producer.Name, consumer.Name, a.opt)
	if err != nil {
		return nil, err
	}
	m.TL /= floorAvailability(info.Availability(producer.Name))
	m.TD /= floorAvailability(info.Availability(consumer.Name))
	if bw := info.RouteBandwidth(producer.Name, consumer.Name); bw > 0 && bw < 1e29 {
		var comm hat.Comm
		for _, c := range a.tpl.Comms {
			if c.Pattern == hat.PipelineFlow {
				comm = c
			}
		}
		m.SecPerUnitXfer = comm.BytesPerUnit / 1e6 / bw
	}
	m.Latency = info.RouteLatency(producer.Name, consumer.Name)
	return m, nil
}

// singleSitePrediction estimates a machine running both tasks alone,
// discounted by forecast availability.
func (a *PipelineAgent) singleSitePrediction(info Information, h *grid.Host) (float64, error) {
	t, err := react.PredictSingleSite(a.tp, a.tpl, h.Name, a.opt)
	if err != nil {
		return 0, err
	}
	return t / floorAvailability(info.Availability(h.Name)), nil
}

// pipelinePairLimit bounds the quadratic pair family for heuristic
// selector kinds: ordered pairs are drawn from the pairFactor×BeamWidth
// most effective hosts (speed × forecast availability), which keeps
// thousand-host pools tractable while singles still cover the full pool.
const pipelinePairFactor = 4

// pairSelector streams every single machine followed by ordered
// producer/consumer pairs. The exhaustive kind enumerates every pair in
// pool order — the same sequence the legacy slice selector returned;
// heuristic kinds restrict the pair family to the top hosts by frozen
// effective speed, name tie-break.
func pairSelector(spec SelectorSpec, info Information) ResourceSelector {
	limit := 0
	if spec.Kind != SelectorExhaustive {
		limit = pipelinePairFactor * spec.BeamWidth
	}
	return SelectorStreamFunc(func(pool []*grid.Host) iter.Seq[[]*grid.Host] {
		pairPool := pool
		if limit > 0 && len(pool) > limit {
			pairPool = append([]*grid.Host(nil), pool...)
			eff := make(map[string]float64, len(pool))
			for _, h := range pool {
				eff[h.Name] = h.Speed * floorAvailability(info.Availability(h.Name))
			}
			sort.SliceStable(pairPool, func(i, j int) bool {
				if eff[pairPool[i].Name] != eff[pairPool[j].Name] {
					return eff[pairPool[i].Name] > eff[pairPool[j].Name]
				}
				return pairPool[i].Name < pairPool[j].Name
			})
			pairPool = pairPool[:limit]
		}
		return func(yield func([]*grid.Host) bool) {
			for _, h := range pool {
				if !yield([]*grid.Host{h}) {
					return
				}
			}
			for _, p := range pairPool {
				for _, c := range pairPool {
					if p.Name != c.Name && !yield([]*grid.Host{p, c}) {
						return
					}
				}
			}
		}
	})
}

// round assembles the pipeline blueprint's Round: the US-filtered pool, a
// Resource Selector streaming every single machine followed by ordered
// producer/consumer pairs (all of them under the exhaustive kind; pairs
// among the most effective hosts under the heuristic kinds), and an
// evaluator that parameterizes the analytic model and tunes the transfer
// unit. Single-site mappings have one host and Unit 0; pipeline mappings
// have [producer, consumer] and the tuned unit. Every supported metric
// reduces to minimizing predicted time here (speedup is bestSingle/t,
// monotone in t for a fixed baseline), so Score is the predicted
// execution time. The blueprint has no pruning bound, so Round.Bound is
// nil and WithPruning is a no-op.
func (a *PipelineAgent) round() Round {
	spec := a.coord.selector.normalized()
	return Round{
		Pool:     a.spec.Filter(a.tp.Hosts()),
		Selector: string(spec.Kind),
		Bind: func(info Information, _ bool) (ResourceSelector, CandidateEvaluator, error) {
			sel := pairSelector(spec, info)

			minU, maxU := a.tpl.PipelineUnitMin, a.tpl.PipelineUnitMax
			if minU == 0 {
				minU = 1
			}
			if maxU < minU {
				maxU = minU
			}

			ev := CandidateEvaluatorFunc(func(set []*grid.Host) (Candidate, bool) {
				if len(set) == 1 {
					t, err := a.singleSitePrediction(info, set[0])
					if err != nil {
						return Candidate{}, false
					}
					return Candidate{Hosts: []string{set[0].Name}, PredictedTotal: t, Score: t}, true
				}
				m, err := a.modelFor(info, set[0], set[1])
				if err != nil {
					return Candidate{}, false
				}
				u, t := m.BestUnit(minU, maxU)
				return Candidate{Hosts: []string{set[0].Name, set[1].Name}, PredictedTotal: t, Score: t, Unit: u}, true
			})
			return sel, ev, nil
		},
	}
}

// evaluate runs the shared Coordinator round over the pipeline blueprint.
func (a *PipelineAgent) evaluateRound() ([]Candidate, int, error) {
	return a.coord.EvaluateRound(a.round())
}

// scheduleFrom reduces evaluated candidates to the chosen mapping via the
// shared (score, index) rule: the strictly best score wins, ties keep the
// earliest candidate (single-site mappings are enumerated before pairs,
// as before).
func (a *PipelineAgent) scheduleFrom(cands []Candidate, considered int) (*PipelineSchedule, error) {
	bestIdx := bestCandidate(cands)
	if bestIdx < 0 {
		return nil, fmt.Errorf("core: %w: no feasible pipeline mapping among %d candidates", ErrNoFeasiblePlan, considered)
	}
	c := cands[bestIdx]
	best := &PipelineSchedule{Predicted: c.Score, CandidatesConsidered: considered}
	if len(c.Hosts) == 1 {
		best.SingleSite = c.Hosts[0]
		best.Producer, best.Consumer = c.Hosts[0], c.Hosts[0]
	} else {
		best.Producer, best.Consumer = c.Hosts[0], c.Hosts[1]
		best.Unit = c.Unit
	}
	return best, nil
}

// Schedule runs the blueprint: filter machines through the US, evaluate
// every ordered pair (and every single machine), and return the mapping
// with the best predicted performance under the user's metric.
func (a *PipelineAgent) Schedule() (*PipelineSchedule, error) {
	cands, considered, err := a.evaluateRound()
	if err != nil {
		return nil, err
	}
	return a.scheduleFrom(cands, considered)
}

// ScheduleExplained runs the blueprint and additionally returns the top-k
// candidate mappings sorted ascending by score — the same Candidate
// surface Agent.ScheduleExplained exposes, so callers explain both
// blueprints uniformly. topK <= 0 returns every feasible candidate.
func (a *PipelineAgent) ScheduleExplained(topK int) (*PipelineSchedule, []Candidate, error) {
	cands, considered, err := a.evaluateRound()
	if err != nil {
		return nil, nil, err
	}
	best, err := a.scheduleFrom(cands, considered)
	if err != nil {
		return nil, nil, err
	}
	return best, rankCandidates(cands, topK), nil
}

// Candidates evaluates every mapping and returns the top-k sorted
// ascending by score, without committing to a schedule. k <= 0 returns
// all of them.
func (a *PipelineAgent) Candidates(k int) ([]Candidate, error) {
	cands, _, err := a.evaluateRound()
	if err != nil {
		return nil, err
	}
	return rankCandidates(cands, k), nil
}

// Run schedules and immediately actuates: the pipeline executes on the
// simulated machines (or the single-site variant runs sequentially) and
// the measured time is returned alongside the schedule.
func (a *PipelineAgent) Run() (*PipelineSchedule, float64, error) {
	s, err := a.Schedule()
	if err != nil {
		return nil, 0, err
	}
	hosts := []string{s.Producer, s.Consumer}
	if s.SingleSite != "" {
		hosts = hosts[:0]
		hosts = append(hosts, s.SingleSite)
	}
	auditKey := a.coord.auditPrediction(s.Predicted, hostClass(a.tp, hosts))
	sp := a.coord.actuateSpan()
	defer sp.End()
	if s.SingleSite != "" {
		res, err := react.RunSingleSite(a.tp, a.tpl, s.SingleSite, a.opt)
		if err != nil {
			return s, 0, err
		}
		a.coord.auditActual(auditKey, res.Time)
		return s, res.Time, nil
	}
	res, err := react.RunPipeline(a.tp, a.tpl, s.Producer, s.Consumer, s.Unit, a.opt)
	if err != nil {
		return s, 0, err
	}
	a.coord.auditActual(auditKey, res.Time)
	return s, res.Time, nil
}
