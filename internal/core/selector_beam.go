package core

import (
	"iter"
	"sort"

	"apples/internal/grid"
)

// beamIterations bounds the local-search rounds; the beam always
// converges (dedup kills revisits) well before this on pools the gap
// tests cover.
const beamIterations = 16

// beamMoveFanout is how many ranked non-members each state tries to add
// or swap in per iteration.
const beamMoveFanout = 6

// beamSelector runs a width-W beam search over memberships: the beam
// seeds from the desirability-prefix family (all of which it also
// yields, so it never does worse than the legacy large-pool fallback)
// plus the top single hosts, then iterates add / drop / swap moves
// scored by the surrogate objective, keeping the best W distinct states
// per round and yielding each state that newly enters the beam. All
// orderings are deterministic — ties break on the canonical membership
// key — so equal specs enumerate equal candidates.
type beamSelector struct {
	rs      *resourceSelector
	width   int
	maxSets int
	truncation
}

// SelectSeq implements ResourceSelector.
func (b *beamSelector) SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host] {
	b.truncation = truncation{}
	m := buildSelModel(b.rs, pool)
	width := b.width
	if width <= 0 {
		width = 8
	}
	return func(yield func([]*grid.Host) bool) {
		if m.n == 0 {
			return
		}
		stopped := false
		yielded := make(map[string]bool)
		emitted := 0
		emit := func(s *selState) bool {
			if stopped || yielded[s.key()] {
				return !stopped
			}
			yielded[s.key()] = true
			if b.maxSets > 0 && emitted >= b.maxSets {
				b.dropped++
				b.capped = true
				return true
			}
			emitted++
			if !yield(m.chain(s.idxs)) {
				stopped = true
			}
			return !stopped
		}

		type scored struct {
			st *selState
			f  float64
		}
		var beam []scored
		admit := func(s *selState) {
			beam = append(beam, scored{s, m.score(s)})
		}

		// Seed: the prefix ladder plus the top-eff singles.
		prefix := newSelState(m.n)
		next := 0
		for _, size := range prefixSizes(m.n) {
			for len(prefix.idxs) < size {
				m.add(prefix, m.rank[next])
				next++
			}
			s := prefix.clone()
			if !emit(s) {
				return
			}
			admit(s)
		}
		for i := 0; i < min(width, m.n); i++ {
			s := newSelState(m.n)
			m.add(s, m.effOrder[i])
			if !emit(s) {
				return
			}
			admit(s)
		}

		trim := func() {
			sort.SliceStable(beam, func(a, c int) bool {
				if beam[a].f != beam[c].f {
					return beam[a].f < beam[c].f
				}
				return beam[a].st.key() < beam[c].st.key()
			})
			// Distinct memberships only.
			kept := beam[:0]
			seen := make(map[string]bool)
			for _, s := range beam {
				k := s.st.key()
				if seen[k] {
					continue
				}
				seen[k] = true
				kept = append(kept, s)
				if len(kept) == width {
					break
				}
			}
			beam = kept
		}
		trim()

		visited := make(map[string]bool, len(beam))
		for _, s := range beam {
			visited[s.st.key()] = true
		}
		for iterN := 0; iterN < beamIterations; iterN++ {
			frontier := beam
			for _, cur := range frontier {
				st := cur.st
				// Adds: the first beamMoveFanout ranked non-members.
				tried := 0
				for _, i := range m.rank {
					if st.member[i] {
						continue
					}
					succ := st.clone()
					m.add(succ, i)
					if !visited[succ.key()] {
						visited[succ.key()] = true
						beam = append(beam, scored{succ, m.score(succ)})
					}
					if tried++; tried == beamMoveFanout {
						break
					}
				}
				// Drops: every member on small sets; the weakest members
				// (lowest eff, then highest distance) on large ones.
				if len(st.idxs) > 1 {
					drops := st.idxs
					if len(drops) > beamMoveFanout {
						drops = append([]int(nil), st.idxs...)
						sort.Slice(drops, func(a, c int) bool {
							if m.eff[drops[a]] != m.eff[drops[c]] {
								return m.eff[drops[a]] < m.eff[drops[c]]
							}
							return m.pool[drops[a]].Name < m.pool[drops[c]].Name
						})
						drops = drops[:beamMoveFanout]
					}
					for _, i := range drops {
						succ := st.clone()
						m.remove(succ, i)
						if !visited[succ.key()] {
							visited[succ.key()] = true
							beam = append(beam, scored{succ, m.score(succ)})
						}
					}
					// Swaps: replace the weakest member (lowest eff, name
					// tie-break) with a ranked non-member.
					weakest := st.idxs[0]
					for _, i := range st.idxs[1:] {
						if m.eff[i] < m.eff[weakest] ||
							(m.eff[i] == m.eff[weakest] && m.pool[i].Name < m.pool[weakest].Name) {
							weakest = i
						}
					}
					tried = 0
					for _, i := range m.rank {
						if st.member[i] {
							continue
						}
						succ := st.clone()
						m.remove(succ, weakest)
						m.add(succ, i)
						if !visited[succ.key()] {
							visited[succ.key()] = true
							beam = append(beam, scored{succ, m.score(succ)})
						}
						if tried++; tried == beamMoveFanout {
							break
						}
					}
				}
			}
			if len(beam) == len(frontier) {
				break
			}
			trim()
			// Yield states that survived into the beam and are new.
			progressed := false
			for _, s := range beam {
				if !yielded[s.st.key()] {
					progressed = true
					if !emit(s.st) {
						return
					}
				}
			}
			if !progressed {
				break
			}
		}
	}
}
