package core

import (
	"iter"

	"apples/internal/grid"
)

// maxGreedyGrowth caps how far the marginal-gain chain grows on very
// large pools; the surrogate objective has always turned over well
// before this on cluster topologies, and the prefix ladder still covers
// every larger size.
const maxGreedyGrowth = 256

// greedyPatience stops the growth after this many consecutive additions
// that fail to improve the best surrogate score seen: once the marginal
// host only hurts, every later one does too (it was a worse candidate at
// every earlier step), so further growth just burns evaluation budget
// the prefix ladder already covers.
const greedyPatience = 8

// greedyEmitDense is the growth size below which every membership is
// yielded; above it only every greedyEmitStride-th is, keeping the
// evaluation cost of the growth family linear in the pool instead of
// quadratic in the growth cap.
const (
	greedyEmitDense  = 32
	greedyEmitStride = 4
)

// greedySelector is the interactive-latency heuristic: it yields the
// desirability-ranking prefixes (the legacy >12-host fallback family)
// plus a marginal-gain grown set — starting from the most desirable
// host and repeatedly adding whichever host most improves the surrogate
// objective, yielding every grown membership that differs from the
// same-size prefix. O(pool) candidate sets, no randomness, fully
// deterministic: ties break by host name through the model's orderings.
type greedySelector struct {
	rs      *resourceSelector
	maxSets int
	truncation
}

// SelectSeq implements ResourceSelector. Model construction (the only
// O(pool·samples) work) runs eagerly; each yielded set is chained
// lazily.
func (g *greedySelector) SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host] {
	g.truncation = truncation{}
	m := buildSelModel(g.rs, pool)
	return func(yield func([]*grid.Host) bool) {
		if m.n == 0 {
			return
		}
		stopped := false
		seen := make(map[string]bool)
		// emit chains and yields one membership unless the cap hit (the
		// remainder is counted as dropped) or the consumer stopped.
		emitted := 0
		emit := func(s *selState) bool {
			if stopped || seen[s.key()] {
				return !stopped
			}
			seen[s.key()] = true
			if g.maxSets > 0 && emitted >= g.maxSets {
				g.dropped++
				g.capped = true
				return true
			}
			emitted++
			if !yield(m.chain(s.idxs)) {
				stopped = true
			}
			return !stopped
		}

		// Desirability prefixes, smallest first.
		prefix := newSelState(m.n)
		sizes := prefixSizes(m.n)
		next := 0
		for _, size := range sizes {
			for len(prefix.idxs) < size {
				m.add(prefix, m.rank[next])
				next++
			}
			if !emit(prefix.clone()) {
				return
			}
		}

		// Marginal-gain growth: add the host that best improves the
		// surrogate at each step. Unlike the prefix family this accounts
		// for pair costs against the current members, so it can step off
		// the ranking (e.g. keep a set single-site while the ranking
		// interleaves sites).
		grown := newSelState(m.n)
		m.add(grown, m.rank[0])
		limit := min(m.n, maxGreedyGrowth)
		bestSeen := m.score(grown)
		worse := 0
		for len(grown.idxs) < limit {
			k := len(grown.idxs)
			sd := 0.0
			if m.cost == nil {
				// Hoisted once per step: the sampled-mode pair delta for
				// any addition is (dist[i]·k + Σ member dists) / 2.
				sd = sumDist(m, grown)
			}
			bestIdx, bestScore := -1, 0.0
			for i := 0; i < m.n; i++ {
				if grown.member[i] {
					continue
				}
				var dp float64
				if m.cost != nil {
					dp = m.addPairDelta(grown, i)
				} else {
					dp = (m.dist[i]*float64(k) + sd) / 2
				}
				sc := surrogate(grown.sumEff+m.eff[i], grown.sumPair+dp, k+1)
				if bestIdx < 0 || sc < bestScore ||
					(sc == bestScore && m.pool[i].Name < m.pool[bestIdx].Name) {
					bestIdx, bestScore = i, sc
				}
			}
			if bestIdx < 0 {
				break
			}
			m.add(grown, bestIdx)
			stop := false
			if bestScore < bestSeen {
				bestSeen, worse = bestScore, 0
			} else if worse++; worse >= greedyPatience {
				stop = true
			}
			size := len(grown.idxs)
			if size <= greedyEmitDense || size%greedyEmitStride == 0 || size == limit || stop {
				if !emit(grown.clone()) {
					return
				}
			}
			if stop {
				break
			}
		}
	}
}
