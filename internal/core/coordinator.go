package core

import (
	"fmt"
	"iter"
	"math"
	"sync/atomic"
	"time"

	"apples/internal/grid"
	"apples/internal/obs"
	"apples/internal/obs/audit"
)

// This file is the generic half of the AppLeS blueprint (Figure 1): one
// Coordinator drives Resource Selector -> Planner -> Performance
// Estimator -> Actuator for *every* application paradigm. A concrete
// agent (the Jacobi2D Agent, the 3D-REACT PipelineAgent, or a future
// master/worker HAT agent) only supplies the pluggable subsystems below;
// the round itself — information snapshot, bounded parallel fan-out,
// optional selection-preserving pruning, and the deterministic
// (score, index) reduce — is shared code.

// ResourceSelector enumerates the candidate resource sets the Coordinator
// fans out in one scheduling round. For a data-parallel blueprint the
// sets are host chains; for a pipeline blueprint they are single machines
// and ordered producer/consumer pairs. The enumeration order is the
// tie-break order of the reduce, so it must be deterministic.
//
// The contract is streaming: SelectSeq returns a sequence the
// Coordinator consumes as candidates are produced, so a selector over a
// 2048-host pool never materializes an exponential slice. A yielded set
// is owned by the Coordinator afterwards — selectors must not reuse the
// backing array. Selector construction (ranking, cost models) should
// happen eagerly in SelectSeq so the round's "select" stage span keeps
// measuring it; only per-set work belongs inside the sequence.
// Slice-returning selectors keep working through ResourceSelectorFunc.
type ResourceSelector interface {
	SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host]
}

// ResourceSelectorFunc adapts a slice-returning function to the
// streaming ResourceSelector interface — the compatibility shim for
// pre-streaming selectors: the function runs eagerly (inside the select
// stage, as before) and the sequence yields its sets in order.
type ResourceSelectorFunc func(pool []*grid.Host) [][]*grid.Host

// SelectSeq implements ResourceSelector.
func (f ResourceSelectorFunc) SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host] {
	sets := f(pool)
	return func(yield func([]*grid.Host) bool) {
		for _, set := range sets {
			if !yield(set) {
				return
			}
		}
	}
}

// SelectorStreamFunc adapts a sequence-returning function directly to
// ResourceSelector, for selectors that are naturally streaming.
type SelectorStreamFunc func(pool []*grid.Host) iter.Seq[[]*grid.Host]

// SelectSeq implements ResourceSelector.
func (f SelectorStreamFunc) SelectSeq(pool []*grid.Host) iter.Seq[[]*grid.Host] { return f(pool) }

// TruncationReporter is implemented by selectors that may cap their
// enumeration (e.g. userspec.MaxResourceSets). After draining the
// sequence the Coordinator asks whether the cap hit and emits an
// EvTruncated trace event plus the sched_selector_truncated_total
// counter, so a capped round is visible in decision traces.
type TruncationReporter interface {
	// Truncated reports how many candidate sets the cap cut from the
	// most recent SelectSeq enumeration (capped is false when the
	// enumeration ran to completion).
	Truncated() (dropped int, capped bool)
}

// CandidateEvaluator is the fused Planner + Performance Estimator: it
// plans one candidate resource set and scores the plan under the user's
// metric, returning the evaluated Candidate (lower Score is better) or
// ok=false when the set is infeasible. Evaluate is called concurrently
// for distinct sets, so implementations must not mutate shared state;
// they read the round's frozen information view instead.
type CandidateEvaluator interface {
	Evaluate(set []*grid.Host) (c Candidate, ok bool)
}

// CandidateEvaluatorFunc adapts a function to CandidateEvaluator.
type CandidateEvaluatorFunc func(set []*grid.Host) (Candidate, bool)

// Evaluate implements CandidateEvaluator.
func (f CandidateEvaluatorFunc) Evaluate(set []*grid.Host) (Candidate, bool) { return f(set) }

// LowerBounder supplies a cheap bound on the best score any plan over a
// candidate set can achieve. The bound must never overestimate: the
// Coordinator skips a set only when its bound already exceeds the best
// score seen, so a sound bound makes pruning selection-preserving.
type LowerBounder interface {
	LowerBound(set []*grid.Host) float64
}

// LowerBoundFunc adapts a function to LowerBounder.
type LowerBoundFunc func(set []*grid.Host) float64

// LowerBound implements LowerBounder.
func (f LowerBoundFunc) LowerBound(set []*grid.Host) float64 { return f(set) }

// Round is one scheduling round handed to the Coordinator by a blueprint
// agent: the US-filtered host pool plus factories that bind the
// application-specific subsystems to the round's information view.
type Round struct {
	// Pool is the host pool after User Specification filtering. An empty
	// pool fails the round with ErrNoFeasibleHosts.
	Pool []*grid.Host
	// Bind builds the round's Resource Selector and fused
	// Planner+Estimator against the resolved information view (a frozen
	// snapshot when snapshotting is on; snapshotted reports which).
	Bind func(info Information, snapshotted bool) (ResourceSelector, CandidateEvaluator, error)
	// Bound, when non-nil, builds the pruning bound for the round. It is
	// only invoked when the Coordinator has pruning enabled, and may
	// return nil to decline (e.g. when the user's metric is not the one
	// the bound is sound for).
	Bound func(info Information) LowerBounder
	// Selector labels the round's candidate counter
	// (`sched_candidates_total{selector=...}`). The blueprint agents set
	// it to their configured selector kind; empty means "custom".
	Selector string
}

// Coordinator owns the generic AppLeS scheduling round. It is configured
// once per agent (information source, worker-pool width, pruning,
// snapshotting) and reused every round; the zero value is not useful —
// construct through NewCoordinator or an agent constructor.
type Coordinator struct {
	info Information

	// parallelism bounds the candidate-evaluation worker pool (0 =
	// GOMAXPROCS, 1 = sequential). See WithParallelism.
	parallelism int
	// pruning enables best-so-far candidate pruning for rounds that
	// supply a LowerBounder. See WithPruning.
	pruning bool
	// snapshot resolves the information pool once per round (default
	// true). See WithInfoSnapshot.
	snapshot bool
	// selector is the candidate-enumeration strategy the blueprint
	// agents bind each round (default exhaustive). See WithSelector.
	selector SelectorSpec

	// tracer receives the round's decision trace; nil (the default)
	// means tracing is off and every trace site reduces to one pointer
	// check. See WithTracer.
	tracer obs.Tracer
	// met holds pre-resolved metric handles; nil means metrics are off.
	// See WithMetrics.
	met *roundMetrics
	// stages times the round's phases into per-stage histograms (and
	// EvSpan trace events when its timer carries a tracer); nil means
	// stage timing is off. See WithStageTiming.
	stages *obs.StageTimer
	// rounds numbers scheduling rounds for the trace. Shared by pointer
	// so derived agents (clone, WaitOrRun's dedicated agent) keep ids
	// unique within one lineage.
	rounds *atomic.Uint64
	// aud, when non-nil, joins each Run's winning prediction with its
	// measured actual; audTenant labels the decisions. See WithAudit.
	aud       *audit.Engine
	audTenant string
}

// roundMetrics are the Coordinator's metric handles, resolved once by
// WithMetrics so the round hot path only performs atomic updates. The
// per-selector candidate counter is the exception: its registry key
// depends on the round's selector label, so it is resolved through the
// registry once per round (not per candidate).
type roundMetrics struct {
	rounds     *obs.Counter
	evaluated  *obs.Counter
	pruned     *obs.Counter
	infeasible *obs.Counter
	truncated  *obs.Counter

	// Delta-aware session rounds (ReschedSession): the fraction of the
	// frozen universe re-scored last round, and the running re-score
	// total.
	deltaRatio *obs.Gauge
	rescored   *obs.Counter

	roundLatency    *obs.Histogram
	snapshotLatency *obs.Histogram

	reg *obs.Metrics
}

// candidates resolves the labeled per-selector candidate counter,
// `sched_candidates_total{selector=...}`.
func (m *roundMetrics) candidates(selector string) *obs.Counter {
	if selector == "" {
		selector = "custom"
	}
	return m.reg.Counter(obs.NameWithLabels(obs.MetricCandidates, "selector", selector))
}

// NewCoordinator builds a coordinator over an information source with the
// given evaluation options, for callers assembling a custom blueprint
// agent outside the built-in Agent/PipelineAgent pair.
func NewCoordinator(info Information, opts ...AgentOption) *Coordinator {
	cfg := newCoordConfig(info)
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	c := cfg.Coordinator
	return &c
}

// Information returns the coordinator's underlying information source
// (not the per-round snapshot).
func (c *Coordinator) Information() Information { return c.info }

// View resolves the information view the coordinator would evaluate the
// named hosts against: a frozen snapshot when snapshotting is enabled,
// the live source otherwise. Sequential re-estimation paths (e.g. pricing
// an existing placement before a rescheduling decision) share it so they
// see exactly what a scheduling round would.
func (c *Coordinator) View(hosts []string) Information {
	if c.snapshot {
		return snapshotInformation(c.info, hosts)
	}
	return c.info
}

// EvaluateRound runs the blueprint round: resolve the information view,
// bind the subsystems, stream candidate sets off the selector, fan them
// across the worker pool, and reduce deterministically. It returns the
// feasible candidates in enumeration order plus the number of sets
// considered.
//
// The round proceeds in three steps:
//
//  1. snapshot the information pool for the filtered hosts, so every
//     availability/bandwidth/latency value is resolved exactly once
//     (large pools freeze per-link values and compose pairs on demand);
//  2. consume the selector's sequence as it is produced — sequentially
//     inline, or through a bounded worker pool fed by the producing
//     goroutine — planning and estimating each set against the immutable
//     snapshot; the full candidate list is never materialized;
//  3. merge worker results and reduce in enumeration-index order, which
//     makes the outcome independent of goroutine interleaving: the same
//     candidates are feasible with the same scores, so the eventual
//     (score, index) minimum is the one the sequential loop would have
//     picked.
//
// With pruning enabled and a bound supplied, workers additionally share
// the best score seen so far and skip sets whose lower bound already
// exceeds it. The bound never overestimates, so a pruned set could not
// have won; pruning only reduces how many sets are planned.
func (c *Coordinator) EvaluateRound(r Round) ([]Candidate, int, error) {
	return c.evaluateRound(r, nil, 0)
}

// evaluateRound is EvaluateRound with the SchedService's injection
// points exposed: a non-nil view is an externally resolved frozen
// information view (typically a cache-shared snapshot) that replaces
// the round's own freeze, and workers > 0 overrides the configured
// parallelism for this round only — the service grants each round's
// fan-out width out of a service-wide budget. With view == nil and
// workers == 0 this is exactly the standalone round; an injected view
// built by roundSnapshot over the same pool yields bit-identical
// decisions, since the view only changes who froze the values, never
// the values themselves.
func (c *Coordinator) evaluateRound(r Round, view infoView, workersOverride int) ([]Candidate, int, error) {
	if len(r.Pool) == 0 {
		return nil, 0, fmt.Errorf("core: %w: user specification filters out every host", ErrNoFeasibleHosts)
	}
	// Observability fast path: with no tracer, no metrics, and no stage
	// timing the round does zero extra work — no clock reads, no round
	// numbering, and the per-candidate sites below are single nil checks.
	tr, met, stages := c.tracer, c.met, c.stages
	observing := tr != nil || met != nil || stages != nil
	var round uint64
	var start time.Time
	if observing {
		round = c.rounds.Add(1)
		start = time.Now()
	}
	info := c.info
	workers := c.parallelism
	if workersOverride > 0 {
		workers = workersOverride
	}
	snapshotted := c.snapshot || view != nil
	switch {
	case view != nil:
		// An injected view is already frozen; the round reads it exactly
		// like a snapshot it built itself. The snapshot event re-reports
		// the original build's stats and marks the reuse.
		if tr != nil {
			st := view.Stats()
			tr.Emit(obs.Event{Round: round, Type: obs.EvSnapshot, Pool: st.Hosts,
				Pairs: st.Pairs, Queries: st.SourceQueries, SharedSnap: true})
		}
		info = view
	case c.snapshot:
		snapSpan := stages.Start(round, obs.StageSnapshot)
		snap := roundSnapshot(c.info, r.Pool)
		if observing {
			if met != nil {
				met.snapshotLatency.Observe(time.Since(start).Seconds())
			}
			if tr != nil {
				st := snap.Stats()
				tr.Emit(obs.Event{Round: round, Type: obs.EvSnapshot,
					Pool: st.Hosts, Pairs: st.Pairs, Queries: st.SourceQueries})
			}
			snapSpan.End()
		}
		info = snap
	default:
		// Without a frozen view, workers would race on the underlying
		// Information source (forecast banks are not thread-safe).
		workers = 1
	}
	selSpan := stages.Start(round, obs.StageSelect)
	sel, ev, err := r.Bind(info, snapshotted)
	if err != nil {
		return nil, 0, err
	}
	seq := sel.SelectSeq(r.Pool)
	selSpan.End()

	var bound LowerBounder
	var incumbent *bestScore
	if c.pruning && r.Bound != nil {
		if bound = r.Bound(info); bound != nil {
			incumbent = newBestScore()
		}
	}

	// evalOne plans and estimates candidate set i (0-based enumeration
	// index); it is called concurrently for distinct sets.
	evalOne := func(i int, set []*grid.Host) (Candidate, bool) {
		if incumbent != nil {
			lb := bound.LowerBound(set)
			if inc := incumbent.load(); lb > inc {
				if met != nil {
					met.pruned.Inc()
				}
				if tr != nil {
					tr.Emit(obs.Event{Round: round, Type: obs.EvPruned, Index: i + 1,
						Hosts: hostNames(set), Bound: lb, Incumbent: inc})
				}
				return Candidate{}, false
			}
		}
		cand, ok := ev.Evaluate(set)
		if !ok {
			if met != nil {
				met.infeasible.Inc()
			}
			if tr != nil {
				tr.Emit(obs.Event{Round: round, Type: obs.EvInfeasible, Index: i + 1,
					Hosts: hostNames(set)})
			}
			return Candidate{}, false
		}
		if met != nil {
			met.evaluated.Inc()
		}
		if tr != nil {
			tr.Emit(obs.Event{Round: round, Type: obs.EvCandidate, Index: i + 1,
				Hosts: cand.Hosts, Predicted: cand.PredictedTotal, Score: cand.Score})
		}
		if incumbent != nil {
			incumbent.update(cand.Score)
		}
		return cand, true
	}

	planSpan := stages.Start(round, obs.StagePlanEstimate)
	cands, considered := runStreamed(seq, workers, evalOne)
	planSpan.End()

	if observing {
		if met != nil {
			met.candidates(r.Selector).Add(uint64(considered))
		}
		if trc, ok := sel.(TruncationReporter); ok {
			if dropped, capped := trc.Truncated(); capped {
				if met != nil {
					met.truncated.Inc()
				}
				if tr != nil {
					tr.Emit(obs.Event{Round: round, Type: obs.EvTruncated,
						Considered: considered, Dropped: dropped})
				}
			}
		}
	}

	reduceSpan := stages.Start(round, obs.StageReduce)
	if observing {
		if met != nil {
			met.rounds.Inc()
			met.roundLatency.Observe(time.Since(start).Seconds())
		}
		if tr != nil {
			// The winner event applies the same deterministic
			// (score, index) reduce the blueprint agents use in
			// pickBest/scheduleFrom, so the trace closes every round with
			// the decision it produced.
			if bi := bestCandidate(cands); bi >= 0 {
				w := cands[bi]
				tr.Emit(obs.Event{Round: round, Type: obs.EvWinner, Hosts: w.Hosts,
					Predicted: w.PredictedTotal, Score: w.Score,
					Considered: considered, Planned: len(cands)})
			} else {
				tr.Emit(obs.Event{Round: round, Type: obs.EvWinner,
					Reason: "no-feasible-plan", Considered: considered})
			}
		}
		reduceSpan.End()
	}
	return cands, considered, nil
}

// actuateSpan opens the actuation-stage span for the most recent round
// (the blueprints' Run methods actuate right after Schedule). Inert
// when stage timing is off.
func (c *Coordinator) actuateSpan() obs.Span {
	return c.stages.Start(c.rounds.Load(), obs.StageActuate)
}

// hostNames flattens a candidate set for a trace event.
func hostNames(set []*grid.Host) []string {
	out := make([]string, len(set))
	for i, h := range set {
		out[i] = h.Name
	}
	return out
}

// bestCandidate reduces evaluated candidates with the deterministic
// (score, index) rule both blueprints share: the strictly lowest score
// wins, ties keep the earliest candidate in enumeration order. Returns
// -1 when no candidate is feasible.
func bestCandidate(cands []Candidate) int {
	bestIdx, best := -1, math.Inf(1)
	for i, c := range cands {
		if c.Score < best {
			bestIdx, best = i, c.Score
		}
	}
	return bestIdx
}
