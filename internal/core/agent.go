package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/partition"
	"apples/internal/userspec"
)

// Schedule is the Coordinator's chosen schedule for one run, plus the
// bookkeeping the Actuator and the experiments need.
type Schedule struct {
	// Placement is the data decomposition to actuate.
	Placement *partition.Placement
	// PredictedIterTime and PredictedTotal are the Performance Estimator's
	// expectations for one sweep and the full run.
	PredictedIterTime float64
	PredictedTotal    float64
	// Hosts lists the selected resources in strip-chain order.
	Hosts []string
	// CandidatesConsidered counts resource sets evaluated, and
	// CandidatesPlanned those that produced a feasible plan. With
	// WithPruning enabled, sets skipped by the bound are not planned, so
	// CandidatesPlanned can be lower (and timing-dependent under parallel
	// evaluation); the selected schedule itself never changes.
	CandidatesConsidered int
	CandidatesPlanned    int
	// InfoSource names the information pool variant used.
	InfoSource string
}

// String summarizes the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{hosts=%s predIter=%.4fs predTotal=%.2fs info=%s}",
		strings.Join(s.Hosts, ","), s.PredictedIterTime, s.PredictedTotal, s.InfoSource)
}

// Actuator implements a schedule on the target resource management
// system and reports the measured execution time. In this repository the
// target is the simulated metacomputer (the jacobi package provides the
// implementation); in the paper it was KeLP.
type Actuator interface {
	Actuate(p *partition.Placement) (measuredSeconds float64, err error)
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc func(p *partition.Placement) (float64, error)

// Actuate implements Actuator.
func (f ActuatorFunc) Actuate(p *partition.Placement) (float64, error) { return f(p) }

// Agent is an AppLeS: an application-level scheduling agent for one
// application instance (here, the Jacobi2D blueprint of Section 5). It is
// a thin instantiation of the shared Coordinator round: its Resource
// Selector enumerates strip-chain resource sets and its fused
// Planner+Estimator balances and prices each one.
type Agent struct {
	tp    *grid.Topology
	tpl   *hat.Template
	spec  *userspec.Spec
	coord Coordinator

	// SpillFactor mirrors the execution substrate's out-of-memory penalty
	// so the estimator prices spills honestly (default 25, matching
	// jacobi.Config).
	//
	// Deprecated: pass WithSpillFactor to NewAgent instead. Writing the
	// field still works for this release; it is read at every scheduling
	// round.
	SpillFactor float64
}

// NewAgent assembles an agent from its information pool: the application
// template (HAT), the user specification (US), and a dynamic information
// source (NWS, oracle, or static). Options tune the evaluation engine;
// the zero-option agent evaluates candidates in parallel over GOMAXPROCS
// workers against a per-round information snapshot and makes exactly the
// decision the sequential path would.
func NewAgent(tp *grid.Topology, tpl *hat.Template, spec *userspec.Spec, info Information, opts ...AgentOption) (*Agent, error) {
	if err := tpl.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w: %w", ErrBadTemplate, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tpl.Paradigm != hat.DataParallel || len(tpl.Tasks) != 1 {
		return nil, fmt.Errorf("core: %w: the Jacobi blueprint schedules single-task data-parallel templates, got %s with %d tasks",
			ErrBadTemplate, tpl.Paradigm, len(tpl.Tasks))
	}
	if spec.Decomposition != "" && spec.Decomposition != "strip" {
		return nil, fmt.Errorf("core: planner supports strip decompositions, user requested %q", spec.Decomposition)
	}
	cfg := newCoordConfig(info)
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if err := cfg.selector.validate(); err != nil {
		return nil, err
	}
	a := &Agent{tp: tp, tpl: tpl, spec: spec, coord: cfg.Coordinator, SpillFactor: 25}
	if cfg.spillFactor > 0 {
		a.SpillFactor = cfg.spillFactor
	}
	return a, nil
}

// clone copies the agent with its evaluation configuration, for derived
// agents (e.g. the dedicated-offer agent in WaitOrRun).
func (a *Agent) clone() *Agent {
	c := *a
	return &c
}

// Candidate is one evaluated resource set (or, for the pipeline
// blueprint, one task mapping), exposed by ScheduleExplained and
// Candidates so users can see what the Coordinator weighed.
type Candidate struct {
	Hosts             []string
	PredictedIterTime float64
	PredictedTotal    float64
	// Score is the user-metric objective (lower is better).
	Score float64
	// Placement is the planned decomposition for this set (nil for
	// pipeline candidates).
	Placement *partition.Placement
	// Unit is the pipeline transfer unit for pipeline candidates; 0 for
	// data-parallel candidates and single-site mappings.
	Unit int
}

// rankCandidates returns a copy of cands sorted ascending by score (ties
// keep evaluation order) and truncated to k when k > 0.
func rankCandidates(cands []Candidate, k int) []Candidate {
	ranked := append([]Candidate(nil), cands...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score < ranked[j].Score })
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// round assembles the Jacobi blueprint's Round for an n x n problem: the
// US-filtered pool, a Resource Selector enumerating strip-chain sets, the
// fused Planner+Estimator, and (under MinExecutionTime) the compute-time
// pruning bound. The Coordinator owns everything else — snapshotting,
// fan-out, pruning bookkeeping, and the deterministic reduce.
func (a *Agent) round(n int) Round {
	return Round{
		Pool:     a.spec.Filter(a.tp.Hosts()),
		Selector: string(a.coord.selector.normalized().Kind),
		Bind: func(info Information, snapshotted bool) (ResourceSelector, CandidateEvaluator, error) {
			rs := &resourceSelector{tp: a.tp, info: info}
			pl := &planner{tp: a.tp, tpl: a.tpl, info: info}
			es := newEstimator(a.tp, a.spec, a.tpl.Tasks[0].BytesPerUnit, a.SpillFactor, max(a.tpl.Iterations, 1))

			sel := newSelector(a.coord.selector, rs, a.spec.MaxResourceSets, snapshotted)

			// Solo baseline for the speedup metric: best predicted
			// single-host total.
			solo := math.Inf(1)
			if a.spec.Metric == userspec.MaxSpeedup {
				for _, h := range a.spec.Filter(a.tp.Hosts()) {
					p, costs, _, err := pl.plan(n, []*grid.Host{h})
					if err != nil {
						continue
					}
					if t := es.iterTime(p, costs) * float64(es.iterations); t < solo {
						solo = t
					}
				}
			}

			ev := CandidateEvaluatorFunc(func(set []*grid.Host) (Candidate, bool) {
				p, costs, _, err := pl.plan(n, set)
				if err != nil {
					return Candidate{}, false
				}
				iterT := es.iterTime(p, costs)
				hosts := make([]string, len(set))
				for j, h := range set {
					hosts[j] = h.Name
				}
				return Candidate{
					Hosts:             hosts,
					PredictedIterTime: iterT,
					PredictedTotal:    iterT * float64(es.iterations),
					Score:             es.score(iterT, p, solo),
					Placement:         p,
				}, true
			})
			return sel, ev, nil
		},
		Bound: func(info Information) LowerBounder {
			// The bound is only sound for objectives that equal predicted
			// total time.
			if a.spec.Metric != userspec.MinExecutionTime {
				return nil
			}
			pool := a.spec.Filter(a.tp.Hosts())
			secPP := secondsPerPoint(pool, info, a.tpl.Tasks[0])
			iterations := max(a.tpl.Iterations, 1)
			return LowerBoundFunc(func(set []*grid.Host) float64 {
				return computeLowerBound(set, secPP, n, iterations)
			})
		},
	}
}

// evaluate runs the shared Coordinator round over the Jacobi blueprint
// and returns the scored candidates (in selector order) plus bookkeeping.
func (a *Agent) evaluate(n int) ([]Candidate, int, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("core: non-positive problem size %d", n)
	}
	return a.coord.EvaluateRound(a.round(n))
}

// secondsPerPoint resolves the planner's compute-cost coefficient for
// every pool host once, for the pruning bound. Hosts with no deliverable
// speed get +Inf (their sets cannot plan anyway).
func secondsPerPoint(pool []*grid.Host, info Information, task hat.Task) map[string]float64 {
	out := make(map[string]float64, len(pool))
	for _, h := range pool {
		avail := floorAvailability(info.Availability(h.Name))
		speed := h.Speed * avail * task.SpeedFactorOn(h.Arch)
		if speed <= 0 {
			out[h.Name] = math.Inf(1)
			continue
		}
		out[h.Name] = task.FlopPerUnit / 1e6 / speed
	}
	return out
}

// computeLowerBound is the least total time any plan on `set` can cost
// under the MinExecutionTime objective: n² points spread perfectly over
// the set's aggregate point rate, with zero communication and no spill.
// The estimator's max_i(points_i·P_i·mult_i + C_i) is ≥ this for every
// placement, so exceeding the incumbent strictly proves the set loses.
func computeLowerBound(set []*grid.Host, secPP map[string]float64, n, iterations int) float64 {
	rate := 0.0
	for _, h := range set {
		p := secPP[h.Name]
		if p <= 0 || math.IsInf(p, 1) {
			continue
		}
		rate += 1 / p
	}
	if rate <= 0 {
		return math.Inf(1)
	}
	return float64(n) * float64(n) / rate * float64(iterations)
}

// Schedule runs the Coordinator blueprint for an n x n problem:
//
//  1. select candidate resource sets S_i (Resource Selector),
//  2. plan a strip schedule for each S_i (Planner),
//  3. estimate each schedule's cost under the user's metric (Performance
//     Estimator),
//  4. return the schedule with the best predicted performance.
//
// The returned schedule is not yet actuated; pass it to Run or an
// Actuator.
func (a *Agent) Schedule(n int) (*Schedule, error) {
	cands, considered, err := a.evaluate(n)
	if err != nil {
		return nil, err
	}
	return a.pickBest(cands, considered)
}

// scheduleWith is Schedule with the SchedService's injection points: the
// round evaluates against an externally resolved frozen view (nil falls
// back to the agent's own snapshotting) with a granted worker count
// (0 keeps the configured parallelism). The decision is bit-identical to
// Schedule(n) against the same frozen values — the view only moves
// snapshot ownership out of the round, and the worker grant only bounds
// fan-out, which the deterministic (score, index) reduce is immune to.
func (a *Agent) scheduleWith(n int, view infoView, workers int) (*Schedule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: non-positive problem size %d", n)
	}
	cands, considered, err := a.coord.evaluateRound(a.round(n), view, workers)
	if err != nil {
		return nil, err
	}
	return a.pickBest(cands, considered)
}

func (a *Agent) pickBest(cands []Candidate, considered int) (*Schedule, error) {
	bestIdx := bestCandidate(cands)
	if bestIdx < 0 {
		return nil, fmt.Errorf("core: %w: no feasible schedule among %d candidate sets", ErrNoFeasiblePlan, considered)
	}
	c := cands[bestIdx]
	best := &Schedule{
		Placement:            c.Placement,
		PredictedIterTime:    c.PredictedIterTime,
		PredictedTotal:       c.PredictedTotal,
		Hosts:                append([]string(nil), c.Hosts...),
		InfoSource:           a.coord.Information().Source(),
		CandidatesConsidered: considered,
		CandidatesPlanned:    len(cands),
	}
	// Normalize host list order for reporting: the placement order is the
	// chain; keep hosts that actually received work first. Shares are
	// resolved once up front — Fraction scans the assignment list, and a
	// comparator doing that per probe turns quadratic on grid-size pools.
	share := make(map[string]float64, len(best.Hosts))
	for _, h := range best.Hosts {
		share[h] = best.Placement.Fraction(h)
	}
	sort.SliceStable(best.Hosts, func(i, j int) bool {
		return share[best.Hosts[i]] > share[best.Hosts[j]]
	})
	return best, nil
}

// ScheduleExplained runs the blueprint and additionally returns the top-k
// candidates by predicted score, so the user can inspect what the agent
// considered (the paper: the agent works "at machine speeds and with more
// comprehensive information" — this is the comprehension made visible).
// topK <= 0 returns every feasible candidate. The slice is shared with
// PipelineAgent.ScheduleExplained: both blueprints explain themselves in
// the same Candidate terms.
func (a *Agent) ScheduleExplained(n, topK int) (*Schedule, []Candidate, error) {
	cands, considered, err := a.evaluate(n)
	if err != nil {
		return nil, nil, err
	}
	best, err := a.pickBest(cands, considered)
	if err != nil {
		return nil, nil, err
	}
	return best, rankCandidates(cands, topK), nil
}

// Candidates evaluates the n x n problem and returns the top-k feasible
// candidates sorted ascending by score, without committing to a schedule.
// k <= 0 returns all of them. Candidates(n, 1)[0] describes the schedule
// Schedule(n) would pick.
func (a *Agent) Candidates(n, k int) ([]Candidate, error) {
	cands, _, err := a.evaluate(n)
	if err != nil {
		return nil, err
	}
	return rankCandidates(cands, k), nil
}

// Run schedules the problem and immediately actuates the best schedule,
// returning both the schedule and the measured execution time.
func (a *Agent) Run(n int, act Actuator) (*Schedule, float64, error) {
	s, err := a.Schedule(n)
	if err != nil {
		return nil, 0, err
	}
	auditKey := a.coord.auditPrediction(s.PredictedTotal, hostClass(a.tp, s.Hosts))
	sp := a.coord.actuateSpan()
	measured, err := act.Actuate(s.Placement)
	sp.End()
	if err != nil {
		return s, 0, fmt.Errorf("core: actuation failed: %w", err)
	}
	a.coord.auditActual(auditKey, measured)
	return s, measured, nil
}
