package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/partition"
	"apples/internal/userspec"
)

// Schedule is the Coordinator's chosen schedule for one run, plus the
// bookkeeping the Actuator and the experiments need.
type Schedule struct {
	// Placement is the data decomposition to actuate.
	Placement *partition.Placement
	// PredictedIterTime and PredictedTotal are the Performance Estimator's
	// expectations for one sweep and the full run.
	PredictedIterTime float64
	PredictedTotal    float64
	// Hosts lists the selected resources in strip-chain order.
	Hosts []string
	// CandidatesConsidered counts resource sets evaluated, and
	// CandidatesPlanned those that produced a feasible plan.
	CandidatesConsidered int
	CandidatesPlanned    int
	// InfoSource names the information pool variant used.
	InfoSource string
}

// String summarizes the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{hosts=%s predIter=%.4fs predTotal=%.2fs info=%s}",
		strings.Join(s.Hosts, ","), s.PredictedIterTime, s.PredictedTotal, s.InfoSource)
}

// Actuator implements a schedule on the target resource management
// system and reports the measured execution time. In this repository the
// target is the simulated metacomputer (the jacobi package provides the
// implementation); in the paper it was KeLP.
type Actuator interface {
	Actuate(p *partition.Placement) (measuredSeconds float64, err error)
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc func(p *partition.Placement) (float64, error)

// Actuate implements Actuator.
func (f ActuatorFunc) Actuate(p *partition.Placement) (float64, error) { return f(p) }

// Agent is an AppLeS: an application-level scheduling agent for one
// application instance (here, the Jacobi2D blueprint of Section 5).
type Agent struct {
	tp   *grid.Topology
	tpl  *hat.Template
	spec *userspec.Spec
	info Information

	// SpillFactor mirrors the execution substrate's out-of-memory penalty
	// so the estimator prices spills honestly (default 25, matching
	// jacobi.Config).
	SpillFactor float64
}

// NewAgent assembles an agent from its information pool: the application
// template (HAT), the user specification (US), and a dynamic information
// source (NWS, oracle, or static).
func NewAgent(tp *grid.Topology, tpl *hat.Template, spec *userspec.Spec, info Information) (*Agent, error) {
	if err := tpl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tpl.Paradigm != hat.DataParallel || len(tpl.Tasks) != 1 {
		return nil, fmt.Errorf("core: the Jacobi blueprint schedules single-task data-parallel templates, got %s with %d tasks",
			tpl.Paradigm, len(tpl.Tasks))
	}
	if spec.Decomposition != "" && spec.Decomposition != "strip" {
		return nil, fmt.Errorf("core: planner supports strip decompositions, user requested %q", spec.Decomposition)
	}
	return &Agent{tp: tp, tpl: tpl, spec: spec, info: info, SpillFactor: 25}, nil
}

// Candidate is one evaluated resource set, exposed by ScheduleExplained
// so users can see what the Coordinator weighed.
type Candidate struct {
	Hosts             []string
	PredictedIterTime float64
	PredictedTotal    float64
	// Score is the user-metric objective (lower is better).
	Score float64
	// Placement is the planned decomposition for this set.
	Placement *partition.Placement
}

// evaluate runs select -> plan -> estimate over every candidate set and
// returns the scored candidates plus bookkeeping.
func (a *Agent) evaluate(n int) ([]Candidate, int, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("core: non-positive problem size %d", n)
	}
	pool := a.spec.Filter(a.tp.Hosts())
	if len(pool) == 0 {
		return nil, 0, fmt.Errorf("core: user specification filters out every host")
	}
	rs := &resourceSelector{tp: a.tp, info: a.info}
	pl := &planner{tp: a.tp, tpl: a.tpl, info: a.info}
	es := &estimator{
		tp:            a.tp,
		spec:          a.spec,
		bytesPerPoint: a.tpl.Tasks[0].BytesPerUnit,
		spillFactor:   a.SpillFactor,
		iterations:    max(a.tpl.Iterations, 1),
	}

	sets := rs.candidates(pool, a.spec.MaxResourceSets)

	// Solo baseline for the speedup metric: best predicted single-host
	// total.
	solo := math.Inf(1)
	if a.spec.Metric == userspec.MaxSpeedup {
		for _, h := range pool {
			p, costs, _, err := pl.plan(n, []*grid.Host{h})
			if err != nil {
				continue
			}
			if t := es.iterTime(p, costs) * float64(es.iterations); t < solo {
				solo = t
			}
		}
	}

	var cands []Candidate
	for _, set := range sets {
		p, costs, _, err := pl.plan(n, set)
		if err != nil {
			continue
		}
		iterT := es.iterTime(p, costs)
		hosts := make([]string, len(set))
		for i, h := range set {
			hosts[i] = h.Name
		}
		cands = append(cands, Candidate{
			Hosts:             hosts,
			PredictedIterTime: iterT,
			PredictedTotal:    iterT * float64(es.iterations),
			Score:             es.score(p, costs, solo),
			Placement:         p,
		})
	}
	return cands, len(sets), nil
}

// Schedule runs the Coordinator blueprint for an n x n problem:
//
//  1. select candidate resource sets S_i (Resource Selector),
//  2. plan a strip schedule for each S_i (Planner),
//  3. estimate each schedule's cost under the user's metric (Performance
//     Estimator),
//  4. return the schedule with the best predicted performance.
//
// The returned schedule is not yet actuated; pass it to Run or an
// Actuator.
func (a *Agent) Schedule(n int) (*Schedule, error) {
	cands, considered, err := a.evaluate(n)
	if err != nil {
		return nil, err
	}
	return a.pickBest(cands, considered)
}

func (a *Agent) pickBest(cands []Candidate, considered int) (*Schedule, error) {
	bestIdx, bestScore := -1, math.Inf(1)
	for i, c := range cands {
		if c.Score < bestScore {
			bestIdx, bestScore = i, c.Score
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("core: no feasible schedule among %d candidate sets", considered)
	}
	c := cands[bestIdx]
	best := &Schedule{
		Placement:            c.Placement,
		PredictedIterTime:    c.PredictedIterTime,
		PredictedTotal:       c.PredictedTotal,
		Hosts:                append([]string(nil), c.Hosts...),
		InfoSource:           a.info.Source(),
		CandidatesConsidered: considered,
		CandidatesPlanned:    len(cands),
	}
	// Normalize host list order for reporting: the placement order is the
	// chain; keep hosts that actually received work first.
	sort.SliceStable(best.Hosts, func(i, j int) bool {
		return best.Placement.Fraction(best.Hosts[i]) > best.Placement.Fraction(best.Hosts[j])
	})
	return best, nil
}

// ScheduleExplained runs the blueprint and additionally returns the top-k
// candidates by predicted score, so the user can inspect what the agent
// considered (the paper: the agent works "at machine speeds and with more
// comprehensive information" — this is the comprehension made visible).
func (a *Agent) ScheduleExplained(n, topK int) (*Schedule, []Candidate, error) {
	cands, considered, err := a.evaluate(n)
	if err != nil {
		return nil, nil, err
	}
	best, err := a.pickBest(cands, considered)
	if err != nil {
		return nil, nil, err
	}
	ranked := append([]Candidate(nil), cands...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score < ranked[j].Score })
	if topK > 0 && len(ranked) > topK {
		ranked = ranked[:topK]
	}
	return best, ranked, nil
}

// Run schedules the problem and immediately actuates the best schedule,
// returning both the schedule and the measured execution time.
func (a *Agent) Run(n int, act Actuator) (*Schedule, float64, error) {
	s, err := a.Schedule(n)
	if err != nil {
		return nil, 0, err
	}
	measured, err := act.Actuate(s.Placement)
	if err != nil {
		return s, 0, fmt.Errorf("core: actuation failed: %w", err)
	}
	return s, measured, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
