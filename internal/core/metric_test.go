package core

import (
	"testing"
	"testing/quick"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/load"
	"apples/internal/sim"
	"apples/internal/userspec"
)

func TestMinCostMetricPrefersCheapHosts(t *testing.T) {
	// Two identical machines; one charges 100x more. Execution time is
	// nearly the same either way, so the cost metric must avoid the
	// expensive one.
	eng := sim.NewEngine()
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "pricey", Speed: 40, MemoryMB: 512})
	tp.AddHost(grid.HostSpec{Name: "cheap", Speed: 40, MemoryMB: 512})
	l := tp.AddLink(grid.LinkSpec{Name: "wire", Latency: 0.001, Bandwidth: 10, Dedicated: true})
	tp.Attach("pricey", l)
	tp.Attach("cheap", l)
	tp.Finalize()

	spec := &userspec.Spec{
		Metric: userspec.MinCost,
		CostPerCPUHour: map[string]float64{
			"pricey": 100,
			"cheap":  1,
		},
	}
	a, err := NewAgent(tp, hat.Jacobi2D(500, 50), spec, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Schedule(500)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placement.Fraction("pricey") > 0 {
		t.Fatalf("cost metric scheduled onto the expensive host: %v", s.Placement)
	}
	// Sanity: the time metric would use both.
	specTime := &userspec.Spec{}
	at, err := NewAgent(tp, hat.Jacobi2D(500, 50), specTime, OracleInformation(tp))
	if err != nil {
		t.Fatal(err)
	}
	st, err := at.Schedule(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Placement.Hosts()) != 2 {
		t.Fatalf("time metric should use both hosts, used %v", st.Placement.Hosts())
	}
}

// TestSubstrateSlowdownLaw calibrates the substrate against the
// contention model the paper's companion work (Figueira & Berman, HPDC
// '96) formalizes: a task sharing a host with L competing processes slows
// down by exactly 1+L under processor sharing.
func TestSubstrateSlowdownLaw(t *testing.T) {
	base := 0.0
	for i, L := range []float64{0, 1, 2, 4} {
		eng := sim.NewEngine()
		tp := grid.NewTopology(eng)
		h := tp.AddHost(grid.HostSpec{Name: "h", Speed: 20, MemoryMB: 64, Load: load.Constant(L)})
		tp.Finalize()
		var done float64
		h.Submit(200, func() { done = eng.Now() })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = done
			continue
		}
		want := (1 + L)
		if got := done / base; got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("L=%v: slowdown %v, want %v", L, got, want)
		}
	}
}

// Property: every schedule the agent produces is a valid placement that
// covers the domain and respects per-host memory (to rounding).
func TestScheduleValidityProperty(t *testing.T) {
	f := func(seedRaw uint16, nRaw uint8) bool {
		seed := int64(seedRaw)
		n := 300 + int(nRaw)*10
		eng := sim.NewEngine()
		tp := grid.SDSCPCL(eng, grid.TestbedOptions{Seed: seed, WithSP2: seed%2 == 0})
		if err := eng.RunUntil(120); err != nil {
			return false
		}
		a, err := NewAgent(tp, hat.Jacobi2D(n, 10), &userspec.Spec{}, OracleInformation(tp))
		if err != nil {
			return false
		}
		s, err := a.Schedule(n)
		if err != nil {
			return false
		}
		if s.Placement.Validate() != nil {
			return false
		}
		if s.Placement.TotalPoints() != n*n {
			return false
		}
		for _, asg := range s.Placement.Assignments {
			h := tp.Host(asg.Host)
			needMB := float64(asg.Points) * 16 / 1e6
			if needMB > h.MemoryMB*1.05 && h.MemoryMB*8 > float64(n*n)*16/1e6 {
				// (only enforced when the pool could have avoided it)
				return false
			}
		}
		return s.PredictedIterTime > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
