package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"apples/internal/hat"
	"apples/internal/obs"
	"apples/internal/userspec"
)

// TestServiceSingleTenantParity is the tentpole's bit-identity gate: a
// service with one registered tenant must produce exactly the schedule
// standalone Agent.Schedule produces, across the parity sweep's pools,
// selectors, and metrics. The service moves snapshot ownership into the
// cache and fan-out width into the budget; neither may move the
// decision.
func TestServiceSingleTenantParity(t *testing.T) {
	pools := []struct {
		name          string
		clusters, per int
	}{
		{"sdscpcl-8host", 0, 0},
		{"cluster-12host", 3, 4},
	}
	selectors := []SelectorKind{SelectorExhaustive, SelectorGreedy, SelectorBeam}
	metrics := []userspec.Metric{userspec.MinExecutionTime, userspec.MaxSpeedup, userspec.MinCost}
	for _, p := range pools {
		tp, info := buildPool(t, p.clusters, p.per, 17)
		tpl := hat.Jacobi2D(600, 10)
		for _, sel := range selectors {
			for _, metric := range metrics {
				name := fmt.Sprintf("%s/%s/%s", p.name, sel, metric)
				spec := &userspec.Spec{Metric: metric}
				standalone, err := NewAgent(tp, tpl, spec, info, WithSelector(SelectorSpec{Kind: sel}))
				if err != nil {
					t.Fatal(err)
				}
				want, err := standalone.Schedule(600)
				if err != nil {
					t.Fatalf("%s standalone: %v", name, err)
				}

				client, err := NewAgent(tp, tpl, spec, info, WithSelector(SelectorSpec{Kind: sel}))
				if err != nil {
					t.Fatal(err)
				}
				svc := NewSchedService(WithServiceRunners(2), WithServiceBudget(4))
				tenant, err := svc.Register("solo", client)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tenant.Schedule(600)
				svc.Close()
				if err != nil {
					t.Fatalf("%s service: %v", name, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s: service schedule diverged\nstandalone: %v\nservice:    %v", name, want, got)
				}
			}
		}
	}
}

// TestServiceConcurrentTenantsRace is the satellite race sweep: N
// tenants × concurrent rounds over ONE shared snapshot and ONE shared
// Metrics registry, with exact bookkeeping afterwards. Run under -race
// this exercises the cache's once-build fan-out, the sharded budget,
// and the labeled metric series concurrently.
func TestServiceConcurrentTenantsRace(t *testing.T) {
	const tenants, rounds = 8, 5
	tp, info := buildPool(t, 3, 4, 9)
	tpl := hat.Jacobi2D(600, 10)

	reg := obs.NewMetrics()
	col := obs.NewCollector()
	svc := NewSchedService(WithServiceRunners(4), WithServiceBudget(4),
		WithServiceMetrics(reg), WithServiceTracer(col))

	standalone, err := NewAgent(tp, tpl, &userspec.Spec{}, info)
	if err != nil {
		t.Fatal(err)
	}
	want, err := standalone.Schedule(600)
	if err != nil {
		t.Fatal(err)
	}

	var ts []*Tenant
	for i := 0; i < tenants; i++ {
		a, err := NewAgent(tp, tpl, &userspec.Spec{}, info)
		if err != nil {
			t.Fatal(err)
		}
		tn, err := svc.Register(fmt.Sprintf("t%d", i), a)
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, tn)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	results := make(map[string][]RoundResult)
	for _, tn := range ts {
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ch, err := tn.Submit(600)
				if err != nil {
					t.Errorf("tenant %s submit: %v", tn.ID(), err)
					return
				}
				res := <-ch
				mu.Lock()
				results[tn.ID()] = append(results[tn.ID()], res)
				mu.Unlock()
			}
		}(tn)
	}
	wg.Wait()
	svc.Close()

	// Every round decided exactly what the standalone agent decides, and
	// per-tenant results arrived in submission order.
	for id, rs := range results {
		if len(rs) != rounds {
			t.Fatalf("tenant %s: %d results, want %d", id, len(rs), rounds)
		}
		for i, res := range rs {
			if res.Err != nil {
				t.Fatalf("tenant %s round %d: %v", id, i, res.Err)
			}
			if res.Seq != uint64(i+1) {
				t.Fatalf("tenant %s: result %d has seq %d", id, i, res.Seq)
			}
			if !reflect.DeepEqual(res.Schedule, want) {
				t.Fatalf("tenant %s round %d diverged from standalone\nwant %v\ngot  %v", id, i, want, res.Schedule)
			}
		}
	}

	// Exact bookkeeping on the shared registry.
	total := uint64(tenants * rounds)
	for i := 0; i < tenants; i++ {
		key := obs.NameWithLabels(obs.MetricTenantRounds, "tenant", fmt.Sprintf("t%d", i))
		if got := reg.Counter(key).Value(); got != rounds {
			t.Errorf("%s = %d, want %d", key, got, rounds)
		}
	}
	builds := reg.Counter(obs.MetricSnapshotBuilds).Value()
	reused := reg.Counter(obs.MetricSnapshotReused).Value()
	if builds+reused != total {
		t.Errorf("builds(%d)+reused(%d) != %d rounds", builds, reused, total)
	}
	if builds < 1 {
		t.Errorf("no snapshot build recorded")
	}
	if got := reg.Gauge(obs.MetricQueueDepth).Value(); got != 0 {
		t.Errorf("final queue depth gauge = %g, want 0", got)
	}
	// The fairness *gauge* may hold a value computed by a round that
	// finished just before the true last one; the live computation over
	// the final counters must be exactly fair.
	if got := svc.Fairness(); got != 1 {
		t.Errorf("fairness = %g, want 1 (all tenants completed %d rounds)", got, rounds)
	}
	if svc.QueueDepth() != 0 {
		t.Errorf("QueueDepth = %d after drain", svc.QueueDepth())
	}

	// The trace saw one tenant_round per completed round, and each
	// tenant's events carry strictly increasing round numbers in
	// emission order — the deterministic per-tenant ordering, observed
	// from the execution side.
	lastRound := map[string]uint64{}
	tenantEvents := 0
	for _, e := range col.Events() {
		if e.Type != obs.EvTenantRound {
			continue
		}
		tenantEvents++
		if e.Round != lastRound[e.Tenant]+1 {
			t.Fatalf("tenant %s: round %d emitted after %d", e.Tenant, e.Round, lastRound[e.Tenant])
		}
		lastRound[e.Tenant] = e.Round
	}
	if tenantEvents != int(total) {
		t.Errorf("traced %d tenant rounds, want %d", tenantEvents, total)
	}
}

// TestServiceSharedRatio pins the acceptance bar: 64 tenants over one
// 12-host pool must reuse shared snapshots for ≥ 90%% of their rounds.
// With a static tick (no invalidation) the cache builds exactly once,
// so the ratio is (rounds−1)/rounds.
func TestServiceSharedRatio(t *testing.T) {
	const tenants, rounds = 64, 3
	tp, info := buildPool(t, 3, 4, 21)
	tpl := hat.Jacobi2D(600, 10)
	svc := NewSchedService(WithServiceRunners(4), WithQueueDepth(4096))
	defer svc.Close()

	var ts []*Tenant
	for i := 0; i < tenants; i++ {
		a, err := NewAgent(tp, tpl, &userspec.Spec{}, info,
			WithSelector(SelectorSpec{Kind: SelectorGreedy}))
		if err != nil {
			t.Fatal(err)
		}
		tn, err := svc.Register(fmt.Sprintf("t%d", i), a)
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, tn)
	}
	var wg sync.WaitGroup
	for _, tn := range ts {
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := tn.Schedule(600); err != nil {
					t.Errorf("tenant %s: %v", tn.ID(), err)
					return
				}
			}
		}(tn)
	}
	wg.Wait()
	if ratio := svc.SharedRatio(); ratio < 0.9 {
		t.Fatalf("shared snapshot ratio %.3f < 0.9", ratio)
	}
	if f := svc.Fairness(); f != 1 {
		t.Errorf("fairness %g, want 1", f)
	}
}

// gateInfo blocks the first Availability call until released, letting
// the queue-full test hold the single runner mid-snapshot
// deterministically.
type gateInfo struct {
	Information
	once  sync.Once
	gate  chan struct{}
	entry chan struct{}
}

func (g *gateInfo) Availability(host string) float64 {
	g.once.Do(func() {
		close(g.entry)
		<-g.gate
	})
	return g.Information.Availability(host)
}

// TestServiceQueueFull pins the backpressure contract: submissions past
// the admission depth fail fast with ErrQueueFull and nothing else
// changes; after the queue drains, new submissions are admitted again.
func TestServiceQueueFull(t *testing.T) {
	tp, base := buildPool(t, 0, 0, 3)
	tpl := hat.Jacobi2D(400, 5)
	info := &gateInfo{Information: base, gate: make(chan struct{}), entry: make(chan struct{})}

	reg := obs.NewMetrics()
	svc := NewSchedService(WithServiceRunners(1), WithQueueDepth(2), WithServiceMetrics(reg))
	a, err := NewAgent(tp, tpl, &userspec.Spec{}, info)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := svc.Register("t0", a)
	if err != nil {
		t.Fatal(err)
	}

	ch1, err := tn.Submit(400)
	if err != nil {
		t.Fatal(err)
	}
	<-info.entry // the runner is now parked inside the snapshot build
	ch2, err := tn.Submit(400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Submit(400); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: got %v, want ErrQueueFull", err)
	}
	if got := reg.Counter(obs.MetricQueueRejected).Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(info.gate)
	for _, ch := range []<-chan RoundResult{ch1, ch2} {
		if res := <-ch; res.Err != nil {
			t.Fatalf("queued round failed: %v", res.Err)
		}
	}
	// Depth freed: admissions work again.
	if _, err := tn.Schedule(400); err != nil {
		t.Fatalf("post-drain schedule: %v", err)
	}
	svc.Close()
	if _, err := tn.Submit(400); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("submit after close: got %v, want ErrServiceClosed", err)
	}
}

// TestServiceSessionTenant pins the session-backed thin client: rounds
// through the service are exactly standalone ReschedSession rounds, in
// order, with delta stats attached.
func TestServiceSessionTenant(t *testing.T) {
	tp, info := buildPool(t, 0, 0, 13)
	tpl := hat.Jacobi2D(500, 10)
	mk := func() *ReschedSession {
		a, err := NewAgent(tp, tpl, &userspec.Spec{}, info)
		if err != nil {
			t.Fatal(err)
		}
		s, err := a.NewReschedSession(500)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	standalone := mk()
	svc := NewSchedService(WithServiceRunners(1))
	defer svc.Close()
	tn, err := svc.RegisterSession("sess", mk())
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		want, wantSt, err := standalone.Round()
		if err != nil {
			t.Fatal(err)
		}
		ch, err := tn.Submit(0)
		if err != nil {
			t.Fatal(err)
		}
		res := <-ch
		if res.Err != nil {
			t.Fatalf("round %d: %v", round, res.Err)
		}
		if !reflect.DeepEqual(res.Schedule, want) {
			t.Fatalf("round %d diverged\nwant %v\ngot  %v", round, want, res.Schedule)
		}
		if res.Delta == nil || *res.Delta != wantSt {
			t.Fatalf("round %d delta stats diverged: %+v vs %+v", round, res.Delta, wantSt)
		}
	}
}

// TestWorkerBudget pins the sharded budget arithmetic: grants never
// exceed availability+1, never fall below 1, steal across shards, and
// conserve tokens across release.
func TestWorkerBudget(t *testing.T) {
	b := newWorkerBudget(8, 4)
	if got := b.available(); got != 8 {
		t.Fatalf("initial tokens = %d, want 8", got)
	}
	g1 := b.grant(0, 6) // wants 5 extra: drains shard 0 (2) + steals 3
	if g1 != 6 {
		t.Fatalf("grant(0,6) = %d, want 6", g1)
	}
	if got := b.available(); got != 3 {
		t.Fatalf("tokens after grant = %d, want 3", got)
	}
	g2 := b.grant(1, 10) // wants 9 extra, only 3 remain
	if g2 != 4 {
		t.Fatalf("grant(1,10) = %d, want 4", g2)
	}
	g3 := b.grant(2, 4) // budget empty: sequential grant
	if g3 != 1 {
		t.Fatalf("grant on empty budget = %d, want 1", g3)
	}
	b.release(0, g1)
	b.release(1, g2)
	b.release(2, g3)
	if got := b.available(); got != 8 {
		t.Fatalf("tokens after release = %d, want 8 (leak)", got)
	}
}

// TestSnapshotCacheInvalidate pins the epoch contract: acquires after
// Invalidate rebuild, and the counters keep the shared ratio honest.
func TestSnapshotCacheInvalidate(t *testing.T) {
	tp, info := buildPool(t, 0, 0, 5)
	pool := tp.Hosts()
	c := newSnapshotCache()
	e1, shared := c.acquire(info, pool)
	if shared {
		t.Fatal("first acquire reported shared")
	}
	e2, shared := c.acquire(info, pool)
	if !shared || e2.view != e1.view {
		t.Fatal("second acquire did not share the frozen view")
	}
	c.release(e1)
	c.release(e2)
	c.Invalidate()
	e3, shared := c.acquire(info, pool)
	if shared {
		t.Fatal("post-invalidate acquire reported shared")
	}
	if e3.view == e1.view {
		t.Fatal("post-invalidate acquire returned the retired view")
	}
	c.release(e3)
	if want := 1.0 / 3.0; c.ratio() != want {
		t.Fatalf("ratio = %g, want %g (1 reuse over 2 builds + 1 reuse)", c.ratio(), want)
	}
}
