package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"apples/internal/obs"
)

// SchedService is the multi-tenant scheduling daemon: many AppLeS
// agents, one information pool. It answers the paper's closing open
// question operationally — what happens when thousands of
// application-level schedulers compete for the same resources — by
// restructuring the per-agent round pipeline into shared service
// machinery:
//
//   - snapshot layer: concurrent tenant rounds in one tick share one
//     frozen information view through a copy-on-write snapshotCache
//     (one routeBatcher pass over the forecaster bank, refcounted
//     immutable fan-out) instead of N independent freezes;
//   - coordinator layer: candidate-evaluation parallelism is a global
//     sharded workerBudget instead of a per-Agent pool — each round is
//     granted fan-out width for its duration and returns it;
//   - service layer: a bounded admission queue with typed backpressure
//     (ErrQueueFull) and deterministic per-tenant round ordering —
//     one tenant's rounds complete in submission order, always;
//   - observability layer: per-tenant labeled metrics, queue depth,
//     the shared-snapshot ratio, and a max/min fairness gauge.
//
// Registered tenants are thin clients: an Agent-backed tenant's round
// is exactly Agent.Schedule evaluated against the shared view (the
// single-tenant parity suite pins bit-identity), and a session-backed
// tenant's round is exactly ReschedSession.Round (the service's
// per-tenant serialization satisfies the session's no-concurrent-use
// contract).
//
// All methods are safe for concurrent use.
type SchedService struct {
	cfg serviceConfig

	budget *workerBudget
	cache  *snapshotCache

	mu      sync.RWMutex
	tenants map[string]*Tenant
	order   []string // registration order: deterministic reporting
	closed  bool

	// queued is the admission count: requests accepted but not yet
	// completed. Submissions that would push it past queueDepth bounce
	// with ErrQueueFull before enqueueing anything.
	queued atomic.Int64
	reqWG  sync.WaitGroup // one count per admitted request, for drain

	// Dispatch state: tenants with pending work, served FIFO by the
	// runner goroutines. A tenant appears at most once (Tenant.active),
	// which is what serializes its rounds.
	dmu   sync.Mutex
	dcond *sync.Cond
	ready []*Tenant
	stop  bool
	wg    sync.WaitGroup // runner goroutines

	met    *serviceMetrics
	tracer obs.Tracer
}

// serviceConfig is the construction-time target of ServiceOption.
type serviceConfig struct {
	queueDepth int
	runners    int
	budget     int
	shards     int
	metrics    *obs.Metrics
	tracer     obs.Tracer
}

// ServiceOption configures a SchedService at construction.
type ServiceOption func(*serviceConfig)

// WithQueueDepth bounds the admission queue: at most n requests may be
// admitted-but-unfinished at once; further submissions fail fast with
// ErrQueueFull. Default 1024.
func WithQueueDepth(n int) ServiceOption {
	return func(c *serviceConfig) {
		if n > 0 {
			c.queueDepth = n
		}
	}
}

// WithServiceRunners sets how many rounds the service evaluates
// concurrently (default GOMAXPROCS). Distinct tenants' rounds run in
// parallel up to this; one tenant's rounds never do.
func WithServiceRunners(n int) ServiceOption {
	return func(c *serviceConfig) {
		if n > 0 {
			c.runners = n
		}
	}
}

// WithServiceBudget sets the global extra-worker budget rounds draw
// their candidate-evaluation fan-out from (default GOMAXPROCS). A lone
// round claims the whole budget; concurrent rounds split it. Every
// round keeps at least its own goroutine, so the budget never blocks
// progress — and never changes decisions, only evaluation width.
func WithServiceBudget(workers int) ServiceOption {
	return func(c *serviceConfig) {
		if workers > 0 {
			c.budget = workers
		}
	}
}

// WithServiceShards sets how many cache-line-padded shards the worker
// budget spreads over (default min(8, budget)). Purely a contention
// knob.
func WithServiceShards(n int) ServiceOption {
	return func(c *serviceConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithServiceMetrics registers the service's metric families — per-
// tenant round counters and latency histograms, queue depth, snapshot
// sharing, fairness — in the given registry. Tenant agents may share
// the same registry for their round metrics; all handles are atomic.
func WithServiceMetrics(m *obs.Metrics) ServiceOption {
	return func(c *serviceConfig) { c.metrics = m }
}

// WithServiceTracer attaches a decision-trace sink: the service emits
// one EvTenantRound per completed round. Tenant agents may share the
// same tracer for their per-round events.
func WithServiceTracer(t obs.Tracer) ServiceOption {
	return func(c *serviceConfig) { c.tracer = t }
}

// serviceMetrics holds the service-level handles, resolved once.
type serviceMetrics struct {
	reg        *obs.Metrics
	queueDepth *obs.Gauge
	rejected   *obs.Counter
	shared     *obs.Gauge
	builds     *obs.Counter
	reused     *obs.Counter
	fairness   *obs.Gauge
}

// NewSchedService starts the service's runner goroutines and returns
// it ready for Register. Close releases them.
func NewSchedService(opts ...ServiceOption) *SchedService {
	cfg := serviceConfig{
		queueDepth: 1024,
		runners:    runtime.GOMAXPROCS(0),
		budget:     runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.shards == 0 {
		cfg.shards = min(8, cfg.budget)
	}
	s := &SchedService{
		cfg:     cfg,
		budget:  newWorkerBudget(cfg.budget, cfg.shards),
		cache:   newSnapshotCache(),
		tenants: make(map[string]*Tenant),
		tracer:  cfg.tracer,
	}
	s.dcond = sync.NewCond(&s.dmu)
	if m := cfg.metrics; m != nil {
		s.met = &serviceMetrics{
			reg:        m,
			queueDepth: m.Gauge(obs.MetricQueueDepth),
			rejected:   m.Counter(obs.MetricQueueRejected),
			shared:     m.Gauge(obs.MetricSnapshotShared),
			builds:     m.Counter(obs.MetricSnapshotBuilds),
			reused:     m.Counter(obs.MetricSnapshotReused),
			fairness:   m.Gauge(obs.MetricTenantFairness),
		}
	}
	s.wg.Add(cfg.runners)
	for i := 0; i < cfg.runners; i++ {
		go s.runner()
	}
	return s
}

// Tenant is one registered client of the service: an application-level
// scheduling agent whose rounds the service runs against the shared
// snapshot pool, in strict submission order.
type Tenant struct {
	svc   *SchedService
	id    string
	agent *Agent          // Agent-backed tenant (shared-snapshot path)
	sess  *ReschedSession // session-backed tenant (delta path)
	shard int             // home shard in the worker budget

	qmu    sync.Mutex
	fifo   []roundRequest
	active bool   // queued in svc.ready or being served
	subSeq uint64 // submission sequence, assigned under qmu

	done atomic.Uint64  // completed rounds
	met  *tenantMetrics // labeled series, resolved at registration
}

// tenantMetrics are a tenant's labeled series
// (`sched_tenant_rounds_total{tenant=...}` and the matching latency
// histogram), the per-tenant face of the coordinator's existing round
// metrics.
type tenantMetrics struct {
	rounds  *obs.Counter
	latency *obs.Histogram
}

// roundRequest is one queued scheduling request.
type roundRequest struct {
	n   int
	seq uint64
	ch  chan RoundResult
}

// RoundResult is one completed service round.
type RoundResult struct {
	// Tenant and Seq identify the round: Seq is the tenant-local
	// submission sequence (starting at 1), and results for one tenant
	// always complete in Seq order.
	Tenant string
	Seq    uint64
	// Schedule is the decision; Err the failure (exactly what the
	// standalone Agent.Schedule / ReschedSession.Round would return).
	Schedule *Schedule
	Err      error
	// SharedSnapshot reports whether the round reused a cache-shared
	// frozen view rather than freezing its own (always false for
	// session-backed tenants, which refresh incrementally instead).
	SharedSnapshot bool
	// Delta carries the session round's bookkeeping for session-backed
	// tenants; nil otherwise.
	Delta *DeltaStats
	// Elapsed is queue wait + evaluation wall-time.
	Elapsed time.Duration
}

// Register adds an Agent-backed tenant under a unique id. The agent's
// rounds will evaluate against cache-shared snapshots with fan-out
// granted from the service budget; its own WithParallelism setting is
// superseded while served by the service.
func (s *SchedService) Register(id string, agent *Agent) (*Tenant, error) {
	if agent == nil {
		return nil, fmt.Errorf("core: nil agent for tenant %q", id)
	}
	return s.register(id, &Tenant{id: id, agent: agent})
}

// RegisterSession adds a session-backed tenant: each round advances the
// ReschedSession one delta-aware tick. The service's per-tenant
// serialization satisfies the session's no-concurrent-use contract,
// but the session reads its Information source live — give it a
// dedicated source (e.g. its own overlay) rather than one other
// tenants' snapshot builds read concurrently.
func (s *SchedService) RegisterSession(id string, sess *ReschedSession) (*Tenant, error) {
	if sess == nil {
		return nil, fmt.Errorf("core: nil session for tenant %q", id)
	}
	return s.register(id, &Tenant{id: id, sess: sess})
}

func (s *SchedService) register(id string, t *Tenant) (*Tenant, error) {
	if id == "" {
		return nil, fmt.Errorf("core: empty tenant id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: %w", ErrServiceClosed)
	}
	if _, dup := s.tenants[id]; dup {
		return nil, fmt.Errorf("core: tenant %q already registered", id)
	}
	t.svc = s
	t.shard = len(s.order)
	if s.met != nil {
		// Per-tenant labeled series, resolved once here so the round hot
		// path only performs atomic updates.
		t.met = &tenantMetrics{
			rounds:  s.met.reg.Counter(obs.NameWithLabels(obs.MetricTenantRounds, "tenant", id)),
			latency: s.met.reg.Histogram(obs.NameWithLabels(obs.MetricTenantRoundSeconds, "tenant", id), nil),
		}
	}
	s.tenants[id] = t
	s.order = append(s.order, id)
	return t, nil
}

// ID returns the tenant's registered id.
func (t *Tenant) ID() string { return t.id }

// Rounds returns how many of the tenant's rounds have completed.
func (t *Tenant) Rounds() uint64 { return t.done.Load() }

// Pending returns how many of the tenant's requests are queued or in
// flight.
func (t *Tenant) Pending() int {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	n := len(t.fifo)
	if t.active {
		n++ // the request currently being served left the fifo
	}
	return n
}

// Submit enqueues one scheduling round (an n×n problem for Agent-backed
// tenants; session-backed tenants advance their frozen-n session and
// ignore n). It returns a buffered channel that receives exactly one
// RoundResult, or fails fast with ErrQueueFull / ErrServiceClosed.
// Results for one tenant are delivered in submission order.
func (t *Tenant) Submit(n int) (<-chan RoundResult, error) {
	s := t.svc
	if t.agent != nil && n <= 0 {
		return nil, fmt.Errorf("core: non-positive problem size %d", n)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("core: %w", ErrServiceClosed)
	}
	if s.queued.Add(1) > int64(s.cfg.queueDepth) {
		s.queued.Add(-1)
		if s.met != nil {
			s.met.rejected.Inc()
		}
		return nil, fmt.Errorf("core: %w (depth %d)", ErrQueueFull, s.cfg.queueDepth)
	}
	s.reqWG.Add(1)
	if s.met != nil {
		s.met.queueDepth.Set(float64(s.queued.Load()))
	}
	ch := make(chan RoundResult, 1)
	t.qmu.Lock()
	t.subSeq++
	t.fifo = append(t.fifo, roundRequest{n: n, seq: t.subSeq, ch: ch})
	wake := !t.active
	if wake {
		t.active = true
	}
	t.qmu.Unlock()
	if wake {
		s.enqueue(t)
	}
	return ch, nil
}

// Schedule submits one round and blocks for its result.
func (t *Tenant) Schedule(n int) (*Schedule, error) {
	ch, err := t.Submit(n)
	if err != nil {
		return nil, err
	}
	res := <-ch
	return res.Schedule, res.Err
}

// enqueue hands a newly active tenant to the runners.
func (s *SchedService) enqueue(t *Tenant) {
	s.dmu.Lock()
	s.ready = append(s.ready, t)
	s.dmu.Unlock()
	s.dcond.Signal()
}

// runner is one service worker loop: pop the next ready tenant, serve
// its head request, repeat.
func (s *SchedService) runner() {
	defer s.wg.Done()
	for {
		s.dmu.Lock()
		for len(s.ready) == 0 && !s.stop {
			s.dcond.Wait()
		}
		if len(s.ready) == 0 {
			s.dmu.Unlock()
			return
		}
		t := s.ready[0]
		s.ready = s.ready[1:]
		s.dmu.Unlock()
		s.serveTenant(t)
	}
}

// serveTenant runs the tenant's head request and re-queues the tenant
// if more are waiting. Because a tenant is in the ready list at most
// once and re-enqueues only after its round completes, one tenant's
// rounds are strictly serialized — the deterministic per-tenant
// ordering the admission contract promises.
func (s *SchedService) serveTenant(t *Tenant) {
	t.qmu.Lock()
	req := t.fifo[0]
	t.fifo = t.fifo[1:]
	t.qmu.Unlock()

	res := s.runRound(t, req)
	req.ch <- res

	s.queued.Add(-1)
	if s.met != nil {
		s.met.queueDepth.Set(float64(s.queued.Load()))
	}
	s.reqWG.Done()

	t.qmu.Lock()
	more := len(t.fifo) > 0
	if !more {
		t.active = false
	}
	t.qmu.Unlock()
	if more {
		s.enqueue(t)
	}
}

// runRound evaluates one round: resolve the shared snapshot, draw a
// worker grant, run the tenant's scheduler, return both, publish
// observability.
func (s *SchedService) runRound(t *Tenant, req roundRequest) RoundResult {
	start := time.Now()
	res := RoundResult{Tenant: t.id, Seq: req.seq}

	if t.sess != nil {
		sched, st, err := t.sess.Round()
		res.Schedule, res.Err, res.Delta = sched, err, &st
	} else {
		var entry *snapEntry
		var view infoView
		pool := t.agent.spec.Filter(t.agent.tp.Hosts())
		if len(pool) > 0 && t.agent.coord.snapshot {
			entry, res.SharedSnapshot = s.cache.acquire(t.agent.coord.info, pool)
			view = entry.view
		}
		workers := s.budget.grant(t.shard, s.cfg.budget)
		res.Schedule, res.Err = t.agent.scheduleWith(req.n, view, workers)
		s.budget.release(t.shard, workers)
		if entry != nil {
			s.cache.release(entry)
			if s.met != nil {
				if res.SharedSnapshot {
					s.met.reused.Inc()
				} else {
					s.met.builds.Inc()
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	t.done.Add(1)

	if s.met != nil {
		t.met.rounds.Inc()
		t.met.latency.Observe(res.Elapsed.Seconds())
		s.met.shared.Set(s.cache.ratio())
		s.met.fairness.Set(s.Fairness())
	}
	if s.tracer != nil {
		e := obs.Event{Type: obs.EvTenantRound, Tenant: t.id, Round: t.done.Load(),
			SharedSnap: res.SharedSnapshot, Seconds: res.Elapsed.Seconds()}
		if res.Schedule != nil {
			e.Hosts = res.Schedule.Hosts
			e.Predicted = res.Schedule.PredictedTotal
		} else if res.Err != nil {
			e.Reason = res.Err.Error()
		}
		s.tracer.Emit(e)
	}
	return res
}

// TenantStatus is one row of the service's tenant report (the /tenants
// endpoint's JSON schema).
type TenantStatus struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"` // "agent" or "session"
	Rounds  uint64 `json:"rounds"`
	Pending int    `json:"pending"`
}

// Tenants reports every registered tenant in registration order.
func (s *SchedService) Tenants() []TenantStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TenantStatus, 0, len(s.order))
	for _, id := range s.order {
		t := s.tenants[id]
		kind := "agent"
		if t.sess != nil {
			kind = "session"
		}
		out = append(out, TenantStatus{ID: id, Kind: kind, Rounds: t.done.Load(), Pending: t.Pending()})
	}
	return out
}

// Tenant looks up a registered tenant by id.
func (s *SchedService) Tenant(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// QueueDepth returns the admitted-but-unfinished request count.
func (s *SchedService) QueueDepth() int { return int(s.queued.Load()) }

// SharedRatio returns the running fraction of Agent-backed rounds that
// reused a cache-shared snapshot (0 until the first such round).
func (s *SchedService) SharedRatio() float64 { return s.cache.ratio() }

// Fairness returns max/min completed rounds across tenants that have
// finished at least one round: 1 is perfectly fair, large values mean
// some tenant is starving relative to another. 0 means no data yet.
func (s *SchedService) Fairness() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var mn, mx uint64
	for _, id := range s.order {
		v := s.tenants[id].done.Load()
		if v == 0 {
			continue
		}
		if mn == 0 || v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn == 0 {
		return 0
	}
	return float64(mx) / float64(mn)
}

// InvalidateSnapshots retires every cache-shared snapshot; subsequent
// rounds freeze fresh views. Call when the underlying information may
// have moved (e.g. after advancing simulated time).
func (s *SchedService) InvalidateSnapshots() { s.cache.Invalidate() }

// Close drains and shuts down: no new submissions are admitted, every
// already-admitted request completes and receives its result, then the
// runner goroutines exit. Safe to call twice.
func (s *SchedService) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.reqWG.Wait()

	s.dmu.Lock()
	s.stop = true
	s.dmu.Unlock()
	s.dcond.Broadcast()
	s.wg.Wait()
}
