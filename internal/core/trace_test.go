package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"apples/internal/hat"
	"apples/internal/obs"
	"apples/internal/userspec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenTraceJacobiRound pins the JSONL trace of one fixed-seed
// Jacobi scheduling round. Any change to the event schema or to the
// decision sequence shows up as a reviewable diff against
// testdata/golden_trace.jsonl (regenerate with `go test -run Golden
// -update`). It then re-derives the decision from the trace alone and
// checks it against the schedule the agent returned — the trace must
// reconstruct the full decision, not just narrate it.
func TestGoldenTraceJacobiRound(t *testing.T) {
	tp, info := buildPool(t, 0, 0, 11)
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	// Four accessible hosts keep the golden file a reviewable 21 lines
	// (1 snapshot + 15 candidate sets + 1 winner + 4 stage spans);
	// sequential evaluation fixes the emission order. The stage timer
	// reads an injected counting clock (1 ms per read) so span durations
	// are bit-stable across machines.
	spec := &userspec.Spec{Accessible: []string{"alpha1", "alpha2", "alpha3", "alpha4"}}
	tick := 0
	clock := func() float64 { tick++; return float64(tick) * 1e-3 }
	st := obs.NewStageTimer(obs.NewMetrics(), tr, clock)
	agent, err := NewAgent(tp, hat.Jacobi2D(600, 10), spec, info,
		WithParallelism(1), WithTracer(tr), WithStageTiming(st))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := agent.Schedule(600)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from %s — if the schema change is intended, regenerate with -update\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}

	// Reconstruct the decision from the trace.
	var events []obs.Event
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		events = append(events, e)
	}
	if events[0].Type != obs.EvSnapshot || events[0].Pool != 4 {
		t.Fatalf("round must open with the snapshot event, got %+v", events[0])
	}
	var winner *obs.Event
	var spanStages []string
	candidates := 0
	bestScore, bestIdx := 0.0, -1
	for i := range events {
		e := &events[i]
		switch e.Type {
		case obs.EvCandidate:
			candidates++
			if bestIdx < 0 || e.Score < bestScore {
				bestScore, bestIdx = e.Score, i
			}
		case obs.EvWinner:
			winner = e
		case obs.EvSpan:
			spanStages = append(spanStages, e.Stage)
			if e.Seconds <= 0 {
				t.Fatalf("span %q carries no duration: %+v", e.Stage, e)
			}
		}
	}
	// Spans close in the blueprint's stage order; the reduce span ends
	// after the winner event, pinning "decision, then its timing".
	wantStages := []string{obs.StageSnapshot, obs.StageSelect, obs.StagePlanEstimate, obs.StageReduce}
	if !reflect.DeepEqual(spanStages, wantStages) {
		t.Fatalf("span stage order = %v, want %v", spanStages, wantStages)
	}
	if last := events[len(events)-1]; last.Type != obs.EvSpan || last.Stage != obs.StageReduce {
		t.Fatalf("round must close with the reduce span, got %+v", last)
	}
	if winner == nil {
		t.Fatal("trace has no winner event")
	}
	if candidates != sched.CandidatesPlanned || winner.Considered != sched.CandidatesConsidered {
		t.Fatalf("trace counts (%d candidates, %d considered) disagree with schedule (%d planned, %d considered)",
			candidates, winner.Considered, sched.CandidatesPlanned, sched.CandidatesConsidered)
	}
	if bestIdx < 0 || winner.Score != bestScore {
		t.Fatalf("winner score %v is not the minimum candidate score %v", winner.Score, bestScore)
	}
	// Schedule.Hosts is in strip-chain order; trace events carry the
	// candidate set in enumeration order. Same resources, maybe permuted.
	if !sameHosts(winner.Hosts, sched.Hosts) || !sameHosts(events[bestIdx].Hosts, sched.Hosts) {
		t.Fatalf("trace winner %v / best candidate %v disagree with schedule hosts %v",
			winner.Hosts, events[bestIdx].Hosts, sched.Hosts)
	}
	if winner.Predicted != sched.PredictedTotal {
		t.Fatalf("trace predicted %v, schedule predicted %v", winner.Predicted, sched.PredictedTotal)
	}
}

// sameHosts reports whether two host lists name the same set of hosts,
// ignoring order.
func sameHosts(a, b []string) bool {
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	return reflect.DeepEqual(as, bs)
}

// TestSharedObsAcrossConcurrentRounds drives several agents through
// parallel scheduling rounds that all feed one Metrics registry and one
// Collector. Correctness is exact bookkeeping — every event and count
// accounted for — and the -race job checks the synchronization of the
// shared instruments under contention.
func TestSharedObsAcrossConcurrentRounds(t *testing.T) {
	reg := obs.NewMetrics()
	col := obs.NewCollector()
	const agents, rounds = 4, 3

	type built struct {
		agent *Agent
	}
	pool := make([]built, agents)
	for i := range pool {
		tp, info := buildPool(t, 3, 4, int64(100+i))
		a, err := NewAgent(tp, hat.Jacobi2D(600, 10), &userspec.Spec{}, info,
			WithPruning(true), WithTracer(col), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = built{agent: a}
	}

	considered := make([]int, agents)
	var wg sync.WaitGroup
	for i := range pool {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sched, err := pool[i].agent.Schedule(600)
				if err != nil {
					t.Errorf("agent %d round %d: %v", i, r, err)
					return
				}
				considered[i] += sched.CandidatesConsidered
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	totalConsidered := 0
	for _, c := range considered {
		totalConsidered += c
	}
	if got := reg.Counter(obs.MetricRounds).Value(); got != agents*rounds {
		t.Fatalf("rounds counter = %d, want %d", got, agents*rounds)
	}
	evaluated := reg.Counter(obs.MetricCandidatesEvaluated).Value()
	prunedN := reg.Counter(obs.MetricCandidatesPruned).Value()
	infeasible := reg.Counter(obs.MetricCandidatesInfeasible).Value()
	if got := evaluated + prunedN + infeasible; got != uint64(totalConsidered) {
		t.Fatalf("evaluated+pruned+infeasible = %d, want %d considered", got, totalConsidered)
	}
	if got := reg.Histogram(obs.MetricRoundSeconds, nil).Count(); got != agents*rounds {
		t.Fatalf("round latency observations = %d, want %d", got, agents*rounds)
	}
	// Each round emits one snapshot, one event per considered set, and
	// one winner.
	if got, want := col.Len(), totalConsidered+2*agents*rounds; got != want {
		t.Fatalf("collector holds %d events, want %d", got, want)
	}
}

// TestStageTimingAcrossConcurrentRounds drives several agents — each
// evaluating candidates with parallel workers — through simultaneous
// rounds that share one StageTimer, one Metrics registry, and one
// RingTracer. Every round must land exactly one observation in each
// stage histogram, and the ring must account for every span emitted;
// the -race job checks the shared handles under contention.
func TestStageTimingAcrossConcurrentRounds(t *testing.T) {
	reg := obs.NewMetrics()
	ring := obs.NewRingTracer(32)
	st := obs.NewStageTimer(reg, ring, nil)
	const agents, rounds = 4, 3

	pool := make([]*Agent, agents)
	for i := range pool {
		tp, info := buildPool(t, 3, 4, int64(200+i))
		a, err := NewAgent(tp, hat.Jacobi2D(600, 10), &userspec.Spec{}, info,
			WithInfoSnapshot(true), WithParallelism(4), WithStageTiming(st))
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = a
	}

	var wg sync.WaitGroup
	for i := range pool {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := pool[i].Schedule(600); err != nil {
					t.Errorf("agent %d round %d: %v", i, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Exact bookkeeping: one observation per round in every round stage.
	stages := []string{obs.StageSnapshot, obs.StageSelect, obs.StagePlanEstimate, obs.StageReduce}
	for _, stage := range stages {
		if got := reg.Histogram(obs.StageMetricName(stage), nil).Count(); got != agents*rounds {
			t.Fatalf("stage %q recorded %d observations, want %d", stage, got, agents*rounds)
		}
	}
	if got, want := ring.Total(), uint64(len(stages)*agents*rounds); got != want {
		t.Fatalf("ring total = %d, want %d spans", got, want)
	}
	for _, e := range ring.Recent(0) {
		if e.Type != obs.EvSpan {
			t.Fatalf("ring holds non-span event %+v (timer without tracer must emit only spans)", e)
		}
	}
}
