package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"apples/internal/hat"
	"apples/internal/obs"
	"apples/internal/userspec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenTraceJacobiRound pins the JSONL trace of one fixed-seed
// Jacobi scheduling round. Any change to the event schema or to the
// decision sequence shows up as a reviewable diff against
// testdata/golden_trace.jsonl (regenerate with `go test -run Golden
// -update`). It then re-derives the decision from the trace alone and
// checks it against the schedule the agent returned — the trace must
// reconstruct the full decision, not just narrate it.
func TestGoldenTraceJacobiRound(t *testing.T) {
	tp, info := buildPool(t, 0, 0, 11)
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	// Four accessible hosts keep the golden file a reviewable 17 lines
	// (1 snapshot + 15 candidate sets + 1 winner); sequential evaluation
	// fixes the emission order.
	spec := &userspec.Spec{Accessible: []string{"alpha1", "alpha2", "alpha3", "alpha4"}}
	agent, err := NewAgent(tp, hat.Jacobi2D(600, 10), spec, info,
		WithParallelism(1), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := agent.Schedule(600)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from %s — if the schema change is intended, regenerate with -update\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}

	// Reconstruct the decision from the trace.
	var events []obs.Event
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		events = append(events, e)
	}
	if events[0].Type != obs.EvSnapshot || events[0].Pool != 4 {
		t.Fatalf("round must open with the snapshot event, got %+v", events[0])
	}
	var winner *obs.Event
	candidates := 0
	bestScore, bestIdx := 0.0, -1
	for i := range events {
		e := &events[i]
		switch e.Type {
		case obs.EvCandidate:
			candidates++
			if bestIdx < 0 || e.Score < bestScore {
				bestScore, bestIdx = e.Score, i
			}
		case obs.EvWinner:
			winner = e
		}
	}
	if winner == nil {
		t.Fatal("trace has no winner event")
	}
	if candidates != sched.CandidatesPlanned || winner.Considered != sched.CandidatesConsidered {
		t.Fatalf("trace counts (%d candidates, %d considered) disagree with schedule (%d planned, %d considered)",
			candidates, winner.Considered, sched.CandidatesPlanned, sched.CandidatesConsidered)
	}
	if bestIdx < 0 || winner.Score != bestScore {
		t.Fatalf("winner score %v is not the minimum candidate score %v", winner.Score, bestScore)
	}
	// Schedule.Hosts is in strip-chain order; trace events carry the
	// candidate set in enumeration order. Same resources, maybe permuted.
	if !sameHosts(winner.Hosts, sched.Hosts) || !sameHosts(events[bestIdx].Hosts, sched.Hosts) {
		t.Fatalf("trace winner %v / best candidate %v disagree with schedule hosts %v",
			winner.Hosts, events[bestIdx].Hosts, sched.Hosts)
	}
	if winner.Predicted != sched.PredictedTotal {
		t.Fatalf("trace predicted %v, schedule predicted %v", winner.Predicted, sched.PredictedTotal)
	}
}

// sameHosts reports whether two host lists name the same set of hosts,
// ignoring order.
func sameHosts(a, b []string) bool {
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	return reflect.DeepEqual(as, bs)
}

// TestSharedObsAcrossConcurrentRounds drives several agents through
// parallel scheduling rounds that all feed one Metrics registry and one
// Collector. Correctness is exact bookkeeping — every event and count
// accounted for — and the -race job checks the synchronization of the
// shared instruments under contention.
func TestSharedObsAcrossConcurrentRounds(t *testing.T) {
	reg := obs.NewMetrics()
	col := obs.NewCollector()
	const agents, rounds = 4, 3

	type built struct {
		agent *Agent
	}
	pool := make([]built, agents)
	for i := range pool {
		tp, info := buildPool(t, 3, 4, int64(100+i))
		a, err := NewAgent(tp, hat.Jacobi2D(600, 10), &userspec.Spec{}, info,
			WithPruning(true), WithTracer(col), WithMetrics(reg))
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = built{agent: a}
	}

	considered := make([]int, agents)
	var wg sync.WaitGroup
	for i := range pool {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sched, err := pool[i].agent.Schedule(600)
				if err != nil {
					t.Errorf("agent %d round %d: %v", i, r, err)
					return
				}
				considered[i] += sched.CandidatesConsidered
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	totalConsidered := 0
	for _, c := range considered {
		totalConsidered += c
	}
	if got := reg.Counter(obs.MetricRounds).Value(); got != agents*rounds {
		t.Fatalf("rounds counter = %d, want %d", got, agents*rounds)
	}
	evaluated := reg.Counter(obs.MetricCandidatesEvaluated).Value()
	prunedN := reg.Counter(obs.MetricCandidatesPruned).Value()
	infeasible := reg.Counter(obs.MetricCandidatesInfeasible).Value()
	if got := evaluated + prunedN + infeasible; got != uint64(totalConsidered) {
		t.Fatalf("evaluated+pruned+infeasible = %d, want %d considered", got, totalConsidered)
	}
	if got := reg.Histogram(obs.MetricRoundSeconds, nil).Count(); got != agents*rounds {
		t.Fatalf("round latency observations = %d, want %d", got, agents*rounds)
	}
	// Each round emits one snapshot, one event per considered set, and
	// one winner.
	if got, want := col.Len(), totalConsidered+2*agents*rounds; got != want {
		t.Fatalf("collector holds %d events, want %d", got, want)
	}
}
