package react

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/load"
	"apples/internal/sim"
)

// chainTopology: three dedicated hosts in a line over two links.
func chainTopology(eng *sim.Engine) *grid.Topology {
	tp := grid.NewTopology(eng)
	tp.AddHost(grid.HostSpec{Name: "instrument", Speed: 10, MemoryMB: 64})
	tp.AddHost(grid.HostSpec{Name: "preproc", Speed: 50, MemoryMB: 256})
	tp.AddHost(grid.HostSpec{Name: "super", Speed: 200, MemoryMB: 1024})
	l1 := tp.AddLink(grid.LinkSpec{Name: "field-link", Latency: 0.02, Bandwidth: 2, Dedicated: true})
	l2 := tp.AddLink(grid.LinkSpec{Name: "campus", Latency: 0.002, Bandwidth: 10, Dedicated: true})
	tp.Attach("instrument", l1)
	tp.Attach("preproc", l1)
	tp.Attach("preproc", l2)
	tp.Attach("super", l2)
	tp.Finalize()
	return tp
}

func sensorStages() []ChainStage {
	return []ChainStage{
		{Name: "acquire", Host: "instrument", SecPerUnit: 0.5, OutBytesPerUnit: 2e5},
		{Name: "calibrate", Host: "preproc", SecPerUnit: 0.2, OutBytesPerUnit: 1e5},
		{Name: "analyze", Host: "super", SecPerUnit: 0.8},
	}
}

func TestChainSimulationMatchesModel(t *testing.T) {
	for _, u := range []int{2, 5, 10} {
		eng := sim.NewEngine()
		tp := chainTopology(eng)
		pred, err := PredictChain(tp, sensorStages(), 100, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunChain(tp, sensorStages(), 100, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.Time-pred) / pred; rel > 0.06 {
			t.Errorf("u=%d: simulated %v vs modeled %v (%.1f%% off)", u, res.Time, pred, 100*rel)
		}
	}
}

func TestChainBottleneckIsSlowestStage(t *testing.T) {
	// The analyze stage (0.8 s/unit) dominates; total ~= S * 0.8 + fill.
	eng := sim.NewEngine()
	tp := chainTopology(eng)
	res, err := RunChain(tp, sensorStages(), 100, 5, Options{MsgOverheadSec: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	lower := 100 * 0.8
	if res.Time < lower {
		t.Fatalf("chain %v faster than its bottleneck allows (%v)", res.Time, lower)
	}
	if res.Time > lower*1.3 {
		t.Fatalf("chain %v much slower than bottleneck bound %v: no overlap?", res.Time, lower)
	}
}

func TestChainStallAccounting(t *testing.T) {
	eng := sim.NewEngine()
	tp := chainTopology(eng)
	res, err := RunChain(tp, sensorStages(), 60, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The analyze stage is the bottleneck: once fed it should rarely
	// starve; the fast preproc stage starves constantly (it waits on the
	// slow instrument).
	if res.StageStallSec[1] <= res.StageStallSec[2] {
		t.Fatalf("stalls: preproc %v should exceed analyze %v",
			res.StageStallSec[1], res.StageStallSec[2])
	}
}

func TestChainTwoStageConsistentWithPipelineShape(t *testing.T) {
	// A 2-stage chain behaves like the 3D-REACT pipeline: interior batch
	// sizes beat both extremes.
	eng := sim.NewEngine()
	tp := chainTopology(eng)
	stages := sensorStages()[:2]
	bestU, bestT := 0, math.Inf(1)
	var t1, tBig float64
	for u := 1; u <= 200; u++ {
		v, err := PredictChain(tp, stages, 200, u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if u == 1 {
			t1 = v
		}
		if u == 200 {
			tBig = v
		}
		if v < bestT {
			bestU, bestT = u, v
		}
	}
	if bestU <= 1 || bestU >= 200 {
		t.Fatalf("optimum at boundary u=%d", bestU)
	}
	if bestT >= t1 || bestT >= tBig {
		t.Fatalf("no interior optimum: t(1)=%v t(%d)=%v t(200)=%v", t1, bestU, bestT, tBig)
	}
}

func TestChainOnLoadedHost(t *testing.T) {
	// Ambient load on the bottleneck stage stretches the whole chain.
	mk := func(loaded bool) float64 {
		eng := sim.NewEngine()
		tp := chainTopology(eng)
		if loaded {
			tp.Host("super").SetLoad(load.Constant(1))
		}
		res, err := RunChain(tp, sensorStages(), 60, 5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	quiet, loaded := mk(false), mk(true)
	if loaded < 1.5*quiet {
		t.Fatalf("load on bottleneck: %v vs quiet %v, want ~2x", loaded, quiet)
	}
}

func TestChainValidation(t *testing.T) {
	eng := sim.NewEngine()
	tp := chainTopology(eng)
	if _, err := RunChain(tp, nil, 10, 2, Options{}); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := RunChain(tp, sensorStages(), 0, 2, Options{}); err == nil {
		t.Fatal("zero units accepted")
	}
	bad := sensorStages()
	bad[1].Host = "ghost"
	if _, err := RunChain(tp, bad, 10, 2, Options{}); err == nil {
		t.Fatal("unknown host accepted")
	}
	if _, err := PredictChain(tp, bad, 10, 2, Options{}); err == nil {
		t.Fatal("predict accepted unknown host")
	}
}

func TestChainRaggedLastBatch(t *testing.T) {
	eng := sim.NewEngine()
	tp := chainTopology(eng)
	res, err := RunChain(tp, sensorStages(), 23, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 5 {
		t.Fatalf("batches %d, want 5", res.Batches)
	}
}
