package react

import (
	"fmt"

	"apples/internal/grid"
	"apples/internal/hat"
)

// Result reports an executed pipeline run.
type Result struct {
	// Time is total wall-clock (virtual) seconds including ASY and any
	// second-phase Log-D sets.
	Time float64
	// ConsumerStallSec is how long the Log-D machine sat idle waiting for
	// surface-function data after its first batch arrived — the paper's
	// "Log-D computations will stop while they wait for more LHSF data".
	ConsumerStallSec float64
	// PeakQueuedBatches is the maximum number of completed-but-unconsumed
	// subdomains buffered at the consumer (the buffering cost side).
	PeakQueuedBatches int
	// Batches is the number of pipeline subdomains processed.
	Batches int
}

// RunPipeline executes the two-task pipeline on the topology: `producer`
// computes LHSF subdomains of `unit` surface functions and streams them to
// `consumer`, which runs Log-D on each and the ASY analysis at the end.
// The run drives the topology's engine until completion.
func RunPipeline(tp *grid.Topology, tpl *hat.Template, producer, consumer string, unit int, opt Options) (*Result, error) {
	opt.setDefaults()
	if unit < 1 {
		return nil, fmt.Errorf("react: pipeline unit %d < 1", unit)
	}
	ph, ch := tp.Host(producer), tp.Host(consumer)
	if ph == nil || ch == nil {
		return nil, fmt.Errorf("react: unknown machine %q or %q", producer, consumer)
	}
	lhsf, ok := tpl.Task("lhsf")
	if !ok {
		return nil, fmt.Errorf("react: template lacks lhsf task")
	}
	logd, ok := tpl.Task("logd")
	if !ok {
		return nil, fmt.Errorf("react: template lacks logd task")
	}
	var comm hat.Comm
	for _, c := range tpl.Comms {
		if c.Pattern == hat.PipelineFlow {
			comm = c
		}
	}
	s := tpl.Iterations
	if s < 1 {
		return nil, fmt.Errorf("react: template has no surface functions")
	}

	eng := tp.Engine
	res := &Result{}
	start := eng.Now()

	type batch struct{ units int }
	// Split S into subdomains of `unit` functions (last one may be short).
	var batches []batch
	for rem := s; rem > 0; rem -= unit {
		u := unit
		if rem < unit {
			u = rem
		}
		batches = append(batches, batch{units: u})
	}
	res.Batches = len(batches)

	produceWork := func(u int) float64 {
		return float64(u)*lhsf.FlopPerUnit/1e6/lhsf.SpeedFactorOn(ph.Arch) + opt.MsgOverheadSec*ph.Speed
	}
	consumeWork := func(u int) float64 {
		return float64(u) * logd.FlopPerUnit / 1e6 / logd.SpeedFactorOn(ch.Arch)
	}

	var (
		queue        []int // queued batch unit counts at the consumer
		consumerBusy bool
		consumed     int
		rep          = 1
		idleSince    float64
		everFed      bool
		afterASY     func()
	)

	var consumeNext func()
	consumeNext = func() {
		if len(queue) == 0 {
			consumerBusy = false
			idleSince = eng.Now()
			return
		}
		u := queue[0]
		queue = queue[1:]
		consumerBusy = true
		ch.Submit(consumeWork(u), func() {
			consumed++
			if consumed == len(batches) {
				// ASY on the consumer, then repeat, second phase, or done.
				ch.Submit(opt.ASYSec*ch.Speed, afterASY)
				return
			}
			consumeNext()
		})
	}

	enqueue := func(u int) {
		queue = append(queue, u)
		if len(queue) > res.PeakQueuedBatches {
			res.PeakQueuedBatches = len(queue)
		}
		if !consumerBusy {
			if everFed {
				res.ConsumerStallSec += eng.Now() - idleSince
			}
			everFed = true
			consumeNext()
		}
	}

	var produce func(k int)
	produce = func(k int) {
		if k >= len(batches) {
			return
		}
		u := batches[k].units
		ph.Submit(produceWork(u), func() {
			tp.Send(producer, consumer, float64(u)*comm.BytesPerUnit/1e6, func() {
				enqueue(u)
			})
			produce(k + 1)
		})
	}

	afterASY = func() {
		if rep < opt.Repetitions {
			// Termination conditions unmet: ASY directs the entire
			// computation (LHSF and then LogD/ASY) to be repeated. The
			// consumer idles until the first new subdomain arrives.
			rep++
			consumed = 0
			consumerBusy = false
			idleSince = eng.Now()
			produce(0)
			return
		}
		res.Batches = len(batches) * rep
		if opt.ExtraLogDSets > 0 {
			// Second phase: every surface function is now resident on both
			// machines, so both compute additional Log-D sets with no
			// interprocessor communication (Section 2.3).
			speedP := ph.Speed * logd.SpeedFactorOn(ph.Arch)
			speedC := ch.Speed * logd.SpeedFactorOn(ch.Arch)
			totalUnits := float64(opt.ExtraLogDSets * s)
			shareP := totalUnits * speedP / (speedP + speedC)
			shareC := totalUnits - shareP
			remaining := 2
			done := func() {
				remaining--
				if remaining == 0 {
					res.Time = eng.Now() - start
					eng.Halt()
				}
			}
			ph.Submit(shareP*logd.FlopPerUnit/1e6/logd.SpeedFactorOn(ph.Arch), done)
			ch.Submit(shareC*logd.FlopPerUnit/1e6/logd.SpeedFactorOn(ch.Arch), done)
			return
		}
		res.Time = eng.Now() - start
		eng.Halt()
	}

	produce(0)
	if err := eng.Run(); err != nil {
		return nil, err
	}
	if res.Time == 0 && consumed < len(batches) {
		return nil, fmt.Errorf("react: pipeline stalled after %d/%d batches", consumed, len(batches))
	}
	return res, nil
}

// RunSingleSite executes the sequential single-machine variant on the
// simulator (compute every LHSF, stage, then propagate), with the staging
// penalty applied as extra work when the surface-function set exceeds
// memory.
func RunSingleSite(tp *grid.Topology, tpl *hat.Template, host string, opt Options) (*Result, error) {
	opt.setDefaults()
	h := tp.Host(host)
	if h == nil {
		return nil, fmt.Errorf("react: unknown machine %q", host)
	}
	predicted, err := PredictSingleSite(tp, tpl, host, opt)
	if err != nil {
		return nil, err
	}
	eng := tp.Engine
	res := &Result{Batches: 1}
	start := eng.Now()
	// The machine is dedicated; submit the staged sequential computation
	// as one task whose work equals the modeled time.
	h.Submit(predicted*h.Speed, func() {
		res.Time = eng.Now() - start
		eng.Halt()
	})
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return res, nil
}

// ChooseMapping evaluates both task-to-machine mappings with the analytic
// model (the paper's approach: "parameterized an analytical performance
// model with potential task-to-machine mappings") and returns the better
// producer/consumer assignment with its best pipeline unit.
func ChooseMapping(tp *grid.Topology, tpl *hat.Template, a, b string, opt Options) (producer, consumer string, unit int, predicted float64, err error) {
	m1, err := NewModel(tp, tpl, a, b, opt)
	if err != nil {
		return "", "", 0, 0, err
	}
	m2, err := NewModel(tp, tpl, b, a, opt)
	if err != nil {
		return "", "", 0, 0, err
	}
	u1, t1 := m1.BestUnit(tpl.PipelineUnitMin, tpl.PipelineUnitMax)
	u2, t2 := m2.BestUnit(tpl.PipelineUnitMin, tpl.PipelineUnitMax)
	if t1 <= t2 {
		return a, b, u1, t1, nil
	}
	return b, a, u2, t2, nil
}
