package react

import (
	"math"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/sim"
)

const surfaceFunctions = 600

func casa(t testing.TB) (*grid.Topology, *hat.Template) {
	tp := grid.CASA(sim.NewEngine())
	return tp, hat.React3D(surfaceFunctions)
}

func hours(sec float64) float64 { return sec / 3600 }

func TestSingleSiteExceeds16Hours(t *testing.T) {
	tp, tpl := casa(t)
	for _, m := range []string{"c90", "paragon"} {
		pred, err := PredictSingleSite(tp, tpl, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if hours(pred) < 15 {
			t.Errorf("single-site %s predicted %.1f h, paper reports >16 h", m, hours(pred))
		}
		if hours(pred) > 30 {
			t.Errorf("single-site %s predicted %.1f h, implausibly slow", m, hours(pred))
		}
	}
}

func TestDistributedUnder5Hours(t *testing.T) {
	tp, tpl := casa(t)
	m, err := NewModel(tp, tpl, "c90", "paragon", Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, pred := m.BestUnit(tpl.PipelineUnitMin, tpl.PipelineUnitMax)
	if u < tpl.PipelineUnitMin || u > tpl.PipelineUnitMax {
		t.Fatalf("best unit %d outside template range", u)
	}
	if hours(pred) > 5.5 || hours(pred) < 3.5 {
		t.Fatalf("distributed predicted %.2f h, paper reports just under 5 h", hours(pred))
	}
}

func TestDistributedSpeedupShape(t *testing.T) {
	// The headline result: >16 h single site, <5 h distributed, i.e. a
	// speedup of roughly 3.2-3.5x from two machines plus overlap.
	tp, tpl := casa(t)
	single, err := PredictSingleSite(tp, tpl, "c90", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(tp, tpl, "c90", "paragon", Options{})
	_, dist := m.BestUnit(tpl.PipelineUnitMin, tpl.PipelineUnitMax)
	speedup := single / dist
	if speedup < 2.5 || speedup > 4.5 {
		t.Fatalf("speedup %.2f, want the paper's ~3.3x shape", speedup)
	}
}

func TestPipelineUnitTradeoff(t *testing.T) {
	tp, tpl := casa(t)
	m, err := NewModel(tp, tpl, "c90", "paragon", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tSmall := m.Predict(1)
	tLarge := m.Predict(surfaceFunctions) // one giant subdomain: no overlap
	bestU, tBest := m.BestUnit(1, surfaceFunctions)
	if tBest >= tSmall || tBest >= tLarge {
		t.Fatalf("no interior optimum: t(1)=%v t(best=%d)=%v t(S)=%v", tSmall, bestU, tBest, tLarge)
	}
	// Both pathologies must be visibly worse, per Section 2.3.
	if tSmall < tBest*1.02 {
		t.Fatalf("tiny pipeline unit not penalized: %v vs %v", tSmall, tBest)
	}
	if tLarge < tBest*1.5 {
		t.Fatalf("giant pipeline unit not penalized: %v vs %v", tLarge, tBest)
	}
}

func TestSimulationMatchesModel(t *testing.T) {
	for _, u := range []int{5, 10, 20} {
		tp := grid.CASA(sim.NewEngine())
		tpl := hat.React3D(surfaceFunctions)
		m, err := NewModel(tp, tpl, "c90", "paragon", Options{})
		if err != nil {
			t.Fatal(err)
		}
		pred := m.Predict(u)
		res, err := RunPipeline(tp, tpl, "c90", "paragon", u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.Time-pred) / pred; rel > 0.05 {
			t.Errorf("u=%d: simulated %v vs modeled %v (%.1f%% off)", u, res.Time, pred, 100*rel)
		}
	}
}

func TestRunSingleSiteMatchesPrediction(t *testing.T) {
	tp, tpl := casa(t)
	pred, _ := PredictSingleSite(tp, tpl, "c90", Options{})
	res, err := RunSingleSite(tp, tpl, "c90", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-pred)/pred > 1e-6 {
		t.Fatalf("single-site run %v vs prediction %v", res.Time, pred)
	}
}

func TestConsumerStallsWithTinyUnit(t *testing.T) {
	tp := grid.CASA(sim.NewEngine())
	tpl := hat.React3D(120)
	res, err := RunPipeline(tp, tpl, "c90", "paragon", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConsumerStallSec <= 0 {
		t.Fatal("unit=1 pipeline shows no consumer stall")
	}
	tp2 := grid.CASA(sim.NewEngine())
	res2, err := RunPipeline(tp2, tpl, "c90", "paragon", 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ConsumerStallSec >= res.ConsumerStallSec {
		t.Fatalf("stall should shrink with bigger units: u=1 %v, u=20 %v",
			res.ConsumerStallSec, res2.ConsumerStallSec)
	}
}

func TestChooseMappingPicksC90Producer(t *testing.T) {
	tp, tpl := casa(t)
	prod, cons, unit, pred, err := ChooseMapping(tp, tpl, "c90", "paragon", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// LHSF vectorizes (C90), Log-D's best implementation is the MPP one:
	// the model must discover the paper's actual mapping.
	if prod != "c90" || cons != "paragon" {
		t.Fatalf("mapping %s->%s, want c90->paragon", prod, cons)
	}
	if unit < tpl.PipelineUnitMin || unit > tpl.PipelineUnitMax {
		t.Fatalf("unit %d outside 5-20", unit)
	}
	if pred <= 0 {
		t.Fatalf("predicted %v", pred)
	}
}

func TestSecondPhaseScalesBothMachines(t *testing.T) {
	tpl := hat.React3D(120)
	run := func(extra int) float64 {
		tp := grid.CASA(sim.NewEngine())
		res, err := RunPipeline(tp, tpl, "c90", "paragon", 10, Options{ExtraLogDSets: extra})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	base := run(0)
	withExtra := run(1)
	added := withExtra - base
	if added <= 0 {
		t.Fatalf("second phase added %v s", added)
	}
	// Both machines share the extra set with no communication: the added
	// time must be well under a consumer-only serial pass.
	logd, _ := tpl.Task("logd")
	tp := grid.CASA(sim.NewEngine())
	consumerOnly := 120 * logd.FlopPerUnit / 1e6 / tp.Host("paragon").Speed
	if added > 0.75*consumerOnly {
		t.Fatalf("second phase %v s, want clearly faster than consumer-only %v s", added, consumerOnly)
	}
}

func TestPipelineQueueBuffering(t *testing.T) {
	// Make the consumer the bottleneck by flipping the mapping: paragon
	// produces slowly... actually flip so producer is much faster:
	// paragon runs LHSF poorly, so c90->paragon has producer bottleneck;
	// to see buffering, use paragon as consumer with giant units is not
	// enough. Instead run c90 as both fast producer and slow consumer:
	// map consumer role onto the slower logd implementation (c90).
	tp := grid.CASA(sim.NewEngine())
	tpl := hat.React3D(120)
	res, err := RunPipeline(tp, tpl, "paragon", "c90", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakQueuedBatches < 0 {
		t.Fatal("negative queue depth")
	}
	if res.Batches != 12 {
		t.Fatalf("batches %d, want 12", res.Batches)
	}
}

func TestRunPipelineErrors(t *testing.T) {
	tp, tpl := casa(t)
	if _, err := RunPipeline(tp, tpl, "ghost", "paragon", 10, Options{}); err == nil {
		t.Fatal("unknown producer accepted")
	}
	if _, err := RunPipeline(tp, tpl, "c90", "paragon", 0, Options{}); err == nil {
		t.Fatal("zero unit accepted")
	}
	if _, err := RunSingleSite(tp, tpl, "ghost", Options{}); err == nil {
		t.Fatal("unknown single-site machine accepted")
	}
	bad := hat.Jacobi2D(100, 10)
	if _, err := RunPipeline(tp, bad, "c90", "paragon", 10, Options{}); err == nil {
		t.Fatal("template without lhsf accepted")
	}
}

func TestLastShortBatchHandled(t *testing.T) {
	tp := grid.CASA(sim.NewEngine())
	tpl := hat.React3D(103) // 103 = 10*10 + 3
	res, err := RunPipeline(tp, tpl, "c90", "paragon", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 11 {
		t.Fatalf("batches %d, want 11", res.Batches)
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	tpl := hat.React3D(surfaceFunctions)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := grid.CASA(sim.NewEngine())
		if _, err := RunPipeline(tp, tpl, "c90", "paragon", 14, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
