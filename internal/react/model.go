package react

import (
	"fmt"
	"math"

	"apples/internal/grid"
	"apples/internal/hat"
)

// Options tunes the pipeline model beyond what the HAT carries.
type Options struct {
	// MsgOverheadSec is the fixed per-subdomain software cost on the
	// producer: machine-format conversion of the surface-function data
	// (the Cray->Delta float conversion of Section 2.3) plus message
	// protocol costs. Default 12 s.
	MsgOverheadSec float64
	// ASYSec is the asymptotic-analysis cost appended after the last
	// subdomain (it is "not computationally intensive"). Default 120 s.
	ASYSec float64
	// StagingPenalty multiplies the per-unit cost of the fraction of a
	// single-site run's surface-function set that exceeds machine memory
	// (disk staging). Default 2.5.
	StagingPenalty float64
	// ExtraLogDSets is the second-phase variant: additional full Log-D
	// derivations computed after the pipeline completes, with every
	// surface function already resident on both machines.
	ExtraLogDSets int
	// Repetitions is the number of full LHSF+LogD passes: the ASY
	// analysis "may direct the entire computation ... to be repeated if
	// termination conditions are not met" (Section 2.2). Default 1.
	Repetitions int
}

func (o *Options) setDefaults() {
	if o.MsgOverheadSec == 0 {
		o.MsgOverheadSec = 12
	}
	if o.ASYSec == 0 {
		o.ASYSec = 120
	}
	if o.StagingPenalty == 0 {
		o.StagingPenalty = 2.5
	}
	if o.Repetitions == 0 {
		o.Repetitions = 1
	}
}

// secPerUnit returns the seconds one machine needs per surface function
// for the given task, honoring the per-architecture implementation.
func secPerUnit(h *grid.Host, task hat.Task) float64 {
	return task.FlopPerUnit / 1e6 / (h.Speed * task.SpeedFactorOn(h.Arch))
}

// Model is the analytic pipeline performance model the 3D-REACT
// developers parameterized with candidate task-to-machine mappings.
type Model struct {
	Producer, Consumer string
	S                  int     // total surface functions
	TL, TD             float64 // sec per unit: LHSF on producer, Log-D on consumer
	Eps                float64 // per-subdomain fixed overhead (conversion+protocol)
	Latency            float64 // route latency, sec
	SecPerUnitXfer     float64 // transfer seconds per surface function
	ASY                float64
}

// NewModel builds the model for a producer/consumer mapping on tp.
func NewModel(tp *grid.Topology, tpl *hat.Template, producer, consumer string, opt Options) (*Model, error) {
	opt.setDefaults()
	ph, ch := tp.Host(producer), tp.Host(consumer)
	if ph == nil || ch == nil {
		return nil, fmt.Errorf("react: unknown machine %q or %q", producer, consumer)
	}
	lhsf, ok := tpl.Task("lhsf")
	if !ok {
		return nil, fmt.Errorf("react: template lacks lhsf task")
	}
	logd, ok := tpl.Task("logd")
	if !ok {
		return nil, fmt.Errorf("react: template lacks logd task")
	}
	var comm hat.Comm
	for _, c := range tpl.Comms {
		if c.Pattern == hat.PipelineFlow {
			comm = c
		}
	}
	bw := tp.RouteDedicatedBandwidth(producer, consumer)
	return &Model{
		Producer:       producer,
		Consumer:       consumer,
		S:              tpl.Iterations,
		TL:             secPerUnit(ph, lhsf),
		TD:             secPerUnit(ch, logd),
		Eps:            opt.MsgOverheadSec,
		Latency:        tp.RouteLatency(producer, consumer),
		SecPerUnitXfer: comm.BytesPerUnit / 1e6 / bw,
		ASY:            opt.ASYSec,
	}, nil
}

// Predict returns the modeled wall-clock seconds for pipeline unit u: a
// three-stage pipeline (produce, transfer, consume) with K = ceil(S/u)
// subdomains,
//
//	total = tP + tX + (K-1)*max(tP, tX, tC) + tC + ASY
//
// where tP = u*TL + Eps, tX = Latency + u*xfer, tC = u*TD.
func (m *Model) Predict(u int) float64 {
	if u < 1 {
		return math.Inf(1)
	}
	k := (m.S + u - 1) / u
	tP := float64(u)*m.TL + m.Eps
	tX := m.Latency + float64(u)*m.SecPerUnitXfer
	tC := float64(u) * m.TD
	bottleneck := math.Max(tP, math.Max(tX, tC))
	return tP + tX + float64(k-1)*bottleneck + tC + m.ASY
}

// BestUnit sweeps the template's pipeline-unit range and returns the unit
// with the minimum predicted time, with ties broken toward smaller units.
func (m *Model) BestUnit(minU, maxU int) (int, float64) {
	if minU < 1 {
		minU = 1
	}
	if maxU < minU {
		maxU = minU
	}
	bestU, bestT := minU, math.Inf(1)
	for u := minU; u <= maxU; u++ {
		if t := m.Predict(u); t < bestT {
			bestU, bestT = u, t
		}
	}
	return bestU, bestT
}

// PredictSingleSite models running both tasks sequentially on one machine:
// every surface function is computed, stored, then propagated. When the
// stored surface-function set exceeds machine memory, the excess fraction
// pays the staging penalty (the C90 "did not have enough memory to allow
// both ... to be run in parallel as one application", Section 2.3).
func PredictSingleSite(tp *grid.Topology, tpl *hat.Template, host string, opt Options) (float64, error) {
	opt.setDefaults()
	h := tp.Host(host)
	if h == nil {
		return 0, fmt.Errorf("react: unknown machine %q", host)
	}
	lhsf, _ := tpl.Task("lhsf")
	logd, _ := tpl.Task("logd")
	s := float64(tpl.Iterations)
	per := secPerUnit(h, lhsf) + secPerUnit(h, logd)
	storeMB := s * lhsf.BytesPerUnit / 1e6
	mult := 1.0
	if storeMB > h.MemoryMB {
		spill := (storeMB - h.MemoryMB) / storeMB
		mult = 1 + spill*(opt.StagingPenalty-1)
	}
	return s*per*mult + opt.ASYSec, nil
}
