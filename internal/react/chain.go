package react

import (
	"fmt"
	"math"

	"apples/internal/grid"
)

// ChainStage is one stage of an N-stage heterogeneous pipeline — the
// generalization of 3D-REACT's two tasks to the paper's broader vision of
// coupled instruments and computers ("remote sensors and/or experimental
// instruments and general-purpose computers can be productively coupled",
// Section 1).
type ChainStage struct {
	Name string
	// Host executes the stage.
	Host string
	// SecPerUnit is the stage's dedicated-machine processing time per
	// work unit; ambient load on the host stretches it.
	SecPerUnit float64
	// OutBytesPerUnit is the data volume shipped per unit to the next
	// stage (ignored for the last stage).
	OutBytesPerUnit float64
}

// ChainResult reports an executed chain run.
type ChainResult struct {
	Time float64
	// StageStallSec is how long each stage (after the first) sat idle
	// waiting for input once fed.
	StageStallSec []float64
	Batches       int
}

// PredictChain models an N-stage pipeline with batch size u over S units:
// the run fills through every stage and link once, then advances at the
// bottleneck stage/link rate:
//
//	total = sum_i tS_i + sum_i tX_i + (K-1)*max(all)
//
// where tS_i = u*Sec_i + Eps (per-batch software overhead) and tX_i =
// latency_i + u*bytes_i/bandwidth_i.
func PredictChain(tp *grid.Topology, stages []ChainStage, S, u int, opt Options) (float64, error) {
	opt.setDefaults()
	if len(stages) < 1 {
		return 0, fmt.Errorf("react: empty chain")
	}
	if u < 1 || S < 1 {
		return 0, fmt.Errorf("react: need positive unit and total")
	}
	k := (S + u - 1) / u
	fill, bottleneck := 0.0, 0.0
	for i, st := range stages {
		if tp.Host(st.Host) == nil {
			return 0, fmt.Errorf("react: chain stage %q on unknown host %q", st.Name, st.Host)
		}
		tS := float64(u)*st.SecPerUnit + opt.MsgOverheadSec
		fill += tS
		bottleneck = math.Max(bottleneck, tS)
		if i+1 < len(stages) {
			next := stages[i+1]
			bw := tp.RouteDedicatedBandwidth(st.Host, next.Host)
			lat := tp.RouteLatency(st.Host, next.Host)
			tX := lat + float64(u)*st.OutBytesPerUnit/1e6/bw
			fill += tX
			bottleneck = math.Max(bottleneck, tX)
		}
	}
	return fill + float64(k-1)*bottleneck, nil
}

// RunChain executes the chain on the simulated metacomputer: stage 0
// produces batches of u units; every stage processes a batch, forwards it
// downstream, and the run ends when the last stage finishes batch K.
func RunChain(tp *grid.Topology, stages []ChainStage, S, u int, opt Options) (*ChainResult, error) {
	opt.setDefaults()
	if len(stages) < 1 {
		return nil, fmt.Errorf("react: empty chain")
	}
	if u < 1 || S < 1 {
		return nil, fmt.Errorf("react: need positive unit and total")
	}
	hosts := make([]*grid.Host, len(stages))
	for i, st := range stages {
		h := tp.Host(st.Host)
		if h == nil {
			return nil, fmt.Errorf("react: chain stage %q on unknown host %q", st.Name, st.Host)
		}
		hosts[i] = h
	}

	eng := tp.Engine
	k := (S + u - 1) / u
	res := &ChainResult{Batches: k, StageStallSec: make([]float64, len(stages))}
	start := eng.Now()

	// Per-stage state.
	type stageState struct {
		queue     []int // batch unit counts awaiting processing
		busy      bool
		idleSince float64
		fed       bool
	}
	states := make([]*stageState, len(stages))
	for i := range states {
		states[i] = &stageState{}
	}
	doneBatches := 0

	var startWork func(i int)
	deliver := func(i, units int) {
		st := states[i]
		st.queue = append(st.queue, units)
		if !st.busy {
			if st.fed {
				res.StageStallSec[i] += eng.Now() - st.idleSince
			}
			st.fed = true
			startWork(i)
		}
	}

	startWork = func(i int) {
		st := states[i]
		if len(st.queue) == 0 {
			st.busy = false
			st.idleSince = eng.Now()
			return
		}
		units := st.queue[0]
		st.queue = st.queue[1:]
		st.busy = true
		work := (float64(units)*stages[i].SecPerUnit + opt.MsgOverheadSec) * hosts[i].Speed
		hosts[i].Submit(work, func() {
			if i+1 < len(stages) {
				sizeMB := float64(units) * stages[i].OutBytesPerUnit / 1e6
				tp.Send(stages[i].Host, stages[i+1].Host, sizeMB, func() {
					deliver(i+1, units)
				})
			} else {
				doneBatches++
				if doneBatches == k {
					res.Time = eng.Now() - start
					eng.Halt()
					return
				}
			}
			startWork(i)
		})
	}

	// Feed stage 0 all batches up front (it self-schedules sequentially).
	for rem, b := S, 0; rem > 0 && b < k; b++ {
		units := u
		if rem < u {
			units = rem
		}
		states[0].queue = append(states[0].queue, units)
		rem -= units
	}
	states[0].fed = true
	startWork(0)

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if doneBatches < k {
		return nil, fmt.Errorf("react: chain stalled at %d/%d batches", doneBatches, k)
	}
	return res, nil
}
