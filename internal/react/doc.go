// Package react models 3D-REACT (Sections 2.2-2.3): the task-parallel
// CASA metacomputing application that solves a six-dimensional Schrödinger
// equation as two coupled tasks — local hyperspherical surface function
// (LHSF) calculation feeding logarithmic-derivative propagation plus
// asymptotic analysis (Log-D/ASY) — pipelined across two dedicated
// supercomputers.
//
// The package provides both the developers' analytic pipeline performance
// model (the one the paper says they used to derive the correct pipeline
// size from endpoint speeds and the intervening link) and a discrete-event
// execution of the pipeline on the simulated CASA testbed, so the model
// can be validated against "measured" behaviour.
//
// The reproduced results (experiment E5):
//
//   - single-site execution on either machine exceeds 16 hours, while the
//     distributed pipeline takes just under 5 hours;
//   - the pipeline unit trades producer stalls (too small: per-subdomain
//     data-conversion/message overhead dominates) against fill/drain and
//     buffering cost (too large), with an interior optimum in the paper's
//     5-20 surface-function range;
//   - the second-phase variant in which, once all surface functions are
//     resident on both machines, both compute additional Log-D sets with
//     no interprocessor communication.
package react
