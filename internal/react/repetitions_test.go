package react

import (
	"math"
	"strings"
	"testing"

	"apples/internal/grid"
	"apples/internal/hat"
	"apples/internal/sim"
)

func TestRepetitionsScaleRuntime(t *testing.T) {
	tpl := hat.React3D(100)
	run := func(reps int) (*Result, float64) {
		tp := grid.CASA(sim.NewEngine())
		res, err := RunPipeline(tp, tpl, "c90", "paragon", 10, Options{Repetitions: reps})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Time
	}
	res1, t1 := run(1)
	res3, t3 := run(3)
	if res1.Batches != 10 || res3.Batches != 30 {
		t.Fatalf("batches %d / %d, want 10 / 30", res1.Batches, res3.Batches)
	}
	// Three full LHSF+LogD+ASY passes: close to 3x one pass.
	if ratio := t3 / t1; math.Abs(ratio-3) > 0.1 {
		t.Fatalf("3 repetitions took %.2fx one repetition, want ~3x", ratio)
	}
}

func TestRepetitionsWithSecondPhase(t *testing.T) {
	tpl := hat.React3D(60)
	tp := grid.CASA(sim.NewEngine())
	res, err := RunPipeline(tp, tpl, "c90", "paragon", 10, Options{Repetitions: 2, ExtraLogDSets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 12 {
		t.Fatalf("batches %d, want 12 (two passes of 6)", res.Batches)
	}
	if res.Time <= 0 {
		t.Fatalf("time %v", res.Time)
	}
}

func TestDescribeTopology(t *testing.T) {
	tp := grid.CASA(sim.NewEngine())
	out := tp.Describe()
	for _, want := range []string{"hippi-sonet", "c90", "paragon", "dedicated", "Mflop/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, out)
		}
	}
}
