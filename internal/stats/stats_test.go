package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	// Sample SD of this classic set is ~2.138.
	if math.Abs(s.SD-2.1381) > 1e-3 {
		t.Fatalf("SD %v", s.SD)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.String() != "n/a" {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.SD != 0 || s.Median != 3 || s.CI95() != 0 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := 1.96 * s.SD / 2
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Fatalf("CI95 %v, want %v", s.CI95(), want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 20: 10, 50: 30, 90: 50, 100: 50}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile not NaN")
	}
}

// Welford must recover the exact spread of a tiny-variance sample riding a
// huge offset, where the textbook Σx²−(Σx)²/n form cancels catastrophically
// in float64.
func TestWelfordStableOnLargeOffset(t *testing.T) {
	var w Welford
	for _, v := range []float64{1e9 + 1, 1e9 + 2, 1e9 + 3} {
		w.Add(v)
	}
	if w.N() != 3 || w.Mean() != 1e9+2 {
		t.Fatalf("n=%d mean=%v, want 3 and %v", w.N(), w.Mean(), 1e9+2.0)
	}
	if w.SD() != 1 {
		t.Fatalf("SD %v, want exactly 1", w.SD())
	}
	// Demonstrate the failure mode being avoided: the naive two-sum
	// variance of the same sample is garbage at this offset.
	var sum, sumSq float64
	for _, v := range []float64{1e9 + 1, 1e9 + 2, 1e9 + 3} {
		sum += v
		sumSq += v * v
	}
	naive := (sumSq - sum*sum/3) / 2
	if math.Abs(naive-1) < 0.01 {
		t.Fatalf("naive variance %v unexpectedly accurate; test premise broken", naive)
	}

	s := Summarize([]float64{1e9 + 1, 1e9 + 2, 1e9 + 3})
	if s.SD != 1 {
		t.Fatalf("Summarize SD %v, want exactly 1", s.SD)
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.SD() != 0 {
		t.Fatalf("zero-value Welford not zero: %+v", w)
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
}

// Property: mean lies within [min, max]; SD is non-negative; median within
// range.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.SD >= 0 && s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
