// Package stats provides the summary statistics the experiment harness
// reports: the paper presents averages of back-to-back runs, and a
// faithful harness should also expose the spread those averages hide.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	SD     float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm): one pass, O(1) state, and numerically stable on series
// riding a large offset, where accumulating raw Σx and Σx² cancels
// catastrophically. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add absorbs one measurement.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports how many measurements have been absorbed.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any measurements).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (n-1 denominator; 0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// SD returns the sample standard deviation.
func (w *Welford) SD() float64 { return math.Sqrt(w.Var()) }

// Summarize computes a Summary. An empty sample returns the zero value.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var w Welford
	for _, x := range xs {
		w.Add(x)
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = w.Mean()
	s.SD = w.SD()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the 95% confidence half-width of the mean under the
// normal approximation (0 for samples smaller than 2).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.SD / math.Sqrt(float64(s.N))
}

// String renders "mean ± sd (n=N)".
func (s Summary) String() string {
	if s.N == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.SD, s.N)
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
