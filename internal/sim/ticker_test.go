package sim

import "testing"

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine()
	var times []float64
	tk := NewTicker(e, 2, func(now float64) { times = append(times, now) })
	if err := e.RunUntil(9); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	want := []float64{2, 4, 6, 8}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", times, want)
		}
	}
}

func TestTickerStopMidRun(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 1, func(now float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
	if tk.Ticks() != 3 {
		t.Fatalf("Ticks() = %d, want 3", tk.Ticks())
	}
}

func TestTickerN(t *testing.T) {
	e := NewEngine()
	count := 0
	NewTickerN(e, 1, 5, func(now float64) { count++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("TickerN fired %d, want 5", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, func(float64) {})
}
