package sim

import (
	"math"
	"testing"
)

func TestRescheduleFiredEventPanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule of fired event did not panic")
		}
	}()
	e.Reschedule(ev, 1)
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(1, func() {})
}

func TestEventTimeAccessor(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(3.5, func() {})
	if ev.Time() != 3.5 {
		t.Fatalf("Event.Time() = %v", ev.Time())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestRunUntilInfiniteHorizonKeepsClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(2, func() {})
	if err := e.RunUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 2 {
		t.Fatalf("clock %v after infinite-horizon drain, want 2", e.Now())
	}
}

func TestStepManually(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(1, func() { hits++ })
	e.Schedule(2, func() { hits++ })
	if !e.Step() || hits != 1 || e.Now() != 1 {
		t.Fatalf("first Step: hits=%d now=%v", hits, e.Now())
	}
	if !e.Step() || hits != 2 {
		t.Fatalf("second Step: hits=%d", hits)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestCancelNilEvent(t *testing.T) {
	e := NewEngine()
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}
