// Package sim provides a small deterministic discrete-event simulation
// engine used as the execution substrate for the simulated metacomputer.
//
// The engine keeps a virtual clock (seconds, float64) and a priority queue
// of events. Events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-breaking), which makes runs fully deterministic:
// two simulations built with the same seed produce bit-identical traces.
//
// The package also provides a seeded random-number façade (Rand) with the
// distributions the load generators need, and a Ticker helper for periodic
// activities such as NWS sensors.
package sim
