package sim

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source with the distributions the load
// generators and workload builders need. It wraps math/rand with an explicit
// seed so every simulation component can own an independent stream.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a generator seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from this one. Forked streams are
// themselves deterministic: the same parent state yields the same child.
func (g *Rand) Fork() *Rand {
	return NewRand(g.r.Int63())
}

// Float64 returns a uniform sample in [0,1).
func (g *Rand) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *Rand) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform sample in [lo,hi).
func (g *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential sample with the given mean (not rate). A
// non-positive mean returns 0.
func (g *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)).
func (g *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Pareto returns a bounded Pareto-like heavy-tailed sample with minimum xm
// and shape alpha (> 0).
func (g *Rand) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bool returns true with probability p.
func (g *Rand) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0,n).
func (g *Rand) Perm(n int) []int { return g.r.Perm(n) }
